//! Umbrella crate for the TSHMEM reproduction workspace.
//!
//! This crate re-exports the workspace members so integration tests and
//! examples can reach every layer of the stack through one dependency.
//! See `DESIGN.md` at the repository root for the system inventory and
//! `EXPERIMENTS.md` for the paper-versus-measured record.

pub use cachesim;
pub use desim;
pub use microbench;
pub use mpipe;
pub use stress;
pub use substrate;
pub use tile_arch;
pub use tmc;
pub use tshmem;
pub use tshmem_apps as apps;
pub use udn;
