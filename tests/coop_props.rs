//! Property tests of the virtual-time cooperative scheduler: causality
//! and determinism under randomized communication patterns. Runs on
//! `substrate::proptest_mini` with fixed seeds, so tier-1 is
//! deterministic and offline.

use desim::{coop, SimTime};
use substrate::proptest_mini as pt;
use substrate::proptest_mini::Strategy;

/// A randomized step one LP takes each round.
#[derive(Clone, Copy, Debug)]
enum Step {
    /// Compute for this many ns.
    Advance(u16),
    /// Send to (self.id + hop) % n with this latency.
    Send { hop: u8, latency: u16 },
    /// Receive one message (only issued if the plan guarantees one).
    Recv,
}

fn plan_strategy(n: usize, rounds: usize) -> impl Strategy<Value = Vec<Vec<Step>>> {
    // Build per-LP plans where every round is either all-advance or a
    // synchronized shift pattern (everyone sends to id+hop, everyone
    // receives once) — guaranteeing no deadlock by construction.
    let round = pt::one_of(vec![
        pt::vec((1u16..5000).prop_map(Step::Advance), n..n + 1).boxed(),
        ((1u8..4), pt::vec(0u16..2000, n..n + 1))
            .prop_map(move |(hop, lats)| {
                let mut steps: Vec<Step> = lats
                    .into_iter()
                    .map(|latency| Step::Send { hop, latency })
                    .collect();
                // Every LP also receives exactly once this round.
                steps.push(Step::Recv); // marker appended per-LP below
                steps
            })
            .boxed(),
    ]);
    pt::vec(round, 1..rounds).prop_map(move |rounds| {
        // Transpose to per-LP plans.
        let mut per_lp: Vec<Vec<Step>> = vec![Vec::new(); n];
        for round in rounds {
            let has_recv = round.len() > n;
            for (lp, plan) in per_lp.iter_mut().enumerate() {
                plan.push(round[lp]);
                if has_recv {
                    plan.push(Step::Recv);
                }
            }
        }
        per_lp
    })
}

fn run_plan(plans: &[Vec<Step>]) -> (Vec<u64>, Vec<u64>) {
    let n = plans.len();
    let plans = plans.to_vec();
    let out = coop::run::<u64, _, _>(n, 1, move |h| {
        let id = h.id();
        let mut received_sum = 0u64;
        for step in &plans[id] {
            match *step {
                Step::Advance(ns) => h.advance(SimTime::from_ns(ns as u64)),
                Step::Send { hop, latency } => {
                    let dest = (id + hop as usize) % h.n();
                    h.send(dest, 0, h.now().ps(), SimTime::from_ns(latency as u64));
                }
                Step::Recv => {
                    let sent_at = h.recv(0);
                    // Causality: a message cannot be received before it
                    // was sent.
                    assert!(h.now().ps() >= sent_at, "{} < {sent_at}", h.now().ps());
                    received_sum = received_sum.wrapping_add(sent_at);
                }
            }
        }
        received_sum
    });
    (out.values, out.clocks.iter().map(|c| c.ps()).collect())
}

#[test]
fn randomized_traffic_is_deterministic_and_causal() {
    pt::check(
        pt::Config::with_cases(24),
        (2usize..6).prop_flat_map(|n| plan_strategy(n, 12)),
        |plans| {
            let a = run_plan(&plans);
            let b = run_plan(&plans);
            assert_eq!(a.0, b.0, "received values must match across runs");
            assert_eq!(a.1, b.1, "virtual clocks must be bit-identical");
        },
    );
}

#[test]
fn clocks_never_decrease() {
    pt::check(
        pt::Config::with_cases(24),
        pt::vec(0u16..1000, 1..50),
        |advances| {
            coop::run::<u64, _, _>(1, 1, move |h| {
                let mut last = h.now();
                for a in &advances {
                    h.advance(SimTime::from_ns(*a as u64));
                    let now = h.now();
                    assert!(now >= last);
                    last = now;
                }
            });
        },
    );
}
