//! Edge cases of the collective operations: singleton sets, zero-length
//! payloads, maximum roots, repeated reuse, and mixed algorithms within
//! one job family.

use tshmem::prelude::*;
use tshmem::types::ReduceOp;

fn cfg(npes: usize) -> RuntimeConfig {
    RuntimeConfig::new(npes)
        .with_partition_bytes(1 << 20)
        .with_private_bytes(1 << 14)
        .with_temp_bytes(1 << 12)
}

#[test]
fn singleton_set_collectives_are_local() {
    tshmem::launch(&cfg(3), |ctx| {
        let me = ctx.my_pe();
        let just_me = ActiveSet::new(me, 0, 1);
        let src = ctx.shmalloc::<i32>(8);
        let dst = ctx.shmalloc::<i32>(8);
        ctx.local_write(&src, 0, &[me as i32; 8]);
        // A broadcast within {me}: root's dest untouched per spec.
        ctx.local_fill(&dst, -1);
        ctx.broadcast(&dst, &src, 8, 0, just_me);
        assert_eq!(ctx.local_read(&dst, 0, 8), vec![-1; 8]);
        // Reduce of one PE: identity.
        ctx.sum_to_all(&dst, &src, 8, just_me);
        assert_eq!(ctx.local_read(&dst, 0, 8), vec![me as i32; 8]);
        // fcollect of one PE: copy.
        ctx.local_fill(&dst, -1);
        ctx.fcollect(&dst, &src, 8, just_me);
        assert_eq!(ctx.local_read(&dst, 0, 8), vec![me as i32; 8]);
        // collect of one PE.
        let total = ctx.collect(&dst, &src, 3, just_me);
        assert_eq!(total, 3);
        ctx.barrier(just_me);
        ctx.barrier_all();
    });
}

#[test]
fn zero_element_collectives() {
    tshmem::launch(&cfg(4), |ctx| {
        let src = ctx.shmalloc::<u32>(4);
        let dst = ctx.shmalloc::<u32>(16);
        ctx.broadcast(&dst, &src, 0, 0, ctx.world());
        ctx.fcollect(&dst, &src, 0, ctx.world());
        let total = ctx.collect(&dst, &src, 0, ctx.world());
        assert_eq!(total, 0);
        ctx.reduce(ReduceOp::Sum, &dst, &src, 0, ctx.world());
        ctx.barrier_all();
    });
}

#[test]
fn collect_with_some_pes_contributing_nothing() {
    tshmem::launch(&cfg(4), |ctx| {
        let me = ctx.my_pe();
        let src = ctx.shmalloc::<u64>(4);
        let dst = ctx.shmalloc::<u64>(16);
        // Only odd PEs contribute.
        let mine = if me % 2 == 1 { 2 } else { 0 };
        ctx.local_write(&src, 0, &[me as u64 * 10, me as u64 * 10 + 1, 0, 0]);
        let total = ctx.collect(&dst, &src, mine, ctx.world());
        assert_eq!(total, 4);
        let all = ctx.local_read(&dst, 0, 4);
        assert_eq!(all, vec![10, 11, 30, 31]);
    });
}

#[test]
fn broadcast_from_last_rank_of_strided_set() {
    tshmem::launch(&cfg(8), |ctx| {
        let me = ctx.my_pe();
        let set = ActiveSet::new(0, 1, 4); // PEs 0,2,4,6
        let src = ctx.shmalloc::<u32>(4);
        let dst = ctx.shmalloc::<u32>(4);
        if me == 6 {
            ctx.local_write(&src, 0, &[6, 6, 6, 6]);
        }
        ctx.barrier_all();
        if set.contains(me) {
            ctx.broadcast(&dst, &src, 4, 3, set); // root rank 3 = PE 6
            if me != 6 {
                assert_eq!(ctx.local_read(&dst, 0, 4), vec![6; 4]);
            }
        }
        ctx.barrier_all();
    });
}

#[test]
fn reductions_reusable_hundreds_of_times() {
    tshmem::launch(&cfg(4), |ctx| {
        let src = ctx.shmalloc::<i64>(4);
        let dst = ctx.shmalloc::<i64>(4);
        for round in 0..200i64 {
            ctx.local_write(&src, 0, &[round + ctx.my_pe() as i64; 4]);
            ctx.sum_to_all(&dst, &src, 4, ctx.world());
            let expect = 4 * round + 6; // sum over pe of (round + pe)
            assert_eq!(ctx.local_read(&dst, 0, 1)[0], expect, "round {round}");
        }
    });
}

#[test]
fn different_sets_with_same_root_interleave() {
    tshmem::launch(&cfg(6), |ctx| {
        let me = ctx.my_pe();
        let evens = ActiveSet::new(0, 1, 3); // 0,2,4
        let all = ctx.world();
        let src = ctx.shmalloc::<i32>(2);
        let dst = ctx.shmalloc::<i32>(2);
        ctx.local_write(&src, 0, &[me as i32, me as i32]);
        for _ in 0..10 {
            if evens.contains(me) {
                ctx.sum_to_all(&dst, &src, 2, evens);
                assert_eq!(ctx.local_read(&dst, 0, 1)[0], 6); // PEs 0+2+4
            }
            ctx.barrier_all();
            ctx.sum_to_all(&dst, &src, 2, all);
            assert_eq!(ctx.local_read(&dst, 0, 1)[0], 15);
        }
    });
}

#[test]
fn fcollect_with_recursive_doubling_reduce_configured() {
    // Collectives must not interfere even when reduce uses the temp
    // slots (shared internal resources).
    let cfg = cfg(6).with_algos(Algorithms {
        reduce: ReduceAlgo::RecursiveDoubling,
        broadcast: BroadcastAlgo::Binomial,
        barrier: BarrierAlgo::Dissemination,
    });
    tshmem::launch(&cfg, |ctx| {
        let me = ctx.my_pe();
        let n = ctx.n_pes();
        let src = ctx.shmalloc::<u32>(300); // > one temp slot per sender
        let dst = ctx.shmalloc::<u32>(300 * n);
        ctx.local_write(&src, 0, &vec![me as u32; 300]);
        for _ in 0..5 {
            ctx.fcollect(&dst, &src, 300, ctx.world());
            ctx.reduce(ReduceOp::Max, &dst, &src, 300, ctx.world());
            assert_eq!(ctx.local_read(&dst, 0, 1)[0], (n - 1) as u32);
            ctx.broadcast(&dst, &src, 300, n - 1, ctx.world());
            if me != n - 1 {
                assert_eq!(ctx.local_read(&dst, 0, 1)[0], (n - 1) as u32);
            }
        }
    });
}
