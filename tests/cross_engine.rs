//! The two engines must compute identical results for the same program
//! (the timed engine is the native engine plus clocks, not a different
//! library).

use tshmem::prelude::*;
use tshmem::types::ReduceOp;

fn workload(ctx: &ShmemCtx) -> Vec<i64> {
    let me = ctx.my_pe();
    let n = ctx.n_pes();
    let data = ctx.shmalloc::<i64>(64);
    let gathered = ctx.shmalloc::<i64>(64 * n);
    let reduced = ctx.shmalloc::<i64>(64);
    let statv = ctx.static_sym::<i64>(16);

    // Seed, rotate through neighbors, collect, reduce.
    let seed: Vec<i64> = (0..64).map(|i| (me as i64 + 1) * 1000 + i).collect();
    ctx.local_write(&data, 0, &seed);
    ctx.barrier_all();
    let next = (me + 1) % n;
    ctx.put_sym(&data, 32, &data, 0, 32, next);
    ctx.barrier_all();
    ctx.fcollect(&gathered, &data, 64, ctx.world());
    ctx.reduce(ReduceOp::Max, &reduced, &data, 64, ctx.world());

    // Exercise the static redirection path too.
    ctx.local_write(&statv, 0, &[me as i64; 16]);
    ctx.barrier_all();
    let mut got = vec![0i64; 16];
    ctx.get(&mut got, &statv, 0, (me + 1) % n);

    // Atomics.
    let counter = ctx.shmalloc::<u64>(1);
    ctx.local_write(&counter, 0, &[0u64]);
    ctx.barrier_all();
    ctx.fadd(&counter, 0, (me as u64 + 1) * 10, 0);
    ctx.barrier_all();

    let mut out = ctx.local_read(&gathered, 0, 64 * n);
    out.extend(ctx.local_read(&reduced, 0, 64));
    out.extend(&got);
    out.push(ctx.g(&counter, 0, 0) as i64);
    out
}

#[test]
fn native_and_timed_engines_agree() {
    let cfg = RuntimeConfig::new(4)
        .with_partition_bytes(1 << 20)
        .with_private_bytes(1 << 14);
    let native = tshmem::launch(&cfg, workload);
    let timed = tshmem::launch_timed(&cfg, workload);
    assert_eq!(native.len(), timed.values.len());
    for (pe, (a, b)) in native.iter().zip(&timed.values).enumerate() {
        assert_eq!(a, b, "PE {pe} diverged between engines");
    }
}

#[test]
fn engines_agree_across_algorithm_choices() {
    for algos in [
        Algorithms::default(),
        Algorithms {
            barrier: BarrierAlgo::RootBroadcast,
            broadcast: BroadcastAlgo::Push,
            reduce: ReduceAlgo::RecursiveDoubling,
        },
        Algorithms {
            barrier: BarrierAlgo::TmcSpin,
            broadcast: BroadcastAlgo::Binomial,
            reduce: ReduceAlgo::Naive,
        },
    ] {
        let cfg = RuntimeConfig::new(5)
            .with_partition_bytes(1 << 20)
            .with_private_bytes(1 << 14)
            .with_algos(algos);
        let native = tshmem::launch(&cfg, workload);
        let timed = tshmem::launch_timed(&cfg, workload);
        for (a, b) in native.iter().zip(&timed.values) {
            assert_eq!(a, b, "diverged under {algos:?}");
        }
    }
}
