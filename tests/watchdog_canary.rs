//! Tier-1 watchdog canary: reintroduce the PR-1 dissemination-barrier
//! deadlock via the `tshmem::fault` hook and assert the stress
//! harness's watchdog detects it and names a replayable reproducer.
//!
//! Own test binary on purpose: the fault flag is process-global, and a
//! genuinely deadlocked job leaks threads parked in pre-fix blocking
//! sends until the process exits.

use std::time::Duration;

use stress::program::{gen_program, RngDraw};
use stress::run::{run_watched, Outcome};

/// Stall-prone seeds at 8 PEs / depth 1 under the fault (see
/// `crates/stress/tests/canary.rs`); retried because the deadlock needs
/// concurrent PEs and a loaded machine can serialize them past it.
const CANARY_SEEDS: [u64; 3] = [0x1, 0x3, 0x7];

#[test]
fn watchdog_reports_seeded_deadlock() {
    tshmem::fault::set_blocking_protocol_sends(true);
    let mut caught = None;
    'hunt: for _ in 0..4 {
        for seed in CANARY_SEEDS {
            let prog = gen_program(&mut RngDraw::new(seed, 0), 8);
            let hint =
                format!("cargo run -p stress -- --seed {seed:#x} --pes 8 --depth 1 --gen 1 --canary");
            if let Outcome::Stalled(report) = run_watched(&prog, Some(1), Duration::from_secs(2), &hint) {
                caught = Some((seed, report));
                break 'hunt;
            }
        }
    }
    tshmem::fault::set_blocking_protocol_sends(false);

    let (seed, report) = caught.expect("reintroduced barrier bug was never caught");
    assert!(report.contains("per-PE stall diagnosis (8 PEs)"), "bad report:\n{report}");
    assert!(report.contains("[full]"), "no blocked sender in:\n{report}");
    assert!(report.contains(&format!("--seed {seed:#x}")), "no reproducer in:\n{report}");
}
