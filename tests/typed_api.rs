//! Exercising the OpenSHMEM typed function matrix (`api_typed`) — every
//! family is hit at least once with values that verify data movement.

use tshmem::api_typed as t;
use tshmem::prelude::*;
use tshmem::types::{Complex32, Complex64};

fn cfg(npes: usize) -> RuntimeConfig {
    RuntimeConfig::new(npes).with_partition_bytes(1 << 20)
}

#[test]
fn typed_rma_families() {
    tshmem::launch(&cfg(2), |ctx| {
        let me = ctx.my_pe();
        let other = 1 - me;

        let vs = ctx.shmalloc::<i16>(8);
        let vi = ctx.shmalloc::<i32>(8);
        let vl = ctx.shmalloc::<i64>(8);
        let vf = ctx.shmalloc::<f32>(8);
        let vd = ctx.shmalloc::<f64>(8);

        t::shmem_short_p(ctx, &vs, -7, other);
        t::shmem_int_p(ctx, &vi, 42, other);
        t::shmem_long_p(ctx, &vl, 1 << 40, other);
        t::shmem_float_p(ctx, &vf, 1.5, other);
        t::shmem_double_p(ctx, &vd, -2.25, other);
        ctx.barrier_all();
        assert_eq!(t::shmem_short_g(ctx, &vs, me), -7);
        assert_eq!(t::shmem_int_g(ctx, &vi, me), 42);
        assert_eq!(t::shmem_long_g(ctx, &vl, me), 1 << 40);
        assert_eq!(t::shmem_float_g(ctx, &vf, me), 1.5);
        assert_eq!(t::shmem_double_g(ctx, &vd, me), -2.25);
        // Everyone must finish reading before the next wave of puts
        // lands (one-sided semantics!).
        ctx.barrier_all();

        t::shmem_int_put(ctx, &vi, &[1, 2, 3, 4], other);
        ctx.barrier_all();
        let mut got = [0i32; 4];
        t::shmem_int_get(ctx, &mut got, &vi, me);
        assert_eq!(got, [1, 2, 3, 4]);

        t::shmem_double_iput(ctx, &vd, &[9.0, 8.0], 3, 1, 2, me);
        let mut sgot = [0.0f64; 2];
        t::shmem_double_iget(ctx, &mut sgot, &vd, 1, 3, 2, me);
        assert_eq!(sgot, [9.0, 8.0]);

        // longlong aliases work on i64 data.
        t::shmem_longlong_p(ctx, &vl, 99, me);
        assert_eq!(t::shmem_longlong_g(ctx, &vl, me), 99);
        ctx.barrier_all();
    });
}

#[test]
fn fixed_width_and_128bit_forms() {
    tshmem::launch(&cfg(2), |ctx| {
        let me = ctx.my_pe();
        let v32 = ctx.shmalloc::<u32>(8);
        let v64 = ctx.shmalloc::<u64>(8);
        let v128 = ctx.shmalloc::<Complex64>(4);

        t::shmem_put32(ctx, &v32, &[0xAABB_CCDD; 4], 1 - me);
        t::shmem_put64(ctx, &v64, &[u64::MAX - 1; 4], 1 - me);
        t::shmem_put128(ctx, &v128, &[Complex64::new(1.0, -1.0); 2], 1 - me);
        ctx.barrier_all();
        let mut a = [0u32; 4];
        t::shmem_get32(ctx, &mut a, &v32, me);
        assert_eq!(a, [0xAABB_CCDD; 4]);
        let mut b = [0u64; 4];
        t::shmem_get64(ctx, &mut b, &v64, me);
        assert_eq!(b, [u64::MAX - 1; 4]);
        let mut c = [Complex64::default(); 2];
        t::shmem_get128(ctx, &mut c, &v128, me);
        assert_eq!(c, [Complex64::new(1.0, -1.0); 2]);
        ctx.barrier_all();
    });
}

#[test]
fn typed_waits_and_atomics() {
    tshmem::launch(&cfg(2), |ctx| {
        let me = ctx.my_pe();
        let flag = ctx.shmalloc::<i64>(1);
        let counter = ctx.shmalloc::<i32>(1);
        ctx.local_write(&flag, 0, &[0i64]);
        ctx.local_write(&counter, 0, &[0i32]);
        ctx.barrier_all();
        if me == 0 {
            assert_eq!(t::shmem_int_finc(ctx, &counter, 1), 0);
            t::shmem_int_add(ctx, &counter, 10, 1);
            t::shmem_int_inc(ctx, &counter, 1);
            assert_eq!(t::shmem_int_fadd(ctx, &counter, 5, 1), 12);
            assert_eq!(t::shmem_int_swap(ctx, &counter, 100, 1), 17);
            assert_eq!(t::shmem_int_cswap(ctx, &counter, 100, 7, 1), 100);
            t::shmem_long_p(ctx, &flag, 1, 1);
        } else {
            t::shmem_long_wait(ctx, &flag, 0);
            t::shmem_long_wait_until(ctx, &flag, Cmp::Ge, 1);
            assert_eq!(ctx.local_read(&counter, 0, 1)[0], 7);
        }
        ctx.barrier_all();
        // Float swaps.
        let f = ctx.shmalloc::<f32>(1);
        let d = ctx.shmalloc::<f64>(1);
        ctx.local_write(&f, 0, &[3.5f32]);
        ctx.local_write(&d, 0, &[-0.5f64]);
        ctx.barrier_all();
        if me == 1 {
            assert_eq!(t::shmem_float_swap(ctx, &f, 9.0, 0), 3.5);
            assert_eq!(t::shmem_double_swap(ctx, &d, 2.0, 0), -0.5);
            assert_eq!(t::shmem_longlong_fadd(ctx, &flag, 1, 0), 0);
        }
        ctx.barrier_all();
    });
}

#[test]
fn typed_reduction_matrix_samples() {
    tshmem::launch(&cfg(3), |ctx| {
        let me = ctx.my_pe();
        let n = ctx.n_pes();

        macro_rules! red {
            ($ty:ty, $f:ident, $seed:expr, $expect:expr) => {{
                let src = ctx.shmalloc::<$ty>(2);
                let dst = ctx.shmalloc::<$ty>(2);
                ctx.local_write(&src, 0, &[$seed; 2]);
                t::$f(ctx, &dst, &src, 2, 0, 0, n);
                assert_eq!(ctx.local_read(&dst, 0, 1)[0], $expect, stringify!($f));
            }};
        }

        red!(i16, shmem_short_sum_to_all, me as i16 + 1, 6);
        red!(i16, shmem_short_xor_to_all, 1i16 << me, 0b111);
        red!(i32, shmem_int_min_to_all, me as i32 - 1, -1);
        red!(i32, shmem_int_and_to_all, 0b110 | me as i32, 0b110);
        red!(i64, shmem_long_prod_to_all, me as i64 + 2, 2 * 3 * 4);
        red!(i64, shmem_longlong_max_to_all, (me as i64) * 100, 200);
        red!(f32, shmem_float_sum_to_all, me as f32 + 0.5, 4.5);
        red!(f64, shmem_double_max_to_all, -(me as f64), 0.0);
        red!(
            Complex32,
            shmem_complexf_sum_to_all,
            Complex32::new(1.0, me as f32),
            Complex32::new(3.0, 3.0)
        );
        red!(
            Complex64,
            shmem_complexd_prod_to_all,
            Complex64::new(0.0, 1.0),
            // i^3 = -i
            Complex64::new(0.0, -1.0)
        );
    });
}

#[test]
fn typed_collectives_and_accessibility() {
    tshmem::launch(&cfg(4), |ctx| {
        let me = ctx.my_pe();
        let n = ctx.n_pes();
        let src32 = ctx.shmalloc::<u32>(4);
        let dst32 = ctx.shmalloc::<u32>(4 * n);
        let src64 = ctx.shmalloc::<u64>(4);
        let dst64 = ctx.shmalloc::<u64>(4 * n);

        ctx.local_write(&src32, 0, &[me as u32; 4]);
        ctx.local_write(&src64, 0, &[me as u64 + 100; 4]);

        t::shmem_broadcast32(ctx, &dst32, &src32, 4, 2, 0, 0, n);
        if me != 2 {
            assert_eq!(ctx.local_read(&dst32, 0, 1)[0], 2);
        }
        t::shmem_fcollect64(ctx, &dst64, &src64, 4, 0, 0, n);
        for pe in 0..n {
            assert_eq!(ctx.local_read(&dst64, pe * 4, 1)[0], pe as u64 + 100);
        }
        let total = t::shmem_collect32(ctx, &dst32, &src32, 4, 0, 0, n);
        assert_eq!(total, 4 * n);
        t::shmem_broadcast64(ctx, &dst64, &src64, 4, 0, 0, 0, n);
        t::shmem_fcollect32(ctx, &dst32, &src32, 4, 0, 0, n);
        let _ = t::shmem_collect64(ctx, &dst64, &src64, 4, 0, 0, n);

        // Accessibility queries.
        assert!(t::shmem_pe_accessible(ctx, n - 1));
        assert!(!t::shmem_pe_accessible(ctx, n));
        assert!(t::shmem_addr_accessible(ctx, &src32, (me + 1) % n));
        let stat = ctx.static_sym::<u32>(1);
        assert!(t::shmem_addr_accessible(ctx, &stat, me));
        assert!(!t::shmem_addr_accessible(ctx, &stat, (me + 1) % n));
        ctx.barrier_all();
    });
}
