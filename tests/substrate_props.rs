//! Property-based tests on the substrate crates: mesh routing, UDN
//! packets, caches, and the simulation kernel. Runs on
//! `substrate::proptest_mini` with fixed seeds, so tier-1 is
//! deterministic and offline.

use substrate::proptest_mini as pt;
use tile_arch::device::Device;
use tile_arch::mesh::{Mesh, TileCoord};
use tile_arch::route::route_xy;
use udn::packet::{Header, Packet, MAX_PAYLOAD_WORDS};

const CASES: u32 = 128;

#[test]
fn xy_route_length_equals_manhattan() {
    pt::check(
        pt::Config::with_cases(CASES),
        (0u16..8, 0u16..8, 0u16..8, 0u16..8),
        |(ax, ay, bx, by)| {
            let m = Mesh::new(8, 8);
            let a = TileCoord::new(ax, ay);
            let b = TileCoord::new(bx, by);
            let hops: Vec<_> = route_xy(&m, a, b).collect();
            assert_eq!(hops.len() as u32, a.manhattan(b));
            // Each step moves exactly one hop and ends at the destination.
            if let Some((_, last)) = hops.last() {
                assert_eq!(*last, b);
            }
            let mut prev = a;
            for (_, c) in hops {
                assert_eq!(prev.manhattan(c), 1);
                prev = c;
            }
        },
    );
}

#[test]
fn udn_latency_monotonic_in_distance() {
    pt::check(
        pt::Config::with_cases(CASES),
        (0u16..6, 0u16..6, 0u16..6, 0u16..6),
        |(ax, ay, bx, by)| {
            // More hops never means lower wire latency (per device).
            let d = Device::tile_gx8036();
            let a = TileCoord::new(ax, ay);
            let b = TileCoord::new(bx, by);
            let h = d.grid.hops(a, b);
            let lat = d.timings.udn.one_way_ps(h, 1);
            let lat_further = d.timings.udn.one_way_ps(h + 1, 1);
            assert!(lat_further > lat);
        },
    );
}

#[test]
fn header_roundtrip() {
    pt::check(
        pt::Config::with_cases(CASES),
        (0u16..1024, 0u16..1024, 0u8..4, pt::any::<u16>()),
        |(dest, src, queue, tag)| {
            let h = Header { dest, src, queue, tag };
            assert_eq!(Header::decode(h.encode()), h);
        },
    );
}

#[test]
fn packets_respect_wire_size() {
    pt::check(
        pt::Config::with_cases(CASES),
        pt::vec(pt::any::<u64>(), 0..MAX_PAYLOAD_WORDS + 1),
        |words| {
            let p = Packet::new(Header { dest: 0, src: 0, queue: 0, tag: 0 }, words.clone());
            assert_eq!(p.wire_words(), words.len() + 1);
        },
    );
}

#[test]
fn cache_hit_iff_resident() {
    pt::check(
        pt::Config::with_cases(CASES),
        pt::vec(0u64..64, 1..200),
        |lines| {
            use cachesim::cache::{CacheConfig, SetAssocCache};
            use std::collections::HashSet;
            let mut c = SetAssocCache::new(CacheConfig::new(1024, 64, 2));
            // Shadow model: the cache may evict, so a hit implies shadow
            // residency (no phantom hits), and resident() matches reality.
            let mut shadow: HashSet<u64> = HashSet::new();
            for l in lines {
                let (hit, evicted) = c.access(l);
                if hit {
                    assert!(shadow.contains(&l), "phantom hit on {l}");
                }
                shadow.insert(l);
                if let Some(e) = evicted {
                    shadow.remove(&e);
                }
                assert_eq!(c.resident(), shadow.len());
                for s in &shadow {
                    assert!(c.probe(*s), "shadow line {s} missing");
                }
            }
        },
    );
}

#[test]
fn sim_time_ordering_preserved() {
    pt::check(
        pt::Config::with_cases(CASES),
        pt::vec(0u64..1_000_000, 1..50),
        |times| {
            use desim::{Sim, SimTime};
            use std::cell::RefCell;
            use std::rc::Rc;
            let fired = Rc::new(RefCell::new(Vec::new()));
            let mut sim = Sim::new();
            for t in &times {
                let fired = fired.clone();
                let t = *t;
                sim.schedule_at(SimTime::from_ps(t), move |_| fired.borrow_mut().push(t));
            }
            sim.run();
            let f = fired.borrow();
            let mut sorted = times.clone();
            sorted.sort();
            assert_eq!(&*f, &sorted);
        },
    );
}

#[test]
fn resource_completions_monotone() {
    pt::check(
        pt::Config::with_cases(CASES),
        pt::vec((0u64..1000, 1u64..100), 1..40),
        |reqs| {
            use desim::resource::Resource;
            use desim::SimTime;
            // Requests issued in nondecreasing time order complete in FIFO
            // order with no idle gaps while backlogged.
            let mut r = Resource::new();
            let mut sorted = reqs.clone();
            sorted.sort();
            let mut last_done = SimTime::ZERO;
            for (at, dur) in sorted {
                let done = r.acquire(SimTime::from_ps(at), SimTime::from_ps(dur));
                assert!(
                    done >= last_done + SimTime::from_ps(dur)
                        || done == SimTime::from_ps(at + dur)
                );
                assert!(done >= SimTime::from_ps(at + dur));
                last_done = done;
            }
        },
    );
}
