//! Tier-1 smoke run of the deterministic concurrency stress harness
//! (`crates/stress`): a small seeded sweep with the stall watchdog
//! armed, verifying generated programs against the sequential oracle.
//!
//! The full acceptance sweep (≥64 seeds over PE counts {2,3,4,8} ×
//! queue depths {1,2,8}) lives in `crates/stress/tests/smoke.rs`; this
//! keeps a representative slice in the tier-1 suite so a root-package
//! `cargo test` still exercises the harness end to end.

use std::time::Duration;

use stress::program::{ProgramStrategy, GEN_LATEST};
use stress::run::{run_watched, Outcome};
use substrate::proptest_mini as pt;

#[test]
fn stress_harness_smoke_sweep() {
    for npes in [2usize, 4] {
        for depth in [1usize, 8] {
            let cfg = pt::Config { max_shrink_iters: 32, ..pt::Config::with_cases(3) };
            let seed = cfg.seed;
            pt::check(cfg, ProgramStrategy { npes, version: GEN_LATEST }, |prog| {
                let hint = format!(
                    "cargo run -p stress -- --seed {seed:#x} --case <case reported above> \
                     --pes {npes} --depth {depth} --gen {GEN_LATEST}"
                );
                match run_watched(&prog, Some(depth), Duration::from_secs(10), &hint) {
                    Outcome::Completed => {}
                    Outcome::Stalled(report) => panic!("{report}"),
                }
            });
        }
    }
}

#[test]
fn stress_harness_unbounded_queues() {
    // Depth `None` leaves the UDN queues unbounded — the configuration
    // the non-stress tests run under.
    let cfg = pt::Config { max_shrink_iters: 32, ..pt::Config::with_cases(3) };
    pt::check(cfg, ProgramStrategy { npes: 3, version: GEN_LATEST }, |prog| {
        match run_watched(&prog, None, Duration::from_secs(10), "unbounded smoke") {
            Outcome::Completed => {}
            Outcome::Stalled(report) => panic!("{report}"),
        }
    });
}
