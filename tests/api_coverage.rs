//! Table I coverage: every function of the paper's basic OpenSHMEM
//! subset exists and works through the C-flavored shim.

use tshmem::api;
use tshmem::prelude::*;

#[test]
fn table1_basic_subset_is_callable() {
    let cfg = RuntimeConfig::new(4).with_partition_bytes(1 << 20);
    // start_pes() analog:
    tshmem::launch(&cfg, |ctx| {
        // Environment query.
        let me = api::my_pe(ctx);
        let n = api::num_pes(ctx);
        assert!(me < n && n == 4);

        // Memory allocation.
        let v: Sym<i32> = api::shmalloc(ctx, 64);
        let v64: Sym<i64> = api::shmalloc(ctx, 64);
        let vb: Sym<u8> = api::shmalloc(ctx, 256);

        // Elemental put/get (shmem_int_p / shmem_int_g).
        api::shmem_p(ctx, &v, 7 + me as i32, (me + 1) % n);
        api::shmem_barrier_all(ctx);
        let prev = (me + n - 1) % n;
        assert_eq!(api::shmem_g(ctx, &v, me), 7 + prev as i32);

        // Block put/get (shmem_putmem / shmem_getmem).
        let bytes: Vec<u8> = (0..=255).collect();
        api::shmem_putmem(ctx, &vb, &bytes, (me + 1) % n);
        api::shmem_quiet(ctx);
        api::shmem_barrier_all(ctx);
        let mut back = vec![0u8; 256];
        api::shmem_getmem(ctx, &mut back, &vb, me);
        assert_eq!(back, bytes);

        // Typed block put/get.
        api::shmem_put(ctx, &v, &[1, 2, 3, 4], me);
        let mut out = [0i32; 4];
        api::shmem_get(ctx, &mut out, &v, me);
        assert_eq!(out, [1, 2, 3, 4]);

        // Strided put/get (shmem_int_iput / shmem_int_iget).
        api::shmem_barrier_all(ctx);
        api::shmem_iput(ctx, &v, &[10, 20, 30], 4, 1, 3, me);
        let mut strided = [0i32; 3];
        api::shmem_iget(ctx, &mut strided, &v, 1, 4, 3, me);
        assert_eq!(strided, [10, 20, 30]);

        // Barrier over a subset triplet.
        if me.is_multiple_of(2) {
            api::shmem_barrier(ctx, 0, 1, n / 2);
        }
        api::shmem_barrier_all(ctx);

        // Fence/quiet.
        api::shmem_fence(ctx);
        api::shmem_quiet(ctx);

        // Point-to-point sync (shmem_wait / shmem_wait_until).
        let flag: Sym<i64> = api::shmalloc(ctx, 1);
        ctx.local_write(&flag, 0, &[0i64]);
        api::shmem_barrier_all(ctx);
        if me == 0 {
            for pe in 1..n {
                api::shmem_p(ctx, &flag, 5i64, pe);
            }
        } else {
            api::shmem_wait(ctx, &flag, 0i64);
            api::shmem_wait_until(ctx, &flag, Cmp::Ge, 5i64);
        }
        api::shmem_barrier_all(ctx);

        // Broadcast (shmem_broadcast32-style).
        let bsrc: Sym<u32> = api::shmalloc(ctx, 16);
        let bdst: Sym<u32> = api::shmalloc(ctx, 16);
        if me == 0 {
            ctx.local_write(&bsrc, 0, &[9u32; 16]);
        }
        api::shmem_broadcast(ctx, &bdst, &bsrc, 16, 0, 0, 0, n);
        if me != 0 {
            assert_eq!(ctx.local_read(&bdst, 0, 16), vec![9u32; 16]);
        }

        // Collection (shmem_collect32 / shmem_fcollect32).
        let csrc: Sym<u32> = api::shmalloc(ctx, 4);
        let cdst: Sym<u32> = api::shmalloc(ctx, 4 * n);
        ctx.local_write(&csrc, 0, &[me as u32; 4]);
        api::shmem_fcollect(ctx, &cdst, &csrc, 4, 0, 0, n);
        assert_eq!(ctx.local_read(&cdst, 0, 1)[0], 0);
        let total = api::shmem_collect(ctx, &cdst, &csrc, 4, 0, 0, n);
        assert_eq!(total, 4 * n);

        // Reduction (shmem_int_sum_to_all / shmem_long_prod_to_all).
        let rdst: Sym<i32> = api::shmalloc(ctx, 4);
        ctx.local_write(&v, 0, &[me as i32 + 1; 64]);
        api::shmem_sum_to_all(ctx, &rdst, &v, 4, 0, 0, n);
        assert_eq!(ctx.local_read(&rdst, 0, 1)[0], (1..=n as i32).sum());
        let pdst: Sym<i64> = api::shmalloc(ctx, 1);
        ctx.local_write(&v64, 0, &[me as i64 + 1; 64]);
        api::shmem_prod_to_all(ctx, &pdst, &v64, 1, 0, 0, n);
        assert_eq!(ctx.local_read(&pdst, 0, 1)[0], (1..=n as i64).product());

        // Atomic swap (shmem_swap).
        let a: Sym<i64> = api::shmalloc(ctx, 1);
        ctx.local_write(&a, 0, &[me as i64]);
        api::shmem_barrier_all(ctx);
        let old = api::shmem_swap(ctx, &a, 100 + me as i64, (me + 1) % n);
        assert_eq!(old as usize, (me + 1) % n);

        // shmem_ptr.
        assert!(api::shmem_ptr(ctx, &a, (me + 1) % n).is_some());

        // Memory management: realloc, align, free.
        let big: Sym<i32> = api::shrealloc(ctx, v, 128);
        api::shfree(ctx, big);
        let aligned: Sym<f64> = api::shmemalign(ctx, 64, 8);
        api::shfree(ctx, aligned);

        // shmem_finalize (the paper's proposed extension).
        api::shmem_finalize(ctx);
    });
}
