//! Stress tests: randomized RMA traffic, mixed collectives, and
//! repeated launches.

use substrate::rng::KeyedRng;
use tshmem::prelude::*;
use tshmem::types::ReduceOp;

#[test]
fn randomized_put_get_traffic_is_consistent() {
    // Each PE owns a slab; every PE writes disjoint slots of every other
    // PE's slab with seeded patterns, then everyone verifies everything.
    let npes = 6;
    let slots_per_writer = 64usize;
    let cfg = RuntimeConfig::new(npes).with_partition_bytes(1 << 20);
    tshmem::launch(&cfg, move |ctx| {
        let me = ctx.my_pe();
        let n = ctx.n_pes();
        let slab = ctx.shmalloc::<u64>(n * slots_per_writer);
        ctx.local_fill(&slab, 0u64);
        ctx.barrier_all();

        let mut rng = KeyedRng::seed_from_u64(9000 + me as u64);
        // Writer `me` owns slots [me*spw, (me+1)*spw) on every PE.
        let mut sent: Vec<Vec<u64>> = Vec::with_capacity(n);
        for pe in 0..n {
            let vals: Vec<u64> = (0..slots_per_writer).map(|_| rng.next_u64()).collect();
            ctx.put(&slab, me * slots_per_writer, &vals, pe);
            sent.push(vals);
        }
        ctx.quiet();
        ctx.barrier_all();

        // Verify my copy has every writer's deterministic pattern.
        for writer in 0..n {
            let mut wrng = KeyedRng::seed_from_u64(9000 + writer as u64);
            for pe in 0..n {
                let vals: Vec<u64> = (0..slots_per_writer).map(|_| wrng.next_u64()).collect();
                if pe == me {
                    let got = ctx.local_read(&slab, writer * slots_per_writer, slots_per_writer);
                    assert_eq!(got, vals, "writer {writer} on PE {me}");
                }
            }
        }
        // And verify a remote copy via gets.
        let target = (me + 1) % n;
        for writer in 0..n {
            let mut got = vec![0u64; slots_per_writer];
            ctx.get(&mut got, &slab, writer * slots_per_writer, target);
            let mut wrng = KeyedRng::seed_from_u64(9000 + writer as u64);
            for pe in 0..n {
                let vals: Vec<u64> = (0..slots_per_writer).map(|_| wrng.next_u64()).collect();
                if pe == target {
                    assert_eq!(got, vals, "get: writer {writer} on PE {target}");
                }
            }
        }
        ctx.barrier_all();
    });
}

#[test]
fn interleaved_collectives_many_rounds() {
    let npes = 8;
    let cfg = RuntimeConfig::new(npes).with_partition_bytes(1 << 20);
    tshmem::launch(&cfg, move |ctx| {
        let me = ctx.my_pe();
        let n = ctx.n_pes();
        let src = ctx.shmalloc::<i64>(32);
        let dst = ctx.shmalloc::<i64>(32 * n);
        for round in 0..25i64 {
            ctx.local_write(&src, 0, &[(me as i64) * 100 + round; 32]);
            match round % 3 {
                0 => {
                    let root = (round as usize) % n;
                    ctx.broadcast(&dst, &src, 32, root, ctx.world());
                    if me != ctx.world().pe_at(root) {
                        let expect = (root as i64) * 100 + round;
                        assert_eq!(ctx.local_read(&dst, 0, 1)[0], expect, "round {round}");
                    }
                }
                1 => {
                    ctx.reduce(ReduceOp::Sum, &dst, &src, 32, ctx.world());
                    let expect: i64 = (0..n as i64).map(|p| p * 100 + round).sum();
                    assert_eq!(ctx.local_read(&dst, 0, 1)[0], expect, "round {round}");
                }
                _ => {
                    ctx.fcollect(&dst, &src, 32, ctx.world());
                    for pe in 0..n {
                        let expect = (pe as i64) * 100 + round;
                        assert_eq!(ctx.local_read(&dst, pe * 32, 1)[0], expect, "round {round}");
                    }
                }
            }
        }
    });
}

#[test]
fn repeated_launches_are_independent() {
    // Back-to-back jobs must not leak state into one another (service
    // threads shut down, arenas dropped).
    for round in 0..5u64 {
        let cfg = RuntimeConfig::new(3).with_partition_bytes(1 << 18);
        let out = tshmem::launch(&cfg, move |ctx| {
            let v = ctx.shmalloc::<u64>(8);
            ctx.local_fill(&v, round);
            ctx.barrier_all();
            ctx.g(&v, 0, (ctx.my_pe() + 1) % ctx.n_pes())
        });
        assert!(out.iter().all(|v| *v == round));
    }
}

#[test]
fn concurrent_redirected_statics_from_all_pes() {
    // All PEs hammer each other's static segments simultaneously; the
    // service contexts must handle interleaved requests.
    let npes = 5;
    let cfg = RuntimeConfig::new(npes)
        .with_partition_bytes(1 << 20)
        .with_private_bytes(1 << 16)
        .with_temp_bytes(1 << 10); // small temp to force chunking
    tshmem::launch(&cfg, move |ctx| {
        let me = ctx.my_pe();
        let n = ctx.n_pes();
        let statv = ctx.static_sym::<u64>(n * 64);
        // Everyone seeds their own static slab.
        let seed: Vec<u64> = (0..n * 64).map(|i| (me as u64) << 32 | i as u64).collect();
        ctx.local_write(&statv, 0, &seed);
        ctx.barrier_all();
        // Writer `me` puts its signature into slot `me` of everyone.
        let sig = vec![0xAB00 + me as u64; 64];
        for pe in 0..n {
            if pe != me {
                ctx.put(&statv.slice(me * 64, 64), 0, &sig, pe);
            }
        }
        ctx.barrier_all();
        // Everyone verifies all foreign slots via redirected gets.
        for writer in 0..n {
            if writer == me {
                continue;
            }
            let mut got = vec![0u64; 64];
            let target = (me + 1) % n;
            ctx.get(&mut got, &statv.slice(writer * 64, 64), 0, target);
            if writer != target {
                assert_eq!(got, vec![0xAB00 + writer as u64; 64]);
            }
        }
        ctx.barrier_all();
        assert!(ctx.stats().redirected > 0);
    });
}
