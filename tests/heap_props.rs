//! Property-based tests of the symmetric-heap allocator: invariants
//! hold under arbitrary alloc/free/realloc sequences, allocations never
//! overlap, and replicas stay symmetric. Runs on
//! `substrate::proptest_mini` with fixed seeds, so tier-1 is
//! deterministic and offline.

use substrate::proptest_mini as pt;
use substrate::proptest_mini::Strategy;
use tshmem::heap::{Heap, HeapError};

const CASES: u32 = 64;

#[derive(Clone, Debug)]
enum Op {
    Alloc(usize),
    AllocAligned(usize, u8),
    Free(usize), // index into live list (modulo)
    Realloc(usize, usize),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    pt::one_of(vec![
        (0usize..5000).prop_map(Op::Alloc).boxed(),
        ((0usize..2000), (0u8..7))
            .prop_map(|(s, a)| Op::AllocAligned(s, a))
            .boxed(),
        (0usize..64).prop_map(Op::Free).boxed(),
        ((0usize..64), (0usize..5000))
            .prop_map(|(i, s)| Op::Realloc(i, s))
            .boxed(),
    ])
}

/// Apply a sequence of ops; returns the trace of resulting offsets.
fn run_ops(heap_size: usize, ops: &[Op]) -> Vec<isize> {
    let mut h = Heap::new(heap_size);
    let mut live: Vec<(usize, usize)> = Vec::new(); // (offset, len)
    let mut trace = Vec::new();
    for op in ops {
        match op {
            Op::Alloc(len) => match h.alloc(*len) {
                Ok(off) => {
                    live.push((off, (*len).max(1)));
                    trace.push(off as isize);
                }
                Err(HeapError::OutOfMemory { .. }) => trace.push(-1),
                Err(e) => panic!("unexpected error {e}"),
            },
            Op::AllocAligned(len, apow) => {
                let align = 1usize << apow;
                match h.alloc_aligned(*len, align) {
                    Ok(off) => {
                        assert_eq!(off % align, 0, "misaligned allocation");
                        live.push((off, (*len).max(1)));
                        trace.push(off as isize);
                    }
                    Err(HeapError::OutOfMemory { .. }) => trace.push(-1),
                    Err(e) => panic!("unexpected error {e}"),
                }
            }
            Op::Free(i) => {
                if live.is_empty() {
                    trace.push(-2);
                    continue;
                }
                let idx = i % live.len();
                let (off, _) = live.swap_remove(idx);
                h.free(off).expect("freeing a live allocation must work");
                trace.push(off as isize);
            }
            Op::Realloc(i, new_len) => {
                if live.is_empty() {
                    trace.push(-2);
                    continue;
                }
                let idx = i % live.len();
                let (off, _) = live[idx];
                match h.realloc(off, *new_len) {
                    Ok(new_off) => {
                        live[idx] = (new_off, (*new_len).max(1));
                        trace.push(new_off as isize);
                    }
                    Err(HeapError::OutOfMemory { .. }) => trace.push(-1),
                    Err(e) => panic!("unexpected error {e}"),
                }
            }
        }
        h.check_invariants();
        // Live allocations never overlap.
        let mut sorted = live.clone();
        sorted.sort();
        for w in sorted.windows(2) {
            assert!(w[0].0 + w[0].1 <= w[1].0, "overlap: {w:?}");
        }
    }
    // Free everything: the heap must coalesce back to one block.
    for (off, _) in live {
        h.free(off).unwrap();
        h.check_invariants();
    }
    assert_eq!(h.allocated(), 0);
    assert_eq!(h.alloc(heap_size - 16).map(|_| ()), Ok(()));
    trace
}

#[test]
fn invariants_hold_under_arbitrary_ops() {
    pt::check(
        pt::Config::with_cases(CASES),
        pt::vec(op_strategy(), 1..120),
        |ops| {
            run_ops(64 * 1024, &ops);
        },
    );
}

#[test]
fn replicas_stay_symmetric() {
    pt::check(
        pt::Config::with_cases(CASES),
        pt::vec(op_strategy(), 1..80),
        |ops| {
            // The symmetry property shmalloc relies on: identical op
            // sequences yield identical offsets on every "PE".
            let a = run_ops(32 * 1024, &ops);
            let b = run_ops(32 * 1024, &ops);
            assert_eq!(a, b);
        },
    );
}

#[test]
fn allocations_fit_within_heap() {
    pt::check(
        pt::Config::with_cases(CASES),
        pt::vec(1usize..4096, 1..40),
        |sizes| {
            let heap_size = 64 * 1024;
            let mut h = Heap::new(heap_size);
            for s in sizes {
                if let Ok(off) = h.alloc(s) {
                    assert!(off + s <= heap_size);
                }
            }
            h.check_invariants();
        },
    );
}
