//! Portability across engines — the OpenSHMEM promise the paper's
//! case studies demonstrate across libraries, demonstrated here across
//! execution engines: the same application source runs unmodified on
//! the native engine, the timed engine, and the multi-chip engine, and
//! produces the same answers.

use tshmem::prelude::*;
use tshmem::runtime::{launch, launch_multichip, launch_timed};
use tshmem_apps::cbir::{cbir_serial, cbir_shmem, CbirConfig};
use tshmem_apps::fft::{fft2d_shmem, serial_checksum, Fft2dConfig};

fn cfg(npes: usize) -> RuntimeConfig {
    RuntimeConfig::new(npes)
        .with_partition_bytes(2 << 20)
        .with_private_bytes(1 << 14)
        .with_temp_bytes(1 << 12)
}

#[test]
fn fft_runs_identically_on_all_three_engines() {
    let fcfg = Fft2dConfig { n: 32, seed: 11, ..Fft2dConfig::default() };
    let expect = serial_checksum(&fcfg);
    let near = |cs: f64| (cs - expect).abs() / expect < 1e-4;

    let native = launch(&cfg(4), move |ctx| fft2d_shmem(ctx, &fcfg).checksum);
    assert!(native.iter().all(|c| near(*c)), "native {native:?}");

    let timed = launch_timed(&cfg(4), move |ctx| fft2d_shmem(ctx, &fcfg).checksum);
    assert!(timed.values.iter().all(|c| near(*c)), "timed");

    let multi = launch_multichip(&cfg(2), 2, move |ctx| fft2d_shmem(ctx, &fcfg).checksum);
    assert!(multi.values.iter().all(|c| near(*c)), "multichip");
}

#[test]
fn cbir_runs_identically_on_all_three_engines() {
    let ccfg = CbirConfig::tiny();
    let expect: Vec<u32> = cbir_serial(&ccfg).iter().map(|m| m.image).collect();

    let native = launch(&cfg(3), move |ctx| {
        cbir_shmem(ctx, &ccfg).matches.iter().map(|m| m.image).collect::<Vec<_>>()
    });
    let timed = launch_timed(&cfg(3), move |ctx| {
        cbir_shmem(ctx, &ccfg).matches.iter().map(|m| m.image).collect::<Vec<_>>()
    });
    let multi = launch_multichip(&cfg(3), 2, move |ctx| {
        cbir_shmem(ctx, &ccfg).matches.iter().map(|m| m.image).collect::<Vec<_>>()
    });
    for per_pe in native.iter().chain(&timed.values).chain(&multi.values) {
        assert_eq!(per_pe, &expect);
    }
}

#[test]
fn multichip_slower_than_single_chip_for_the_same_app() {
    // The engines agree on answers but not on clocks: crossing chips
    // costs (that is the point of the §VI study).
    let fcfg = Fft2dConfig { n: 64, seed: 5, ..Fft2dConfig::default() };
    let single = launch_timed(&cfg(4), move |ctx| fft2d_shmem(ctx, &fcfg).elapsed_ns);
    let multi = launch_multichip(&cfg(2), 2, move |ctx| fft2d_shmem(ctx, &fcfg).elapsed_ns);
    assert!(
        multi.values[0] > 1.5 * single.values[0],
        "4 PEs on 2 chips {} must be slower than on 1 chip {}",
        multi.values[0],
        single.values[0]
    );
}
