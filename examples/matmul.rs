//! Distributed dense matrix multiply (C = A × B) with a SUMMA-style
//! algorithm: A and B are row-block distributed; each step broadcasts
//! one block-row of B and every PE accumulates its contribution — a
//! classic PGAS workload combining collectives with local compute.
//!
//! ```text
//! cargo run --release --example matmul -- [n] [npes]
//! ```

use tshmem::prelude::*;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let n: usize = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(192);
    let npes: usize = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(4);
    assert!(n.is_multiple_of(npes), "n must divide evenly for this example");
    let rows = n / npes;

    let cfg = RuntimeConfig::new(npes).with_partition_bytes((4 * n * n / npes + (1 << 20)) * 8);
    let checksums = tshmem::launch(&cfg, move |ctx| {
        let me = ctx.my_pe();

        // Block-distributed matrices: each PE owns `rows` rows.
        let a = ctx.shmalloc::<f64>(rows * n);
        let b = ctx.shmalloc::<f64>(rows * n);
        let c = ctx.shmalloc::<f64>(rows * n);
        let bcast = ctx.shmalloc::<f64>(rows * n); // broadcast buffer

        // Deterministic contents: A[i][j] = i + 2j, B[i][j] = i - j.
        ctx.with_local_mut(&a, |m| {
            for r in 0..rows {
                let gi = me * rows + r;
                for j in 0..n {
                    m[r * n + j] = (gi + 2 * j) as f64;
                }
            }
        });
        ctx.with_local_mut(&b, |m| {
            for r in 0..rows {
                let gi = me * rows + r;
                for j in 0..n {
                    m[r * n + j] = gi as f64 - j as f64;
                }
            }
        });
        ctx.local_fill(&c, 0.0);
        ctx.barrier_all();

        // SUMMA over block-rows: step k broadcasts PE k's block of B;
        // every PE multiplies its matching columns of A against it.
        for k in 0..ctx.n_pes() {
            ctx.broadcast(&bcast, &b, rows * n, k, ctx.world());
            let bsrc = if me == k { &b } else { &bcast };
            ctx.with_local(bsrc, |bblk| {
                ctx.with_local(&a, |ablk| {
                    ctx.with_local_mut(&c, |cblk| {
                        for r in 0..rows {
                            for kk in 0..rows {
                                let aval = ablk[r * n + (k * rows + kk)];
                                if aval == 0.0 {
                                    continue;
                                }
                                let brow = &bblk[kk * n..kk * n + n];
                                let crow = &mut cblk[r * n..r * n + n];
                                for j in 0..n {
                                    crow[j] += aval * brow[j];
                                }
                            }
                        }
                    });
                });
            });
            ctx.compute_flops((rows * rows * n * 2) as f64);
        }
        ctx.barrier_all();

        // Verify a few entries against the closed form and produce a
        // checksum. C[i][j] = sum_k (i + 2k)(k - j).
        let closed = |i: f64, j: f64| {
            let nn = n as f64;
            // sum_k (i*k - i*j + 2k^2 - 2kj)
            let sk = nn * (nn - 1.0) / 2.0;
            let sk2 = (nn - 1.0) * nn * (2.0 * nn - 1.0) / 6.0;
            i * sk - i * j * nn + 2.0 * sk2 - 2.0 * j * sk
        };
        let cs = ctx.with_local(&c, |m| {
            for r in (0..rows).step_by(rows.max(1) / 2 + 1) {
                let gi = me * rows + r;
                for j in [0usize, n / 2, n - 1] {
                    let want = closed(gi as f64, j as f64);
                    let got = m[r * n + j];
                    assert!(
                        (got - want).abs() <= 1e-6 * want.abs().max(1.0),
                        "C[{gi}][{j}] = {got}, want {want}"
                    );
                }
            }
            m.iter().sum::<f64>()
        });

        // Global checksum via reduction.
        let s = ctx.shmalloc::<f64>(1);
        let d = ctx.shmalloc::<f64>(1);
        ctx.local_write(&s, 0, &[cs]);
        ctx.sum_to_all(&d, &s, 1, ctx.world());
        ctx.local_read(&d, 0, 1)[0]
    });

    println!(
        "matmul {n}x{n} on {npes} PEs: global checksum {:.6e}",
        checksums[0]
    );
    assert!(checksums.iter().all(|c| (c - checksums[0]).abs() < 1e-6));
    println!("matmul OK (verified against the closed form)");
}
