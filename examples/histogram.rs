//! Distributed histogram with SHMEM atomics — exercises `shmem_fadd`
//! under real contention, plus a lock-guarded summary stage.
//!
//! Every PE classifies a slab of synthetic samples into a histogram that
//! lives on PE 0, updating bins with remote atomic adds; a distributed
//! lock then serializes the pretty-printing.
//!
//! ```text
//! cargo run --release --example histogram -- [samples_per_pe] [npes]
//! ```

use tshmem::prelude::*;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let per_pe: usize = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(100_000);
    let npes: usize = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(6);
    const BINS: usize = 16;

    let cfg = RuntimeConfig::new(npes).with_partition_bytes(1 << 20);
    let totals = tshmem::launch(&cfg, move |ctx| {
        let me = ctx.my_pe();
        let hist = ctx.shmalloc::<u64>(BINS);
        let lock = ctx.shmalloc::<i64>(1);
        ctx.local_fill(&hist, 0u64);
        ctx.local_write(&lock, 0, &[0i64]);
        ctx.barrier_all();

        // Classify our samples into PE 0's histogram with atomic adds.
        let mut state = 0x9E3779B97F4A7C15u64 ^ (me as u64) << 32;
        let mut local = [0u64; BINS];
        for _ in 0..per_pe {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            local[(state % BINS as u64) as usize] += 1;
        }
        // Batch per-bin counts into remote atomics (one fadd per bin).
        for (bin, count) in local.iter().enumerate() {
            if *count > 0 {
                ctx.fadd(&hist, bin, *count, 0);
            }
        }
        ctx.barrier_all();

        // Lock-serialized reporting.
        ctx.set_lock(&lock);
        if me == 0 {
            println!("histogram on PE 0 (from PE {me}'s view):");
            for (b, v) in ctx.local_read(&hist, 0, BINS).iter().enumerate() {
                println!("  bin {b:2}: {v}");
            }
        }
        ctx.clear_lock(&lock);
        ctx.barrier_all();

        // Verify total count.
        let total: u64 = (0..BINS).map(|b| ctx.g(&hist, b, 0)).sum();
        total
    });

    let expect = (per_pe * npes) as u64;
    assert!(totals.iter().all(|t| *t == expect));
    println!("histogram OK: {expect} samples counted exactly once each");
}
