//! The paper's CBIR case study (Section V-B / Figure 14): content-based
//! image retrieval with color-autocorrelogram features over a synthetic
//! image database.
//!
//! ```text
//! cargo run --release --example cbir -- [num_images] [npes] [query]
//! ```

use tshmem::prelude::*;
use tshmem_apps::cbir::{cbir_serial, cbir_shmem, CbirConfig};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let num_images: usize = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(500);
    let npes: usize = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(8);
    let query: usize = args.get(3).and_then(|s| s.parse().ok()).unwrap_or(17);
    let ccfg = CbirConfig {
        num_images,
        query,
        ..CbirConfig::default()
    };

    println!(
        "CBIR: querying image {query} against {num_images} images of {}x{} on {npes} PEs",
        ccfg.dim, ccfg.dim
    );

    let cfg = RuntimeConfig::new(npes).with_partition_bytes(1 << 20);
    let out = tshmem::launch(&cfg, move |ctx| cbir_shmem(ctx, &ccfg));
    let result = &out[0];
    println!(
        "search took {:.1} ms wall on the native engine",
        result.elapsed_ns / 1e6
    );
    println!("top matches (image, L1 distance):");
    for m in &result.matches {
        println!("  image {:5}  distance {:.4}", m.image, m.distance);
    }

    // Cross-check against the serial reference.
    let reference = cbir_serial(&ccfg);
    assert_eq!(result.matches.len(), reference.len());
    for (a, b) in result.matches.iter().zip(&reference) {
        assert_eq!(a.image, b.image, "distributed result diverged from serial");
    }
    println!("verified against the serial reference: OK");
}
