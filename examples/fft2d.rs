//! The paper's 2D-FFT case study (Section V-A / Figure 13).
//!
//! Runs the distributed FFT on the native engine for correctness and on
//! the timed engine for the modeled TILE-Gx36 vs TILEPro64 comparison.
//!
//! ```text
//! cargo run --release --example fft2d -- [n] [npes]
//! ```

use tile_arch::device::Device;
use tshmem::prelude::*;
use tshmem_apps::fft::{fft2d_shmem, serial_checksum, Fft2dConfig};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let n: usize = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(256);
    let npes: usize = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(8);
    let fcfg = Fft2dConfig { n, seed: 0xF1, ..Fft2dConfig::default() };

    println!("2D-FFT of {n}x{n} complex floats on {npes} PEs");
    let expect = serial_checksum(&fcfg);
    println!("serial reference checksum: {expect:.3}");

    let partition = n * n * 8 + 4 * (n / npes + 1) * n * 8 + (1 << 20);
    let base = RuntimeConfig::new(npes).with_partition_bytes(partition);

    // Native engine: real threads, real wall time.
    let out = tshmem::launch(&base, move |ctx| fft2d_shmem(ctx, &fcfg));
    let native = &out[0];
    let rel = (native.checksum - expect).abs() / expect;
    println!(
        "native engine: {:.3} ms wall, checksum rel err {rel:.2e}",
        native.elapsed_ns / 1e6
    );
    assert!(rel < 1e-4, "distributed FFT diverged from the reference");

    // Timed engine: simulated Tilera clocks, both devices.
    for device in [Device::tile_gx8036(), Device::tilepro64()] {
        let cfg = RuntimeConfig::for_device(device, npes).with_partition_bytes(partition);
        let t1 = tshmem::launch_timed(
            &RuntimeConfig::for_device(device, 1).with_partition_bytes(partition),
            move |ctx| fft2d_shmem(ctx, &fcfg).elapsed_ns,
        )
        .values[0];
        let tn = tshmem::launch_timed(&cfg, move |ctx| fft2d_shmem(ctx, &fcfg).elapsed_ns).values[0];
        println!(
            "{:12}: {:8.3} ms simulated at {npes} PEs (speedup {:.2} over 1 PE)",
            device.name,
            tn / 1e6,
            t1 / tn
        );
    }
}
