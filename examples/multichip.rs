//! Multi-device SHMEM (the paper's Section VI future work): one SHMEM
//! job spanning several simulated TILE-Gx chips connected by mPIPE
//! links, with the regime change between on-chip and cross-chip
//! communication made visible.
//!
//! ```text
//! cargo run --release --example multichip -- [chips] [pes_per_chip]
//! ```

use tshmem::prelude::*;
use tshmem::runtime::launch_multichip;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let chips: usize = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(2);
    let per_chip: usize = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(4);

    println!("SHMEM job across {chips} simulated TILE-Gx chips, {per_chip} PEs each");
    let cfg = RuntimeConfig::new(per_chip).with_partition_bytes(4 << 20);

    let out = launch_multichip(&cfg, chips, move |ctx| {
        let me = ctx.my_pe();
        let n = ctx.n_pes();
        let my_chip = me / per_chip;

        // Every PE contributes; the reduction spans all chips.
        let src = ctx.shmalloc::<i64>(1);
        let dst = ctx.shmalloc::<i64>(1);
        ctx.local_write(&src, 0, &[me as i64 + 1]);
        ctx.sum_to_all(&dst, &src, 1, ctx.world());
        let sum = ctx.local_read(&dst, 0, 1)[0];
        assert_eq!(sum, (n * (n + 1) / 2) as i64);

        // PE 0 measures intra- vs cross-chip put latency/bandwidth.
        let buf = ctx.shmalloc::<u64>(1 << 16);
        ctx.barrier_all();
        let mut report = None;
        if me == 0 && n > per_chip {
            let same_chip_peer = 1.min(n - 1);
            let cross_chip_peer = per_chip; // first PE of chip 1
            let sizes = [8usize, 4096, 512 * 1024];
            let mut rows = Vec::new();
            for &bytes in &sizes {
                let elems = (bytes / 8).max(1);
                let time_put = |peer: usize, ctx: &ShmemCtx| {
                    ctx.put_sym(&buf, 0, &buf, 0, elems, peer); // warm
                    let t0 = ctx.time_ns();
                    ctx.put_sym(&buf, 0, &buf, 0, elems, peer);
                    ctx.time_ns() - t0
                };
                let intra = time_put(same_chip_peer, ctx);
                let inter = time_put(cross_chip_peer, ctx);
                rows.push((bytes, intra, inter));
            }
            report = Some(rows);
        }
        ctx.barrier_all();
        (sum, my_chip, report)
    });

    println!(
        "global sum across chips: {} (simulated makespan {})",
        out.values[0].0, out.makespan
    );
    if let Some(rows) = &out.values[0].2 {
        println!("{:>10} {:>14} {:>14} {:>8}", "bytes", "intra-chip ns", "cross-chip ns", "ratio");
        for (b, intra, inter) in rows {
            println!("{b:>10} {intra:>14.0} {inter:>14.0} {:>8.1}", inter / intra);
        }
    }
    println!("multichip OK");
}
