//! Quickstart: the SHMEM programming model in one page.
//!
//! Launches 4 PEs, passes a token around a ring with one-sided puts,
//! then computes a global sum with a reduction — the canonical first
//! SHMEM program.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use tshmem::prelude::*;

fn main() {
    let npes = 4;
    let cfg = RuntimeConfig::new(npes).with_partition_bytes(1 << 20);

    let results = tshmem::launch(&cfg, |ctx| {
        let me = ctx.my_pe();
        let n = ctx.n_pes();
        println!("PE {me}/{n} up on {}", ctx.device().name);

        // A symmetric variable exists on every PE at the same offset.
        let token = ctx.shmalloc::<u64>(1);
        let flag = ctx.shmalloc::<i64>(1);
        ctx.local_write(&token, 0, &[0u64]);
        ctx.local_write(&flag, 0, &[0i64]);
        ctx.barrier_all();

        // Pass a token around the ring: PE 0 starts, each PE adds its id
        // and forwards with a put + flag.
        if me == 0 {
            ctx.p(&token, 0, 1000u64, 1 % n);
            ctx.quiet();
            ctx.p(&flag, 0, 1i64, 1 % n);
            ctx.wait(&flag, 0, 0i64); // until the token comes back
            let v = ctx.local_read(&token, 0, 1)[0];
            println!("PE 0: token returned with value {v}");
            assert_eq!(v, 1000 + (1..n as u64).sum::<u64>());
        } else {
            ctx.wait(&flag, 0, 0i64);
            let v = ctx.local_read(&token, 0, 1)[0] + me as u64;
            let next = (me + 1) % n;
            ctx.p(&token, 0, v, next);
            ctx.quiet();
            ctx.p(&flag, 0, 1i64, next);
        }
        ctx.barrier_all();

        // Collective: every PE contributes (me+1)^2; everyone learns the sum.
        let src = ctx.shmalloc::<i64>(1);
        let dst = ctx.shmalloc::<i64>(1);
        ctx.local_write(&src, 0, &[((me + 1) * (me + 1)) as i64]);
        ctx.sum_to_all(&dst, &src, 1, ctx.world());
        let sum = ctx.local_read(&dst, 0, 1)[0];
        println!("PE {me}: sum of squares = {sum}");
        sum
    });

    assert!(results.iter().all(|r| *r == 1 + 4 + 9 + 16));
    println!("quickstart OK: all {} PEs agree, sum = {}", npes, results[0]);
}
