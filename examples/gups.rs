//! GUPS (RandomAccess): the classic HPCC irregular-update benchmark on
//! SHMEM atomics. A table of 64-bit words is block-distributed; every
//! PE fires xor-updates at random global locations with
//! `shmem_longlong_fadd`-style remote atomics, then the table is
//! verified by re-applying the same stream.
//!
//! ```text
//! cargo run --release --example gups -- [log2_table] [updates_per_pe] [npes]
//! ```

use tshmem::prelude::*;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let log2_table: u32 = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(16);
    let updates: usize = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(50_000);
    let npes: usize = args.get(3).and_then(|s| s.parse().ok()).unwrap_or(4);
    let table_size = 1usize << log2_table;
    assert!(table_size.is_multiple_of(npes), "table must divide over PEs");
    let per_pe = table_size / npes;

    let cfg = RuntimeConfig::new(npes).with_partition_bytes((per_pe * 8 + (1 << 20)).max(1 << 21));
    let rates = tshmem::launch(&cfg, move |ctx| {
        let me = ctx.my_pe();
        let table = ctx.shmalloc::<u64>(per_pe);
        // Initialize: global index as content.
        ctx.with_local_mut(&table, |t| {
            for (i, v) in t.iter_mut().enumerate() {
                *v = (me * per_pe + i) as u64;
            }
        });
        ctx.barrier_all();

        // The HPCC LCG-ish random stream, seeded per PE.
        let mut x = 0x0123_4567_89AB_CDEFu64 ^ ((me as u64 + 1) << 48);
        let t0 = ctx.time_ns();
        for _ in 0..updates {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let gi = (x >> 8) as usize % (per_pe * ctx.n_pes());
            let (pe, idx) = (gi / per_pe, gi % per_pe);
            // SHMEM GUPS uses remote atomic xor; build it from the
            // atomic compare-and-swap.
            loop {
                let cur = ctx.g(&table, idx, pe);
                let new = cur ^ x;
                if ctx.cswap(&table, idx, cur, new, pe) == cur {
                    break;
                }
            }
        }
        ctx.quiet();
        let dt = ctx.time_ns() - t0;
        ctx.barrier_all();

        // Verification: xor is an involution, so replaying every PE's
        // stream restores the initial table. PE 0 replays all streams.
        if me == 0 {
            for src in 0..ctx.n_pes() {
                let mut y = 0x0123_4567_89AB_CDEFu64 ^ ((src as u64 + 1) << 48);
                for _ in 0..updates {
                    y = y.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                    let gi = (y >> 8) as usize % (per_pe * ctx.n_pes());
                    let (pe, idx) = (gi / per_pe, gi % per_pe);
                    loop {
                        let cur = ctx.g(&table, idx, pe);
                        let new = cur ^ y;
                        if ctx.cswap(&table, idx, cur, new, pe) == cur {
                            break;
                        }
                    }
                }
            }
        }
        ctx.barrier_all();
        // Table must be back to its initial contents.
        ctx.with_local(&table, |t| {
            for (i, v) in t.iter().enumerate() {
                assert_eq!(*v, (me * per_pe + i) as u64, "slot {i} corrupted");
            }
        });
        updates as f64 / (dt / 1e9) / 1e6 // MUPS per PE
    });

    let total: f64 = rates.iter().sum();
    println!(
        "GUPS: table 2^{log2_table} words, {updates} updates/PE on {npes} PEs -> {total:.2} MUPS aggregate"
    );
    println!("gups OK (table verified by involution replay)");
}
