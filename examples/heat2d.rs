//! 2D heat diffusion with halo exchange — a classic PGAS stencil
//! workload exercising puts, point-to-point synchronization, and
//! reductions (a domain-specific example beyond the paper's two case
//! studies).
//!
//! The grid is row-block distributed; each iteration PEs exchange halo
//! rows with one-sided puts + flag signals, apply a 5-point stencil, and
//! every few steps a max-reduction computes the global residual.
//!
//! ```text
//! cargo run --release --example heat2d -- [grid] [npes] [steps]
//! ```

use tshmem::prelude::*;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let n: usize = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(256);
    let npes: usize = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(4);
    let steps: usize = args.get(3).and_then(|s| s.parse().ok()).unwrap_or(200);

    let cfg = RuntimeConfig::new(npes).with_partition_bytes((6 * n * n / npes + (1 << 20)) * 8);
    let residuals = tshmem::launch(&cfg, move |ctx| run(ctx, n, steps));
    let (first, last) = residuals[0];
    println!(
        "heat2d: {n}x{n} grid, {npes} PEs, {steps} steps -> residual {first:.3e} -> {last:.3e}"
    );
    assert!(residuals.iter().all(|r| (r.1 - last).abs() < 1e-12));
    assert!(last < first, "diffusion must be converging toward steady state");
}

fn run(ctx: &ShmemCtx, n: usize, steps: usize) -> (f64, f64) {
    let me = ctx.my_pe();
    let npes = ctx.n_pes();
    let rows = n / npes + usize::from(me < n % npes);
    let max_rows = n / npes + 1;

    // Local block with two halo rows; double-buffered.
    let cur = ctx.shmalloc::<f64>((max_rows + 2) * n);
    let next = ctx.shmalloc::<f64>((max_rows + 2) * n);
    // Halo-ready flags: [step parity][from: 0 = above, 1 = below].
    let flags = ctx.shmalloc::<i64>(4);

    // Initial condition: a hot stripe on PE 0's top boundary.
    ctx.with_local_mut(&cur, |b| {
        b.fill(0.0);
        if me == 0 {
            for c in 0..n {
                b[n + c] = 100.0; // first interior row
            }
        }
    });
    ctx.local_fill(&next, 0.0);
    ctx.local_fill(&flags, 0i64);
    ctx.barrier_all();

    let up = (me > 0).then(|| me - 1);
    let down = (me + 1 < npes).then(|| me + 1);
    let mut first_residual = None;
    let mut residual = f64::INFINITY;

    for step in 0..steps {
        let (src, dst) = if step % 2 == 0 { (&cur, &next) } else { (&next, &cur) };
        // Monotonic per-step flag value: reuse-safe across iterations.
        let stamp = step as i64 + 1;

        // Send halo rows: my first interior row to the PE above (as its
        // bottom halo), my last interior row to the PE below (as its top
        // halo).
        if let Some(up) = up {
            let u_rows = n / npes + usize::from(up < n % npes);
            let row = ctx.local_read(src, n, n);
            ctx.put(&src.slice((u_rows + 1) * n, n), 0, &row, up);
            ctx.quiet();
            ctx.p(&flags, 1, stamp, up); // "from below" flag
        }
        if let Some(down) = down {
            let row = ctx.local_read(src, rows * n, n);
            ctx.put(&src.slice(0, n), 0, &row, down);
            ctx.quiet();
            ctx.p(&flags, 0, stamp, down); // "from above" flag
        }
        // Await halos.
        if up.is_some() {
            ctx.wait_until(&flags, 0, Cmp::Ge, stamp);
        }
        if down.is_some() {
            ctx.wait_until(&flags, 1, Cmp::Ge, stamp);
        }

        // 5-point stencil over interior rows.
        let mut local_res: f64 = 0.0;
        ctx.with_local_mut(dst, |d| {
            ctx.with_local(src, |s| {
                for r in 1..=rows {
                    for c in 0..n {
                        let left = if c > 0 { s[r * n + c - 1] } else { s[r * n + c] };
                        let right = if c + 1 < n { s[r * n + c + 1] } else { s[r * n + c] };
                        // Global boundary rows are fixed at 0 except the
                        // hot stripe, which we re-pin below.
                        let v = 0.25 * (s[(r - 1) * n + c] + s[(r + 1) * n + c] + left + right);
                        local_res = local_res.max((v - s[r * n + c]).abs());
                        d[r * n + c] = v;
                    }
                }
                if me == 0 {
                    for c in 0..n {
                        d[n + c] = 100.0; // pin the hot stripe
                    }
                }
            });
        });
        ctx.compute_flops((rows * n) as f64 * 5.0);

        // Global residual every 50 steps.
        if step % 50 == 49 {
            let src_r = ctx.shmalloc::<f64>(1);
            let dst_r = ctx.shmalloc::<f64>(1);
            ctx.local_write(&src_r, 0, &[local_res]);
            ctx.max_to_all(&dst_r, &src_r, 1, ctx.world());
            residual = ctx.local_read(&dst_r, 0, 1)[0];
            first_residual.get_or_insert(residual);
            ctx.shfree(dst_r);
            ctx.shfree(src_r);
        }
        ctx.barrier_all();
    }
    (first_residual.unwrap_or(residual), residual)
}
