//! Parallel sample sort — the classic PGAS sorting algorithm:
//! local sort, splitter selection via `fcollect`, all-to-all bucket
//! exchange with one-sided puts, and a final local merge. Exercises
//! collectives, variable-size data movement, and `wait_until`-free
//! flag synchronization through atomics.
//!
//! ```text
//! cargo run --release --example samplesort -- [keys_per_pe] [npes]
//! ```

use tshmem::prelude::*;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let per_pe: usize = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(50_000);
    let npes: usize = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(4);
    let oversample = 8;

    let cfg = RuntimeConfig::new(npes)
        .with_partition_bytes((4 * per_pe * npes / npes.max(1) * 8 + (8 << 20)).max(16 << 20));
    let results = tshmem::launch(&cfg, move |ctx| run(ctx, per_pe, oversample));

    let total: usize = results.iter().map(|r| r.kept).sum();
    assert_eq!(total, per_pe * npes, "no key lost or duplicated");
    // Global order: each PE's max <= next PE's min.
    for w in results.windows(2) {
        if w[0].kept > 0 && w[1].kept > 0 {
            assert!(w[0].max <= w[1].min, "bucket boundaries out of order");
        }
    }
    println!(
        "samplesort: {} keys over {npes} PEs -> globally sorted ({} buckets verified)",
        per_pe * npes,
        results.len()
    );
}

struct BucketResult {
    kept: usize,
    min: u64,
    max: u64,
}

fn run(ctx: &ShmemCtx, per_pe: usize, oversample: usize) -> BucketResult {
    let me = ctx.my_pe();
    let n = ctx.n_pes();

    // 1. Generate and locally sort.
    let mut keys: Vec<u64> = {
        let mut x = 0xDEAD_BEEF_u64 ^ ((me as u64 + 1) << 40);
        (0..per_pe)
            .map(|_| {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                x
            })
            .collect()
    };
    keys.sort_unstable();

    // 2. Sample splitters: each PE contributes `oversample` samples;
    //    fcollect gathers them everywhere; everyone picks the same
    //    n-1 splitters.
    let samples_sym = ctx.shmalloc::<u64>(oversample);
    let all_samples = ctx.shmalloc::<u64>(oversample * n);
    let samples: Vec<u64> = (0..oversample)
        .map(|i| keys[(i + 1) * per_pe / (oversample + 1)])
        .collect();
    ctx.local_write(&samples_sym, 0, &samples);
    ctx.fcollect(&all_samples, &samples_sym, oversample, ctx.world());
    let mut pool = ctx.local_read(&all_samples, 0, oversample * n);
    pool.sort_unstable();
    let splitters: Vec<u64> = (1..n).map(|i| pool[i * oversample]).collect();

    // 3. Bucket exchange: each PE owns incoming space of 4x the average
    //    (xorshift keys are near-uniform) plus a fill counter bumped
    //    with remote atomics.
    let cap = 4 * per_pe;
    let inbox = ctx.shmalloc::<u64>(cap);
    let fill = ctx.shmalloc::<u64>(1);
    ctx.local_write(&fill, 0, &[0u64]);
    ctx.barrier_all();

    let mut start = 0usize;
    #[allow(clippy::needless_range_loop)] // bucket is a PE id, not just an index
    for bucket in 0..n {
        let end = if bucket + 1 < n {
            keys.partition_point(|k| *k < splitters[bucket])
        } else {
            keys.len()
        };
        let chunk = &keys[start..end];
        if !chunk.is_empty() {
            // Reserve space in the destination inbox atomically, then
            // put the chunk there.
            let off = ctx.fadd(&fill, 0, chunk.len() as u64, bucket) as usize;
            assert!(off + chunk.len() <= cap, "inbox overflow on PE {bucket}");
            ctx.put(&inbox, off, chunk, bucket);
        }
        start = end;
    }
    ctx.quiet();
    ctx.barrier_all();

    // 4. Final local sort of the received bucket.
    let kept = ctx.local_read(&fill, 0, 1)[0] as usize;
    let mut bucket = ctx.local_read(&inbox, 0, kept);
    bucket.sort_unstable();
    // Everything in my bucket respects my splitter range.
    if me > 0 {
        assert!(bucket.first().is_none_or(|k| *k >= splitters[me - 1]));
    }
    if me + 1 < n {
        assert!(bucket.last().is_none_or(|k| *k < splitters[me]));
    }
    ctx.barrier_all();

    BucketResult {
        kept,
        min: bucket.first().copied().unwrap_or(u64::MAX),
        max: bucket.last().copied().unwrap_or(0),
    }
}
