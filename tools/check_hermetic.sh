#!/usr/bin/env bash
# Verify the workspace builds and tests hermetically — no network, no
# external crates — and that no source file outside crates/bench imports
# an external dependency.
#
# The seed of this repo failed to build offline because workspace crates
# pulled parking_lot / crossbeam_channel / rand / proptest / criterion
# from a registry that is empty in the build environment. Everything now
# runs on the in-tree `substrate` crate; this script is the regression
# gate for that property. Run it from the repo root:
#
#   tools/check_hermetic.sh
set -euo pipefail

cd "$(dirname "$0")/.."

echo "== hermetic build (offline, release) =="
cargo build --release --offline

echo "== clippy (offline, warnings are errors) =="
cargo clippy --workspace --offline --all-targets -- -D warnings

echo "== hermetic tests (offline, tier-1 root package) =="
cargo test -q --offline

echo "== hermetic tests (offline, full workspace incl. stress suites) =="
cargo test -q --offline --workspace

echo "== stress harness replay demo (seeded, watchdog armed) =="
cargo run -q --offline -p stress -- --seed 0x2 --pes 4 --depth 2

echo "== fault matrix (3 canned plans x four engines, watchdog armed) =="
# Every seeded fault plan must either be tolerated (exit 0: the run
# converges to the oracle) or be caught by the watchdog with a diagnosis
# (exit 2). Any other exit — especially a hang — fails the gate. The
# coop rows run 4 PEs on 2 workers, so injected delays also cross the
# gate-release-around-sleep path.
for plan in 0x11 0x21 0x31; do
    for engine in native timed multichip coop; do
        echo "-- fault plan $plan on $engine --"
        rc=0
        cargo run -q --offline -p stress -- \
            --seed 0x5 --pes 4 --depth 2 --engine "$engine" \
            --fault-plan "$plan" || rc=$?
        if [ "$rc" -ne 0 ] && [ "$rc" -ne 2 ]; then
            echo "FAIL: fault plan $plan on $engine exited $rc (want 0 or 2)" >&2
            exit 1
        fi
    done
done

echo "== perf smoke (native suite, hermetic, schema-checked) =="
# The perf gate must *run* and emit well-formed JSON on every commit;
# thresholds are reported (vs BENCH_native_baseline.json, when present)
# but not enforced until a bench trajectory exists. --quick keeps the
# smoke under a minute; full numbers come from the un-flagged run
# documented in EXPERIMENTS.md.
cargo build -q --release --offline -p microbench
./target/release/microbench --native-suite --quick --out BENCH_native_smoke.json
python3 - <<'PYEOF'
import json, sys
with open("BENCH_native_smoke.json") as f:
    doc = json.load(f)
for key in ("suite", "npes", "benchmarks", "traced_over_untraced"):
    assert key in doc, f"BENCH_native_smoke.json missing key: {key}"
assert doc["benchmarks"], "BENCH_native_smoke.json has no benchmarks"
for name, b in doc["benchmarks"].items():
    assert b.get("ns_per_op", 0) > 0, f"{name}: non-positive ns_per_op"
try:
    with open("BENCH_native.json") as f:
        ref = json.load(f)["benchmarks"]
    for name, b in doc["benchmarks"].items():
        if name in ref and ref[name]["ns_per_op"] > 0:
            r = b["ns_per_op"] / ref[name]["ns_per_op"]
            print(f"  {name:24s} {b['ns_per_op']:12.1f} ns/op  ({r:5.2f}x of committed)")
except FileNotFoundError:
    print("  (no committed BENCH_native.json to compare against)")
print("perf smoke: schema OK")
PYEOF
rm -f BENCH_native_smoke.json

echo "== locality equivalence suite (coop fast paths on vs off) =="
# The same-worker fast paths are transport substitutions: flipping
# `fault::set_coop_locality` must not change final state (sequential
# oracle) or API-level Stats on seeded gen-v4 programs. Runs inside the
# workspace pass too; this named step keeps the ablation gate visible.
cargo test -q --offline -p stress --test locality_equivalence

echo "== scaling smoke (coop suite, 64/256/1024 PEs, schema-checked) =="
# The M:N scaling suite must run to completion (a 1024-PE barrier
# finishing at all is part of the check) and emit well-formed JSON with
# both barrier algorithms plus the locality-on ablation rows measured
# at every scale, and the resolved worker count recorded (never the
# raw `0` auto-size request). Ratios are reported, not enforced — the
# committed BENCH_coop.json is the reference trajectory.
./target/release/microbench --coop-suite --quick --out BENCH_coop_smoke.json
python3 - <<'PYEOF'
import json
with open("BENCH_coop_smoke.json") as f:
    doc = json.load(f)
for key in ("suite", "workers", "workers_requested", "entries"):
    assert key in doc, f"BENCH_coop_smoke.json missing key: {key}"
assert doc["suite"] == "coop"
assert doc["workers"] > 0, "top-level workers not resolved (auto-size bug)"
scales = sorted(e["npes"] for e in doc["entries"])
assert scales == [64, 256, 1024], f"unexpected scales: {scales}"
for e in doc["entries"]:
    assert e["workers"] > 0, f"{e['npes']} PEs: unresolved workers"
    for name in ("barrier_flat_dissemination", "barrier_hier",
                 "barrier_hier_local", "reduce_hier", "reduce_hier_local"):
        ns = e["benchmarks"][name]["ns_per_op"]
        assert ns > 0, f"{e['npes']} PEs {name}: non-positive ns_per_op"
    print(f"  {e['npes']:5d} PEs  hier/flat {e['hier_over_flat']:.3f}  "
          f"locality speedup {e['local_speedup']:.2f}x")
print("coop scaling smoke: schema OK")
PYEOF
rm -f BENCH_coop_smoke.json

echo "== nbi overlap smoke (put trains + FFT transpose ablation, schema-checked) =="
# The nbi ablation must run and emit well-formed JSON with both arms of
# each pair measured. The blocking-vs-nbi ratios are reported, not
# enforced in the smoke (quick mode on a loaded CI box is noisy) — the
# committed BENCH_nbi.json is the reference trajectory showing the
# overlapped transpose beating the blocking one.
./target/release/microbench --nbi-suite --quick --out BENCH_nbi_smoke.json
python3 - <<'PYEOF'
import json
with open("BENCH_nbi_smoke.json") as f:
    doc = json.load(f)
for key in ("suite", "npes", "fft_n", "benchmarks",
            "nbi_over_blocking", "train_nbi_over_blocking"):
    assert key in doc, f"BENCH_nbi_smoke.json missing key: {key}"
assert doc["suite"] == "nbi"
for name in ("static_put_train_blocking", "static_put_train_nbi",
             "fft_transpose_blocking", "fft_transpose_nbi",
             "fft_transpose_direct"):
    ns = doc["benchmarks"][name]["ns_per_op"]
    assert ns > 0, f"{name}: non-positive ns_per_op"
print(f"  fft nbi/blocking {doc['nbi_over_blocking']:.3f}  "
      f"train nbi/blocking {doc['train_nbi_over_blocking']:.3f}")
print("nbi overlap smoke: schema OK")
PYEOF
rm -f BENCH_nbi_smoke.json

echo "== server suite smoke (pool throughput, schema-checked) =="
# The multi-tenant server suite must run fault-free to completion on
# both schedulers and emit well-formed JSON. Absolute jobs/sec is
# box-dependent and reported vs the committed BENCH_server.json, not
# enforced.
./target/release/microbench --server-suite --quick --out BENCH_server_smoke.json
python3 - <<'PYEOF'
import json
with open("BENCH_server_smoke.json") as f:
    doc = json.load(f)
for key in ("suite", "jobs", "pool_workers", "entries"):
    assert key in doc, f"BENCH_server_smoke.json missing key: {key}"
assert doc["suite"] == "server"
scheds = sorted(e["scheduler"] for e in doc["entries"])
assert scheds == ["fair", "round_robin"], f"unexpected schedulers: {scheds}"
for e in doc["entries"]:
    assert e["jobs_per_sec"] > 0, f"{e['scheduler']}: non-positive jobs/sec"
    assert 0 < e["p50_ns"] <= e["p99_ns"], f"{e['scheduler']}: bad latency quantiles"
try:
    with open("BENCH_server.json") as f:
        ref = {e["scheduler"]: e for e in json.load(f)["entries"]}
    for e in doc["entries"]:
        r = ref.get(e["scheduler"])
        if r and r["jobs_per_sec"] > 0:
            x = e["jobs_per_sec"] / r["jobs_per_sec"]
            print(f"  {e['scheduler']:12s} {e['jobs_per_sec']:8.1f} jobs/sec  "
                  f"({x:5.2f}x of committed)")
except FileNotFoundError:
    print("  (no committed BENCH_server.json to compare against)")
print("server suite smoke: schema OK")
PYEOF
rm -f BENCH_server_smoke.json

echo "== timed suite smoke (event core + virtual-time barriers, schema-checked) =="
# The timed-engine suite must run to completion — a 1024-PE (2048-LP)
# timed barrier finishing in both scheduling disciplines is part of the
# check — and emit well-formed JSON with both event cores and both
# disciplines measured. Ratios are reported vs the committed
# BENCH_timed.json and the hand-measured pre-refactor baseline in
# BENCH_timed_baseline.json, not enforced in the smoke.
./target/release/microbench --timed-suite --quick --out BENCH_timed_smoke.json
python3 - <<'PYEOF'
import json
with open("BENCH_timed_smoke.json") as f:
    doc = json.load(f)
for key in ("suite", "quick", "event_core", "barriers"):
    assert key in doc, f"BENCH_timed_smoke.json missing key: {key}"
assert doc["suite"] == "timed"
chains = sorted(e["chains"] for e in doc["event_core"]["entries"])
assert chains == [256, 1024, 16384], f"unexpected chain scales: {chains}"
for e in doc["event_core"]["entries"]:
    for k in ("calendar_events_per_sec", "heap_events_per_sec"):
        assert e[k] > 0, f"{e['chains']} chains: non-positive {k}"
scales = sorted(e["npes"] for e in doc["barriers"]["entries"])
assert scales == [64, 256, 1024], f"unexpected barrier scales: {scales}"
for e in doc["barriers"]["entries"]:
    for k in ("event_driven_ns_per_op", "cycle_box_ns_per_op"):
        assert e[k] > 0, f"{e['npes']} PEs: non-positive {k}"
    print(f"  {e['npes']:5d} PEs  cb/ed {e['cycle_box_over_event_driven']:.3f}")
try:
    with open("BENCH_timed_baseline.json") as f:
        base = json.load(f)["barrier_ns_per_op"]
    for e in doc["barriers"]["entries"]:
        b = base.get(str(e["npes"]), 0)
        if b > 0:
            print(f"  {e['npes']:5d} PEs  engine speedup vs pre-refactor: "
                  f"ed {b / e['event_driven_ns_per_op']:.2f}x  "
                  f"cb {b / e['cycle_box_ns_per_op']:.2f}x")
except FileNotFoundError:
    print("  (no BENCH_timed_baseline.json to compare against)")
print("timed suite smoke: schema OK")
PYEOF
rm -f BENCH_timed_smoke.json

echo "== server fault-mix smoke (open-loop serve, seeded hostile tenants) =="
# A short serve run with seeded panics and wedges: every healthy job
# must complete oracle-clean and every hostile one must resolve in its
# expected outcome class (Faulted / Evicted with diagnosis) — a pool
# stall or misclassified job exits non-zero and fails the gate.
cargo run -q --offline --release -p stress -- \
    --serve --jobs 60 --fault-frac 0.1 --seed 0x51

echo "== server PanicPe canary (one-shot caught-class fault) =="
# The injected PE panic must surface as exactly one Faulted job while
# the rest of the stream completes — the pool survives a crashing
# tenant without damage.
cargo run -q --offline --release -p stress -- \
    --serve --jobs 8 --panic-pe 1 --seed 0x55

echo "== hot-path allocation allowlist (rma / barrier / coop / hier / server / desim) =="
# The RMA and barrier hot paths are allocation-free by design, and the
# M:N scheduler, hierarchical collectives, and the timed-engine event
# core stay on that diet: any `to_vec()` or `vec![` there must carry a
# `// cold:` justification on the same line or one of the two lines
# above it.
python3 - <<'PYEOF'
import re, sys
bad = []
for path in ("crates/core/src/rma.rs", "crates/core/src/sync/barrier.rs",
             "crates/core/src/engine/coop.rs",
             "crates/core/src/collectives/hier.rs",
             "crates/core/src/server/pool.rs",
             "crates/desim/src/events.rs", "crates/desim/src/coop.rs"):
    lines = open(path).read().splitlines()
    # The diet covers runtime code only: stop at the unit-test module.
    for i, line in enumerate(lines):
        if line.lstrip().startswith("#[cfg(test)]"):
            lines = lines[:i]
            break
    for i, line in enumerate(lines):
        if re.search(r'\.to_vec\(\)|vec!\[', line) and "// cold:" not in line:
            context = lines[max(0, i - 2) : i]
            if not any("// cold:" in c for c in context):
                bad.append(f"{path}:{i + 1}: {line.strip()}")
if bad:
    print("FAIL: unjustified allocation in a hot path (add a `// cold:` comment):",
          file=sys.stderr)
    for b in bad:
        print("  " + b, file=sys.stderr)
    sys.exit(1)
print("OK: hot-path allocations all carry `// cold:` justifications")
PYEOF

echo "== external-import scan (everything outside crates/bench) =="
# crates/bench is excluded from the workspace and holds the only
# permitted external dependency (criterion, behind --features
# bench-external); every other source tree must be std + substrate only.
pattern='use (parking_lot|crossbeam|rand|proptest|criterion)'
scan_dirs=()
for d in crates src tests examples; do
    [ -d "$d" ] && scan_dirs+=("$d")
done
hits=$(grep -rnE "$pattern" "${scan_dirs[@]}" --include='*.rs' | grep -v '^crates/bench/' || true)
if [ -n "$hits" ]; then
    echo "FAIL: external dependency imports outside crates/bench:" >&2
    echo "$hits" >&2
    exit 1
fi
echo "OK: no external imports outside crates/bench"

echo "hermetic check passed"
