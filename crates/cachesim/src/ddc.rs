//! Dynamic Distributed Cache (DDC) directory.
//!
//! Tilera's DDC presents the union of all tiles' L2 caches as a large
//! shared L3: a line missing the local L1d/L2 may still be served from
//! its *home tile's* L2 instead of DRAM. We model the directory as a
//! residency set with **CLOCK (second-chance) replacement** and a
//! configurable effective capacity:
//!
//! * a *single* streaming tile only reaches the "L2 caches of nearby
//!   tiles" (the paper's explanation of Figure 3's third transition),
//!   captured by `MemTimings::ddc_effective_bytes`;
//! * when many tiles are active, each contributes its own L2 to the
//!   pool, so [`crate::memsys::MemorySystem`] scales the capacity with
//!   the tile count.
//!
//! Second-chance replacement matters for the collective workloads:
//! a broadcast source re-referenced by every reader stays on chip while
//! the readers' streaming destination writes flow through, which is what
//! the real LRU-ish L2s do.

use std::collections::{HashMap, VecDeque};

/// Residency directory for on-chip (remote-L2) lines.
#[derive(Clone, Debug)]
pub struct DdcDirectory {
    capacity_lines: usize,
    /// CLOCK order (front = next eviction candidate).
    fifo: VecDeque<u64>,
    /// line -> referenced bit (second chance).
    resident: HashMap<u64, bool>,
    hits: u64,
    misses: u64,
}

impl DdcDirectory {
    /// Directory with `capacity_bytes` of effective on-chip capacity,
    /// tracked at `line_bytes` granularity.
    pub fn new(capacity_bytes: usize, line_bytes: usize) -> Self {
        let capacity_lines = (capacity_bytes / line_bytes).max(1);
        Self {
            capacity_lines,
            fifo: VecDeque::with_capacity(capacity_lines),
            resident: HashMap::with_capacity(capacity_lines * 2),
            hits: 0,
            misses: 0,
        }
    }

    pub fn capacity_lines(&self) -> usize {
        self.capacity_lines
    }

    /// Touch a line: returns `true` if it was on chip (marking it
    /// recently used). On miss the line is installed (it has now been
    /// fetched to its home L2), evicting per CLOCK when at capacity.
    pub fn access(&mut self, line_addr: u64) -> bool {
        if let Some(referenced) = self.resident.get_mut(&line_addr) {
            *referenced = true;
            self.hits += 1;
            return true;
        }
        self.misses += 1;
        self.install_cold(line_addr);
        false
    }

    /// Install a line without counting an access (stores write through
    /// to the home L2, bringing the line on chip). Already-resident
    /// lines are marked recently used (the store re-references them).
    pub fn install(&mut self, line_addr: u64) {
        if let Some(referenced) = self.resident.get_mut(&line_addr) {
            *referenced = true;
            return;
        }
        self.install_cold(line_addr);
    }

    fn install_cold(&mut self, line_addr: u64) {
        while self.fifo.len() >= self.capacity_lines {
            let victim = self.fifo.pop_front().expect("fifo tracks residency");
            match self.resident.get_mut(&victim) {
                Some(referenced) if *referenced => {
                    // Second chance: clear the bit and recycle.
                    *referenced = false;
                    self.fifo.push_back(victim);
                }
                Some(_) => {
                    self.resident.remove(&victim);
                    break;
                }
                None => unreachable!("fifo entry without residency"),
            }
        }
        self.fifo.push_back(line_addr);
        self.resident.insert(line_addr, false);
    }

    /// Residency check without side effects.
    pub fn probe(&self, line_addr: u64) -> bool {
        self.resident.contains_key(&line_addr)
    }

    pub fn hits(&self) -> u64 {
        self.hits
    }

    pub fn misses(&self) -> u64 {
        self.misses
    }

    pub fn resident_lines(&self) -> usize {
        self.resident.len()
    }

    /// Drop everything (e.g. between benchmark configurations).
    pub fn flush(&mut self) {
        self.fifo.clear();
        self.resident.clear();
        self.hits = 0;
        self.misses = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn within_capacity_second_sweep_hits() {
        let mut d = DdcDirectory::new(64 * 100, 64); // 100 lines
        for l in 0..100 {
            assert!(!d.access(l));
        }
        for l in 0..100 {
            assert!(d.access(l));
        }
        assert_eq!(d.hits(), 100);
        assert_eq!(d.misses(), 100);
    }

    #[test]
    fn cyclic_sweep_well_beyond_capacity_thrashes() {
        let mut d = DdcDirectory::new(64 * 100, 64);
        // 4x capacity: even with second chances, a pure cyclic sweep
        // cannot retain its working set.
        let mut second_sweep_hits = 0;
        for sweep in 0..3 {
            for l in 0..400u64 {
                if d.access(l) && sweep > 0 {
                    second_sweep_hits += 1;
                }
            }
        }
        assert!(
            second_sweep_hits < 100,
            "mostly misses expected, got {second_sweep_hits} hits"
        );
    }

    #[test]
    fn hot_lines_survive_streaming_writes() {
        // The broadcast pattern: a re-referenced source must survive a
        // much larger stream of install-only destination lines.
        let mut d = DdcDirectory::new(64 * 64, 64); // 64 lines
        for l in 0..32 {
            d.access(l); // source, cold
        }
        d.install(5000); // one unreferenced line so round 0 has a victim
        for round in 0..8u64 {
            // Re-reference the source, then stream a batch of one-shot
            // lines smaller than the unreferenced pool (the broadcast
            // pattern: each reader touches the source, then writes its
            // own destination).
            for l in 0..32 {
                assert!(d.access(l), "source line {l} lost in round {round}");
            }
            for s in 0..24 {
                d.install(10_000 + round * 24 + s);
            }
        }
    }

    #[test]
    fn install_brings_line_on_chip() {
        let mut d = DdcDirectory::new(64 * 10, 64);
        d.install(42);
        assert!(d.probe(42));
        assert!(d.access(42));
        assert_eq!(d.misses(), 0);
    }

    #[test]
    fn install_is_idempotent() {
        let mut d = DdcDirectory::new(64 * 2, 64);
        d.install(1);
        d.install(1);
        d.install(2);
        assert_eq!(d.resident_lines(), 2);
        // Line 3 must evict exactly one line.
        d.install(3);
        assert_eq!(d.resident_lines(), 2);
    }

    #[test]
    fn capacity_floor_is_one_line() {
        let d = DdcDirectory::new(1, 64);
        assert_eq!(d.capacity_lines(), 1);
    }

    #[test]
    fn flush_resets() {
        let mut d = DdcDirectory::new(64 * 4, 64);
        d.access(9);
        d.flush();
        assert!(!d.probe(9));
        assert_eq!(d.resident_lines(), 0);
        assert_eq!(d.misses(), 0);
    }

    #[test]
    fn resident_never_exceeds_capacity() {
        let mut d = DdcDirectory::new(64 * 16, 64);
        for l in 0..1000 {
            if l % 3 == 0 {
                d.access(l);
            } else {
                d.install(l);
            }
            assert!(d.resident_lines() <= 16);
        }
    }
}
