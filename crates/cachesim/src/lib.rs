//! Tilera memory-hierarchy simulator.
//!
//! Models the parts of the TILE-Gx / TILEPro memory system that the
//! TSHMEM paper's evaluation depends on:
//!
//! * per-tile **L1d and L2** set-associative caches ([`cache`]);
//! * the **Dynamic Distributed Cache** (DDC) — the "L3" formed by
//!   aggregating remote tiles' L2 caches ([`ddc`]);
//! * the three **memory-homing** policies — local, remote, and
//!   hash-for-home ([`homing`]);
//! * a line-granular **copy-cost model** calibrated to the paper's
//!   Figure 3 plateaus ([`copymodel`]);
//! * a **shared memory system** for the timed engine with busy-until
//!   home-port and DRAM-controller contention ([`memsys`]).
//!
//! The *shape* of Figure 3 — bandwidth transitions at the L1d size, the
//! L2 size, and the effective DDC capacity — emerges structurally from
//! the simulated tag arrays; only plateau heights are calibrated
//! constants (see `tile_arch::MemTimings`).

pub mod cache;
pub mod copymodel;
pub mod ddc;
pub mod homing;
pub mod memsys;

pub use cache::{CacheConfig, SetAssocCache};
pub use copymodel::{CopyCostModel, Level, LevelBytes};
pub use ddc::DdcDirectory;
pub use homing::Homing;
pub use memsys::{MemRef, MemorySystem};
