//! Shared memory system for the timed engine.
//!
//! Owns every tile's cache hierarchy, the global DDC directory, and the
//! contended service points: one *home port* per tile (the rate at which
//! a tile's L2 serves remote DDC requests) and one port per DRAM
//! controller. A copy is costed in three steps:
//!
//! 1. classify its lines through the reading tile's tag arrays
//!    ([`crate::copymodel`]);
//! 2. charge the reader the calibrated per-level cycles, inflated by a
//!    mesh-congestion factor that grows with the number of concurrently
//!    in-flight copies;
//! 3. charge the served bytes to the home ports (spread per the homing
//!    policy) and DRAM controllers, and complete at whichever finishes
//!    last.
//!
//! Steps 2–3 are what produce the aggregate-bandwidth behavior of the
//! paper's Figures 9–12: pull-based broadcasts scale with readers until
//! the 36 home ports saturate, push-based broadcasts serialize on the
//! root tile, and reductions serialize on the root's reduce loop.

use desim::resource::ResourceBank;
use desim::time::SimTime;
use tile_arch::device::Device;

use crate::copymodel::{simulate_copy, CopyCostModel, LevelBytes, TileHierarchy};
use crate::ddc::DdcDirectory;
use crate::homing::Homing;

/// A reference to simulated memory: an address in the flat simulated
/// address space plus the homing policy of its region.
#[derive(Clone, Copy, Debug)]
pub struct MemRef {
    pub addr: u64,
    pub homing: Homing,
}

impl MemRef {
    pub fn new(addr: u64, homing: Homing) -> Self {
        Self { addr, homing }
    }
}

/// Contention calibration (see `EXPERIMENTS.md` for the fit).
#[derive(Clone, Copy, Debug)]
pub struct ContentionParams {
    /// Service rate of one tile's home port, bytes/cycle. Aggregate
    /// saturation of an n-tile pull pattern is `tiles x this`.
    pub home_port_bpc: f64,
    /// Service rate of one DRAM controller, bytes/cycle.
    pub dram_ctrl_bpc: f64,
    /// Quadratic mesh-congestion coefficient: a reader's service time is
    /// inflated by `1 + beta * (concurrent_ops - 1)^2`.
    pub reader_beta: f64,
}

impl ContentionParams {
    /// Calibrated parameters for a device.
    pub fn for_device(device: &Device) -> Self {
        match device.family {
            tile_arch::device::DeviceFamily::Gx => ContentionParams {
                // 36 ports x 1.28 B/c at 1 GHz ~= 46 GB/s aggregate
                // (Fig 10 peak).
                home_port_bpc: 1.28,
                dram_ctrl_bpc: 8.0,
                reader_beta: 7e-4,
            },
            tile_arch::device::DeviceFamily::Pro => ContentionParams {
                // 36 ports x 0.206 B/c at 700 MHz ~= 5.2 GB/s aggregate.
                home_port_bpc: 0.206,
                dram_ctrl_bpc: 4.0,
                reader_beta: 7e-4,
            },
        }
    }
}

/// The full simulated memory system shared by all LPs of a timed run.
pub struct MemorySystem {
    device: Device,
    tiles: usize,
    hiers: Vec<TileHierarchy>,
    ddc: DdcDirectory,
    model: CopyCostModel,
    params: ContentionParams,
    home_ports: ResourceBank,
    dram_ports: ResourceBank,
    /// Completion times of in-flight copies (pruned lazily).
    inflight: Vec<SimTime>,
    next_dram_port: usize,
    total_bytes: u64,
}

impl MemorySystem {
    /// A memory system for `tiles` active tiles of `device`.
    ///
    /// The DDC capacity grows with the active tile count: a single
    /// streaming tile only reaches the "nearby" share calibrated from
    /// Figure 3 (`ddc_effective_bytes`), while every additional active
    /// tile contributes (half of) its own L2 to the usable pool.
    pub fn new(device: Device, tiles: usize) -> Self {
        assert!(tiles >= 1 && tiles <= device.grid.tiles());
        let ddc_capacity = device.timings.mem.ddc_effective_bytes
            + tiles.saturating_sub(2) * device.l2_bytes / 2;
        Self {
            device,
            tiles,
            hiers: (0..tiles).map(|_| TileHierarchy::new(&device)).collect(),
            ddc: DdcDirectory::new(ddc_capacity, device.cache_line_bytes),
            model: CopyCostModel::new(device),
            params: ContentionParams::for_device(&device),
            home_ports: ResourceBank::new(tiles),
            dram_ports: ResourceBank::new(device.ddr_controllers),
            inflight: Vec::new(),
            next_dram_port: 0,
            total_bytes: 0,
        }
    }

    pub fn device(&self) -> &Device {
        &self.device
    }

    pub fn tiles(&self) -> usize {
        self.tiles
    }

    pub fn params(&self) -> ContentionParams {
        self.params
    }

    /// Override the contention calibration (used by ablation benches).
    pub fn set_params(&mut self, p: ContentionParams) {
        self.params = p;
    }

    fn concurrency(&mut self, now: SimTime) -> usize {
        self.inflight.retain(|&end| end > now);
        self.inflight.len() + 1
    }

    /// Cost a `memcpy(dst, src, len)` issued by `tile` at `now`; returns
    /// the completion time. Tag state, port queues, and the in-flight set
    /// are updated.
    pub fn copy(&mut self, tile: usize, dst: MemRef, src: MemRef, len: u64, now: SimTime) -> SimTime {
        if len == 0 {
            return now;
        }
        self.total_bytes += len;
        let lv = simulate_copy(
            &mut self.hiers[tile],
            &mut self.ddc,
            tile,
            dst.addr,
            dst.homing,
            src.addr,
            src.homing,
            len,
        );
        let base_cycles = self.model.cycles(&lv);
        let conc = self.concurrency(now);
        let gamma = 1.0 + self.params.reader_beta * ((conc - 1) as f64).powi(2);
        let service = SimTime::from_ps(self.device.clock.cycles_f64_to_ps(base_cycles * gamma));
        let reader_done = now + service;

        // Home-port demand: bytes served on chip beyond the local caches.
        let port_done = self.charge_home_ports(src.homing, lv.ddc, now);
        // DRAM-controller demand.
        let dram_done = self.charge_dram(lv.dram, now);

        let done = reader_done.max(port_done).max(dram_done);
        self.inflight.push(done);
        done
    }

    /// Charge a pure compute phase (used by the timed reduce loop).
    pub fn compute_cycles(&self, cycles: f64) -> SimTime {
        SimTime::from_ps(self.device.clock.cycles_f64_to_ps(cycles))
    }

    fn charge_home_ports(&mut self, homing: Homing, bytes: u64, now: SimTime) -> SimTime {
        if bytes == 0 {
            return now;
        }
        let cycles = bytes as f64 / self.params.home_port_bpc;
        let total = SimTime::from_ps(self.device.clock.cycles_f64_to_ps(cycles));
        match homing {
            Homing::Local(t) | Homing::Remote(t) => {
                let t = t.min(self.tiles - 1);
                self.home_ports.acquire(t, now, total)
            }
            Homing::HashForHome => self.home_ports.acquire_spread(now, total),
        }
    }

    fn charge_dram(&mut self, bytes: u64, now: SimTime) -> SimTime {
        if bytes == 0 {
            return now;
        }
        let cycles = bytes as f64 / self.params.dram_ctrl_bpc;
        let service = SimTime::from_ps(self.device.clock.cycles_f64_to_ps(cycles));
        let port = self.next_dram_port;
        self.next_dram_port = (self.next_dram_port + 1) % self.dram_ports.len();
        self.dram_ports.acquire(port, now, service)
    }

    /// Install a region's lines on chip without charging time — models
    /// DMA delivery (e.g. mPIPE ingress) that writes through the home
    /// L2s while the wire, not the cache system, is the bottleneck.
    pub fn install_region(&mut self, addr: u64, len: u64) {
        if len == 0 {
            return;
        }
        let line = self.device.cache_line_bytes as u64;
        for l in (addr / line)..=((addr + len - 1) / line) {
            self.ddc.install(l);
        }
    }

    /// Classify-only copy (no contention, no in-flight registration) —
    /// used by the Figure 3 microbenchmark, which measures a single
    /// uncontended tile.
    pub fn classify(&mut self, tile: usize, dst: MemRef, src: MemRef, len: u64) -> LevelBytes {
        simulate_copy(
            &mut self.hiers[tile],
            &mut self.ddc,
            tile,
            dst.addr,
            dst.homing,
            src.addr,
            src.homing,
            len,
        )
    }

    pub fn cost_model(&self) -> &CopyCostModel {
        &self.model
    }

    /// Flush all caches and ports (between benchmark configurations).
    pub fn reset(&mut self) {
        for h in &mut self.hiers {
            h.flush();
        }
        self.ddc.flush();
        self.home_ports.reset();
        self.dram_ports.reset();
        self.inflight.clear();
        self.total_bytes = 0;
    }

    pub fn total_bytes(&self) -> u64 {
        self.total_bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sys() -> MemorySystem {
        MemorySystem::new(Device::tile_gx8036(), 36)
    }

    const SHARED: u64 = 0x9000_0000;
    const PRIV: u64 = 0x1000_0000;

    #[test]
    fn warm_small_copy_runs_at_l1d_rate() {
        let mut s = sys();
        let dst = MemRef::new(SHARED, Homing::HashForHome);
        let src = MemRef::new(PRIV, Homing::Local(0));
        let mut now = SimTime::ZERO;
        now = s.copy(0, dst, src, 8 * 1024, now);
        let t0 = now;
        now = s.copy(0, dst, src, 8 * 1024, now);
        let dt = now - t0;
        let bw = tile_arch::clock::bandwidth_mbps(8 * 1024, dt.ps());
        assert!((2900.0..3300.0).contains(&bw), "warm L1d bw {bw}");
    }

    #[test]
    fn zero_copy_completes_immediately() {
        let mut s = sys();
        let r = MemRef::new(0, Homing::HashForHome);
        assert_eq!(s.copy(0, r, r, 0, SimTime::from_ns(5)), SimTime::from_ns(5));
    }

    #[test]
    fn concurrent_readers_saturate_home_ports() {
        // n readers pulling hash-for-home DDC-resident data: aggregate
        // bandwidth must stop scaling once ports saturate.
        let mut s = sys();
        let size = 256 * 1024u64;
        // Producer writes the buffer (installs it on chip).
        s.copy(
            0,
            MemRef::new(SHARED, Homing::HashForHome),
            MemRef::new(PRIV, Homing::Local(0)),
            size,
            SimTime::ZERO,
        );
        let agg = |s: &mut MemorySystem, n: usize| {
            s.reset();
            // Reinstall source on chip.
            s.copy(
                0,
                MemRef::new(SHARED, Homing::HashForHome),
                MemRef::new(PRIV, Homing::Local(0)),
                size,
                SimTime::ZERO,
            );
            let start = SimTime::from_us(10);
            let mut done = SimTime::ZERO;
            for r in 1..=n {
                let dst = MemRef::new(0x2000_0000 + r as u64 * 0x100_0000, Homing::Local(r));
                let end = s.copy(r, dst, MemRef::new(SHARED, Homing::HashForHome), size, start);
                done = done.max(end);
            }
            n as f64 * size as f64 / (done - start).s_f64() / 1e9
        };
        let a4 = agg(&mut s, 4);
        let a16 = agg(&mut s, 16);
        let a32 = agg(&mut s, 32);
        assert!(a16 > a4, "scaling region: {a4} -> {a16}");
        // Saturation: 32 readers no more than ~40% above 16.
        assert!(a32 < a16 * 1.6, "saturation: {a16} -> {a32}");
        assert!(a32 < 50.0, "below paper-scale ceiling: {a32} GB/s");
    }

    #[test]
    fn single_remote_home_port_serializes() {
        let mut s = sys();
        let size = 512 * 1024u64;
        // Install data homed entirely on tile 3.
        s.copy(
            3,
            MemRef::new(SHARED, Homing::Local(3)),
            MemRef::new(PRIV, Homing::Local(3)),
            size,
            SimTime::ZERO,
        );
        let start = SimTime::from_us(10);
        let mut done = SimTime::ZERO;
        for r in 10..14 {
            let dst = MemRef::new(0x2000_0000 + r as u64 * 0x100_0000, Homing::Local(r));
            let end = s.copy(r, dst, MemRef::new(SHARED, Homing::Remote(3)), size, start);
            done = done.max(end);
        }
        let remote_agg = 4.0 * size as f64 / (done - start).s_f64() / 1e9;
        // Single home port rate is ~1.28 GB/s: four pullers can't beat it
        // by much.
        assert!(remote_agg < 2.0, "remote-homed pulls serialize: {remote_agg} GB/s");
    }

    #[test]
    fn reset_clears_state() {
        let mut s = sys();
        let dst = MemRef::new(SHARED, Homing::HashForHome);
        let src = MemRef::new(PRIV, Homing::Local(0));
        s.copy(0, dst, src, 4096, SimTime::ZERO);
        assert!(s.total_bytes() > 0);
        s.reset();
        assert_eq!(s.total_bytes(), 0);
    }

    #[test]
    fn compute_cycles_converts_with_clock() {
        let s = sys();
        assert_eq!(s.compute_cycles(1000.0), SimTime::from_ns(1000));
    }
}
