//! Line-granular copy classification and the calibrated cost model.
//!
//! A copy streams its source through the reading tile's L1d/L2, then the
//! DDC, then DRAM. Each line of the copy is classified to the level that
//! serves it by *simulating the tag arrays*; the per-level effective
//! throughputs (`tile_arch::MemTimings`, calibrated to the paper's
//! Figure 3 plateaus) convert the classification into cycles.
//!
//! Writes are modeled as write-through with no L1 allocation: stores land
//! in the line's home L2 (installing the line on chip) and ride the
//! read-side pipeline, which is what gives Figure 3 its transitions at
//! exactly the L1d and L2 *sizes* — the destination of a private-to-
//! shared copy does not consume local L2 capacity.

use tile_arch::device::Device;

use crate::cache::{CacheConfig, SetAssocCache};
use crate::ddc::DdcDirectory;
use crate::homing::Homing;

/// The level that served a line.
#[derive(Clone, Copy, PartialEq, Eq, Debug, PartialOrd, Ord)]
pub enum Level {
    L1d,
    L2,
    Ddc,
    Dram,
}

/// Bytes of a copy served per level.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct LevelBytes {
    pub l1d: u64,
    pub l2: u64,
    pub ddc: u64,
    pub dram: u64,
}

impl LevelBytes {
    pub fn total(&self) -> u64 {
        self.l1d + self.l2 + self.ddc + self.dram
    }

    pub fn add(&mut self, level: Level, bytes: u64) {
        match level {
            Level::L1d => self.l1d += bytes,
            Level::L2 => self.l2 += bytes,
            Level::Ddc => self.ddc += bytes,
            Level::Dram => self.dram += bytes,
        }
    }
}

/// One tile's private cache hierarchy (L1d + L2 tag arrays).
#[derive(Clone, Debug)]
pub struct TileHierarchy {
    l1d: SetAssocCache,
    l2: SetAssocCache,
    line_bytes: usize,
}

impl TileHierarchy {
    /// Hierarchy with the device's cache geometry. Associativities follow
    /// the Tilera documentation: 2-way L1d on both families, 8-way L2 on
    /// TILE-Gx, 4-way on TILEPro.
    pub fn new(device: &Device) -> Self {
        let l2_assoc = match device.family {
            tile_arch::device::DeviceFamily::Gx => 8,
            tile_arch::device::DeviceFamily::Pro => 4,
        };
        Self {
            l1d: SetAssocCache::new(CacheConfig::new(device.l1d_bytes, device.cache_line_bytes, 2)),
            l2: SetAssocCache::new(CacheConfig::new(device.l2_bytes, device.cache_line_bytes, l2_assoc)),
            line_bytes: device.cache_line_bytes,
        }
    }

    pub fn line_bytes(&self) -> usize {
        self.line_bytes
    }

    /// Classify a read of `line_addr` and update all tag state.
    pub fn read(&mut self, line_addr: u64, ddc: &mut DdcDirectory) -> Level {
        if self.l1d.access(line_addr).0 {
            return Level::L1d;
        }
        if self.l2.access(line_addr).0 {
            return Level::L2;
        }
        // Local miss: served from the home tile's L2 if on chip, else
        // DRAM (which installs the line at its home on the way in).
        if ddc.access(line_addr) {
            Level::Ddc
        } else {
            Level::Dram
        }
    }

    /// Account a write-through store to `line_addr`: the line lands in
    /// its home L2 (entering the DDC); locally-homed lines also occupy
    /// the local L2.
    pub fn write(&mut self, line_addr: u64, homing: Homing, self_tile: usize, ddc: &mut DdcDirectory) {
        match homing {
            Homing::Local(t) if t == self_tile => {
                self.l2.access(line_addr);
                ddc.install(line_addr);
            }
            _ => ddc.install(line_addr),
        }
    }

    pub fn flush(&mut self) {
        self.l1d.flush();
        self.l2.flush();
    }

    pub fn l1d(&self) -> &SetAssocCache {
        &self.l1d
    }

    pub fn l2(&self) -> &SetAssocCache {
        &self.l2
    }
}

/// Converts level classifications to cycles using the calibrated
/// per-level throughputs.
#[derive(Clone, Copy, Debug)]
pub struct CopyCostModel {
    pub device: Device,
}

impl CopyCostModel {
    pub fn new(device: Device) -> Self {
        Self { device }
    }

    /// Cycles to move `lv` through the copy pipeline.
    pub fn cycles(&self, lv: &LevelBytes) -> f64 {
        let m = self.device.timings.mem;
        lv.l1d as f64 / m.l1d_bytes_per_cycle
            + lv.l2 as f64 / m.l2_bytes_per_cycle
            + lv.ddc as f64 / m.ddc_bytes_per_cycle
            + lv.dram as f64 / m.dram_bytes_per_cycle
    }

    /// Picoseconds for `lv`.
    pub fn ps(&self, lv: &LevelBytes) -> u64 {
        self.device.clock.cycles_f64_to_ps(self.cycles(&lv.clone()))
    }

    /// Effective bandwidth in MB/s for a copy classified as `lv`.
    pub fn bandwidth_mbps(&self, lv: &LevelBytes) -> f64 {
        let ps = self.ps(lv);
        tile_arch::clock::bandwidth_mbps(lv.total(), ps)
    }
}

/// Simulate one `memcpy(dst, src, len)` performed by `self_tile`,
/// returning the read-side level classification (writes update tag state
/// but are costed as riding the read pipeline — see module docs).
#[allow(clippy::too_many_arguments)]
pub fn simulate_copy(
    hier: &mut TileHierarchy,
    ddc: &mut DdcDirectory,
    self_tile: usize,
    dst_addr: u64,
    dst_homing: Homing,
    src_addr: u64,
    src_homing: Homing,
    len: u64,
) -> LevelBytes {
    let _ = src_homing; // reads are classified by residency, not homing
    let line = hier.line_bytes as u64;
    let mut lv = LevelBytes::default();
    if len == 0 {
        return lv;
    }
    let src_first = src_addr / line;
    let src_last = (src_addr + len - 1) / line;
    for l in src_first..=src_last {
        let line_start = l * line;
        let line_end = line_start + line;
        let lo = src_addr.max(line_start);
        let hi = (src_addr + len).min(line_end);
        let level = hier.read(l, ddc);
        lv.add(level, hi - lo);
    }
    let dst_first = dst_addr / line;
    let dst_last = (dst_addr + len - 1) / line;
    for l in dst_first..=dst_last {
        hier.write(l, dst_homing, self_tile, ddc);
    }
    lv
}

#[cfg(test)]
mod tests {
    use super::*;
    use tile_arch::device::Device;

    fn setup() -> (TileHierarchy, DdcDirectory, CopyCostModel, Device) {
        let d = Device::tile_gx8036();
        (
            TileHierarchy::new(&d),
            DdcDirectory::new(d.timings.mem.ddc_effective_bytes, d.cache_line_bytes),
            CopyCostModel::new(d),
            d,
        )
    }

    /// Warm copy of a given size; returns the second-iteration levels.
    fn warm_copy(size: u64) -> (LevelBytes, CopyCostModel) {
        let (mut h, mut ddc, model, _) = setup();
        const SRC: u64 = 0x1000_0000;
        const DST: u64 = 0x9000_0000;
        let mut lv = LevelBytes::default();
        for _ in 0..2 {
            lv = simulate_copy(
                &mut h,
                &mut ddc,
                0,
                DST,
                Homing::HashForHome,
                SRC,
                Homing::Local(0),
                size,
            );
        }
        (lv, model)
    }

    #[test]
    fn small_copy_hits_l1d() {
        let (lv, model) = warm_copy(8 * 1024);
        assert_eq!(lv.l1d, 8 * 1024, "warm 8 kB copy must be L1d-resident: {lv:?}");
        // ~3100 MB/s plateau.
        let bw = model.bandwidth_mbps(&lv);
        assert!((3000.0..3200.0).contains(&bw), "L1d plateau {bw}");
    }

    #[test]
    fn mid_copy_hits_l2() {
        // 128 kB: beyond L1d (32 kB), within L2 (256 kB).
        let (lv, model) = warm_copy(128 * 1024);
        assert!(lv.l1d < lv.total() / 4, "mostly not L1d: {lv:?}");
        assert!(lv.l2 > lv.total() * 3 / 4, "mostly L2: {lv:?}");
        let bw = model.bandwidth_mbps(&lv);
        assert!((1900.0..2700.0).contains(&bw), "L2 plateau {bw}");
    }

    #[test]
    fn large_copy_served_by_ddc() {
        // 768 kB: beyond L2, within the 2 MB effective DDC.
        let (lv, _) = warm_copy(768 * 1024);
        assert!(lv.ddc > lv.total() * 3 / 4, "mostly DDC: {lv:?}");
    }

    #[test]
    fn huge_copy_goes_to_dram() {
        // 8 MB src sweeps far past the 2 MB DDC: cyclic FIFO thrashes.
        let (lv, model) = warm_copy(8 * 1024 * 1024);
        assert!(lv.dram > lv.total() * 9 / 10, "mostly DRAM: {lv:?}");
        let bw = model.bandwidth_mbps(&lv);
        assert!((300.0..380.0).contains(&bw), "memory-to-memory {bw}");
    }

    #[test]
    fn bandwidth_monotonically_degrades_across_regimes() {
        let sizes = [4 * 1024u64, 64 * 1024, 512 * 1024, 16 * 1024 * 1024];
        let mut last = f64::INFINITY;
        for s in sizes {
            let (lv, model) = warm_copy(s);
            let bw = model.bandwidth_mbps(&lv);
            assert!(bw < last, "bw must fall across regimes: {s} -> {bw} !< {last}");
            last = bw;
        }
    }

    #[test]
    fn unaligned_copy_counts_exact_bytes() {
        let (mut h, mut ddc, _, _) = setup();
        let lv = simulate_copy(
            &mut h,
            &mut ddc,
            0,
            0x9000_0007,
            Homing::HashForHome,
            0x1000_0003,
            Homing::Local(0),
            100,
        );
        assert_eq!(lv.total(), 100);
    }

    #[test]
    fn zero_length_copy_is_free() {
        let (mut h, mut ddc, model, _) = setup();
        let lv = simulate_copy(
            &mut h,
            &mut ddc,
            0,
            0x9000_0000,
            Homing::HashForHome,
            0x1000_0000,
            Homing::Local(0),
            0,
        );
        assert_eq!(lv.total(), 0);
        assert_eq!(model.ps(&lv), 0);
    }

    #[test]
    fn written_lines_become_ddc_resident() {
        let (mut h, mut ddc, _, _) = setup();
        // Write 4 kB to a shared destination, then read it back from a
        // *different* (cold-cache) tile's perspective.
        simulate_copy(
            &mut h,
            &mut ddc,
            0,
            0x9000_0000,
            Homing::HashForHome,
            0x1000_0000,
            Homing::Local(0),
            4096,
        );
        let d = Device::tile_gx8036();
        let mut other = TileHierarchy::new(&d);
        let lv = simulate_copy(
            &mut other,
            &mut ddc,
            1,
            0x2000_0000,
            Homing::Local(1),
            0x9000_0000,
            Homing::HashForHome,
            4096,
        );
        assert_eq!(lv.ddc, 4096, "producer-consumer served on-chip: {lv:?}");
    }

    #[test]
    fn locally_homed_writes_occupy_local_l2() {
        let (mut h, mut ddc, _, _) = setup();
        simulate_copy(
            &mut h,
            &mut ddc,
            0,
            0x3000_0000,
            Homing::Local(0),
            0x1000_0000,
            Homing::Local(0),
            4096,
        );
        // Destination lines are now in local L2.
        assert!(h.l2().probe(0x3000_0000 / 64));
    }

    #[test]
    fn pro64_plateaus() {
        let d = Device::tilepro64();
        let mut h = TileHierarchy::new(&d);
        let mut ddc = DdcDirectory::new(d.timings.mem.ddc_effective_bytes, d.cache_line_bytes);
        let model = CopyCostModel::new(d);
        let mut lv = LevelBytes::default();
        for _ in 0..2 {
            lv = simulate_copy(
                &mut h,
                &mut ddc,
                0,
                0x9000_0000,
                Homing::HashForHome,
                0x1000_0000,
                Homing::Local(0),
                4 * 1024,
            );
        }
        let bw = model.bandwidth_mbps(&lv);
        // ~500 MB/s cache plateau on the Pro.
        assert!((450.0..550.0).contains(&bw), "pro plateau {bw}");
    }
}
