//! Set-associative caches with LRU replacement (tag store only).
//!
//! The simulator tracks which lines are resident, not their contents —
//! data movement happens for real in the native engine and is costed by
//! the copy model in the timed engine.

/// Geometry of one cache level.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CacheConfig {
    pub size_bytes: usize,
    pub line_bytes: usize,
    pub assoc: usize,
}

impl CacheConfig {
    pub fn new(size_bytes: usize, line_bytes: usize, assoc: usize) -> Self {
        assert!(line_bytes.is_power_of_two(), "line size must be a power of two");
        assert!(size_bytes.is_multiple_of(line_bytes * assoc), "size must divide into sets");
        Self {
            size_bytes,
            line_bytes,
            assoc,
        }
    }

    pub fn sets(&self) -> usize {
        self.size_bytes / (self.line_bytes * self.assoc)
    }

    pub fn lines(&self) -> usize {
        self.size_bytes / self.line_bytes
    }
}

/// A set-associative LRU cache over 64-bit line addresses.
///
/// `access` touches a line (allocating it on miss) and reports whether it
/// hit; `probe` checks residency without disturbing LRU state.
#[derive(Clone, Debug)]
pub struct SetAssocCache {
    cfg: CacheConfig,
    /// Per-set tag lists, most-recently-used first.
    sets: Vec<Vec<u64>>,
    hits: u64,
    misses: u64,
}

impl SetAssocCache {
    pub fn new(cfg: CacheConfig) -> Self {
        Self {
            cfg,
            sets: vec![Vec::with_capacity(cfg.assoc); cfg.sets()],
            hits: 0,
            misses: 0,
        }
    }

    pub fn config(&self) -> CacheConfig {
        self.cfg
    }

    fn set_of(&self, line_addr: u64) -> usize {
        (line_addr % self.sets.len() as u64) as usize
    }

    /// Touch `line_addr` (a *line* address, i.e. byte address divided by
    /// the line size). Returns `true` on hit. On miss the line is
    /// allocated, evicting the LRU line of the set if full; the evicted
    /// line address is returned through `evicted`.
    pub fn access(&mut self, line_addr: u64) -> (bool, Option<u64>) {
        let assoc = self.cfg.assoc;
        let set_idx = self.set_of(line_addr);
        let set = &mut self.sets[set_idx];
        if let Some(pos) = set.iter().position(|&t| t == line_addr) {
            // Move to MRU position.
            let t = set.remove(pos);
            set.insert(0, t);
            self.hits += 1;
            return (true, None);
        }
        self.misses += 1;
        let evicted = if set.len() == assoc { set.pop() } else { None };
        set.insert(0, line_addr);
        (false, evicted)
    }

    /// Residency check without LRU update.
    pub fn probe(&self, line_addr: u64) -> bool {
        self.sets[self.set_of(line_addr)].contains(&line_addr)
    }

    /// Remove a line if present (invalidation).
    pub fn invalidate(&mut self, line_addr: u64) -> bool {
        let set_idx = self.set_of(line_addr);
        let set = &mut self.sets[set_idx];
        if let Some(pos) = set.iter().position(|&t| t == line_addr) {
            set.remove(pos);
            true
        } else {
            false
        }
    }

    /// Drop all lines and reset statistics.
    pub fn flush(&mut self) {
        for s in &mut self.sets {
            s.clear();
        }
        self.hits = 0;
        self.misses = 0;
    }

    pub fn hits(&self) -> u64 {
        self.hits
    }

    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Number of lines currently resident.
    pub fn resident(&self) -> usize {
        self.sets.iter().map(Vec::len).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> SetAssocCache {
        // 4 sets x 2 ways x 64 B lines = 512 B.
        SetAssocCache::new(CacheConfig::new(512, 64, 2))
    }

    #[test]
    fn config_geometry() {
        let c = CacheConfig::new(32 * 1024, 64, 8);
        assert_eq!(c.sets(), 64);
        assert_eq!(c.lines(), 512);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn bad_line_size_panics() {
        CacheConfig::new(512, 48, 2);
    }

    #[test]
    fn miss_then_hit() {
        let mut c = tiny();
        assert_eq!(c.access(5), (false, None));
        assert_eq!(c.access(5), (true, None));
        assert_eq!(c.hits(), 1);
        assert_eq!(c.misses(), 1);
    }

    #[test]
    fn lru_evicts_least_recent_within_set() {
        let mut c = tiny();
        // Lines 0, 4, 8 all map to set 0 (4 sets).
        c.access(0);
        c.access(4);
        c.access(0); // 0 becomes MRU, 4 is LRU
        let (hit, evicted) = c.access(8);
        assert!(!hit);
        assert_eq!(evicted, Some(4));
        assert!(c.probe(0));
        assert!(!c.probe(4));
    }

    #[test]
    fn probe_does_not_touch_lru() {
        let mut c = tiny();
        c.access(0);
        c.access(4); // MRU=4, LRU=0
        assert!(c.probe(0)); // does not promote 0
        let (_, evicted) = c.access(8);
        assert_eq!(evicted, Some(0));
    }

    #[test]
    fn invalidate_and_flush() {
        let mut c = tiny();
        c.access(3);
        assert!(c.invalidate(3));
        assert!(!c.invalidate(3));
        assert!(!c.probe(3));
        c.access(1);
        c.flush();
        assert_eq!(c.resident(), 0);
        assert_eq!(c.misses(), 0);
    }

    #[test]
    fn working_set_within_capacity_all_hits_on_second_sweep() {
        let mut c = SetAssocCache::new(CacheConfig::new(4096, 64, 4));
        let lines = (c.config().lines()) as u64;
        for l in 0..lines {
            c.access(l);
        }
        let misses_before = c.misses();
        for l in 0..lines {
            let (hit, _) = c.access(l);
            assert!(hit, "line {l} should be resident on second sweep");
        }
        assert_eq!(c.misses(), misses_before);
    }

    #[test]
    fn cyclic_sweep_beyond_capacity_thrashes() {
        let mut c = SetAssocCache::new(CacheConfig::new(4096, 64, 4));
        let lines = c.config().lines() as u64 * 2;
        for sweep in 0..3 {
            for l in 0..lines {
                let (hit, _) = c.access(l);
                if sweep > 0 {
                    // LRU + cyclic overflow = every access misses.
                    assert!(!hit);
                }
            }
        }
    }
}
