//! Memory-homing policies (paper Section III-A).
//!
//! Every physical page (we model at allocation granularity) is assigned a
//! *home* that manages its coherence and holds its on-chip copy:
//!
//! * **Local** — homed on the accessing tile; fastest hits but the page
//!   cannot be cached by other tiles' L2s (no DDC benefit).
//! * **Remote** — homed on one designated tile; the producer-consumer
//!   pattern (producer writes straight into the consumer's L2).
//! * **Hash-for-home** — lines are hashed across all tiles' L2s,
//!   distributing load over the whole DDC. The default for shared data,
//!   and what TSHMEM uses for its common-memory partitions.

use tile_arch::mesh::TileId;

/// Homing policy for a memory region.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Homing {
    /// Homed on the tile that owns/allocated the region.
    Local(TileId),
    /// Homed on a specific other tile.
    Remote(TileId),
    /// Hashed line-by-line across all tiles (the DDC default).
    HashForHome,
}

impl Homing {
    /// Home tile for a given line address under this policy, with
    /// `tiles` total tiles. Hash-for-home distributes round-robin by
    /// line address, which is how we model Tilera's page hash.
    pub fn home_of(&self, line_addr: u64, tiles: usize) -> TileId {
        match *self {
            Homing::Local(t) | Homing::Remote(t) => t,
            Homing::HashForHome => (line_addr % tiles as u64) as TileId,
        }
    }

    /// Whether lines of this region may live in *other* tiles' L2s
    /// (i.e. participate in the DDC).
    pub fn distributes(&self) -> bool {
        matches!(self, Homing::HashForHome)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixed_homes() {
        assert_eq!(Homing::Local(3).home_of(999, 36), 3);
        assert_eq!(Homing::Remote(7).home_of(0, 36), 7);
    }

    #[test]
    fn hash_for_home_spreads_lines() {
        let h = Homing::HashForHome;
        let homes: Vec<_> = (0..72).map(|l| h.home_of(l, 36)).collect();
        // Every tile is home to exactly two of 72 consecutive lines.
        for t in 0..36 {
            assert_eq!(homes.iter().filter(|&&x| x == t).count(), 2);
        }
    }

    #[test]
    fn distribution_flag() {
        assert!(Homing::HashForHome.distributes());
        assert!(!Homing::Local(0).distributes());
        assert!(!Homing::Remote(1).distributes());
    }
}
