//! Distributed application runs validated against serial references,
//! on both engines.

use tshmem::prelude::*;
use tshmem_apps::cbir::{cbir_serial, cbir_shmem, CbirConfig};
use tshmem_apps::fft::{fft2d_shmem, serial_checksum, Fft2dConfig, TransposeMode};

fn cfg(npes: usize, partition_mb: usize) -> RuntimeConfig {
    RuntimeConfig::new(npes)
        .with_partition_bytes(partition_mb << 20)
        .with_private_bytes(1 << 16)
        .with_temp_bytes(1 << 12)
}

#[test]
fn fft2d_matches_serial_reference_various_pe_counts() {
    let fcfg = Fft2dConfig { n: 64, seed: 42, ..Fft2dConfig::default() };
    let expect = serial_checksum(&fcfg);
    for npes in [1usize, 2, 4, 6] {
        let out = tshmem::launch(&cfg(npes, 2), move |ctx| fft2d_shmem(ctx, &fcfg));
        for r in &out {
            let rel = (r.checksum - expect).abs() / expect;
            assert!(rel < 1e-4, "npes {npes}: checksum {} vs {expect}", r.checksum);
        }
    }
}

#[test]
fn fft2d_on_timed_engine_matches_and_times() {
    let fcfg = Fft2dConfig { n: 32, seed: 7, ..Fft2dConfig::default() };
    let expect = serial_checksum(&fcfg);
    let out = tshmem::launch_timed(&cfg(4, 2), move |ctx| fft2d_shmem(ctx, &fcfg));
    for r in &out.values {
        let rel = (r.checksum - expect).abs() / expect;
        assert!(rel < 1e-4);
        assert!(r.elapsed_ns > 0.0);
    }
    assert!(out.makespan.us_f64() > 1.0);
}

#[test]
fn fft2d_transpose_modes_match_serial_reference() {
    // The redirected transpose modes (blocking round-trips and the
    // nbi-overlapped train) must compute the same spectrum as the
    // direct coherent-store path, on both engines. The static-segment
    // receive block needs (n/npes + 1) * n * 8 private bytes.
    let expect = serial_checksum(&Fft2dConfig { n: 64, seed: 42, ..Fft2dConfig::default() });
    for mode in [TransposeMode::Blocking, TransposeMode::Nbi] {
        let fcfg = Fft2dConfig { n: 64, seed: 42, transpose: mode };
        for npes in [1usize, 4] {
            let out = tshmem::launch(&cfg(npes, 2), move |ctx| fft2d_shmem(ctx, &fcfg));
            for r in &out {
                let rel = (r.checksum - expect).abs() / expect;
                assert!(rel < 1e-4, "{mode:?} npes {npes}: checksum {} vs {expect}", r.checksum);
            }
        }
        let timed = tshmem::launch_timed(&cfg(4, 2), move |ctx| fft2d_shmem(ctx, &fcfg));
        for r in &timed.values {
            let rel = (r.checksum - expect).abs() / expect;
            assert!(rel < 1e-4, "{mode:?} timed: checksum {} vs {expect}", r.checksum);
        }
    }
}

#[test]
fn cbir_matches_serial_reference_various_pe_counts() {
    let ccfg = CbirConfig::tiny();
    let expect = cbir_serial(&ccfg);
    for npes in [1usize, 3, 5] {
        let out = tshmem::launch(&cfg(npes, 1), move |ctx| cbir_shmem(ctx, &ccfg));
        for r in &out {
            assert_eq!(r.matches.len(), expect.len(), "npes {npes}");
            for (got, want) in r.matches.iter().zip(&expect) {
                assert_eq!(got.image, want.image, "npes {npes}");
                assert!((got.distance - want.distance).abs() < 1e-5);
            }
        }
    }
}

#[test]
fn cbir_on_timed_engine_speeds_up_with_pes() {
    // The timed engine should show near-linear scaling at small PE
    // counts (Fig 14's linear region).
    let ccfg = CbirConfig {
        num_images: 48,
        dim: 32,
        ..CbirConfig::default()
    };
    let t = |npes: usize| {
        let out = tshmem::launch_timed(&cfg(npes, 1), move |ctx| cbir_shmem(ctx, &ccfg));
        out.values[0].elapsed_ns
    };
    let t1 = t(1);
    let t4 = t(4);
    let speedup = t1 / t4;
    assert!(
        (2.5..4.5).contains(&speedup),
        "4-PE speedup {speedup} out of the near-linear band (t1={t1}, t4={t4})"
    );
}

#[test]
fn fft2d_timed_speedup_shows_serial_transpose_plateau() {
    // With the serialized final transpose, speedup must be clearly
    // sublinear by 16 PEs (the Figure 13 plateau mechanism).
    let fcfg = Fft2dConfig { n: 128, seed: 3, ..Fft2dConfig::default() };
    let t = |npes: usize| {
        let out = tshmem::launch_timed(&cfg(npes, 2), move |ctx| fft2d_shmem(ctx, &fcfg));
        out.values[0].elapsed_ns
    };
    let t1 = t(1);
    let t16 = t(16);
    let speedup = t1 / t16;
    assert!(speedup > 1.5, "some speedup expected: {speedup}");
    assert!(speedup < 12.0, "plateau expected well below linear: {speedup}");
}
