//! Parallel 2D fast Fourier transform (paper Section V-A, Figure 13).
//!
//! The image's rows are block-distributed over the PEs. Each PE runs
//! 1D FFTs over its rows, the data is redistributed with a distributed
//! all-to-all transpose (puts of packed sub-blocks), each PE runs 1D
//! FFTs over what are now the image's columns, and one final transpose
//! — **serialized on PE 0, as in the paper** — produces the output.
//! That serial stage is the Amdahl bottleneck that levels speedup off
//! near 5 on the TILE-Gx.

use tshmem::prelude::*;
use tshmem::types::Complex32;

use crate::rng::KeyedRng;

/// How stage 2's distributed transpose delivers its packed rows.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum TransposeMode {
    /// Put directly into a symmetric-heap receive block. On Tilera
    /// hardware the symmetric heap is cache-coherent shared memory, so
    /// this is the paper's TSHMEM fast path (a plain store, nothing to
    /// overlap) and stays the shipped default.
    #[default]
    Direct,
    /// Put into a static-segment receive block with one blocking
    /// redirected put per packed row: each row pays a full service
    /// round-trip (request + completion reply at the destination's
    /// interrupt context) before the next row is sent. This is the
    /// ablation baseline the nbi overlap is measured against.
    Blocking,
    /// Same static-segment receive block, but rows are issued with
    /// `put_nbi` and completed by a single `quiet`: the redirected
    /// requests pipeline through each destination's service handler
    /// instead of serializing on per-row completion replies.
    Nbi,
}

/// Configuration for one 2D-FFT run.
#[derive(Clone, Copy, Debug)]
pub struct Fft2dConfig {
    /// Image dimension (N×N complex floats). The paper uses 1024.
    pub n: usize,
    /// RNG seed for the input image.
    pub seed: u64,
    /// Transpose delivery mode. `Blocking`/`Nbi` place the receive
    /// block in the static segment, so the private segment must hold
    /// `(n/npes + 1) * n * 8` extra bytes in those modes.
    pub transpose: TransposeMode,
}

impl Default for Fft2dConfig {
    fn default() -> Self {
        Self { n: 1024, seed: 0x2DFF7, transpose: TransposeMode::Direct }
    }
}

/// Result of one run.
#[derive(Clone, Copy, Debug)]
pub struct Fft2dResult {
    /// Engine-native wall/virtual time of the timed region, ns.
    pub elapsed_ns: f64,
    /// Checksum of the output spectrum (sum of |X|^2 over PE 0's view).
    pub checksum: f64,
}

/// Approximate flop count of one radix-2 complex FFT of length `n`
/// (10 flops per butterfly, n/2 log2(n) butterflies).
pub fn fft_flops(n: usize) -> f64 {
    5.0 * n as f64 * (n as f64).log2()
}

/// In-place iterative radix-2 Cooley-Tukey FFT.
///
/// # Panics
/// Panics unless `data.len()` is a power of two.
pub fn fft1d(data: &mut [Complex32], inverse: bool) {
    let n = data.len();
    assert!(n.is_power_of_two(), "FFT length {n} must be a power of two");
    if n <= 1 {
        return;
    }
    // Bit-reversal permutation.
    let bits = n.trailing_zeros();
    for i in 0..n {
        let j = (i as u32).reverse_bits() >> (32 - bits);
        let j = j as usize;
        if i < j {
            data.swap(i, j);
        }
    }
    // Butterflies.
    let sign = if inverse { 1.0f32 } else { -1.0 };
    let mut len = 2;
    while len <= n {
        let ang = sign * 2.0 * std::f32::consts::PI / len as f32;
        let wlen = Complex32::new(ang.cos(), ang.sin());
        for start in (0..n).step_by(len) {
            let mut w = Complex32::new(1.0, 0.0);
            for k in 0..len / 2 {
                let u = data[start + k];
                let v = data[start + k + len / 2].mul(w);
                data[start + k] = u.add(v);
                data[start + k + len / 2] = u.sub(v);
                w = w.mul(wlen);
            }
        }
        len <<= 1;
    }
    if inverse {
        let inv = 1.0 / n as f32;
        for d in data {
            d.re *= inv;
            d.im *= inv;
        }
    }
}

/// Deterministic N×N input image.
pub fn generate_image(n: usize, seed: u64) -> Vec<Complex32> {
    let mut out = Vec::with_capacity(n * n);
    for row in 0..n {
        let mut rng = KeyedRng::new(seed, row as u64);
        for _ in 0..n {
            out.push(Complex32::new(rng.unit_f32(), 0.0));
        }
    }
    out
}

/// Serial 2D FFT reference (row FFTs, transpose, column FFTs,
/// transpose back).
pub fn fft2d_serial(image: &mut [Complex32], n: usize) {
    assert_eq!(image.len(), n * n);
    for r in 0..n {
        fft1d(&mut image[r * n..(r + 1) * n], false);
    }
    transpose_square(image, n);
    for r in 0..n {
        fft1d(&mut image[r * n..(r + 1) * n], false);
    }
    transpose_square(image, n);
}

fn transpose_square(m: &mut [Complex32], n: usize) {
    for i in 0..n {
        for j in i + 1..n {
            m.swap(i * n + j, j * n + i);
        }
    }
}

/// Rows owned by PE `p` when distributing `n` rows over `npes` PEs.
pub fn row_range(n: usize, npes: usize, p: usize) -> (usize, usize) {
    let base = n / npes;
    let extra = n % npes;
    let start = p * base + p.min(extra);
    let count = base + usize::from(p < extra);
    (start, count)
}

/// Run the distributed 2D FFT on the SHMEM context. Every PE returns the
/// same result struct; the checksum is computed on PE 0 and broadcast.
///
/// The partition must hold roughly `3 * (n/npes) * n * 8` bytes plus, on
/// PE 0's side, the full `n*n*8`-byte gather buffer (allocated
/// symmetrically).
pub fn fft2d_shmem(ctx: &ShmemCtx, cfg: &Fft2dConfig) -> Fft2dResult {
    let n = cfg.n;
    let npes = ctx.n_pes();
    let me = ctx.my_pe();
    assert!(n.is_power_of_two(), "image dimension must be a power of two");
    let (my_start, my_rows) = row_range(n, npes, me);
    let max_rows = row_range(n, npes, 0).1;

    // Symmetric buffers: local row block, transpose receive block, and
    // the full gather/output image (used on PE 0). The receive block
    // lives in the heap for the direct (coherent-store) transpose and
    // in the static segment for the redirected blocking/nbi modes.
    let work = ctx.shmalloc::<Complex32>(max_rows * n);
    let heap_recv = (cfg.transpose == TransposeMode::Direct)
        .then(|| ctx.shmalloc::<Complex32>(max_rows * n));
    let recv = heap_recv.unwrap_or_else(|| ctx.static_sym::<Complex32>(max_rows * n));
    let full = ctx.shmalloc::<Complex32>(n * n);

    // Load input rows.
    let mut local: Vec<Complex32> = Vec::with_capacity(my_rows * n);
    for r in 0..my_rows {
        let mut rng = KeyedRng::new(cfg.seed, (my_start + r) as u64);
        for _ in 0..n {
            local.push(Complex32::new(rng.unit_f32(), 0.0));
        }
    }
    ctx.local_write(&work, 0, &local);
    ctx.barrier_all();

    let t0 = ctx.time_ns();

    // Stage 1: row FFTs.
    ctx.with_local_mut(&work, |w| {
        for r in 0..my_rows {
            fft1d(&mut w[r * n..r * n + n], false);
        }
    });
    ctx.compute_flops(my_rows as f64 * fft_flops(n));
    ctx.quiet();
    ctx.barrier_all();

    // Stage 2: distributed transpose. For each destination PE q, pack
    // the sub-block (my rows x q's rows-as-columns) transposed and put
    // each of its rows into q's recv block.
    let mut pack: Vec<Complex32> = Vec::new();
    for q in 0..npes {
        let (q_start, q_rows) = row_range(n, npes, q);
        for qr in 0..q_rows {
            // Row qr of q's post-transpose block, columns my_start..+my_rows:
            // original elements work[j][q_start + qr] for j in my rows.
            pack.clear();
            ctx.with_local(&work, |w| {
                for j in 0..my_rows {
                    pack.push(w[j * n + (q_start + qr)]);
                }
            });
            match cfg.transpose {
                TransposeMode::Nbi => {
                    ctx.put_nbi(&recv.slice(qr * n + my_start, my_rows), 0, &pack, q)
                }
                _ => ctx.put(&recv.slice(qr * n + my_start, my_rows), 0, &pack, q),
            }
        }
        // Packing cost: one pass over the sub-block.
        ctx.compute_intops((q_rows * my_rows) as f64 * 2.0);
    }
    if cfg.transpose == TransposeMode::Nbi {
        // One completion point for the whole row train: the deferred
        // reply-waits drain here, after every request is in flight.
        ctx.quiet();
    }
    ctx.barrier_all();

    // Stage 3: column FFTs (rows of the transposed distribution).
    ctx.with_local_mut(&recv, |w| {
        for r in 0..my_rows {
            fft1d(&mut w[r * n..r * n + n], false);
        }
    });
    ctx.compute_flops(my_rows as f64 * fft_flops(n));
    ctx.quiet();
    ctx.barrier_all();

    // Stage 4: gather to PE 0 and serial final transpose (the paper's
    // serialized stage).
    ctx.put_sym(&full, my_start * n, &recv, 0, my_rows * n, 0);
    ctx.barrier_all();
    if me == 0 {
        ctx.with_local_mut(&full, |m| transpose_square(m, n));
        // The in-place transpose strides by n elements (8n bytes), so
        // essentially every access misses the local caches and is served
        // from the DDC — charge the per-element miss latency. This is
        // the serialization the paper blames for the speedup plateau.
        let miss_cycles = ctx.device().timings.mem.ddc_hit_cycles as f64;
        ctx.compute((n * n) as f64 * miss_cycles);
        ctx.quiet();
    }
    ctx.barrier_all();

    let elapsed_ns = ctx.time_ns() - t0;

    // Checksum on PE 0, shared via reduction.
    let cs = ctx.shmalloc::<f64>(1);
    let cs_out = ctx.shmalloc::<f64>(1);
    let local_cs = if me == 0 {
        ctx.with_local(&full, |m| m.iter().map(|c| c.norm_sq() as f64).sum())
    } else {
        0.0
    };
    ctx.local_write(&cs, 0, &[local_cs]);
    ctx.sum_to_all(&cs_out, &cs, 1, ctx.world());
    let checksum = ctx.local_read(&cs_out, 0, 1)[0];

    ctx.shfree(cs_out);
    ctx.shfree(cs);
    ctx.shfree(full);
    if let Some(r) = heap_recv {
        ctx.shfree(r);
    }
    ctx.shfree(work);

    Fft2dResult {
        elapsed_ns,
        checksum,
    }
}

/// Serial checksum of the reference spectrum for `cfg` (for validating
/// the distributed run).
pub fn serial_checksum(cfg: &Fft2dConfig) -> f64 {
    let mut img = generate_image(cfg.n, cfg.seed);
    fft2d_serial(&mut img, cfg.n);
    img.iter().map(|c| c.norm_sq() as f64).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fft_roundtrip_recovers_signal() {
        let mut data: Vec<Complex32> = (0..64)
            .map(|i| Complex32::new((i as f32 * 0.3).sin(), (i as f32 * 0.11).cos()))
            .collect();
        let orig = data.clone();
        fft1d(&mut data, false);
        fft1d(&mut data, true);
        for (a, b) in data.iter().zip(&orig) {
            assert!((a.re - b.re).abs() < 1e-4 && (a.im - b.im).abs() < 1e-4);
        }
    }

    #[test]
    fn fft_of_impulse_is_flat() {
        let mut data = vec![Complex32::default(); 16];
        data[0] = Complex32::new(1.0, 0.0);
        fft1d(&mut data, false);
        for c in &data {
            assert!((c.re - 1.0).abs() < 1e-5 && c.im.abs() < 1e-5);
        }
    }

    #[test]
    fn fft_of_constant_is_impulse() {
        let mut data = vec![Complex32::new(1.0, 0.0); 32];
        fft1d(&mut data, false);
        assert!((data[0].re - 32.0).abs() < 1e-4);
        for c in &data[1..] {
            assert!(c.norm_sq() < 1e-6);
        }
    }

    #[test]
    fn parseval_energy_conserved() {
        let mut data: Vec<Complex32> = (0..128)
            .map(|i| Complex32::new((i as f32).sin(), 0.0))
            .collect();
        let time_energy: f32 = data.iter().map(|c| c.norm_sq()).sum();
        fft1d(&mut data, false);
        let freq_energy: f32 = data.iter().map(|c| c.norm_sq()).sum::<f32>() / 128.0;
        assert!((time_energy - freq_energy).abs() / time_energy < 1e-4);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_power_of_two_rejected() {
        fft1d(&mut [Complex32::default(); 12], false);
    }

    #[test]
    fn transpose_involution() {
        let n = 8;
        let mut m: Vec<Complex32> = (0..n * n)
            .map(|i| Complex32::new(i as f32, -(i as f32)))
            .collect();
        let orig = m.clone();
        transpose_square(&mut m, n);
        // m[row 1][col 0] == orig[row 0][col 1]
        assert_eq!(m[n].re, orig[1].re);
        transpose_square(&mut m, n);
        for (a, b) in m.iter().zip(&orig) {
            assert_eq!(a.re, b.re);
        }
    }

    #[test]
    fn row_ranges_tile_exactly() {
        for n in [64usize, 100, 1024] {
            for npes in [1usize, 3, 7, 32] {
                let mut covered = 0;
                for p in 0..npes {
                    let (s, c) = row_range(n, npes, p);
                    assert_eq!(s, covered);
                    covered += c;
                }
                assert_eq!(covered, n);
            }
        }
    }

    #[test]
    fn image_generation_is_deterministic() {
        let a = generate_image(16, 9);
        let b = generate_image(16, 9);
        assert_eq!(a.len(), 256);
        assert!(a.iter().zip(&b).all(|(x, y)| x == y));
    }

    #[test]
    fn flop_model_scales() {
        assert!(fft_flops(1024) > fft_flops(512) * 2.0);
    }
}
