//! Content-based image retrieval (paper Section V-B, Figure 14).
//!
//! A color-feature-extraction CBIR application based on the
//! autocorrelogram of Huang et al. (CVPR 1997): for each quantized color
//! `c` and distance `d`, the feature is the probability that a pixel at
//! Chebyshev distance `d` from a `c`-colored pixel is also `c`-colored.
//! Images are distributed across PEs; every PE extracts features for its
//! share and scores them against the query; the global best matches are
//! gathered with a collect.
//!
//! The paper's 22,000-image corpus is proprietary, so a seeded
//! procedural corpus exercises the identical code path — extraction cost
//! depends on pixel count and distance set, not content. The workload is
//! integer-dominated, which is why the TILE-Gx/TILEPro gap is small here
//! (both devices were tailored for integer work) while the FFT gap is an
//! order of magnitude.

use tshmem::prelude::*;

use crate::rng::KeyedRng;

/// Configuration of one CBIR run.
#[derive(Clone, Copy, Debug)]
pub struct CbirConfig {
    /// Database size. The paper uses 22,000.
    pub num_images: usize,
    /// Square image dimension. The paper uses 128 (8-bit pixels).
    pub dim: usize,
    /// Number of quantized colors.
    pub colors: usize,
    /// Correlogram distance set (Huang et al. use {1, 3, 5, 7}).
    pub distances: [usize; 4],
    /// Which image is the query.
    pub query: usize,
    /// How many best matches to return.
    pub top_k: usize,
    pub seed: u64,
}

impl Default for CbirConfig {
    fn default() -> Self {
        Self {
            num_images: 22_000,
            dim: 128,
            colors: 16,
            distances: [1, 3, 5, 7],
            query: 0,
            top_k: 10,
            seed: 0xCB1E,
        }
    }
}

impl CbirConfig {
    /// A small configuration for tests.
    pub fn tiny() -> Self {
        Self {
            num_images: 60,
            dim: 32,
            ..Self::default()
        }
    }

    /// Feature-vector length.
    pub fn feature_len(&self) -> usize {
        self.colors * self.distances.len()
    }
}

/// One retrieved match.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Match {
    pub image: u32,
    pub distance: f32,
}

/// Result of a run.
#[derive(Clone, Debug)]
pub struct CbirResult {
    pub elapsed_ns: f64,
    /// Best `top_k` matches, ascending by distance (the query itself,
    /// at distance 0, is excluded).
    pub matches: Vec<Match>,
}

/// Procedurally generate image `idx`: a few soft blobs over a textured
/// background, quantized to 8 bits. Content is deterministic in
/// `(seed, idx)`.
pub fn generate_image(cfg: &CbirConfig, idx: usize) -> Vec<u8> {
    let d = cfg.dim;
    let mut rng = KeyedRng::new(cfg.seed, idx as u64);
    let base = rng.below(200) as i32;
    let nblobs = 2 + rng.below(4) as usize;
    let blobs: Vec<(i32, i32, i32, i32)> = (0..nblobs)
        .map(|_| {
            (
                rng.below(d as u64) as i32,
                rng.below(d as u64) as i32,
                3 + rng.below((d / 4) as u64) as i32,
                rng.below(255) as i32,
            )
        })
        .collect();
    let mut img = Vec::with_capacity(d * d);
    for y in 0..d as i32 {
        for x in 0..d as i32 {
            let mut v = base + ((x * 7 + y * 13) % 17) - 8;
            for &(bx, by, r, bv) in &blobs {
                let dx = x - bx;
                let dy = y - by;
                if dx * dx + dy * dy < r * r {
                    v = bv + ((x + y) % 5);
                }
            }
            img.push(v.clamp(0, 255) as u8);
        }
    }
    img
}

/// Color autocorrelogram feature vector: for each quantized color and
/// each distance `d`, the fraction of sampled neighbors at Chebyshev
/// distance `d` (8 boundary samples) sharing the color.
pub fn autocorrelogram(cfg: &CbirConfig, img: &[u8]) -> Vec<f32> {
    let dim = cfg.dim as i32;
    assert_eq!(img.len(), (dim * dim) as usize);
    let quant = |p: u8| (p as usize * cfg.colors) / 256;
    let mut hits = vec![0u32; cfg.feature_len()];
    let mut totals = vec![0u32; cfg.feature_len()];
    for y in 0..dim {
        for x in 0..dim {
            let c = quant(img[(y * dim + x) as usize]);
            for (di, &d) in cfg.distances.iter().enumerate() {
                let d = d as i32;
                // Eight samples on the Chebyshev ring at distance d.
                const DIRS: [(i32, i32); 8] = [
                    (1, 0),
                    (-1, 0),
                    (0, 1),
                    (0, -1),
                    (1, 1),
                    (1, -1),
                    (-1, 1),
                    (-1, -1),
                ];
                for (dx, dy) in DIRS {
                    let nx = x + dx * d;
                    let ny = y + dy * d;
                    if nx < 0 || ny < 0 || nx >= dim || ny >= dim {
                        continue;
                    }
                    let slot = c * cfg.distances.len() + di;
                    totals[slot] += 1;
                    if quant(img[(ny * dim + nx) as usize]) == c {
                        hits[slot] += 1;
                    }
                }
            }
        }
    }
    hits.iter()
        .zip(&totals)
        .map(|(&h, &t)| if t == 0 { 0.0 } else { h as f32 / t as f32 })
        .collect()
}

/// Modeled integer-op cost of extracting one image's features.
pub fn extraction_intops(cfg: &CbirConfig) -> f64 {
    // Per pixel: 8 samples x |distances| x (bounds, index, quantize,
    // compare, increment) ~= 6 ops each.
    (cfg.dim * cfg.dim) as f64 * 8.0 * cfg.distances.len() as f64 * 6.0
}

/// L1 distance between two feature vectors.
pub fn l1_distance(a: &[f32], b: &[f32]) -> f32 {
    a.iter().zip(b).map(|(x, y)| (x - y).abs()).sum()
}

/// Images owned by PE `p`.
pub fn image_range(total: usize, npes: usize, p: usize) -> (usize, usize) {
    crate::fft::row_range(total, npes, p)
}

/// Serial reference.
pub fn cbir_serial(cfg: &CbirConfig) -> Vec<Match> {
    let query = autocorrelogram(cfg, &generate_image(cfg, cfg.query));
    let mut all: Vec<Match> = (0..cfg.num_images)
        .filter(|&i| i != cfg.query)
        .map(|i| Match {
            image: i as u32,
            distance: l1_distance(&query, &autocorrelogram(cfg, &generate_image(cfg, i))),
        })
        .collect();
    all.sort_by(|a, b| a.distance.total_cmp(&b.distance).then(a.image.cmp(&b.image)));
    all.truncate(cfg.top_k);
    all
}

/// Distributed CBIR search over the SHMEM context.
pub fn cbir_shmem(ctx: &ShmemCtx, cfg: &CbirConfig) -> CbirResult {
    let npes = ctx.n_pes();
    let me = ctx.my_pe();
    let (start, count) = image_range(cfg.num_images, npes, me);
    let k = cfg.top_k;

    // Symmetric buffers: local top-k candidates (image id + distance,
    // packed as two f32 words) and the gathered candidate pool.
    let local_top = ctx.shmalloc::<f32>(2 * k);
    let pool = ctx.shmalloc::<f32>(2 * k * npes);

    ctx.barrier_all();
    let t0 = ctx.time_ns();

    // Every PE computes the query features (cheap, avoids a broadcast
    // dependency — same choice as the original application).
    let query = autocorrelogram(cfg, &generate_image(cfg, cfg.query));
    ctx.compute_intops(extraction_intops(cfg));

    // Score our share.
    let mut best: Vec<Match> = Vec::with_capacity(k + 1);
    for i in start..start + count {
        if i == cfg.query {
            continue;
        }
        let f = autocorrelogram(cfg, &generate_image(cfg, i));
        let d = l1_distance(&query, &f);
        let m = Match {
            image: i as u32,
            distance: d,
        };
        let pos = best
            .binary_search_by(|x| x.distance.total_cmp(&m.distance).then(x.image.cmp(&m.image)))
            .unwrap_or_else(|e| e);
        if pos < k {
            best.insert(pos, m);
            best.truncate(k);
        }
    }
    ctx.compute_intops(count as f64 * extraction_intops(cfg));

    // Pack (pad with +inf) and gather every PE's candidates.
    let mut packed = vec![0.0f32; 2 * k];
    for i in 0..k {
        if let Some(m) = best.get(i) {
            packed[2 * i] = f32::from_bits(m.image);
            packed[2 * i + 1] = m.distance;
        } else {
            packed[2 * i] = f32::from_bits(u32::MAX);
            packed[2 * i + 1] = f32::INFINITY;
        }
    }
    ctx.local_write(&local_top, 0, &packed);
    ctx.fcollect(&pool, &local_top, 2 * k, ctx.world());

    // Merge the pool (every PE does the same merge — the result is
    // available everywhere, as the reduction-based original ends up).
    let gathered = ctx.local_read(&pool, 0, 2 * k * npes);
    let mut all: Vec<Match> = gathered
        .chunks_exact(2)
        .filter(|c| c[1].is_finite())
        .map(|c| Match {
            image: c[0].to_bits(),
            distance: c[1],
        })
        .collect();
    all.sort_by(|a, b| a.distance.total_cmp(&b.distance).then(a.image.cmp(&b.image)));
    all.truncate(k);
    ctx.compute_intops((k * npes) as f64 * 16.0);

    ctx.barrier_all();
    let elapsed_ns = ctx.time_ns() - t0;

    ctx.shfree(pool);
    ctx.shfree(local_top);

    CbirResult {
        elapsed_ns,
        matches: all,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn image_generation_deterministic_and_bounded() {
        let cfg = CbirConfig::tiny();
        let a = generate_image(&cfg, 5);
        let b = generate_image(&cfg, 5);
        assert_eq!(a, b);
        assert_eq!(a.len(), cfg.dim * cfg.dim);
        let c = generate_image(&cfg, 6);
        assert_ne!(a, c);
    }

    #[test]
    fn autocorrelogram_shape_and_range() {
        let cfg = CbirConfig::tiny();
        let f = autocorrelogram(&cfg, &generate_image(&cfg, 0));
        assert_eq!(f.len(), cfg.feature_len());
        assert!(f.iter().all(|v| (0.0..=1.0).contains(v)));
    }

    #[test]
    fn uniform_image_has_perfect_autocorrelation() {
        let cfg = CbirConfig::tiny();
        let img = vec![200u8; cfg.dim * cfg.dim];
        let f = autocorrelogram(&cfg, &img);
        let c = (200usize * cfg.colors) / 256;
        for (di, _) in cfg.distances.iter().enumerate() {
            assert_eq!(f[c * cfg.distances.len() + di], 1.0);
        }
        // All other colors never occur.
        for color in 0..cfg.colors {
            if color == c {
                continue;
            }
            for di in 0..cfg.distances.len() {
                assert_eq!(f[color * cfg.distances.len() + di], 0.0);
            }
        }
    }

    #[test]
    fn identical_images_have_zero_distance() {
        let cfg = CbirConfig::tiny();
        let f = autocorrelogram(&cfg, &generate_image(&cfg, 3));
        assert_eq!(l1_distance(&f, &f), 0.0);
    }

    #[test]
    fn self_similarity_beats_random_pairs() {
        // A feature should be closer to a near-duplicate than to a
        // random other image.
        let cfg = CbirConfig::tiny();
        let img = generate_image(&cfg, 1);
        let mut tweaked = img.clone();
        for p in tweaked.iter_mut().step_by(97) {
            *p = p.wrapping_add(1);
        }
        let f0 = autocorrelogram(&cfg, &img);
        let f1 = autocorrelogram(&cfg, &tweaked);
        let f2 = autocorrelogram(&cfg, &generate_image(&cfg, 40));
        assert!(l1_distance(&f0, &f1) < l1_distance(&f0, &f2));
    }

    #[test]
    fn serial_reference_sorted_and_sized() {
        let cfg = CbirConfig::tiny();
        let m = cbir_serial(&cfg);
        assert_eq!(m.len(), cfg.top_k);
        for w in m.windows(2) {
            assert!(w[0].distance <= w[1].distance);
        }
        assert!(m.iter().all(|x| x.image as usize != cfg.query));
    }

    #[test]
    fn extraction_cost_model_scales_with_pixels() {
        let small = CbirConfig::tiny();
        let big = CbirConfig {
            dim: 64,
            ..CbirConfig::tiny()
        };
        assert!(extraction_intops(&big) > 3.0 * extraction_intops(&small));
    }
}
