//! Tiny deterministic RNG (SplitMix64) for procedural test data.
//!
//! Both case studies need reproducible synthetic inputs on every PE
//! without coordinating state; SplitMix64 keyed by (seed, index) gives
//! position-independent streams.

/// SplitMix64 step.
#[inline]
pub fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A keyed stream: deterministic function of `(seed, key)`.
pub struct KeyedRng {
    state: u64,
}

impl KeyedRng {
    pub fn new(seed: u64, key: u64) -> Self {
        let mut state = seed ^ key.wrapping_mul(0xA24B_AED4_963E_E407);
        // Warm up to decorrelate nearby keys.
        splitmix64(&mut state);
        splitmix64(&mut state);
        Self { state }
    }

    pub fn next_u64(&mut self) -> u64 {
        splitmix64(&mut self.state)
    }

    /// Uniform in `[0, n)`.
    pub fn below(&mut self, n: u64) -> u64 {
        self.next_u64() % n
    }

    /// Uniform float in `[0, 1)`.
    pub fn unit_f32(&mut self) -> f32 {
        (self.next_u64() >> 40) as f32 / (1u64 << 24) as f32
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_key() {
        let a: Vec<u64> = {
            let mut r = KeyedRng::new(7, 3);
            (0..8).map(|_| r.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut r = KeyedRng::new(7, 3);
            (0..8).map(|_| r.next_u64()).collect()
        };
        assert_eq!(a, b);
        let c: Vec<u64> = {
            let mut r = KeyedRng::new(7, 4);
            (0..8).map(|_| r.next_u64()).collect()
        };
        assert_ne!(a, c);
    }

    #[test]
    fn below_in_range_and_unit_in_range() {
        let mut r = KeyedRng::new(1, 1);
        for _ in 0..1000 {
            assert!(r.below(17) < 17);
            let u = r.unit_f32();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn rough_uniformity() {
        let mut r = KeyedRng::new(42, 0);
        let mut counts = [0u32; 8];
        for _ in 0..8000 {
            counts[r.below(8) as usize] += 1;
        }
        for c in counts {
            assert!((700..1300).contains(&c), "bucket count {c}");
        }
    }
}
