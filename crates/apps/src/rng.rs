//! Deterministic RNG for procedural test data.
//!
//! The SplitMix64 [`KeyedRng`] originated here (both case studies need
//! reproducible synthetic inputs on every PE without coordinating
//! state) and has been promoted to [`substrate::rng`] so the whole
//! workspace shares one implementation; this module re-exports it to
//! keep the apps-local paths working. The promoted version fixes the
//! modulo bias `below` used to have: bounds are now drawn by rejection
//! sampling.

pub use substrate::rng::{splitmix64, KeyedRng, Rng};
