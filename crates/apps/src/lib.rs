//! The TSHMEM paper's application case studies (Section V).
//!
//! * [`fft`] — parallel 2D fast Fourier transform over a
//!   1024×1024-complex-float image: per-PE row FFTs, a distributed
//!   all-to-all transpose, column FFTs, and a **serialized final
//!   transpose** whose Amdahl bottleneck caps speedup near 5 on the
//!   TILE-Gx (Figure 13).
//! * [`cbir`] — content-based image retrieval: color-autocorrelogram
//!   feature extraction (Huang et al., CVPR 1997) over a 22,000-image
//!   synthetic database, embarrassingly parallel per image, with a
//!   gather of the best matches (Figure 14). The paper's image corpus is
//!   proprietary; a seeded procedural corpus exercises the identical
//!   code path (feature extraction cost is content-independent).
//!
//! Both applications run unmodified on the native and timed engines;
//! compute phases are charged through `ShmemCtx::compute_flops` /
//! `compute_intops` so the timed engine reproduces the devices'
//! floating-point/integer asymmetry.

pub mod cbir;
pub mod fft;
pub mod rng;
