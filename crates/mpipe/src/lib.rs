//! Model of the TILE-Gx **mPIPE** (multicore Programmable Intelligent
//! Packet Engine) used as an inter-chip transport.
//!
//! The TSHMEM paper closes with the plan to "leverage novel
//! architectural features of the TILE-Gx such as the mPIPE packet
//! engine as we explore designs for expanding the shared-memory
//! abstraction in TSHMEM across multiple many-core devices"
//! (Section VI). This crate provides the transport model that the
//! multi-chip engine (`tshmem::engine::multichip`) charges:
//!
//! * **Frame math** — payloads segment into MTU-sized Ethernet frames,
//!   each paying per-frame engine + wire overhead; mPIPE's hardware
//!   classification makes per-frame software cost tiny (that is its
//!   selling point — wire-speed classification and distribution).
//! * **Link model** — full-duplex point-to-point links (XAUI, 10 Gbps
//!   per direction) with busy-until FIFO bandwidth accounting per
//!   direction.
//!
//! The functional data path of a multi-chip job stays in process (the
//! chips are simulated); what this crate supplies is the *cost* of
//! crossing a chip boundary, which is 100× the on-chip UDN latency and
//! bandwidth-limited at 1.25 GB/s per direction — exactly the regime
//! change the future-work experiments quantify.

use desim::resource::Resource;
use desim::time::SimTime;

/// Timing model of one mPIPE-to-mPIPE link.
#[derive(Clone, Copy, Debug)]
pub struct MpipeTimings {
    /// Maximum payload bytes per frame (jumbo Ethernet).
    pub mtu_bytes: usize,
    /// Fixed cost per frame: mPIPE ingress/egress processing plus NIC
    /// and wire latency, ps.
    pub frame_overhead_ps: u64,
    /// Serialization cost per payload byte, ps (10 Gbps = 0.8 ns/byte).
    pub per_byte_ps: u64,
    /// One-way propagation between adjacent chips, ps.
    pub propagation_ps: u64,
}

impl MpipeTimings {
    /// A 10 Gbps XAUI-class link between neighboring boards.
    pub const fn xaui_10g() -> Self {
        Self {
            mtu_bytes: 9000,
            // ~1.5 us of engine + descriptor handling per frame.
            frame_overhead_ps: 1_500_000,
            per_byte_ps: 800, // 0.8 ns/byte = 10 Gbps
            propagation_ps: 500_000,
        }
    }

    /// Number of frames a payload needs.
    pub fn frames(&self, bytes: usize) -> usize {
        if bytes == 0 {
            1 // a bare header/doorbell still crosses the wire
        } else {
            bytes.div_ceil(self.mtu_bytes)
        }
    }

    /// Wire occupancy (serialization) time for a payload, ps — the time
    /// the link direction is busy.
    pub fn serialization_ps(&self, bytes: usize) -> u64 {
        self.frames(bytes) as u64 * self.frame_overhead_ps + bytes as u64 * self.per_byte_ps
    }

    /// One-way latency of the *first* byte group: overhead + propagation
    /// plus the first frame's serialization.
    pub fn first_frame_latency_ps(&self, bytes: usize) -> u64 {
        let first = bytes.min(self.mtu_bytes);
        self.frame_overhead_ps + self.propagation_ps + first as u64 * self.per_byte_ps
    }

    /// Effective bandwidth of a `bytes`-sized transfer, MB/s.
    pub fn effective_mbps(&self, bytes: usize) -> f64 {
        let total_ps = self.serialization_ps(bytes) + self.propagation_ps;
        tile_arch::clock::bandwidth_mbps(bytes as u64, total_ps)
    }
}

/// A full-duplex link between two chips, with FIFO bandwidth accounting
/// per direction.
#[derive(Clone, Debug)]
pub struct MpipeLink {
    pub timings: MpipeTimings,
    /// Busy-until state per direction: `[a->b, b->a]`.
    dirs: [Resource; 2],
}

impl MpipeLink {
    pub fn new(timings: MpipeTimings) -> Self {
        Self {
            timings,
            dirs: [Resource::new(), Resource::new()],
        }
    }

    /// Occupy direction `dir` (0 = a→b, 1 = b→a) for a `bytes` payload
    /// starting no earlier than `now`; returns the arrival time of the
    /// last byte at the far side.
    pub fn transfer(&mut self, dir: usize, now: SimTime, bytes: usize) -> SimTime {
        let ser = SimTime::from_ps(self.timings.serialization_ps(bytes));
        let done = self.dirs[dir].acquire(now, ser);
        done + SimTime::from_ps(self.timings.propagation_ps)
    }

    /// Total bytes-time served on a direction (for utilization reports).
    pub fn busy(&self, dir: usize) -> SimTime {
        self.dirs[dir].busy_time()
    }

    pub fn reset(&mut self) {
        self.dirs = [Resource::new(), Resource::new()];
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t() -> MpipeTimings {
        MpipeTimings::xaui_10g()
    }

    #[test]
    fn frame_counts() {
        let m = t();
        assert_eq!(m.frames(0), 1);
        assert_eq!(m.frames(1), 1);
        assert_eq!(m.frames(9000), 1);
        assert_eq!(m.frames(9001), 2);
        assert_eq!(m.frames(90_000), 10);
    }

    #[test]
    fn bandwidth_asymptote_near_10gbps() {
        let m = t();
        // Large transfers approach the line rate (1250 MB/s), minus
        // per-frame overhead (~17%).
        let bw = m.effective_mbps(64 << 20);
        assert!((950.0..1250.0).contains(&bw), "{bw}");
        // Small transfers are latency-dominated.
        let small = m.effective_mbps(64);
        assert!(small < 50.0, "{small}");
    }

    #[test]
    fn cross_chip_latency_is_microseconds() {
        // The regime change vs the ~21 ns on-chip UDN.
        let m = t();
        let ns = m.first_frame_latency_ps(8) as f64 / 1e3;
        assert!((1_000.0..5_000.0).contains(&ns), "{ns} ns");
    }

    #[test]
    fn directions_are_independent() {
        let mut l = MpipeLink::new(t());
        let now = SimTime::ZERO;
        let a = l.transfer(0, now, 9000);
        let b = l.transfer(1, now, 9000);
        assert_eq!(a, b, "directions must not contend");
        // Same direction serializes.
        let c = l.transfer(0, now, 9000);
        assert!(c > a);
    }

    #[test]
    fn fifo_backlog_accumulates() {
        let mut l = MpipeLink::new(t());
        let mut done = SimTime::ZERO;
        for _ in 0..10 {
            done = l.transfer(0, SimTime::ZERO, 9000);
        }
        let ser = l.timings.serialization_ps(9000);
        assert_eq!(done.ps(), 10 * ser + l.timings.propagation_ps);
        assert_eq!(l.busy(0).ps(), 10 * ser);
        l.reset();
        assert_eq!(l.busy(0), SimTime::ZERO);
    }
}
