//! Model of the TILE-Gx **mPIPE** (multicore Programmable Intelligent
//! Packet Engine) used as an inter-chip transport.
//!
//! The TSHMEM paper closes with the plan to "leverage novel
//! architectural features of the TILE-Gx such as the mPIPE packet
//! engine as we explore designs for expanding the shared-memory
//! abstraction in TSHMEM across multiple many-core devices"
//! (Section VI). This crate provides the transport model that the
//! multi-chip engine (`tshmem::engine::multichip`) charges:
//!
//! * **Frame math** — payloads segment into MTU-sized Ethernet frames,
//!   each paying per-frame engine + wire overhead; mPIPE's hardware
//!   classification makes per-frame software cost tiny (that is its
//!   selling point — wire-speed classification and distribution).
//! * **Link model** — full-duplex point-to-point links (XAUI, 10 Gbps
//!   per direction) with busy-until FIFO bandwidth accounting per
//!   direction.
//!
//! The functional data path of a multi-chip job stays in process (the
//! chips are simulated); what this crate supplies is the *cost* of
//! crossing a chip boundary, which is 100× the on-chip UDN latency and
//! bandwidth-limited at 1.25 GB/s per direction — exactly the regime
//! change the future-work experiments quantify.

use desim::resource::Resource;
use desim::time::SimTime;

/// Timing model of one mPIPE-to-mPIPE link.
#[derive(Clone, Copy, Debug)]
pub struct MpipeTimings {
    /// Maximum payload bytes per frame (jumbo Ethernet).
    pub mtu_bytes: usize,
    /// Fixed cost per frame: mPIPE ingress/egress processing plus NIC
    /// and wire latency, ps.
    pub frame_overhead_ps: u64,
    /// Serialization cost per payload byte, ps (10 Gbps = 0.8 ns/byte).
    pub per_byte_ps: u64,
    /// One-way propagation between adjacent chips, ps.
    pub propagation_ps: u64,
}

impl MpipeTimings {
    /// A 10 Gbps XAUI-class link between neighboring boards.
    pub const fn xaui_10g() -> Self {
        Self {
            mtu_bytes: 9000,
            // ~1.5 us of engine + descriptor handling per frame.
            frame_overhead_ps: 1_500_000,
            per_byte_ps: 800, // 0.8 ns/byte = 10 Gbps
            propagation_ps: 500_000,
        }
    }

    /// Number of frames a payload needs.
    pub fn frames(&self, bytes: usize) -> usize {
        if bytes == 0 {
            1 // a bare header/doorbell still crosses the wire
        } else {
            bytes.div_ceil(self.mtu_bytes)
        }
    }

    /// Wire occupancy (serialization) time for a payload, ps — the time
    /// the link direction is busy.
    pub fn serialization_ps(&self, bytes: usize) -> u64 {
        self.frames(bytes) as u64 * self.frame_overhead_ps + bytes as u64 * self.per_byte_ps
    }

    /// One-way latency of the *first* byte group: overhead + propagation
    /// plus the first frame's serialization.
    pub fn first_frame_latency_ps(&self, bytes: usize) -> u64 {
        let first = bytes.min(self.mtu_bytes);
        self.frame_overhead_ps + self.propagation_ps + first as u64 * self.per_byte_ps
    }

    /// Effective bandwidth of a `bytes`-sized transfer, MB/s.
    pub fn effective_mbps(&self, bytes: usize) -> f64 {
        let total_ps = self.serialization_ps(bytes) + self.propagation_ps;
        tile_arch::clock::bandwidth_mbps(bytes as u64, total_ps)
    }
}

/// A fault injected into one wire frame (the multichip engine's fault
/// plane selects which frame). All three are **caught-class**: the
/// receiving mPIPE's CRC/sequence check detects them and panics with a
/// diagnosis naming the link — they never corrupt delivered data
/// silently.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FrameFault {
    /// Flip bits in flight: the ingress CRC check fails.
    Corrupt,
    /// Lose the frame: the *next* frame's sequence check reports a gap
    /// (or, with no further traffic, the receiver's wait wedges and the
    /// drained-queue watchdog reports the stall).
    Drop,
    /// Deliver the frame twice: the replay trips the sequence check.
    Duplicate,
}

/// CRC-64-ECMA over a simulated frame header (sequence number + length).
/// The modeled chips share an address space, so the "frame" we checksum
/// is the header a real mPIPE egress descriptor would carry.
pub fn frame_crc(seq: u64, bytes: u64) -> u64 {
    const POLY: u64 = 0x42F0_E1EB_A9EA_3693;
    let mut crc = !0u64;
    for word in [seq, bytes] {
        for byte in word.to_le_bytes() {
            crc ^= (byte as u64) << 56;
            for _ in 0..8 {
                crc = if crc & (1 << 63) != 0 { (crc << 1) ^ POLY } else { crc << 1 };
            }
        }
    }
    !crc
}

/// Per-direction frame-integrity state: the next sequence number the
/// egress side will stamp and the next one ingress expects.
#[derive(Clone, Copy, Debug, Default)]
struct DirIntegrity {
    next_tx: u64,
    next_rx: u64,
}

/// A full-duplex link between two chips, with FIFO bandwidth accounting
/// per direction.
#[derive(Clone, Debug)]
pub struct MpipeLink {
    pub timings: MpipeTimings,
    /// Busy-until state per direction: `[a->b, b->a]`.
    dirs: [Resource; 2],
    /// Frame CRC/sequence state per direction.
    integ: [DirIntegrity; 2],
    /// Chip ids `(a, b)` at the link ends, for diagnostics.
    ends: (usize, usize),
}

impl MpipeLink {
    pub fn new(timings: MpipeTimings) -> Self {
        Self::between(timings, 0, 1)
    }

    /// A link whose integrity diagnostics name the chips it connects
    /// (direction 0 is `a` → `b`).
    pub fn between(timings: MpipeTimings, a: usize, b: usize) -> Self {
        Self {
            timings,
            dirs: [Resource::new(), Resource::new()],
            integ: [DirIntegrity::default(); 2],
            ends: (a, b),
        }
    }

    fn end_names(&self, dir: usize) -> (usize, usize) {
        let (a, b) = self.ends;
        if dir == 0 { (a, b) } else { (b, a) }
    }

    /// Occupy direction `dir` (0 = a→b, 1 = b→a) for a `bytes` payload
    /// starting no earlier than `now`; returns the arrival time of the
    /// last byte at the far side.
    pub fn transfer(&mut self, dir: usize, now: SimTime, bytes: usize) -> SimTime {
        let ser = SimTime::from_ps(self.timings.serialization_ps(bytes));
        let done = self.dirs[dir].acquire(now, ser);
        done + SimTime::from_ps(self.timings.propagation_ps)
    }

    /// [`transfer`](Self::transfer) with the frame-integrity layer: the
    /// egress side stamps sequence numbers and a CRC, `fault` (if any)
    /// mangles the frame in flight, and the ingress check verifies —
    /// panicking with a diagnosis that **names the link** on a CRC
    /// mismatch, a sequence gap (lost frames), or a replay.
    ///
    /// Returns `None` when the frame was dropped in flight: the wire
    /// time was spent but nothing arrived, so the caller must not
    /// deliver — detection happens at the next frame's sequence check.
    pub fn transfer_checked(
        &mut self,
        dir: usize,
        now: SimTime,
        bytes: usize,
        fault: Option<FrameFault>,
    ) -> Option<SimTime> {
        let nframes = self.timings.frames(bytes) as u64;
        let seq = self.integ[dir].next_tx;
        self.integ[dir].next_tx += nframes;
        let crc = frame_crc(seq, bytes as u64);
        // The wire is occupied whatever happens to the frame afterwards.
        let arrival = self.transfer(dir, now, bytes);
        match fault {
            Some(FrameFault::Drop) => return None,
            Some(FrameFault::Corrupt) => {
                self.ingress_check(dir, seq, nframes, bytes, crc ^ (1 << 17));
            }
            Some(FrameFault::Duplicate) => {
                self.ingress_check(dir, seq, nframes, bytes, crc);
                self.ingress_check(dir, seq, nframes, bytes, crc);
            }
            None => self.ingress_check(dir, seq, nframes, bytes, crc),
        }
        Some(arrival)
    }

    /// The receiving mPIPE's classification step: verify CRC, then the
    /// sequence window.
    fn ingress_check(&mut self, dir: usize, seq: u64, nframes: u64, bytes: usize, crc: u64) {
        let (from, to) = self.end_names(dir);
        let expected = frame_crc(seq, bytes as u64);
        assert!(
            crc == expected,
            "mPIPE link chip{from}->chip{to}: CRC mismatch on frame {seq} \
             ({bytes}-byte payload): got {crc:#018x}, expected {expected:#018x}"
        );
        let rx = &mut self.integ[dir].next_rx;
        assert!(
            seq >= *rx,
            "mPIPE link chip{from}->chip{to}: replayed frame {seq} (duplicate delivery; \
             expected sequence {rx})"
        );
        assert!(
            seq == *rx,
            "mPIPE link chip{from}->chip{to}: sequence gap at frame {seq}: {} frame(s) lost",
            seq - *rx
        );
        *rx = seq + nframes;
    }

    /// Total bytes-time served on a direction (for utilization reports).
    pub fn busy(&self, dir: usize) -> SimTime {
        self.dirs[dir].busy_time()
    }

    pub fn reset(&mut self) {
        self.dirs = [Resource::new(), Resource::new()];
        self.integ = [DirIntegrity::default(); 2];
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t() -> MpipeTimings {
        MpipeTimings::xaui_10g()
    }

    #[test]
    fn frame_counts() {
        let m = t();
        assert_eq!(m.frames(0), 1);
        assert_eq!(m.frames(1), 1);
        assert_eq!(m.frames(9000), 1);
        assert_eq!(m.frames(9001), 2);
        assert_eq!(m.frames(90_000), 10);
    }

    #[test]
    fn bandwidth_asymptote_near_10gbps() {
        let m = t();
        // Large transfers approach the line rate (1250 MB/s), minus
        // per-frame overhead (~17%).
        let bw = m.effective_mbps(64 << 20);
        assert!((950.0..1250.0).contains(&bw), "{bw}");
        // Small transfers are latency-dominated.
        let small = m.effective_mbps(64);
        assert!(small < 50.0, "{small}");
    }

    #[test]
    fn cross_chip_latency_is_microseconds() {
        // The regime change vs the ~21 ns on-chip UDN.
        let m = t();
        let ns = m.first_frame_latency_ps(8) as f64 / 1e3;
        assert!((1_000.0..5_000.0).contains(&ns), "{ns} ns");
    }

    #[test]
    fn directions_are_independent() {
        let mut l = MpipeLink::new(t());
        let now = SimTime::ZERO;
        let a = l.transfer(0, now, 9000);
        let b = l.transfer(1, now, 9000);
        assert_eq!(a, b, "directions must not contend");
        // Same direction serializes.
        let c = l.transfer(0, now, 9000);
        assert!(c > a);
    }

    #[test]
    fn checked_transfer_matches_unchecked_cost_and_tracks_sequence() {
        let mut plain = MpipeLink::new(t());
        let mut checked = MpipeLink::between(t(), 0, 1);
        for bytes in [8, 9000, 40_000] {
            let a = plain.transfer(0, SimTime::ZERO, bytes);
            let b = checked
                .transfer_checked(0, SimTime::ZERO, bytes, None)
                .expect("healthy frame arrives");
            assert_eq!(a, b, "integrity layer must not change the cost model");
        }
        // Directions keep independent sequence state.
        checked.transfer_checked(1, SimTime::ZERO, 8, None).unwrap();
    }

    #[test]
    #[should_panic(expected = "mPIPE link chip2->chip5: CRC mismatch on frame 0")]
    fn corrupted_frame_is_caught_and_names_the_link() {
        let mut l = MpipeLink::between(t(), 2, 5);
        l.transfer_checked(0, SimTime::ZERO, 64, Some(FrameFault::Corrupt));
    }

    #[test]
    #[should_panic(expected = "mPIPE link chip0->chip1: sequence gap at frame 1: 1 frame(s) lost")]
    fn dropped_frame_is_caught_at_the_next_frame() {
        let mut l = MpipeLink::between(t(), 0, 1);
        assert!(l.transfer_checked(0, SimTime::ZERO, 64, Some(FrameFault::Drop)).is_none());
        l.transfer_checked(0, SimTime::ZERO, 64, None);
    }

    #[test]
    #[should_panic(expected = "mPIPE link chip1->chip0: replayed frame 0")]
    fn duplicated_frame_is_caught_as_replay() {
        let mut l = MpipeLink::between(t(), 0, 1);
        l.transfer_checked(1, SimTime::ZERO, 64, Some(FrameFault::Duplicate));
    }

    #[test]
    fn fifo_backlog_accumulates() {
        let mut l = MpipeLink::new(t());
        let mut done = SimTime::ZERO;
        for _ in 0..10 {
            done = l.transfer(0, SimTime::ZERO, 9000);
        }
        let ser = l.timings.serialization_ps(9000);
        assert_eq!(done.ps(), 10 * ser + l.timings.propagation_ps);
        assert_eq!(l.busy(0).ps(), 10 * ser);
        l.reset();
        assert_eq!(l.busy(0), SimTime::ZERO);
    }
}
