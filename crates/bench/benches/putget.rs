//! Criterion: native-engine put/get bandwidth (the Figure 6/7 workload
//! measured on real threads rather than the timed model).

use bench::measure_native;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

fn bench_putget(c: &mut Criterion) {
    let mut g = c.benchmark_group("native_putget");
    g.sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_secs(1));
    for size in [1usize << 10, 64 << 10, 1 << 20] {
        g.throughput(Throughput::Bytes(size as u64));
        g.bench_with_input(BenchmarkId::new("put_dyn_dyn", size), &size, |b, &size| {
            b.iter_custom(|iters| {
                measure_native(2, iters, |ctx, iters| {
                    let n = size / 8;
                    let src = ctx.shmalloc::<u64>(n);
                    let dst = ctx.shmalloc::<u64>(n);
                    ctx.barrier_all();
                    let mut t = 0.0;
                    if ctx.my_pe() == 0 {
                        let t0 = ctx.time_ns();
                        for _ in 0..iters {
                            ctx.put_sym(&dst, 0, &src, 0, n, 1);
                        }
                        ctx.quiet();
                        t = ctx.time_ns() - t0;
                    }
                    ctx.barrier_all();
                    t
                })
            });
        });
        g.bench_with_input(BenchmarkId::new("get_dyn_dyn", size), &size, |b, &size| {
            b.iter_custom(|iters| {
                measure_native(2, iters, |ctx, iters| {
                    let n = size / 8;
                    let src = ctx.shmalloc::<u64>(n);
                    let dst = ctx.shmalloc::<u64>(n);
                    ctx.barrier_all();
                    let mut t = 0.0;
                    if ctx.my_pe() == 0 {
                        let t0 = ctx.time_ns();
                        for _ in 0..iters {
                            ctx.get_sym(&dst, 0, &src, 0, n, 1);
                        }
                        t = ctx.time_ns() - t0;
                    }
                    ctx.barrier_all();
                    t
                })
            });
        });
    }
    // The redirected static path (one size — it exists to quantify the
    // service-thread overhead, not to sweep).
    let size = 64usize << 10;
    g.throughput(Throughput::Bytes(size as u64));
    g.bench_with_input(BenchmarkId::new("put_static_dyn", size), &size, |b, &size| {
        b.iter_custom(|iters| {
            measure_native(2, iters, |ctx, iters| {
                let n = size / 8;
                let src = ctx.shmalloc::<u64>(n);
                let dst = ctx.static_sym::<u64>(n);
                ctx.barrier_all();
                let mut t = 0.0;
                if ctx.my_pe() == 0 {
                    let t0 = ctx.time_ns();
                    for _ in 0..iters {
                        ctx.put_sym(&dst, 0, &src, 0, n, 1);
                    }
                    t = ctx.time_ns() - t0;
                }
                ctx.barrier_all();
                t
            })
        });
    });
    g.finish();
}

criterion_group!(benches, bench_putget);
criterion_main!(benches);
