//! Criterion: raw UDN fabric latency (the Figure 4 / Table III workload
//! on the functional fabric — send a 1-word packet, get a 1-word ack).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use udn::fabric::UdnFabric;

fn bench_udn(c: &mut Criterion) {
    let mut g = c.benchmark_group("udn_fabric");
    g.sample_size(20)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_secs(1));

    for payload_words in [1usize, 16, 127] {
        g.bench_with_input(
            BenchmarkId::new("ping_ack", payload_words),
            &payload_words,
            |b, &payload_words| {
                b.iter_custom(|iters| {
                    let mut eps = UdnFabric::new(2);
                    let e1 = eps.pop().unwrap();
                    let e0 = eps.pop().unwrap();
                    let responder = std::thread::spawn(move || loop {
                        let p = e1.recv(0);
                        if p.header.tag == 0xDEAD {
                            return;
                        }
                        e1.send(0, 0, 1, vec![0]);
                    });
                    let payload = vec![7u64; payload_words];
                    let t0 = std::time::Instant::now();
                    for _ in 0..iters {
                        e0.send(1, 0, 0, payload.clone());
                        let _ = e0.recv(0);
                    }
                    let dt = t0.elapsed();
                    e0.send(1, 0, 0xDEAD, vec![]);
                    responder.join().unwrap();
                    dt
                })
            },
        );
    }

    g.bench_function("send_only_1word", |b| {
        let eps = UdnFabric::new(2);
        b.iter(|| {
            eps[0].send(1, 1, 0, vec![42]);
            eps[1].try_recv(1)
        });
    });
    g.finish();
}

criterion_group!(benches, bench_udn);
criterion_main!(benches);
