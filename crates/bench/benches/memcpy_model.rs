//! Criterion: throughput of the cache-classification copy model itself
//! (the simulator must be fast enough to sweep 64 MB copies).

use cachesim::homing::Homing;
use cachesim::memsys::{MemRef, MemorySystem};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use tile_arch::device::Device;

fn bench_model(c: &mut Criterion) {
    let mut g = c.benchmark_group("cachesim_classify");
    g.sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_secs(1));
    for size in [64u64 << 10, 1 << 20, 16 << 20] {
        g.throughput(Throughput::Bytes(size));
        g.bench_with_input(BenchmarkId::new("classify_copy", size), &size, |b, &size| {
            let mut sys = MemorySystem::new(Device::tile_gx8036(), 36);
            let dst = MemRef::new(0x9000_0000, Homing::HashForHome);
            let src = MemRef::new(0x1000_0000, Homing::Local(0));
            b.iter(|| sys.classify(0, dst, src, size));
        });
    }
    g.finish();
}

criterion_group!(benches, bench_model);
criterion_main!(benches);
