//! Criterion: native collective operations (Figures 9–12's workloads on
//! real threads).

use bench::bench_config;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use tshmem::prelude::*;
use tshmem::types::ReduceOp;

fn run_collective(
    npes: usize,
    algos: Algorithms,
    iters: u64,
    op: impl Fn(&ShmemCtx, &Sym<u32>, &Sym<u32>, usize) + Send + Sync,
    nelems: usize,
) -> std::time::Duration {
    let cfg = bench_config(npes).with_algos(algos);
    let out = tshmem::launch(&cfg, |ctx| {
        let src = ctx.shmalloc::<u32>(nelems);
        let dst = ctx.shmalloc::<u32>(nelems * ctx.n_pes());
        ctx.local_fill(&src, ctx.my_pe() as u32);
        ctx.barrier_all();
        let t0 = ctx.time_ns();
        for _ in 0..iters {
            op(ctx, &dst, &src, nelems);
        }
        ctx.time_ns() - t0
    });
    std::time::Duration::from_nanos(out[0] as u64)
}

fn bench_collectives(c: &mut Criterion) {
    let mut g = c.benchmark_group("native_collectives");
    g.sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_secs(1));
    let nelems = 16 << 10; // 64 kB per PE
    let npes = 8;
    g.throughput(Throughput::Bytes((nelems * 4) as u64));

    for (name, algo) in [
        ("broadcast_pull", BroadcastAlgo::Pull),
        ("broadcast_push", BroadcastAlgo::Push),
        ("broadcast_binomial", BroadcastAlgo::Binomial),
    ] {
        g.bench_with_input(BenchmarkId::new(name, npes), &npes, |b, &npes| {
            b.iter_custom(|iters| {
                run_collective(
                    npes,
                    Algorithms {
                        broadcast: algo,
                        ..Default::default()
                    },
                    iters,
                    |ctx, dst, src, n| ctx.broadcast(dst, src, n, 0, ctx.world()),
                    nelems,
                )
            });
        });
    }

    for (name, algo) in [
        ("reduce_naive", ReduceAlgo::Naive),
        ("reduce_recursive_doubling", ReduceAlgo::RecursiveDoubling),
    ] {
        g.bench_with_input(BenchmarkId::new(name, npes), &npes, |b, &npes| {
            b.iter_custom(|iters| {
                run_collective(
                    npes,
                    Algorithms {
                        reduce: algo,
                        ..Default::default()
                    },
                    iters,
                    |ctx, dst, src, n| ctx.reduce(ReduceOp::Sum, dst, src, n, ctx.world()),
                    nelems,
                )
            });
        });
    }

    g.bench_with_input(BenchmarkId::new("fcollect", npes), &npes, |b, &npes| {
        b.iter_custom(|iters| {
            run_collective(
                npes,
                Algorithms::default(),
                iters,
                |ctx, dst, src, n| ctx.fcollect(dst, src, n, ctx.world()),
                nelems,
            )
        });
    });
    g.finish();
}

criterion_group!(benches, bench_collectives);
criterion_main!(benches);
