//! Criterion: symmetric-heap allocator operations (the `shmalloc`
//! engine room).

use criterion::{criterion_group, criterion_main, Criterion};
use tshmem::heap::Heap;

fn bench_heap(c: &mut Criterion) {
    let mut g = c.benchmark_group("heap");
    g.sample_size(30)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_secs(1));

    g.bench_function("alloc_free_pair", |b| {
        let mut h = Heap::new(16 << 20);
        b.iter(|| {
            let off = h.alloc(4096).unwrap();
            h.free(off).unwrap();
        });
    });

    g.bench_function("alloc_free_fragmented", |b| {
        b.iter_custom(|iters| {
            let mut h = Heap::new(16 << 20);
            // Build fragmentation: 512 live blocks with holes.
            let offs: Vec<_> = (0..1024).map(|_| h.alloc(4096).unwrap()).collect();
            for o in offs.iter().step_by(2) {
                h.free(*o).unwrap();
            }
            let t0 = std::time::Instant::now();
            for i in 0..iters {
                let off = h.alloc(2048 + (i as usize % 1024)).unwrap();
                h.free(off).unwrap();
            }
            t0.elapsed()
        });
    });

    g.bench_function("realloc_grow", |b| {
        b.iter_custom(|iters| {
            let mut h = Heap::new(64 << 20);
            let t0 = std::time::Instant::now();
            for _ in 0..iters {
                let a = h.alloc(1024).unwrap();
                let a2 = h.realloc(a, 8192).unwrap();
                h.free(a2).unwrap();
            }
            t0.elapsed()
        });
    });
    g.finish();
}

criterion_group!(benches, bench_heap);
criterion_main!(benches);
