//! Criterion: native barrier latencies for the three algorithms
//! (the Figure 5 / Figure 8 workload on real threads).

use bench::bench_config;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use tshmem::prelude::*;

fn measure_barrier(npes: usize, algo: BarrierAlgo, iters: u64) -> std::time::Duration {
    let cfg = bench_config(npes).with_algos(Algorithms {
        barrier: algo,
        ..Default::default()
    });
    let out = tshmem::launch(&cfg, |ctx| {
        ctx.barrier_all();
        let t0 = ctx.time_ns();
        for _ in 0..iters {
            ctx.barrier_all();
        }
        ctx.time_ns() - t0
    });
    std::time::Duration::from_nanos(out[0] as u64)
}

fn bench_barriers(c: &mut Criterion) {
    let mut g = c.benchmark_group("native_barrier");
    g.sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_secs(1));
    for npes in [2usize, 4, 8] {
        for (name, algo) in [
            ("ring", BarrierAlgo::Ring),
            ("root_broadcast", BarrierAlgo::RootBroadcast),
            ("tmc_spin", BarrierAlgo::TmcSpin),
        ] {
            g.bench_with_input(
                BenchmarkId::new(name, npes),
                &npes,
                |b, &npes| b.iter_custom(|iters| measure_barrier(npes, algo, iters)),
            );
        }
    }
    g.finish();
}

criterion_group!(benches, bench_barriers);
criterion_main!(benches);
