//! OSU-style SHMEM microbenchmarks on the timed engine — the de-facto
//! standard suite (osu_oshm_put, osu_oshm_get, osu_oshm_put_mr,
//! osu_oshm_barrier) adapted to the simulated Tilera devices, so the
//! library's point-to-point characteristics can be compared against any
//! real OpenSHMEM installation's OSU numbers.
//!
//! ```text
//! cd crates/bench && cargo run --release --bin osu [-- latency|bw|bibw|mr|barrier|all]
//! ```

use tile_arch::device::Device;
use tshmem::prelude::*;

const SIZES: &[usize] = &[8, 64, 512, 4096, 32768, 262144, 1048576];
const ITERS: usize = 16;

fn cfg(device: Device) -> RuntimeConfig {
    RuntimeConfig::for_device(device, 2)
        .with_partition_bytes(8 << 20)
        .with_private_bytes(1 << 14)
}

/// osu_oshm_put-style one-way latency: put + flag, half round trip.
fn latency(device: Device) {
    println!("# osu latency ({}): put one-way, us", device.name);
    println!("bytes\tus");
    let out = tshmem::launch_timed(&cfg(device), |ctx| {
        let me = ctx.my_pe();
        let buf = ctx.shmalloc::<u8>(*SIZES.last().unwrap());
        let flag = ctx.shmalloc::<i64>(1);
        ctx.local_write(&flag, 0, &[0i64]);
        ctx.barrier_all();
        let mut rows = Vec::new();
        let mut seq = 0i64;
        for &size in SIZES {
            let data = vec![7u8; size];
            ctx.barrier_all();
            let t0 = ctx.time_ns();
            for _ in 0..ITERS {
                seq += 1;
                if me == 0 {
                    ctx.put(&buf, 0, &data, 1);
                    ctx.quiet();
                    ctx.p(&flag, 0, seq, 1);
                    ctx.wait_until(&flag, 0, Cmp::Ge, seq); // ack
                } else {
                    ctx.wait_until(&flag, 0, Cmp::Ge, seq);
                    ctx.p(&flag, 0, seq, 0);
                }
            }
            let dt = ctx.time_ns() - t0;
            if me == 0 {
                rows.push((size, dt / ITERS as f64 / 2.0 / 1e3));
            }
        }
        rows
    });
    for (size, us) in &out.values[0] {
        println!("{size}\t{us:.3}");
    }
}

/// osu_oshm_put bw: streaming puts, then quiet.
fn bandwidth(device: Device, bidirectional: bool) {
    let label = if bidirectional { "bi-bw" } else { "bw" };
    println!("# osu {label} ({}): streaming put, MB/s", device.name);
    println!("bytes\tMB/s");
    let out = tshmem::launch_timed(&cfg(device), move |ctx| {
        let me = ctx.my_pe();
        let buf = ctx.shmalloc::<u8>(*SIZES.last().unwrap());
        let src = ctx.shmalloc::<u8>(*SIZES.last().unwrap());
        let mut rows = Vec::new();
        for &size in SIZES {
            ctx.barrier_all();
            let t0 = ctx.time_ns();
            if me == 0 || bidirectional {
                let peer = 1 - me;
                for _ in 0..ITERS {
                    ctx.put_sym(&buf, 0, &src, 0, size, peer);
                }
                ctx.quiet();
            }
            ctx.barrier_all();
            let dt = ctx.time_ns() - t0;
            if me == 0 {
                let dirs = if bidirectional { 2.0 } else { 1.0 };
                rows.push((size, dirs * (ITERS * size) as f64 / dt * 1000.0));
            }
        }
        rows
    });
    for (size, mbps) in &out.values[0] {
        println!("{size}\t{mbps:.1}");
    }
}

/// osu_oshm_put_mr: 8-byte message rate.
fn message_rate(device: Device) {
    println!("# osu message rate ({}): 8-byte puts", device.name);
    let out = tshmem::launch_timed(&cfg(device), |ctx| {
        let buf = ctx.shmalloc::<u64>(4096);
        ctx.barrier_all();
        let n = 4096;
        let t0 = ctx.time_ns();
        if ctx.my_pe() == 0 {
            for i in 0..n {
                ctx.p(&buf, i % 4096, i as u64, 1);
            }
            ctx.quiet();
        }
        ctx.barrier_all();
        n as f64 / ((ctx.time_ns() - t0) / 1e9) / 1e6
    });
    println!("{:.3} million messages/s", out.values[0]);
}

/// osu_oshm_barrier: barrier latency at several PE counts.
fn barrier(device: Device) {
    println!("# osu barrier ({}): us per barrier", device.name);
    println!("pes\tus");
    for npes in [2usize, 4, 8, 16, 32] {
        if npes > device.grid.tiles().min(36) {
            continue;
        }
        let c = RuntimeConfig::for_device(device, npes)
            .with_partition_bytes(1 << 20)
            .with_private_bytes(1 << 14);
        let out = tshmem::launch_timed(&c, |ctx| {
            ctx.barrier_all();
            let t0 = ctx.time_ns();
            for _ in 0..ITERS {
                ctx.barrier_all();
            }
            (ctx.time_ns() - t0) / ITERS as f64 / 1e3
        });
        println!("{npes}\t{:.3}", out.values[0]);
    }
}

fn main() {
    let which = std::env::args().nth(1).unwrap_or_else(|| "all".into());
    for device in [Device::tile_gx8036(), Device::tilepro64()] {
        match which.as_str() {
            "latency" => latency(device),
            "bw" => bandwidth(device, false),
            "bibw" => bandwidth(device, true),
            "mr" => message_rate(device),
            "barrier" => barrier(device),
            "all" => {
                latency(device);
                bandwidth(device, false);
                bandwidth(device, true);
                message_rate(device);
                barrier(device);
            }
            other => {
                eprintln!("unknown benchmark {other}; use latency|bw|bibw|mr|barrier|all");
                std::process::exit(2);
            }
        }
        println!();
    }
}
