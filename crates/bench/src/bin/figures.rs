//! Regenerate the TSHMEM paper's tables and figures.
//!
//! ```text
//! figures [--quick] [--full] [--out DIR] [ids...]
//! ```
//!
//! With no ids, every artifact is produced: `table1 table2 table3 fig3
//! fig4 fig5 fig6 fig7 fig8 fig9 fig10 fig11 fig12 fig13 fig14
//! ablations`. Output is TSV on stdout; `--out DIR` additionally writes
//! one `<id>.tsv` per artifact. `--quick` shrinks sweeps for smoke
//! runs; `--full` uses the paper's exact scales everywhere (22,000 CBIR
//! images).

use std::io::Write;

use microbench::{ablation, appmodel, barrier, collectives, memcpy, putget, series::Figure, tables, udnlat};
use tile_arch::device::Device;

struct Opts {
    quick: bool,
    full: bool,
    out: Option<String>,
    ids: Vec<String>,
}

fn parse_args() -> Opts {
    let mut opts = Opts {
        quick: false,
        full: false,
        out: None,
        ids: Vec::new(),
    };
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--quick" => opts.quick = true,
            "--full" => opts.full = true,
            "--out" => opts.out = args.next(),
            "--help" | "-h" => {
                eprintln!("usage: figures [--quick] [--full] [--out DIR] [ids...]");
                std::process::exit(0);
            }
            id => opts.ids.push(id.to_string()),
        }
    }
    if opts.ids.is_empty() {
        opts.ids = [
            "table1", "table2", "table3", "fig3", "fig4", "fig5", "fig6", "fig7", "fig8", "fig9",
            "fig10", "fig11", "fig12", "fig13", "fig14", "ablations",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
    }
    opts
}

fn emit_text(opts: &Opts, id: &str, text: &str) {
    println!("{text}");
    if let Some(dir) = &opts.out {
        std::fs::create_dir_all(dir).expect("create output dir");
        let mut f = std::fs::File::create(format!("{dir}/{id}.tsv")).expect("create file");
        f.write_all(text.as_bytes()).expect("write file");
    }
}

fn emit(opts: &Opts, fig: &Figure) {
    emit_text(opts, &fig.id, &fig.to_tsv());
}

fn main() {
    let opts = parse_args();
    let gx = Device::tile_gx8036();

    // Sweep scales.
    let memcpy_max: u64 = if opts.quick { 4 << 20 } else { 64 << 20 };
    let putget_max: usize = if opts.quick { 1 << 20 } else { 4 << 20 };
    let coll_sizes: Vec<usize> = if opts.quick {
        vec![16 << 10, 256 << 10]
    } else {
        collectives::default_sizes()
    };
    let coll_tiles = if opts.quick { 16 } else { 36 };
    let fft_n = if opts.quick { 256 } else { 1024 };
    let cbir_images = if opts.full {
        22_000
    } else if opts.quick {
        220
    } else {
        2_200
    };
    let app_pes = if opts.quick { 16 } else { 32 };

    for id in &opts.ids {
        eprintln!("[figures] generating {id} ...");
        match id.as_str() {
            "table1" => {
                let mut t = String::from("# Table I: basic OpenSHMEM subset coverage\ncategory\tfunction\trust path\n");
                for (c, f, p) in tables::table1() {
                    t.push_str(&format!("{c}\t{f}\t{p}\n"));
                }
                emit_text(&opts, "table1", &t);
            }
            "table2" => emit_text(&opts, "table2", &tables::table2()),
            "table3" => emit_text(&opts, "table3", &udnlat::table3_text()),
            "fig3" => {
                let mut fig = memcpy::fig3_device(&gx, memcpy_max);
                fig.series
                    .extend(memcpy::fig3_device(&Device::tilepro64(), memcpy_max).series);
                emit(&opts, &fig);
            }
            "fig4" => {
                emit(&opts, &udnlat::fig4());
                emit(&opts, &udnlat::effective_throughput());
            }
            "fig5" => emit(&opts, &barrier::fig5()),
            "fig6" => emit(&opts, &putget::fig6(putget_max)),
            "fig7" => emit(&opts, &putget::fig7(putget_max)),
            "fig8" => emit(&opts, &barrier::fig8()),
            "fig9" => emit(&opts, &collectives::fig9(coll_sizes.clone(), coll_tiles)),
            "fig10" => emit(&opts, &collectives::fig10(coll_sizes.clone(), coll_tiles)),
            "fig11" => emit(&opts, &collectives::fig11(coll_sizes.clone(), coll_tiles)),
            "fig12" => emit(&opts, &collectives::fig12(coll_sizes.clone(), coll_tiles)),
            "fig13" => emit(&opts, &appmodel::fig13(fft_n, app_pes)),
            "fig14" => emit(&opts, &appmodel::fig14(cbir_images, app_pes)),
            "ablations" => {
                let tiles = if opts.quick {
                    vec![4usize, 16]
                } else {
                    vec![4usize, 8, 16, 24, 32, 36]
                };
                emit(&opts, &ablation::ablation_barrier(gx, coll_tiles));
                emit(&opts, &ablation::ablation_broadcast(gx, 256 << 10, &tiles));
                emit(&opts, &ablation::ablation_reduce(gx, 256 << 10, &tiles));
                emit(
                    &opts,
                    &ablation::ablation_homing(gx, 256 << 10, &[1, 2, 4, 8, 16, 24, 32, 35]),
                );
                emit(&opts, &ablation::ablation_multichip(16, 256 << 10));
            }
            other => eprintln!("[figures] unknown id {other}, skipping"),
        }
    }
    eprintln!("[figures] done");
}
