//! Shared helpers for the benchmark harness.

use tshmem::prelude::*;

/// A benchmark-friendly runtime config: modest partitions, Gx model.
pub fn bench_config(npes: usize) -> RuntimeConfig {
    RuntimeConfig::new(npes)
        .with_partition_bytes(8 << 20)
        .with_private_bytes(1 << 20)
        .with_temp_bytes(64 << 10)
}

/// Run `per_pe_ns = f(ctx, iters)` on a fresh native launch and return
/// PE 0's measured nanoseconds for `iters` repetitions of the measured
/// region. Criterion's `iter_custom` drives this so thread-spawn costs
/// stay out of the measurement.
pub fn measure_native<F>(npes: usize, iters: u64, f: F) -> std::time::Duration
where
    F: Fn(&ShmemCtx, u64) -> f64 + Send + Sync,
{
    let out = tshmem::launch(&bench_config(npes), |ctx| f(ctx, iters));
    std::time::Duration::from_nanos(out[0] as u64)
}
