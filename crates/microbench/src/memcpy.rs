//! Figure 3: effective bandwidth of shared-memory copy operations.
//!
//! Reproduces the TMC common-memory microbenchmark: repeated `memcpy`
//! between private heap memory and shared segments, swept from 8 B to
//! 64 MB. The three bandwidth transitions — at the L1d size, the L2
//! size, and the effective DDC capacity — emerge from the simulated tag
//! arrays (`cachesim`); plateau heights come from the calibrated
//! per-level throughputs.

use cachesim::homing::Homing;
use cachesim::memsys::{MemRef, MemorySystem};
use tile_arch::clock::bandwidth_mbps;
use tile_arch::device::Device;

use crate::series::{Figure, Series};

/// Copy directions measured in the paper's Figure 3.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CopyKind {
    PrivateToShared,
    SharedToPrivate,
    SharedToShared,
}

impl CopyKind {
    pub const ALL: [CopyKind; 3] = [
        CopyKind::PrivateToShared,
        CopyKind::SharedToPrivate,
        CopyKind::SharedToShared,
    ];

    pub fn label(self) -> &'static str {
        match self {
            CopyKind::PrivateToShared => "private-to-shared",
            CopyKind::SharedToPrivate => "shared-to-private",
            CopyKind::SharedToShared => "shared-to-shared",
        }
    }
}

const PRIV: u64 = 0x1000_0000;
const SHARED_A: u64 = 0x9000_0000;
const SHARED_B: u64 = 0xD000_0000;

/// Effective bandwidth (MB/s) of a warm repeated copy of `size` bytes.
pub fn copy_bandwidth(device: &Device, kind: CopyKind, size: u64) -> f64 {
    let mut sys = MemorySystem::new(*device, device.grid.tiles().min(36));
    let (dst, src) = match kind {
        CopyKind::PrivateToShared => (
            MemRef::new(SHARED_A, Homing::HashForHome),
            MemRef::new(PRIV, Homing::Local(0)),
        ),
        CopyKind::SharedToPrivate => (
            MemRef::new(PRIV, Homing::Local(0)),
            MemRef::new(SHARED_A, Homing::HashForHome),
        ),
        CopyKind::SharedToShared => (
            MemRef::new(SHARED_B, Homing::HashForHome),
            MemRef::new(SHARED_A, Homing::HashForHome),
        ),
    };
    // Warm-up sweep, then the measured sweep (the benchmark loop).
    let _ = sys.classify(0, dst, src, size);
    let lv = sys.classify(0, dst, src, size);
    let ps = sys.cost_model().ps(&lv);
    bandwidth_mbps(size, ps)
}

/// Sweep sizes: powers of two from 8 B to `max` bytes.
pub fn size_sweep(max: u64) -> Vec<u64> {
    let mut v = Vec::new();
    let mut s = 8u64;
    while s <= max {
        v.push(s);
        s *= 2;
    }
    v
}

/// Figure 3 for one device (`max_bytes` lets tests shrink the sweep;
/// the paper goes to 64 MB).
pub fn fig3_device(device: &Device, max_bytes: u64) -> Figure {
    let mut fig = Figure::new(
        "fig3",
        format!("Effective shared-memory copy bandwidth ({})", device.name),
        "bytes",
        "MB/s",
    );
    for kind in CopyKind::ALL {
        let mut s = Series::new(format!("{} {}", device.name, kind.label()));
        for size in size_sweep(max_bytes) {
            s.push(size as f64, copy_bandwidth(device, kind, size));
        }
        fig.series.push(s);
    }
    fig
}

/// The full Figure 3: both devices, 8 B – 64 MB.
pub fn fig3() -> Figure {
    let mut fig = Figure::new(
        "fig3",
        "Effective bandwidth for shared-memory copy operations",
        "bytes",
        "MB/s",
    );
    for device in [Device::tile_gx8036(), Device::tilepro64()] {
        fig.series
            .extend(fig3_device(&device, 64 * 1024 * 1024).series);
    }
    fig
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_is_powers_of_two() {
        let s = size_sweep(1024);
        assert_eq!(s.first(), Some(&8));
        assert_eq!(s.last(), Some(&1024));
        assert_eq!(s.len(), 8);
    }

    #[test]
    fn gx_plateaus_match_paper() {
        let gx = Device::tile_gx8036();
        // L1d plateau ~3100 MB/s at 8 kB.
        let bw = copy_bandwidth(&gx, CopyKind::PrivateToShared, 8 * 1024);
        assert!((2900.0..3300.0).contains(&bw), "L1d {bw}");
        // L2 plateau 1900-2700 MB/s at 128 kB.
        let bw = copy_bandwidth(&gx, CopyKind::PrivateToShared, 128 * 1024);
        assert!((1900.0..2700.0).contains(&bw), "L2 {bw}");
        // Memory-to-memory convergence ~320 MB/s at 32 MB.
        let bw = copy_bandwidth(&gx, CopyKind::PrivateToShared, 32 * 1024 * 1024);
        assert!((300.0..360.0).contains(&bw), "converged {bw}");
    }

    #[test]
    fn pro_stable_through_caches_then_degrades() {
        let pro = Device::tilepro64();
        let small = copy_bandwidth(&pro, CopyKind::PrivateToShared, 4 * 1024);
        assert!((450.0..550.0).contains(&small), "cache plateau {small}");
        let big = copy_bandwidth(&pro, CopyKind::PrivateToShared, 16 * 1024 * 1024);
        assert!((350.0..420.0).contains(&big), "mem-mem {big}");
    }

    #[test]
    fn crossover_pro_beats_gx_at_memory_scale() {
        // Paper: memory-to-memory on the Pro64 is *faster* than Gx36,
        // while Gx dominates below ~2 MB.
        let gx = Device::tile_gx8036();
        let pro = Device::tilepro64();
        let size = 64 * 1024 * 1024;
        let g = copy_bandwidth(&gx, CopyKind::PrivateToShared, size);
        let p = copy_bandwidth(&pro, CopyKind::PrivateToShared, size);
        assert!(p > g, "pro {p} must beat gx {g} at memory scale");
        let small = 256 * 1024;
        let g2 = copy_bandwidth(&gx, CopyKind::PrivateToShared, small);
        let p2 = copy_bandwidth(&pro, CopyKind::PrivateToShared, small);
        assert!(g2 > 2.0 * p2, "gx {g2} must dominate pro {p2} under 2 MB");
    }

    #[test]
    fn fig3_has_six_series() {
        let fig = fig3_device(&Device::tile_gx8036(), 64 * 1024);
        assert_eq!(fig.series.len(), 3);
        for s in &fig.series {
            assert!(!s.points.is_empty());
        }
    }
}
