//! `microbench` binary — the hermetic perf gate.
//!
//! `cargo run -p microbench --release -- --native-suite` runs put/get
//! bandwidth, barrier latency, and reduce latency on the **native**
//! engine (real threads, wall clock — unlike the library's figure
//! generators, which model the Tilera under virtual time) and writes
//! `BENCH_native.json`: one entry per benchmark with `ns_per_op` and
//! `bytes_per_sec`, plus the traced/untraced ablation ratio for the
//! putget workload.
//!
//! The put/get bandwidth benchmarks go through the strided entry
//! points (`iput`/`iget`) at unit stride, so both the contiguous copy
//! and the strided fast path sit on the measured path; `putget_*` is
//! the combined put+get workload the tracing ablation compares.
//!
//! `--coop-suite` is the scaling companion: a locality ablation at
//! 64/256/1024 PEs on the cooperative M:N engine, written to
//! `BENCH_coop.json`. Each scale runs twice — once with the co-resident
//! fast paths disabled (`fault::set_coop_locality(false)`), measuring
//! flat dissemination plus the span-32 hierarchical barrier and reduce
//! (the committed pre-locality trajectory's geometry), and once with
//! locality on (the default), measuring the shard-aligned
//! `barrier_hier_local` / `reduce_hier_local` rows where cluster
//! boundaries coincide with the PE→worker shards and every intra-cluster
//! edge is a same-worker direct copy. `hier_over_flat` < 1 shows the
//! hierarchy crossover the algorithms were built for; `local_speedup`
//! > 1 shows the same-worker fast paths beating the channel path.
//!
//! Numbers are wall-clock on whatever machine runs the gate (CI boxes
//! are often single-core, so collective latencies are context-switch
//! bound); the gate schema-checks the output and *reports* thresholds
//! rather than enforcing them. `--quick` divides iteration counts for
//! smoke use; `--pes N` and `--out PATH` override the defaults.

use std::time::{Duration, Instant};

use tshmem::runtime::launch_coop;
use tshmem::{launch, ActiveSet, JobSpec, ReduceOp, RuntimeConfig, Server, ServerConfig, ShmemCtx};
use tshmem_apps::fft::{fft2d_shmem, Fft2dConfig, TransposeMode};

struct Args {
    native_suite: bool,
    coop_suite: bool,
    nbi_suite: bool,
    server_suite: bool,
    timed_suite: bool,
    pes: usize,
    out: Option<String>,
    quick: bool,
    workers: usize,
}

fn parse_args() -> Args {
    let mut args = Args {
        native_suite: false,
        coop_suite: false,
        nbi_suite: false,
        server_suite: false,
        timed_suite: false,
        pes: 8,
        out: None,
        quick: false,
        workers: 0,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut val = || {
            it.next().unwrap_or_else(|| {
                eprintln!("missing value after {flag}");
                std::process::exit(2)
            })
        };
        match flag.as_str() {
            "--native-suite" => args.native_suite = true,
            "--coop-suite" => args.coop_suite = true,
            "--nbi-suite" => args.nbi_suite = true,
            "--server-suite" => args.server_suite = true,
            "--timed-suite" => args.timed_suite = true,
            "--pes" => {
                args.pes = val().parse().unwrap_or_else(|_| {
                    eprintln!("--pes wants a number");
                    std::process::exit(2)
                })
            }
            "--workers" => {
                args.workers = val().parse().unwrap_or_else(|_| {
                    eprintln!("--workers wants a number");
                    std::process::exit(2)
                })
            }
            "--out" => args.out = Some(val()),
            "--quick" => args.quick = true,
            "--help" | "-h" => {
                println!(
                    "usage: microbench --native-suite|--coop-suite|--nbi-suite|--server-suite\
                     |--timed-suite [--pes N] [--workers M] [--out PATH] [--quick]\n\
                     --native-suite runs the native-engine perf suite (put/get \n\
                     bandwidth, barrier latency, reduce latency, traced-vs-untraced \n\
                     putget ablation) and writes PATH (default BENCH_native.json).\n\
                     --coop-suite runs the M:N scaling suite as a locality ablation: \n\
                     flat dissemination, span-32 hierarchical barrier/reduce (co-resident \n\
                     fast paths off), and shard-aligned *_local rows (locality on) at \n\
                     64/256/1024 PEs on the coop engine (--workers 0 = auto, the \n\
                     resolved pool size is recorded) and writes PATH (default \n\
                     BENCH_coop.json).\n\
                     --nbi-suite runs the nbi overlap ablation: blocking vs \n\
                     nbi-overlapped redirected put trains and the end-to-end 2D-FFT \n\
                     transpose in both modes on the native engine, written to PATH \n\
                     (default BENCH_nbi.json).\n\
                     --server-suite runs the multi-tenant server pool throughput \n\
                     suite: a fixed fault-free 2-PE SHMEM job streamed open-loop \n\
                     through each scheduler (round_robin, fair), reporting jobs/sec \n\
                     and p50/p99 submit-to-resolve latency, written to PATH \n\
                     (default BENCH_server.json).\n\
                     --timed-suite runs the timed-engine event-core suite: raw \n\
                     calendar-queue vs reference-heap events/sec at 256/1024 \n\
                     self-rescheduling chains, and 64/256/1024-PE timed barriers \n\
                     under both the event-driven and cycle-box disciplines, \n\
                     written to PATH (default BENCH_timed.json)."
                );
                std::process::exit(0);
            }
            other => {
                eprintln!("unknown flag: {other} (try --help)");
                std::process::exit(2);
            }
        }
    }
    args
}

/// One measured benchmark: mean wall-clock ns per operation on the
/// slowest PE, and the per-op payload (0 for latency-only benchmarks).
struct Bench {
    name: &'static str,
    ns_per_op: f64,
    bytes_per_op: usize,
}

impl Bench {
    fn bytes_per_sec(&self) -> f64 {
        if self.bytes_per_op == 0 || self.ns_per_op <= 0.0 {
            0.0
        } else {
            self.bytes_per_op as f64 * 1e9 / self.ns_per_op
        }
    }
}

/// Measurement repetitions per benchmark; each PE keeps its **fastest**
/// repetition. On an oversubscribed box (CI is often one core for eight
/// PEs) a repetition window can be shorter than a scheduler quantum, so
/// any single window may absorb a multi-millisecond deschedule; the
/// minimum over several windows discards those outliers and converges
/// on the real cost.
const REPS: usize = 5;

/// Time `iters` runs of `op`, [`REPS`] times, between barriers; every
/// PE reports its fastest repetition and the job-level number is the
/// slowest PE's (the PE that bounds throughput).
fn timed_loop(ctx: &ShmemCtx, iters: usize, mut op: impl FnMut()) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..REPS {
        for _ in 0..(iters / 10).max(1) {
            op(); // warmup
        }
        ctx.barrier_all();
        let t0 = Instant::now();
        for _ in 0..iters {
            op();
        }
        let per_op = t0.elapsed().as_nanos() as f64 / iters as f64;
        ctx.barrier_all();
        best = best.min(per_op);
    }
    best
}

fn slowest(per_pe: Vec<f64>) -> f64 {
    per_pe.into_iter().fold(0.0, f64::max)
}

/// Every PE iputs `nelems` u64 at unit stride to its right neighbor's
/// symmetric heap.
fn bench_put(npes: usize, nelems: usize, iters: usize, traced: bool) -> f64 {
    let mut cfg = RuntimeConfig::new(npes);
    if traced {
        cfg = cfg.with_trace();
    }
    slowest(launch(&cfg, |ctx| {
        let dst = ctx.shmalloc::<u64>(nelems);
        let src: Vec<u64> = (0..nelems as u64).collect();
        let to = (ctx.my_pe() + 1) % ctx.n_pes();
        let ns = timed_loop(ctx, iters, || ctx.iput(&dst, 0, 1, &src, 1, nelems, to));
        ctx.shfree(dst);
        ns
    }))
}

/// Every PE igets `nelems` u64 at unit stride from its right neighbor.
fn bench_get(npes: usize, nelems: usize, iters: usize) -> f64 {
    slowest(launch(&RuntimeConfig::new(npes), |ctx| {
        let src = ctx.shmalloc::<u64>(nelems);
        let mut dst = vec![0u64; nelems];
        let from = (ctx.my_pe() + 1) % ctx.n_pes();
        let ns = timed_loop(ctx, iters, || ctx.iget(&mut dst, 1, &src, 0, 1, nelems, from));
        ctx.shfree(src);
        ns
    }))
}

/// Combined put+get round per op — the workload the tracing ablation
/// compares traced vs. untraced.
fn bench_putget(npes: usize, nelems: usize, iters: usize, traced: bool) -> f64 {
    let mut cfg = RuntimeConfig::new(npes);
    if traced {
        cfg = cfg.with_trace();
    }
    slowest(launch(&cfg, |ctx| {
        let sym = ctx.shmalloc::<u64>(nelems);
        let src: Vec<u64> = (0..nelems as u64).collect();
        let mut dst = vec![0u64; nelems];
        let peer = (ctx.my_pe() + 1) % ctx.n_pes();
        let ns = timed_loop(ctx, iters, || {
            ctx.iput(&sym, 0, 1, &src, 1, nelems, peer);
            ctx.iget(&mut dst, 1, &sym, 0, 1, nelems, peer);
        });
        ctx.shfree(sym);
        ns
    }))
}

/// `barrier_all` latency with the default (Ring) algorithm.
fn bench_barrier(npes: usize, iters: usize) -> f64 {
    slowest(launch(&RuntimeConfig::new(npes), |ctx| {
        timed_loop(ctx, iters, || ctx.barrier_all())
    }))
}

/// `sum_to_all` latency over `nreduce` u64 across all PEs (internally
/// barriered on entry and exit, so back-to-back calls are safe).
fn bench_reduce(npes: usize, nreduce: usize, iters: usize) -> f64 {
    slowest(launch(&RuntimeConfig::new(npes), |ctx| {
        let dest = ctx.shmalloc::<u64>(nreduce);
        let source = ctx.shmalloc::<u64>(nreduce);
        let all = ActiveSet::new(0, 0, ctx.n_pes());
        let ns = timed_loop(ctx, iters, || ctx.sum_to_all(&dest, &source, nreduce, all));
        ctx.shfree(source);
        ctx.shfree(dest);
        ns
    }))
}

/// [`timed_loop`] variant for the coop scaling suite: the measured op
/// is itself a world barrier, so repetitions self-align without extra
/// `barrier_all` fencing (which past 64 PEs would silently route
/// through the hierarchical path and pollute the flat measurement).
/// `reps`/`iters` are caller-chosen — at 1024 PEs on a one-core box a
/// single barrier costs tens of milliseconds, so the big scales run a
/// handful of iterations, not thousands.
fn coop_timed(iters: usize, reps: usize, mut op: impl FnMut()) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        op(); // warmup + alignment (op is a collective)
        let t0 = Instant::now();
        for _ in 0..iters {
            op();
        }
        best = best.min(t0.elapsed().as_nanos() as f64 / iters as f64);
    }
    best
}

/// u64 elements per hierarchical-reduce op — small on purpose: the
/// suite measures tree latency, not copy bandwidth.
const COOP_REDUCE_N: usize = 8;

/// One locality arm of the coop scaling suite at `npes` PEs: the
/// hierarchical world barrier and the hierarchical sum-reduce (plus
/// flat dissemination when `with_flat`), slowest-PE ns/op. Each call is
/// one `launch_coop`; the locality knob is process-global, so the
/// caller toggles it only *between* launches.
fn bench_coop_arms(
    npes: usize,
    workers: usize,
    iters: usize,
    reps: usize,
    with_flat: bool,
) -> (f64, f64, f64) {
    let cfg = RuntimeConfig::for_scale(npes);
    let per_pe = launch_coop(&cfg, workers, move |ctx| {
        let world = ActiveSet::new(0, 0, ctx.n_pes());
        let flat = if with_flat {
            coop_timed(iters, reps, || ctx.barrier_dissemination_explicit(world))
        } else {
            0.0
        };
        let hier = coop_timed(iters, reps, || ctx.barrier_hier_explicit(world));
        let dest = ctx.shmalloc::<u64>(COOP_REDUCE_N);
        let source = ctx.shmalloc::<u64>(COOP_REDUCE_N);
        let rank = ctx.my_pe(); // world set: rank == PE number
        let reduce = coop_timed(iters, reps, || {
            ctx.reduce_hier(ReduceOp::Sum, &dest, &source, COOP_REDUCE_N, world, rank)
        });
        ctx.shfree(source);
        ctx.shfree(dest);
        (flat, hier, reduce)
    });
    (
        per_pe.iter().map(|p| p.0).fold(0.0, f64::max),
        per_pe.iter().map(|p| p.1).fold(0.0, f64::max),
        per_pe.iter().map(|p| p.2).fold(0.0, f64::max),
    )
}

/// The M:N scaling suite, run as a locality ablation at 64, 256, and
/// 1024 PEs multiplexed over `--workers` OS threads (0 = auto; the
/// *resolved* pool size is recorded per entry). Per scale: one launch
/// with the co-resident fast paths off (flat dissemination + span-32
/// hierarchical barrier/reduce — the committed baseline's geometry),
/// one with locality on (shard-aligned `*_local` rows).
/// `hier_over_flat` < 1.0 means the hierarchical barrier beat flat
/// dissemination; `local_speedup` > 1.0 means the shard-aligned
/// locality path beat the span-32 channel path.
fn run_coop_suite(args: &Args) {
    let out = args.out.clone().unwrap_or_else(|| "BENCH_coop.json".to_string());
    // (npes, iters, reps): message count per flat barrier grows as
    // n·ceil(log2 n), so iteration budgets shrink with scale.
    let scales: &[(usize, usize, usize)] = if args.quick {
        &[(64, 4, 2), (256, 2, 2), (1024, 1, 2)]
    } else {
        &[(64, 10, 4), (256, 4, 3), (1024, 3, 3)]
    };
    let max_pes = scales.iter().map(|s| s.0).max().unwrap();
    let resolved = tshmem::resolve_coop_workers(args.workers, max_pes);
    eprintln!(
        "coop suite: workers {} (resolved {resolved}){}",
        args.workers,
        if args.quick { " (quick)" } else { "" }
    );
    let mut entries = String::new();
    for (i, &(npes, iters, reps)) in scales.iter().enumerate() {
        // Locality off first: with no topology hint the hierarchical
        // collectives fall back to span-32 clusters, which is what the
        // committed pre-locality trajectory measured.
        tshmem::fault::set_coop_locality(false);
        let (flat, hier, reduce) = bench_coop_arms(npes, args.workers, iters, reps, true);
        // Restore the default before the locality arm (and leave it on).
        tshmem::fault::set_coop_locality(true);
        let (_, hier_local, reduce_local) =
            bench_coop_arms(npes, args.workers, iters, reps, false);
        let m = tshmem::resolve_coop_workers(args.workers, npes);
        let ratio = hier / flat;
        let speedup = hier / hier_local;
        eprintln!(
            "  {npes:>5} PEs ({m} workers)  flat {flat:>13.1}  hier {hier:>13.1}  \
             hier_local {hier_local:>13.1} ns/op  local speedup {speedup:.2}x"
        );
        eprintln!(
            "  {:>5}      reduce {reduce:>13.1}  reduce_local {reduce_local:>13.1} ns/op  \
             ({:.2}x)",
            "", reduce / reduce_local
        );
        entries.push_str(&format!(
            "    {{\"npes\": {npes}, \"workers\": {m}, \"benchmarks\": {{\
             \"barrier_flat_dissemination\": {{\"ns_per_op\": {flat:.1}}}, \
             \"barrier_hier\": {{\"ns_per_op\": {hier:.1}}}, \
             \"barrier_hier_local\": {{\"ns_per_op\": {hier_local:.1}}}, \
             \"reduce_hier\": {{\"ns_per_op\": {reduce:.1}}}, \
             \"reduce_hier_local\": {{\"ns_per_op\": {reduce_local:.1}}}}}, \
             \"hier_over_flat\": {ratio:.4}, \
             \"local_speedup\": {speedup:.4}}}{}\n",
            if i + 1 < scales.len() { "," } else { "" }
        ));
    }
    let json = format!(
        "{{\n  \"suite\": \"coop\",\n  \"workers_requested\": {},\n  \"workers\": {},\n  \
         \"quick\": {},\n  \"entries\": [\n{}  ]\n}}\n",
        args.workers, resolved, args.quick, entries
    );
    std::fs::write(&out, json).unwrap_or_else(|e| {
        eprintln!("cannot write {out}: {e}");
        std::process::exit(1);
    });
    println!("wrote {out}");
}

/// A train of `count` redirected puts (static-segment target, `elems`
/// u64 each) to the right neighbor, completed once per iteration. The
/// blocking arm pays a service round-trip per put; the nbi arm sends
/// every request up front and drains the completion replies at one
/// `quiet` — the pipelining `shmem_put_nbi` exists for.
fn bench_static_put_train(npes: usize, count: usize, elems: usize, iters: usize, nbi: bool) -> f64 {
    let cfg = RuntimeConfig::new(npes)
        .with_private_bytes((count * elems * 8 + (1 << 12)).next_power_of_two())
        .with_temp_bytes(1 << 14);
    slowest(launch(&cfg, move |ctx| {
        let dst = ctx.static_sym::<u64>(count * elems);
        let src: Vec<u64> = (0..elems as u64).collect();
        let to = (ctx.my_pe() + 1) % ctx.n_pes();
        timed_loop(ctx, iters, || {
            for i in 0..count {
                if nbi {
                    ctx.put_nbi(&dst, i * elems, &src, to);
                } else {
                    ctx.put(&dst, i * elems, &src, to);
                }
            }
            ctx.quiet();
        })
    }))
}

/// End-to-end 2D-FFT wall time (slowest PE) under one transpose mode.
/// One launch per repetition — the static-segment receive block is
/// bump-allocated and never freed, so repetitions must not share a
/// context — and the reported number is the fastest repetition.
fn bench_fft_transpose(npes: usize, n: usize, mode: TransposeMode, reps: usize) -> f64 {
    let fcfg = Fft2dConfig { n, seed: 0xF11, transpose: mode };
    let full_bytes = n * n * 8;
    let recv_bytes = (n / npes + 1) * n * 8;
    let cfg = RuntimeConfig::new(npes)
        .with_partition_bytes(full_bytes + 4 * recv_bytes + (1 << 20))
        .with_private_bytes((recv_bytes + (1 << 16)).next_power_of_two())
        .with_temp_bytes(1 << 14);
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let vals = launch(&cfg, move |ctx| fft2d_shmem(ctx, &fcfg).elapsed_ns);
        best = best.min(vals.into_iter().fold(0.0, f64::max));
    }
    best
}

/// The nbi overlap ablation: redirected put trains and the 2D-FFT
/// transpose, blocking vs nbi-overlapped, on the native engine. The
/// headline number is `nbi_over_blocking` on the end-to-end FFT —
/// below 1.0 means the overlapped transpose won. The direct
/// (coherent-store) transpose is measured too, as the fast-path
/// context the redirected modes are traded against.
fn run_nbi_suite(args: &Args) {
    let out = args.out.clone().unwrap_or_else(|| "BENCH_nbi.json".to_string());
    let npes = args.pes.clamp(2, 4);
    let (n, reps, train_iters) = if args.quick { (128, 2, 100) } else { (256, 5, 1_000) };
    eprintln!(
        "nbi suite: {npes} PEs, {n}x{n} FFT{}",
        if args.quick { " (quick)" } else { "" }
    );

    let mut benches: Vec<Bench> = Vec::new();
    let mut push = |b: Bench| {
        eprintln!("  {:<24} {:>14.1} ns/op", b.name, b.ns_per_op);
        benches.push(b);
    };

    const TRAIN: usize = 64; // puts per train
    const ELEMS: usize = 64; // u64 per put (512 B)
    let train_blocking = bench_static_put_train(npes, TRAIN, ELEMS, train_iters, false);
    let train_nbi = bench_static_put_train(npes, TRAIN, ELEMS, train_iters, true);
    push(Bench {
        name: "static_put_train_blocking",
        ns_per_op: train_blocking,
        bytes_per_op: TRAIN * ELEMS * 8,
    });
    push(Bench {
        name: "static_put_train_nbi",
        ns_per_op: train_nbi,
        bytes_per_op: TRAIN * ELEMS * 8,
    });

    let fft_blocking = bench_fft_transpose(npes, n, TransposeMode::Blocking, reps);
    let fft_nbi = bench_fft_transpose(npes, n, TransposeMode::Nbi, reps);
    let fft_direct = bench_fft_transpose(npes, n, TransposeMode::Direct, reps);
    push(Bench { name: "fft_transpose_blocking", ns_per_op: fft_blocking, bytes_per_op: 0 });
    push(Bench { name: "fft_transpose_nbi", ns_per_op: fft_nbi, bytes_per_op: 0 });
    push(Bench { name: "fft_transpose_direct", ns_per_op: fft_direct, bytes_per_op: 0 });

    let ratio = fft_nbi / fft_blocking;
    let train_ratio = train_nbi / train_blocking;
    eprintln!("  fft nbi/blocking: {ratio:.3}   train nbi/blocking: {train_ratio:.3}");

    let mut json = String::new();
    json.push_str("{\n");
    json.push_str("  \"suite\": \"nbi\",\n");
    json.push_str(&format!("  \"npes\": {npes},\n"));
    json.push_str(&format!("  \"fft_n\": {n},\n"));
    json.push_str(&format!("  \"quick\": {},\n", args.quick));
    json.push_str(&format!("  \"nbi_over_blocking\": {ratio:.4},\n"));
    json.push_str(&format!("  \"train_nbi_over_blocking\": {train_ratio:.4},\n"));
    json.push_str("  \"benchmarks\": {\n");
    for (i, b) in benches.iter().enumerate() {
        json.push_str(&format!(
            "    \"{}\": {{\"ns_per_op\": {:.1}, \"bytes_per_sec\": {:.1}}}{}\n",
            json_escape_free(b.name),
            b.ns_per_op,
            b.bytes_per_sec(),
            if i + 1 < benches.len() { "," } else { "" }
        ));
    }
    json.push_str("  }\n}\n");
    std::fs::write(&out, json).unwrap_or_else(|e| {
        eprintln!("cannot write {out}: {e}");
        std::process::exit(1);
    });
    println!("wrote {out}");
}

/// One scheduler's measured serve run: `jobs` fixed 2-PE SHMEM jobs
/// (8 put+barrier rounds each) streamed open-loop from 5 tenants.
/// Returns `(jobs_per_sec, p50, p99)` of submit→resolve latency.
fn bench_server(sched: &str, workers: usize, jobs: usize) -> (f64, Duration, Duration) {
    let cfg = ServerConfig {
        workers,
        queue_depth: 64,
        stall: Duration::from_secs(30), // fault-free: the watchdog is a bystander
        ..Default::default()
    };
    let server = match sched {
        "round_robin" => Server::round_robin(cfg),
        "fair" => Server::fair(cfg),
        other => unreachable!("unknown scheduler {other}"),
    };
    let job_cfg = RuntimeConfig::new(2)
        .with_partition_bytes(256 * 1024)
        .with_private_bytes(64 * 1024)
        .with_temp_bytes(16 * 1024);
    let body = |ctx: &ShmemCtx| {
        let n = ctx.n_pes();
        let me = ctx.my_pe();
        let slot = ctx.shmalloc::<u64>(1);
        ctx.local_write(&slot, 0, &[0]);
        ctx.barrier_all();
        for round in 1..=8u64 {
            ctx.p(&slot, 0, round, (me + 1) % n);
            ctx.barrier_all();
        }
        assert_eq!(ctx.local_read(&slot, 0, 1)[0], 8);
    };
    let t0 = Instant::now();
    let mut handles = Vec::with_capacity(jobs);
    for i in 0..jobs {
        let spec = JobSpec::new(job_cfg, body).with_tenant((i % 5) as u32);
        let h = loop {
            match server.submit(spec.clone()) {
                Ok(h) => break h,
                Err(tshmem::SubmitError::QueueFull { retry_after }) => {
                    std::thread::sleep(retry_after.min(Duration::from_millis(10)));
                }
                Err(e) => panic!("server-suite admission error: {e}"),
            }
        };
        handles.push(h);
    }
    let mut latencies: Vec<Duration> = handles
        .into_iter()
        .map(|h| {
            let r = h.wait();
            assert!(r.outcome.is_completed(), "fault-free job must complete: {:?}", r.outcome);
            r.latency
        })
        .collect();
    let wall = t0.elapsed();
    latencies.sort_unstable();
    server.shutdown();
    (
        jobs as f64 / wall.as_secs_f64(),
        latencies[latencies.len() / 2],
        latencies[(latencies.len() * 99) / 100],
    )
}

/// The server pool throughput suite: the same fault-free workload
/// through both shipped schedulers. Absolute jobs/sec is wall-clock on
/// whatever box runs the gate; the committed BENCH_server.json is the
/// reference trajectory and the smoke only schema-checks.
fn run_server_suite(args: &Args) {
    let out = args.out.clone().unwrap_or_else(|| "BENCH_server.json".to_string());
    let jobs = if args.quick { 60 } else { 400 };
    eprintln!(
        "server suite: {jobs} jobs per scheduler, pool workers {}{}",
        args.workers,
        if args.quick { " (quick)" } else { "" }
    );
    let mut entries = String::new();
    let scheds = ["round_robin", "fair"];
    for (i, sched) in scheds.iter().enumerate() {
        let (jps, p50, p99) = bench_server(sched, args.workers, jobs);
        eprintln!(
            "  {sched:<12} {jps:>8.1} jobs/sec  p50 {:>10.1} us  p99 {:>10.1} us",
            p50.as_nanos() as f64 / 1e3,
            p99.as_nanos() as f64 / 1e3,
        );
        entries.push_str(&format!(
            "    {{\"scheduler\": \"{sched}\", \"jobs_per_sec\": {jps:.1}, \
             \"p50_ns\": {}, \"p99_ns\": {}}}{}\n",
            p50.as_nanos(),
            p99.as_nanos(),
            if i + 1 < scheds.len() { "," } else { "" }
        ));
    }
    let json = format!(
        "{{\n  \"suite\": \"server\",\n  \"jobs\": {jobs},\n  \"pool_workers\": {},\n  \
         \"quick\": {},\n  \"entries\": [\n{}  ]\n}}\n",
        args.workers, args.quick, entries
    );
    std::fs::write(&out, json).unwrap_or_else(|e| {
        eprintln!("cannot write {out}: {e}");
        std::process::exit(1);
    });
    println!("wrote {out}");
}

/// Mean chain delay in ps: delays are uniform `1..=2^20` ps, so a chain
/// fires roughly every half microsecond of virtual time.
const CHAIN_MEAN_PS: u64 = 1 << 19;

/// One self-rescheduling chain step for the event-core throughput
/// bench: mix the captured state and reschedule a pseudo-random delay
/// (1 ps ..= ~1 µs — the timed engine's event granularity) ahead. The
/// capture is four state words — a typical handoff closure — which fits
/// the calendar core's inline event cell; the reference core boxes it,
/// exactly as the pre-refactor `Sim` boxed every event.
fn chain_step(s: &mut desim::Sim<'_>, mut st: [u64; 4]) {
    st[0] = st[0].wrapping_mul(0x9e37_79b9_7f4a_7c15).wrapping_add(st[1]);
    st[1] = st[1].rotate_left(7) ^ st[0];
    let delay = (st[0] & (2 * CHAIN_MEAN_PS - 1)) + 1;
    s.schedule_in(desim::SimTime::from_ps(delay), move |s2| chain_step(s2, st));
}

/// Raw event-core throughput: `chains` concurrent self-rescheduling
/// chains — the steady-state pending-event population, the analog of
/// the LP count the timed engine keeps queued — driven past a warm-up
/// horizon and then for ~`total` measured events. Returns events per
/// second. Identical seeds and deterministic tie-breaking mean both
/// cores execute the bit-identical schedule.
fn bench_event_core(kind: desim::QueueKind, chains: usize, total: usize) -> f64 {
    let mut sim = desim::Sim::with_kind(kind);
    for c in 0..chains {
        let mut x = c as u64 ^ 0x5851_f42d_4c95_7f2d;
        x = x.wrapping_mul(0x9e37_79b9_7f4a_7c15);
        let st = [x, x.rotate_left(31), c as u64, 0];
        sim.schedule_at(desim::SimTime::from_ps((c as u64) << 10), move |s| chain_step(s, st));
    }
    // Warm-up: several mean periods, so the population decorrelates
    // from the seeding pattern before the clock starts.
    sim.run_until(desim::SimTime::from_ps(8 * CHAIN_MEAN_PS));
    let warm_exec = sim.executed();
    let horizon = sim.now().ps() + (total as u64 * CHAIN_MEAN_PS) / chains as u64;
    let t0 = Instant::now();
    sim.run_until(desim::SimTime::from_ps(horizon));
    let secs = t0.elapsed().as_secs_f64();
    let events = sim.executed() - warm_exec;
    assert!(events as usize >= total / 2, "horizon math drifted: {events} events");
    events as f64 / secs
}

/// Wall-clock `barrier_all` latency at `npes` PEs on the timed engine
/// under `mode`: each PE times `iters` back-to-back barriers after an
/// alignment barrier, and the job-level number is the slowest PE's.
/// This is host wall time (scheduler handoffs dominate), not virtual
/// time — the cycle-box ablation is precisely about handoff count.
fn bench_timed_barrier(npes: usize, mode: tshmem::TimedMode, iters: usize) -> f64 {
    use tshmem::runtime::launch_timed;
    let cfg = RuntimeConfig::for_scale(npes).with_timed_mode(mode);
    let out = launch_timed(&cfg, move |ctx| {
        ctx.barrier_all(); // alignment
        let t0 = Instant::now();
        for _ in 0..iters {
            ctx.barrier_all();
        }
        t0.elapsed().as_nanos() as f64 / iters as f64
    });
    out.values.into_iter().fold(0.0, f64::max)
}

/// The timed-engine suite: raw event-core throughput (calendar vs the
/// retained reference heap) and timed world barriers at scale under
/// both scheduling disciplines, written to `BENCH_timed.json`. The
/// committed full run is the refactor's perf gate: `calendar_over_heap`
/// is the events/sec speedup of the calendar core, and
/// `cycle_box_over_event_driven` < 1.0 means the lockstep discipline
/// beat exact event order on wall time at that scale.
fn run_timed_suite(args: &Args) {
    let out = args.out.clone().unwrap_or_else(|| "BENCH_timed.json".to_string());
    let chain_totals = if args.quick { 400_000 } else { 4_000_000 };
    eprintln!(
        "timed suite: {chain_totals} events per core{}",
        if args.quick { " (quick)" } else { "" }
    );

    let mut core_entries = String::new();
    let chain_scales = [256usize, 1024, 16384];
    for (i, &chains) in chain_scales.iter().enumerate() {
        let cal = bench_event_core(desim::QueueKind::Calendar, chains, chain_totals);
        let heap = bench_event_core(desim::QueueKind::ReferenceHeap, chains, chain_totals);
        let ratio = cal / heap;
        eprintln!(
            "  {chains:>5} chains  calendar {:>10.0} ev/s  heap {:>10.0} ev/s  calendar/heap {ratio:.2}x",
            cal, heap
        );
        core_entries.push_str(&format!(
            "      {{\"chains\": {chains}, \"calendar_events_per_sec\": {cal:.0}, \
             \"heap_events_per_sec\": {heap:.0}, \"calendar_over_heap\": {ratio:.3}}}{}\n",
            if i + 1 < chain_scales.len() { "," } else { "" }
        ));
    }

    // (npes, iters): a 1024-PE timed barrier is 2048 OS threads taking
    // turns, so the big scales run a couple of iterations, not hundreds.
    let barrier_scales: &[(usize, usize)] =
        if args.quick { &[(64, 3), (256, 2), (1024, 1)] } else { &[(64, 10), (256, 4), (1024, 2)] };
    let mut barrier_entries = String::new();
    for (i, &(npes, iters)) in barrier_scales.iter().enumerate() {
        let ed = bench_timed_barrier(npes, tshmem::TimedMode::EventDriven, iters);
        let cb = bench_timed_barrier(npes, tshmem::TimedMode::cycle_box(), iters);
        let ratio = cb / ed;
        eprintln!(
            "  {npes:>5} PEs  event-driven {ed:>14.1} ns/op  cycle-box {cb:>14.1} ns/op  cb/ed {ratio:.3}"
        );
        barrier_entries.push_str(&format!(
            "      {{\"npes\": {npes}, \"event_driven_ns_per_op\": {ed:.1}, \
             \"cycle_box_ns_per_op\": {cb:.1}, \"cycle_box_over_event_driven\": {ratio:.4}}}{}\n",
            if i + 1 < barrier_scales.len() { "," } else { "" }
        ));
    }

    let json = format!(
        "{{\n  \"suite\": \"timed\",\n  \"quick\": {},\n  \
         \"event_core\": {{\n    \"total_events\": {chain_totals},\n    \"entries\": [\n{core_entries}    ]\n  }},\n  \
         \"barriers\": {{\n    \"entries\": [\n{barrier_entries}    ]\n  }}\n}}\n",
        args.quick
    );
    std::fs::write(&out, json).unwrap_or_else(|e| {
        eprintln!("cannot write {out}: {e}");
        std::process::exit(1);
    });
    println!("wrote {out}");
}

fn json_escape_free(name: &str) -> &str {
    // Benchmark names are static identifiers; assert rather than escape.
    assert!(
        name.chars().all(|c| c.is_ascii_alphanumeric() || c == '_'),
        "benchmark name {name:?} needs JSON escaping"
    );
    name
}

fn main() {
    let args = parse_args();
    if args.coop_suite {
        run_coop_suite(&args);
        return;
    }
    if args.nbi_suite {
        run_nbi_suite(&args);
        return;
    }
    if args.server_suite {
        run_server_suite(&args);
        return;
    }
    if args.timed_suite {
        run_timed_suite(&args);
        return;
    }
    if !args.native_suite {
        eprintln!(
            "nothing to do: pass --native-suite, --coop-suite, --nbi-suite, \
             --server-suite, or --timed-suite (see --help)"
        );
        std::process::exit(2);
    }
    let out = args.out.clone().unwrap_or_else(|| "BENCH_native.json".to_string());
    let npes = args.pes;
    let div = if args.quick { 10 } else { 1 };
    let it = |n: usize| (n / div).max(10);

    eprintln!("native suite: {npes} PEs{}", if args.quick { " (quick)" } else { "" });

    let mut benches: Vec<Bench> = Vec::new();
    let mut push = |b: Bench| {
        eprintln!(
            "  {:<24} {:>12.1} ns/op  {:>10.3} MB/s",
            b.name,
            b.ns_per_op,
            b.bytes_per_sec() / 1e6
        );
        benches.push(b);
    };

    const KB4: usize = 512; // u64 elements
    const KB256: usize = 32 * 1024;

    push(Bench {
        name: "put_bw_4k",
        ns_per_op: bench_put(npes, KB4, it(20_000), false),
        bytes_per_op: KB4 * 8,
    });
    push(Bench {
        name: "put_bw_256k",
        ns_per_op: bench_put(npes, KB256, it(1_000), false),
        bytes_per_op: KB256 * 8,
    });
    push(Bench {
        name: "get_bw_4k",
        ns_per_op: bench_get(npes, KB4, it(20_000)),
        bytes_per_op: KB4 * 8,
    });
    push(Bench {
        name: "get_bw_256k",
        ns_per_op: bench_get(npes, KB256, it(500)),
        bytes_per_op: KB256 * 8,
    });
    push(Bench {
        name: "barrier_all",
        ns_per_op: bench_barrier(npes, it(2_000)),
        bytes_per_op: 0,
    });
    push(Bench {
        name: "reduce_sum_8x64",
        ns_per_op: bench_reduce(npes, 8, it(1_000)),
        bytes_per_op: 8 * 8,
    });
    // 16 KiB transfers: a realistic data-plane payload (the paper's
    // bandwidth figures run from 4 KiB up), sized so the tracing tax is
    // measured against real transfer work rather than against pure
    // call-overhead — while keeping the traced run's event log bounded
    // even on engines that trace every element.
    const ABL: usize = 2048; // u64 elements
    let untraced = bench_putget(npes, ABL, it(2_000), false);
    push(Bench {
        name: "putget_untraced",
        ns_per_op: untraced,
        bytes_per_op: 2 * ABL * 8,
    });
    let traced = bench_putget(npes, ABL, it(2_000), true);
    push(Bench {
        name: "putget_traced",
        ns_per_op: traced,
        bytes_per_op: 2 * ABL * 8,
    });
    let ratio = traced / untraced;
    eprintln!("  traced/untraced putget ratio: {ratio:.3}");

    let mut json = String::new();
    json.push_str("{\n");
    json.push_str("  \"suite\": \"native\",\n");
    json.push_str(&format!("  \"npes\": {npes},\n"));
    json.push_str(&format!("  \"quick\": {},\n", args.quick));
    json.push_str(&format!("  \"traced_over_untraced\": {ratio:.4},\n"));
    json.push_str("  \"benchmarks\": {\n");
    for (i, b) in benches.iter().enumerate() {
        json.push_str(&format!(
            "    \"{}\": {{\"ns_per_op\": {:.1}, \"bytes_per_sec\": {:.1}}}{}\n",
            json_escape_free(b.name),
            b.ns_per_op,
            b.bytes_per_sec(),
            if i + 1 < benches.len() { "," } else { "" }
        ));
    }
    json.push_str("  }\n}\n");
    std::fs::write(&out, json).unwrap_or_else(|e| {
        eprintln!("cannot write {out}: {e}");
        std::process::exit(1);
    });
    println!("wrote {out}");
}
