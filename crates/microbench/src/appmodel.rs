//! Figures 13 and 14: the application case studies on the timed engine.

use tile_arch::device::Device;
use tshmem::prelude::*;
use tshmem_apps::cbir::{cbir_shmem, CbirConfig};
use tshmem_apps::fft::{fft2d_shmem, Fft2dConfig};

use crate::series::{Figure, Series};

/// PE counts used by the application figures (the paper sweeps 1–32).
pub fn pe_counts(max: usize) -> Vec<usize> {
    [1, 2, 4, 8, 16, 32].into_iter().filter(|n| *n <= max).collect()
}

/// Execution time (seconds, simulated) of the 2D FFT at `npes` PEs.
pub fn fft_time_s(device: Device, n: usize, npes: usize) -> f64 {
    let fcfg = Fft2dConfig { n, seed: 0x13, ..Fft2dConfig::default() };
    let full_bytes = n * n * 8;
    let cfg = RuntimeConfig::for_device(device, npes)
        .with_partition_bytes(full_bytes + 4 * (n / npes.max(1) + 1) * n * 8 + (1 << 20))
        .with_private_bytes(1 << 14)
        .with_temp_bytes(1 << 14);
    let out = tshmem::launch_timed(&cfg, move |ctx| fft2d_shmem(ctx, &fcfg).elapsed_ns);
    out.values[0] / 1e9
}

/// Execution time (seconds, simulated) of CBIR at `npes` PEs.
pub fn cbir_time_s(device: Device, images: usize, npes: usize) -> f64 {
    let ccfg = CbirConfig {
        num_images: images,
        ..CbirConfig::default()
    };
    let cfg = RuntimeConfig::for_device(device, npes)
        .with_partition_bytes(1 << 20)
        .with_private_bytes(1 << 14)
        .with_temp_bytes(1 << 12);
    let out = tshmem::launch_timed(&cfg, move |ctx| cbir_shmem(ctx, &ccfg).elapsed_ns);
    out.values[0] / 1e9
}

/// Build the execution-time + speedup figure shared by Figs 13/14.
fn app_figure(
    id: &str,
    title: &str,
    max_pes: usize,
    mut time_of: impl FnMut(Device, usize) -> f64,
) -> Figure {
    let mut fig = Figure::new(id, title, "tiles", "seconds | speedup");
    for device in [Device::tile_gx8036(), Device::tilepro64()] {
        let mut time_s = Series::new(format!("{} time (s)", device.name));
        let mut speedup = Series::new(format!("{} speedup", device.name));
        let mut t1 = None;
        for npes in pe_counts(max_pes) {
            let t = time_of(device, npes);
            if npes == 1 {
                t1 = Some(t);
            }
            time_s.push(npes as f64, t);
            speedup.push(npes as f64, t1.unwrap() / t);
        }
        fig.series.push(time_s);
        fig.series.push(speedup);
    }
    fig
}

/// Figure 13: 2D-FFT on an `n`×`n` complex-float image (paper: 1024).
pub fn fig13(n: usize, max_pes: usize) -> Figure {
    app_figure(
        "fig13",
        &format!("2D-FFT on {n}x{n} complex floats"),
        max_pes,
        move |d, p| fft_time_s(d, n, p),
    )
}

/// Figure 14: CBIR over `images` 128×128 8-bit images (paper: 22,000;
/// the harness defaults to a 2,200-image corpus — per-image cost is
/// identical, so times scale by 10x and speedups are unaffected).
pub fn fig14(images: usize, max_pes: usize) -> Figure {
    app_figure(
        "fig14",
        &format!("CBIR over {images} images of 128x128"),
        max_pes,
        move |d, p| cbir_time_s(d, images, p),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fft_gx_much_faster_than_pro() {
        // Paper: roughly an order of magnitude from hardware FP.
        let gx = fft_time_s(Device::tile_gx8036(), 128, 4);
        let pro = fft_time_s(Device::tilepro64(), 128, 4);
        let ratio = pro / gx;
        assert!((4.0..20.0).contains(&ratio), "FP gap {ratio}");
    }

    #[test]
    fn fft_speedup_plateaus() {
        let d = Device::tile_gx8036();
        let t1 = fft_time_s(d, 128, 1);
        let t8 = fft_time_s(d, 128, 8);
        let t16 = fft_time_s(d, 128, 16);
        let s8 = t1 / t8;
        let s16 = t1 / t16;
        assert!(s8 > 1.8, "some speedup at 8: {s8}");
        // Serialized final transpose: going 8 -> 16 must gain little.
        assert!(s16 < s8 * 1.6, "plateau: {s8} -> {s16}");
        assert!(s16 < 10.0, "well below linear: {s16}");
    }

    #[test]
    fn cbir_near_linear_then_sublinear() {
        let d = Device::tile_gx8036();
        let images = 64;
        let t1 = cbir_time_s(d, images, 1);
        let t4 = cbir_time_s(d, images, 4);
        let s4 = t1 / t4;
        assert!((2.6..4.4).contains(&s4), "near-linear at 4: {s4}");
    }

    #[test]
    fn cbir_devices_close_integer_workload() {
        // Paper: integer-tailored devices — the Gx is faster but not by
        // an order of magnitude (contrast with the FFT).
        let gx = cbir_time_s(Device::tile_gx8036(), 32, 2);
        let pro = cbir_time_s(Device::tilepro64(), 32, 2);
        let ratio = pro / gx;
        assert!((1.0..3.0).contains(&ratio), "integer gap {ratio}");
    }
}
