//! Tables I and II.

use tile_arch::device::Device;

/// Table I: the basic OpenSHMEM subset and where this workspace
/// implements each entry. Returned as (category, function, rust path)
/// rows; `tests/api_coverage.rs` asserts every row resolves.
pub fn table1() -> Vec<(&'static str, &'static str, &'static str)> {
    vec![
        ("Setup and Initialization", "start_pes()", "tshmem::runtime::launch / start_pes"),
        ("Environment Query", "_my_pe()", "tshmem::api::my_pe"),
        ("Environment Query", "_num_pes()", "tshmem::api::num_pes"),
        ("Memory Allocation", "shmalloc()", "tshmem::api::shmalloc"),
        ("Memory Allocation", "shfree()", "tshmem::api::shfree"),
        ("Elemental Put/Get", "shmem_int_p()", "tshmem::api::shmem_p::<i32>"),
        ("Elemental Put/Get", "shmem_int_g()", "tshmem::api::shmem_g::<i32>"),
        ("Block Put/Get", "shmem_putmem()", "tshmem::api::shmem_putmem"),
        ("Block Put/Get", "shmem_getmem()", "tshmem::api::shmem_getmem"),
        ("Strided Put/Get", "shmem_int_iput()", "tshmem::api::shmem_iput::<i32>"),
        ("Strided Put/Get", "shmem_int_iget()", "tshmem::api::shmem_iget::<i32>"),
        ("Barrier", "shmem_barrier()", "tshmem::api::shmem_barrier"),
        ("Barrier", "shmem_barrier_all()", "tshmem::api::shmem_barrier_all"),
        ("Communications Sync", "shmem_fence()", "tshmem::api::shmem_fence"),
        ("Communications Sync", "shmem_quiet()", "tshmem::api::shmem_quiet"),
        ("Point-to-Point Sync", "shmem_wait()", "tshmem::api::shmem_wait"),
        ("Point-to-Point Sync", "shmem_wait_until()", "tshmem::api::shmem_wait_until"),
        ("Broadcast", "shmem_broadcast32()", "tshmem::api::shmem_broadcast::<u32>"),
        ("Collection", "shmem_collect32()", "tshmem::api::shmem_collect::<u32>"),
        ("Collection", "shmem_fcollect32()", "tshmem::api::shmem_fcollect::<u32>"),
        ("Reduction", "shmem_int_sum_to_all()", "tshmem::api::shmem_sum_to_all::<i32>"),
        ("Reduction", "shmem_long_prod_to_all()", "tshmem::api::shmem_prod_to_all::<i64>"),
        ("Atomic Swap", "shmem_swap()", "tshmem::api::shmem_swap::<i64>"),
    ]
}

/// Table II: architectural comparison, rendered from the device
/// descriptors.
pub fn table2() -> String {
    let gx = Device::tile_gx8036();
    let pro = Device::tilepro64();
    let mut out = String::from("# Table II: architecture comparison\n");
    let rows: Vec<(String, String, String)> = vec![
        (
            "tiles".into(),
            format!("{} tiles of {}-bit VLIW", gx.grid.tiles(), gx.word_bits()),
            format!("{} tiles of {}-bit VLIW", pro.grid.tiles(), pro.word_bits()),
        ),
        (
            "caches per tile".into(),
            format!("{}k L1i, {}k L1d, {}k L2", gx.l1i_bytes / 1024, gx.l1d_bytes / 1024, gx.l2_bytes / 1024),
            format!("{}k L1i, {}k L1d, {}k L2", pro.l1i_bytes / 1024, pro.l1d_bytes / 1024, pro.l2_bytes / 1024),
        ),
        (
            "mesh interconnect".into(),
            format!("{} Tbps, {} dynamic networks", gx.mesh_tbps, gx.dynamic_networks),
            format!("{} Tbps, {} networks", pro.mesh_tbps, pro.dynamic_networks),
        ),
        (
            "clock".into(),
            format!("{} MHz", gx.clock.hz() / 1_000_000),
            format!("{} MHz", pro.clock.hz() / 1_000_000),
        ),
        (
            "memory controllers".into(),
            format!("{} DDR3", gx.ddr_controllers),
            format!("{} DDR2", pro.ddr_controllers),
        ),
    ];
    out.push_str(&format!("{:22}\t{:34}\t{}\n", "property", gx.name, pro.name));
    for (k, a, b) in rows {
        out.push_str(&format!("{k:22}\t{a:34}\t{b}\n"));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_covers_every_table_i_category() {
        let t = table1();
        assert!(t.len() >= 23);
        for cat in [
            "Setup and Initialization",
            "Environment Query",
            "Memory Allocation",
            "Elemental Put/Get",
            "Block Put/Get",
            "Strided Put/Get",
            "Barrier",
            "Communications Sync",
            "Point-to-Point Sync",
            "Broadcast",
            "Collection",
            "Reduction",
            "Atomic Swap",
        ] {
            assert!(t.iter().any(|(c, _, _)| *c == cat), "missing {cat}");
        }
    }

    #[test]
    fn table2_mentions_both_devices() {
        let t = table2();
        assert!(t.contains("TILE-Gx8036"));
        assert!(t.contains("TILEPro64"));
        assert!(t.contains("256k L2"));
        assert!(t.contains("64k L2"));
    }
}
