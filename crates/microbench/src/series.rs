//! Figure data structures and TSV rendering.

/// One labeled curve.
#[derive(Clone, Debug, PartialEq)]
pub struct Series {
    pub label: String,
    /// (x, y) points.
    pub points: Vec<(f64, f64)>,
}

impl Series {
    pub fn new(label: impl Into<String>) -> Self {
        Self {
            label: label.into(),
            points: Vec::new(),
        }
    }

    pub fn push(&mut self, x: f64, y: f64) {
        self.points.push((x, y));
    }

    /// Peak y value.
    pub fn max_y(&self) -> f64 {
        self.points.iter().map(|p| p.1).fold(f64::NEG_INFINITY, f64::max)
    }

    /// x at the peak y.
    pub fn argmax_x(&self) -> f64 {
        self.points
            .iter()
            .fold((f64::NAN, f64::NEG_INFINITY), |acc, p| {
                if p.1 > acc.1 {
                    (p.0, p.1)
                } else {
                    acc
                }
            })
            .0
    }

    /// y at the largest x (the "converged" value of a sweep).
    pub fn last_y(&self) -> f64 {
        self.points.last().map(|p| p.1).unwrap_or(f64::NAN)
    }

    /// Linear interpolation of y at `x` (points must be x-sorted).
    pub fn y_at(&self, x: f64) -> f64 {
        let pts = &self.points;
        if pts.is_empty() {
            return f64::NAN;
        }
        if x <= pts[0].0 {
            return pts[0].1;
        }
        for w in pts.windows(2) {
            if x <= w[1].0 {
                let t = (x - w[0].0) / (w[1].0 - w[0].0);
                return w[0].1 + t * (w[1].1 - w[0].1);
            }
        }
        pts[pts.len() - 1].1
    }
}

/// One reproduced figure (or table rendered as curves).
#[derive(Clone, Debug)]
pub struct Figure {
    /// Paper artifact id, e.g. `"fig3"`.
    pub id: String,
    pub title: String,
    pub x_label: String,
    pub y_label: String,
    pub series: Vec<Series>,
}

impl Figure {
    pub fn new(
        id: impl Into<String>,
        title: impl Into<String>,
        x_label: impl Into<String>,
        y_label: impl Into<String>,
    ) -> Self {
        Self {
            id: id.into(),
            title: title.into(),
            x_label: x_label.into(),
            y_label: y_label.into(),
            series: Vec::new(),
        }
    }

    pub fn series(&self, label: &str) -> Option<&Series> {
        self.series.iter().find(|s| s.label == label)
    }

    /// Render as TSV: a header comment, then `x<TAB>label<TAB>y` rows.
    pub fn to_tsv(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "# {}: {}\n# x: {}  y: {}\n",
            self.id, self.title, self.x_label, self.y_label
        ));
        out.push_str(&format!("{}\tseries\t{}\n", self.x_label, self.y_label));
        for s in &self.series {
            for (x, y) in &s.points {
                out.push_str(&format!("{x}\t{}\t{y:.4}\n", s.label));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn demo() -> Series {
        let mut s = Series::new("demo");
        s.push(1.0, 10.0);
        s.push(2.0, 30.0);
        s.push(4.0, 20.0);
        s
    }

    #[test]
    fn summaries() {
        let s = demo();
        assert_eq!(s.max_y(), 30.0);
        assert_eq!(s.argmax_x(), 2.0);
        assert_eq!(s.last_y(), 20.0);
    }

    #[test]
    fn interpolation() {
        let s = demo();
        assert_eq!(s.y_at(1.0), 10.0);
        assert_eq!(s.y_at(1.5), 20.0);
        assert_eq!(s.y_at(3.0), 25.0);
        assert_eq!(s.y_at(99.0), 20.0);
        assert_eq!(s.y_at(0.0), 10.0);
    }

    #[test]
    fn tsv_rendering() {
        let mut f = Figure::new("figX", "Demo", "size", "MB/s");
        f.series.push(demo());
        let tsv = f.to_tsv();
        assert!(tsv.contains("# figX: Demo"));
        assert!(tsv.contains("1\tdemo\t10.0000"));
        assert!(f.series("demo").is_some());
        assert!(f.series("nope").is_none());
    }
}
