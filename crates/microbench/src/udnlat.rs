//! Figure 4 and Table III: UDN one-way latencies on the 6×6 test area.

use tile_arch::area::TestArea;
use tile_arch::device::Device;
use udn::timing::UdnModel;

use crate::series::{Figure, Series};

/// The paper's transfer cases: (label, sender, receiver) in virtual CPU
/// numbers on the 6×6 area (Table III rows).
pub fn table3_cases() -> Vec<(&'static str, &'static str, usize, usize)> {
    vec![
        ("Neighbors", "left", 14, 13),
        ("Neighbors", "right", 14, 15),
        ("Neighbors", "up", 14, 8),
        ("Neighbors", "down", 14, 20),
        ("Neighbors", "left", 28, 27),
        ("Neighbors", "right", 28, 29),
        ("Neighbors", "up", 28, 22),
        ("Neighbors", "down", 28, 34),
        ("Side-to-Side", "right", 6, 11),
        ("Side-to-Side", "left", 11, 6),
        ("Side-to-Side", "down", 1, 31),
        ("Side-to-Side", "up", 31, 1),
        ("Side-to-Side", "right", 23, 18),
        ("Side-to-Side", "left", 18, 23),
        ("Side-to-Side", "down", 33, 3),
        ("Side-to-Side", "up", 3, 33),
        ("Corners", "down-right", 0, 35),
        ("Corners", "up-left", 35, 0),
        ("Corners", "down-left", 5, 30),
        ("Corners", "up-right", 30, 5),
    ]
}

/// One Table III row as reproduced.
#[derive(Clone, Debug)]
pub struct Table3Row {
    pub case: &'static str,
    pub direction: &'static str,
    pub sender: usize,
    pub receiver: usize,
    pub gx_ns: f64,
    pub pro_ns: f64,
}

/// Reproduce Table III (halved ping-ack latencies, ns, both devices).
pub fn table3() -> Vec<Table3Row> {
    let gx = UdnModel::new(TestArea::paper_6x6(Device::tile_gx8036()));
    let pro = UdnModel::new(TestArea::paper_6x6(Device::tilepro64()));
    table3_cases()
        .into_iter()
        .map(|(case, direction, s, r)| Table3Row {
            case,
            direction,
            sender: s,
            receiver: r,
            gx_ns: gx.ping_ack_half_ns(s, r),
            pro_ns: pro.ping_ack_half_ns(s, r),
        })
        .collect()
}

/// Render Table III as text.
pub fn table3_text() -> String {
    let mut out =
        String::from("# Table III: one-way latencies on UDN (6x6 area)\ncase\tdir\tsender\treceiver\tGx36_ns\tPro64_ns\n");
    for r in table3() {
        out.push_str(&format!(
            "{}\t{}\t{}\t{}\t{:.1}\t{:.1}\n",
            r.case, r.direction, r.sender, r.receiver, r.gx_ns, r.pro_ns
        ));
    }
    out
}

/// Figure 4: average one-way latency per distance case, both devices.
pub fn fig4() -> Figure {
    let mut fig = Figure::new(
        "fig4",
        "Average one-way UDN latencies (neighbors / side-to-side / corners)",
        "hops",
        "ns",
    );
    let rows = table3();
    for (device_label, pick) in [("TILE-Gx36", 0usize), ("TILEPro64", 1usize)] {
        let mut s = Series::new(device_label);
        for (case, hops) in [("Neighbors", 1.0), ("Side-to-Side", 5.0), ("Corners", 10.0)] {
            let vals: Vec<f64> = rows
                .iter()
                .filter(|r| r.case == case)
                .map(|r| if pick == 0 { r.gx_ns } else { r.pro_ns })
                .collect();
            let avg = vals.iter().sum::<f64>() / vals.len() as f64;
            s.push(hops, avg);
        }
        fig.series.push(s);
    }
    fig
}

/// Effective 1-word data throughput per case (paper Section III-C's
/// 2900/2500/2000 vs 1700/1300/980 Mbps comparison).
pub fn effective_throughput() -> Figure {
    let mut fig = Figure::new(
        "fig4b",
        "Effective UDN data throughput of 1-word transfers",
        "hops",
        "Mbps",
    );
    for device in [Device::tile_gx8036(), Device::tilepro64()] {
        let m = UdnModel::new(TestArea::paper_6x6(device));
        let mut s = Series::new(device.name);
        for (a, b, hops) in [(14usize, 13usize, 1.0), (6, 11, 5.0), (0, 35, 10.0)] {
            s.push(hops, m.effective_throughput_mbps(a, b));
        }
        fig.series.push(s);
    }
    fig
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_20_rows_present_with_sane_values() {
        let rows = table3();
        assert_eq!(rows.len(), 20);
        for r in &rows {
            assert!((15.0..36.0).contains(&r.gx_ns), "{r:?}");
            assert!((15.0..36.0).contains(&r.pro_ns), "{r:?}");
        }
    }

    #[test]
    fn per_case_bands_match_table3() {
        for r in table3() {
            let (gx_band, pro_band) = match r.case {
                "Neighbors" => ((20.5, 22.5), (17.5, 19.5)),
                "Side-to-Side" => ((24.5, 26.5), (23.5, 25.7)),
                _ => ((30.5, 32.5), (32.0, 34.0)),
            };
            assert!((gx_band.0..=gx_band.1).contains(&r.gx_ns), "{r:?}");
            assert!((pro_band.0..=pro_band.1).contains(&r.pro_ns), "{r:?}");
        }
    }

    #[test]
    fn fig4_shows_crossover() {
        // Pro wins at 1 hop, Gx wins at 10 hops (Fig 4's story).
        let fig = fig4();
        let gx = fig.series("TILE-Gx36").unwrap();
        let pro = fig.series("TILEPro64").unwrap();
        assert!(pro.y_at(1.0) < gx.y_at(1.0));
        assert!(pro.y_at(10.0) > gx.y_at(10.0));
    }

    #[test]
    fn throughput_matches_paper_scale() {
        // Paper: 2900/2500/2000 Mbps on Gx, 1700/1300/980 on Pro.
        let fig = effective_throughput();
        let gx = fig.series("TILE-Gx8036").unwrap();
        let pro = fig.series("TILEPro64").unwrap();
        assert!((gx.y_at(1.0) - 2900.0).abs() < 200.0, "{}", gx.y_at(1.0));
        assert!((gx.y_at(10.0) - 2000.0).abs() < 150.0, "{}", gx.y_at(10.0));
        assert!((pro.y_at(1.0) - 1700.0).abs() < 100.0, "{}", pro.y_at(1.0));
        assert!((pro.y_at(10.0) - 980.0).abs() < 80.0, "{}", pro.y_at(10.0));
    }

    #[test]
    fn table3_text_renders() {
        let t = table3_text();
        assert!(t.contains("Corners"));
        assert_eq!(t.lines().count(), 22);
    }
}
