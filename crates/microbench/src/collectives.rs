//! Figures 9–12: aggregate effective bandwidth of the collectives.
//!
//! The paper sweeps transfer size and participating tiles and plots the
//! *aggregate* effective bandwidth (the sum of the participating tiles'
//! bandwidths). We measure on the timed engine and compute aggregate
//! bandwidth as (total payload bytes delivered) / (operation time at the
//! root).

use tile_arch::device::Device;
use tshmem::prelude::*;

use crate::series::{Figure, Series};

/// Which collective a sweep exercises.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Collective {
    BroadcastPush,
    BroadcastPull,
    BroadcastBinomial,
    Fcollect,
    ReduceNaive,
    ReduceRecursiveDoubling,
}

impl Collective {
    pub fn label(self) -> &'static str {
        match self {
            Collective::BroadcastPush => "push broadcast",
            Collective::BroadcastPull => "pull broadcast",
            Collective::BroadcastBinomial => "binomial broadcast",
            Collective::Fcollect => "fcollect",
            Collective::ReduceNaive => "naive reduce",
            Collective::ReduceRecursiveDoubling => "recursive-doubling reduce",
        }
    }

    fn algos(self) -> Algorithms {
        match self {
            Collective::BroadcastPush => Algorithms {
                broadcast: BroadcastAlgo::Push,
                ..Default::default()
            },
            Collective::BroadcastPull => Algorithms {
                broadcast: BroadcastAlgo::Pull,
                ..Default::default()
            },
            Collective::BroadcastBinomial => Algorithms {
                broadcast: BroadcastAlgo::Binomial,
                ..Default::default()
            },
            Collective::Fcollect => Algorithms::default(),
            Collective::ReduceNaive => Algorithms {
                reduce: ReduceAlgo::Naive,
                ..Default::default()
            },
            Collective::ReduceRecursiveDoubling => Algorithms {
                reduce: ReduceAlgo::RecursiveDoubling,
                ..Default::default()
            },
        }
    }

    /// Payload bytes credited to one operation at `tiles` participants
    /// moving `m` bytes per PE (see module docs; matches the paper's
    /// aggregate accounting per figure).
    fn credited_bytes(self, tiles: usize, m: usize) -> f64 {
        match self {
            Collective::BroadcastPush | Collective::BroadcastPull | Collective::BroadcastBinomial => {
                ((tiles - 1) * m) as f64
            }
            // Stage 1: n blocks of m to the root; stage 2: n-1 copies of
            // the n*m concatenation.
            Collective::Fcollect => (tiles * m + (tiles - 1) * tiles * m) as f64,
            // The root ingests one m-byte array per participant.
            Collective::ReduceNaive | Collective::ReduceRecursiveDoubling => (tiles * m) as f64,
        }
    }
}

/// Aggregate bandwidth (MB/s) of `what` at `tiles` participants over
/// per-PE payloads of `sizes` bytes.
pub fn collective_sweep(
    device: Device,
    what: Collective,
    tiles: usize,
    sizes: Vec<usize>,
) -> Vec<(usize, f64)> {
    assert!(tiles >= 2);
    let max = *sizes.iter().max().unwrap();
    // fcollect's destination needs tiles * max bytes.
    let dest_bytes = max * tiles + (1 << 20);
    let cfg = RuntimeConfig::for_device(device, tiles)
        .with_partition_bytes(dest_bytes + 2 * max + (1 << 20))
        .with_private_bytes(1 << 14)
        .with_temp_bytes(64 * 1024)
        .with_algos(what.algos());
    let out = tshmem::launch_timed(&cfg, move |ctx| {
        let me = ctx.my_pe();
        let n_elems_max = max / 4;
        let src = ctx.shmalloc::<u32>(n_elems_max);
        let dst = ctx.shmalloc::<u32>(n_elems_max * ctx.n_pes());
        ctx.local_fill(&src, me as u32);
        ctx.barrier_all();
        let mut rows = Vec::new();
        for &m in &sizes {
            let n = (m / 4).max(1);
            run_collective(ctx, what, &dst, &src, n);
            let t0 = ctx.time_ns();
            run_collective(ctx, what, &dst, &src, n);
            let dt = ctx.time_ns() - t0;
            if me == 0 {
                let bytes = what.credited_bytes(ctx.n_pes(), n * 4);
                rows.push((n * 4, bytes / dt * 1000.0));
            }
        }
        rows
    });
    out.values.into_iter().next().unwrap()
}

fn run_collective(ctx: &ShmemCtx, what: Collective, dst: &Sym<u32>, src: &Sym<u32>, n: usize) {
    let world = ctx.world();
    match what {
        Collective::BroadcastPush | Collective::BroadcastPull | Collective::BroadcastBinomial => {
            ctx.broadcast(dst, src, n, 0, world)
        }
        Collective::Fcollect => ctx.fcollect(dst, src, n, world),
        Collective::ReduceNaive | Collective::ReduceRecursiveDoubling => {
            ctx.reduce(tshmem::types::ReduceOp::Sum, dst, src, n, world)
        }
    }
}

/// Tile counts for the collective sweeps (the paper's second-column
/// subfigures go up to 36).
pub fn tile_counts(max: usize) -> Vec<usize> {
    [2, 4, 8, 16, 24, 29, 32, 36]
        .into_iter()
        .filter(|t| *t <= max)
        .collect()
}

fn collective_figure(
    id: &str,
    title: &str,
    what: Collective,
    sizes: Vec<usize>,
    tiles_max: usize,
) -> Figure {
    let mut fig = Figure::new(id, title, "bytes per PE", "aggregate MB/s");
    for device in [Device::tile_gx8036(), Device::tilepro64()] {
        for t in tile_counts(tiles_max) {
            let mut s = Series::new(format!("{} {} tiles", device.name, t));
            for (m, bw) in collective_sweep(device, what, t, sizes.clone()) {
                s.push(m as f64, bw);
            }
            fig.series.push(s);
        }
    }
    fig
}

/// Figure 9: push-based broadcast.
pub fn fig9(sizes: Vec<usize>, tiles_max: usize) -> Figure {
    collective_figure(
        "fig9",
        "Push-based broadcast aggregate bandwidth",
        Collective::BroadcastPush,
        sizes,
        tiles_max,
    )
}

/// Figure 10: pull-based broadcast.
pub fn fig10(sizes: Vec<usize>, tiles_max: usize) -> Figure {
    collective_figure(
        "fig10",
        "Pull-based broadcast aggregate bandwidth",
        Collective::BroadcastPull,
        sizes,
        tiles_max,
    )
}

/// Figure 11: fast collection.
pub fn fig11(sizes: Vec<usize>, tiles_max: usize) -> Figure {
    collective_figure(
        "fig11",
        "Fast collection aggregate bandwidth",
        Collective::Fcollect,
        sizes,
        tiles_max,
    )
}

/// Figure 12: integer summation reduction.
pub fn fig12(sizes: Vec<usize>, tiles_max: usize) -> Figure {
    collective_figure(
        "fig12",
        "Integer summation reduction aggregate bandwidth",
        Collective::ReduceNaive,
        sizes,
        tiles_max,
    )
}

/// Default per-PE payload sweep for the collective figures.
pub fn default_sizes() -> Vec<usize> {
    vec![
        1 << 10,
        4 << 10,
        16 << 10,
        64 << 10,
        256 << 10,
        1 << 20,
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    const SIZES: &[usize] = &[64 * 1024, 256 * 1024];

    #[test]
    fn pull_broadcast_scales_push_does_not() {
        let gx = Device::tile_gx8036();
        let pull4 = collective_sweep(gx, Collective::BroadcastPull, 4, SIZES.to_vec());
        let pull16 = collective_sweep(gx, Collective::BroadcastPull, 16, SIZES.to_vec());
        let push4 = collective_sweep(gx, Collective::BroadcastPush, 4, SIZES.to_vec());
        let push16 = collective_sweep(gx, Collective::BroadcastPush, 16, SIZES.to_vec());
        // Pull aggregate grows with tiles...
        assert!(
            pull16[1].1 > 2.0 * pull4[1].1,
            "pull must scale: {} -> {}",
            pull4[1].1,
            pull16[1].1
        );
        // ...push aggregate stays flat (root-serialized).
        assert!(
            push16[1].1 < 1.8 * push4[1].1,
            "push must stay flat: {} -> {}",
            push4[1].1,
            push16[1].1
        );
        // And pull beats push outright at 16 tiles.
        assert!(pull16[1].1 > 2.0 * push16[1].1);
    }

    #[test]
    fn reduce_aggregate_flat_and_low() {
        let gx = Device::tile_gx8036();
        let r4 = collective_sweep(gx, Collective::ReduceNaive, 4, SIZES.to_vec());
        let r16 = collective_sweep(gx, Collective::ReduceNaive, 16, SIZES.to_vec());
        // Serialized on the root: aggregate roughly constant in tiles.
        let ratio = r16[1].1 / r4[1].1;
        assert!((0.5..2.0).contains(&ratio), "flat: {ratio}");
        // And in the paper's ~150 MB/s regime on the Gx.
        assert!((90.0..260.0).contains(&r16[1].1), "{}", r16[1].1);
    }

    #[test]
    fn fcollect_peak_shifts_left_as_tiles_grow() {
        // The quadratic stage-2 cost moves the best per-PE size toward
        // smaller payloads as the tile count rises (Fig 11's signature).
        let gx = Device::tile_gx8036();
        let sizes = vec![16 * 1024, 64 * 1024, 256 * 1024, 1 << 20];
        let few: Vec<(usize, f64)> = collective_sweep(gx, Collective::Fcollect, 4, sizes.clone());
        let many: Vec<(usize, f64)> = collective_sweep(gx, Collective::Fcollect, 16, sizes);
        let argmax = |rows: &[(usize, f64)]| {
            rows.iter()
                .max_by(|a, b| a.1.total_cmp(&b.1))
                .map(|r| r.0)
                .unwrap()
        };
        assert!(
            argmax(&many) <= argmax(&few),
            "peak must not move right: {} vs {}",
            argmax(&many),
            argmax(&few)
        );
    }

    #[test]
    fn recursive_doubling_beats_naive_reduce() {
        let gx = Device::tile_gx8036();
        let naive = collective_sweep(gx, Collective::ReduceNaive, 16, vec![256 * 1024]);
        let rd = collective_sweep(gx, Collective::ReduceRecursiveDoubling, 16, vec![256 * 1024]);
        assert!(
            rd[0].1 > 1.5 * naive[0].1,
            "rd {} must beat naive {}",
            rd[0].1,
            naive[0].1
        );
    }
}
