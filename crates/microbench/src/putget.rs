//! Figures 6 and 7: TSHMEM put/get effective bandwidth across the four
//! address classes.

use tile_arch::device::Device;
use tshmem::prelude::*;

use crate::series::{Figure, Series};

/// Address-class combination (target-source, the paper's notation).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Combo {
    DynDyn,
    DynStatic,
    StaticDyn,
    StaticStatic,
}

impl Combo {
    pub const ALL: [Combo; 4] = [
        Combo::DynDyn,
        Combo::DynStatic,
        Combo::StaticDyn,
        Combo::StaticStatic,
    ];

    pub fn label(self) -> &'static str {
        match self {
            Combo::DynDyn => "dynamic-dynamic",
            Combo::DynStatic => "dynamic-static",
            Combo::StaticDyn => "static-dynamic",
            Combo::StaticStatic => "static-static",
        }
    }
}

/// Transfer sizes for the put/get sweeps (8 B – `max`).
pub fn size_sweep(max: usize) -> Vec<usize> {
    crate::memcpy::size_sweep(max as u64)
        .into_iter()
        .map(|s| s as usize)
        .collect()
}

/// Measured (put, get) bandwidths in MB/s for one combo across sizes,
/// on the timed engine with two PEs.
pub fn putget_bandwidth(device: Device, combo: Combo, sizes: Vec<usize>) -> Vec<(usize, f64, f64)> {
    let max = *sizes.iter().max().unwrap();
    let cfg = RuntimeConfig::for_device(device, 2)
        .with_partition_bytes((3 * max + (1 << 20)).max(1 << 21))
        .with_private_bytes((2 * max + (1 << 16)).max(1 << 17))
        .with_temp_bytes(64 * 1024);
    let out = tshmem::launch_timed(&cfg, move |ctx| {
        let me = ctx.my_pe();
        let elems_max = max / 8;
        // Allocate both kinds on both PEs (collectively).
        let dyn_t = ctx.shmalloc::<u64>(elems_max);
        let dyn_s = ctx.shmalloc::<u64>(elems_max);
        let stat_t = ctx.static_sym::<u64>(elems_max);
        let stat_s = ctx.static_sym::<u64>(elems_max);
        ctx.barrier_all();
        let mut rows = Vec::new();
        if me == 0 {
            for &size in &sizes {
                let n = (size / 8).max(1);
                let iters = 3;
                // Warm.
                do_put(ctx, combo, &dyn_t, &dyn_s, &stat_t, &stat_s, n);
                let t0 = ctx.time_ns();
                for _ in 0..iters {
                    do_put(ctx, combo, &dyn_t, &dyn_s, &stat_t, &stat_s, n);
                }
                let put_ns = (ctx.time_ns() - t0) / iters as f64;
                do_get(ctx, combo, &dyn_t, &dyn_s, &stat_t, &stat_s, n);
                let t1 = ctx.time_ns();
                for _ in 0..iters {
                    do_get(ctx, combo, &dyn_t, &dyn_s, &stat_t, &stat_s, n);
                }
                let get_ns = (ctx.time_ns() - t1) / iters as f64;
                let bytes = (n * 8) as f64;
                rows.push((n * 8, bytes / put_ns * 1000.0, bytes / get_ns * 1000.0));
            }
        }
        ctx.barrier_all();
        rows
    });
    out.values.into_iter().next().unwrap()
}

fn do_put(
    ctx: &ShmemCtx,
    combo: Combo,
    dyn_t: &Sym<u64>,
    dyn_s: &Sym<u64>,
    stat_t: &Sym<u64>,
    stat_s: &Sym<u64>,
    n: usize,
) {
    match combo {
        Combo::DynDyn => ctx.put_sym(dyn_t, 0, dyn_s, 0, n, 1),
        Combo::DynStatic => ctx.put_sym(dyn_t, 0, stat_s, 0, n, 1),
        Combo::StaticDyn => ctx.put_sym(stat_t, 0, dyn_s, 0, n, 1),
        Combo::StaticStatic => ctx.put_sym(stat_t, 0, stat_s, 0, n, 1),
    }
}

fn do_get(
    ctx: &ShmemCtx,
    combo: Combo,
    dyn_t: &Sym<u64>,
    dyn_s: &Sym<u64>,
    stat_t: &Sym<u64>,
    stat_s: &Sym<u64>,
    n: usize,
) {
    match combo {
        Combo::DynDyn => ctx.get_sym(dyn_t, 0, dyn_s, 0, n, 1),
        Combo::DynStatic => ctx.get_sym(dyn_t, 0, stat_s, 0, n, 1),
        Combo::StaticDyn => ctx.get_sym(stat_t, 0, dyn_s, 0, n, 1),
        Combo::StaticStatic => ctx.get_sym(stat_t, 0, stat_s, 0, n, 1),
    }
}

/// Figure 6: dynamic-dynamic put/get on both devices, plus
/// static-static on the Gx36. `max_bytes` caps the sweep (paper: 16 MB;
/// the harness uses 4 MB, past the convergence point).
pub fn fig6(max_bytes: usize) -> Figure {
    let mut fig = Figure::new(
        "fig6",
        "TSHMEM put/get bandwidth: dynamic-dynamic (both devices) + static-static (Gx36)",
        "bytes",
        "MB/s",
    );
    for device in [Device::tile_gx8036(), Device::tilepro64()] {
        let rows = putget_bandwidth(device, Combo::DynDyn, size_sweep(max_bytes));
        let mut put = Series::new(format!("{} dyn-dyn put", device.name));
        let mut get = Series::new(format!("{} dyn-dyn get", device.name));
        for (size, p, g) in rows {
            put.push(size as f64, p);
            get.push(size as f64, g);
        }
        fig.series.push(put);
        fig.series.push(get);
    }
    let rows = putget_bandwidth(Device::tile_gx8036(), Combo::StaticStatic, size_sweep(max_bytes));
    let mut put = Series::new("TILE-Gx8036 static-static put");
    let mut get = Series::new("TILE-Gx8036 static-static get");
    for (size, p, g) in rows {
        put.push(size as f64, p);
        get.push(size as f64, g);
    }
    fig.series.push(put);
    fig.series.push(get);
    fig
}

/// Figure 7: all four combos on the TILE-Gx36.
pub fn fig7(max_bytes: usize) -> Figure {
    let mut fig = Figure::new(
        "fig7",
        "TSHMEM put/get bandwidth on TILE-Gx36 by address class (target-source)",
        "bytes",
        "MB/s",
    );
    for combo in Combo::ALL {
        let rows = putget_bandwidth(Device::tile_gx8036(), combo, size_sweep(max_bytes));
        let mut put = Series::new(format!("{} put", combo.label()));
        let mut get = Series::new(format!("{} get", combo.label()));
        for (size, p, g) in rows {
            put.push(size as f64, p);
            get.push(size as f64, g);
        }
        fig.series.push(put);
        fig.series.push(get);
    }
    fig
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dyn_dyn_tracks_fig3_shared_to_shared() {
        // Paper: TSHMEM dyn-dyn shows "low overhead" vs the Fig 3
        // common-memory microbenchmark.
        let gx = Device::tile_gx8036();
        let rows = putget_bandwidth(gx, Combo::DynDyn, vec![8 * 1024, 128 * 1024]);
        let raw_small = crate::memcpy::copy_bandwidth(
            &gx,
            crate::memcpy::CopyKind::SharedToShared,
            8 * 1024,
        );
        let (_, put_small, get_small) = rows[0];
        assert!(put_small > 0.6 * raw_small, "put {put_small} vs raw {raw_small}");
        assert!(get_small > 0.6 * raw_small);
        // Put and get performance closely align (paper Fig 6).
        for (_, p, g) in &rows {
            let ratio = p / g;
            assert!((0.7..1.4).contains(&ratio), "put/get ratio {ratio}");
        }
    }

    #[test]
    fn fig7_cost_ladder() {
        // dd ~= ds > sd > ss at a mid size (the Fig 7 ordering for puts).
        let gx = Device::tile_gx8036();
        let size = vec![64 * 1024usize];
        let dd = putget_bandwidth(gx, Combo::DynDyn, size.clone())[0].1;
        let ds = putget_bandwidth(gx, Combo::DynStatic, size.clone())[0].1;
        let sd = putget_bandwidth(gx, Combo::StaticDyn, size.clone())[0].1;
        let ss = putget_bandwidth(gx, Combo::StaticStatic, size)[0].1;
        assert!(
            ds > 0.65 * dd,
            "dynamic-static put must be near dyn-dyn: {ds} vs {dd}"
        );
        assert!(sd < dd, "redirected put slower: {sd} vs {dd}");
        assert!(ss < sd, "temp-assisted slowest: {ss} vs {sd}");
    }

    #[test]
    fn mirrored_get_ladder() {
        // For gets: static-dynamic (direct) fast, dynamic-static
        // (redirected) slower, static-static slowest.
        let gx = Device::tile_gx8036();
        let size = vec![64 * 1024usize];
        let dd = putget_bandwidth(gx, Combo::DynDyn, size.clone())[0].2;
        let sd = putget_bandwidth(gx, Combo::StaticDyn, size.clone())[0].2;
        let ds = putget_bandwidth(gx, Combo::DynStatic, size.clone())[0].2;
        let ss = putget_bandwidth(gx, Combo::StaticStatic, size)[0].2;
        assert!(sd > 0.65 * dd, "static-dynamic get near dd: {sd} vs {dd}");
        assert!(ds < dd, "redirected get slower: {ds} vs {dd}");
        assert!(ss < 1.05 * ds, "static-static no faster than redirected: {ss} vs {ds}");
    }
}
