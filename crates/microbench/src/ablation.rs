//! Ablations beyond the paper's figures (DESIGN.md §4): algorithm and
//! homing-policy comparisons that quantify the design choices.

use cachesim::homing::Homing;
use cachesim::memsys::{MemRef, MemorySystem};
use desim::time::SimTime;
use tile_arch::device::Device;

use crate::collectives::{collective_sweep, Collective};
use crate::series::{Figure, Series};

pub use crate::barrier::ablation_barrier;

/// Broadcast algorithms head-to-head at a fixed per-PE payload.
pub fn ablation_broadcast(device: Device, payload: usize, tiles: &[usize]) -> Figure {
    let mut fig = Figure::new(
        "ablation-broadcast",
        format!("Broadcast algorithms at {payload} B per PE ({})", device.name),
        "tiles",
        "aggregate MB/s",
    );
    for what in [
        Collective::BroadcastPush,
        Collective::BroadcastPull,
        Collective::BroadcastBinomial,
    ] {
        let mut s = Series::new(what.label());
        for &t in tiles {
            let rows = collective_sweep(device, what, t, vec![payload]);
            s.push(t as f64, rows[0].1);
        }
        fig.series.push(s);
    }
    fig
}

/// Reduction algorithms head-to-head (the paper's future-work item).
pub fn ablation_reduce(device: Device, payload: usize, tiles: &[usize]) -> Figure {
    let mut fig = Figure::new(
        "ablation-reduce",
        format!("Reduction algorithms at {payload} B per PE ({})", device.name),
        "tiles",
        "aggregate MB/s",
    );
    for what in [Collective::ReduceNaive, Collective::ReduceRecursiveDoubling] {
        let mut s = Series::new(what.label());
        for &t in tiles {
            let rows = collective_sweep(device, what, t, vec![payload]);
            s.push(t as f64, rows[0].1);
        }
        fig.series.push(s);
    }
    fig
}

/// Memory-homing policies under a many-reader pull pattern: aggregate
/// bandwidth of `readers` tiles each pulling `bytes` from one buffer,
/// homed three ways. Hash-for-home spreads the load over every tile's
/// home port; single-tile homing bottlenecks on one port — the paper's
/// Section III-A rationale for TSHMEM's use of hash-for-home.
pub fn ablation_homing(device: Device, bytes: u64, readers_sweep: &[usize]) -> Figure {
    let mut fig = Figure::new(
        "ablation-homing",
        format!("Homing policy under concurrent pulls of {bytes} B ({})", device.name),
        "readers",
        "aggregate MB/s",
    );
    const SRC: u64 = 0x9000_0000;
    for (label, homing) in [
        ("hash-for-home", Homing::HashForHome),
        ("remote-homed (tile 0)", Homing::Remote(0)),
        ("local-homed (tile 0)", Homing::Local(0)),
    ] {
        let mut s = Series::new(label);
        for &readers in readers_sweep {
            let tiles = device.grid.tiles().min(36);
            let mut sys = MemorySystem::new(device, tiles);
            // Producer installs the buffer on chip under this homing.
            sys.copy(
                0,
                MemRef::new(SRC, homing),
                MemRef::new(0x1000_0000, Homing::Local(0)),
                bytes,
                SimTime::ZERO,
            );
            let start = SimTime::from_us(100);
            let mut done = SimTime::ZERO;
            for r in 0..readers {
                let tile = 1 + (r % (tiles - 1));
                let dst = MemRef::new(0x2000_0000 + r as u64 * 0x40_0000, Homing::Local(tile));
                let end = sys.copy(tile, dst, MemRef::new(SRC, homing), bytes, start);
                done = done.max(end);
            }
            let secs = (done - start).s_f64();
            s.push(readers as f64, readers as f64 * bytes as f64 / secs / 1e6);
        }
        fig.series.push(s);
    }
    fig
}

/// Multi-device scaling (the paper's Section VI future work): the same
/// total PE count arranged as 1, 2, or 4 chips. Intra-chip collectives
/// ride the DDC; cross-chip traffic pays mPIPE latency and 10 Gbps
/// links, so the single-chip arrangement dominates — quantifying how
/// much a multi-device TSHMEM would need to hide.
pub fn ablation_multichip(total_pes: usize, payload: usize) -> Figure {
    use tshmem::prelude::*;
    use tshmem::runtime::launch_multichip;
    let mut fig = Figure::new(
        "ablation-multichip",
        format!("{total_pes} PEs as 1/2/4 chips, {payload} B-per-PE collectives"),
        "chips",
        "us per operation",
    );
    let mut bcast = Series::new("pull broadcast");
    let mut reduce = Series::new("sum reduction");
    let mut barrier = Series::new("barrier");
    for chips in [1usize, 2, 4] {
        if !total_pes.is_multiple_of(chips) {
            continue;
        }
        let per_chip = total_pes / chips;
        let cfg = RuntimeConfig::new(per_chip)
            .with_partition_bytes(4 * payload * total_pes + (1 << 20))
            .with_private_bytes(1 << 14)
            .with_temp_bytes(1 << 14);
        let out = launch_multichip(&cfg, chips, move |ctx| {
            let n = payload / 4;
            let src = ctx.shmalloc::<u32>(n);
            let dst = ctx.shmalloc::<u32>(n * ctx.n_pes());
            ctx.local_fill(&src, ctx.my_pe() as u32);
            ctx.barrier_all();
            let t0 = ctx.time_ns();
            ctx.broadcast(&dst, &src, n, 0, ctx.world());
            let t1 = ctx.time_ns();
            ctx.sum_to_all(&dst, &src, n, ctx.world());
            let t2 = ctx.time_ns();
            ctx.barrier_all();
            let t3 = ctx.time_ns();
            (t1 - t0, t2 - t1, t3 - t2)
        });
        let (b, r, ba) = out.values[0];
        bcast.push(chips as f64, b / 1e3);
        reduce.push(chips as f64, r / 1e3);
        barrier.push(chips as f64, ba / 1e3);
    }
    fig.series.push(bcast);
    fig.series.push(reduce);
    fig.series.push(barrier);
    fig
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hash_for_home_wins_under_contention() {
        let fig = ablation_homing(Device::tile_gx8036(), 256 * 1024, &[1, 8, 24]);
        let hash = fig.series("hash-for-home").unwrap();
        let remote = fig.series("remote-homed (tile 0)").unwrap();
        // At 24 readers the distributed DDC must beat the single port.
        assert!(
            hash.y_at(24.0) > 2.0 * remote.y_at(24.0),
            "hash {} vs remote {}",
            hash.y_at(24.0),
            remote.y_at(24.0)
        );
    }

    #[test]
    fn splitting_a_job_across_chips_costs() {
        let fig = ablation_multichip(8, 64 * 1024);
        let bcast = fig.series("pull broadcast").unwrap();
        let barrier = fig.series("barrier").unwrap();
        assert!(
            bcast.y_at(2.0) > 2.0 * bcast.y_at(1.0),
            "cross-chip broadcast slower: {} vs {}",
            bcast.y_at(2.0),
            bcast.y_at(1.0)
        );
        assert!(barrier.y_at(2.0) > barrier.y_at(1.0));
    }

    #[test]
    fn binomial_broadcast_beats_push() {
        let fig = ablation_broadcast(Device::tile_gx8036(), 128 * 1024, &[4, 16]);
        let push = fig.series("push broadcast").unwrap();
        let bin = fig.series("binomial broadcast").unwrap();
        assert!(
            bin.y_at(16.0) > push.y_at(16.0),
            "binomial {} vs push {}",
            bin.y_at(16.0),
            push.y_at(16.0)
        );
    }
}
