//! Regeneration of the TSHMEM paper's evaluation.
//!
//! One module per experiment family; each returns structured
//! [`series::Figure`] data that the `bench` crate's `figures` binary
//! prints as TSV and `EXPERIMENTS.md` records against the paper's
//! numbers.
//!
//! | paper artifact | module | function |
//! |---|---|---|
//! | Table I   | [`tables`] | [`tables::table1`] |
//! | Table II  | [`tables`] | [`tables::table2`] |
//! | Figure 3  | [`memcpy`] | [`memcpy::fig3`] |
//! | Figure 4 / Table III | [`udnlat`] | [`udnlat::fig4`], [`udnlat::table3`] |
//! | Figure 5  | [`barrier`] | [`barrier::fig5`] |
//! | Figure 6  | [`putget`] | [`putget::fig6`] |
//! | Figure 7  | [`putget`] | [`putget::fig7`] |
//! | Figure 8  | [`barrier`] | [`barrier::fig8`] |
//! | Figure 9  | [`collectives`] | [`collectives::fig9`] |
//! | Figure 10 | [`collectives`] | [`collectives::fig10`] |
//! | Figure 11 | [`collectives`] | [`collectives::fig11`] |
//! | Figure 12 | [`collectives`] | [`collectives::fig12`] |
//! | Figure 13 | [`appmodel`] | [`appmodel::fig13`] |
//! | Figure 14 | [`appmodel`] | [`appmodel::fig14`] |
//!
//! Ablations beyond the paper (design-choice comparisons listed in
//! `DESIGN.md` §4) live in [`ablation`].

pub mod ablation;
pub mod appmodel;
pub mod barrier;
pub mod collectives;
pub mod memcpy;
pub mod putget;
pub mod series;
pub mod tables;
pub mod udnlat;

pub use series::{Figure, Series};
