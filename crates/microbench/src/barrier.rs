//! Figure 5 (TMC spin/sync barriers) and Figure 8 (TSHMEM barrier).

use tile_arch::device::Device;
use tshmem::prelude::*;

use crate::series::{Figure, Series};

/// Tile counts swept by the barrier figures.
pub fn tile_sweep(max: usize) -> Vec<usize> {
    [2, 4, 8, 12, 16, 20, 24, 28, 32, 36]
        .into_iter()
        .filter(|n| *n <= max)
        .collect()
}

/// Figure 5: TMC spin and sync barrier latencies (model curves from the
/// Section III-D calibration).
pub fn fig5() -> Figure {
    let mut fig = Figure::new(
        "fig5",
        "Latencies of TMC spin and sync barriers",
        "tiles",
        "us",
    );
    for device in [Device::tile_gx8036(), Device::tilepro64()] {
        let b = device.timings.barrier;
        let mut spin = Series::new(format!("{} spin", device.name));
        let mut sync = Series::new(format!("{} sync", device.name));
        for n in tile_sweep(36) {
            spin.push(n as f64, b.spin_ps(n) as f64 / 1e6);
            sync.push(n as f64, b.sync_ps(n) as f64 / 1e6);
        }
        fig.series.push(spin);
        fig.series.push(sync);
    }
    fig
}

/// Per-PE enter/exit stamps of repeated barriers on the timed engine.
fn measure_barrier(device: Device, npes: usize, algos: Algorithms, iters: usize) -> Vec<Vec<(f64, f64)>> {
    let cfg = RuntimeConfig::for_device(device, npes)
        .with_partition_bytes(1 << 20)
        .with_private_bytes(1 << 14)
        .with_temp_bytes(1 << 12)
        .with_algos(algos);
    let out = tshmem::launch_timed(&cfg, move |ctx| {
        ctx.barrier_all(); // warm
        let mut stamps = Vec::with_capacity(iters);
        for _ in 0..iters {
            let enter = ctx.time_ns();
            ctx.barrier_all();
            stamps.push((enter, ctx.time_ns()));
        }
        stamps
    });
    out.values
}

/// Best- and worst-case TSHMEM barrier latency at `npes` tiles, us.
///
/// The paper's distinction: latency depends on whether a tile leaves the
/// routine first or last. We take the earliest entry as the common
/// reference; best case = first exit − first entry, worst case = last
/// exit − first entry.
pub fn tshmem_barrier_best_worst(device: Device, npes: usize) -> (f64, f64) {
    let iters = 6;
    let per_pe = measure_barrier(device, npes, Algorithms::default(), iters);
    let mut best = 0.0;
    let mut worst = 0.0;
    for i in 0..iters {
        let first_enter = per_pe
            .iter()
            .map(|s| s[i].0)
            .fold(f64::INFINITY, f64::min);
        let first_exit = per_pe.iter().map(|s| s[i].1).fold(f64::INFINITY, f64::min);
        let last_exit = per_pe
            .iter()
            .map(|s| s[i].1)
            .fold(f64::NEG_INFINITY, f64::max);
        best += first_exit - first_enter;
        worst += last_exit - first_enter;
    }
    (best / iters as f64 / 1e3, worst / iters as f64 / 1e3)
}

/// Figure 8: TSHMEM barrier latency — Gx best/worst case, Pro64, and
/// the TMC spin barrier on Gx for comparison.
pub fn fig8() -> Figure {
    let mut fig = Figure::new("fig8", "Latencies of TSHMEM barrier", "tiles", "us");
    let gx = Device::tile_gx8036();
    let pro = Device::tilepro64();
    let mut gx_best = Series::new("TILE-Gx36 best case");
    let mut gx_worst = Series::new("TILE-Gx36 worst case");
    let mut pro_s = Series::new("TILEPro64");
    let mut spin = Series::new("TILE-Gx36 TMC spin");
    for n in tile_sweep(36) {
        let (b, w) = tshmem_barrier_best_worst(gx, n);
        gx_best.push(n as f64, b);
        gx_worst.push(n as f64, w);
        let (_, pw) = tshmem_barrier_best_worst(pro, n);
        pro_s.push(n as f64, pw);
        spin.push(n as f64, gx.timings.barrier.spin_ps(n) as f64 / 1e6);
    }
    fig.series.push(gx_best);
    fig.series.push(gx_worst);
    fig.series.push(pro_s);
    fig.series.push(spin);
    fig
}

/// Ablation: the three barrier algorithms on the Gx (ring vs
/// root-broadcast release vs adopting the TMC spin barrier).
pub fn ablation_barrier(device: Device, max_tiles: usize) -> Figure {
    let mut fig = Figure::new(
        "ablation-barrier",
        format!("Barrier algorithm comparison ({})", device.name),
        "tiles",
        "us",
    );
    for (label, algo) in [
        ("ring (paper)", BarrierAlgo::Ring),
        ("root-broadcast release", BarrierAlgo::RootBroadcast),
        ("TMC spin (Sec IV-E proposal)", BarrierAlgo::TmcSpin),
        ("dissemination (extension)", BarrierAlgo::Dissemination),
    ] {
        let mut s = Series::new(label);
        for n in tile_sweep(max_tiles) {
            let per_pe = measure_barrier(
                device,
                n,
                Algorithms {
                    barrier: algo,
                    ..Default::default()
                },
                4,
            );
            // Worst-case (completion) latency, averaged over iters.
            let iters = per_pe[0].len();
            let mut total = 0.0;
            for i in 0..iters {
                total += per_pe
                    .iter()
                    .map(|s| s[i].1 - s[i].0)
                    .fold(f64::NEG_INFINITY, f64::max);
            }
            s.push(n as f64, total / iters as f64 / 1e3);
        }
        fig.series.push(s);
    }
    fig
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig5_matches_calibration_points() {
        let fig = fig5();
        let gx_spin = fig.series("TILE-Gx8036 spin").unwrap();
        let pro_spin = fig.series("TILEPro64 spin").unwrap();
        let gx_sync = fig.series("TILE-Gx8036 sync").unwrap();
        let pro_sync = fig.series("TILEPro64 sync").unwrap();
        assert!((gx_spin.y_at(36.0) - 1.5).abs() < 0.2, "{}", gx_spin.y_at(36.0));
        assert!((pro_spin.y_at(36.0) - 47.2).abs() < 2.0);
        assert!((gx_sync.y_at(36.0) - 321.0).abs() < 15.0);
        assert!((pro_sync.y_at(36.0) - 786.0).abs() < 30.0);
        // Spin vastly outperforms sync everywhere.
        for n in [2.0, 16.0, 36.0] {
            assert!(gx_spin.y_at(n) * 10.0 < gx_sync.y_at(n));
        }
    }

    #[test]
    fn fig8_orderings_match_paper() {
        // Small sweep for test speed: compare at 16 tiles.
        let gx = Device::tile_gx8036();
        let pro = Device::tilepro64();
        let (gb, gw) = tshmem_barrier_best_worst(gx, 16);
        let (_, pw) = tshmem_barrier_best_worst(pro, 16);
        assert!(gb < gw, "best {gb} < worst {gw}");
        // Gx TSHMEM barrier beats Pro's (higher clock), paper Sec IV-C1.
        assert!(gw < pw, "gx {gw} < pro {pw}");
        // TMC spin on Gx beats TSHMEM's UDN barrier (paper's Fig 8).
        let spin_us = gx.timings.barrier.spin_ps(16) as f64 / 1e6;
        assert!(spin_us < gw, "spin {spin_us} < tshmem {gw}");
        // Pro TSHMEM barrier crushes Pro TMC spin (47.2 us at 36).
        let pro_spin_us = pro.timings.barrier.spin_ps(16) as f64 / 1e6;
        assert!(pw < pro_spin_us, "tshmem {pw} < pro spin {pro_spin_us}");
    }

    #[test]
    fn tshmem_barrier_scales_with_tiles() {
        let gx = Device::tile_gx8036();
        let (_, w8) = tshmem_barrier_best_worst(gx, 8);
        let (_, w32) = tshmem_barrier_best_worst(gx, 32);
        assert!(w32 > 2.0 * w8, "linear token: {w8} -> {w32}");
    }

    #[test]
    fn dissemination_barrier_beats_ring_at_scale() {
        // log2(n) parallel rounds vs 2n serial hops.
        let gx = Device::tile_gx8036();
        let worst = |algo: BarrierAlgo| {
            let per_pe = measure_barrier(
                gx,
                32,
                Algorithms {
                    barrier: algo,
                    ..Default::default()
                },
                4,
            );
            let iters = per_pe[0].len();
            (0..iters)
                .map(|i| {
                    per_pe
                        .iter()
                        .map(|s| s[i].1 - s[i].0)
                        .fold(f64::NEG_INFINITY, f64::max)
                })
                .sum::<f64>()
                / iters as f64
        };
        let ring = worst(BarrierAlgo::Ring);
        let diss = worst(BarrierAlgo::Dissemination);
        assert!(
            diss < ring / 3.0,
            "dissemination {diss} ns must crush ring {ring} ns at 32 tiles"
        );
    }
}
