//! TMC spin and sync barriers (paper Section III-D, Figure 5).
//!
//! * [`SpinBarrier`] polls an atomic generation counter — lowest latency,
//!   but it burns the core, so it is only appropriate with one task per
//!   tile (exactly the configuration TSHMEM runs).
//! * [`SyncBarrier`] blocks through the scheduler (mutex + condvar, the
//!   analog of TMC's `tmc_sync_barrier`, which notifies the Linux
//!   scheduler): far slower, but tolerates oversubscription.
//!
//! Both are reusable (sense-reversing / generation-counted) and safe for
//! repeated waits by the same fixed set of participants.

use std::sync::atomic::{AtomicUsize, Ordering};

use substrate::sync::{Condvar, Mutex};

/// Sense-reversing spin barrier for a fixed number of participants.
#[derive(Debug)]
pub struct SpinBarrier {
    n: usize,
    arrived: AtomicUsize,
    generation: AtomicUsize,
}

impl SpinBarrier {
    /// Barrier for `n` participants.
    ///
    /// # Panics
    /// Panics if `n == 0`.
    pub fn new(n: usize) -> Self {
        assert!(n > 0, "barrier needs at least one participant");
        Self {
            n,
            arrived: AtomicUsize::new(0),
            generation: AtomicUsize::new(0),
        }
    }

    pub fn participants(&self) -> usize {
        self.n
    }

    /// Block (by polling) until all `n` participants have called `wait`.
    /// Returns `true` for exactly one participant per round (the last
    /// arriver), mirroring `std::sync::Barrier`'s leader flag.
    pub fn wait(&self) -> bool {
        let gen = self.generation.load(Ordering::Acquire);
        if self.arrived.fetch_add(1, Ordering::AcqRel) + 1 == self.n {
            // Last arriver: reset and release the generation.
            self.arrived.store(0, Ordering::Relaxed);
            self.generation.store(gen.wrapping_add(1), Ordering::Release);
            true
        } else {
            while self.generation.load(Ordering::Acquire) == gen {
                std::hint::spin_loop();
            }
            false
        }
    }
}

/// Scheduler-interacting barrier (mutex + condvar).
#[derive(Debug)]
pub struct SyncBarrier {
    n: usize,
    state: Mutex<(usize, u64)>, // (arrived, generation)
    cv: Condvar,
}

impl SyncBarrier {
    /// Barrier for `n` participants.
    ///
    /// # Panics
    /// Panics if `n == 0`.
    pub fn new(n: usize) -> Self {
        assert!(n > 0, "barrier needs at least one participant");
        Self {
            n,
            state: Mutex::new((0, 0)),
            cv: Condvar::new(),
        }
    }

    pub fn participants(&self) -> usize {
        self.n
    }

    /// Block (sleeping) until all `n` participants have called `wait`.
    /// Returns `true` for the last arriver.
    pub fn wait(&self) -> bool {
        let mut st = self.state.lock();
        let gen = st.1;
        st.0 += 1;
        if st.0 == self.n {
            st.0 = 0;
            st.1 = st.1.wrapping_add(1);
            self.cv.notify_all();
            true
        } else {
            while st.1 == gen {
                self.cv.wait(&mut st);
            }
            false
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;

    fn hammer<B: Sync + Send>(b: Arc<B>, n: usize, rounds: usize, wait: fn(&B) -> bool) {
        // All participants must observe every phase boundary in order.
        let phase = Arc::new(AtomicUsize::new(0));
        std::thread::scope(|s| {
            for _ in 0..n {
                let b = b.clone();
                let phase = phase.clone();
                s.spawn(move || {
                    for r in 0..rounds {
                        // Everyone sees the phase at least r.
                        assert!(phase.load(Ordering::SeqCst) >= r);
                        if wait(&b) {
                            phase.fetch_add(1, Ordering::SeqCst);
                        }
                        wait(&b); // second barrier so the add is visible
                        assert!(phase.load(Ordering::SeqCst) > r);
                    }
                });
            }
        });
        assert_eq!(phase.load(Ordering::SeqCst), rounds);
    }

    #[test]
    fn spin_barrier_synchronizes_many_rounds() {
        hammer(Arc::new(SpinBarrier::new(8)), 8, 50, |b| b.wait());
    }

    #[test]
    fn sync_barrier_synchronizes_many_rounds() {
        hammer(Arc::new(SyncBarrier::new(8)), 8, 50, |b| b.wait());
    }

    #[test]
    fn exactly_one_leader_per_round() {
        let b = Arc::new(SpinBarrier::new(4));
        let leaders = Arc::new(AtomicUsize::new(0));
        std::thread::scope(|s| {
            for _ in 0..4 {
                let b = b.clone();
                let leaders = leaders.clone();
                s.spawn(move || {
                    for _ in 0..25 {
                        if b.wait() {
                            leaders.fetch_add(1, Ordering::SeqCst);
                        }
                    }
                });
            }
        });
        assert_eq!(leaders.load(Ordering::SeqCst), 25);
    }

    #[test]
    fn single_participant_never_blocks() {
        let b = SpinBarrier::new(1);
        assert!(b.wait());
        assert!(b.wait());
        let sb = SyncBarrier::new(1);
        assert!(sb.wait());
    }

    #[test]
    #[should_panic(expected = "at least one")]
    fn zero_participants_panics() {
        SpinBarrier::new(0);
    }

    #[test]
    #[should_panic(expected = "at least one")]
    fn zero_participants_sync_panics() {
        SyncBarrier::new(0);
    }

    #[test]
    fn oversubscribed_sync_barrier_makes_progress() {
        // More tasks than cores is the sync barrier's reason to exist.
        let n = 64;
        let b = Arc::new(SyncBarrier::new(n));
        std::thread::scope(|s| {
            for _ in 0..n {
                let b = b.clone();
                s.spawn(move || {
                    for _ in 0..5 {
                        b.wait();
                    }
                });
            }
        });
    }
}
