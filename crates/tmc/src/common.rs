//! Common memory: shared memory with identical addressing in every task.
//!
//! TMC common memory differs from plain shared-memory mappings in that
//! every participating process maps the region at the same virtual
//! address, so pointers into it can be shared (paper Section III-B). Our
//! analog is an arena shared by all PE threads and addressed by
//! **offset**: an offset means the same thing to every PE, which is the
//! property TSHMEM's symmetric partitions need.
//!
//! # Data races
//!
//! SHMEM is a weakly-ordered one-sided communication model: the
//! *application* is responsible for ordering conflicting accesses with
//! barriers, fences, and point-to-point synchronization, exactly as with
//! the C library on the real hardware. Bulk accessors use raw-pointer
//! copies; the word accessors used by synchronization primitives
//! (`atomic_u32`/`atomic_u64`/volatile reads) are genuinely atomic, which
//! is what `shmem_wait()` and the atomic operations build on.

use std::cell::UnsafeCell;
use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};
use std::sync::Arc;

use cachesim::homing::Homing;

/// Marker for types that can be transported byte-wise through common
/// memory (no padding requirements are relied on — reads/writes are
/// unaligned raw copies of `size_of::<T>()` bytes).
///
/// # Safety
/// Implementors must be valid for every bit pattern of their size.
pub unsafe trait Bits: Copy + Send + 'static {}

macro_rules! impl_bits {
    ($($t:ty),*) => {
        $(unsafe impl Bits for $t {})*
    };
}

impl_bits!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

/// A shared arena addressed by offset, visible to all PE threads.
pub struct CommonMemory {
    buf: Box<[UnsafeCell<u8>]>,
    homing: Homing,
}

// SAFETY: all access goes through raw-pointer copies or atomics; the
// SHMEM programming model (and this library's docs) make cross-PE
// ordering the application's responsibility, as on the real device.
unsafe impl Send for CommonMemory {}
unsafe impl Sync for CommonMemory {}

impl CommonMemory {
    /// Allocate `len` bytes of common memory with the given homing
    /// policy (homing affects the timed model and ablations; functional
    /// behavior is identical).
    pub fn new(len: usize, homing: Homing) -> Arc<Self> {
        let mut v = Vec::with_capacity(len);
        v.resize_with(len, || UnsafeCell::new(0));
        Arc::new(Self {
            buf: v.into_boxed_slice(),
            homing,
        })
    }

    pub fn len(&self) -> usize {
        self.buf.len()
    }

    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    pub fn homing(&self) -> Homing {
        self.homing
    }

    #[inline]
    fn ptr(&self, offset: usize, len: usize) -> *mut u8 {
        assert!(
            offset.checked_add(len).is_some_and(|end| end <= self.buf.len()),
            "common-memory access [{offset}, {offset}+{len}) out of bounds (len {})",
            self.buf.len()
        );
        self.buf[offset].get()
    }

    /// Copy `src` into the arena at `offset`.
    #[inline]
    pub fn write_bytes(&self, offset: usize, src: &[u8]) {
        let p = self.ptr(offset, src.len());
        // SAFETY: bounds checked above; see module docs for the
        // concurrency contract.
        unsafe { std::ptr::copy_nonoverlapping(src.as_ptr(), p, src.len()) }
    }

    /// Copy from the arena at `offset` into `dst`.
    #[inline]
    pub fn read_bytes(&self, offset: usize, dst: &mut [u8]) {
        let p = self.ptr(offset, dst.len());
        // SAFETY: as above.
        unsafe { std::ptr::copy_nonoverlapping(p as *const u8, dst.as_mut_ptr(), dst.len()) }
    }

    /// Fill `[offset, offset + len)` with `byte`. Used by arena
    /// recycling to scrub a retired region before another tenant maps
    /// it — zeroing restores the freshly-`new` contract, a poison
    /// pattern makes use-before-init visible in debug builds.
    #[inline]
    pub fn fill(&self, offset: usize, len: usize, byte: u8) {
        let p = self.ptr(offset, len);
        // SAFETY: bounds checked above; see module docs for the
        // concurrency contract.
        unsafe { std::ptr::write_bytes(p, byte, len) }
    }

    /// `memmove` within the arena (ranges may overlap).
    #[inline]
    pub fn copy_within(&self, dst_offset: usize, src_offset: usize, len: usize) {
        let s = self.ptr(src_offset, len) as *const u8;
        let d = self.ptr(dst_offset, len);
        // SAFETY: both ranges bounds-checked; copy handles overlap.
        unsafe { std::ptr::copy(s, d, len) }
    }

    /// Strided gather/scatter within the arena: copies `nelems` elements
    /// of `elem` bytes from `src_offset` (stride `src_stride` elements)
    /// to `dst_offset` (stride `dst_stride` elements). This is the
    /// engine-room of `shmem_iput`/`shmem_iget`.
    pub fn copy_strided(
        &self,
        dst_offset: usize,
        dst_stride: usize,
        src_offset: usize,
        src_stride: usize,
        elem: usize,
        nelems: usize,
    ) {
        for i in 0..nelems {
            self.copy_within(
                dst_offset + i * dst_stride * elem,
                src_offset + i * src_stride * elem,
                elem,
            );
        }
    }

    /// Write one value at `offset` (unaligned).
    #[inline]
    pub fn write_val<T: Bits>(&self, offset: usize, v: T) {
        let p = self.ptr(offset, std::mem::size_of::<T>());
        // SAFETY: bounds checked; T: Bits allows byte-wise transport.
        unsafe { std::ptr::write_unaligned(p.cast::<T>(), v) }
    }

    /// Read one value at `offset` (unaligned).
    #[inline]
    pub fn read_val<T: Bits>(&self, offset: usize) -> T {
        let p = self.ptr(offset, std::mem::size_of::<T>());
        // SAFETY: as above.
        unsafe { std::ptr::read_unaligned(p.cast::<T>()) }
    }

    /// Atomic view of an aligned `u64` in the arena.
    ///
    /// # Panics
    /// Panics if `offset` is not 8-byte aligned (relative to the arena
    /// base, which is at least 8-byte aligned by allocation).
    #[inline]
    pub fn atomic_u64(&self, offset: usize) -> &AtomicU64 {
        assert!(offset.is_multiple_of(8), "atomic_u64 offset {offset} unaligned");
        let p = self.ptr(offset, 8);
        // SAFETY: in-bounds, aligned; AtomicU64 has the same layout as u64.
        unsafe { &*(p as *const AtomicU64) }
    }

    /// Atomic view of an aligned `u32` in the arena.
    #[inline]
    pub fn atomic_u32(&self, offset: usize) -> &AtomicU32 {
        assert!(offset.is_multiple_of(4), "atomic_u32 offset {offset} unaligned");
        let p = self.ptr(offset, 4);
        // SAFETY: as above.
        unsafe { &*(p as *const AtomicU32) }
    }

    /// Raw pointer to `len` bytes at `offset` (bounds-checked). Callers
    /// take on the module's concurrency contract; used by TSHMEM's
    /// local-slice accessors.
    #[inline]
    pub fn raw(&self, offset: usize, len: usize) -> *mut u8 {
        self.ptr(offset, len)
    }

    /// Copy `len` bytes between two distinct arenas (e.g. a private
    /// segment and common memory) in one `memcpy`.
    ///
    /// # Panics
    /// Panics on out-of-bounds ranges or if `dst` and `src` are the same
    /// arena (use [`copy_within`](Self::copy_within) for that).
    pub fn copy_between(dst: &CommonMemory, dst_off: usize, src: &CommonMemory, src_off: usize, len: usize) {
        assert!(
            !std::ptr::eq(dst, src),
            "copy_between requires distinct arenas; use copy_within"
        );
        let d = dst.ptr(dst_off, len);
        let s = src.ptr(src_off, len) as *const u8;
        // SAFETY: bounds checked; distinct allocations cannot overlap.
        unsafe { std::ptr::copy_nonoverlapping(s, d, len) }
    }

    /// Volatile (racy-tolerant) read of a value — what `shmem_wait`
    /// polls with. Uses an acquire fence so written data is visible once
    /// the awaited value appears.
    #[inline]
    pub fn read_volatile<T: Bits>(&self, offset: usize) -> T {
        let p = self.ptr(offset, std::mem::size_of::<T>());
        // SAFETY: bounds checked.
        let v = unsafe { std::ptr::read_volatile(p.cast::<T>()) };
        std::sync::atomic::fence(Ordering::Acquire);
        v
    }
}

impl std::fmt::Debug for CommonMemory {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CommonMemory")
            .field("len", &self.buf.len())
            .field("homing", &self.homing)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cm(len: usize) -> Arc<CommonMemory> {
        CommonMemory::new(len, Homing::HashForHome)
    }

    #[test]
    fn bytes_roundtrip() {
        let m = cm(64);
        m.write_bytes(3, &[1, 2, 3, 4]);
        let mut out = [0u8; 4];
        m.read_bytes(3, &mut out);
        assert_eq!(out, [1, 2, 3, 4]);
    }

    #[test]
    fn typed_roundtrip_unaligned() {
        let m = cm(64);
        m.write_val::<f64>(5, 2.5);
        assert_eq!(m.read_val::<f64>(5), 2.5);
        m.write_val::<u32>(1, 0xDEAD_BEEF);
        assert_eq!(m.read_val::<u32>(1), 0xDEAD_BEEF);
    }

    #[test]
    fn copy_within_overlapping() {
        let m = cm(16);
        m.write_bytes(0, &[1, 2, 3, 4, 5, 6, 7, 8]);
        m.copy_within(2, 0, 8); // overlapping forward copy
        let mut out = [0u8; 10];
        m.read_bytes(0, &mut out);
        assert_eq!(out, [1, 2, 1, 2, 3, 4, 5, 6, 7, 8]);
    }

    #[test]
    fn strided_copy_gathers() {
        let m = cm(256);
        // Source: u32 elements at stride 2.
        for i in 0..4u32 {
            m.write_val::<u32>((i as usize) * 8, i + 10);
        }
        m.copy_strided(128, 1, 0, 2, 4, 4);
        for i in 0..4u32 {
            assert_eq!(m.read_val::<u32>(128 + (i as usize) * 4), i + 10);
        }
    }

    #[test]
    fn atomics_are_shared() {
        let m = cm(64);
        m.atomic_u64(8).store(7, Ordering::SeqCst);
        assert_eq!(m.read_val::<u64>(8), 7);
        m.atomic_u32(4).fetch_add(5, Ordering::SeqCst);
        assert_eq!(m.read_val::<u32>(4), 5);
    }

    #[test]
    fn cross_thread_visibility() {
        let m = cm(64);
        let m2 = m.clone();
        let t = std::thread::spawn(move || {
            m2.write_val::<u64>(16, 99);
            m2.atomic_u64(0).store(1, Ordering::Release);
        });
        while m.atomic_u64(0).load(Ordering::Acquire) == 0 {
            std::hint::spin_loop();
        }
        assert_eq!(m.read_val::<u64>(16), 99);
        t.join().unwrap();
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn oob_read_panics() {
        cm(8).read_val::<u64>(1);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn oob_overflowing_offset_panics() {
        cm(8).write_bytes(usize::MAX - 2, &[0, 0, 0, 0]);
    }

    #[test]
    #[should_panic(expected = "unaligned")]
    fn unaligned_atomic_panics() {
        cm(64).atomic_u64(4);
    }

    #[test]
    fn volatile_read_sees_value() {
        let m = cm(8);
        m.write_val::<u32>(0, 42);
        assert_eq!(m.read_volatile::<u32>(0), 42);
    }
}
