//! Memory fences — the analog of `tmc_mem_fence()`.
//!
//! TSHMEM implements `shmem_quiet()` with `tmc_mem_fence()`, a fence that
//! blocks until all of the issuing tile's stores are visible, and aliases
//! `shmem_fence()` to it (paper Section IV-C2). On this substrate the
//! equivalent visibility guarantee is a sequentially-consistent atomic
//! fence.

use std::sync::atomic::{fence, Ordering};

/// Block until all prior stores by this thread are visible to all other
/// threads (the `tmc_mem_fence()` analog).
#[inline]
pub fn mem_fence() {
    fence(Ordering::SeqCst);
}

/// A release fence: prior stores are ordered before any subsequent store
/// that another thread acquires on. Used internally where full SC is not
/// required.
#[inline]
pub fn release_fence() {
    fence(Ordering::Release);
}

/// An acquire fence: subsequent loads observe data written before a
/// release the thread has synchronized with.
#[inline]
pub fn acquire_fence() {
    fence(Ordering::Acquire);
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
    use std::sync::Arc;

    #[test]
    fn fence_publishes_plain_stores() {
        // Message-passing litmus: data written before the fence+flag must
        // be visible after observing the flag.
        for _ in 0..200 {
            let data = Arc::new(AtomicU64::new(0));
            let flag = Arc::new(AtomicBool::new(false));
            let (d2, f2) = (data.clone(), flag.clone());
            let t = std::thread::spawn(move || {
                d2.store(42, Ordering::Relaxed);
                mem_fence();
                f2.store(true, Ordering::Relaxed);
            });
            while !flag.load(Ordering::Relaxed) {
                std::hint::spin_loop();
            }
            acquire_fence();
            assert_eq!(data.load(Ordering::Relaxed), 42);
            t.join().unwrap();
        }
    }

    #[test]
    fn fences_do_not_deadlock_or_panic() {
        mem_fence();
        release_fence();
        acquire_fence();
    }
}
