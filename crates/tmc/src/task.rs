//! Task-to-tile binding: one task per tile, the configuration TSHMEM
//! requires for its spin-barrier and UDN usage.
//!
//! The real launcher forks one process per tile and binds it; our analog
//! spawns one named thread per PE. (Hard CPU affinity is not portable
//! from std; the binding here is logical — each PE owns exactly one tile
//! id for the lifetime of the run, which is the property the protocols
//! rely on.)

/// Run `f(tile)` on `n` logical tiles, one thread each; returns results
/// indexed by tile.
///
/// # Panics
/// Propagates the first panicking tile's panic.
pub fn run_on_tiles<R, F>(n: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Send + Sync,
{
    assert!(n > 0, "need at least one tile");
    std::thread::scope(|s| {
        let handles: Vec<_> = (0..n)
            .map(|tile| {
                let f = &f;
                std::thread::Builder::new()
                    .name(format!("tile-{tile}"))
                    .spawn_scoped(s, move || f(tile))
                    .expect("spawn tile thread")
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().unwrap_or_else(|p| std::panic::resume_unwind(p)))
            .collect()
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_indexed_by_tile() {
        let out = run_on_tiles(8, |t| t * t);
        assert_eq!(out, vec![0, 1, 4, 9, 16, 25, 36, 49]);
    }

    #[test]
    fn threads_are_named() {
        let names = run_on_tiles(3, |_| std::thread::current().name().map(String::from));
        assert_eq!(names[2].as_deref(), Some("tile-2"));
    }

    #[test]
    #[should_panic(expected = "tile 4 exploded")]
    fn tile_panic_propagates() {
        run_on_tiles(6, |t| {
            if t == 4 {
                panic!("tile 4 exploded");
            }
        });
    }

    #[test]
    #[should_panic(expected = "at least one")]
    fn zero_tiles_panics() {
        run_on_tiles(0, |_| ());
    }
}
