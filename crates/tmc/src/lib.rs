//! Analog of the Tilera Multicore Components (TMC) library.
//!
//! TSHMEM is built on four TMC facilities, all reproduced here with the
//! same semantics (paper Sections III and IV):
//!
//! * **Common memory** ([`common`]) — shared memory mapped at the *same
//!   virtual address* in every participating task, so tasks can share
//!   pointers into it. Our analog is a process-wide arena addressed by
//!   offset: an offset is valid in every PE, which is exactly the
//!   property TSHMEM's symmetric heap relies on.
//! * **Spin and sync barriers** ([`barrier`]) — the two TMC barrier
//!   flavors benchmarked in Figure 5: a polling barrier (fast, one task
//!   per tile only) and a scheduler-interacting barrier (slower, but
//!   tolerant of oversubscription).
//! * **Memory fences** ([`fence`]) — `tmc_mem_fence()`, which TSHMEM
//!   uses to implement `shmem_quiet()`.
//! * **Cycle counters and task binding** ([`cycles`], [`task`]) — the
//!   measurement and launch substrate.

pub mod barrier;
pub mod common;
pub mod cycles;
pub mod fence;
pub mod task;

pub use barrier::{SpinBarrier, SyncBarrier};
pub use common::CommonMemory;
pub use cycles::CycleClock;
pub use fence::mem_fence;
pub use task::run_on_tiles;
