//! Cycle counters — the analog of Tilera's `get_cycle_count()`.
//!
//! The native engine measures wall time and reports it in the modeled
//! device's cycle domain so that native measurements and timed-engine
//! results share units.

use std::time::Instant;

use tile_arch::clock::Clock;

/// A monotonic clock that reports elapsed time as device cycles.
#[derive(Clone, Copy, Debug)]
pub struct CycleClock {
    start: Instant,
    clock: Clock,
}

impl CycleClock {
    /// Start a cycle clock in `clock`'s domain.
    pub fn start(clock: Clock) -> Self {
        Self {
            start: Instant::now(),
            clock,
        }
    }

    /// Elapsed device cycles since `start`.
    pub fn cycles(&self) -> u64 {
        let ns = self.start.elapsed().as_nanos() as f64;
        (ns * self.clock.hz() as f64 / 1e9) as u64
    }

    /// Elapsed wall nanoseconds.
    pub fn elapsed_ns(&self) -> u64 {
        self.start.elapsed().as_nanos() as u64
    }

    /// Elapsed wall seconds.
    pub fn elapsed_s(&self) -> f64 {
        self.start.elapsed().as_secs_f64()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cycles_track_wall_time() {
        let c = CycleClock::start(Clock::from_hz(1_000_000_000));
        std::thread::sleep(std::time::Duration::from_millis(5));
        let cy = c.cycles();
        // 5 ms at 1 GHz = 5M cycles; allow generous slack for CI noise.
        assert!(cy >= 4_000_000, "got {cy}");
        assert!(c.elapsed_ns() >= 4_000_000);
        assert!(c.elapsed_s() > 0.0);
    }

    #[test]
    fn cycles_scale_with_clock_rate() {
        let fast = CycleClock::start(Clock::from_hz(1_000_000_000));
        let slow = CycleClock::start(Clock::from_hz(700_000_000));
        std::thread::sleep(std::time::Duration::from_millis(2));
        let (f, s) = (fast.cycles(), slow.cycles());
        let ratio = f as f64 / s as f64;
        assert!((1.2..1.7).contains(&ratio), "ratio {ratio}");
    }
}
