//! UDN packet format.
//!
//! A packet is one header word plus up to [`MAX_PAYLOAD_WORDS`] payload
//! words. The header encodes the destination tile, the demux queue, and a
//! small software tag (TSHMEM uses the tag to multiplex protocol message
//! kinds over one queue). Words are 64-bit on TILE-Gx and 32-bit on
//! TILEPro; we model payloads as `u64` words and let the timed engine
//! charge the device's actual word width.

/// Hardware limit: 127 payload words per receiving demux queue slot.
pub const MAX_PAYLOAD_WORDS: usize = 127;

/// Words a payload can hold without touching the allocator. TSHMEM's
/// protocol messages are at most six words (the strided service
/// request), so every protocol hop stays inline; only bulk chunked
/// transfers spill.
pub const INLINE_PAYLOAD_WORDS: usize = 6;

/// Packet payload storage: inline up to [`INLINE_PAYLOAD_WORDS`],
/// heap-spilled beyond (see `substrate::smallvec`).
pub type PayloadVec = substrate::smallvec::SmallVec<u64, INLINE_PAYLOAD_WORDS>;

/// Each tile has four demultiplexing queues.
pub const NUM_QUEUES: usize = 4;

/// Decoded header word.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Header {
    /// Destination tile (virtual CPU number within the active area).
    pub dest: u16,
    /// Source tile.
    pub src: u16,
    /// Demux queue at the destination (0..4).
    pub queue: u8,
    /// Software tag (message kind), 16 bits.
    pub tag: u16,
}

impl Header {
    /// Encode into a single 64-bit header word.
    pub fn encode(self) -> u64 {
        assert!((self.queue as usize) < NUM_QUEUES, "queue out of range");
        (self.dest as u64) | ((self.src as u64) << 16) | ((self.queue as u64) << 32) | ((self.tag as u64) << 40)
    }

    /// Decode from a header word.
    pub fn decode(word: u64) -> Self {
        Self {
            dest: (word & 0xffff) as u16,
            src: ((word >> 16) & 0xffff) as u16,
            queue: ((word >> 32) & 0xff) as u8,
            tag: ((word >> 40) & 0xffff) as u16,
        }
    }
}

/// A UDN packet: header plus payload words.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Packet {
    pub header: Header,
    pub payload: PayloadVec,
}

impl Packet {
    /// Build a packet, validating the hardware payload limit. Protocol-
    /// sized payloads (≤ [`INLINE_PAYLOAD_WORDS`] words) are stored
    /// inline — no allocation.
    ///
    /// # Panics
    /// Panics if the payload exceeds [`MAX_PAYLOAD_WORDS`].
    pub fn new(header: Header, payload: impl Into<PayloadVec>) -> Self {
        let payload = payload.into();
        assert!(
            payload.len() <= MAX_PAYLOAD_WORDS,
            "UDN payload of {} words exceeds the {MAX_PAYLOAD_WORDS}-word demux queue limit",
            payload.len()
        );
        Self { header, payload }
    }

    /// Total words on the wire (header + payload).
    pub fn wire_words(&self) -> usize {
        1 + self.payload.len()
    }
}

/// Split an arbitrary word buffer into maximum-size packet payloads.
/// TSHMEM's protocol messages always fit one packet, but helpers like
/// bulk static-variable redirection chunk through this.
pub fn chunk_words(words: &[u64]) -> impl Iterator<Item = &[u64]> {
    words.chunks(MAX_PAYLOAD_WORDS)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn header_roundtrip() {
        let h = Header {
            dest: 35,
            src: 14,
            queue: 3,
            tag: 0xBEEF,
        };
        assert_eq!(Header::decode(h.encode()), h);
    }

    #[test]
    fn header_roundtrip_extremes() {
        for (dest, src, queue, tag) in [(0, 0, 0, 0), (0xffff, 0xffff, 3, 0xffff)] {
            let h = Header { dest, src, queue, tag };
            assert_eq!(Header::decode(h.encode()), h);
        }
    }

    #[test]
    #[should_panic(expected = "queue out of range")]
    fn bad_queue_panics() {
        Header {
            dest: 0,
            src: 0,
            queue: 4,
            tag: 0,
        }
        .encode();
    }

    #[test]
    fn max_payload_accepted() {
        let p = Packet::new(
            Header { dest: 1, src: 0, queue: 0, tag: 0 },
            vec![0; MAX_PAYLOAD_WORDS],
        );
        assert_eq!(p.wire_words(), 128);
    }

    #[test]
    #[should_panic(expected = "exceeds")]
    fn oversized_payload_panics() {
        Packet::new(
            Header { dest: 1, src: 0, queue: 0, tag: 0 },
            vec![0; MAX_PAYLOAD_WORDS + 1],
        );
    }

    #[test]
    fn chunking_covers_everything() {
        let words: Vec<u64> = (0..300).collect();
        let chunks: Vec<_> = chunk_words(&words).collect();
        assert_eq!(chunks.len(), 3);
        assert_eq!(chunks[0].len(), 127);
        assert_eq!(chunks[2].len(), 300 - 254);
        let total: usize = chunks.iter().map(|c| c.len()).sum();
        assert_eq!(total, 300);
    }
}
