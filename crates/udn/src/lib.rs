//! User Dynamic Network (UDN) model.
//!
//! The UDN is Tilera's low-latency, user-accessible dynamic network:
//! software attaches a one-word header to a payload of up to 127 words
//! and the packet is wormhole-routed (dimension-order, one word per hop
//! per cycle) into one of four demultiplexing queues at the destination
//! tile (paper Section III-C).
//!
//! Two faces:
//!
//! * [`fabric`] — a **functional** fabric for the native engine: per-tile
//!   demux queues over MPMC channels, preserving the four-queue structure
//!   and payload limits while moving real data between threads.
//! * [`timing`] — the **latency model** for the timed engine, fitted to
//!   the paper's Table III (setup-and-teardown plus per-hop traversal).
//!
//! Both faces share [`packet::Packet`] and validate the same hardware
//! limits, so protocol code cannot accidentally exceed what the real
//! device would carry.

pub mod fabric;
pub mod packet;
pub mod timing;

pub use fabric::{UdnEndpoint, UdnFabric};
pub use packet::{Header, Packet, MAX_PAYLOAD_WORDS, NUM_QUEUES};
pub use timing::UdnModel;
