//! UDN latency model (paper Table III / Figure 4).
//!
//! One-way latency decomposes into *setup-and-teardown* and *network
//! traversal*; the traversal rate is one word per hop per cycle. The fit
//! lives in `tile_arch::UdnTimings`; this module packages it per test
//! area and adds the derived quantities the paper reports: halved
//! ping-ack averages and effective data throughput (doubled on TILE-Gx by
//! the 64-bit fabric).

use tile_arch::area::TestArea;
use tile_arch::mesh::TileId;

/// UDN latency model over a test area (virtual CPU numbering).
#[derive(Clone, Copy, Debug)]
pub struct UdnModel {
    pub area: TestArea,
}

impl UdnModel {
    pub fn new(area: TestArea) -> Self {
        Self { area }
    }

    /// One-way latency between two virtual tiles, ps.
    pub fn one_way_ps(&self, from: TileId, to: TileId, payload_words: usize) -> u64 {
        self.area.udn_one_way_ps(from, to, payload_words)
    }

    /// The paper's measurement: half of a (1-word send, 1-word ack)
    /// round trip, ns.
    pub fn ping_ack_half_ns(&self, from: TileId, to: TileId) -> f64 {
        let rt = self.one_way_ps(from, to, 1) + self.one_way_ps(to, from, 1);
        rt as f64 / 2.0 / 1e3
    }

    /// Effective data throughput of 1-word transfers in Mbps: one fabric
    /// word (8 bytes on Gx, 4 on Pro) per one-way latency.
    pub fn effective_throughput_mbps(&self, from: TileId, to: TileId) -> f64 {
        let bits = (self.area.device.word_bytes * 8) as f64;
        let ps = self.one_way_ps(from, to, 1) as f64;
        bits / (ps / 1e12) / 1e6
    }

    /// Per-protocol-message software overhead (send + matching receive),
    /// ps — charged by the timed engine's TSHMEM protocol paths on top of
    /// wire latency.
    pub fn sw_overhead_ps(&self) -> u64 {
        self.area
            .device
            .clock
            .cycles_to_ps(self.area.device.timings.udn.sw_overhead_cycles)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tile_arch::device::Device;

    fn gx() -> UdnModel {
        UdnModel::new(TestArea::paper_6x6(Device::tile_gx8036()))
    }

    fn pro() -> UdnModel {
        UdnModel::new(TestArea::paper_6x6(Device::tilepro64()))
    }

    #[test]
    fn table3_neighbor_averages() {
        // Table III neighbors: Gx 21-22 ns, Pro 18-19 ns.
        for (m, lo, hi) in [(gx(), 20.5, 22.5), (pro(), 17.5, 19.5)] {
            for (a, b) in [(14, 13), (14, 15), (14, 8), (14, 20)] {
                let ns = m.ping_ack_half_ns(a, b);
                assert!((lo..=hi).contains(&ns), "{}: {a}->{b} = {ns}", m.area.device.name);
            }
        }
    }

    #[test]
    fn table3_side_to_side_averages() {
        // Gx ~25-26 ns, Pro ~24-25 ns at 5 hops.
        for (m, lo, hi) in [(gx(), 24.5, 26.5), (pro(), 23.5, 25.7)] {
            for (a, b) in [(6, 11), (11, 6), (1, 31), (31, 1)] {
                let ns = m.ping_ack_half_ns(a, b);
                assert!((lo..=hi).contains(&ns), "{}: {a}->{b} = {ns}", m.area.device.name);
            }
        }
    }

    #[test]
    fn table3_corner_averages() {
        // Gx ~31-32 ns, Pro ~33 ns at 10 hops: the Gx/Pro order flips.
        for (a, b) in [(0, 35), (35, 0), (5, 30), (30, 5)] {
            let g = gx().ping_ack_half_ns(a, b);
            let p = pro().ping_ack_half_ns(a, b);
            assert!((30.5..=32.5).contains(&g), "gx corner {g}");
            assert!((32.0..=34.0).contains(&p), "pro corner {p}");
            assert!(p > g);
        }
    }

    #[test]
    fn effective_throughput_ordering_matches_paper() {
        // Paper: 2900/2500/2000 Mbps on Gx and 1700/1300/980 on Pro for
        // neighbor / side-to-side / corner. The 64-bit fabric doubles
        // the Gx's effective data per packet.
        let g = gx();
        let p = pro();
        let gn = g.effective_throughput_mbps(14, 13);
        let gs = g.effective_throughput_mbps(6, 11);
        let gc = g.effective_throughput_mbps(0, 35);
        assert!(gn > gs && gs > gc, "distance degrades throughput: {gn} {gs} {gc}");
        assert!((2700.0..3200.0).contains(&gn), "gx neighbor {gn}");
        assert!((1900.0..2200.0).contains(&gc), "gx corner {gc}");
        let pn = p.effective_throughput_mbps(14, 13);
        let pc = p.effective_throughput_mbps(0, 35);
        assert!((1600.0..1800.0).contains(&pn), "pro neighbor {pn}");
        assert!((900.0..1050.0).contains(&pc), "pro corner {pc}");
        // Gx beats Pro everywhere on effective throughput.
        assert!(gn > pn && gc > pc);
    }

    #[test]
    fn sw_overhead_scales_with_clock() {
        assert_eq!(gx().sw_overhead_ps(), 25_000); // 25 cycles @ 1 GHz
        assert!(pro().sw_overhead_ps() > gx().sw_overhead_ps());
    }
}
