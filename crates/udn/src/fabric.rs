//! Functional UDN fabric for the native engine.
//!
//! Each tile owns four demultiplexing queues, modeled as MPMC channels of
//! whole packets (wormhole delivery is atomic from software's point of
//! view — the receive side pops complete packets). The fabric validates
//! the same payload limits as the hardware so that protocol code tested
//! here would also fit the real device.

use substrate::channel::{bounded, unbounded, Receiver, RecvTimeoutError, Sender, TrySendError};
use std::time::Duration;

use crate::packet::{Header, Packet, MAX_PAYLOAD_WORDS, NUM_QUEUES};

/// One tile's connection to the UDN: four receive queues plus the send
/// side of every other tile's queues.
///
/// Cloning shares the underlying queues (MPMC): TSHMEM clones a PE's
/// endpoint into its interrupt-service thread, which consumes only queue
/// [`crate::packet::NUM_QUEUES`]`- 1` while the PE consumes the rest.
#[derive(Clone)]
pub struct UdnEndpoint {
    tile: usize,
    rx: Vec<Receiver<Packet>>,
    tx: Vec<Vec<Sender<Packet>>>, // tx[tile][queue]
}

impl UdnEndpoint {
    /// This endpoint's tile id.
    pub fn tile(&self) -> usize {
        self.tile
    }

    /// Number of tiles on the fabric.
    pub fn tiles(&self) -> usize {
        self.tx.len()
    }

    /// Send `payload` to `dest`'s demux queue `queue` with software tag
    /// `tag`.
    ///
    /// # Panics
    /// Panics if the payload exceeds the 127-word hardware limit, the
    /// queue index is out of range, or `dest` is unknown.
    pub fn send(&self, dest: usize, queue: usize, tag: u16, payload: &[u64]) {
        assert!(queue < NUM_QUEUES, "queue {queue} out of range");
        assert!(dest < self.tx.len(), "unknown destination tile {dest}");
        let pkt = Packet::new(
            Header {
                dest: dest as u16,
                src: self.tile as u16,
                queue: queue as u8,
                tag,
            },
            payload,
        );
        // The receiver can only have hung up if its PE exited early —
        // surfacing that as a panic beats silently dropping the packet.
        self.tx[dest][queue]
            .send(pkt)
            .expect("UDN destination endpoint dropped");
    }

    /// Non-blocking send: `false` when `dest`'s queue is full instead of
    /// stalling on flow control. Protocol code that must stay live while
    /// the destination backs up (e.g. barrier tokens on bounded queues)
    /// retries this while draining its own demux queues — the software
    /// analog of the UDN interrupt handler running during a stalled send.
    ///
    /// # Panics
    /// Same validation as [`send`](Self::send); also panics if the
    /// destination endpoint was dropped.
    pub fn try_send(&self, dest: usize, queue: usize, tag: u16, payload: &[u64]) -> bool {
        assert!(queue < NUM_QUEUES, "queue {queue} out of range");
        assert!(dest < self.tx.len(), "unknown destination tile {dest}");
        let pkt = Packet::new(
            Header {
                dest: dest as u16,
                src: self.tile as u16,
                queue: queue as u8,
                tag,
            },
            payload,
        );
        match self.tx[dest][queue].try_send(pkt) {
            Ok(()) => true,
            Err(TrySendError::Full(_)) => false,
            Err(TrySendError::Disconnected(_)) => panic!("UDN destination endpoint dropped"),
        }
    }

    /// Send a buffer larger than one packet by chunking (keeps per-packet
    /// payloads within the hardware limit).
    pub fn send_bulk(&self, dest: usize, queue: usize, tag: u16, words: &[u64]) {
        if words.is_empty() {
            self.send(dest, queue, tag, &[]);
            return;
        }
        for chunk in words.chunks(MAX_PAYLOAD_WORDS) {
            self.send(dest, queue, tag, chunk);
        }
    }

    /// Blocking receive from demux queue `queue`.
    pub fn recv(&self, queue: usize) -> Packet {
        self.rx[queue].recv().expect("UDN fabric disconnected")
    }

    /// Blocking receive with a timeout; `None` on timeout.
    pub fn recv_timeout(&self, queue: usize, timeout: Duration) -> Option<Packet> {
        match self.rx[queue].recv_timeout(timeout) {
            Ok(p) => Some(p),
            Err(RecvTimeoutError::Timeout) => None,
            Err(RecvTimeoutError::Disconnected) => panic!("UDN fabric disconnected"),
        }
    }

    /// Non-blocking receive.
    pub fn try_recv(&self, queue: usize) -> Option<Packet> {
        self.rx[queue].try_recv().ok()
    }

    /// Current occupancy (packets) of this endpoint's demux queue —
    /// observability for stall diagnosis; the value is a racy snapshot.
    pub fn queue_len(&self, queue: usize) -> usize {
        self.rx[queue].len()
    }

    /// Current occupancy of a *destination* tile's demux queue, as seen
    /// from this endpoint's send side — a racy snapshot used by the
    /// fault plane to clamp effective queue depth below the fabric's
    /// real bound.
    pub fn dest_queue_len(&self, dest: usize, queue: usize) -> usize {
        self.tx[dest][queue].len()
    }

    /// Clone of the receiver for `queue` — TSHMEM hands queue 3's
    /// receiver to its interrupt-service thread (the analog of Tilera's
    /// UDN interrupts).
    pub fn queue_receiver(&self, queue: usize) -> Receiver<Packet> {
        self.rx[queue].clone()
    }

    /// A send-only handle usable from service threads.
    pub fn sender(&self) -> UdnSender {
        UdnSender {
            tile: self.tile,
            tx: self.tx.clone(),
        }
    }
}

/// Send-only handle to the fabric (cheaply cloneable).
#[derive(Clone)]
pub struct UdnSender {
    tile: usize,
    tx: Vec<Vec<Sender<Packet>>>,
}

impl UdnSender {
    /// Non-blocking send; `false` when the destination queue is full.
    /// Wakeup broadcasts use this so an aborter can never stall on a
    /// backed-up queue (whose receiver is not parked on empty anyway).
    pub fn try_send(&self, dest: usize, queue: usize, tag: u16, payload: &[u64]) -> bool {
        assert!(queue < NUM_QUEUES, "queue {queue} out of range");
        let pkt = Packet::new(
            Header {
                dest: dest as u16,
                src: self.tile as u16,
                queue: queue as u8,
                tag,
            },
            payload,
        );
        match self.tx[dest][queue].try_send(pkt) {
            Ok(()) => true,
            Err(TrySendError::Full(_)) => false,
            Err(TrySendError::Disconnected(_)) => panic!("UDN destination endpoint dropped"),
        }
    }

    pub fn send(&self, dest: usize, queue: usize, tag: u16, payload: &[u64]) {
        assert!(queue < NUM_QUEUES, "queue {queue} out of range");
        let pkt = Packet::new(
            Header {
                dest: dest as u16,
                src: self.tile as u16,
                queue: queue as u8,
                tag,
            },
            payload,
        );
        self.tx[dest][queue]
            .send(pkt)
            .expect("UDN destination endpoint dropped");
    }
}

/// The whole-fabric constructor: builds `tiles` endpoints wired all-to-all.
pub struct UdnFabric;

#[allow(clippy::new_ret_no_self)] // a fabric *is* its set of endpoints
impl UdnFabric {
    /// Create endpoints for `tiles` tiles with unbounded queues —
    /// TSHMEM's protocol traffic is small and self-limiting, and
    /// unbounded buffering cannot deadlock.
    pub fn new(tiles: usize) -> Vec<UdnEndpoint> {
        Self::build(tiles, None)
    }

    /// Create endpoints with **bounded** demux queues of
    /// `capacity_packets` each — the hardware-faithful mode: a sender
    /// blocks (backpressure into the mesh) when the destination queue is
    /// full, exactly as wormhole flow control would stall it. The real
    /// device holds 127 words per queue (1–2 packets' worth); protocols
    /// run under this mode in tests to prove they cannot deadlock on
    /// finite buffering.
    pub fn new_bounded(tiles: usize, capacity_packets: usize) -> Vec<UdnEndpoint> {
        assert!(capacity_packets > 0, "queues need capacity for at least one packet");
        Self::build(tiles, Some(capacity_packets))
    }

    fn build(tiles: usize, capacity: Option<usize>) -> Vec<UdnEndpoint> {
        assert!(tiles > 0);
        let mut senders: Vec<Vec<Sender<Packet>>> = Vec::with_capacity(tiles);
        let mut receivers: Vec<Vec<Receiver<Packet>>> = Vec::with_capacity(tiles);
        for _ in 0..tiles {
            let mut qs = Vec::with_capacity(NUM_QUEUES);
            let mut qr = Vec::with_capacity(NUM_QUEUES);
            for _ in 0..NUM_QUEUES {
                let (s, r) = match capacity {
                    Some(c) => bounded(c),
                    None => unbounded(),
                };
                qs.push(s);
                qr.push(r);
            }
            senders.push(qs);
            receivers.push(qr);
        }
        receivers
            .into_iter()
            .enumerate()
            .map(|(tile, rx)| UdnEndpoint {
                tile,
                rx,
                tx: senders.clone(),
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn point_to_point_delivery() {
        let eps = UdnFabric::new(4);
        eps[0].send(3, 1, 7, &[10, 20, 30]);
        let p = eps[3].recv(1);
        assert_eq!(p.header.src, 0);
        assert_eq!(p.header.dest, 3);
        assert_eq!(p.header.tag, 7);
        assert_eq!(p.payload, vec![10, 20, 30]);
    }

    #[test]
    fn queues_do_not_cross() {
        let eps = UdnFabric::new(2);
        eps[0].send(1, 0, 0, &[1]);
        eps[0].send(1, 2, 0, &[2]);
        assert!(eps[1].try_recv(1).is_none());
        assert_eq!(eps[1].recv(2).payload, vec![2]);
        assert_eq!(eps[1].recv(0).payload, vec![1]);
    }

    #[test]
    fn fifo_order_per_sender_per_queue() {
        let eps = UdnFabric::new(2);
        for i in 0..100u64 {
            eps[0].send(1, 0, 0, &[i]);
        }
        for i in 0..100u64 {
            assert_eq!(eps[1].recv(0).payload, vec![i]);
        }
    }

    #[test]
    fn send_to_self_works() {
        let eps = UdnFabric::new(1);
        eps[0].send(0, 0, 5, &[9]);
        assert_eq!(eps[0].recv(0).payload, vec![9]);
    }

    #[test]
    fn bulk_send_chunks_within_limit() {
        let eps = UdnFabric::new(2);
        let words: Vec<u64> = (0..300).collect();
        eps[0].send_bulk(1, 0, 1, &words);
        let mut got = Vec::new();
        while got.len() < 300 {
            let p = eps[1].recv(0);
            assert!(p.payload.len() <= MAX_PAYLOAD_WORDS);
            got.extend(p.payload);
        }
        assert_eq!(got, words);
    }

    #[test]
    fn bulk_send_empty_still_delivers_a_packet() {
        let eps = UdnFabric::new(2);
        eps[0].send_bulk(1, 0, 9, &[]);
        let p = eps[1].recv(0);
        assert!(p.payload.is_empty());
        assert_eq!(p.header.tag, 9);
    }

    #[test]
    fn recv_timeout_times_out() {
        let eps = UdnFabric::new(2);
        assert!(eps[1]
            .recv_timeout(0, Duration::from_millis(10))
            .is_none());
    }

    #[test]
    fn cross_thread_delivery() {
        let mut eps = UdnFabric::new(2);
        let e1 = eps.pop().unwrap();
        let e0 = eps.pop().unwrap();
        let t = std::thread::spawn(move || {
            let p = e1.recv(0);
            e1.send(0, 0, 0, &[p.payload[0] * 2]);
        });
        e0.send(1, 0, 0, &[21]);
        assert_eq!(e0.recv(0).payload, vec![42]);
        t.join().unwrap();
    }

    #[test]
    fn sender_handle_sends_from_service_thread() {
        let eps = UdnFabric::new(2);
        let s = eps[0].sender();
        std::thread::spawn(move || s.send(1, 3, 2, &[5]))
            .join()
            .unwrap();
        assert_eq!(eps[1].recv(3).payload, vec![5]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_queue_send_panics() {
        let eps = UdnFabric::new(1);
        eps[0].send(0, 4, 0, &[]);
    }

    #[test]
    fn bounded_fabric_applies_backpressure() {
        let mut eps = UdnFabric::new_bounded(2, 2);
        let e1 = eps.pop().unwrap();
        let e0 = eps.pop().unwrap();
        // Fill the queue, then show the next send blocks until the
        // receiver drains (sender thread + timing probe).
        e0.send(1, 0, 0, &[1]);
        e0.send(1, 0, 0, &[2]);
        let t = std::thread::spawn(move || {
            let t0 = std::time::Instant::now();
            e0.send(1, 0, 0, &[3]); // blocks: queue full
            t0.elapsed()
        });
        std::thread::sleep(Duration::from_millis(50));
        assert_eq!(e1.recv(0).payload, vec![1]); // drain one slot
        let blocked_for = t.join().unwrap();
        assert!(
            blocked_for >= Duration::from_millis(30),
            "sender should have stalled, blocked {blocked_for:?}"
        );
        assert_eq!(e1.recv(0).payload, vec![2]);
        assert_eq!(e1.recv(0).payload, vec![3]);
    }

    #[test]
    fn bounded_fabric_delivers_heavy_traffic() {
        // Many packets through tiny queues: flow control, not loss.
        let mut eps = UdnFabric::new_bounded(2, 1);
        let e1 = eps.pop().unwrap();
        let e0 = eps.pop().unwrap();
        let sender = std::thread::spawn(move || {
            for i in 0..500u64 {
                e0.send(1, (i % 3) as usize, 0, &[i]);
            }
        });
        let mut got = 0u64;
        for i in 0..500u64 {
            let p = e1.recv((i % 3) as usize);
            assert_eq!(p.payload, vec![i]);
            got += 1;
        }
        sender.join().unwrap();
        assert_eq!(got, 500);
    }

    #[test]
    fn try_send_reports_full_queue_without_blocking() {
        let eps = UdnFabric::new_bounded(2, 2);
        assert!(eps[0].try_send(1, 0, 0, &[1]));
        assert!(eps[0].try_send(1, 0, 0, &[2]));
        assert!(!eps[0].try_send(1, 0, 0, &[3])); // full, returns instead of stalling
        assert_eq!(eps[1].recv(0).payload, vec![1]);
        assert!(eps[0].try_send(1, 0, 0, &[3])); // slot freed
    }

    #[test]
    #[should_panic(expected = "capacity")]
    fn zero_capacity_rejected() {
        UdnFabric::new_bounded(2, 0);
    }
}
