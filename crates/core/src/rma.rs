//! One-sided data transfers: elemental, bulk, and strided puts/gets,
//! with the paper's address classification (Section IV-B).
//!
//! Every transfer classifies its target and source:
//!
//! | case (target–source) | put | get |
//! |---|---|---|
//! | dynamic–dynamic | direct local `memcpy` | direct local `memcpy` |
//! | dynamic–static  | direct (read own private, write arena) | **redirected**: remote services a put into my arena |
//! | static–dynamic  | **redirected**: remote services a get from my arena | direct (read arena, write own private) |
//! | static–static   | **temp-assisted**: copy to shared temp, then redirect | **temp-assisted**: redirect into my temp, then copy |
//!
//! Redirection interrupts the remote tile over the UDN ([`crate::service`]);
//! the temp-assisted cases pay one extra shared-memory copy — exactly the
//! cost ladder of Figure 7.

use crate::ctx::{byte_view, byte_view_mut, ShmemCtx};
use crate::fabric::{ProtoMsg, Q_REPLY, Q_SERVICE, RmwOp, RmwWidth};
use crate::service::{
    encode_request, encode_strided_request, TAG_SDONE, TAG_SGET, TAG_SGETS, TAG_SPUT, TAG_SPUTS,
};
use crate::symm::{AddrClass, Bits, Sym};

/// One outstanding non-blocking operation, tracked per context and
/// completed by [`ShmemCtx::quiet`] (or the internal drain every
/// barrier-entering operation performs).
#[derive(Clone, Copy, Debug)]
pub(crate) enum PendingOp {
    /// A dynamic-target nbi put whose source bytes were captured into
    /// the context's stage buffer at issue; applied with a single
    /// `arena_write` at completion.
    StagedPut {
        pe: usize,
        dest_global: usize,
        stage_off: usize,
        len: usize,
    },
    /// A redirected nbi request already queued at `pe`'s service
    /// context; completion only awaits the `TAG_SDONE` reply carrying
    /// `token`. Multiple requests pipeline through the remote handler,
    /// which is where the nbi overlap win comes from.
    AwaitReply { pe: usize, token: u64 },
}

impl PendingOp {
    fn pe(&self) -> usize {
        match self {
            PendingOp::StagedPut { pe, .. } | PendingOp::AwaitReply { pe, .. } => *pe,
        }
    }
}

/// How `put_signal` updates the signal word after delivering the
/// payload (`SHMEM_SIGNAL_SET` / `SHMEM_SIGNAL_ADD`).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SignalOp {
    /// Overwrite the signal word.
    Set,
    /// Atomically add to the signal word.
    Add,
}

impl ShmemCtx {
    // --- elemental (`shmem_T_p` / `shmem_T_g`) --------------------------

    /// Write one element to `target[index]` on PE `pe`.
    pub fn p<T: Bits>(&self, target: &Sym<T>, index: usize, value: T, pe: usize) {
        self.put(target, index, std::slice::from_ref(&value), pe);
    }

    /// Read one element from `source[index]` on PE `pe`.
    pub fn g<T: Bits>(&self, source: &Sym<T>, index: usize, pe: usize) -> T {
        let mut out = [unsafe { std::mem::zeroed::<T>() }];
        self.get(&mut out, source, index, pe);
        out[0]
    }

    // --- bulk (`shmem_put` / `shmem_get` / `shmem_putmem`...) -----------

    /// Put `src` into `target[index..]` on PE `pe` from a local buffer.
    ///
    /// Local buffers are private to this PE, so a static-class target
    /// takes the temp-assisted path (a local Rust slice is the moral
    /// equivalent of static/stack memory — the remote tile cannot read
    /// it directly).
    pub fn put<T: Bits>(&self, target: &Sym<T>, index: usize, src: &[T], pe: usize) {
        self.check_pe(pe);
        self.flush_pending_dest(pe);
        assert!(index + src.len() <= target.len(), "put out of bounds");
        let bytes = byte_view(src);
        {
            let mut s = self.stats.borrow_mut();
            s.puts += 1;
            s.put_bytes += bytes.len() as u64;
        }
        let toff = target.elem_offset(index);
        match target.class() {
            AddrClass::Dynamic => self.fab.arena_write(self.go(pe, toff), bytes),
            AddrClass::Static if pe == self.my_pe() => self.fab.private_write(toff, bytes),
            AddrClass::Static => self.put_static_via_temp(pe, toff, bytes),
        }
    }

    /// Get `source[index..]` on PE `pe` into a local buffer.
    pub fn get<T: Bits>(&self, dst: &mut [T], source: &Sym<T>, index: usize, pe: usize) {
        self.check_pe(pe);
        self.flush_pending_dest(pe);
        assert!(index + dst.len() <= source.len(), "get out of bounds");
        {
            let mut s = self.stats.borrow_mut();
            s.gets += 1;
            s.get_bytes += std::mem::size_of_val(dst) as u64;
        }
        self.get_body(dst, source, index, pe);
    }

    /// Class dispatch shared by [`get`](Self::get) and
    /// [`get_nbi`](Self::get_nbi) (which differ only in counters and
    /// pending-set bookkeeping).
    fn get_body<T: Bits>(&self, dst: &mut [T], source: &Sym<T>, index: usize, pe: usize) {
        let soff = source.elem_offset(index);
        let bytes = byte_view_mut(dst);
        match source.class() {
            AddrClass::Dynamic => self.fab.arena_read(self.go(pe, soff), bytes),
            AddrClass::Static if pe == self.my_pe() => self.fab.private_read(soff, bytes),
            AddrClass::Static => self.get_static_via_temp(pe, soff, bytes),
        }
    }

    /// Symmetric-to-symmetric put: `target[toff..toff+n]` on PE `pe`
    /// receives `source[soff..soff+n]` from this PE. This is the form
    /// that exercises all four Figure 7 cases.
    pub fn put_sym<T: Bits>(
        &self,
        target: &Sym<T>,
        toff: usize,
        source: &Sym<T>,
        soff: usize,
        n: usize,
        pe: usize,
    ) {
        self.check_pe(pe);
        self.flush_pending_dest(pe);
        assert!(toff + n <= target.len(), "put_sym target out of bounds");
        assert!(soff + n <= source.len(), "put_sym source out of bounds");
        let len = n * std::mem::size_of::<T>();
        if len == 0 {
            return;
        }
        {
            let mut s = self.stats.borrow_mut();
            s.puts += 1;
            s.put_bytes += len as u64;
        }
        let t = target.elem_offset(toff);
        let s = source.elem_offset(soff);
        let me = self.my_pe();
        match (target.class(), source.class()) {
            // dynamic-dynamic: plain shared-memory copy.
            (AddrClass::Dynamic, AddrClass::Dynamic) => {
                self.fab.arena_copy(self.go(pe, t), self.go(me, s), len);
            }
            // dynamic-static: the local tile can read its own private
            // source and write the remote arena directly.
            (AddrClass::Dynamic, AddrClass::Static) => {
                self.bounce_private_to_arena(self.go(pe, t), s, len);
            }
            // static target on ourselves: direct private access.
            (AddrClass::Static, _) if pe == me => match source.class() {
                AddrClass::Dynamic => {
                    self.bounce_arena_to_private(t, self.go(me, s), len);
                }
                AddrClass::Static => {
                    self.with_scratch(len, |buf| {
                        self.fab.private_read(s, buf);
                        self.fab.private_write(t, buf);
                    });
                }
            },
            // static-dynamic: redirect — the remote tile reads our arena
            // partition into its private target.
            (AddrClass::Static, AddrClass::Dynamic) => {
                self.redirect(pe, TAG_SPUT, t, self.go(me, s), len);
            }
            // static-static: copy to the shared temp first, then
            // redirect (the extra-copy penalty of Figure 7).
            (AddrClass::Static, AddrClass::Static) => {
                self.put_static_from_private(pe, t, s, len);
            }
        }
    }

    /// Symmetric-to-symmetric get: `target[toff..]` on this PE receives
    /// `source[soff..]` from PE `pe`.
    pub fn get_sym<T: Bits>(
        &self,
        target: &Sym<T>,
        toff: usize,
        source: &Sym<T>,
        soff: usize,
        n: usize,
        pe: usize,
    ) {
        self.check_pe(pe);
        self.flush_pending_dest(pe);
        assert!(toff + n <= target.len(), "get_sym target out of bounds");
        assert!(soff + n <= source.len(), "get_sym source out of bounds");
        let len = n * std::mem::size_of::<T>();
        if len == 0 {
            return;
        }
        {
            let mut s = self.stats.borrow_mut();
            s.gets += 1;
            s.get_bytes += len as u64;
        }
        let t = target.elem_offset(toff);
        let s = source.elem_offset(soff);
        let me = self.my_pe();
        match (target.class(), source.class()) {
            (AddrClass::Dynamic, AddrClass::Dynamic) => {
                self.fab.arena_copy(self.go(me, t), self.go(pe, s), len);
            }
            // static-dynamic get: local private target, readable arena
            // source — direct.
            (AddrClass::Static, AddrClass::Dynamic) => {
                self.bounce_arena_to_private(t, self.go(pe, s), len);
            }
            (_, AddrClass::Static) if pe == me => match target.class() {
                AddrClass::Dynamic => {
                    self.bounce_private_to_arena(self.go(me, t), s, len);
                }
                AddrClass::Static => {
                    self.with_scratch(len, |buf| {
                        self.fab.private_read(s, buf);
                        self.fab.private_write(t, buf);
                    });
                }
            },
            // dynamic-static get: redirect — remote puts its private
            // source straight into our arena target.
            (AddrClass::Dynamic, AddrClass::Static) => {
                self.redirect(pe, TAG_SGET, s, self.go(me, t), len);
            }
            // static-static get: redirect into our temp, then copy to
            // our private target.
            (AddrClass::Static, AddrClass::Static) => {
                self.get_static_to_private(pe, t, s, len);
            }
        }
    }

    // --- strided (`shmem_T_iput` / `shmem_T_iget`) ----------------------

    /// Strided put: for `i` in `0..nelems`, `src[sst*i]` goes to
    /// `target[tst*i + tidx]` on PE `pe` — the OpenSHMEM `iput` shape,
    /// with the element count explicit on both sides (the count is never
    /// derived from a buffer length, so iput and iget agree).
    ///
    /// Counted as **one** logical put of `nelems` elements. Static-class
    /// targets are serviced in temp-buffer-sized batches: the strided
    /// elements are gathered locally, staged contiguously in the shared
    /// temp, and scattered by the remote service handler — one redirect
    /// round-trip per `temp_bytes / size_of::<T>()` elements instead of
    /// one per element.
    // Mirrors the C `shmem_iput` signature.
    #[allow(clippy::too_many_arguments)]
    pub fn iput<T: Bits>(
        &self,
        target: &Sym<T>,
        tidx: usize,
        tst: usize,
        src: &[T],
        sst: usize,
        nelems: usize,
        pe: usize,
    ) {
        self.check_pe(pe);
        self.flush_pending_dest(pe);
        assert!(tst >= 1 && sst >= 1, "strides must be >= 1");
        if nelems == 0 {
            return;
        }
        assert!(
            (nelems - 1) * sst < src.len(),
            "iput source too small: need element {} of {}",
            (nelems - 1) * sst,
            src.len()
        );
        assert!(
            tidx + (nelems - 1) * tst < target.len(),
            "iput target out of bounds"
        );
        let esize = std::mem::size_of::<T>();
        {
            let mut s = self.stats.borrow_mut();
            s.puts += 1;
            s.put_bytes += (nelems * esize) as u64;
        }
        // Every downstream path wants the source contiguous. A unit-
        // stride source already is — borrow it; only a genuinely strided
        // source pays a gather.
        // cold: allocation only on the strided-source path; unit-stride
        // borrows `src` directly.
        let owned: Vec<T>;
        let gathered: &[T] = if sst == 1 && crate::fault::rma_fast_paths() {
            &src[..nelems]
        } else {
            owned = (0..nelems).map(|i| src[i * sst]).collect();
            &owned
        };
        let me = self.my_pe();
        match target.class() {
            // Unit-stride target: the whole run is one contiguous write.
            AddrClass::Dynamic if tst == 1 && crate::fault::rma_fast_paths() => {
                self.fab
                    .arena_write(self.go(pe, target.elem_offset(tidx)), byte_view(gathered));
            }
            AddrClass::Dynamic => {
                for (i, v) in gathered.iter().enumerate() {
                    self.fab.arena_write(
                        self.go(pe, target.elem_offset(tidx + i * tst)),
                        byte_view(std::slice::from_ref(v)),
                    );
                }
            }
            AddrClass::Static if pe == me && tst == 1 && crate::fault::rma_fast_paths() => {
                self.fab
                    .private_write(target.elem_offset(tidx), byte_view(gathered));
            }
            AddrClass::Static if pe == me => {
                for (i, v) in gathered.iter().enumerate() {
                    self.fab.private_write(
                        target.elem_offset(tidx + i * tst),
                        byte_view(std::slice::from_ref(v)),
                    );
                }
            }
            AddrClass::Static => {
                self.iput_static_via_temp(pe, target, tidx, tst, gathered);
            }
        }
    }

    /// Strided get: for `i` in `0..nelems`, `dst[dst_stride*i]` receives
    /// `source[sst*i + sidx]` from PE `pe`. Counted as **one** logical
    /// get of `nelems` elements; static-class sources batch through the
    /// temp buffer like [`ShmemCtx::iput`].
    // Mirrors the C `shmem_iget` signature.
    #[allow(clippy::too_many_arguments)]
    pub fn iget<T: Bits>(
        &self,
        dst: &mut [T],
        dst_stride: usize,
        source: &Sym<T>,
        sidx: usize,
        sst: usize,
        nelems: usize,
        pe: usize,
    ) {
        self.check_pe(pe);
        self.flush_pending_dest(pe);
        assert!(dst_stride >= 1 && sst >= 1, "strides must be >= 1");
        if nelems == 0 {
            return;
        }
        assert!(
            (nelems - 1) * dst_stride < dst.len(),
            "iget destination too small: need element {} of {}",
            (nelems - 1) * dst_stride,
            dst.len()
        );
        assert!(
            sidx + (nelems - 1) * sst < source.len(),
            "iget source out of bounds"
        );
        let esize = std::mem::size_of::<T>();
        {
            let mut s = self.stats.borrow_mut();
            s.gets += 1;
            s.get_bytes += (nelems * esize) as u64;
        }
        let me = self.my_pe();
        match source.class() {
            // Unit stride on both sides: one contiguous read, straight
            // into the caller's buffer — one copy, one trace event.
            AddrClass::Dynamic if sst == 1 && dst_stride == 1 && crate::fault::rma_fast_paths() => {
                self.fab.arena_read(
                    self.go(pe, source.elem_offset(sidx)),
                    byte_view_mut(&mut dst[..nelems]),
                );
            }
            // Contiguous source, strided destination: still one read (to
            // scratch), then a local scatter.
            AddrClass::Dynamic if sst == 1 && crate::fault::rma_fast_paths() => {
                self.with_scratch(nelems * esize, |buf| {
                    self.fab.arena_read(self.go(pe, source.elem_offset(sidx)), buf);
                    for i in 0..nelems {
                        byte_view_mut(std::slice::from_mut(&mut dst[i * dst_stride]))
                            .copy_from_slice(&buf[i * esize..(i + 1) * esize]);
                    }
                });
            }
            AddrClass::Dynamic => {
                for i in 0..nelems {
                    let mut tmp = [unsafe { std::mem::zeroed::<T>() }];
                    self.fab.arena_read(
                        self.go(pe, source.elem_offset(sidx + i * sst)),
                        byte_view_mut(&mut tmp),
                    );
                    dst[i * dst_stride] = tmp[0];
                }
            }
            AddrClass::Static if pe == me && sst == 1 && dst_stride == 1 && crate::fault::rma_fast_paths() => {
                self.fab.private_read(
                    source.elem_offset(sidx),
                    byte_view_mut(&mut dst[..nelems]),
                );
            }
            AddrClass::Static if pe == me => {
                for i in 0..nelems {
                    let mut tmp = [unsafe { std::mem::zeroed::<T>() }];
                    self.fab.private_read(
                        source.elem_offset(sidx + i * sst),
                        byte_view_mut(&mut tmp),
                    );
                    dst[i * dst_stride] = tmp[0];
                }
            }
            AddrClass::Static => {
                self.iget_static_via_temp(dst, dst_stride, source, sidx, sst, nelems, pe);
            }
        }
    }

    // --- `shmem_ptr` ----------------------------------------------------

    /// The analog of `shmem_ptr`: a raw pointer to `sym` on PE `pe` if
    /// it is directly addressable from this PE (dynamic objects always
    /// are on this shared-memory machine; remote static objects are not).
    pub fn ptr<T: Bits>(&self, sym: &Sym<T>, pe: usize) -> Option<*mut T> {
        self.check_pe(pe);
        match sym.class() {
            AddrClass::Dynamic => Some(
                self.fab
                    .arena_raw(self.go(pe, sym.offset()), sym.byte_len())
                    .cast::<T>(),
            ),
            AddrClass::Static if pe == self.my_pe() => {
                Some(self.fab.private_raw(sym.offset(), sym.byte_len()).cast::<T>())
            }
            AddrClass::Static => None,
        }
    }

    // --- redirection internals -------------------------------------------

    /// Whether `pe` is a *distinct* co-resident peer — on the coop
    /// engine, a PE multiplexed on the same worker, whose private
    /// segment is directly addressable while we hold the shared
    /// admission gate. Redirected traffic to such a peer degrades to
    /// the handler's one memcpy done locally (the POSH same-address-
    /// space argument), skipping the interrupt round trip entirely.
    #[inline]
    fn local_peer(&self, pe: usize) -> bool {
        pe != self.my_pe() && self.fab.co_resident(pe)
    }

    /// Perform a redirected request's effect directly on a co-resident
    /// peer (the service handler's single memcpy, executed by us).
    /// `TAG_SPUT` moves arena bytes into the peer's private segment;
    /// `TAG_SGET` moves the peer's private bytes into the arena.
    // cold: no allocation on this path.
    fn redirect_local(&self, pe: usize, tag: u16, priv_off: usize, arena_global: usize, len: usize) {
        self.stats.borrow_mut().locality_hits += 1;
        self.fab.quiet(); // same visibility point as the channel path
        match tag {
            TAG_SPUT => self.fab.peer_arena_to_private(pe, priv_off, arena_global, len),
            _ => self.fab.peer_private_to_arena(pe, arena_global, priv_off, len),
        }
    }

    /// Send a service request and await its completion reply. The reply
    /// wait matches by token: with nbi requests in flight, `TAG_SDONE`
    /// replies from different pipelined requests interleave on
    /// `Q_REPLY`, so a positional receive would steal another op's
    /// completion.
    fn redirect(&self, pe: usize, tag: u16, priv_off: usize, arena_global: usize, len: usize) {
        if self.local_peer(pe) {
            self.redirect_local(pe, tag, priv_off, arena_global, len);
            return;
        }
        self.stats.borrow_mut().redirected += 1;
        let token = self.next_token();
        self.fab.quiet(); // our arena-side data must be visible first
        self.fab
            .udn_send(pe, Q_SERVICE, tag, &encode_request(priv_off, arena_global, len, token));
        self.await_sdone(token);
    }

    /// Block until the `TAG_SDONE` reply carrying `token` arrives,
    /// stashing any other reply that lands first.
    fn await_sdone(&self, token: u64) {
        let reply = self.recv_matching(Q_REPLY, |m: &ProtoMsg| {
            m.tag == TAG_SDONE && m.payload.first() == Some(&token)
        });
        debug_assert_eq!(reply.payload[0], token);
    }

    /// Send a **strided** service request (one interrupt covers a whole
    /// temp-staged batch) and await its completion reply.
    #[allow(clippy::too_many_arguments)]
    fn redirect_strided(
        &self,
        pe: usize,
        tag: u16,
        priv_base: usize,
        stride_bytes: usize,
        esize: usize,
        count: usize,
        arena_global: usize,
    ) {
        if self.local_peer(pe) {
            // The strided handler's scatter/gather, executed locally
            // against the co-resident peer's private segment (same
            // stride collapse as the handler). cold: no allocation.
            self.stats.borrow_mut().locality_hits += 1;
            self.fab.quiet();
            if stride_bytes == esize {
                match tag {
                    TAG_SPUTS => {
                        self.fab.peer_arena_to_private(pe, priv_base, arena_global, count * esize)
                    }
                    _ => self.fab.peer_private_to_arena(pe, arena_global, priv_base, count * esize),
                }
            } else {
                for i in 0..count {
                    let p = priv_base + i * stride_bytes;
                    let a = arena_global + i * esize;
                    match tag {
                        TAG_SPUTS => self.fab.peer_arena_to_private(pe, p, a, esize),
                        _ => self.fab.peer_private_to_arena(pe, a, p, esize),
                    }
                }
            }
            return;
        }
        self.stats.borrow_mut().redirected += 1;
        let token = self.next_token();
        self.fab.quiet(); // our arena-side data must be visible first
        self.fab.udn_send(
            pe,
            Q_SERVICE,
            tag,
            &encode_strided_request(priv_base, stride_bytes, esize, count, arena_global, token),
        );
        self.await_sdone(token);
    }

    /// Strided put to a remote static target: stage gathered elements in
    /// the shared temp, then let the remote scatter each batch.
    fn iput_static_via_temp<T: Bits>(
        &self,
        pe: usize,
        target: &Sym<T>,
        tidx: usize,
        tst: usize,
        gathered: &[T],
    ) {
        // Blocking use of the shared temp: in-flight nbi chunks own bump-
        // allocated slices of it, so complete them before reusing it.
        self.drain_pending();
        let me = self.my_pe();
        let esize = std::mem::size_of::<T>();
        let temp = self.go(me, self.layout.temp_off);
        let batch = (self.layout.temp_bytes / esize).max(1);
        let mut done = 0;
        while done < gathered.len() {
            let n = (gathered.len() - done).min(batch);
            self.fab
                .arena_write(temp, byte_view(&gathered[done..done + n]));
            self.redirect_strided(
                pe,
                TAG_SPUTS,
                target.elem_offset(tidx + done * tst),
                tst * esize,
                esize,
                n,
                temp,
            );
            done += n;
        }
    }

    /// Strided get from a remote static source: the remote gathers each
    /// batch into our shared temp, which we scatter into `dst`.
    #[allow(clippy::too_many_arguments)]
    fn iget_static_via_temp<T: Bits>(
        &self,
        dst: &mut [T],
        dst_stride: usize,
        source: &Sym<T>,
        sidx: usize,
        sst: usize,
        nelems: usize,
        pe: usize,
    ) {
        self.drain_pending(); // temp reuse — see iput_static_via_temp
        let me = self.my_pe();
        let esize = std::mem::size_of::<T>();
        let temp = self.go(me, self.layout.temp_off);
        let batch = (self.layout.temp_bytes / esize).max(1);
        let mut done = 0;
        while done < nelems {
            let n = (nelems - done).min(batch);
            self.redirect_strided(
                pe,
                TAG_SGETS,
                source.elem_offset(sidx + done * sst),
                sst * esize,
                esize,
                n,
                temp,
            );
            if dst_stride == 1 && crate::fault::rma_fast_paths() {
                // Contiguous destination: drain the temp straight into
                // the caller's buffer, no staging copy.
                self.fab
                    .arena_read(temp, byte_view_mut(&mut dst[done..done + n]));
            } else {
                self.with_scratch(n * esize, |buf| {
                    self.fab.arena_read(temp, buf);
                    for i in 0..n {
                        byte_view_mut(std::slice::from_mut(&mut dst[(done + i) * dst_stride]))
                            .copy_from_slice(&buf[i * esize..(i + 1) * esize]);
                    }
                });
            }
            done += n;
        }
    }

    /// put with static target, arbitrary local bytes: chunk through the
    /// shared temp buffer.
    fn put_static_via_temp(&self, pe: usize, priv_dst: usize, bytes: &[u8]) {
        if self.local_peer(pe) {
            // Co-resident target: skip the temp bounce entirely — one
            // memcpy into the peer's private segment instead of
            // stage + interrupt + handler copy. cold: no allocation.
            self.stats.borrow_mut().locality_hits += 1;
            self.fab.quiet();
            self.fab.peer_private_write(pe, priv_dst, bytes);
            return;
        }
        self.drain_pending(); // temp reuse — see iput_static_via_temp
        let me = self.my_pe();
        let temp = self.layout.temp_off;
        let cap = self.layout.temp_bytes;
        let mut done = 0;
        while done < bytes.len() {
            let n = (bytes.len() - done).min(cap);
            self.fab.arena_write(self.go(me, temp), &bytes[done..done + n]);
            self.redirect(pe, TAG_SPUT, priv_dst + done, self.go(me, temp), n);
            done += n;
        }
    }

    /// get with static source into arbitrary local bytes: redirect into
    /// our temp, then read out.
    fn get_static_via_temp(&self, pe: usize, priv_src: usize, bytes: &mut [u8]) {
        if self.local_peer(pe) {
            // Co-resident source: one memcpy out of the peer's private
            // segment, no temp bounce. cold: no allocation.
            self.stats.borrow_mut().locality_hits += 1;
            self.fab.quiet();
            self.fab.peer_private_read(pe, priv_src, bytes);
            return;
        }
        self.drain_pending(); // temp reuse — see iput_static_via_temp
        let me = self.my_pe();
        let temp = self.layout.temp_off;
        let cap = self.layout.temp_bytes;
        let mut done = 0;
        while done < bytes.len() {
            let n = (bytes.len() - done).min(cap);
            self.redirect(pe, TAG_SGET, priv_src + done, self.go(me, temp), n);
            self.fab.arena_read(self.go(me, temp), &mut bytes[done..done + n]);
            done += n;
        }
    }

    /// static-static put: private source -> shared temp -> remote private.
    fn put_static_from_private(&self, pe: usize, priv_dst: usize, priv_src: usize, len: usize) {
        self.drain_pending(); // temp reuse — see iput_static_via_temp
        let me = self.my_pe();
        let temp = self.layout.temp_off;
        let cap = self.layout.temp_bytes;
        let mut done = 0;
        while done < len {
            let n = (len - done).min(cap);
            self.fab.private_to_arena(self.go(me, temp), priv_src + done, n);
            self.redirect(pe, TAG_SPUT, priv_dst + done, self.go(me, temp), n);
            done += n;
        }
    }

    /// static-static get: remote private -> my shared temp -> my private.
    fn get_static_to_private(&self, pe: usize, priv_dst: usize, priv_src: usize, len: usize) {
        self.drain_pending(); // temp reuse — see iput_static_via_temp
        let me = self.my_pe();
        let temp = self.layout.temp_off;
        let cap = self.layout.temp_bytes;
        let mut done = 0;
        while done < len {
            let n = (len - done).min(cap);
            self.redirect(pe, TAG_SGET, priv_src + done, self.go(me, temp), n);
            self.fab.arena_to_private(priv_dst + done, self.go(me, temp), n);
            done += n;
        }
    }

    /// Large private->arena transfer in one memcpy.
    fn bounce_private_to_arena(&self, arena_dst_global: usize, priv_src: usize, len: usize) {
        self.fab.private_to_arena(arena_dst_global, priv_src, len);
    }

    /// Large arena->private transfer in one memcpy.
    fn bounce_arena_to_private(&self, priv_dst: usize, arena_src_global: usize, len: usize) {
        self.fab.arena_to_private(priv_dst, arena_src_global, len);
    }

    // --- non-blocking transfers (`shmem_put_nbi` / `shmem_get_nbi`) -----

    /// `shmem_put_nbi`: start a put of `src` into `target[index..]` on
    /// PE `pe` and return immediately. The source slice is captured at
    /// issue (OpenSHMEM forbids reuse before completion, so capturing is
    /// always observationally valid); completion is deferred to
    /// [`quiet`](Self::quiet). Dynamic targets stage the bytes locally
    /// and apply them at drain; static targets send their redirected
    /// service requests immediately and defer only the completion-reply
    /// waits, pipelining multiple requests through the remote handler.
    pub fn put_nbi<T: Bits>(&self, target: &Sym<T>, index: usize, src: &[T], pe: usize) {
        self.check_pe(pe);
        assert!(index + src.len() <= target.len(), "put_nbi out of bounds");
        let bytes = byte_view(src);
        {
            let mut s = self.stats.borrow_mut();
            s.nbi_puts += 1;
            s.put_bytes += bytes.len() as u64;
        }
        let toff = target.elem_offset(index);
        match target.class() {
            AddrClass::Dynamic => self.stage_put_nbi(pe, self.go(pe, toff), bytes),
            // A local private write has no remote completion to defer.
            AddrClass::Static if pe == self.my_pe() => self.fab.private_write(toff, bytes),
            AddrClass::Static => self.put_static_via_temp_nbi(pe, toff, bytes),
        }
        if crate::fault::nbi_eager() {
            self.drain_pending();
        }
    }

    /// `shmem_get_nbi`: get into a local buffer. The destination is a
    /// borrowed Rust slice, so the transfer completes at issue (the
    /// OpenSHMEM nbi contract permits early completion); the call still
    /// counts as an nbi get and participates in the fence/quiet
    /// ordering model.
    pub fn get_nbi<T: Bits>(&self, dst: &mut [T], source: &Sym<T>, index: usize, pe: usize) {
        self.check_pe(pe);
        self.flush_pending_dest(pe);
        assert!(index + dst.len() <= source.len(), "get_nbi out of bounds");
        {
            let mut s = self.stats.borrow_mut();
            s.nbi_gets += 1;
            s.get_bytes += std::mem::size_of_val(dst) as u64;
        }
        self.get_body(dst, source, index, pe);
    }

    /// Symmetric-to-symmetric non-blocking put (the deferred counterpart
    /// of [`put_sym`](Self::put_sym)).
    #[allow(clippy::too_many_arguments)] // mirrors put_sym
    pub fn put_sym_nbi<T: Bits>(
        &self,
        target: &Sym<T>,
        toff: usize,
        source: &Sym<T>,
        soff: usize,
        n: usize,
        pe: usize,
    ) {
        self.check_pe(pe);
        assert!(toff + n <= target.len(), "put_sym_nbi target out of bounds");
        assert!(soff + n <= source.len(), "put_sym_nbi source out of bounds");
        let len = n * std::mem::size_of::<T>();
        if len == 0 {
            return;
        }
        {
            let mut s = self.stats.borrow_mut();
            s.nbi_puts += 1;
            s.put_bytes += len as u64;
        }
        let t = target.elem_offset(toff);
        let s = source.elem_offset(soff);
        let me = self.my_pe();
        match (target.class(), source.class()) {
            (AddrClass::Dynamic, AddrClass::Dynamic) => {
                let off = self.stage_reserve(len);
                {
                    let mut stage = self.nbi_stage.borrow_mut();
                    self.fab.arena_read(self.go(me, s), &mut stage[off..off + len]);
                }
                self.push_staged(pe, self.go(pe, t), off, len);
            }
            (AddrClass::Dynamic, AddrClass::Static) => {
                let off = self.stage_reserve(len);
                {
                    let mut stage = self.nbi_stage.borrow_mut();
                    self.fab.private_read(s, &mut stage[off..off + len]);
                }
                self.push_staged(pe, self.go(pe, t), off, len);
            }
            // Local static target: completes at issue.
            (AddrClass::Static, _) if pe == me => match source.class() {
                AddrClass::Dynamic => self.bounce_arena_to_private(t, self.go(me, s), len),
                AddrClass::Static => self.with_scratch(len, |buf| {
                    self.fab.private_read(s, buf);
                    self.fab.private_write(t, buf);
                }),
            },
            // static-dynamic: the remote handler reads our arena source
            // directly, so the request needs no staging at all — send it
            // now, await the reply at quiet.
            (AddrClass::Static, AddrClass::Dynamic) => {
                self.redirect_nbi(pe, TAG_SPUT, t, self.go(me, s), len);
            }
            (AddrClass::Static, AddrClass::Static) => {
                self.put_static_from_private_nbi(pe, t, s, len);
            }
        }
        if crate::fault::nbi_eager() {
            self.drain_pending();
        }
    }

    /// Symmetric-to-symmetric non-blocking get. The dynamic-target,
    /// static-source case — the redirected one — genuinely defers: the
    /// remote handler writes straight into our arena target and the
    /// completion reply is awaited at [`quiet`](Self::quiet). The other
    /// cases are local copies and complete at issue.
    #[allow(clippy::too_many_arguments)] // mirrors get_sym
    pub fn get_sym_nbi<T: Bits>(
        &self,
        target: &Sym<T>,
        toff: usize,
        source: &Sym<T>,
        soff: usize,
        n: usize,
        pe: usize,
    ) {
        self.check_pe(pe);
        self.flush_pending_dest(pe);
        assert!(toff + n <= target.len(), "get_sym_nbi target out of bounds");
        assert!(soff + n <= source.len(), "get_sym_nbi source out of bounds");
        let len = n * std::mem::size_of::<T>();
        if len == 0 {
            return;
        }
        {
            let mut s = self.stats.borrow_mut();
            s.nbi_gets += 1;
            s.get_bytes += len as u64;
        }
        let t = target.elem_offset(toff);
        let s = source.elem_offset(soff);
        let me = self.my_pe();
        match (target.class(), source.class()) {
            (AddrClass::Dynamic, AddrClass::Static) if pe != me => {
                self.redirect_nbi(pe, TAG_SGET, s, self.go(me, t), len);
            }
            (AddrClass::Dynamic, AddrClass::Dynamic) => {
                self.fab.arena_copy(self.go(me, t), self.go(pe, s), len);
            }
            (AddrClass::Static, AddrClass::Dynamic) => {
                self.bounce_arena_to_private(t, self.go(pe, s), len);
            }
            (_, AddrClass::Static) if pe == me => match target.class() {
                AddrClass::Dynamic => self.bounce_private_to_arena(self.go(me, t), s, len),
                AddrClass::Static => self.with_scratch(len, |buf| {
                    self.fab.private_read(s, buf);
                    self.fab.private_write(t, buf);
                }),
            },
            (AddrClass::Static, AddrClass::Static) => {
                self.get_static_to_private(pe, t, s, len);
            }
            // pe == me dynamic-static handled above; nothing else remains.
            (AddrClass::Dynamic, AddrClass::Static) => unreachable!(),
        }
        if crate::fault::nbi_eager() {
            self.drain_pending();
        }
    }

    // --- put-with-signal (`shmem_put_signal`) ---------------------------

    /// `shmem_put_signal`: deliver `src` into `target[index..]` on `pe`,
    /// then update the signal word `sig[sig_index]` on `pe` — with the
    /// payload guaranteed visible before the signal. The signal word is
    /// waitable with [`wait_until`](Self::wait_until) at its (possibly
    /// non-zero) element index, which is exactly why the indexed wait
    /// entry point exists.
    #[allow(clippy::too_many_arguments)] // mirrors the OpenSHMEM C signature
    pub fn put_signal<T: Bits>(
        &self,
        target: &Sym<T>,
        index: usize,
        src: &[T],
        sig: &Sym<u64>,
        sig_index: usize,
        sig_value: u64,
        sig_op: SignalOp,
        pe: usize,
    ) {
        // Payload first (a blocking put, which also flushes any pending
        // nbi ops to `pe`), then a fabric fence so the data is visible
        // before the signal word changes.
        self.put(target, index, src, pe);
        self.fab.quiet();
        assert_eq!(sig.class(), AddrClass::Dynamic, "signal word must be dynamic");
        assert!(sig_index < sig.len(), "signal index out of bounds");
        let off = self.go(pe, sig.elem_offset(sig_index));
        assert_eq!(off % 8, 0, "unaligned signal word");
        self.stats.borrow_mut().atomics += 1;
        match sig_op {
            SignalOp::Set => self.fab.arena_write_u64(off, sig_value),
            SignalOp::Add => {
                let _ = self.fab.arena_rmw(off, RmwOp::Add, sig_value, RmwWidth::W64);
            }
        }
    }

    // --- pending-op lifecycle -------------------------------------------

    /// Number of outstanding non-blocking operations (observability for
    /// tests: the fence-vs-quiet contract is asserted against this).
    pub fn pending_nbi_ops(&self) -> usize {
        self.pending.borrow().len()
    }

    /// Complete **all** outstanding nbi operations in issue order, then
    /// reset the staging buffers. Called by [`quiet`](Self::quiet),
    /// barrier entry, and blocking users of the shared temp.
    pub(crate) fn drain_pending(&self) {
        if !self.pending.borrow().is_empty() {
            let mut ops = self.pending.take();
            for op in ops.drain(..) {
                self.complete_op(op);
            }
            // Hand the drained vec back so its capacity is reused.
            *self.pending.borrow_mut() = ops;
        }
        self.nbi_stage.borrow_mut().clear();
        self.nbi_temp_used.set(0);
    }

    /// Complete outstanding nbi operations addressed to `pe`, in issue
    /// order, leaving ops to other destinations pending. Blocking RMA
    /// calls this on entry so mixed blocking/non-blocking traffic to one
    /// destination retains program order.
    pub(crate) fn flush_pending_dest(&self, pe: usize) {
        if !self.pending.borrow().iter().any(|op| op.pe() == pe) {
            return;
        }
        // cold: rare path — only when blocking traffic interleaves with
        // an unfinished nbi train to the same destination.
        let mut todo: Vec<PendingOp> = Vec::new();
        {
            let mut pending = self.pending.borrow_mut();
            let mut i = 0;
            while i < pending.len() {
                if pending[i].pe() == pe {
                    todo.push(pending.remove(i));
                } else {
                    i += 1;
                }
            }
        }
        for op in todo {
            self.complete_op(op);
        }
        // Staged bytes of the flushed ops stay in the stage buffer (ops
        // behind them still reference their own ranges); the buffer is
        // reclaimed wholesale at the next full drain.
    }

    /// Complete one pending op. Consulted by the fault plane first: a
    /// `DelayNbiCompletion` plan stalls completions without reordering
    /// them (tolerated class — slower, never wrong).
    fn complete_op(&self, op: PendingOp) {
        if let Some(us) = crate::fault::nbi_completion_delay_us() {
            self.fab.inject_delay_us(us);
        }
        match op {
            PendingOp::StagedPut { dest_global, stage_off, len, .. } => {
                let stage = self.nbi_stage.borrow();
                self.fab.arena_write(dest_global, &stage[stage_off..stage_off + len]);
            }
            PendingOp::AwaitReply { token, .. } => self.await_sdone(token),
        }
    }

    /// Reserve `len` bytes in the stage buffer, returning the offset.
    fn stage_reserve(&self, len: usize) -> usize {
        let mut stage = self.nbi_stage.borrow_mut();
        let off = stage.len();
        stage.resize(off + len, 0);
        off
    }

    fn push_staged(&self, pe: usize, dest_global: usize, stage_off: usize, len: usize) {
        self.pending.borrow_mut().push(PendingOp::StagedPut {
            pe,
            dest_global,
            stage_off,
            len,
        });
    }

    /// Capture `bytes` and queue a deferred dynamic-target put.
    fn stage_put_nbi(&self, pe: usize, dest_global: usize, bytes: &[u8]) {
        let off = self.stage_reserve(bytes.len());
        self.nbi_stage.borrow_mut()[off..off + bytes.len()].copy_from_slice(bytes);
        self.push_staged(pe, dest_global, off, bytes.len());
    }

    /// Send a redirected service request and queue its completion-reply
    /// wait instead of blocking on it — the pipelined counterpart of
    /// [`redirect`](Self::redirect).
    fn redirect_nbi(&self, pe: usize, tag: u16, priv_off: usize, arena_global: usize, len: usize) {
        if self.local_peer(pe) {
            // Completes at issue — the OpenSHMEM nbi contract permits
            // early completion (the eager/lazy equivalence suite is the
            // standing proof), and a bypassed op can never overlap a
            // staged dynamic-target put, so no ordering is lost.
            self.redirect_local(pe, tag, priv_off, arena_global, len);
            return;
        }
        self.stats.borrow_mut().redirected += 1;
        let token = self.next_token();
        self.fab.quiet(); // our arena-side data must be visible first
        self.fab
            .udn_send(pe, Q_SERVICE, tag, &encode_request(priv_off, arena_global, len, token));
        self.pending.borrow_mut().push(PendingOp::AwaitReply { pe, token });
    }

    /// Non-blocking static-target put of arbitrary local bytes: chunks
    /// bump-allocate slices of the shared temp so several chunks can be
    /// in flight at once; only on temp exhaustion does the train stall
    /// for a full drain.
    fn put_static_via_temp_nbi(&self, pe: usize, priv_dst: usize, bytes: &[u8]) {
        if self.local_peer(pe) {
            // Single-copy completion at issue (see redirect_nbi), no
            // temp bump allocation. cold: no allocation.
            self.stats.borrow_mut().locality_hits += 1;
            self.fab.quiet();
            self.fab.peer_private_write(pe, priv_dst, bytes);
            return;
        }
        let me = self.my_pe();
        let cap = self.layout.temp_bytes;
        let mut done = 0;
        while done < bytes.len() {
            let used = self.nbi_temp_used.get();
            if used == cap {
                self.drain_pending(); // resets the bump cursor
                continue;
            }
            let n = (bytes.len() - done).min(cap - used);
            let temp = self.layout.temp_off + used;
            self.nbi_temp_used.set(used + n);
            self.fab.arena_write(self.go(me, temp), &bytes[done..done + n]);
            self.redirect_nbi(pe, TAG_SPUT, priv_dst + done, self.go(me, temp), n);
            done += n;
        }
    }

    /// Non-blocking static-static put: private source staged through
    /// bump-allocated temp chunks, requests pipelined.
    fn put_static_from_private_nbi(&self, pe: usize, priv_dst: usize, priv_src: usize, len: usize) {
        let me = self.my_pe();
        let cap = self.layout.temp_bytes;
        let mut done = 0;
        while done < len {
            let used = self.nbi_temp_used.get();
            if used == cap {
                self.drain_pending();
                continue;
            }
            let n = (len - done).min(cap - used);
            let temp = self.layout.temp_off + used;
            self.nbi_temp_used.set(used + n);
            self.fab.private_to_arena(self.go(me, temp), priv_src + done, n);
            self.redirect_nbi(pe, TAG_SPUT, priv_dst + done, self.go(me, temp), n);
            done += n;
        }
    }
}
