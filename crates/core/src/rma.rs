//! One-sided data transfers: elemental, bulk, and strided puts/gets,
//! with the paper's address classification (Section IV-B).
//!
//! Every transfer classifies its target and source:
//!
//! | case (target–source) | put | get |
//! |---|---|---|
//! | dynamic–dynamic | direct local `memcpy` | direct local `memcpy` |
//! | dynamic–static  | direct (read own private, write arena) | **redirected**: remote services a put into my arena |
//! | static–dynamic  | **redirected**: remote services a get from my arena | direct (read arena, write own private) |
//! | static–static   | **temp-assisted**: copy to shared temp, then redirect | **temp-assisted**: redirect into my temp, then copy |
//!
//! Redirection interrupts the remote tile over the UDN ([`crate::service`]);
//! the temp-assisted cases pay one extra shared-memory copy — exactly the
//! cost ladder of Figure 7.

use crate::ctx::{byte_view, byte_view_mut, ShmemCtx};
use crate::fabric::{Q_REPLY, Q_SERVICE};
use crate::service::{
    encode_request, encode_strided_request, TAG_SDONE, TAG_SGET, TAG_SGETS, TAG_SPUT, TAG_SPUTS,
};
use crate::symm::{AddrClass, Bits, Sym};

impl ShmemCtx {
    // --- elemental (`shmem_T_p` / `shmem_T_g`) --------------------------

    /// Write one element to `target[index]` on PE `pe`.
    pub fn p<T: Bits>(&self, target: &Sym<T>, index: usize, value: T, pe: usize) {
        self.put(target, index, std::slice::from_ref(&value), pe);
    }

    /// Read one element from `source[index]` on PE `pe`.
    pub fn g<T: Bits>(&self, source: &Sym<T>, index: usize, pe: usize) -> T {
        let mut out = [unsafe { std::mem::zeroed::<T>() }];
        self.get(&mut out, source, index, pe);
        out[0]
    }

    // --- bulk (`shmem_put` / `shmem_get` / `shmem_putmem`...) -----------

    /// Put `src` into `target[index..]` on PE `pe` from a local buffer.
    ///
    /// Local buffers are private to this PE, so a static-class target
    /// takes the temp-assisted path (a local Rust slice is the moral
    /// equivalent of static/stack memory — the remote tile cannot read
    /// it directly).
    pub fn put<T: Bits>(&self, target: &Sym<T>, index: usize, src: &[T], pe: usize) {
        self.check_pe(pe);
        assert!(index + src.len() <= target.len(), "put out of bounds");
        let bytes = byte_view(src);
        {
            let mut s = self.stats.borrow_mut();
            s.puts += 1;
            s.put_bytes += bytes.len() as u64;
        }
        let toff = target.elem_offset(index);
        match target.class() {
            AddrClass::Dynamic => self.fab.arena_write(self.go(pe, toff), bytes),
            AddrClass::Static if pe == self.my_pe() => self.fab.private_write(toff, bytes),
            AddrClass::Static => self.put_static_via_temp(pe, toff, bytes),
        }
    }

    /// Get `source[index..]` on PE `pe` into a local buffer.
    pub fn get<T: Bits>(&self, dst: &mut [T], source: &Sym<T>, index: usize, pe: usize) {
        self.check_pe(pe);
        assert!(index + dst.len() <= source.len(), "get out of bounds");
        let soff = source.elem_offset(index);
        let len = std::mem::size_of_val(dst);
        {
            let mut s = self.stats.borrow_mut();
            s.gets += 1;
            s.get_bytes += len as u64;
        }
        let bytes = byte_view_mut(dst);
        match source.class() {
            AddrClass::Dynamic => self.fab.arena_read(self.go(pe, soff), bytes),
            AddrClass::Static if pe == self.my_pe() => self.fab.private_read(soff, bytes),
            AddrClass::Static => self.get_static_via_temp(pe, soff, bytes),
        }
    }

    /// Symmetric-to-symmetric put: `target[toff..toff+n]` on PE `pe`
    /// receives `source[soff..soff+n]` from this PE. This is the form
    /// that exercises all four Figure 7 cases.
    pub fn put_sym<T: Bits>(
        &self,
        target: &Sym<T>,
        toff: usize,
        source: &Sym<T>,
        soff: usize,
        n: usize,
        pe: usize,
    ) {
        self.check_pe(pe);
        assert!(toff + n <= target.len(), "put_sym target out of bounds");
        assert!(soff + n <= source.len(), "put_sym source out of bounds");
        let len = n * std::mem::size_of::<T>();
        if len == 0 {
            return;
        }
        {
            let mut s = self.stats.borrow_mut();
            s.puts += 1;
            s.put_bytes += len as u64;
        }
        let t = target.elem_offset(toff);
        let s = source.elem_offset(soff);
        let me = self.my_pe();
        match (target.class(), source.class()) {
            // dynamic-dynamic: plain shared-memory copy.
            (AddrClass::Dynamic, AddrClass::Dynamic) => {
                self.fab.arena_copy(self.go(pe, t), self.go(me, s), len);
            }
            // dynamic-static: the local tile can read its own private
            // source and write the remote arena directly.
            (AddrClass::Dynamic, AddrClass::Static) => {
                self.bounce_private_to_arena(self.go(pe, t), s, len);
            }
            // static target on ourselves: direct private access.
            (AddrClass::Static, _) if pe == me => match source.class() {
                AddrClass::Dynamic => {
                    self.bounce_arena_to_private(t, self.go(me, s), len);
                }
                AddrClass::Static => {
                    self.with_scratch(len, |buf| {
                        self.fab.private_read(s, buf);
                        self.fab.private_write(t, buf);
                    });
                }
            },
            // static-dynamic: redirect — the remote tile reads our arena
            // partition into its private target.
            (AddrClass::Static, AddrClass::Dynamic) => {
                self.redirect(pe, TAG_SPUT, t, self.go(me, s), len);
            }
            // static-static: copy to the shared temp first, then
            // redirect (the extra-copy penalty of Figure 7).
            (AddrClass::Static, AddrClass::Static) => {
                self.put_static_from_private(pe, t, s, len);
            }
        }
    }

    /// Symmetric-to-symmetric get: `target[toff..]` on this PE receives
    /// `source[soff..]` from PE `pe`.
    pub fn get_sym<T: Bits>(
        &self,
        target: &Sym<T>,
        toff: usize,
        source: &Sym<T>,
        soff: usize,
        n: usize,
        pe: usize,
    ) {
        self.check_pe(pe);
        assert!(toff + n <= target.len(), "get_sym target out of bounds");
        assert!(soff + n <= source.len(), "get_sym source out of bounds");
        let len = n * std::mem::size_of::<T>();
        if len == 0 {
            return;
        }
        {
            let mut s = self.stats.borrow_mut();
            s.gets += 1;
            s.get_bytes += len as u64;
        }
        let t = target.elem_offset(toff);
        let s = source.elem_offset(soff);
        let me = self.my_pe();
        match (target.class(), source.class()) {
            (AddrClass::Dynamic, AddrClass::Dynamic) => {
                self.fab.arena_copy(self.go(me, t), self.go(pe, s), len);
            }
            // static-dynamic get: local private target, readable arena
            // source — direct.
            (AddrClass::Static, AddrClass::Dynamic) => {
                self.bounce_arena_to_private(t, self.go(pe, s), len);
            }
            (_, AddrClass::Static) if pe == me => match target.class() {
                AddrClass::Dynamic => {
                    self.bounce_private_to_arena(self.go(me, t), s, len);
                }
                AddrClass::Static => {
                    self.with_scratch(len, |buf| {
                        self.fab.private_read(s, buf);
                        self.fab.private_write(t, buf);
                    });
                }
            },
            // dynamic-static get: redirect — remote puts its private
            // source straight into our arena target.
            (AddrClass::Dynamic, AddrClass::Static) => {
                self.redirect(pe, TAG_SGET, s, self.go(me, t), len);
            }
            // static-static get: redirect into our temp, then copy to
            // our private target.
            (AddrClass::Static, AddrClass::Static) => {
                self.get_static_to_private(pe, t, s, len);
            }
        }
    }

    // --- strided (`shmem_T_iput` / `shmem_T_iget`) ----------------------

    /// Strided put: for `i` in `0..nelems`, `src[sst*i]` goes to
    /// `target[tst*i + tidx]` on PE `pe` — the OpenSHMEM `iput` shape,
    /// with the element count explicit on both sides (the count is never
    /// derived from a buffer length, so iput and iget agree).
    ///
    /// Counted as **one** logical put of `nelems` elements. Static-class
    /// targets are serviced in temp-buffer-sized batches: the strided
    /// elements are gathered locally, staged contiguously in the shared
    /// temp, and scattered by the remote service handler — one redirect
    /// round-trip per `temp_bytes / size_of::<T>()` elements instead of
    /// one per element.
    // Mirrors the C `shmem_iput` signature.
    #[allow(clippy::too_many_arguments)]
    pub fn iput<T: Bits>(
        &self,
        target: &Sym<T>,
        tidx: usize,
        tst: usize,
        src: &[T],
        sst: usize,
        nelems: usize,
        pe: usize,
    ) {
        self.check_pe(pe);
        assert!(tst >= 1 && sst >= 1, "strides must be >= 1");
        if nelems == 0 {
            return;
        }
        assert!(
            (nelems - 1) * sst < src.len(),
            "iput source too small: need element {} of {}",
            (nelems - 1) * sst,
            src.len()
        );
        assert!(
            tidx + (nelems - 1) * tst < target.len(),
            "iput target out of bounds"
        );
        let esize = std::mem::size_of::<T>();
        {
            let mut s = self.stats.borrow_mut();
            s.puts += 1;
            s.put_bytes += (nelems * esize) as u64;
        }
        // Every downstream path wants the source contiguous. A unit-
        // stride source already is — borrow it; only a genuinely strided
        // source pays a gather.
        // cold: allocation only on the strided-source path; unit-stride
        // borrows `src` directly.
        let owned: Vec<T>;
        let gathered: &[T] = if sst == 1 && crate::fault::rma_fast_paths() {
            &src[..nelems]
        } else {
            owned = (0..nelems).map(|i| src[i * sst]).collect();
            &owned
        };
        let me = self.my_pe();
        match target.class() {
            // Unit-stride target: the whole run is one contiguous write.
            AddrClass::Dynamic if tst == 1 && crate::fault::rma_fast_paths() => {
                self.fab
                    .arena_write(self.go(pe, target.elem_offset(tidx)), byte_view(gathered));
            }
            AddrClass::Dynamic => {
                for (i, v) in gathered.iter().enumerate() {
                    self.fab.arena_write(
                        self.go(pe, target.elem_offset(tidx + i * tst)),
                        byte_view(std::slice::from_ref(v)),
                    );
                }
            }
            AddrClass::Static if pe == me && tst == 1 && crate::fault::rma_fast_paths() => {
                self.fab
                    .private_write(target.elem_offset(tidx), byte_view(gathered));
            }
            AddrClass::Static if pe == me => {
                for (i, v) in gathered.iter().enumerate() {
                    self.fab.private_write(
                        target.elem_offset(tidx + i * tst),
                        byte_view(std::slice::from_ref(v)),
                    );
                }
            }
            AddrClass::Static => {
                self.iput_static_via_temp(pe, target, tidx, tst, gathered);
            }
        }
    }

    /// Strided get: for `i` in `0..nelems`, `dst[dst_stride*i]` receives
    /// `source[sst*i + sidx]` from PE `pe`. Counted as **one** logical
    /// get of `nelems` elements; static-class sources batch through the
    /// temp buffer like [`ShmemCtx::iput`].
    // Mirrors the C `shmem_iget` signature.
    #[allow(clippy::too_many_arguments)]
    pub fn iget<T: Bits>(
        &self,
        dst: &mut [T],
        dst_stride: usize,
        source: &Sym<T>,
        sidx: usize,
        sst: usize,
        nelems: usize,
        pe: usize,
    ) {
        self.check_pe(pe);
        assert!(dst_stride >= 1 && sst >= 1, "strides must be >= 1");
        if nelems == 0 {
            return;
        }
        assert!(
            (nelems - 1) * dst_stride < dst.len(),
            "iget destination too small: need element {} of {}",
            (nelems - 1) * dst_stride,
            dst.len()
        );
        assert!(
            sidx + (nelems - 1) * sst < source.len(),
            "iget source out of bounds"
        );
        let esize = std::mem::size_of::<T>();
        {
            let mut s = self.stats.borrow_mut();
            s.gets += 1;
            s.get_bytes += (nelems * esize) as u64;
        }
        let me = self.my_pe();
        match source.class() {
            // Unit stride on both sides: one contiguous read, straight
            // into the caller's buffer — one copy, one trace event.
            AddrClass::Dynamic if sst == 1 && dst_stride == 1 && crate::fault::rma_fast_paths() => {
                self.fab.arena_read(
                    self.go(pe, source.elem_offset(sidx)),
                    byte_view_mut(&mut dst[..nelems]),
                );
            }
            // Contiguous source, strided destination: still one read (to
            // scratch), then a local scatter.
            AddrClass::Dynamic if sst == 1 && crate::fault::rma_fast_paths() => {
                self.with_scratch(nelems * esize, |buf| {
                    self.fab.arena_read(self.go(pe, source.elem_offset(sidx)), buf);
                    for i in 0..nelems {
                        byte_view_mut(std::slice::from_mut(&mut dst[i * dst_stride]))
                            .copy_from_slice(&buf[i * esize..(i + 1) * esize]);
                    }
                });
            }
            AddrClass::Dynamic => {
                for i in 0..nelems {
                    let mut tmp = [unsafe { std::mem::zeroed::<T>() }];
                    self.fab.arena_read(
                        self.go(pe, source.elem_offset(sidx + i * sst)),
                        byte_view_mut(&mut tmp),
                    );
                    dst[i * dst_stride] = tmp[0];
                }
            }
            AddrClass::Static if pe == me && sst == 1 && dst_stride == 1 && crate::fault::rma_fast_paths() => {
                self.fab.private_read(
                    source.elem_offset(sidx),
                    byte_view_mut(&mut dst[..nelems]),
                );
            }
            AddrClass::Static if pe == me => {
                for i in 0..nelems {
                    let mut tmp = [unsafe { std::mem::zeroed::<T>() }];
                    self.fab.private_read(
                        source.elem_offset(sidx + i * sst),
                        byte_view_mut(&mut tmp),
                    );
                    dst[i * dst_stride] = tmp[0];
                }
            }
            AddrClass::Static => {
                self.iget_static_via_temp(dst, dst_stride, source, sidx, sst, nelems, pe);
            }
        }
    }

    // --- `shmem_ptr` ----------------------------------------------------

    /// The analog of `shmem_ptr`: a raw pointer to `sym` on PE `pe` if
    /// it is directly addressable from this PE (dynamic objects always
    /// are on this shared-memory machine; remote static objects are not).
    pub fn ptr<T: Bits>(&self, sym: &Sym<T>, pe: usize) -> Option<*mut T> {
        self.check_pe(pe);
        match sym.class() {
            AddrClass::Dynamic => Some(
                self.fab
                    .arena_raw(self.go(pe, sym.offset()), sym.byte_len())
                    .cast::<T>(),
            ),
            AddrClass::Static if pe == self.my_pe() => {
                Some(self.fab.private_raw(sym.offset(), sym.byte_len()).cast::<T>())
            }
            AddrClass::Static => None,
        }
    }

    // --- redirection internals -------------------------------------------

    /// Send a service request and await its completion reply.
    fn redirect(&self, pe: usize, tag: u16, priv_off: usize, arena_global: usize, len: usize) {
        self.stats.borrow_mut().redirected += 1;
        let token = self.next_token();
        self.fab.quiet(); // our arena-side data must be visible first
        self.fab
            .udn_send(pe, Q_SERVICE, tag, &encode_request(priv_off, arena_global, len, token));
        let reply = self.fab.udn_recv(Q_REPLY);
        assert_eq!(reply.tag, TAG_SDONE, "unexpected reply tag {}", reply.tag);
        assert_eq!(reply.payload[0], token, "reply token mismatch");
    }

    /// Send a **strided** service request (one interrupt covers a whole
    /// temp-staged batch) and await its completion reply.
    #[allow(clippy::too_many_arguments)]
    fn redirect_strided(
        &self,
        pe: usize,
        tag: u16,
        priv_base: usize,
        stride_bytes: usize,
        esize: usize,
        count: usize,
        arena_global: usize,
    ) {
        self.stats.borrow_mut().redirected += 1;
        let token = self.next_token();
        self.fab.quiet(); // our arena-side data must be visible first
        self.fab.udn_send(
            pe,
            Q_SERVICE,
            tag,
            &encode_strided_request(priv_base, stride_bytes, esize, count, arena_global, token),
        );
        let reply = self.fab.udn_recv(Q_REPLY);
        assert_eq!(reply.tag, TAG_SDONE, "unexpected reply tag {}", reply.tag);
        assert_eq!(reply.payload[0], token, "reply token mismatch");
    }

    /// Strided put to a remote static target: stage gathered elements in
    /// the shared temp, then let the remote scatter each batch.
    fn iput_static_via_temp<T: Bits>(
        &self,
        pe: usize,
        target: &Sym<T>,
        tidx: usize,
        tst: usize,
        gathered: &[T],
    ) {
        let me = self.my_pe();
        let esize = std::mem::size_of::<T>();
        let temp = self.go(me, self.layout.temp_off);
        let batch = (self.layout.temp_bytes / esize).max(1);
        let mut done = 0;
        while done < gathered.len() {
            let n = (gathered.len() - done).min(batch);
            self.fab
                .arena_write(temp, byte_view(&gathered[done..done + n]));
            self.redirect_strided(
                pe,
                TAG_SPUTS,
                target.elem_offset(tidx + done * tst),
                tst * esize,
                esize,
                n,
                temp,
            );
            done += n;
        }
    }

    /// Strided get from a remote static source: the remote gathers each
    /// batch into our shared temp, which we scatter into `dst`.
    #[allow(clippy::too_many_arguments)]
    fn iget_static_via_temp<T: Bits>(
        &self,
        dst: &mut [T],
        dst_stride: usize,
        source: &Sym<T>,
        sidx: usize,
        sst: usize,
        nelems: usize,
        pe: usize,
    ) {
        let me = self.my_pe();
        let esize = std::mem::size_of::<T>();
        let temp = self.go(me, self.layout.temp_off);
        let batch = (self.layout.temp_bytes / esize).max(1);
        let mut done = 0;
        while done < nelems {
            let n = (nelems - done).min(batch);
            self.redirect_strided(
                pe,
                TAG_SGETS,
                source.elem_offset(sidx + done * sst),
                sst * esize,
                esize,
                n,
                temp,
            );
            if dst_stride == 1 && crate::fault::rma_fast_paths() {
                // Contiguous destination: drain the temp straight into
                // the caller's buffer, no staging copy.
                self.fab
                    .arena_read(temp, byte_view_mut(&mut dst[done..done + n]));
            } else {
                self.with_scratch(n * esize, |buf| {
                    self.fab.arena_read(temp, buf);
                    for i in 0..n {
                        byte_view_mut(std::slice::from_mut(&mut dst[(done + i) * dst_stride]))
                            .copy_from_slice(&buf[i * esize..(i + 1) * esize]);
                    }
                });
            }
            done += n;
        }
    }

    /// put with static target, arbitrary local bytes: chunk through the
    /// shared temp buffer.
    fn put_static_via_temp(&self, pe: usize, priv_dst: usize, bytes: &[u8]) {
        let me = self.my_pe();
        let temp = self.layout.temp_off;
        let cap = self.layout.temp_bytes;
        let mut done = 0;
        while done < bytes.len() {
            let n = (bytes.len() - done).min(cap);
            self.fab.arena_write(self.go(me, temp), &bytes[done..done + n]);
            self.redirect(pe, TAG_SPUT, priv_dst + done, self.go(me, temp), n);
            done += n;
        }
    }

    /// get with static source into arbitrary local bytes: redirect into
    /// our temp, then read out.
    fn get_static_via_temp(&self, pe: usize, priv_src: usize, bytes: &mut [u8]) {
        let me = self.my_pe();
        let temp = self.layout.temp_off;
        let cap = self.layout.temp_bytes;
        let mut done = 0;
        while done < bytes.len() {
            let n = (bytes.len() - done).min(cap);
            self.redirect(pe, TAG_SGET, priv_src + done, self.go(me, temp), n);
            self.fab.arena_read(self.go(me, temp), &mut bytes[done..done + n]);
            done += n;
        }
    }

    /// static-static put: private source -> shared temp -> remote private.
    fn put_static_from_private(&self, pe: usize, priv_dst: usize, priv_src: usize, len: usize) {
        let me = self.my_pe();
        let temp = self.layout.temp_off;
        let cap = self.layout.temp_bytes;
        let mut done = 0;
        while done < len {
            let n = (len - done).min(cap);
            self.fab.private_to_arena(self.go(me, temp), priv_src + done, n);
            self.redirect(pe, TAG_SPUT, priv_dst + done, self.go(me, temp), n);
            done += n;
        }
    }

    /// static-static get: remote private -> my shared temp -> my private.
    fn get_static_to_private(&self, pe: usize, priv_dst: usize, priv_src: usize, len: usize) {
        let me = self.my_pe();
        let temp = self.layout.temp_off;
        let cap = self.layout.temp_bytes;
        let mut done = 0;
        while done < len {
            let n = (len - done).min(cap);
            self.redirect(pe, TAG_SGET, priv_src + done, self.go(me, temp), n);
            self.fab.arena_to_private(priv_dst + done, self.go(me, temp), n);
            done += n;
        }
    }

    /// Large private->arena transfer in one memcpy.
    fn bounce_private_to_arena(&self, arena_dst_global: usize, priv_src: usize, len: usize) {
        self.fab.private_to_arena(arena_dst_global, priv_src, len);
    }

    /// Large arena->private transfer in one memcpy.
    fn bounce_arena_to_private(&self, priv_dst: usize, arena_src_global: usize, len: usize) {
        self.fab.arena_to_private(priv_dst, arena_src_global, len);
    }
}
