//! Atomic memory operations (Table I: `shmem_swap` and friends).
//!
//! SHMEM provided atomics long before MPI 3.0 (paper Section II-A). All
//! operations act on a single element of a **dynamic** symmetric
//! variable on a target PE; static targets are unsupported (as in the
//! paper's TSHMEM). Float swaps operate on the bit pattern; conditional
//! float operations go through compare-and-swap loops.

use crate::ctx::ShmemCtx;
use crate::fabric::{RmwOp, RmwWidth};
use crate::symm::{AddrClass, Bits, Sym};

/// Integer types supporting direct hardware-style atomics.
pub trait AtomicInt: Bits + PartialEq {
    const WIDTH: RmwWidth;
    fn to_word(self) -> u64;
    fn from_word(w: u64) -> Self;
}

macro_rules! impl_atomic_int {
    ($($t:ty => $w:expr),*) => {$(
        impl AtomicInt for $t {
            const WIDTH: RmwWidth = $w;
            fn to_word(self) -> u64 {
                self as u64 & mask($w)
            }
            fn from_word(w: u64) -> Self {
                w as $t
            }
        }
    )*};
}

impl_atomic_int!(i32 => RmwWidth::W32, u32 => RmwWidth::W32, i64 => RmwWidth::W64, u64 => RmwWidth::W64);

const fn mask(w: RmwWidth) -> u64 {
    match w {
        RmwWidth::W32 => 0xffff_ffff,
        RmwWidth::W64 => u64::MAX,
    }
}

impl ShmemCtx {
    fn atomic_off<T: Bits>(&self, var: &Sym<T>, index: usize, pe: usize) -> usize {
        self.check_pe(pe);
        assert_eq!(
            var.class(),
            AddrClass::Dynamic,
            "atomics on static symmetric variables are not supported"
        );
        assert!(index < var.len(), "atomic index out of bounds");
        let off = self.go(pe, var.elem_offset(index));
        assert_eq!(off % std::mem::size_of::<T>(), 0, "unaligned atomic target");
        self.stats.borrow_mut().atomics += 1;
        off
    }

    /// `shmem_swap`: unconditionally replace `var[index]` on `pe`;
    /// returns the old value.
    pub fn swap<T: AtomicInt>(&self, var: &Sym<T>, index: usize, value: T, pe: usize) -> T {
        let off = self.atomic_off(var, index, pe);
        T::from_word(self.fab.arena_rmw(off, RmwOp::Swap, value.to_word(), T::WIDTH))
    }

    /// `shmem_cswap`: replace `var[index]` with `value` iff it equals
    /// `cond`; returns the old value.
    pub fn cswap<T: AtomicInt>(&self, var: &Sym<T>, index: usize, cond: T, value: T, pe: usize) -> T {
        let off = self.atomic_off(var, index, pe);
        T::from_word(self.fab.arena_cswap(off, cond.to_word(), value.to_word(), T::WIDTH))
    }

    /// `shmem_fadd`: fetch-and-add; returns the old value.
    pub fn fadd<T: AtomicInt>(&self, var: &Sym<T>, index: usize, value: T, pe: usize) -> T {
        let off = self.atomic_off(var, index, pe);
        T::from_word(self.fab.arena_rmw(off, RmwOp::Add, value.to_word(), T::WIDTH))
    }

    /// `shmem_finc`: fetch-and-increment; returns the old value.
    pub fn finc<T: AtomicInt + From<u8>>(&self, var: &Sym<T>, index: usize, pe: usize) -> T {
        self.fadd(var, index, T::from(1u8), pe)
    }

    /// `shmem_add`: add without fetching.
    pub fn add<T: AtomicInt>(&self, var: &Sym<T>, index: usize, value: T, pe: usize) {
        let _ = self.fadd(var, index, value, pe);
    }

    /// `shmem_inc`: increment without fetching.
    pub fn inc<T: AtomicInt + From<u8>>(&self, var: &Sym<T>, index: usize, pe: usize) {
        let _ = self.finc(var, index, pe);
    }

    /// `shmem_float_swap` / `shmem_double_swap`: atomic swap of a
    /// floating-point value (bit-pattern swap).
    pub fn swap_f32(&self, var: &Sym<f32>, index: usize, value: f32, pe: usize) -> f32 {
        let off = self.atomic_off(var, index, pe);
        f32::from_bits(
            self.fab
                .arena_rmw(off, RmwOp::Swap, value.to_bits() as u64, RmwWidth::W32) as u32,
        )
    }

    /// Double-precision swap.
    pub fn swap_f64(&self, var: &Sym<f64>, index: usize, value: f64, pe: usize) -> f64 {
        let off = self.atomic_off(var, index, pe);
        f64::from_bits(self.fab.arena_rmw(off, RmwOp::Swap, value.to_bits(), RmwWidth::W64))
    }

    /// Atomic fetch-add on a float via a CAS loop (an extension; useful
    /// for histogram-style kernels).
    pub fn fadd_f64(&self, var: &Sym<f64>, index: usize, value: f64, pe: usize) -> f64 {
        let off = self.atomic_off(var, index, pe);
        let mut attempt = 0u32;
        loop {
            let cur = self.fab.arena_read_u64(off);
            let new = (f64::from_bits(cur) + value).to_bits();
            if self.fab.arena_cswap(off, cur, new, RmwWidth::W64) == cur {
                return f64::from_bits(cur);
            }
            self.fab.wait_pause(attempt);
            attempt += 1;
        }
    }
}
