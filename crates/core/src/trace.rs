//! Operation tracing.
//!
//! When enabled ([`crate::RuntimeConfig::with_trace`]), every costed
//! operation appends a [`TraceEvent`] with its start/end times — a
//! timeline of what each PE did, suitable for debugging protocol
//! schedules or rendering Gantt-style charts. On the virtual-time
//! engines tracing is deterministic (events are part of the virtual-
//! time execution); the native engine stamps wall-clock times.
//!
//! The sink is organized as **per-lane append logs**: each execution
//! context (one lane per PE plus one per interrupt-service context)
//! appends to its own chunked log with plain stores and one
//! release-store per event — no lock, no contention with other lanes —
//! and the logs are merged and sorted only when the trace is read
//! back. A watchdog may read a live log concurrently (stall
//! diagnostics); it sees exactly the committed prefix. Callers without
//! a lane ([`TraceSink::record`]) fall back to a mutex-guarded
//! overflow log — correct, but cold-path only.

use std::cell::UnsafeCell;
use std::mem::MaybeUninit;
use std::sync::atomic::{AtomicPtr, AtomicUsize, Ordering};

use desim::time::SimTime;
use substrate::sync::Mutex;

/// What kind of operation an event records.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum TraceKind {
    /// UDN protocol message sent (dest PE in `peer`).
    UdnSend,
    /// Data copy (bytes in `bytes`).
    Copy,
    /// Atomic operation.
    Atomic,
    /// Compute phase.
    Compute,
    /// Barrier/collective wait time (polling).
    Wait,
    /// Cross-chip mPIPE link transfer (far chip in `peer`, frame bytes
    /// in `bytes`) — multichip engine only.
    Link,
}

impl TraceKind {
    pub fn name(self) -> &'static str {
        match self {
            TraceKind::UdnSend => "udn_send",
            TraceKind::Copy => "copy",
            TraceKind::Atomic => "atomic",
            TraceKind::Compute => "compute",
            TraceKind::Wait => "wait",
            TraceKind::Link => "link",
        }
    }
}

/// One traced operation.
#[derive(Clone, Copy, Debug)]
pub struct TraceEvent {
    pub pe: usize,
    pub kind: TraceKind,
    pub start: SimTime,
    pub end: SimTime,
    /// Peer PE for sends; `usize::MAX` otherwise.
    pub peer: usize,
    /// Payload bytes for copies/sends; 0 otherwise.
    pub bytes: u64,
}

/// Events per log chunk. Chunks are singly linked; a lane allocates a
/// fresh chunk only every `CHUNK` events, so the amortized append cost
/// is one slot store plus one release-store of the committed length.
const CHUNK: usize = 1024;

struct Chunk {
    /// Committed events in `events` — written only by the lane's owner
    /// (release), read by concurrent readers (acquire).
    len: AtomicUsize,
    /// Next chunk, installed by the owner once this one fills.
    next: AtomicPtr<Chunk>,
    events: [UnsafeCell<MaybeUninit<TraceEvent>>; CHUNK],
}

impl Chunk {
    /// Allocate a chunk without constructing the 1024-slot event array:
    /// the slots are `MaybeUninit` (legal to leave as raw heap memory),
    /// and materializing them through `Box::new` would build-and-copy
    /// ~48 KiB on the stack mid-record — a latency spike on the lane
    /// owner's hot path every `CHUNK` events.
    fn boxed() -> *mut Chunk {
        let layout = std::alloc::Layout::new::<Chunk>();
        unsafe {
            let p = std::alloc::alloc(layout).cast::<Chunk>();
            if p.is_null() {
                std::alloc::handle_alloc_error(layout);
            }
            (&raw mut (*p).len).write(AtomicUsize::new(0));
            (&raw mut (*p).next).write(AtomicPtr::new(std::ptr::null_mut()));
            p
        }
    }
}

/// One single-writer append log.
///
/// # Safety protocol
/// Exactly one execution context appends to a lane (the engines assign
/// lane = PE index for main contexts and `npes + PE` for service
/// contexts). Readers only touch slots below the acquired `len`, which
/// the owner's release-store guarantees are fully written; the owner
/// never rewrites a committed slot.
struct Lane {
    head: *mut Chunk,
    /// Owner-maintained append position (readers walk from `head`).
    tail: AtomicPtr<Chunk>,
    /// Events already drained by [`TraceSink::take`].
    consumed: AtomicUsize,
}

unsafe impl Send for Lane {}
unsafe impl Sync for Lane {}

impl Lane {
    fn new() -> Self {
        let head = Chunk::boxed();
        Self {
            head,
            tail: AtomicPtr::new(head),
            consumed: AtomicUsize::new(0),
        }
    }

    /// Owner-only append (see the lane safety protocol).
    fn push(&self, ev: TraceEvent) {
        let tail = self.tail.load(Ordering::Relaxed);
        unsafe {
            let n = (*tail).len.load(Ordering::Relaxed);
            if n < CHUNK {
                (*(*tail).events[n].get()).write(ev);
                (*tail).len.store(n + 1, Ordering::Release);
            } else {
                let fresh = Chunk::boxed();
                (*(*fresh).events[0].get()).write(ev);
                // Published by the release-store of `next` below.
                (*fresh).len.store(1, Ordering::Relaxed);
                (*tail).next.store(fresh, Ordering::Release);
                self.tail.store(fresh, Ordering::Relaxed);
            }
        }
    }

    /// Visit every committed event in append order.
    fn for_each(&self, mut f: impl FnMut(usize, TraceEvent)) {
        let mut base = 0usize;
        let mut chunk = self.head;
        while !chunk.is_null() {
            let n = unsafe { (*chunk).len.load(Ordering::Acquire) };
            for i in 0..n {
                let ev = unsafe { (*(*chunk).events[i].get()).assume_init_read() };
                f(base + i, ev);
            }
            if n < CHUNK {
                break;
            }
            chunk = unsafe { (*chunk).next.load(Ordering::Acquire) };
            base += CHUNK;
        }
    }

    fn committed(&self) -> usize {
        let mut total = 0usize;
        let mut chunk = self.head;
        while !chunk.is_null() {
            let n = unsafe { (*chunk).len.load(Ordering::Acquire) };
            total += n;
            if n < CHUNK {
                break;
            }
            chunk = unsafe { (*chunk).next.load(Ordering::Acquire) };
        }
        total
    }
}

impl Drop for Lane {
    fn drop(&mut self) {
        let mut chunk = self.head;
        while !chunk.is_null() {
            let next = unsafe { (*chunk).next.load(Ordering::Relaxed) };
            // Matches the raw `alloc` in `Chunk::boxed`; events are
            // `Copy`, so committed slots need no drop either.
            unsafe { std::alloc::dealloc(chunk.cast(), std::alloc::Layout::new::<Chunk>()) };
            chunk = next;
        }
    }
}

/// Shared, append-only event sink: per-context lock-free lanes plus a
/// mutex-guarded overflow log for lane-less callers.
#[derive(Default)]
pub struct TraceSink {
    lanes: Vec<Lane>,
    overflow: Mutex<Vec<TraceEvent>>,
}

impl TraceSink {
    /// A sink with no lanes: every record goes through the overflow
    /// mutex. Fine for tests and cold paths; engines use
    /// [`TraceSink::with_lanes`].
    pub fn new() -> Self {
        Self::default()
    }

    /// A sink with `lanes` single-writer lanes (engines pass
    /// `2 * npes`: one per PE plus one per interrupt-service context).
    pub fn with_lanes(lanes: usize) -> Self {
        Self {
            lanes: (0..lanes).map(|_| Lane::new()).collect(),
            overflow: Mutex::new(Vec::new()),
        }
    }

    /// Append to `lane`, lock-free. **The caller must be the lane's
    /// only writer** (the engines' lane assignment guarantees this);
    /// unknown lanes fall back to the overflow log.
    pub fn record_lane(&self, lane: usize, ev: TraceEvent) {
        match self.lanes.get(lane) {
            Some(l) => l.push(ev),
            None => self.overflow.lock().push(ev),
        }
    }

    /// Append without a lane (mutex-guarded; cold paths only).
    pub fn record(&self, ev: TraceEvent) {
        self.overflow.lock().push(ev);
    }

    /// Drain all events, sorted by start time (ties by PE) for a stable,
    /// readable timeline.
    pub fn take(&self) -> Vec<TraceEvent> {
        let mut v: Vec<TraceEvent> = Vec::new();
        for lane in &self.lanes {
            let consumed = lane.consumed.load(Ordering::Acquire);
            let mut seen = 0usize;
            lane.for_each(|i, ev| {
                if i >= consumed {
                    v.push(ev);
                }
                seen = i + 1;
            });
            lane.consumed.store(seen.max(consumed), Ordering::Release);
        }
        v.append(&mut std::mem::take(&mut *self.overflow.lock()));
        v.sort_by_key(|e| (e.start, e.pe, e.end));
        v
    }

    pub fn len(&self) -> usize {
        let in_lanes: usize = self
            .lanes
            .iter()
            .map(|l| l.committed().saturating_sub(l.consumed.load(Ordering::Acquire)))
            .sum();
        in_lanes + self.overflow.lock().len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Last recorded event per PE, **without draining**. Within one
    /// lane (or the overflow log), append order — not start time —
    /// defines "last"; when a PE's main and service lanes both have
    /// events, the later start time wins (on the native engine both
    /// stamp one wall clock, so that is the most recently appended).
    /// PEs ≥ `npes` are ignored here: the caller asked for a
    /// fixed-width dump.
    pub fn last_per_pe(&self, npes: usize) -> Vec<Option<TraceEvent>> {
        let mut out: Vec<Option<TraceEvent>> = vec![None; npes];
        let merge = |out: &mut Vec<Option<TraceEvent>>, cand: &[Option<TraceEvent>]| {
            for (slot, c) in out.iter_mut().zip(cand) {
                if let Some(c) = c {
                    if slot.is_none_or(|cur| c.start >= cur.start) {
                        *slot = Some(*c);
                    }
                }
            }
        };
        let mut lane_last: Vec<Option<TraceEvent>> = vec![None; npes];
        for lane in &self.lanes {
            lane_last.iter_mut().for_each(|s| *s = None);
            let consumed = lane.consumed.load(Ordering::Acquire);
            lane.for_each(|i, e| {
                if i >= consumed && e.pe < npes {
                    lane_last[e.pe] = Some(e);
                }
            });
            merge(&mut out, &lane_last);
        }
        lane_last.iter_mut().for_each(|s| *s = None);
        for e in self.overflow.lock().iter() {
            if e.pe < npes {
                lane_last[e.pe] = Some(*e);
            }
        }
        merge(&mut out, &lane_last);
        out
    }
}

/// Render a timeline as TSV (`start_ns  end_ns  pe  kind  peer  bytes`).
pub fn to_tsv(events: &[TraceEvent]) -> String {
    let mut out = String::from("start_ns\tend_ns\tpe\tkind\tpeer\tbytes\n");
    for e in events {
        let peer = if e.peer == usize::MAX {
            "-".to_string()
        } else {
            e.peer.to_string()
        };
        out.push_str(&format!(
            "{:.1}\t{:.1}\t{}\t{}\t{}\t{}\n",
            e.start.ns_f64(),
            e.end.ns_f64(),
            e.pe,
            e.kind.name(),
            peer,
            e.bytes
        ));
    }
    out
}

/// Per-PE busy-time summary by kind, in ns.
///
/// The result covers every PE present in `events` even when one exceeds
/// the caller's `npes` (the caller's count being stale must not silently
/// drop busy time); a debug build flags the inconsistency loudly.
pub fn summarize(events: &[TraceEvent], npes: usize) -> Vec<std::collections::HashMap<&'static str, f64>> {
    let width = events
        .iter()
        .map(|e| e.pe + 1)
        .fold(npes, usize::max);
    debug_assert_eq!(
        width, npes,
        "summarize: events mention PE {} but caller claimed {} PEs",
        width - 1,
        npes
    );
    let mut out = vec![std::collections::HashMap::new(); width];
    for e in events {
        *out[e.pe].entry(e.kind.name()).or_insert(0.0) +=
            e.end.ns_f64() - e.start.ns_f64();
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(pe: usize, kind: TraceKind, s: u64, e: u64) -> TraceEvent {
        TraceEvent {
            pe,
            kind,
            start: SimTime::from_ns(s),
            end: SimTime::from_ns(e),
            peer: usize::MAX,
            bytes: 0,
        }
    }

    #[test]
    fn sink_collects_and_sorts() {
        let sink = TraceSink::new();
        sink.record(ev(1, TraceKind::Copy, 50, 60));
        sink.record(ev(0, TraceKind::Compute, 10, 40));
        sink.record(ev(0, TraceKind::Copy, 50, 55));
        assert_eq!(sink.len(), 3);
        let v = sink.take();
        assert_eq!(v[0].start, SimTime::from_ns(10));
        assert_eq!(v[1].pe, 0); // tie at 50 ns: PE 0 first
        assert_eq!(v[2].pe, 1);
        assert!(sink.is_empty());
    }

    #[test]
    fn tsv_rendering() {
        let t = to_tsv(&[ev(2, TraceKind::Wait, 100, 250)]);
        assert!(t.contains("100.0\t250.0\t2\twait\t-\t0"));
    }

    #[test]
    fn summary_accumulates_by_kind() {
        let events = vec![
            ev(0, TraceKind::Copy, 0, 10),
            ev(0, TraceKind::Copy, 20, 50),
            ev(1, TraceKind::Compute, 0, 100),
        ];
        let s = summarize(&events, 2);
        assert_eq!(s[0]["copy"], 40.0);
        assert_eq!(s[1]["compute"], 100.0);
        assert!(!s[0].contains_key("compute"));
    }

    #[test]
    #[cfg_attr(debug_assertions, should_panic(expected = "events mention PE 5"))]
    fn summary_never_silently_drops_out_of_range_pes() {
        let events = vec![ev(5, TraceKind::Copy, 0, 10)];
        // Debug builds flag the stale PE count loudly; release builds
        // widen the output instead of dropping the event.
        let s = summarize(&events, 2);
        assert_eq!(s.len(), 6);
        assert_eq!(s[5]["copy"], 10.0);
    }

    #[test]
    fn last_per_pe_keeps_insertion_order_per_pe() {
        let sink = TraceSink::new();
        sink.record(ev(0, TraceKind::Copy, 10, 20));
        sink.record(ev(1, TraceKind::Compute, 0, 5));
        sink.record(ev(0, TraceKind::Atomic, 3, 4)); // earlier start, later insert
        let last = sink.last_per_pe(3);
        assert_eq!(last[0].unwrap().kind, TraceKind::Atomic);
        assert_eq!(last[1].unwrap().kind, TraceKind::Compute);
        assert!(last[2].is_none());
        assert_eq!(sink.len(), 3, "last_per_pe must not drain");
    }

    #[test]
    fn lanes_merge_sorted_and_drain() {
        let sink = TraceSink::with_lanes(2);
        sink.record_lane(1, ev(1, TraceKind::Compute, 30, 30));
        sink.record_lane(0, ev(0, TraceKind::Compute, 10, 10));
        sink.record_lane(0, ev(0, TraceKind::Compute, 50, 50));
        sink.record(ev(7, TraceKind::Compute, 20, 20)); // lane-less caller → overflow log
        assert_eq!(sink.len(), 4);

        let taken = sink.take();
        let starts: Vec<u64> = taken.iter().map(|e| e.start.ns_f64() as u64).collect();
        assert_eq!(starts, vec![10, 20, 30, 50]);
        assert!(sink.is_empty(), "take drains lanes and overflow");

        // Draining is per-event, not per-lane-reset: new appends after a
        // take are the only thing the next take sees.
        sink.record_lane(0, ev(0, TraceKind::Compute, 99, 99));
        assert_eq!(sink.len(), 1);
        assert_eq!(sink.take().len(), 1);
    }

    #[test]
    fn lane_grows_past_chunk_boundary() {
        let sink = TraceSink::with_lanes(1);
        let n = CHUNK * 2 + 17;
        for i in 0..n {
            sink.record_lane(0, ev(0, TraceKind::Compute, i as u64, i as u64));
        }
        assert_eq!(sink.len(), n);
        let taken = sink.take();
        assert_eq!(taken.len(), n);
        // Append order equals start order here, so the sort is a no-op
        // and verifies nothing was lost or duplicated across chunks.
        for (i, e) in taken.iter().enumerate() {
            assert_eq!(e.start.ns_f64() as u64, i as u64);
        }
        assert!(sink.is_empty());
    }

    #[test]
    fn unknown_lane_falls_back_to_overflow() {
        let sink = TraceSink::with_lanes(1);
        sink.record_lane(5, ev(3, TraceKind::Compute, 40, 40));
        assert_eq!(sink.len(), 1);
        assert_eq!(sink.take()[0].pe, 3);
    }

    #[test]
    fn concurrent_lane_writers_lose_nothing() {
        let sink = std::sync::Arc::new(TraceSink::with_lanes(4));
        let per = CHUNK + 100; // force a chunk hand-off per lane
        let handles: Vec<_> = (0..4)
            .map(|lane| {
                let sink = sink.clone();
                std::thread::spawn(move || {
                    for i in 0..per {
                        let t = (lane * per + i) as u64;
                        sink.record_lane(lane, ev(lane, TraceKind::Compute, t, t));
                    }
                })
            })
            .collect();
        // Reader racing the writers must only ever see committed events.
        for _ in 0..50 {
            let _ = sink.len();
            let _ = sink.last_per_pe(4);
        }
        for h in handles {
            h.join().unwrap();
        }
        let taken = sink.take();
        assert_eq!(taken.len(), 4 * per);
        let mut counts = [0usize; 4];
        for e in &taken {
            counts[e.pe] += 1;
        }
        assert_eq!(counts, [per; 4]);
    }

    #[test]
    fn last_per_pe_merges_lanes_by_start_time() {
        let sink = TraceSink::with_lanes(2);
        // Same PE traced from its main lane (0) and service lane (1);
        // the later start time must win regardless of lane order.
        sink.record_lane(1, ev(0, TraceKind::Compute, 200, 200));
        sink.record_lane(0, ev(0, TraceKind::Compute, 100, 100));
        let last = sink.last_per_pe(1);
        assert_eq!(last[0].unwrap().start, SimTime::from_ns(200));
    }
}
