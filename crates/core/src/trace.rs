//! Operation tracing for the timed engine.
//!
//! When enabled ([`crate::RuntimeConfig::with_trace`]), every costed
//! operation appends a [`TraceEvent`] with its virtual start/end times —
//! a timeline of what each PE did, suitable for debugging protocol
//! schedules or rendering Gantt-style charts. Tracing is deterministic
//! (events are part of the virtual-time execution, not wall time).

use desim::time::SimTime;
use substrate::sync::Mutex;

/// What kind of operation an event records.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum TraceKind {
    /// UDN protocol message sent (dest PE in `peer`).
    UdnSend,
    /// Data copy (bytes in `bytes`).
    Copy,
    /// Atomic operation.
    Atomic,
    /// Compute phase.
    Compute,
    /// Barrier/collective wait time (polling).
    Wait,
    /// Cross-chip mPIPE link transfer (far chip in `peer`, frame bytes
    /// in `bytes`) — multichip engine only.
    Link,
}

impl TraceKind {
    pub fn name(self) -> &'static str {
        match self {
            TraceKind::UdnSend => "udn_send",
            TraceKind::Copy => "copy",
            TraceKind::Atomic => "atomic",
            TraceKind::Compute => "compute",
            TraceKind::Wait => "wait",
            TraceKind::Link => "link",
        }
    }
}

/// One traced operation.
#[derive(Clone, Copy, Debug)]
pub struct TraceEvent {
    pub pe: usize,
    pub kind: TraceKind,
    pub start: SimTime,
    pub end: SimTime,
    /// Peer PE for sends; `usize::MAX` otherwise.
    pub peer: usize,
    /// Payload bytes for copies/sends; 0 otherwise.
    pub bytes: u64,
}

/// Shared, append-only event sink.
#[derive(Default)]
pub struct TraceSink {
    events: Mutex<Vec<TraceEvent>>,
}

impl TraceSink {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn record(&self, ev: TraceEvent) {
        self.events.lock().push(ev);
    }

    /// Drain all events, sorted by start time (ties by PE) for a stable,
    /// readable timeline.
    pub fn take(&self) -> Vec<TraceEvent> {
        let mut v = std::mem::take(&mut *self.events.lock());
        v.sort_by_key(|e| (e.start, e.pe, e.end));
        v
    }

    pub fn len(&self) -> usize {
        self.events.lock().len()
    }

    pub fn is_empty(&self) -> bool {
        self.events.lock().is_empty()
    }

    /// Last recorded event per PE, **without draining** — insertion
    /// order, not start time, defines "last", so on the native engine
    /// (where clocks are wall time and records race) this is each PE's
    /// most recently appended event. PEs ≥ `npes` are ignored here: the
    /// caller asked for a fixed-width dump.
    pub fn last_per_pe(&self, npes: usize) -> Vec<Option<TraceEvent>> {
        let mut out = vec![None; npes];
        for e in self.events.lock().iter() {
            if e.pe < npes {
                out[e.pe] = Some(*e);
            }
        }
        out
    }
}

/// Render a timeline as TSV (`start_ns  end_ns  pe  kind  peer  bytes`).
pub fn to_tsv(events: &[TraceEvent]) -> String {
    let mut out = String::from("start_ns\tend_ns\tpe\tkind\tpeer\tbytes\n");
    for e in events {
        let peer = if e.peer == usize::MAX {
            "-".to_string()
        } else {
            e.peer.to_string()
        };
        out.push_str(&format!(
            "{:.1}\t{:.1}\t{}\t{}\t{}\t{}\n",
            e.start.ns_f64(),
            e.end.ns_f64(),
            e.pe,
            e.kind.name(),
            peer,
            e.bytes
        ));
    }
    out
}

/// Per-PE busy-time summary by kind, in ns.
///
/// The result covers every PE present in `events` even when one exceeds
/// the caller's `npes` (the caller's count being stale must not silently
/// drop busy time); a debug build flags the inconsistency loudly.
pub fn summarize(events: &[TraceEvent], npes: usize) -> Vec<std::collections::HashMap<&'static str, f64>> {
    let width = events
        .iter()
        .map(|e| e.pe + 1)
        .fold(npes, usize::max);
    debug_assert_eq!(
        width, npes,
        "summarize: events mention PE {} but caller claimed {} PEs",
        width - 1,
        npes
    );
    let mut out = vec![std::collections::HashMap::new(); width];
    for e in events {
        *out[e.pe].entry(e.kind.name()).or_insert(0.0) +=
            e.end.ns_f64() - e.start.ns_f64();
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(pe: usize, kind: TraceKind, s: u64, e: u64) -> TraceEvent {
        TraceEvent {
            pe,
            kind,
            start: SimTime::from_ns(s),
            end: SimTime::from_ns(e),
            peer: usize::MAX,
            bytes: 0,
        }
    }

    #[test]
    fn sink_collects_and_sorts() {
        let sink = TraceSink::new();
        sink.record(ev(1, TraceKind::Copy, 50, 60));
        sink.record(ev(0, TraceKind::Compute, 10, 40));
        sink.record(ev(0, TraceKind::Copy, 50, 55));
        assert_eq!(sink.len(), 3);
        let v = sink.take();
        assert_eq!(v[0].start, SimTime::from_ns(10));
        assert_eq!(v[1].pe, 0); // tie at 50 ns: PE 0 first
        assert_eq!(v[2].pe, 1);
        assert!(sink.is_empty());
    }

    #[test]
    fn tsv_rendering() {
        let t = to_tsv(&[ev(2, TraceKind::Wait, 100, 250)]);
        assert!(t.contains("100.0\t250.0\t2\twait\t-\t0"));
    }

    #[test]
    fn summary_accumulates_by_kind() {
        let events = vec![
            ev(0, TraceKind::Copy, 0, 10),
            ev(0, TraceKind::Copy, 20, 50),
            ev(1, TraceKind::Compute, 0, 100),
        ];
        let s = summarize(&events, 2);
        assert_eq!(s[0]["copy"], 40.0);
        assert_eq!(s[1]["compute"], 100.0);
        assert!(!s[0].contains_key("compute"));
    }

    #[test]
    #[cfg_attr(debug_assertions, should_panic(expected = "events mention PE 5"))]
    fn summary_never_silently_drops_out_of_range_pes() {
        let events = vec![ev(5, TraceKind::Copy, 0, 10)];
        // Debug builds flag the stale PE count loudly; release builds
        // widen the output instead of dropping the event.
        let s = summarize(&events, 2);
        assert_eq!(s.len(), 6);
        assert_eq!(s[5]["copy"], 10.0);
    }

    #[test]
    fn last_per_pe_keeps_insertion_order_per_pe() {
        let sink = TraceSink::new();
        sink.record(ev(0, TraceKind::Copy, 10, 20));
        sink.record(ev(1, TraceKind::Compute, 0, 5));
        sink.record(ev(0, TraceKind::Atomic, 3, 4)); // earlier start, later insert
        let last = sink.last_per_pe(3);
        assert_eq!(last[0].unwrap().kind, TraceKind::Atomic);
        assert_eq!(last[1].unwrap().kind, TraceKind::Compute);
        assert!(last[2].is_none());
        assert_eq!(sink.len(), 3, "last_per_pe must not drain");
    }
}
