//! The symmetric-heap allocator.
//!
//! The paper's `shmalloc()` design is "a doubly-linked list tracking the
//! memory segments being used in the current tile's partition"
//! (Section IV-A); symmetry is implicit — every PE calls the allocator
//! with the same sizes in the same order, so every PE computes the same
//! partition-relative offsets. This module is that allocator: a
//! doubly-linked block list (indices into a slab, not raw pointers) with
//! first-fit allocation, block splitting, and coalescing on free.
//!
//! The allocator itself is single-threaded per PE (each PE manages its
//! own partition); determinism across PEs is what makes offsets
//! symmetric, and is checked by tests and the `substrate::proptest_mini`
//! property suite in `tests/heap_props.rs`.

const NONE: usize = usize::MAX;

/// Default allocation alignment — `shmemalign` can request more.
pub const DEFAULT_ALIGN: usize = 8;

#[derive(Clone, Debug)]
struct Block {
    off: usize,
    len: usize,
    free: bool,
    prev: usize,
    next: usize,
}

/// First-fit free-list allocator over one partition.
#[derive(Clone, Debug)]
pub struct Heap {
    blocks: Vec<Block>,
    head: usize,
    size: usize,
    allocated: usize,
    /// Free slots in `blocks` available for reuse.
    spare: Vec<usize>,
}

/// Allocation failure.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum HeapError {
    /// No free block large enough.
    OutOfMemory { requested: usize },
    /// `shfree`/`shrealloc` of an offset that is not an allocation start.
    InvalidFree { offset: usize },
    /// Alignment must be a nonzero power of two.
    BadAlign { align: usize },
}

impl std::fmt::Display for HeapError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HeapError::OutOfMemory { requested } => {
                write!(f, "symmetric heap exhausted allocating {requested} bytes")
            }
            HeapError::InvalidFree { offset } => {
                write!(f, "offset {offset} is not the start of a live allocation")
            }
            HeapError::BadAlign { align } => write!(f, "bad alignment {align}"),
        }
    }
}

impl std::error::Error for HeapError {}

impl Heap {
    /// An empty heap managing `[0, size)`.
    pub fn new(size: usize) -> Self {
        let first = Block {
            off: 0,
            len: size,
            free: true,
            prev: NONE,
            next: NONE,
        };
        Self {
            blocks: vec![first],
            head: 0,
            size,
            allocated: 0,
            spare: Vec::new(),
        }
    }

    /// Total managed bytes.
    pub fn size(&self) -> usize {
        self.size
    }

    /// Bytes currently allocated (including alignment padding absorbed
    /// into blocks).
    pub fn allocated(&self) -> usize {
        self.allocated
    }

    /// Allocate `len` bytes at [`DEFAULT_ALIGN`]. Zero-length requests
    /// consume a minimal block so every allocation has a unique offset
    /// (matching `malloc` semantics).
    pub fn alloc(&mut self, len: usize) -> Result<usize, HeapError> {
        self.alloc_aligned(len, DEFAULT_ALIGN)
    }

    /// Allocate with explicit alignment (`shmemalign`).
    pub fn alloc_aligned(&mut self, len: usize, align: usize) -> Result<usize, HeapError> {
        if align == 0 || !align.is_power_of_two() {
            return Err(HeapError::BadAlign { align });
        }
        let want = round_up(len.max(1), DEFAULT_ALIGN);
        let mut cur = self.head;
        while cur != NONE {
            let (off, blen, free) = {
                let b = &self.blocks[cur];
                (b.off, b.len, b.free)
            };
            if free {
                let aligned = round_up(off, align);
                let pad = aligned - off;
                if blen >= pad + want {
                    return Ok(self.carve(cur, pad, want));
                }
            }
            cur = self.blocks[cur].next;
        }
        Err(HeapError::OutOfMemory { requested: len })
    }

    /// Split free block `idx` into [pad][want][rest], allocating the
    /// middle; returns the allocation offset.
    fn carve(&mut self, idx: usize, pad: usize, want: usize) -> usize {
        if pad > 0 {
            // Leading pad becomes (stays) a free block; the allocation
            // starts at a new block after it.
            let alloc_idx = self.split_at(idx, pad);
            return self.carve(alloc_idx, 0, want);
        }
        let blen = self.blocks[idx].len;
        if blen > want {
            self.split_at(idx, want);
        }
        self.blocks[idx].free = false;
        self.allocated += self.blocks[idx].len;
        self.blocks[idx].off
    }

    /// Split block `idx` at `at` bytes; returns the index of the new
    /// second block. Both halves keep `free = blocks[idx].free`.
    fn split_at(&mut self, idx: usize, at: usize) -> usize {
        let (off, len, free, next) = {
            let b = &self.blocks[idx];
            (b.off, b.len, b.free, b.next)
        };
        debug_assert!(at > 0 && at < len);
        let new = Block {
            off: off + at,
            len: len - at,
            free,
            prev: idx,
            next,
        };
        let new_idx = self.insert_block(new);
        self.blocks[idx].len = at;
        self.blocks[idx].next = new_idx;
        if next != NONE {
            self.blocks[next].prev = new_idx;
        }
        new_idx
    }

    fn insert_block(&mut self, b: Block) -> usize {
        if let Some(i) = self.spare.pop() {
            self.blocks[i] = b;
            i
        } else {
            self.blocks.push(b);
            self.blocks.len() - 1
        }
    }

    /// Free the allocation starting at `off`, coalescing with free
    /// neighbors.
    pub fn free(&mut self, off: usize) -> Result<(), HeapError> {
        let idx = self
            .find_live(off)
            .ok_or(HeapError::InvalidFree { offset: off })?;
        self.allocated -= self.blocks[idx].len;
        self.blocks[idx].free = true;
        // Coalesce with next.
        let next = self.blocks[idx].next;
        if next != NONE && self.blocks[next].free {
            self.absorb_next(idx);
        }
        // Coalesce with prev.
        let prev = self.blocks[idx].prev;
        if prev != NONE && self.blocks[prev].free {
            self.absorb_next(prev);
        }
        Ok(())
    }

    /// Grow or shrink an allocation (`shrealloc`): returns the new
    /// offset. Contents preservation is the caller's job (the context
    /// copies through the arena), since the heap only tracks geometry.
    pub fn realloc(&mut self, off: usize, new_len: usize) -> Result<usize, HeapError> {
        let idx = self
            .find_live(off)
            .ok_or(HeapError::InvalidFree { offset: off })?;
        let cur_len = self.blocks[idx].len;
        let want = round_up(new_len.max(1), DEFAULT_ALIGN);
        if want <= cur_len {
            return Ok(off); // shrink in place (keep block size; simple)
        }
        // Try extending into a free successor.
        let next = self.blocks[idx].next;
        if next != NONE && self.blocks[next].free && cur_len + self.blocks[next].len >= want {
            self.absorb_next(idx);
            let total = self.blocks[idx].len;
            if total > want {
                let rest = self.split_at(idx, want);
                self.blocks[rest].free = true;
            }
            self.blocks[idx].free = false;
            self.allocated += self.blocks[idx].len - cur_len;
            return Ok(off);
        }
        // Move: allocate elsewhere, then free the old block.
        let new_off = self.alloc(new_len)?;
        self.free(off)?;
        Ok(new_off)
    }

    fn absorb_next(&mut self, idx: usize) {
        let next = self.blocks[idx].next;
        debug_assert_ne!(next, NONE);
        let (nlen, nnext) = (self.blocks[next].len, self.blocks[next].next);
        self.blocks[idx].len += nlen;
        self.blocks[idx].next = nnext;
        if nnext != NONE {
            self.blocks[nnext].prev = idx;
        }
        self.spare.push(next);
    }

    fn find_live(&self, off: usize) -> Option<usize> {
        let mut cur = self.head;
        while cur != NONE {
            let b = &self.blocks[cur];
            if !b.free && b.off == off {
                return Some(cur);
            }
            cur = b.next;
        }
        None
    }

    /// Internal consistency check (used by tests): blocks tile the
    /// partition exactly, links are consistent, and no two free blocks
    /// are adjacent.
    pub fn check_invariants(&self) {
        let mut cur = self.head;
        let mut expect_off = 0;
        let mut prev = NONE;
        let mut last_free = false;
        let mut total = 0;
        while cur != NONE {
            let b = &self.blocks[cur];
            assert_eq!(b.off, expect_off, "blocks must tile the partition");
            assert_eq!(b.prev, prev, "prev link broken at {cur}");
            assert!(b.len > 0, "zero-length block {cur}");
            assert!(!(last_free && b.free), "adjacent free blocks not coalesced");
            last_free = b.free;
            expect_off += b.len;
            total += b.len;
            prev = cur;
            cur = b.next;
        }
        assert_eq!(total, self.size, "blocks must cover the whole partition");
    }

    /// Live allocations as (offset, len) pairs, in address order.
    pub fn live_blocks(&self) -> Vec<(usize, usize)> {
        let mut out = Vec::new();
        let mut cur = self.head;
        while cur != NONE {
            let b = &self.blocks[cur];
            if !b.free {
                out.push((b.off, b.len));
            }
            cur = b.next;
        }
        out
    }
}

fn round_up(v: usize, align: usize) -> usize {
    (v + align - 1) & !(align - 1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_free_roundtrip() {
        let mut h = Heap::new(1024);
        let a = h.alloc(100).unwrap();
        let b = h.alloc(200).unwrap();
        assert_ne!(a, b);
        h.check_invariants();
        h.free(a).unwrap();
        h.free(b).unwrap();
        h.check_invariants();
        assert_eq!(h.allocated(), 0);
        // Fully coalesced: a max-size alloc succeeds again.
        let c = h.alloc(1024).unwrap();
        assert_eq!(c, 0);
    }

    #[test]
    fn deterministic_offsets_across_replicas() {
        // The symmetry property: same call sequence => same offsets.
        let run = || {
            let mut h = Heap::new(4096);
            let a = h.alloc(64).unwrap();
            let b = h.alloc(128).unwrap();
            h.free(a).unwrap();
            let c = h.alloc(32).unwrap();
            let d = h.alloc(640).unwrap();
            (a, b, c, d)
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn first_fit_reuses_freed_hole() {
        let mut h = Heap::new(1024);
        let a = h.alloc(128).unwrap();
        let _b = h.alloc(128).unwrap();
        h.free(a).unwrap();
        let c = h.alloc(64).unwrap();
        assert_eq!(c, a, "first fit should land in the freed hole");
        h.check_invariants();
    }

    #[test]
    fn allocations_are_aligned() {
        let mut h = Heap::new(1024);
        let a = h.alloc(3).unwrap();
        let b = h.alloc(5).unwrap();
        assert_eq!(a % DEFAULT_ALIGN, 0);
        assert_eq!(b % DEFAULT_ALIGN, 0);
        let c = h.alloc_aligned(10, 64).unwrap();
        assert_eq!(c % 64, 0);
        h.check_invariants();
    }

    #[test]
    fn bad_alignment_rejected() {
        let mut h = Heap::new(64);
        assert_eq!(h.alloc_aligned(8, 3), Err(HeapError::BadAlign { align: 3 }));
        assert_eq!(h.alloc_aligned(8, 0), Err(HeapError::BadAlign { align: 0 }));
    }

    #[test]
    fn oom_reported() {
        let mut h = Heap::new(128);
        h.alloc(100).unwrap();
        assert!(matches!(h.alloc(100), Err(HeapError::OutOfMemory { .. })));
    }

    #[test]
    fn double_free_rejected() {
        let mut h = Heap::new(128);
        let a = h.alloc(16).unwrap();
        h.free(a).unwrap();
        assert_eq!(h.free(a), Err(HeapError::InvalidFree { offset: a }));
        assert_eq!(h.free(9999), Err(HeapError::InvalidFree { offset: 9999 }));
    }

    #[test]
    fn zero_length_allocs_get_unique_offsets() {
        let mut h = Heap::new(128);
        let a = h.alloc(0).unwrap();
        let b = h.alloc(0).unwrap();
        assert_ne!(a, b);
    }

    #[test]
    fn realloc_in_place_when_possible() {
        let mut h = Heap::new(1024);
        let a = h.alloc(64).unwrap();
        // Nothing after `a` yet, so growth extends in place.
        let a2 = h.realloc(a, 256).unwrap();
        assert_eq!(a, a2);
        h.check_invariants();
        // Shrink is in place.
        let a3 = h.realloc(a2, 16).unwrap();
        assert_eq!(a2, a3);
    }

    #[test]
    fn realloc_moves_when_blocked() {
        let mut h = Heap::new(1024);
        let a = h.alloc(64).unwrap();
        let _wall = h.alloc(64).unwrap();
        let a2 = h.realloc(a, 512).unwrap();
        assert_ne!(a, a2);
        h.check_invariants();
    }

    #[test]
    fn fragmentation_then_coalesce() {
        let mut h = Heap::new(4096);
        // Fill the heap completely, then punch alternating holes.
        let offs: Vec<_> = (0..32).map(|_| h.alloc(128).unwrap()).collect();
        // Free every other block: no full-size alloc possible.
        for o in offs.iter().step_by(2) {
            h.free(*o).unwrap();
        }
        h.check_invariants();
        assert!(matches!(h.alloc(2048), Err(HeapError::OutOfMemory { .. })));
        // Free the rest: coalescing restores the arena.
        for o in offs.iter().skip(1).step_by(2) {
            h.free(*o).unwrap();
        }
        h.check_invariants();
        assert_eq!(h.alloc(4096).unwrap(), 0);
    }

    #[test]
    fn live_blocks_reporting() {
        let mut h = Heap::new(512);
        let a = h.alloc(64).unwrap();
        let b = h.alloc(32).unwrap();
        h.free(a).unwrap();
        let live = h.live_blocks();
        assert_eq!(live.len(), 1);
        assert_eq!(live[0].0, b);
    }
}
