//! C-flavored OpenSHMEM 1.0 names (Table I parity).
//!
//! The idiomatic Rust API lives on [`ShmemCtx`]; this module provides
//! thin wrappers under the classic OpenSHMEM names so that code ported
//! from C SHMEM reads almost line-for-line, and so the Table I coverage
//! test can assert the full basic subset exists. `start_pes()` is the
//! launcher ([`crate::runtime::launch`]); `shmem_finalize()` is the
//! paper's proposed extension (Section IV-E).

use crate::active_set::ActiveSet;
use crate::ctx::ShmemCtx;
use crate::rma::SignalOp;
use crate::symm::{Bits, Sym};
use crate::sync::pt2pt::{Cmp, WaitInt};
use crate::types::Reducible;

/// `_my_pe()`.
pub fn my_pe(ctx: &ShmemCtx) -> usize {
    ctx.my_pe()
}

/// `_num_pes()`.
pub fn num_pes(ctx: &ShmemCtx) -> usize {
    ctx.n_pes()
}

/// `shmalloc()`.
pub fn shmalloc<T: Bits>(ctx: &ShmemCtx, nelems: usize) -> Sym<T> {
    ctx.shmalloc(nelems)
}

/// `shfree()`.
pub fn shfree<T: Bits>(ctx: &ShmemCtx, sym: Sym<T>) {
    ctx.shfree(sym)
}

/// `shrealloc()`.
pub fn shrealloc<T: Bits>(ctx: &ShmemCtx, sym: Sym<T>, nelems: usize) -> Sym<T> {
    ctx.shrealloc(sym, nelems)
}

/// `shmemalign()`.
pub fn shmemalign<T: Bits>(ctx: &ShmemCtx, align: usize, nelems: usize) -> Sym<T> {
    ctx.shmemalign(align, nelems)
}

/// `shmem_int_p()` (and every other elemental put, via generics).
pub fn shmem_p<T: Bits>(ctx: &ShmemCtx, target: &Sym<T>, value: T, pe: usize) {
    ctx.p(target, 0, value, pe)
}

/// `shmem_int_g()`.
pub fn shmem_g<T: Bits>(ctx: &ShmemCtx, source: &Sym<T>, pe: usize) -> T {
    ctx.g(source, 0, pe)
}

/// `shmem_putmem()` — bulk bytes.
pub fn shmem_putmem(ctx: &ShmemCtx, target: &Sym<u8>, source: &[u8], pe: usize) {
    ctx.put(target, 0, source, pe)
}

/// `shmem_getmem()`.
pub fn shmem_getmem(ctx: &ShmemCtx, dest: &mut [u8], source: &Sym<u8>, pe: usize) {
    ctx.get(dest, source, 0, pe)
}

/// `shmem_put32/put64/put128`-style typed block put.
pub fn shmem_put<T: Bits>(ctx: &ShmemCtx, target: &Sym<T>, source: &[T], pe: usize) {
    ctx.put(target, 0, source, pe)
}

/// Typed block get.
pub fn shmem_get<T: Bits>(ctx: &ShmemCtx, dest: &mut [T], source: &Sym<T>, pe: usize) {
    ctx.get(dest, source, 0, pe)
}

/// `shmem_int_iput()`-style strided put of `nelems` elements.
#[allow(clippy::too_many_arguments)] // mirrors the OpenSHMEM C signature
pub fn shmem_iput<T: Bits>(
    ctx: &ShmemCtx,
    target: &Sym<T>,
    source: &[T],
    tst: usize,
    sst: usize,
    nelems: usize,
    pe: usize,
) {
    ctx.iput(target, 0, tst, source, sst, nelems, pe)
}

/// `shmem_int_iget()`-style strided get of `nelems` elements.
#[allow(clippy::too_many_arguments)] // mirrors the OpenSHMEM C signature
pub fn shmem_iget<T: Bits>(
    ctx: &ShmemCtx,
    dest: &mut [T],
    source: &Sym<T>,
    tst: usize,
    sst: usize,
    nelems: usize,
    pe: usize,
) {
    ctx.iget(dest, tst, source, 0, sst, nelems, pe)
}

/// `shmem_put_nbi()` (OpenSHMEM 1.3): non-blocking put, completed by
/// [`shmem_quiet`].
pub fn shmem_put_nbi<T: Bits>(ctx: &ShmemCtx, target: &Sym<T>, source: &[T], pe: usize) {
    ctx.put_nbi(target, 0, source, pe)
}

/// `shmem_get_nbi()` (OpenSHMEM 1.3): non-blocking get, completed by
/// [`shmem_quiet`].
pub fn shmem_get_nbi<T: Bits>(ctx: &ShmemCtx, dest: &mut [T], source: &Sym<T>, pe: usize) {
    ctx.get_nbi(dest, source, 0, pe)
}

/// `shmem_put_signal()` (OpenSHMEM 1.4): deliver `source` into `target`
/// on `pe`, then update `sig[sig_index]` there — payload visible before
/// the signal, so a [`shmem_wait_until_at`] on the signal word implies
/// the data has landed.
#[allow(clippy::too_many_arguments)] // mirrors the OpenSHMEM C signature
pub fn shmem_put_signal<T: Bits>(
    ctx: &ShmemCtx,
    target: &Sym<T>,
    source: &[T],
    sig: &Sym<u64>,
    sig_index: usize,
    sig_value: u64,
    sig_op: SignalOp,
    pe: usize,
) {
    ctx.put_signal(target, 0, source, sig, sig_index, sig_value, sig_op, pe)
}

/// `shmem_alltoall()` over the `(PE_start, logPE_stride, PE_size)`
/// triplet.
#[allow(clippy::too_many_arguments)] // mirrors the OpenSHMEM C signature
pub fn shmem_alltoall<T: Bits>(
    ctx: &ShmemCtx,
    target: &Sym<T>,
    source: &Sym<T>,
    nelems: usize,
    pe_start: usize,
    log_pe_stride: u32,
    pe_size: usize,
) {
    ctx.alltoall(target, source, nelems, ActiveSet::new(pe_start, log_pe_stride, pe_size))
}

/// `shmem_alltoalls()`: strided alltoall (strides in elements, as in
/// the spec).
#[allow(clippy::too_many_arguments)] // mirrors the OpenSHMEM C signature
pub fn shmem_alltoalls<T: Bits>(
    ctx: &ShmemCtx,
    target: &Sym<T>,
    source: &Sym<T>,
    dst: usize,
    sst: usize,
    nelems: usize,
    pe_start: usize,
    log_pe_stride: u32,
    pe_size: usize,
) {
    ctx.alltoalls(target, source, dst, sst, nelems, ActiveSet::new(pe_start, log_pe_stride, pe_size))
}

/// `shmem_barrier_all()`.
pub fn shmem_barrier_all(ctx: &ShmemCtx) {
    ctx.barrier_all()
}

/// `shmem_barrier()` over the `(PE_start, logPE_stride, PE_size)`
/// triplet.
pub fn shmem_barrier(ctx: &ShmemCtx, pe_start: usize, log_pe_stride: u32, pe_size: usize) {
    ctx.barrier(ActiveSet::new(pe_start, log_pe_stride, pe_size))
}

/// `shmem_fence()`.
pub fn shmem_fence(ctx: &ShmemCtx) {
    ctx.fence()
}

/// `shmem_quiet()`.
pub fn shmem_quiet(ctx: &ShmemCtx) {
    ctx.quiet()
}

/// `shmem_wait()`.
pub fn shmem_wait<T: WaitInt>(ctx: &ShmemCtx, var: &Sym<T>, value: T) {
    ctx.wait(var, 0, value)
}

/// `shmem_wait_until()`. Waits on element 0 of `var`; for signal words
/// landing at arbitrary offsets use [`shmem_wait_until_at`].
pub fn shmem_wait_until<T: WaitInt>(ctx: &ShmemCtx, var: &Sym<T>, cmp: Cmp, value: T) {
    shmem_wait_until_at(ctx, var, 0, cmp, value)
}

/// `shmem_wait_until()` on element `idx` of `var`. The C API takes a
/// pointer that may address any element of a symmetric array; the
/// original wrapper hardwired element 0, which made waits on non-zero
/// signal-word offsets (e.g. a `put_signal` landing at `sig[3]`)
/// silently wait on the wrong location.
pub fn shmem_wait_until_at<T: WaitInt>(ctx: &ShmemCtx, var: &Sym<T>, idx: usize, cmp: Cmp, value: T) {
    ctx.wait_until(var, idx, cmp, value)
}

/// `shmem_broadcast32()/broadcast64()` (element width from `T`).
#[allow(clippy::too_many_arguments)] // mirrors the OpenSHMEM C signature
pub fn shmem_broadcast<T: Bits>(
    ctx: &ShmemCtx,
    target: &Sym<T>,
    source: &Sym<T>,
    nelems: usize,
    pe_root: usize,
    pe_start: usize,
    log_pe_stride: u32,
    pe_size: usize,
) {
    ctx.broadcast(
        target,
        source,
        nelems,
        pe_root,
        ActiveSet::new(pe_start, log_pe_stride, pe_size),
    )
}

/// `shmem_collect32()/collect64()`.
pub fn shmem_collect<T: Bits>(
    ctx: &ShmemCtx,
    target: &Sym<T>,
    source: &Sym<T>,
    nelems: usize,
    pe_start: usize,
    log_pe_stride: u32,
    pe_size: usize,
) -> usize {
    ctx.collect(target, source, nelems, ActiveSet::new(pe_start, log_pe_stride, pe_size))
}

/// `shmem_fcollect32()/fcollect64()`.
pub fn shmem_fcollect<T: Bits>(
    ctx: &ShmemCtx,
    target: &Sym<T>,
    source: &Sym<T>,
    nelems: usize,
    pe_start: usize,
    log_pe_stride: u32,
    pe_size: usize,
) {
    ctx.fcollect(target, source, nelems, ActiveSet::new(pe_start, log_pe_stride, pe_size))
}

/// `shmem_int_sum_to_all()` and the rest of the reduction matrix.
pub fn shmem_sum_to_all<T: Reducible>(
    ctx: &ShmemCtx,
    target: &Sym<T>,
    source: &Sym<T>,
    nreduce: usize,
    pe_start: usize,
    log_pe_stride: u32,
    pe_size: usize,
) {
    ctx.sum_to_all(target, source, nreduce, ActiveSet::new(pe_start, log_pe_stride, pe_size))
}

/// `shmem_long_prod_to_all()` and friends.
pub fn shmem_prod_to_all<T: Reducible>(
    ctx: &ShmemCtx,
    target: &Sym<T>,
    source: &Sym<T>,
    nreduce: usize,
    pe_start: usize,
    log_pe_stride: u32,
    pe_size: usize,
) {
    ctx.prod_to_all(target, source, nreduce, ActiveSet::new(pe_start, log_pe_stride, pe_size))
}

/// `shmem_swap()`.
pub fn shmem_swap<T: crate::atomics::AtomicInt>(
    ctx: &ShmemCtx,
    target: &Sym<T>,
    value: T,
    pe: usize,
) -> T {
    ctx.swap(target, 0, value, pe)
}

/// `shmem_ptr()`.
pub fn shmem_ptr<T: Bits>(ctx: &ShmemCtx, target: &Sym<T>, pe: usize) -> Option<*mut T> {
    ctx.ptr(target, pe)
}

/// `shmem_finalize()` — the paper's proposed extension (Section IV-E).
pub fn shmem_finalize(ctx: &ShmemCtx) {
    ctx.finalize()
}
