//! The engine abstraction: everything TSHMEM's protocol code needs from
//! the machine underneath it.
//!
//! TSHMEM's algorithms — the token barrier, the four put/get address
//! classes, the collectives — are written once against [`Fabric`] and
//! executed by two engines:
//!
//! * [`crate::engine::native`] moves real bytes between real threads and
//!   measures wall time;
//! * [`crate::engine::timed`] moves the same real bytes under the
//!   cooperative virtual-time scheduler, charging the calibrated Tilera
//!   costs (UDN wire latency, cache-classified copy cycles, contention).
//!
//! Keeping a single protocol implementation is what makes the timed
//! engine an honest model of the shipped library (`DESIGN.md` §6).

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

use substrate::sync::Mutex;

/// UDN demux queue assignments (the hardware provides four).
pub const Q_BARRIER: usize = 0;
/// Collective control traffic (collect offset exchange, etc.).
pub const Q_COLLECT: usize = 1;
/// Completion replies for redirected (static) transfers.
pub const Q_REPLY: usize = 2;
/// Interrupt-service requests — the analog of Tilera UDN interrupts.
pub const Q_SERVICE: usize = 3;

/// A received protocol message.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ProtoMsg {
    /// Sending PE.
    pub src: usize,
    /// Software tag (message kind).
    pub tag: u16,
    /// Payload words — protocol-sized payloads (≤ 6 words) stay inline,
    /// so cloning or stashing a barrier/collective token never
    /// allocates.
    pub payload: udn::packet::PayloadVec,
}

/// Read-modify-write operations on symmetric words.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RmwOp {
    Add,
    Swap,
    And,
    Or,
    Xor,
}

/// Width of an atomic word operation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RmwWidth {
    W32,
    W64,
}

impl RmwWidth {
    /// Operand size in bytes.
    pub fn bytes(self) -> usize {
        match self {
            RmwWidth::W32 => 4,
            RmwWidth::W64 => 8,
        }
    }
}

/// What a PE's main thread is currently blocked on — the blocked-state
/// introspection a stall watchdog reads to diagnose a wedged job.
///
/// States are advisory snapshots: a PE updates its own [`PeProbe`] just
/// before entering a blocking wait and resets it to `Running` on exit,
/// so a watchdog observing a stable non-`Running` state across its stall
/// window knows *which* protocol wait each PE is parked in.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BlockedOn {
    /// Not in a blocking protocol wait.
    Running,
    /// Blocking receive on a demux queue.
    Recv { queue: usize },
    /// Retrying a send into a full destination queue.
    SendFull { dest: usize, queue: usize },
    /// Polling a completion-flag word (global arena byte offset).
    FlagWait { offset: usize },
    /// Spinning on a lock word (global arena byte offset).
    LockWait { offset: usize },
    /// A service context executing a redirected-RMA request (`tag` is
    /// the protocol tag, `src` the requesting PE). Published by
    /// `service_loop` for the duration of the handler so a stall inside
    /// the handler is attributed to the handler, not its clients.
    Handler { tag: u16, src: usize },
    /// Runnable but not scheduled: the cooperative M:N engine parks a
    /// context here while it waits for a worker slot. The wall-clock
    /// watchdog must not count a descheduled PE as a livelock suspect —
    /// it is making no progress only because M < N, not because its
    /// protocol is wedged.
    Descheduled,
    /// Parked on the locality sync cell owned by `pe` (counter
    /// transport of the shard-aligned hierarchical barrier): a member
    /// waiting for the release epoch, or a leader waiting for member
    /// arrivals.
    CellWait { pe: usize },
}

impl BlockedOn {
    /// Pack into one word for lock-free publication (tag in the top
    /// byte, operands below — offsets fit easily in 48 bits here).
    fn encode(self) -> u64 {
        match self {
            BlockedOn::Running => 0,
            BlockedOn::Recv { queue } => (1 << 56) | queue as u64,
            BlockedOn::SendFull { dest, queue } => {
                (2 << 56) | ((dest as u64) << 8) | queue as u64
            }
            BlockedOn::FlagWait { offset } => (3 << 56) | offset as u64,
            BlockedOn::LockWait { offset } => (4 << 56) | offset as u64,
            BlockedOn::Handler { tag, src } => (5 << 56) | ((tag as u64) << 24) | src as u64,
            BlockedOn::Descheduled => 6 << 56,
            BlockedOn::CellWait { pe } => (7 << 56) | pe as u64,
        }
    }

    fn decode(w: u64) -> Self {
        let lo = w & ((1 << 56) - 1);
        match w >> 56 {
            1 => BlockedOn::Recv { queue: lo as usize },
            2 => BlockedOn::SendFull {
                dest: (lo >> 8) as usize,
                queue: (lo & 0xff) as usize,
            },
            3 => BlockedOn::FlagWait { offset: lo as usize },
            4 => BlockedOn::LockWait { offset: lo as usize },
            5 => BlockedOn::Handler {
                tag: ((lo >> 24) & 0xffff) as u16,
                src: (lo & 0xff_ffff) as usize,
            },
            6 => BlockedOn::Descheduled,
            7 => BlockedOn::CellWait { pe: lo as usize },
            _ => BlockedOn::Running,
        }
    }
}

impl std::fmt::Display for BlockedOn {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BlockedOn::Running => write!(f, "running"),
            BlockedOn::Recv { queue } => write!(f, "recv(q{queue})"),
            BlockedOn::SendFull { dest, queue } => write!(f, "send->PE{dest}(q{queue}) [full]"),
            BlockedOn::FlagWait { offset } => write!(f, "flag-wait@{offset:#x}"),
            BlockedOn::LockWait { offset } => write!(f, "lock-wait@{offset:#x}"),
            BlockedOn::Handler { tag, src } => {
                write!(f, "handler({} from PE {src})", crate::service::tag_name(*tag))
            }
            BlockedOn::Descheduled => write!(f, "descheduled (runnable)"),
            BlockedOn::CellWait { pe } => write!(f, "cell-wait@PE{pe}"),
        }
    }
}

/// Per-PE progress/blocked-state probe, shared with a watchdog.
///
/// `ops` is a monotonic count of completed *state-changing* fabric
/// operations (useful work); `spins` counts retries that changed
/// nothing — failed `cswap` attempts, `wait_until`/`flag_wait_ge`
/// polls, lock-acquisition backoff steps. A deadlocked job shows both
/// totals flat across the watchdog's window; a **livelocked** job shows
/// `spins` climbing while `ops` stays flat — the distinction
/// `JobWatch::diagnose_delta` reports. `blocked` and `stash` snapshot
/// what the PE is waiting on and which out-of-order protocol messages
/// it has parked.
/// Cap on the per-PE stash snapshot mirrored into [`PeProbe`]: a stall
/// dump only needs the leading entries to name the wedged exchange, and
/// an uncapped mirror would clone an arbitrarily deep stash on every
/// push/pop.
pub const STASH_SNAPSHOT_CAP: usize = 16;

#[derive(Default)]
pub struct PeProbe {
    ops: AtomicU64,
    spins: AtomicU64,
    blocked: AtomicU64,
    /// `(tag, src)` of the first [`STASH_SNAPSHOT_CAP`] stashed
    /// protocol messages (diagnostics only — see `stash_total` for the
    /// real depth).
    stash: Mutex<Vec<(u16, usize)>>,
    /// Total stash depth at the last snapshot, including entries beyond
    /// the snapshot cap.
    stash_total: AtomicUsize,
}

impl PeProbe {
    pub fn new() -> Self {
        Self::default()
    }

    /// Count one completed (state-changing) fabric operation.
    #[inline]
    pub fn bump(&self) {
        self.ops.fetch_add(1, Ordering::Relaxed);
    }

    /// Count one spin retry (a poll or CAS attempt that changed no
    /// state).
    #[inline]
    pub fn spin(&self) {
        self.spins.fetch_add(1, Ordering::Relaxed);
    }

    /// Completed-operation count.
    pub fn ops(&self) -> u64 {
        self.ops.load(Ordering::Relaxed)
    }

    /// Spin-retry count.
    pub fn spins(&self) -> u64 {
        self.spins.load(Ordering::Relaxed)
    }

    /// Publish the current blocked state.
    pub fn set_blocked(&self, state: BlockedOn) {
        self.blocked.store(state.encode(), Ordering::Release);
    }

    /// Read the last published blocked state.
    pub fn blocked(&self) -> BlockedOn {
        BlockedOn::decode(self.blocked.load(Ordering::Acquire))
    }

    /// Replace the stash snapshot. `entries` is capped at
    /// [`STASH_SNAPSHOT_CAP`] by the caller; `total` is the real stash
    /// depth so diagnostics can report what the cap hid.
    pub fn set_stash(&self, entries: Vec<(u16, usize)>, total: usize) {
        debug_assert!(entries.len() <= STASH_SNAPSHOT_CAP);
        self.stash_total.store(total, Ordering::Relaxed);
        *self.stash.lock() = entries;
    }

    /// Read the stash snapshot (at most [`STASH_SNAPSHOT_CAP`] entries).
    pub fn stash(&self) -> Vec<(u16, usize)> {
        self.stash.lock().clone()
    }

    /// Total stash depth at the last snapshot.
    pub fn stash_total(&self) -> usize {
        self.stash_total.load(Ordering::Relaxed)
    }
}

/// Engine services available to every PE (and to its interrupt-service
/// context).
///
/// Arena offsets are **global**: PE `p`'s partition occupies
/// `[p * partition_bytes, (p+1) * partition_bytes)`. Private-segment
/// offsets are local to the owning PE.
pub trait Fabric: Send {
    /// This PE's id.
    fn pe(&self) -> usize;
    /// Number of PEs.
    fn npes(&self) -> usize;
    /// Bytes per symmetric partition.
    fn partition_bytes(&self) -> usize;
    /// The modeled device (for compute-cost accounting and reporting).
    fn device(&self) -> tile_arch::device::Device;

    // --- control plane (UDN) ------------------------------------------

    /// Send a protocol message to `dest`'s demux queue `queue`.
    /// `Q_SERVICE` routes to the destination PE's interrupt-service
    /// context rather than its main thread.
    fn udn_send(&self, dest: usize, queue: usize, tag: u16, payload: &[u64]);

    /// Non-blocking send: `false` when the destination queue is full
    /// (finite-buffer engines only). Protocol loops that must not stall
    /// while their own queue backs up retry this between drains of their
    /// own demux queue — see `ShmemCtx::send_draining`. Engines without
    /// send-side backpressure (virtual-time models, unbounded fabrics)
    /// keep this default, which completes the send immediately.
    fn udn_try_send(&self, dest: usize, queue: usize, tag: u16, payload: &[u64]) -> bool {
        self.udn_send(dest, queue, tag, payload);
        true
    }

    /// Blocking receive from `queue`.
    fn udn_recv(&self, queue: usize) -> ProtoMsg;

    /// Non-blocking receive from `queue`.
    fn udn_try_recv(&self, queue: usize) -> Option<ProtoMsg>;

    // --- data plane (common memory) -----------------------------------

    /// `memcpy` within the arena (global offsets; ranges may overlap).
    fn arena_copy(&self, dst: usize, src: usize, len: usize);

    /// Copy local bytes into the arena.
    fn arena_write(&self, dst: usize, src: &[u8]);

    /// Copy arena bytes into a local buffer.
    fn arena_read(&self, src: usize, dst: &mut [u8]);

    /// Atomic (acquire) load of an aligned u64 flag word.
    fn arena_read_u64(&self, off: usize) -> u64;

    /// Atomic (acquire) load of an aligned u32 word (for 32-bit waits).
    fn arena_read_u32(&self, off: usize) -> u32;

    /// Atomic (release) store of an aligned u64 flag word.
    fn arena_write_u64(&self, off: usize, v: u64);

    /// Atomic read-modify-write on an aligned word; returns the old
    /// value (zero-extended for 32-bit widths).
    fn arena_rmw(&self, off: usize, op: RmwOp, operand: u64, width: RmwWidth) -> u64;

    /// Atomic compare-and-swap on an aligned word; returns the old value.
    fn arena_cswap(&self, off: usize, cond: u64, new: u64, width: RmwWidth) -> u64;

    // --- private segment (the static-symmetric analog) ----------------

    /// Write into *this PE's* private segment.
    fn private_write(&self, off: usize, src: &[u8]);

    /// Read from *this PE's* private segment.
    fn private_read(&self, off: usize, dst: &mut [u8]);

    /// One-`memcpy` transfer from this PE's private segment into the
    /// arena (the service path of a redirected get).
    fn private_to_arena(&self, arena_dst: usize, priv_src: usize, len: usize);

    /// One-`memcpy` transfer from the arena into this PE's private
    /// segment (the service path of a redirected put).
    fn arena_to_private(&self, priv_dst: usize, arena_src: usize, len: usize);

    /// Raw pointer into the arena for local compute over symmetric data
    /// (bounds-checked; local access is uncosted in the timed engine —
    /// application compute is charged via [`compute`](Fabric::compute)).
    fn arena_raw(&self, off: usize, len: usize) -> *mut u8;

    /// Raw pointer into this PE's private segment.
    fn private_raw(&self, off: usize, len: usize) -> *mut u8;

    // --- locality (co-resident PEs on shared-worker engines) -----------

    /// Whether `pe`'s memory is directly addressable from this context
    /// because both PEs are multiplexed on the same worker (the M:N
    /// coop engine) — the POSH "same address space ⇒ plain memcpy"
    /// degradation. While a context runs it holds its worker's
    /// admission gate, and the gate handoff is a Release/Acquire edge,
    /// so touching a co-resident sibling's memory is race-free for the
    /// duration of the call. Engines without a worker topology keep
    /// this default, which disables every locality fast path.
    fn co_resident(&self, pe: usize) -> bool {
        let _ = pe;
        false
    }

    /// The PE→worker block size when the engine shards PEs over workers
    /// in contiguous blocks — the cluster-width hint that lets
    /// hierarchical collectives align their trees to the sharding.
    /// `None` when the engine has no such topology (native, timed,
    /// multichip).
    fn topology_block(&self) -> Option<usize> {
        None
    }

    /// Blocking receive with a co-residency hint: the expected sender
    /// shares this worker, so the engine may poll-yield in-worker
    /// instead of parking in the channel condvar. Semantically
    /// identical to [`udn_recv`](Fabric::udn_recv) — the hint changes
    /// only the wait strategy, and a wrong hint costs bounded spinning,
    /// never correctness.
    fn udn_recv_local(&self, queue: usize) -> ProtoMsg {
        self.udn_recv(queue)
    }

    /// Atomic fetch-add on locality sync cell `(pe, word)` — word 0 is
    /// the arrival counter, word 1 the release epoch of the counter
    /// transport used by the shard-aligned hierarchical barrier. Only
    /// callable when [`topology_block`](Fabric::topology_block) is
    /// `Some` (the protocol layer gates on exactly that); engines
    /// without a topology keep the panicking default. AcqRel, so the
    /// cells alone carry the barrier's happens-before edges.
    fn sync_cell_add(&self, pe: usize, word: usize, delta: u64) -> u64 {
        let _ = (pe, word, delta);
        unreachable!("sync_cell_add requires an engine with a worker topology")
    }

    /// Acquire load of locality sync cell `(pe, word)`; see
    /// [`sync_cell_add`](Fabric::sync_cell_add).
    fn sync_cell_load(&self, pe: usize, word: usize) -> u64 {
        let _ = (pe, word);
        unreachable!("sync_cell_load requires an engine with a worker topology")
    }

    /// Block until cell `(pe, word)` reads something other than `old`,
    /// returning the new value. Wakeups ride
    /// [`sync_cell_notify`](Fabric::sync_cell_notify) — a change
    /// without a notify may be observed late (the barrier protocol only
    /// notifies on the transitions its waiters care about), but a
    /// notified change is always observed. The engine may briefly
    /// poll-yield before parking the context.
    fn sync_cell_wait_change(&self, pe: usize, word: usize, old: u64) -> u64 {
        let _ = (pe, word, old);
        unreachable!("sync_cell_wait_change requires an engine with a worker topology")
    }

    /// Wake every context parked in
    /// [`sync_cell_wait_change`](Fabric::sync_cell_wait_change) on
    /// word `word` of `pe`'s cell; each woken waiter re-checks its own
    /// condition.
    fn sync_cell_notify(&self, pe: usize, word: usize) {
        let _ = (pe, word);
        unreachable!("sync_cell_notify requires an engine with a worker topology")
    }

    /// Write into co-resident PE `pe`'s private segment. Callable only
    /// while [`co_resident`](Fabric::co_resident)`(pe)` holds; engines
    /// that never report co-residency keep the panicking default.
    fn peer_private_write(&self, pe: usize, off: usize, src: &[u8]) {
        let _ = (pe, off, src);
        unreachable!("peer_private_write requires co_resident(pe)");
    }

    /// Read from co-resident PE `pe`'s private segment.
    fn peer_private_read(&self, pe: usize, off: usize, dst: &mut [u8]) {
        let _ = (pe, off, dst);
        unreachable!("peer_private_read requires co_resident(pe)");
    }

    /// One-`memcpy` transfer from co-resident PE `pe`'s private segment
    /// into the arena (the locality bypass of a redirected get).
    fn peer_private_to_arena(&self, pe: usize, arena_dst: usize, priv_src: usize, len: usize) {
        let _ = (pe, arena_dst, priv_src, len);
        unreachable!("peer_private_to_arena requires co_resident(pe)");
    }

    /// One-`memcpy` transfer from the arena into co-resident PE `pe`'s
    /// private segment (the locality bypass of a redirected put).
    fn peer_arena_to_private(&self, pe: usize, priv_dst: usize, arena_src: usize, len: usize) {
        let _ = (pe, priv_dst, arena_src, len);
        unreachable!("peer_arena_to_private requires co_resident(pe)");
    }

    /// The TMC spin barrier over an active set (Figure 5's primitive;
    /// TSHMEM can adopt it for `barrier_all` on TILE-Gx — Section IV-E).
    /// The triplet is `(start_pe, log2_stride, size)`.
    fn tmc_spin_barrier(&self, set: (usize, u32, usize));

    /// Register a homing policy for an arena region (the Section VI
    /// "memory-homing strategies" extension). A no-op on the native
    /// engine; the timed engines cost accesses to the region under the
    /// given policy instead of the hash-for-home default.
    fn set_region_homing(&self, global_off: usize, len: usize, homing: cachesim::homing::Homing) {
        let _ = (global_off, len, homing);
    }

    /// Remove a homing registration (on `shfree`).
    fn clear_region_homing(&self, global_off: usize) {
        let _ = global_off;
    }

    // --- ordering, time, and pacing ------------------------------------

    /// Block until all outstanding stores by this PE are visible
    /// (`tmc_mem_fence` analog; implements `shmem_quiet`).
    fn quiet(&self);

    /// One backoff step of a polling wait (`shmem_wait` inner loop):
    /// a spin hint natively, a clock advance under the timed engine so
    /// that virtual time progresses. `attempt` is the number of failed
    /// polls so far; the timed engine backs off exponentially with it
    /// (capped), which keeps long waits from costing millions of
    /// scheduler round-trips while bounding the detection-latency error.
    fn wait_pause(&self, attempt: u32);

    /// Charge application compute: a no-op natively (the computation
    /// itself takes the time), a clock advance in the timed engine.
    fn compute(&self, cycles: f64);

    /// Engine-native current time in nanoseconds (wall time natively,
    /// virtual time under the timed engine).
    fn now_ns(&self) -> f64;

    /// Stall this context for `micros` engine-native microseconds — the
    /// fault-injection plane's delay primitive (`crate::fault`). The
    /// native engine sleeps in abort-checking chunks so an injected
    /// stall cannot outlive a job teardown; the timed engine advances
    /// virtual time. Engines without fault support keep this no-op.
    fn inject_delay_us(&self, micros: u64) {
        let _ = micros;
    }

    // --- introspection --------------------------------------------------

    /// This PE's progress/blocked-state probe, when the engine supports
    /// watchdog introspection (all three engines' fabrics do, including
    /// their service contexts).
    fn probe(&self) -> Option<&PeProbe> {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn blocked_state_roundtrips_through_the_probe() {
        let states = [
            BlockedOn::Running,
            BlockedOn::Recv { queue: 3 },
            BlockedOn::SendFull { dest: 35, queue: 1 },
            BlockedOn::FlagWait { offset: 0x3f_fff8 },
            BlockedOn::LockWait { offset: 8 },
            BlockedOn::Handler { tag: 0xfffe, src: 255 },
            BlockedOn::Handler { tag: 1, src: 0 },
            BlockedOn::Descheduled,
        ];
        let probe = PeProbe::new();
        for s in states {
            probe.set_blocked(s);
            assert_eq!(probe.blocked(), s);
        }
        assert_eq!(probe.ops(), 0);
        probe.bump();
        probe.bump();
        assert_eq!(probe.ops(), 2);
        assert_eq!(probe.spins(), 0);
        probe.spin();
        assert_eq!(probe.spins(), 1);
        assert_eq!(probe.ops(), 2, "spins must not count as useful work");
        probe.set_stash(vec![(13, 2), (20, 5)], 2);
        assert_eq!(probe.stash(), vec![(13, 2), (20, 5)]);
        assert_eq!(probe.stash_total(), 2);
    }

    #[test]
    fn queue_assignments_are_distinct_and_in_hardware_range() {
        let qs = [Q_BARRIER, Q_COLLECT, Q_REPLY, Q_SERVICE];
        for (i, a) in qs.iter().enumerate() {
            assert!(*a < udn::NUM_QUEUES);
            for b in &qs[i + 1..] {
                assert_ne!(a, b);
            }
        }
    }
}
