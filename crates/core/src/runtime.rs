//! Launching SHMEM jobs — the analog of TSHMEM's executable launcher
//! plus `start_pes()` (paper Section IV-A).
//!
//! The launcher sets up common memory (the globally shared space),
//! partitions it symmetrically, wires up the UDN, binds one task per
//! tile, starts each PE's interrupt-service context, runs the
//! application closure on every PE, and tears everything down through
//! `shmem_finalize`.
//!
//! One generic [`Launcher`] drives every engine: pick an
//! [`EngineBackend`] (native, timed, multichip — see
//! [`crate::engine::backend`]), optionally compose in a liveness plane
//! ([`WatchPlane`]), and `run`. The five historical `launch*` free
//! functions remain as thin shims over the launcher; prefer the
//! launcher in new code.

use std::sync::Arc;

use desim::time::SimTime;
use tile_arch::area::TestArea;
use tile_arch::device::Device;

use crate::ctx::{Algorithms, Layout, ShmemCtx};
use crate::engine::backend::{
    EngineBackend, EngineOutcome, MultiChipBackend, NativeBackend, TimedBackend, WatchPlane,
};
use crate::engine::coop::CoopBackend;
use crate::watch::{JobWatch, TimedWatch};

/// Scheduling discipline for the virtual-time (desim-backed) engines.
///
/// Selects how the cooperative scheduler orders LPs in `launch_timed` /
/// `launch_multichip` runs; the native and coop engines ignore it.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum TimedMode {
    /// Exact discrete-event order: the LP with the minimum effective
    /// clock always runs next. The calibrated mode — all `[cal]` figures
    /// use it.
    #[default]
    EventDriven,
    /// Lockstep cycle boxes of `tick_ns` virtual nanoseconds: within a
    /// box LPs run in id order, each to the box edge, which cuts
    /// cross-thread handoffs by orders of magnitude. Protocol outcomes
    /// (final heap/static state) converge with event-driven; per-PE
    /// clocks may differ by bounded amounts. The fast-sweep mode.
    CycleBox { tick_ns: u64 },
}

impl TimedMode {
    /// Default cycle-box tick: 1 µs of virtual time (≈1000 TILE-Gx
    /// cycles) — wide enough to batch a protocol phase per box, narrow
    /// enough to keep clock skew within a few spin periods.
    pub const DEFAULT_TICK_NS: u64 = 1_000;

    /// Cycle-box mode at the default tick.
    pub fn cycle_box() -> Self {
        TimedMode::CycleBox {
            tick_ns: Self::DEFAULT_TICK_NS,
        }
    }

    /// The desim scheduler mode this selects.
    pub(crate) fn sched_mode(self) -> desim::coop::SchedMode {
        match self {
            TimedMode::EventDriven => desim::coop::SchedMode::EventDriven,
            TimedMode::CycleBox { tick_ns } => desim::coop::SchedMode::CycleBox {
                tick: desim::SimTime::from_ns(tick_ns.max(1)),
            },
        }
    }
}

/// Configuration of one SHMEM job.
#[derive(Clone, Copy, Debug)]
pub struct RuntimeConfig {
    /// The modeled device (drives the timed engine's costs; the native
    /// engine uses it only for reporting units).
    pub device: Device,
    /// Number of PEs (one per tile).
    pub npes: usize,
    /// Bytes per symmetric partition (includes TSHMEM's internal region).
    pub partition_bytes: usize,
    /// Bytes per PE private segment (the static-variable analog).
    pub private_bytes: usize,
    /// Temp-buffer bytes inside each partition (static-static transfers,
    /// recursive-doubling exchange).
    pub temp_bytes: usize,
    /// Collective/barrier algorithm selection.
    pub algos: Algorithms,
    /// Bound each UDN demux queue to this many packets
    /// (hardware-faithful backpressure mode — the real device queues
    /// hold 127 words). `None` (default) = unbounded. The native engine
    /// bounds its real channels; the virtual-time engines model the
    /// bound with credit-blocked sends, so finite-buffer deadlocks
    /// reproduce under virtual time too.
    pub udn_queue_packets: Option<usize>,
    /// Virtual-time engines: record an operation trace (see
    /// [`crate::trace`]).
    pub trace: bool,
    /// Scheduling discipline for the virtual-time engines (see
    /// [`TimedMode`]). Ignored by the native and coop engines.
    pub timed_mode: TimedMode,
}

impl RuntimeConfig {
    /// Defaults: TILE-Gx8036 model, 4 MB partitions, 1 MB private
    /// segments, 64 kB temp.
    pub fn new(npes: usize) -> Self {
        Self::for_device(Device::tile_gx8036(), npes)
    }

    /// Defaults for a specific device.
    pub fn for_device(device: Device, npes: usize) -> Self {
        Self {
            device,
            npes,
            partition_bytes: 4 * 1024 * 1024,
            private_bytes: 1024 * 1024,
            temp_bytes: 64 * 1024,
            algos: Algorithms::default(),
            udn_queue_packets: None,
            trace: false,
            timed_mode: TimedMode::EventDriven,
        }
    }

    /// Defaults for a PE count, picking the smallest device that fits:
    /// the TILE-Gx8036 up to 36 PEs, the TILEPro64 up to 64, and the
    /// hypothetical 1024-tile [`Device::tile_gx_scaled`] beyond that
    /// (the cooperative engine's scaling-study regime). Past 64 PEs the
    /// per-partition defaults shrink (256 kB partitions, 64 kB private
    /// segments) so a 1024-PE arena stays a few hundred MB, and the
    /// temp region grows with the PE count so recursive doubling's
    /// per-sender temp slots (8 bytes minimum each) still fit.
    pub fn for_scale(npes: usize) -> Self {
        if npes <= 36 {
            Self::new(npes)
        } else if npes <= 64 {
            Self::for_device(Device::tilepro64(), npes)
        } else {
            Self::for_device(Device::tile_gx_scaled(), npes)
                .with_partition_bytes(256 * 1024)
                .with_private_bytes(64 * 1024)
                .with_temp_bytes((16 * 1024).max(8 * npes))
        }
    }

    pub fn with_partition_bytes(mut self, b: usize) -> Self {
        self.partition_bytes = b;
        self
    }

    pub fn with_private_bytes(mut self, b: usize) -> Self {
        self.private_bytes = b;
        self
    }

    pub fn with_temp_bytes(mut self, b: usize) -> Self {
        self.temp_bytes = b;
        self
    }

    pub fn with_algos(mut self, a: Algorithms) -> Self {
        self.algos = a;
        self
    }

    /// Bound the UDN demux queues (backpressure mode).
    pub fn with_bounded_udn(mut self, packets: usize) -> Self {
        self.udn_queue_packets = Some(packets);
        self
    }

    /// Record a virtual-time operation trace (timed/multichip engines).
    pub fn with_trace(mut self) -> Self {
        self.trace = true;
        self
    }

    /// Select the virtual-time scheduling discipline.
    pub fn with_timed_mode(mut self, mode: TimedMode) -> Self {
        self.timed_mode = mode;
        self
    }

    /// Cycle-box mode at the default tick — shorthand for
    /// `with_timed_mode(TimedMode::cycle_box())`.
    pub fn with_cycle_box(self) -> Self {
        self.with_timed_mode(TimedMode::cycle_box())
    }

    /// The test area PEs map onto: the paper's 6×6 area when it fits
    /// (full coverage of the TILE-Gx36, the corner of the TILEPro64),
    /// otherwise the full chip.
    pub fn area(&self) -> TestArea {
        let d = self.device;
        if self.npes <= 36 && d.grid.cols >= 6 && d.grid.rows >= 6 {
            TestArea::paper_6x6(d)
        } else {
            TestArea::new(d, d.grid.cols, d.grid.rows)
        }
    }

    pub(crate) fn validate(&self) {
        assert!(self.npes >= 1, "need at least one PE");
        assert!(
            self.npes <= self.area().tiles(),
            "{} PEs exceed the {}-tile device {}",
            self.npes,
            self.area().tiles(),
            self.device.name
        );
        // Layout::new re-validates the internal region fit.
        let _ = Layout::new(self.partition_bytes, self.npes, self.temp_bytes);
    }

    pub(crate) fn layout(&self) -> Layout {
        Layout::new(self.partition_bytes, self.npes, self.temp_bytes)
    }
}

/// The one launcher behind every engine: a config, a backend, and an
/// optional liveness plane.
///
/// ```ignore
/// let out = Launcher::new(&cfg, TimedBackend)
///     .with_watch(WatchPlane::Coop(watch.clone()))
///     .run_watched(|ctx| ...)?;
/// ```
///
/// The launcher owns the engine-independent steps — config validation,
/// backend validation, watch composition, panic-vs-stall-report
/// classification — while the backend owns the spawn model and fabric
/// wiring (see [`EngineBackend`]). Cross-cutting planes compose here
/// uniformly: the fault plane (`crate::fault::FaultPlan::install`)
/// applies to whatever backend runs next, `cfg.trace` flows to every
/// backend's sink, and the watch plane is checked against the backend's
/// clock domain.
pub struct Launcher<'w, B: EngineBackend> {
    cfg: RuntimeConfig,
    backend: B,
    watch: WatchPlane<'w>,
}

impl<'w, B: EngineBackend> Launcher<'w, B> {
    pub fn new(cfg: &RuntimeConfig, backend: B) -> Self {
        Self {
            cfg: *cfg,
            backend,
            watch: WatchPlane::None,
        }
    }

    /// Compose in a liveness plane. The plane must match the backend's
    /// clock domain ([`JobWatch`] for wall-clock engines,
    /// [`TimedWatch`] for virtual-time engines); a mismatch panics at
    /// `run` with a message naming the right watch.
    pub fn with_watch(mut self, watch: WatchPlane<'w>) -> Self {
        self.watch = watch;
        self
    }

    /// Total PEs the configured job will run (the backend may multiply
    /// `cfg.npes` — multichip runs `cfg.npes` per chip).
    pub fn total_pes(&self) -> usize {
        self.backend.total_pes(&self.cfg)
    }

    /// Validate and execute: run `f` on every PE.
    ///
    /// # Panics
    /// Propagates application panics; with a coop watch attached, a
    /// detected deadlock also surfaces as a panic carrying the stall
    /// report (use [`run_watched`](Self::run_watched) to get it as
    /// `Err` instead).
    pub fn run<R, F>(&self, f: F) -> EngineOutcome<R>
    where
        R: Send,
        F: Fn(&ShmemCtx) -> R + Send + Sync,
    {
        self.cfg.validate();
        self.backend.validate(&self.cfg);
        self.backend.execute(&self.cfg, &self.watch, f)
    }

    /// [`run`](Self::run), converting a watch-diagnosed stall into
    /// `Err(report)`: when the attached [`TimedWatch`] fired (the desim
    /// scheduler proved no LP can ever run again), the per-PE diagnosis
    /// is returned instead of the panic. Panics that are *not* detected
    /// stalls (application asserts, poisoned PEs) still propagate.
    pub fn run_watched<R, F>(&self, f: F) -> Result<EngineOutcome<R>, String>
    where
        R: Send,
        F: Fn(&ShmemCtx) -> R + Send + Sync,
    {
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| self.run(f)));
        match result {
            Ok(out) => Ok(out),
            Err(payload) => {
                if let WatchPlane::Coop(w) = &self.watch {
                    if let Some(report) = w.stall_report() {
                        return Err(report);
                    }
                }
                std::panic::resume_unwind(payload)
            }
        }
    }
}

/// Run `f` on every PE with the **native** engine (real threads, wall
/// time). Returns each PE's result, indexed by PE.
///
/// Thin shim over [`Launcher`] with [`NativeBackend`], kept for the
/// historical API; prefer the launcher in new code.
///
/// # Panics
/// Propagates application panics (other PEs may be aborted mid-protocol).
pub fn launch<R, F>(cfg: &RuntimeConfig, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(&ShmemCtx) -> R + Send + Sync,
{
    Launcher::new(cfg, NativeBackend).run(f).values
}

/// Like [`launch`], but attaches a [`JobWatch`] before any PE starts, so
/// an external watchdog thread can observe per-PE progress counters,
/// blocked states, and queue occupancy while the job runs — and abort it
/// if it stalls. The native engine records trace events into the watch's
/// sink (for "last event per PE" stall dumps) even when `cfg.trace` is
/// off.
///
/// Thin shim over [`Launcher`] with `WatchPlane::Native`.
pub fn launch_watched<R, F>(cfg: &RuntimeConfig, watch: &JobWatch, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(&ShmemCtx) -> R + Send + Sync,
{
    Launcher::new(cfg, NativeBackend)
        .with_watch(WatchPlane::Native(watch))
        .run(f)
        .values
}

/// Outcome of a virtual-time launch: per-PE results and virtual clocks.
///
/// The historical name of [`EngineOutcome`] for the timed/multichip
/// shims; the two convert losslessly.
#[derive(Debug)]
pub struct TimedOutcome<R> {
    /// Per-PE return values, indexed by PE.
    pub values: Vec<R>,
    /// Each PE's final virtual clock.
    pub clocks: Vec<SimTime>,
    /// The simulated makespan (max final clock over PEs).
    pub makespan: SimTime,
    /// Operation trace, when enabled with `RuntimeConfig::with_trace`.
    pub trace: Option<Vec<crate::trace::TraceEvent>>,
}

impl<R> From<EngineOutcome<R>> for TimedOutcome<R> {
    fn from(o: EngineOutcome<R>) -> Self {
        Self {
            values: o.values,
            clocks: o.clocks,
            makespan: o.makespan,
            trace: o.trace,
        }
    }
}

/// Run `f` on every PE with the **timed** engine (virtual time,
/// calibrated Tilera costs). Deterministic.
///
/// Thin shim over [`Launcher`] with [`TimedBackend`].
pub fn launch_timed<R, F>(cfg: &RuntimeConfig, f: F) -> TimedOutcome<R>
where
    R: Send,
    F: Fn(&ShmemCtx) -> R + Send + Sync,
{
    Launcher::new(cfg, TimedBackend).run(f).into()
}

/// [`launch_timed`] with a [`TimedWatch`] deadlock watchdog attached.
///
/// A wedged job under virtual time does not stall any wall clock; the
/// desim scheduler detects the instant no LP can ever run again. With a
/// watch attached, that detection is returned as `Err(diagnosis)` — the
/// same per-PE stall format as the native [`JobWatch`] — instead of
/// surfacing as a raw scheduler panic. Panics that are *not* scheduler
/// deadlocks (application asserts, poisoned PEs) still propagate.
///
/// Thin shim over [`Launcher::run_watched`].
pub fn launch_timed_watched<R, F>(
    cfg: &RuntimeConfig,
    watch: &Arc<TimedWatch>,
    f: F,
) -> Result<TimedOutcome<R>, String>
where
    R: Send,
    F: Fn(&ShmemCtx) -> R + Send + Sync,
{
    Launcher::new(cfg, TimedBackend)
        .with_watch(WatchPlane::Coop(watch.clone()))
        .run_watched(f)
        .map(Into::into)
}

/// Run `f` on every PE with the **cooperative M:N** engine: `cfg.npes`
/// PEs (up to 1024) multiplexed over `workers` worker threads
/// (`0` = auto), real shared memory, wall time. The engine for scaling
/// runs an order of magnitude past the host's core count; see
/// [`crate::engine::coop`] for the scheduling contract.
///
/// Thin shim over [`Launcher`] with [`CoopBackend`].
pub fn launch_coop<R, F>(cfg: &RuntimeConfig, workers: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(&ShmemCtx) -> R + Send + Sync,
{
    Launcher::new(cfg, CoopBackend { workers, ..Default::default() }).run(f).values
}

/// The worker count (M) a coop launch of `npes` PEs actually runs on
/// when `requested` workers were asked for (`0` = auto). This is the
/// same resolution [`CoopBackend::resolved_workers`] applies inside
/// `execute`, exposed so harnesses and benchmark emitters can record
/// the *resolved* M — a `"workers": 0` row is meaningless across hosts.
pub fn resolve_coop_workers(requested: usize, npes: usize) -> usize {
    CoopBackend { workers: requested, ..Default::default() }.resolved_workers(npes)
}

/// [`launch_coop`] with a [`JobWatch`] attached — the same wall-clock
/// watchdog as [`launch_watched`]. The watch reports the launch's
/// oversubscription factor (`JobWatch::oversubscription`), which an
/// external stall monitor must multiply into its window: a
/// descheduled-but-runnable PE progresses `2N/M` times slower without
/// being any less live.
pub fn launch_coop_watched<R, F>(cfg: &RuntimeConfig, workers: usize, watch: &JobWatch, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(&ShmemCtx) -> R + Send + Sync,
{
    Launcher::new(cfg, CoopBackend { workers, ..Default::default() })
        .with_watch(WatchPlane::Native(watch))
        .run(f)
        .values
}

/// `start_pes()`-flavored convenience: run with `npes` PEs on the
/// default device and native engine.
pub fn start_pes<R, F>(npes: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(&ShmemCtx) -> R + Send + Sync,
{
    launch(&RuntimeConfig::new(npes), f)
}

/// Run `f` across `chips` simulated devices with `cfg.npes` PEs **per
/// chip**, connected by mPIPE links — the paper's Section VI
/// multi-device future work, on the virtual-time scheduler.
///
/// PEs are block-distributed: chip `c` hosts PEs
/// `[c * cfg.npes, (c+1) * cfg.npes)`. The TMC spin barrier is a
/// single-chip primitive and must not be selected.
///
/// Thin shim over [`Launcher`] with [`MultiChipBackend`].
pub fn launch_multichip<R, F>(cfg: &RuntimeConfig, chips: usize, f: F) -> TimedOutcome<R>
where
    R: Send,
    F: Fn(&ShmemCtx) -> R + Send + Sync,
{
    Launcher::new(cfg, MultiChipBackend { chips }).run(f).into()
}

/// [`launch_multichip`] with the [`TimedWatch`] deadlock watchdog —
/// the multichip engine runs under the same desim scheduler, so a
/// wedged cross-chip job is detected the instant the virtual event
/// queue drains and returned as `Err(diagnosis)` with per-PE, per-chip
/// stall lines.
pub fn launch_multichip_watched<R, F>(
    cfg: &RuntimeConfig,
    chips: usize,
    watch: &Arc<TimedWatch>,
    f: F,
) -> Result<TimedOutcome<R>, String>
where
    R: Send,
    F: Fn(&ShmemCtx) -> R + Send + Sync,
{
    Launcher::new(cfg, MultiChipBackend { chips })
        .with_watch(WatchPlane::Coop(watch.clone()))
        .run_watched(f)
        .map(Into::into)
}
