//! Launching SHMEM jobs — the analog of TSHMEM's executable launcher
//! plus `start_pes()` (paper Section IV-A).
//!
//! The launcher sets up common memory (the globally shared space),
//! partitions it symmetrically, wires up the UDN, binds one task per
//! tile, starts each PE's interrupt-service context, runs the
//! application closure on every PE, and tears everything down through
//! `shmem_finalize`.

use std::sync::Arc;
use std::time::Instant;

use cachesim::homing::Homing;
use desim::time::SimTime;
use substrate::sync::Mutex;
use tile_arch::area::TestArea;
use tile_arch::device::Device;
use tmc::common::CommonMemory;
use udn::fabric::UdnFabric;

use crate::ctx::{Algorithms, Layout, ShmemCtx};
use crate::engine::native::{NativeFabric, NativeShared};
use crate::engine::timed::{TimedFabric, TimedShared, TIMED_CHANNELS};
use crate::fabric::PeProbe;
use crate::service::service_loop;
use crate::watch::{JobWatch, TimedWatch};

/// Configuration of one SHMEM job.
#[derive(Clone, Copy, Debug)]
pub struct RuntimeConfig {
    /// The modeled device (drives the timed engine's costs; the native
    /// engine uses it only for reporting units).
    pub device: Device,
    /// Number of PEs (one per tile).
    pub npes: usize,
    /// Bytes per symmetric partition (includes TSHMEM's internal region).
    pub partition_bytes: usize,
    /// Bytes per PE private segment (the static-variable analog).
    pub private_bytes: usize,
    /// Temp-buffer bytes inside each partition (static-static transfers,
    /// recursive-doubling exchange).
    pub temp_bytes: usize,
    /// Collective/barrier algorithm selection.
    pub algos: Algorithms,
    /// Bound each UDN demux queue to this many packets
    /// (hardware-faithful backpressure mode — the real device queues
    /// hold 127 words). `None` (default) = unbounded. The native engine
    /// bounds its real channels; the timed engine models the bound with
    /// credit-blocked sends, so finite-buffer deadlocks reproduce under
    /// virtual time too.
    pub udn_queue_packets: Option<usize>,
    /// Timed engine: record an operation trace (see [`crate::trace`]).
    pub trace: bool,
}

impl RuntimeConfig {
    /// Defaults: TILE-Gx8036 model, 4 MB partitions, 1 MB private
    /// segments, 64 kB temp.
    pub fn new(npes: usize) -> Self {
        Self::for_device(Device::tile_gx8036(), npes)
    }

    /// Defaults for a specific device.
    pub fn for_device(device: Device, npes: usize) -> Self {
        Self {
            device,
            npes,
            partition_bytes: 4 * 1024 * 1024,
            private_bytes: 1024 * 1024,
            temp_bytes: 64 * 1024,
            algos: Algorithms::default(),
            udn_queue_packets: None,
            trace: false,
        }
    }

    pub fn with_partition_bytes(mut self, b: usize) -> Self {
        self.partition_bytes = b;
        self
    }

    pub fn with_private_bytes(mut self, b: usize) -> Self {
        self.private_bytes = b;
        self
    }

    pub fn with_temp_bytes(mut self, b: usize) -> Self {
        self.temp_bytes = b;
        self
    }

    pub fn with_algos(mut self, a: Algorithms) -> Self {
        self.algos = a;
        self
    }

    /// Bound the native engine's UDN queues (backpressure mode).
    pub fn with_bounded_udn(mut self, packets: usize) -> Self {
        self.udn_queue_packets = Some(packets);
        self
    }

    /// Record a virtual-time operation trace (timed engine only).
    pub fn with_trace(mut self) -> Self {
        self.trace = true;
        self
    }

    /// The test area PEs map onto: the paper's 6×6 area when it fits
    /// (full coverage of the TILE-Gx36, the corner of the TILEPro64),
    /// otherwise the full chip.
    pub fn area(&self) -> TestArea {
        let d = self.device;
        if self.npes <= 36 && d.grid.cols >= 6 && d.grid.rows >= 6 {
            TestArea::paper_6x6(d)
        } else {
            TestArea::new(d, d.grid.cols, d.grid.rows)
        }
    }

    fn validate(&self) {
        assert!(self.npes >= 1, "need at least one PE");
        assert!(
            self.npes <= self.area().tiles(),
            "{} PEs exceed the {}-tile device {}",
            self.npes,
            self.area().tiles(),
            self.device.name
        );
        // Layout::new re-validates the internal region fit.
        let _ = Layout::new(self.partition_bytes, self.npes, self.temp_bytes);
    }

    fn layout(&self) -> Layout {
        Layout::new(self.partition_bytes, self.npes, self.temp_bytes)
    }
}

/// Run `f` on every PE with the **native** engine (real threads, wall
/// time). Returns each PE's result, indexed by PE.
///
/// # Panics
/// Propagates application panics (other PEs may be aborted mid-protocol).
pub fn launch<R, F>(cfg: &RuntimeConfig, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(&ShmemCtx) -> R + Send + Sync,
{
    launch_inner(cfg, None, f)
}

/// Like [`launch`], but attaches a [`JobWatch`] before any PE starts, so
/// an external watchdog thread can observe per-PE progress counters,
/// blocked states, and queue occupancy while the job runs — and abort it
/// if it stalls. The native engine records trace events into the watch's
/// sink (for "last event per PE" stall dumps) even when `cfg.trace` is
/// off.
pub fn launch_watched<R, F>(cfg: &RuntimeConfig, watch: &JobWatch, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(&ShmemCtx) -> R + Send + Sync,
{
    launch_inner(cfg, Some(watch), f)
}

fn launch_inner<R, F>(cfg: &RuntimeConfig, watch: Option<&JobWatch>, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(&ShmemCtx) -> R + Send + Sync,
{
    cfg.validate();
    let layout = cfg.layout();
    let endpoints = match cfg.udn_queue_packets {
        Some(p) => UdnFabric::new_bounded(cfg.npes, p),
        None => UdnFabric::new(cfg.npes),
    };
    let sink = (cfg.trace || watch.is_some()).then(|| Arc::new(crate::trace::TraceSink::new()));
    let shared = Arc::new(NativeShared {
        arena: CommonMemory::new(cfg.npes * cfg.partition_bytes, Homing::HashForHome),
        privates: (0..cfg.npes)
            .map(|pe| CommonMemory::new(cfg.private_bytes, Homing::Local(pe)))
            .collect(),
        npes: cfg.npes,
        partition_bytes: cfg.partition_bytes,
        device: cfg.device,
        start: Instant::now(),
        spin_barriers: Mutex::new(std::collections::HashMap::new()),
        aborted: std::sync::atomic::AtomicBool::new(false),
        probes: (0..cfg.npes).map(|_| Arc::new(PeProbe::new())).collect(),
        service_probes: (0..cfg.npes).map(|_| Arc::new(PeProbe::new())).collect(),
        trace: sink,
    });
    if let Some(w) = watch {
        w.attach(shared.clone(), endpoints.clone());
    }

    // Interrupt-service contexts: one thread per PE, consuming only
    // Q_SERVICE of that PE's endpoint. Each carries the PE's *service*
    // probe so a stall inside a handler is attributed to the handler.
    let service_threads: Vec<_> = (0..cfg.npes)
        .map(|pe| {
            let fab = NativeFabric::new_service(shared.clone(), pe, endpoints[pe].clone());
            std::thread::Builder::new()
                .name(format!("shmem-svc-{pe}"))
                .spawn(move || service_loop(&fab))
                .expect("spawn service thread")
        })
        .collect();

    let results = tmc::task::run_on_tiles(cfg.npes, |pe| {
        let fab = NativeFabric::new_probed(shared.clone(), pe, endpoints[pe].clone());
        let ctx = ShmemCtx::new(Box::new(fab), layout, cfg.algos, cfg.private_bytes);
        // If any PE panics, flag the job so peers blocked in protocol
        // waits abort instead of hanging (SHMEM jobs are all-or-nothing),
        // then re-raise the original panic.
        match std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| f(&ctx))) {
            Ok(r) => {
                ctx.finalize();
                r
            }
            Err(p) => {
                shared.aborted.store(true, std::sync::atomic::Ordering::Release);
                // Release this PE's service thread regardless.
                endpoints[pe].send(pe, crate::fabric::Q_SERVICE, crate::service::TAG_SHUTDOWN, vec![]);
                std::panic::resume_unwind(p);
            }
        }
    });

    for t in service_threads {
        t.join().expect("service thread panicked");
    }
    results
}

/// Outcome of a timed launch: per-PE results and virtual clocks.
pub struct TimedOutcome<R> {
    /// Per-PE return values, indexed by PE.
    pub values: Vec<R>,
    /// Each PE's final virtual clock.
    pub clocks: Vec<SimTime>,
    /// The simulated makespan (max final clock over PEs).
    pub makespan: SimTime,
    /// Operation trace, when enabled with `RuntimeConfig::with_trace`.
    pub trace: Option<Vec<crate::trace::TraceEvent>>,
}

/// Run `f` on every PE with the **timed** engine (virtual time,
/// calibrated Tilera costs). Deterministic.
pub fn launch_timed<R, F>(cfg: &RuntimeConfig, f: F) -> TimedOutcome<R>
where
    R: Send + 'static,
    F: Fn(&ShmemCtx) -> R + Send + Sync + 'static,
{
    launch_timed_inner(cfg, None, f)
}

/// [`launch_timed`] with a [`TimedWatch`] deadlock watchdog attached.
///
/// A wedged job under virtual time does not stall any wall clock; the
/// desim scheduler detects the instant no LP can ever run again. With a
/// watch attached, that detection is returned as `Err(diagnosis)` — the
/// same per-PE stall format as the native [`JobWatch`] — instead of
/// surfacing as a raw scheduler panic. Panics that are *not* scheduler
/// deadlocks (application asserts, poisoned PEs) still propagate.
pub fn launch_timed_watched<R, F>(
    cfg: &RuntimeConfig,
    watch: &Arc<TimedWatch>,
    f: F,
) -> Result<TimedOutcome<R>, String>
where
    R: Send + 'static,
    F: Fn(&ShmemCtx) -> R + Send + Sync + 'static,
{
    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        launch_timed_inner(cfg, Some(watch.clone()), f)
    }));
    match result {
        Ok(out) => Ok(out),
        Err(payload) => match watch.stall_report() {
            Some(report) => Err(report),
            None => std::panic::resume_unwind(payload),
        },
    }
}

fn launch_timed_inner<R, F>(
    cfg: &RuntimeConfig,
    watch: Option<Arc<TimedWatch>>,
    f: F,
) -> TimedOutcome<R>
where
    R: Send + 'static,
    F: Fn(&ShmemCtx) -> R + Send + Sync + 'static,
{
    cfg.validate();
    let layout = cfg.layout();
    let npes = cfg.npes;
    let algos = cfg.algos;
    let private_bytes = cfg.private_bytes;
    let sink = cfg.trace.then(|| Arc::new(crate::trace::TraceSink::new()));
    let shared = TimedShared::new_full(
        cfg.area(),
        npes,
        cfg.partition_bytes,
        cfg.private_bytes,
        sink.clone(),
        cfg.udn_queue_packets,
    );
    let observer: Option<Arc<dyn desim::coop::CoopObserver>> = watch.map(|w| {
        w.attach(shared.clone());
        w as Arc<dyn desim::coop::CoopObserver>
    });

    let out = desim::coop::run_observed(2 * npes, TIMED_CHANNELS, observer, move |h| {
        let lp = h.id();
        let fab = TimedFabric::for_lp(shared.clone(), lp, h);
        if lp < npes {
            let ctx = ShmemCtx::new(Box::new(fab), layout, algos, private_bytes);
            let r = f(&ctx);
            ctx.finalize();
            Some(r)
        } else {
            service_loop(&fab);
            None
        }
    });

    let mut values = Vec::with_capacity(npes);
    let mut clocks = Vec::with_capacity(npes);
    for (i, v) in out.values.into_iter().enumerate() {
        if i < npes {
            values.push(v.expect("PE LP must return a value"));
            clocks.push(out.clocks[i]);
        }
    }
    let makespan = clocks.iter().copied().fold(SimTime::ZERO, SimTime::max);
    TimedOutcome {
        values,
        clocks,
        makespan,
        trace: sink.map(|s| s.take()),
    }
}

/// `start_pes()`-flavored convenience: run with `npes` PEs on the
/// default device and native engine.
pub fn start_pes<R, F>(npes: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(&ShmemCtx) -> R + Send + Sync,
{
    launch(&RuntimeConfig::new(npes), f)
}

/// Run `f` across `chips` simulated devices with `cfg.npes` PEs **per
/// chip**, connected by mPIPE links — the paper's Section VI
/// multi-device future work, on the timed engine.
///
/// PEs are block-distributed: chip `c` hosts PEs
/// `[c * cfg.npes, (c+1) * cfg.npes)`. The TMC spin barrier is a
/// single-chip primitive and must not be selected.
pub fn launch_multichip<R, F>(cfg: &RuntimeConfig, chips: usize, f: F) -> TimedOutcome<R>
where
    R: Send + 'static,
    F: Fn(&ShmemCtx) -> R + Send + Sync + 'static,
{
    use crate::engine::multichip::{MultiChipFabric, MultiChipShared};
    cfg.validate();
    assert!(chips >= 1, "need at least one chip");
    assert!(
        cfg.algos.barrier != crate::ctx::BarrierAlgo::TmcSpin || chips == 1,
        "the TMC spin barrier cannot span chips"
    );
    let pes_per_chip = cfg.npes;
    let npes = chips * pes_per_chip;
    let layout = Layout::new(cfg.partition_bytes, npes, cfg.temp_bytes);
    let algos = cfg.algos;
    let private_bytes = cfg.private_bytes;
    let shared = MultiChipShared::new(
        cfg.area(),
        chips,
        pes_per_chip,
        cfg.partition_bytes,
        cfg.private_bytes,
        mpipe::MpipeTimings::xaui_10g(),
    );

    let out = desim::coop::run(2 * npes, udn::NUM_QUEUES, move |h| {
        let lp = h.id();
        let fab = MultiChipFabric::for_lp(shared.clone(), lp, h);
        if lp < npes {
            let ctx = ShmemCtx::new(Box::new(fab), layout, algos, private_bytes);
            let r = f(&ctx);
            ctx.finalize();
            Some(r)
        } else {
            service_loop(&fab);
            None
        }
    });

    let mut values = Vec::with_capacity(npes);
    let mut clocks = Vec::with_capacity(npes);
    for (i, v) in out.values.into_iter().enumerate() {
        if i < npes {
            values.push(v.expect("PE LP must return a value"));
            clocks.push(out.clocks[i]);
        }
    }
    let makespan = clocks.iter().copied().fold(SimTime::ZERO, SimTime::max);
    TimedOutcome {
        values,
        clocks,
        makespan,
        trace: None, // the multi-chip engine does not trace (yet)
    }
}
