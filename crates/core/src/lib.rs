//! # TSHMEM in Rust
//!
//! A reproduction of **TSHMEM** (Lam, George, Lam — *TSHMEM:
//! Shared-Memory Parallel Computing on Tilera Many-Core Processors*,
//! IPDPS Workshops 2013): an OpenSHMEM 1.0 library built on analogs of
//! the Tilera TMC facilities — common memory mapped identically in every
//! task, the UDN low-latency network, and spin/sync barriers — with the
//! Tilera hardware itself provided by the simulator crates of this
//! workspace.
//!
//! ## Quick start
//!
//! ```
//! use tshmem::prelude::*;
//!
//! let cfg = RuntimeConfig::new(4).with_partition_bytes(1 << 20);
//! let sums = tshmem::runtime::launch(&cfg, |ctx| {
//!     let me = ctx.my_pe();
//!     let n = ctx.n_pes();
//!     // Collective allocation: one i64 slot per PE.
//!     let table = ctx.shmalloc::<i64>(n);
//!     // Everyone deposits into PE 0's partition.
//!     ctx.p(&table, me, me as i64 + 1, 0);
//!     ctx.barrier_all();
//!     let local: i64 = if me == 0 {
//!         (0..n).map(|i| ctx.g(&table, i, 0)).sum()
//!     } else {
//!         0
//!     };
//!     // Reduce so every PE learns the answer.
//!     let src = ctx.shmalloc::<i64>(1);
//!     let dst = ctx.shmalloc::<i64>(1);
//!     ctx.local_write(&src, 0, &[local]);
//!     ctx.sum_to_all(&dst, &src, 1, ctx.world());
//!     ctx.local_read(&dst, 0, 1)[0]
//! });
//! assert_eq!(sums, vec![10, 10, 10, 10]); // 1+2+3+4 on every PE
//! ```
//!
//! ## Layering
//!
//! | layer | crate |
//! |---|---|
//! | device model (grids, clocks, Table II/III constants) | `tile-arch` |
//! | simulation kernel (virtual-time scheduler, resources) | `desim` |
//! | memory hierarchy + DDC + homing | `cachesim` |
//! | UDN packet fabric + latency model | `udn` |
//! | TMC analog (common memory, barriers, fences) | `tmc` |
//! | **OpenSHMEM library (this crate)** | `tshmem` |
//!
//! Protocol code is written once against [`fabric::Fabric`] and runs on
//! four engines behind one [`runtime::Launcher`]: native
//! ([`runtime::launch`] — real threads, wall time), coop
//! ([`runtime::launch_coop`] — the native data plane multiplexed M:N
//! for 256–1024-PE scaling runs), timed ([`runtime::launch_timed`] —
//! virtual time with calibrated Tilera costs, used to regenerate the
//! paper's figures), and multichip ([`runtime::launch_multichip`] —
//! several simulated chips over mPIPE links). Liveness watchdogs, the
//! seeded fault plane, per-PE probes,
//! and trace collection compose uniformly over any engine (see
//! [`engine::backend`]).

pub mod active_set;
pub mod api;
pub mod api_typed;
pub mod atomics;
pub mod collectives;
pub mod ctx;
pub mod engine;
pub mod fabric;
pub mod fault;
pub mod heap;
pub mod rma;
pub mod runtime;
pub mod server;
pub mod service;
pub mod symm;
pub mod sync;
pub mod team;
pub mod trace;
pub mod types;
pub mod watch;

pub use active_set::ActiveSet;
pub use ctx::{Algorithms, BarrierAlgo, BroadcastAlgo, HomingHint, ReduceAlgo, ShmemCtx, Stats};
pub use engine::backend::{
    EngineBackend, EngineOutcome, MultiChipBackend, NativeBackend, TimedBackend, WatchPlane,
};
pub use engine::coop::CoopBackend;
pub use fabric::{BlockedOn, PeProbe};
pub use fault::{Fault, FaultPlan};
pub use runtime::{
    launch, launch_coop, launch_coop_watched, launch_multichip, launch_multichip_watched,
    launch_timed, launch_timed_watched, launch_watched, resolve_coop_workers, start_pes, Launcher,
    RuntimeConfig, TimedMode, TimedOutcome,
};
pub use rma::SignalOp;
pub use server::{
    ArenaPool, FairScheduler, JobHandle, JobId, JobOutcome, JobReport, JobSpec, RoundRobin,
    Scheduler, Server, ServerConfig, ServerStats, ShedPolicy, SubmitError,
};
pub use team::Team;
pub use watch::{JobWatch, PeCounters, TimedWatch};
pub use symm::{AddrClass, Bits, Sym};
pub use sync::pt2pt::Cmp;
pub use types::{Complex32, Complex64, Reducible, ReduceOp};

/// Everything an application typically needs.
pub mod prelude {
    pub use crate::active_set::ActiveSet;
    pub use crate::ctx::{Algorithms, BarrierAlgo, BroadcastAlgo, HomingHint, ReduceAlgo, ShmemCtx};
    pub use crate::rma::SignalOp;
    pub use crate::runtime::{launch, launch_timed, RuntimeConfig};
    pub use crate::symm::{AddrClass, Sym};
    pub use crate::sync::pt2pt::Cmp;
    pub use crate::team::Team;
    pub use crate::types::{Complex32, Complex64, ReduceOp};
}
