//! Job-level watchdog hooks for both engines.
//!
//! A [`JobWatch`] is handed to [`crate::runtime::launch_watched`] and is
//! populated with the launch's shared state before any PE starts. An
//! external watchdog thread can then poll [`JobWatch::counters`] for
//! forward progress and, when *useful* work stops moving, call
//! [`JobWatch::diagnose_delta`] to capture what every PE (and every
//! service thread) was doing — which protocol wait it is parked in, how
//! full its demux queues are, what its stash holds, and the last trace
//! event it recorded — before calling [`JobWatch::abort`] to tear the
//! job down.
//!
//! Useful work and spinning are split: a probe's `ops` counts
//! state-changing operations only, while failed `cswap` retries and
//! polling waits count as `spins`. That split is what distinguishes a
//! **deadlock** (both flat) from a **livelock** (spins climbing, ops
//! flat) — the latter looked like progress to the PR-2 watchdog.
//!
//! The timed engine gets [`TimedWatch`] instead: there is no wall-clock
//! stall under virtual time, so the watchdog is the desim scheduler's
//! own deadlock detector (`desim::coop::CoopObserver`) — it fires the
//! instant the virtual event queue drains while LPs are parked, and
//! renders the same per-PE diagnosis format.
//!
//! All reads are racy snapshots by design: the native watchdog fires
//! only after a multi-second stall window, at which point the states
//! are stable; the timed observer runs with the scheduler lock held.

use std::sync::Arc;
use std::time::Duration;

use substrate::sync::Mutex;
use udn::fabric::UdnEndpoint;
use udn::NUM_QUEUES;

use crate::engine::backend::CoopCore;
use crate::fabric::{BlockedOn, PeProbe};
use crate::trace::{TraceEvent, TraceSink};

/// What a wall-clock watchdog needs from a launch's shared state —
/// implemented by the native engine's `NativeShared` (one thread per
/// PE) and the cooperative engine's `CoopShared` (N PEs over M worker
/// threads), so one [`JobWatch`] observes either.
pub(crate) trait WallShared: Send + Sync {
    fn npes(&self) -> usize;
    fn probes(&self) -> &[Arc<PeProbe>];
    fn service_probes(&self) -> &[Arc<PeProbe>];
    fn trace_sink(&self) -> Option<&Arc<TraceSink>>;
    fn abort_job(&self);
    /// Runnable contexts per worker thread: 1 on the native engine,
    /// `ceil(2 * npes / workers)` on the cooperative engine. A stall
    /// watchdog should scale its wall-clock window by this factor — a
    /// descheduled-but-runnable PE makes progress N/M times slower
    /// without being any less live.
    fn oversubscription(&self) -> usize {
        1
    }
}

/// Wall-clock stall window scaled by the engine's oversubscription
/// factor (runnable contexts per worker thread). A descheduled coop PE
/// only moves the progress counter when its admission turn comes, so an
/// N-PEs-on-M-workers job legitimately needs up to `2N/M` times longer
/// between counter movements than a fully parallel native run — the
/// unscaled window fired spuriously on exactly those runs. Capped at
/// 64× so a true deadlock on a 1024-PE job still reports in minutes.
pub fn scaled_stall(stall: Duration, oversubscription: usize) -> Duration {
    stall * oversubscription.clamp(1, 64) as u32
}

/// Classify a stall from per-main-PE deltas measured since the last
/// useful-op movement: `(useful_ops, spin_retries, descheduled)` per
/// PE. A descheduled-but-runnable coop PE shows zero deltas while it
/// waits for a worker slot; counting it as frozen used to turn every
/// oversubscribed stall into a "deadlock" verdict (and starve the
/// livelock detector of its "everyone is spinning" signal), so only a
/// PE that is *scheduled* yet moved nothing counts as frozen.
pub fn classify_stall<I: IntoIterator<Item = (u64, u64, bool)>>(deltas: I) -> &'static str {
    let mut spun = 0u64;
    let mut frozen = false;
    for (du, ds, descheduled) in deltas {
        spun += ds;
        if du == 0 && ds == 0 && !descheduled {
            frozen = true;
        }
    }
    if spun > 0 && !frozen {
        "livelock (every stalled PE is spinning without completing useful work)"
    } else if spun > 0 {
        "deadlock (at least one PE frozen; others spin without useful work)"
    } else {
        "deadlock (no useful work and no spin retries anywhere)"
    }
}

/// One probe's counter snapshot (useful ops vs spin retries).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PeCounters {
    pub ops: u64,
    pub spins: u64,
}

fn snapshot(probe: &PeProbe) -> PeCounters {
    PeCounters {
        ops: probe.ops(),
        spins: probe.spins(),
    }
}

struct Watched {
    shared: Arc<dyn WallShared>,
    endpoints: Vec<UdnEndpoint>,
}

/// Observation handle over one native launch (see module docs).
///
/// Create it empty, pass it to `launch_watched`, and poll from another
/// thread; before attachment every accessor reports "no progress yet".
#[derive(Default)]
pub struct JobWatch {
    inner: Mutex<Option<Watched>>,
}

impl JobWatch {
    pub fn new() -> Self {
        Self::default()
    }

    pub(crate) fn attach(&self, shared: Arc<dyn WallShared>, endpoints: Vec<UdnEndpoint>) {
        *self.inner.lock() = Some(Watched { shared, endpoints });
    }

    /// Whether a launch has attached itself yet.
    pub fn attached(&self) -> bool {
        self.inner.lock().is_some()
    }

    /// Runnable contexts per worker thread of the attached launch: 1
    /// for the native engine (and before attachment), `ceil(2N / M)`
    /// for a cooperative M:N launch. Watchdog stall windows should be
    /// scaled by this factor.
    pub fn oversubscription(&self) -> usize {
        self.inner
            .lock()
            .as_ref()
            .map_or(1, |w| w.shared.oversubscription())
    }

    /// Sum of completed *useful* fabric operations across all PEs and
    /// their service threads — the watchdog's forward-progress signal.
    /// Monotone while the job runs; spins do not move it.
    pub fn total_ops(&self) -> u64 {
        match self.inner.lock().as_ref() {
            Some(w) => {
                let main: u64 = w.shared.probes().iter().map(|p| p.ops()).sum();
                let svc: u64 = w.shared.service_probes().iter().map(|p| p.ops()).sum();
                main + svc
            }
            None => 0,
        }
    }

    /// Sum of spin retries across all PEs and service threads.
    pub fn total_spins(&self) -> u64 {
        match self.inner.lock().as_ref() {
            Some(w) => {
                let main: u64 = w.shared.probes().iter().map(|p| p.spins()).sum();
                let svc: u64 = w.shared.service_probes().iter().map(|p| p.spins()).sum();
                main + svc
            }
            None => 0,
        }
    }

    /// Per-probe counter snapshot: indices `0..npes` are the PE main
    /// threads, `npes..2*npes` their service threads. Empty before
    /// attachment. Feed a saved snapshot back to
    /// [`diagnose_delta`](Self::diagnose_delta) to name the probes that
    /// spun without useful work across the window.
    pub fn counters(&self) -> Vec<PeCounters> {
        match self.inner.lock().as_ref() {
            Some(w) => w
                .shared
                .probes()
                .iter()
                .chain(w.shared.service_probes().iter())
                .map(|p| snapshot(p))
                .collect(),
            None => Vec::new(),
        }
    }

    /// Per-main-PE blocked states (indices `0..npes`). Empty before
    /// attachment. The coop engine publishes [`BlockedOn::Descheduled`]
    /// while a context is queued for worker admission — runnable, not
    /// wedged — which stall classifiers must not count as frozen.
    pub fn blocked_states(&self) -> Vec<BlockedOn> {
        match self.inner.lock().as_ref() {
            Some(w) => w.shared.probes().iter().map(|p| p.blocked()).collect(),
            None => Vec::new(),
        }
    }

    /// Flag the job aborted: every PE parked in a protocol wait panics
    /// at its next abort check instead of hanging forever.
    pub fn abort(&self) {
        if let Some(w) = self.inner.lock().as_ref() {
            w.shared.abort_job();
        }
    }

    /// Last recorded trace event per PE (`None` where a PE recorded
    /// nothing), for the stall dump.
    pub fn last_events(&self) -> Vec<Option<TraceEvent>> {
        match self.inner.lock().as_ref() {
            Some(w) => match w.shared.trace_sink() {
                Some(sink) => sink.last_per_pe(w.shared.npes()),
                None => vec![None; w.shared.npes()],
            },
            None => Vec::new(),
        }
    }

    /// Render a per-PE stall diagnosis: blocked state, useful/spin
    /// counters, demux queue occupancy, stash contents, service-thread
    /// state, and last trace event.
    pub fn diagnose(&self) -> String {
        self.diagnose_delta(None)
    }

    /// [`diagnose`](Self::diagnose), additionally classifying against a
    /// counter `baseline` captured at the start of the stall window:
    /// each line shows the in-window deltas, and probes that spun
    /// without completing any useful work are called out as livelock
    /// suspects.
    pub fn diagnose_delta(&self, baseline: Option<&[PeCounters]>) -> String {
        use std::fmt::Write as _;
        let guard = self.inner.lock();
        let Some(w) = guard.as_ref() else {
            return "watchdog: job not attached yet".to_string();
        };
        let last = match w.shared.trace_sink() {
            Some(sink) => sink.last_per_pe(w.shared.npes()),
            None => vec![None; w.shared.npes()],
        };
        let npes = w.shared.npes();
        let mut out = String::new();
        let mut suspects: Vec<String> = Vec::new();
        let _ = writeln!(out, "per-PE stall diagnosis ({npes} PEs):");
        for (pe, last_ev) in last.iter().enumerate() {
            let probe = &w.shared.probes()[pe];
            let now = snapshot(probe);
            let occ: Vec<usize> = (0..NUM_QUEUES)
                .map(|q| w.endpoints[pe].queue_len(q))
                .collect();
            let _ = write!(
                out,
                "  PE {pe}: {} | useful={} spins={}",
                probe.blocked(),
                now.ops,
                now.spins
            );
            if let Some(base) = baseline.and_then(|b| b.get(pe)) {
                let du = now.ops.saturating_sub(base.ops);
                let ds = now.spins.saturating_sub(base.spins);
                let _ = write!(out, " (+{du} useful / +{ds} spins in window)");
                // A descheduled context is runnable but waiting for a
                // worker slot (coop M:N engine) — spinning without
                // useful work is expected there, not a livelock sign.
                if du == 0 && ds > 0 && !matches!(probe.blocked(), BlockedOn::Descheduled) {
                    suspects.push(format!("PE {pe} ({})", probe.blocked()));
                }
            }
            let _ = write!(out, " | queue occupancy {occ:?}");
            let stash = probe.stash();
            if stash.is_empty() {
                let _ = write!(out, " | stash empty");
            } else {
                let _ = write!(out, " | stash ");
                for (i, (tag, src)) in stash.iter().enumerate() {
                    let sep = if i == 0 { "" } else { ", " };
                    let _ = write!(out, "{sep}(tag {tag:#x} from PE {src})");
                }
                let hidden = probe.stash_total().saturating_sub(stash.len());
                if hidden > 0 {
                    let _ = write!(out, " (+{hidden} more)");
                }
            }
            match last_ev {
                Some(e) => {
                    let _ = writeln!(
                        out,
                        " | last event {} @{:.0}ns",
                        e.kind.name(),
                        e.start.ns_f64()
                    );
                }
                None => {
                    let _ = writeln!(out, " | no events recorded");
                }
            }
            // The PE's interrupt-service thread, attributed separately.
            let svc = &w.shared.service_probes()[pe];
            let snow = snapshot(svc);
            let _ = write!(
                out,
                "  PE {pe} svc: {} | useful={} spins={}",
                svc.blocked(),
                snow.ops,
                snow.spins
            );
            if let Some(base) = baseline.and_then(|b| b.get(npes + pe)) {
                let du = snow.ops.saturating_sub(base.ops);
                let ds = snow.spins.saturating_sub(base.spins);
                let _ = write!(out, " (+{du} useful / +{ds} spins in window)");
                if du == 0 && ds > 0 && !matches!(svc.blocked(), BlockedOn::Descheduled) {
                    suspects.push(format!("PE {pe} svc ({})", svc.blocked()));
                }
            }
            let _ = writeln!(out);
        }
        if !suspects.is_empty() {
            let _ = writeln!(
                out,
                "livelock suspects (spinning, no useful work in window): {}",
                suspects.join(", ")
            );
        }
        out
    }
}

/// Deadlock watchdog for both cooperative engines (timed and
/// multichip).
///
/// Hand one to [`crate::runtime::launch_timed_watched`] or
/// [`crate::runtime::launch_multichip_watched`]. Under virtual time a
/// wedged job does not stall a wall clock — the desim scheduler itself
/// detects the moment no LP can ever run again — so this watch
/// implements [`desim::coop::CoopObserver`]: when the scheduler's
/// deadlock detector fires, it renders the same per-PE diagnosis as the
/// native [`JobWatch`] (blocked state, useful/spin counters, modeled
/// queue occupancy, virtual clocks; on a multi-chip job each PE is also
/// labeled with its chip) and stores it for the launch wrapper to
/// return as an error instead of a raw panic.
#[derive(Default)]
pub struct TimedWatch {
    core: Mutex<Option<Arc<CoopCore>>>,
    report: Mutex<Option<String>>,
}

impl TimedWatch {
    pub fn new() -> Self {
        Self::default()
    }

    pub(crate) fn attach(&self, core: Arc<CoopCore>) {
        *self.core.lock() = Some(core);
    }

    /// The stored deadlock diagnosis, once the observer has fired.
    pub fn stall_report(&self) -> Option<String> {
        self.report.lock().clone()
    }

    fn render(&self, lps: &[desim::coop::LpStall]) -> String {
        use std::fmt::Write as _;
        let guard = self.core.lock();
        let Some(core) = guard.as_ref() else {
            return "timed watchdog: job not attached yet".to_string();
        };
        let npes = core.npes;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "timed watchdog: virtual event queue drained with unfinished LPs parked"
        );
        let _ = writeln!(out, "per-PE stall diagnosis ({npes} PEs):");
        for pe in 0..npes {
            let chip = match core.chip_of(pe) {
                Some(c) => format!(" (chip {c})"),
                None => String::new(),
            };
            for (lp, label) in [(pe, ""), (npes + pe, " svc")] {
                let probe = &core.probes[lp];
                let now = snapshot(probe);
                let occ = core.queue_occupancy(lp);
                let _ = write!(
                    out,
                    "  PE {pe}{chip}{label}: {} | useful={} spins={} | queue occupancy {:?}",
                    probe.blocked(),
                    now.ops,
                    now.spins,
                    occ.to_vec()
                );
                match lps.get(lp) {
                    Some(s) if s.done => {
                        let _ = writeln!(out, " | finished @{:.0}ns", s.clock.ns_f64());
                    }
                    Some(s) => {
                        let parked = match s.blocked_on {
                            Some(ch) => format!("parked on ch{ch}"),
                            None => "runnable".to_string(),
                        };
                        let _ = writeln!(out, " | {} @{:.0}ns", parked, s.clock.ns_f64());
                    }
                    None => {
                        let _ = writeln!(out);
                    }
                }
            }
        }
        if let Some(desc) = crate::fault::describe_active() {
            let _ = writeln!(out, "active {desc}");
        }
        out
    }
}

impl desim::coop::CoopObserver for TimedWatch {
    fn on_deadlock(&self, lps: &[desim::coop::LpStall]) -> Option<String> {
        let report = self.render(lps);
        *self.report.lock() = Some(report.clone());
        Some(report)
    }
}
