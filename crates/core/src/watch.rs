//! Job-level watchdog hooks for the native engine.
//!
//! A [`JobWatch`] is handed to [`crate::runtime::launch_watched`] and is
//! populated with the launch's shared state before any PE starts. An
//! external watchdog thread can then poll [`JobWatch::total_ops`] for
//! forward progress and, when the count stops moving, call
//! [`JobWatch::diagnose`] to capture what every PE was doing — which
//! protocol wait it is parked in, how full its demux queues are, what
//! its stash holds, and the last trace event it recorded — before
//! calling [`JobWatch::abort`] to tear the job down.
//!
//! All reads are racy snapshots by design: the watchdog fires only after
//! a multi-second stall window, at which point the states are stable.

use std::sync::atomic::Ordering;
use std::sync::Arc;

use substrate::sync::Mutex;
use udn::fabric::UdnEndpoint;
use udn::NUM_QUEUES;

use crate::engine::native::NativeShared;
use crate::trace::TraceEvent;

struct Watched {
    shared: Arc<NativeShared>,
    endpoints: Vec<UdnEndpoint>,
}

/// Observation handle over one native launch (see module docs).
///
/// Create it empty, pass it to `launch_watched`, and poll from another
/// thread; before attachment every accessor reports "no progress yet".
#[derive(Default)]
pub struct JobWatch {
    inner: Mutex<Option<Watched>>,
}

impl JobWatch {
    pub fn new() -> Self {
        Self::default()
    }

    pub(crate) fn attach(&self, shared: Arc<NativeShared>, endpoints: Vec<UdnEndpoint>) {
        *self.inner.lock() = Some(Watched { shared, endpoints });
    }

    /// Whether a launch has attached itself yet.
    pub fn attached(&self) -> bool {
        self.inner.lock().is_some()
    }

    /// Sum of completed fabric operations across all PEs — the
    /// watchdog's forward-progress signal. Monotone while the job runs.
    pub fn total_ops(&self) -> u64 {
        match self.inner.lock().as_ref() {
            Some(w) => w.shared.probes.iter().map(|p| p.ops()).sum(),
            None => 0,
        }
    }

    /// Flag the job aborted: every PE parked in a protocol wait panics
    /// at its next abort check instead of hanging forever.
    pub fn abort(&self) {
        if let Some(w) = self.inner.lock().as_ref() {
            w.shared.aborted.store(true, Ordering::Release);
        }
    }

    /// Last recorded trace event per PE (`None` where a PE recorded
    /// nothing), for the stall dump.
    pub fn last_events(&self) -> Vec<Option<TraceEvent>> {
        match self.inner.lock().as_ref() {
            Some(w) => match &w.shared.trace {
                Some(sink) => sink.last_per_pe(w.shared.npes),
                None => vec![None; w.shared.npes],
            },
            None => Vec::new(),
        }
    }

    /// Render a per-PE stall diagnosis: blocked state, progress count,
    /// demux queue occupancy, stash contents, and last trace event.
    pub fn diagnose(&self) -> String {
        use std::fmt::Write as _;
        let guard = self.inner.lock();
        let Some(w) = guard.as_ref() else {
            return "watchdog: job not attached yet".to_string();
        };
        let last = match &w.shared.trace {
            Some(sink) => sink.last_per_pe(w.shared.npes),
            None => vec![None; w.shared.npes],
        };
        let mut out = String::new();
        let _ = writeln!(out, "per-PE stall diagnosis ({} PEs):", w.shared.npes);
        for (pe, last_ev) in last.iter().enumerate() {
            let probe = &w.shared.probes[pe];
            let occ: Vec<usize> = (0..NUM_QUEUES)
                .map(|q| w.endpoints[pe].queue_len(q))
                .collect();
            let _ = write!(
                out,
                "  PE {pe}: {} | ops={} | queue occupancy {:?}",
                probe.blocked(),
                probe.ops(),
                occ
            );
            let stash = probe.stash();
            if stash.is_empty() {
                let _ = write!(out, " | stash empty");
            } else {
                let _ = write!(out, " | stash ");
                for (i, (tag, src)) in stash.iter().enumerate() {
                    let sep = if i == 0 { "" } else { ", " };
                    let _ = write!(out, "{sep}(tag {tag:#x} from PE {src})");
                }
            }
            match last_ev {
                Some(e) => {
                    let _ = writeln!(
                        out,
                        " | last event {} @{:.0}ns",
                        e.kind.name(),
                        e.start.ns_f64()
                    );
                }
                None => {
                    let _ = writeln!(out, " | no events recorded");
                }
            }
        }
        out
    }
}
