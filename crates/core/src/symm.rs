//! Symmetric objects: typed handles to memory that exists on every PE.
//!
//! SHMEM's two kinds of symmetric data (paper Section II-A):
//!
//! * **Dynamic** symmetric objects live in the symmetric heap — PE `p`'s
//!   copy is in `p`'s partition of common memory, at the same
//!   partition-relative offset on every PE (guaranteed by the collective
//!   allocation discipline of `shmalloc`).
//! * **Static** symmetric objects are the analog of link-time globals:
//!   they live in each PE's *private* segment at identical offsets
//!   (guaranteed by the identical allocation sequence, as the identical
//!   executable guarantees on real hardware). Private segments are not
//!   directly accessible from other PEs — remote access goes through the
//!   UDN interrupt-service redirection of `crate::rma`.
//!
//! A [`Sym<T>`] is a plain value (offset + length + class); it is `Copy`
//! and meaningful on every PE, mirroring how a C SHMEM program passes the
//! same pointer value everywhere.

use std::marker::PhantomData;

pub use tmc::common::Bits;

/// Which address space a symmetric object lives in.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum AddrClass {
    /// Symmetric heap (common memory partition) — directly addressable
    /// by every PE.
    Dynamic,
    /// Private segment (static-variable analog) — only the owning PE
    /// (and its interrupt-service context) can touch it.
    Static,
}

/// A typed symmetric array of `len` elements of `T`.
#[derive(Debug)]
pub struct Sym<T> {
    class: AddrClass,
    /// Partition-relative offset (dynamic) or private-segment offset
    /// (static), in bytes.
    offset: usize,
    len: usize,
    _elem: PhantomData<T>,
}

// Derive-free impls so `Sym<T>: Copy` without requiring `T: Copy`.
impl<T> Clone for Sym<T> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<T> Copy for Sym<T> {}
impl<T> PartialEq for Sym<T> {
    fn eq(&self, other: &Self) -> bool {
        self.class == other.class && self.offset == other.offset && self.len == other.len
    }
}
impl<T> Eq for Sym<T> {}

impl<T: Bits> Sym<T> {
    pub(crate) fn new(class: AddrClass, offset: usize, len: usize) -> Self {
        Self {
            class,
            offset,
            len,
            _elem: PhantomData,
        }
    }

    /// Address class (dynamic heap vs static/private).
    pub fn class(&self) -> AddrClass {
        self.class
    }

    /// Byte offset within the partition (dynamic) or private segment
    /// (static).
    pub fn offset(&self) -> usize {
        self.offset
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.len
    }

    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Size in bytes.
    pub fn byte_len(&self) -> usize {
        self.len * std::mem::size_of::<T>()
    }

    /// Byte offset of element `index`.
    ///
    /// # Panics
    /// Panics if `index > len` (one-past-the-end is allowed for ranges).
    pub fn elem_offset(&self, index: usize) -> usize {
        assert!(index <= self.len, "index {index} out of bounds (len {})", self.len);
        self.offset + index * std::mem::size_of::<T>()
    }

    /// A sub-array view `[start, start+len)`.
    ///
    /// # Panics
    /// Panics if the range exceeds the array.
    pub fn slice(&self, start: usize, len: usize) -> Sym<T> {
        assert!(
            start.checked_add(len).is_some_and(|e| e <= self.len),
            "slice [{start}, {start}+{len}) out of bounds (len {})",
            self.len
        );
        Sym::new(self.class, self.elem_offset(start), len)
    }

    /// Reinterpret as raw bytes (for `putmem`/`getmem`-style code).
    pub fn as_bytes(&self) -> Sym<u8> {
        Sym::new(self.class, self.offset, self.byte_len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn offsets_and_lengths() {
        let s: Sym<u32> = Sym::new(AddrClass::Dynamic, 64, 10);
        assert_eq!(s.byte_len(), 40);
        assert_eq!(s.elem_offset(0), 64);
        assert_eq!(s.elem_offset(3), 76);
        assert_eq!(s.elem_offset(10), 104); // one past the end
        assert!(!s.is_empty());
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn elem_offset_past_end_panics() {
        Sym::<u32>::new(AddrClass::Dynamic, 0, 4).elem_offset(5);
    }

    #[test]
    fn slicing() {
        let s: Sym<f64> = Sym::new(AddrClass::Static, 0, 8);
        let sub = s.slice(2, 3);
        assert_eq!(sub.offset(), 16);
        assert_eq!(sub.len(), 3);
        assert_eq!(sub.class(), AddrClass::Static);
        let whole = s.slice(0, 8);
        assert_eq!(whole, s);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn oversized_slice_panics() {
        Sym::<u8>::new(AddrClass::Dynamic, 0, 4).slice(3, 2);
    }

    #[test]
    fn byte_view() {
        let s: Sym<u64> = Sym::new(AddrClass::Dynamic, 8, 4);
        let b = s.as_bytes();
        assert_eq!(b.len(), 32);
        assert_eq!(b.offset(), 8);
    }

    #[test]
    fn sym_is_copy_and_eq() {
        let s: Sym<i32> = Sym::new(AddrClass::Dynamic, 0, 1);
        let t = s;
        assert_eq!(s, t);
    }
}
