//! The full OpenSHMEM 1.0 **typed function matrix** under its C names.
//!
//! OpenSHMEM specifies one function per (operation, C type) pair —
//! `shmem_int_p`, `shmem_float_put`, `shmem_longlong_sum_to_all`, … .
//! The idiomatic Rust API is generic, but porting C SHMEM code is far
//! easier when the exact names exist, so this module macro-generates the
//! whole matrix:
//!
//! * elemental/block/strided put & get for `short`, `int`, `long`,
//!   `longlong`, `float`, `double` (and the fixed-width `put32/put64/
//!   put128` byte forms);
//! * `wait`/`wait_until` for the integer types;
//! * the atomic family for `int`, `long`, `longlong` (plus float/double
//!   swap);
//! * the reduction matrix: `and/or/xor` × integer types, `min/max/sum/
//!   prod` × all numeric types, `sum/prod` × complex types;
//! * `broadcast32/64`, `collect32/64`, `fcollect32/64`.
//!
//! C-type to Rust mapping: `short = i16`, `int = i32`, `long = i64`,
//! `longlong = i64`, `float = f32`, `double = f64` (LP64, as on the
//! 64-bit TILE-Gx).

use crate::active_set::ActiveSet;
use crate::ctx::ShmemCtx;
use crate::symm::{Bits, Sym};
use crate::sync::pt2pt::Cmp;
use crate::types::{Complex32, Complex64};

/// Convert an OpenSHMEM active-set triplet to an [`ActiveSet`].
fn set(pe_start: usize, log_pe_stride: u32, pe_size: usize) -> ActiveSet {
    ActiveSet::new(pe_start, log_pe_stride, pe_size)
}

macro_rules! rma_family {
    ($ty:ty, $p:ident, $g:ident, $put:ident, $get:ident, $iput:ident, $iget:ident,
     $put_nbi:ident, $get_nbi:ident) => {
        #[doc = concat!("`", stringify!($p), "()`: elemental put of one `", stringify!($ty), "`.")]
        pub fn $p(ctx: &ShmemCtx, target: &Sym<$ty>, value: $ty, pe: usize) {
            ctx.p(target, 0, value, pe)
        }

        #[doc = concat!("`", stringify!($g), "()`: elemental get of one `", stringify!($ty), "`.")]
        pub fn $g(ctx: &ShmemCtx, source: &Sym<$ty>, pe: usize) -> $ty {
            ctx.g(source, 0, pe)
        }

        #[doc = concat!("`", stringify!($put), "()`: contiguous put of `", stringify!($ty), "` elements.")]
        pub fn $put(ctx: &ShmemCtx, target: &Sym<$ty>, source: &[$ty], pe: usize) {
            ctx.put(target, 0, source, pe)
        }

        #[doc = concat!("`", stringify!($get), "()`: contiguous get of `", stringify!($ty), "` elements.")]
        pub fn $get(ctx: &ShmemCtx, dest: &mut [$ty], source: &Sym<$ty>, pe: usize) {
            ctx.get(dest, source, 0, pe)
        }

        #[doc = concat!("`", stringify!($iput), "()`: strided put of `nelems` elements (target stride `tst`, source stride `sst`).")]
        #[allow(clippy::too_many_arguments)] // mirrors the OpenSHMEM C signature
        pub fn $iput(ctx: &ShmemCtx, target: &Sym<$ty>, source: &[$ty], tst: usize, sst: usize, nelems: usize, pe: usize) {
            ctx.iput(target, 0, tst, source, sst, nelems, pe)
        }

        #[doc = concat!("`", stringify!($iget), "()`: strided get of `nelems` elements.")]
        #[allow(clippy::too_many_arguments)] // mirrors the OpenSHMEM C signature
        pub fn $iget(ctx: &ShmemCtx, dest: &mut [$ty], source: &Sym<$ty>, tst: usize, sst: usize, nelems: usize, pe: usize) {
            ctx.iget(dest, tst, source, 0, sst, nelems, pe)
        }

        #[doc = concat!("`", stringify!($put_nbi), "()`: non-blocking put, completed by `shmem_quiet`.")]
        pub fn $put_nbi(ctx: &ShmemCtx, target: &Sym<$ty>, source: &[$ty], pe: usize) {
            ctx.put_nbi(target, 0, source, pe)
        }

        #[doc = concat!("`", stringify!($get_nbi), "()`: non-blocking get, completed by `shmem_quiet`.")]
        pub fn $get_nbi(ctx: &ShmemCtx, dest: &mut [$ty], source: &Sym<$ty>, pe: usize) {
            ctx.get_nbi(dest, source, 0, pe)
        }
    };
}

rma_family!(i16, shmem_short_p, shmem_short_g, shmem_short_put, shmem_short_get, shmem_short_iput, shmem_short_iget, shmem_short_put_nbi, shmem_short_get_nbi);
rma_family!(i32, shmem_int_p, shmem_int_g, shmem_int_put, shmem_int_get, shmem_int_iput, shmem_int_iget, shmem_int_put_nbi, shmem_int_get_nbi);
rma_family!(i64, shmem_long_p, shmem_long_g, shmem_long_put, shmem_long_get, shmem_long_iput, shmem_long_iget, shmem_long_put_nbi, shmem_long_get_nbi);
rma_family!(f32, shmem_float_p, shmem_float_g, shmem_float_put, shmem_float_get, shmem_float_iput, shmem_float_iget, shmem_float_put_nbi, shmem_float_get_nbi);
rma_family!(f64, shmem_double_p, shmem_double_g, shmem_double_put, shmem_double_get, shmem_double_iput, shmem_double_iget, shmem_double_put_nbi, shmem_double_get_nbi);

// `long long` is i64 on LP64; OpenSHMEM still names it separately.
rma_family!(i64, shmem_longlong_p, shmem_longlong_g, shmem_longlong_put, shmem_longlong_get, shmem_longlong_iput, shmem_longlong_iget, shmem_longlong_put_nbi, shmem_longlong_get_nbi);

macro_rules! fixed_width_family {
    ($ty:ty, $put:ident, $get:ident, $iput:ident, $iget:ident) => {
        #[doc = concat!("`", stringify!($put), "()`: fixed-width block put.")]
        pub fn $put(ctx: &ShmemCtx, target: &Sym<$ty>, source: &[$ty], pe: usize) {
            ctx.put(target, 0, source, pe)
        }

        #[doc = concat!("`", stringify!($get), "()`: fixed-width block get.")]
        pub fn $get(ctx: &ShmemCtx, dest: &mut [$ty], source: &Sym<$ty>, pe: usize) {
            ctx.get(dest, source, 0, pe)
        }

        #[doc = concat!("`", stringify!($iput), "()`: fixed-width strided put of `nelems` elements.")]
        #[allow(clippy::too_many_arguments)] // mirrors the OpenSHMEM C signature
        pub fn $iput(ctx: &ShmemCtx, target: &Sym<$ty>, source: &[$ty], tst: usize, sst: usize, nelems: usize, pe: usize) {
            ctx.iput(target, 0, tst, source, sst, nelems, pe)
        }

        #[doc = concat!("`", stringify!($iget), "()`: fixed-width strided get of `nelems` elements.")]
        #[allow(clippy::too_many_arguments)] // mirrors the OpenSHMEM C signature
        pub fn $iget(ctx: &ShmemCtx, dest: &mut [$ty], source: &Sym<$ty>, tst: usize, sst: usize, nelems: usize, pe: usize) {
            ctx.iget(dest, tst, source, 0, sst, nelems, pe)
        }
    };
}

fixed_width_family!(u32, shmem_put32, shmem_get32, shmem_iput32, shmem_iget32);
fixed_width_family!(u64, shmem_put64, shmem_get64, shmem_iput64, shmem_iget64);
fixed_width_family!(Complex64, shmem_put128, shmem_get128, shmem_iput128, shmem_iget128);

// --- point-to-point synchronization --------------------------------------

macro_rules! wait_family {
    ($ty:ty, $wait:ident, $wait_until:ident, $wait_until_at:ident) => {
        #[doc = concat!("`", stringify!($wait), "()`: block until the local variable changes from `value`.")]
        pub fn $wait(ctx: &ShmemCtx, var: &Sym<$ty>, value: $ty) {
            ctx.wait(var, 0, value)
        }

        #[doc = concat!("`", stringify!($wait_until), "()`: block until `var cmp value` holds (element 0).")]
        pub fn $wait_until(ctx: &ShmemCtx, var: &Sym<$ty>, cmp: Cmp, value: $ty) {
            $wait_until_at(ctx, var, 0, cmp, value)
        }

        #[doc = concat!("`", stringify!($wait_until), "()` on element `idx` of `var` (signal words at arbitrary offsets).")]
        pub fn $wait_until_at(ctx: &ShmemCtx, var: &Sym<$ty>, idx: usize, cmp: Cmp, value: $ty) {
            ctx.wait_until(var, idx, cmp, value)
        }
    };
}

wait_family!(i32, shmem_int_wait, shmem_int_wait_until, shmem_int_wait_until_at);
wait_family!(i64, shmem_long_wait, shmem_long_wait_until, shmem_long_wait_until_at);
wait_family!(i64, shmem_longlong_wait, shmem_longlong_wait_until, shmem_longlong_wait_until_at);

// --- atomics ---------------------------------------------------------------

macro_rules! atomic_family {
    ($ty:ty, $swap:ident, $cswap:ident, $fadd:ident, $finc:ident, $add:ident, $inc:ident) => {
        #[doc = concat!("`", stringify!($swap), "()`.")]
        pub fn $swap(ctx: &ShmemCtx, target: &Sym<$ty>, value: $ty, pe: usize) -> $ty {
            ctx.swap(target, 0, value, pe)
        }

        #[doc = concat!("`", stringify!($cswap), "()`.")]
        pub fn $cswap(ctx: &ShmemCtx, target: &Sym<$ty>, cond: $ty, value: $ty, pe: usize) -> $ty {
            ctx.cswap(target, 0, cond, value, pe)
        }

        #[doc = concat!("`", stringify!($fadd), "()`.")]
        pub fn $fadd(ctx: &ShmemCtx, target: &Sym<$ty>, value: $ty, pe: usize) -> $ty {
            ctx.fadd(target, 0, value, pe)
        }

        #[doc = concat!("`", stringify!($finc), "()`.")]
        pub fn $finc(ctx: &ShmemCtx, target: &Sym<$ty>, pe: usize) -> $ty {
            ctx.finc(target, 0, pe)
        }

        #[doc = concat!("`", stringify!($add), "()`.")]
        pub fn $add(ctx: &ShmemCtx, target: &Sym<$ty>, value: $ty, pe: usize) {
            ctx.add(target, 0, value, pe)
        }

        #[doc = concat!("`", stringify!($inc), "()`.")]
        pub fn $inc(ctx: &ShmemCtx, target: &Sym<$ty>, pe: usize) {
            ctx.inc(target, 0, pe)
        }
    };
}

atomic_family!(i32, shmem_int_swap, shmem_int_cswap, shmem_int_fadd, shmem_int_finc, shmem_int_add, shmem_int_inc);
atomic_family!(i64, shmem_long_swap, shmem_long_cswap, shmem_long_fadd, shmem_long_finc, shmem_long_add, shmem_long_inc);
atomic_family!(i64, shmem_longlong_swap, shmem_longlong_cswap, shmem_longlong_fadd, shmem_longlong_finc, shmem_longlong_add, shmem_longlong_inc);

/// `shmem_float_swap()`.
pub fn shmem_float_swap(ctx: &ShmemCtx, target: &Sym<f32>, value: f32, pe: usize) -> f32 {
    ctx.swap_f32(target, 0, value, pe)
}

/// `shmem_double_swap()`.
pub fn shmem_double_swap(ctx: &ShmemCtx, target: &Sym<f64>, value: f64, pe: usize) -> f64 {
    ctx.swap_f64(target, 0, value, pe)
}

// --- reductions --------------------------------------------------------------

macro_rules! reduce_fn {
    ($ty:ty, $name:ident, $method:ident) => {
        #[doc = concat!("`", stringify!($name), "()`.")]
        pub fn $name(
            ctx: &ShmemCtx,
            target: &Sym<$ty>,
            source: &Sym<$ty>,
            nreduce: usize,
            pe_start: usize,
            log_pe_stride: u32,
            pe_size: usize,
        ) {
            ctx.$method(target, source, nreduce, set(pe_start, log_pe_stride, pe_size))
        }
    };
}

macro_rules! bitwise_reductions {
    ($ty:ty, $and:ident, $or:ident, $xor:ident) => {
        reduce_fn!($ty, $and, and_to_all);
        reduce_fn!($ty, $or, or_to_all);
        reduce_fn!($ty, $xor, xor_to_all);
    };
}

macro_rules! arith_reductions {
    ($ty:ty, $min:ident, $max:ident, $sum:ident, $prod:ident) => {
        reduce_fn!($ty, $min, min_to_all);
        reduce_fn!($ty, $max, max_to_all);
        reduce_fn!($ty, $sum, sum_to_all);
        reduce_fn!($ty, $prod, prod_to_all);
    };
}

bitwise_reductions!(i16, shmem_short_and_to_all, shmem_short_or_to_all, shmem_short_xor_to_all);
bitwise_reductions!(i32, shmem_int_and_to_all, shmem_int_or_to_all, shmem_int_xor_to_all);
bitwise_reductions!(i64, shmem_long_and_to_all, shmem_long_or_to_all, shmem_long_xor_to_all);
bitwise_reductions!(i64, shmem_longlong_and_to_all, shmem_longlong_or_to_all, shmem_longlong_xor_to_all);

arith_reductions!(i16, shmem_short_min_to_all, shmem_short_max_to_all, shmem_short_sum_to_all, shmem_short_prod_to_all);
arith_reductions!(i32, shmem_int_min_to_all, shmem_int_max_to_all, shmem_int_sum_to_all, shmem_int_prod_to_all);
arith_reductions!(i64, shmem_long_min_to_all, shmem_long_max_to_all, shmem_long_sum_to_all, shmem_long_prod_to_all);
arith_reductions!(i64, shmem_longlong_min_to_all, shmem_longlong_max_to_all, shmem_longlong_sum_to_all, shmem_longlong_prod_to_all);
arith_reductions!(f32, shmem_float_min_to_all, shmem_float_max_to_all, shmem_float_sum_to_all, shmem_float_prod_to_all);
arith_reductions!(f64, shmem_double_min_to_all, shmem_double_max_to_all, shmem_double_sum_to_all, shmem_double_prod_to_all);

reduce_fn!(Complex32, shmem_complexf_sum_to_all, sum_to_all);
reduce_fn!(Complex32, shmem_complexf_prod_to_all, prod_to_all);
reduce_fn!(Complex64, shmem_complexd_sum_to_all, sum_to_all);
reduce_fn!(Complex64, shmem_complexd_prod_to_all, prod_to_all);

// --- collectives ---------------------------------------------------------------

macro_rules! collective_width {
    ($ty:ty, $bcast:ident, $collect:ident, $fcollect:ident, $alltoall:ident, $alltoalls:ident) => {
        #[doc = concat!("`", stringify!($bcast), "()`.")]
        #[allow(clippy::too_many_arguments)] // mirrors the OpenSHMEM C signature
        pub fn $bcast(
            ctx: &ShmemCtx,
            target: &Sym<$ty>,
            source: &Sym<$ty>,
            nelems: usize,
            pe_root: usize,
            pe_start: usize,
            log_pe_stride: u32,
            pe_size: usize,
        ) {
            ctx.broadcast(target, source, nelems, pe_root, set(pe_start, log_pe_stride, pe_size))
        }

        #[doc = concat!("`", stringify!($collect), "()`.")]
        pub fn $collect(
            ctx: &ShmemCtx,
            target: &Sym<$ty>,
            source: &Sym<$ty>,
            nelems: usize,
            pe_start: usize,
            log_pe_stride: u32,
            pe_size: usize,
        ) -> usize {
            ctx.collect(target, source, nelems, set(pe_start, log_pe_stride, pe_size))
        }

        #[doc = concat!("`", stringify!($fcollect), "()`.")]
        pub fn $fcollect(
            ctx: &ShmemCtx,
            target: &Sym<$ty>,
            source: &Sym<$ty>,
            nelems: usize,
            pe_start: usize,
            log_pe_stride: u32,
            pe_size: usize,
        ) {
            ctx.fcollect(target, source, nelems, set(pe_start, log_pe_stride, pe_size))
        }

        #[doc = concat!("`", stringify!($alltoall), "()` (OpenSHMEM 1.3).")]
        #[allow(clippy::too_many_arguments)] // mirrors the OpenSHMEM C signature
        pub fn $alltoall(
            ctx: &ShmemCtx,
            target: &Sym<$ty>,
            source: &Sym<$ty>,
            nelems: usize,
            pe_start: usize,
            log_pe_stride: u32,
            pe_size: usize,
        ) {
            ctx.alltoall(target, source, nelems, set(pe_start, log_pe_stride, pe_size))
        }

        #[doc = concat!("`", stringify!($alltoalls), "()` (OpenSHMEM 1.3, strided).")]
        #[allow(clippy::too_many_arguments)] // mirrors the OpenSHMEM C signature
        pub fn $alltoalls(
            ctx: &ShmemCtx,
            target: &Sym<$ty>,
            source: &Sym<$ty>,
            dst: usize,
            sst: usize,
            nelems: usize,
            pe_start: usize,
            log_pe_stride: u32,
            pe_size: usize,
        ) {
            ctx.alltoalls(target, source, dst, sst, nelems, set(pe_start, log_pe_stride, pe_size))
        }
    };
}

collective_width!(u32, shmem_broadcast32, shmem_collect32, shmem_fcollect32, shmem_alltoall32, shmem_alltoalls32);
collective_width!(u64, shmem_broadcast64, shmem_collect64, shmem_fcollect64, shmem_alltoall64, shmem_alltoalls64);

// --- accessibility queries --------------------------------------------------

/// `shmem_pe_accessible()`: whether `pe` is a valid PE of this job.
pub fn shmem_pe_accessible(ctx: &ShmemCtx, pe: usize) -> bool {
    pe < ctx.n_pes()
}

/// `shmem_addr_accessible()`: whether `sym` on `pe` can be addressed
/// directly from this PE (true for dynamic symmetric objects on this
/// shared-memory machine; false for remote statics).
pub fn shmem_addr_accessible<T: Bits>(ctx: &ShmemCtx, sym: &Sym<T>, pe: usize) -> bool {
    pe < ctx.n_pes() && ctx.ptr(sym, pe).is_some()
}
