//! Active sets: the OpenSHMEM `(PE_start, logPE_stride, PE_size)`
//! triplet that names the subset of PEs participating in a barrier or
//! collective.

/// A strided subset of PEs.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct ActiveSet {
    /// First PE of the set.
    pub start: usize,
    /// Log2 of the stride between consecutive PEs.
    pub log2_stride: u32,
    /// Number of PEs in the set.
    pub size: usize,
}

impl ActiveSet {
    /// The set `{start, start + 2^log2_stride, ...}` of `size` PEs.
    ///
    /// # Panics
    /// Panics if `size == 0`.
    pub fn new(start: usize, log2_stride: u32, size: usize) -> Self {
        assert!(size > 0, "active set cannot be empty");
        Self {
            start,
            log2_stride,
            size,
        }
    }

    /// All PEs `0..npes`.
    pub fn all(npes: usize) -> Self {
        Self::new(0, 0, npes)
    }

    pub fn stride(&self) -> usize {
        1usize << self.log2_stride
    }

    /// PE id of set rank `rank`.
    ///
    /// # Panics
    /// Panics if `rank >= size`.
    pub fn pe_at(&self, rank: usize) -> usize {
        assert!(rank < self.size, "rank {rank} out of set (size {})", self.size);
        self.start + rank * self.stride()
    }

    /// Set rank of PE `pe`, if it is a member.
    pub fn rank_of(&self, pe: usize) -> Option<usize> {
        if pe < self.start {
            return None;
        }
        let d = pe - self.start;
        let s = self.stride();
        if !d.is_multiple_of(s) {
            return None;
        }
        let r = d / s;
        (r < self.size).then_some(r)
    }

    pub fn contains(&self, pe: usize) -> bool {
        self.rank_of(pe).is_some()
    }

    /// Largest PE id in the set (for bounds validation).
    pub fn max_pe(&self) -> usize {
        self.pe_at(self.size - 1)
    }

    /// Iterate member PE ids in rank order.
    pub fn iter(&self) -> impl Iterator<Item = usize> + '_ {
        (0..self.size).map(|r| self.pe_at(r))
    }

    /// A compact identification word for barrier tokens — the paper's
    /// "active-set identification" that keeps overlapping barrier calls
    /// from confusing each other.
    pub fn ident(&self) -> u64 {
        (self.start as u64) | ((self.log2_stride as u64) << 24) | ((self.size as u64) << 32)
    }

    /// The triplet form used at the fabric boundary.
    pub fn triplet(&self) -> (usize, u32, usize) {
        (self.start, self.log2_stride, self.size)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_set_covers_everyone() {
        let s = ActiveSet::all(6);
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![0, 1, 2, 3, 4, 5]);
        assert_eq!(s.rank_of(3), Some(3));
        assert_eq!(s.max_pe(), 5);
    }

    #[test]
    fn strided_set_membership() {
        // PEs {2, 6, 10, 14}: start 2, stride 4 (log2 = 2), size 4.
        let s = ActiveSet::new(2, 2, 4);
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![2, 6, 10, 14]);
        assert_eq!(s.rank_of(10), Some(2));
        assert_eq!(s.rank_of(4), None); // off-stride
        assert_eq!(s.rank_of(18), None); // past the end
        assert_eq!(s.rank_of(1), None); // before start
        assert!(s.contains(14));
        assert!(!s.contains(0));
    }

    #[test]
    fn pe_at_and_rank_roundtrip() {
        let s = ActiveSet::new(1, 1, 5);
        for r in 0..s.size {
            assert_eq!(s.rank_of(s.pe_at(r)), Some(r));
        }
    }

    #[test]
    #[should_panic(expected = "out of set")]
    fn pe_at_out_of_range_panics() {
        ActiveSet::new(0, 0, 3).pe_at(3);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn empty_set_panics() {
        ActiveSet::new(0, 0, 0);
    }

    #[test]
    fn idents_distinguish_sets() {
        let a = ActiveSet::new(0, 0, 4).ident();
        let b = ActiveSet::new(0, 1, 4).ident();
        let c = ActiveSet::new(0, 0, 8).ident();
        let d = ActiveSet::new(1, 0, 4).ident();
        let all = [a, b, c, d];
        for (i, x) in all.iter().enumerate() {
            for y in &all[i + 1..] {
                assert_ne!(x, y);
            }
        }
    }
}
