//! Job types of the multi-tenant server: what a tenant submits, what
//! admission can reject, and what the pool reports back.

use std::sync::Arc;
use std::time::Duration;

use crate::ctx::ShmemCtx;
use crate::runtime::RuntimeConfig;

/// Server-assigned job identifier (monotone per [`Server`]).
///
/// [`Server`]: crate::server::Server
pub type JobId = u64;

/// One tenant job: a launch geometry plus the per-PE body the pool runs
/// on every PE of the job's private launch.
#[derive(Clone)]
pub struct JobSpec {
    /// Tenant identity — the unit of scheduler fairness accounting.
    pub tenant: u32,
    /// Launch geometry (PE count, partition size, algorithms, ...).
    /// Admission checks `cfg.npes` and `cfg.partition_bytes` against
    /// the server's per-job quotas.
    pub cfg: RuntimeConfig,
    /// Per-PE body, exactly as a `Launcher::run` closure.
    pub body: Arc<dyn Fn(&ShmemCtx) + Send + Sync>,
}

impl JobSpec {
    pub fn new(cfg: RuntimeConfig, body: impl Fn(&ShmemCtx) + Send + Sync + 'static) -> Self {
        Self {
            tenant: 0,
            cfg,
            body: Arc::new(body),
        }
    }

    pub fn with_tenant(mut self, tenant: u32) -> Self {
        self.tenant = tenant;
        self
    }
}

impl std::fmt::Debug for JobSpec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("JobSpec")
            .field("tenant", &self.tenant)
            .field("npes", &self.cfg.npes)
            .field("partition_bytes", &self.cfg.partition_bytes)
            .finish_non_exhaustive()
    }
}

/// Terminal state of one job. Every accepted job resolves to exactly
/// one of these; the pool itself never stalls on a tenant's behalf.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum JobOutcome {
    /// Ran to completion. `attempts > 1` means earlier launches were
    /// evicted as wedged and a retry succeeded.
    Completed { attempts: u32 },
    /// A tenant PE panicked; the panic was caught at the PE boundary and
    /// poisoned only this job. `error` is the (first-joined) panic
    /// message — on a multi-PE job the origin PE's message may be
    /// shadowed by a sibling's secondary "aborting" panic.
    Faulted { attempts: u32, error: String },
    /// The job wedged (livelock/deadlock): the per-tenant watchdog
    /// diagnosed it, evicted it, and every retry up to the policy limit
    /// wedged again. `diagnosis` is the final per-PE stall report.
    Evicted { attempts: u32, diagnosis: String },
    /// Dropped before running: load-shed as the oldest queued job under
    /// overload ([`ShedPolicy::DropOldest`]), or still queued at server
    /// shutdown.
    ///
    /// [`ShedPolicy::DropOldest`]: crate::server::ShedPolicy::DropOldest
    Shed { reason: String },
}

impl JobOutcome {
    pub fn is_completed(&self) -> bool {
        matches!(self, Self::Completed { .. })
    }

    pub fn is_faulted(&self) -> bool {
        matches!(self, Self::Faulted { .. })
    }

    pub fn is_evicted(&self) -> bool {
        matches!(self, Self::Evicted { .. })
    }

    pub fn is_shed(&self) -> bool {
        matches!(self, Self::Shed { .. })
    }

    /// Launch attempts consumed (0 for a job that never ran).
    pub fn attempts(&self) -> u32 {
        match self {
            Self::Completed { attempts }
            | Self::Faulted { attempts, .. }
            | Self::Evicted { attempts, .. } => *attempts,
            Self::Shed { .. } => 0,
        }
    }
}

/// A resolved job: its outcome plus the accept-to-resolution sojourn
/// time (queue wait + every launch attempt + eviction backoff).
#[derive(Clone, Debug)]
pub struct JobReport {
    pub id: JobId,
    pub outcome: JobOutcome,
    pub latency: Duration,
}

/// Why admission refused a submission.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SubmitError {
    /// Bounded queue full under [`ShedPolicy::RejectNew`]. The hint is
    /// the server's estimate of when a slot frees (mean observed service
    /// time scaled by queue depth over pool width).
    ///
    /// [`ShedPolicy::RejectNew`]: crate::server::ShedPolicy::RejectNew
    QueueFull { retry_after: Duration },
    /// `cfg.npes` exceeds the server's per-job PE quota.
    TooManyPes { requested: usize, quota: usize },
    /// `cfg.partition_bytes` exceeds the per-job symmetric-heap quota.
    HeapQuota { requested: usize, quota: usize },
    /// The server is draining and accepts no new work.
    ShuttingDown,
}

impl std::fmt::Display for SubmitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::QueueFull { retry_after } => {
                write!(f, "admission queue full; retry after {retry_after:?}")
            }
            Self::TooManyPes { requested, quota } => {
                write!(f, "job wants {requested} PEs, per-job quota is {quota}")
            }
            Self::HeapQuota { requested, quota } => write!(
                f,
                "job wants {requested}-byte partitions, per-job quota is {quota}"
            ),
            Self::ShuttingDown => write!(f, "server is shutting down"),
        }
    }
}

impl std::error::Error for SubmitError {}
