//! `tshmem::server` — a fault-isolated multi-tenant job runtime.
//!
//! TSHMEM itself runs one job per launch; this layer turns the
//! cooperative M:N engine into a *resident pool*: tenants submit
//! [`JobSpec`]s into a bounded admission queue, a pluggable
//! [`Scheduler`] orders dispatch, and each job runs as its own
//! supervised cooperative launch over a leased slice of the pool's
//! worker slots. The pool survives hostile tenants by construction —
//! panics are caught at the launch boundary ([`JobOutcome::Faulted`]),
//! wedged jobs are diagnosed and evicted by a per-job watchdog
//! ([`JobOutcome::Evicted`]), and overload is shed at admission
//! ([`SubmitError::QueueFull`], [`ShedPolicy`]).
//!
//! Layering:
//!
//! * [`pool`] — the [`Server`]: admission, worker-slot leasing,
//!   per-job supervision, eviction with exponential backoff.
//! * [`scheduler`] — the [`Scheduler`] trait with [`RoundRobin`] and
//!   the CFS-style [`FairScheduler`].
//! * [`job`] — [`JobSpec`] / [`JobOutcome`] / [`SubmitError`] /
//!   [`JobReport`].
//! * [`arena`] — the [`ArenaPool`] recycling symmetric-heap shard sets
//!   between tenants (scrubbed at checkout).
//!
//! See DESIGN.md §8 for the lifecycle state machine and the isolation
//! boundaries, and EXPERIMENTS.md for the open-loop load methodology
//! behind `BENCH_server.json`.

pub mod arena;
pub mod job;
pub mod pool;
pub mod scheduler;

pub use arena::{ArenaPool, ArenaPoolStats};
pub use job::{JobId, JobOutcome, JobReport, JobSpec, SubmitError};
pub use pool::{JobHandle, Server, ServerConfig, ServerStats, ShedPolicy};
pub use scheduler::{FairScheduler, QueuedJob, RoundRobin, Scheduler};
