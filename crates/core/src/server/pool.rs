//! The resident multi-tenant job pool: bounded admission, worker-slot
//! leasing, per-job fault isolation, and watchdog-driven eviction.
//!
//! # Job lifecycle (DESIGN.md §8)
//!
//! ```text
//! submit ── quota check ──▶ Queued ── pick + lease ──▶ Running
//!    │            │            │                          │
//!    ▼            ▼            ▼                          ├─▶ Completed
//! TooManyPes  QueueFull       Shed                        ├─▶ Faulted   (tenant panic, caught)
//! /HeapQuota  (RejectNew)  (DropOldest                    └─▶ wedged ──▶ evict ─▶ backoff ─▶ Running (retry)
//!                           or shutdown)                              └─────── attempts exhausted ──▶ Evicted
//! ```
//!
//! Isolation boundaries: every job runs as its own cooperative launch —
//! its own recycled symmetric-heap shard set (scrubbed at checkout, see
//! [`super::arena`]), its own UDN fabric, its own trace lanes, its own
//! [`JobWatch`]. A tenant panic is caught at the launch boundary
//! ([`std::panic::catch_unwind`] around the `Launcher`), poisons only
//! that job, and is reported as [`JobOutcome::Faulted`] while the pool
//! keeps serving. A wedged job is diagnosed with the same per-PE stall
//! report the stress watchdog renders, aborted, its worker-slot lease
//! reclaimed, and retried with exponential backoff up to
//! [`ServerConfig::max_attempts`].
//!
//! What eviction cannot reclaim: a PE thread wedged outside every
//! fabric abort checkpoint (e.g. parked in a fault-injected raw channel
//! send) leaks until process exit, exactly as in the stress watchdog.
//! The pool's accounting unit is the worker-slot *lease*, not the OS
//! thread, so capacity recovers even when threads leak.

use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use substrate::channel::{self, Receiver, RecvTimeoutError, Sender};
use substrate::sync::{Condvar, Mutex};

use crate::engine::backend::WatchPlane;
use crate::engine::coop::CoopBackend;
use crate::runtime::Launcher;
use crate::server::arena::ArenaPool;
use crate::server::job::{JobId, JobOutcome, JobReport, JobSpec, SubmitError};
use crate::server::scheduler::{FairScheduler, QueuedJob, RoundRobin, Scheduler};
use crate::watch::{classify_stall, scaled_stall, JobWatch};

/// Watchdog poll cadence while a job runs.
const POLL: Duration = Duration::from_millis(20);
/// How long an evicted job gets to finish unwinding after `abort()`
/// before the runner moves on (threads wedged past every abort
/// checkpoint leak; see module docs).
const ABORT_GRACE: Duration = Duration::from_secs(1);

/// What to do with a submission that finds the bounded queue full.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ShedPolicy {
    /// Reject the new submission with a retry-after hint (default).
    RejectNew,
    /// Admit the new submission and shed the oldest queued job, whose
    /// handle resolves to [`JobOutcome::Shed`].
    DropOldest,
}

/// Pool sizing, quotas, and supervision policy.
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Worker slots (M) the pool leases to jobs; `0` = auto from host
    /// parallelism (floored at 2).
    pub workers: usize,
    /// Bounded admission-queue depth (floored at 1).
    pub queue_depth: usize,
    /// Per-job PE quota.
    pub max_npes: usize,
    /// Per-job symmetric-heap quota (bytes per partition).
    pub max_partition_bytes: usize,
    /// Base per-job stall window; the effective window is
    /// `scaled_stall(stall, oversubscription)` of the job's own launch.
    pub stall: Duration,
    /// Total launch attempts per job (1 = never retry a wedge).
    pub max_attempts: u32,
    /// Eviction backoff before attempt `k+1`: `backoff * 2^(k-1)`.
    pub backoff: Duration,
    pub shed: ShedPolicy,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            workers: 0,
            queue_depth: 64,
            max_npes: 64,
            max_partition_bytes: 4 * 1024 * 1024,
            stall: Duration::from_secs(2),
            max_attempts: 2,
            backoff: Duration::from_millis(50),
            shed: ShedPolicy::RejectNew,
        }
    }
}

impl ServerConfig {
    fn resolved_slots(&self) -> usize {
        let m = if self.workers == 0 {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(2)
                .max(2)
        } else {
            self.workers
        };
        m.max(1)
    }
}

/// Pool-lifetime counters (monotone; `arenas_*` come from the shared
/// [`ArenaPool`]).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ServerStats {
    /// Accepted into the queue.
    pub submitted: u64,
    /// Refused at admission (quotas or a full queue under `RejectNew`).
    pub rejected: u64,
    /// Accepted but dropped before running (DropOldest or shutdown).
    pub shed: u64,
    pub completed: u64,
    pub faulted: u64,
    pub evicted: u64,
    /// Eviction retries granted (attempts beyond each job's first).
    pub retries: u64,
    pub arenas_fresh: u64,
    pub arenas_recycled: u64,
}

struct Queued {
    id: JobId,
    spec: JobSpec,
    accepted: Instant,
    tx: Sender<JobReport>,
}

struct State {
    queue: VecDeque<Queued>,
    /// Job chosen by the scheduler but still waiting for enough free
    /// slots — kept sticky so a blocked wide job does not make the
    /// dispatcher re-`pick` (and corrupt rotation state) on every wake.
    pending: Option<JobId>,
    free_slots: usize,
    active: usize,
    shutdown: bool,
    scheduler: Box<dyn Scheduler>,
}

struct Inner {
    cfg: ServerConfig,
    /// Total worker slots (resolved once at construction).
    slots: usize,
    state: Mutex<State>,
    /// Signaled on submit, slot release, runner completion, shutdown.
    work: Condvar,
    arena: Arc<ArenaPool>,
    next_id: AtomicU64,
    submitted: AtomicU64,
    rejected: AtomicU64,
    shed: AtomicU64,
    completed: AtomicU64,
    faulted: AtomicU64,
    evicted: AtomicU64,
    retries: AtomicU64,
    /// Completed-attempt runtime accounting for retry-after estimates.
    run_ns: AtomicU64,
    runs: AtomicU64,
}

/// Waitable handle to one accepted job.
pub struct JobHandle {
    id: JobId,
    rx: Receiver<JobReport>,
}

impl std::fmt::Debug for JobHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("JobHandle").field("id", &self.id).finish_non_exhaustive()
    }
}

impl JobHandle {
    pub fn id(&self) -> JobId {
        self.id
    }

    /// Block until the job resolves. Every accepted job resolves: run
    /// to an outcome, or shed at shutdown.
    pub fn wait(self) -> JobReport {
        self.rx.recv().unwrap_or(JobReport {
            id: self.id,
            latency: Duration::ZERO,
            outcome: JobOutcome::Shed {
                reason: "server dropped without resolving the job".into(),
            },
        })
    }

    /// Non-blocking probe; `Some` exactly once.
    pub fn try_wait(&self) -> Option<JobReport> {
        self.rx.try_recv().ok()
    }
}

/// The resident job pool (see module docs). Construct with a scheduling
/// policy, `submit` jobs, `shutdown` to drain.
pub struct Server {
    inner: Arc<Inner>,
    dispatcher: Option<std::thread::JoinHandle<()>>,
}

impl Server {
    pub fn new(cfg: ServerConfig, scheduler: Box<dyn Scheduler>) -> Self {
        let slots = cfg.resolved_slots();
        let cfg = ServerConfig {
            queue_depth: cfg.queue_depth.max(1),
            max_attempts: cfg.max_attempts.max(1),
            ..cfg
        };
        let inner = Arc::new(Inner {
            cfg,
            slots,
            state: Mutex::new(State {
                queue: VecDeque::new(),
                pending: None,
                free_slots: slots,
                active: 0,
                shutdown: false,
                scheduler,
            }),
            work: Condvar::new(),
            arena: Arc::new(ArenaPool::new()),
            next_id: AtomicU64::new(0),
            submitted: AtomicU64::new(0),
            rejected: AtomicU64::new(0),
            shed: AtomicU64::new(0),
            completed: AtomicU64::new(0),
            faulted: AtomicU64::new(0),
            evicted: AtomicU64::new(0),
            retries: AtomicU64::new(0),
            run_ns: AtomicU64::new(0),
            runs: AtomicU64::new(0),
        });
        let inner2 = inner.clone();
        let dispatcher = std::thread::Builder::new()
            .name("tshmem-srv-dispatch".into())
            .spawn(move || dispatch_loop(inner2))
            .expect("spawn server dispatcher");
        Self {
            inner,
            dispatcher: Some(dispatcher),
        }
    }

    /// A server scheduling tenants round-robin.
    pub fn round_robin(cfg: ServerConfig) -> Self {
        Self::new(cfg, Box::new(RoundRobin::new()))
    }

    /// A server with the CFS-style fair scheduler.
    pub fn fair(cfg: ServerConfig) -> Self {
        Self::new(cfg, Box::new(FairScheduler::new()))
    }

    /// Total worker slots the pool leases from.
    pub fn slots(&self) -> usize {
        self.inner.slots
    }

    /// Admit a job: quota checks, then the bounded queue. On success the
    /// handle resolves to exactly one [`JobReport`].
    pub fn submit(&self, spec: JobSpec) -> Result<JobHandle, SubmitError> {
        let cfg = &self.inner.cfg;
        if spec.cfg.npes > cfg.max_npes {
            self.inner.rejected.fetch_add(1, Ordering::Relaxed);
            return Err(SubmitError::TooManyPes {
                requested: spec.cfg.npes,
                quota: cfg.max_npes,
            });
        }
        if spec.cfg.partition_bytes > cfg.max_partition_bytes {
            self.inner.rejected.fetch_add(1, Ordering::Relaxed);
            return Err(SubmitError::HeapQuota {
                requested: spec.cfg.partition_bytes,
                quota: cfg.max_partition_bytes,
            });
        }
        let mut st = self.inner.state.lock();
        if st.shutdown {
            return Err(SubmitError::ShuttingDown);
        }
        if st.queue.len() >= cfg.queue_depth {
            match cfg.shed {
                ShedPolicy::RejectNew => {
                    let retry_after = self.inner.retry_after(st.queue.len());
                    drop(st);
                    self.inner.rejected.fetch_add(1, Ordering::Relaxed);
                    return Err(SubmitError::QueueFull { retry_after });
                }
                ShedPolicy::DropOldest => {
                    let old = st.queue.pop_front().expect("full queue is non-empty");
                    self.inner.shed.fetch_add(1, Ordering::Relaxed);
                    let _ = old.tx.try_send(JobReport {
                        id: old.id,
                        latency: old.accepted.elapsed(),
                        outcome: JobOutcome::Shed {
                            reason: "load-shed: oldest queued job dropped under overload".into(),
                        },
                    });
                }
            }
        }
        let id = self.inner.next_id.fetch_add(1, Ordering::Relaxed) + 1;
        let (tx, rx) = channel::bounded(1);
        st.queue.push_back(Queued {
            id,
            spec,
            accepted: Instant::now(),
            tx,
        });
        drop(st);
        self.inner.submitted.fetch_add(1, Ordering::Relaxed);
        self.inner.work.notify_all();
        Ok(JobHandle { id, rx })
    }

    /// Jobs accepted but not yet dispatched.
    pub fn queue_len(&self) -> usize {
        self.inner.state.lock().queue.len()
    }

    pub fn stats(&self) -> ServerStats {
        let arena = self.inner.arena.stats();
        ServerStats {
            submitted: self.inner.submitted.load(Ordering::Relaxed),
            rejected: self.inner.rejected.load(Ordering::Relaxed),
            shed: self.inner.shed.load(Ordering::Relaxed),
            completed: self.inner.completed.load(Ordering::Relaxed),
            faulted: self.inner.faulted.load(Ordering::Relaxed),
            evicted: self.inner.evicted.load(Ordering::Relaxed),
            retries: self.inner.retries.load(Ordering::Relaxed),
            arenas_fresh: arena.fresh,
            arenas_recycled: arena.recycled,
        }
    }

    /// Stop accepting work, shed still-queued jobs, wait for running
    /// jobs to resolve, and return the final counters.
    pub fn shutdown(mut self) -> ServerStats {
        self.do_shutdown();
        self.stats()
    }

    fn do_shutdown(&mut self) {
        self.inner.state.lock().shutdown = true;
        self.inner.work.notify_all();
        if let Some(h) = self.dispatcher.take() {
            let _ = h.join();
        }
        let mut st = self.inner.state.lock();
        while st.active > 0 {
            self.inner.work.wait(&mut st);
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        if self.dispatcher.is_some() {
            self.do_shutdown();
        }
    }
}

impl Inner {
    /// Retry-after hint for a rejected submission: mean observed attempt
    /// runtime times the queue depth ahead of the caller, spread over
    /// the pool width.
    fn retry_after(&self, queue_len: usize) -> Duration {
        let runs = self.runs.load(Ordering::Relaxed);
        let mean_ns = self
            .run_ns
            .load(Ordering::Relaxed)
            .checked_div(runs)
            .unwrap_or(10_000_000); // no history yet: assume 10ms jobs
        let est = mean_ns.saturating_mul(queue_len as u64 + 1) / self.slots.max(1) as u64;
        Duration::from_nanos(est.clamp(1_000_000, 10_000_000_000))
    }
}

fn dispatch_loop(inner: Arc<Inner>) {
    loop {
        let (q, lease) = {
            let mut st = inner.state.lock();
            loop {
                if st.shutdown {
                    while let Some(old) = st.queue.pop_front() {
                        inner.shed.fetch_add(1, Ordering::Relaxed);
                        let _ = old.tx.try_send(JobReport {
                            id: old.id,
                            latency: old.accepted.elapsed(),
                            outcome: JobOutcome::Shed {
                                reason: "server shut down before the job ran".into(),
                            },
                        });
                    }
                    return;
                }
                if !st.queue.is_empty() {
                    let idx = match st.pending.and_then(|id| st.queue.iter().position(|j| j.id == id)) {
                        Some(idx) => idx,
                        None => {
                            let metas: Vec<QueuedJob> = st
                                .queue
                                .iter()
                                .map(|j| QueuedJob {
                                    id: j.id,
                                    tenant: j.spec.tenant,
                                    npes: j.spec.cfg.npes,
                                })
                                .collect();
                            let idx = st.scheduler.pick(&metas).min(metas.len() - 1);
                            st.pending = Some(st.queue[idx].id);
                            idx
                        }
                    };
                    // A job never leases more slots than exist, so even
                    // an npes > slots job can always eventually run.
                    let lease = st.queue[idx].spec.cfg.npes.clamp(1, inner.slots);
                    if st.free_slots >= lease {
                        let q = st.queue.remove(idx).expect("picked index in range");
                        st.pending = None;
                        st.free_slots -= lease;
                        st.active += 1;
                        break (q, lease);
                    }
                    // Deliberate head-of-line wait: the picked job keeps
                    // its turn until slots free — skipping ahead would
                    // let a stream of narrow jobs starve a wide one.
                }
                inner.work.wait(&mut st);
            }
        };
        let inner2 = inner.clone();
        std::thread::Builder::new()
            .name(format!("tshmem-srv-job-{}", q.id))
            .spawn(move || run_job(inner2, q, lease))
            .expect("spawn server job runner");
    }
}

/// One launch attempt's verdict (internal to the runner).
enum Attempt {
    Completed,
    Panicked(String),
    Wedged(String),
}

fn run_job(inner: Arc<Inner>, q: Queued, lease: usize) {
    let mut attempts = 0u32;
    let mut holding = true;
    let outcome = loop {
        attempts += 1;
        let t0 = Instant::now();
        let attempt = attempt_launch(&inner, q.id, &q.spec, lease);
        let ran = t0.elapsed();
        inner.run_ns.fetch_add(ran.as_nanos() as u64, Ordering::Relaxed);
        inner.runs.fetch_add(1, Ordering::Relaxed);
        inner
            .state
            .lock()
            .scheduler
            .charge(q.spec.tenant, q.spec.cfg.npes, ran);
        match attempt {
            Attempt::Completed => break JobOutcome::Completed { attempts },
            Attempt::Panicked(error) => break JobOutcome::Faulted { attempts, error },
            Attempt::Wedged(diagnosis) => {
                if attempts >= inner.cfg.max_attempts {
                    break JobOutcome::Evicted { attempts, diagnosis };
                }
                inner.retries.fetch_add(1, Ordering::Relaxed);
                // Return the lease for the backoff: eviction reclaims
                // the workers even though the retry is still pending.
                release_slots(&inner, lease);
                holding = false;
                std::thread::sleep(inner.cfg.backoff * 2u32.saturating_pow(attempts - 1));
                if acquire_slots(&inner, lease) {
                    holding = true;
                } else {
                    break JobOutcome::Evicted {
                        attempts,
                        diagnosis: format!("{diagnosis}(retry abandoned: server shut down during backoff)\n"),
                    };
                }
            }
        }
    };
    match &outcome {
        JobOutcome::Completed { .. } => inner.completed.fetch_add(1, Ordering::Relaxed),
        JobOutcome::Faulted { .. } => inner.faulted.fetch_add(1, Ordering::Relaxed),
        JobOutcome::Evicted { .. } => inner.evicted.fetch_add(1, Ordering::Relaxed),
        JobOutcome::Shed { .. } => unreachable!("runners never shed"),
    };
    {
        let mut st = inner.state.lock();
        if holding {
            st.free_slots += lease;
        }
        st.active -= 1;
    }
    inner.work.notify_all();
    let _ = q.tx.try_send(JobReport {
        id: q.id,
        outcome,
        latency: q.accepted.elapsed(),
    });
}

fn release_slots(inner: &Inner, lease: usize) {
    inner.state.lock().free_slots += lease;
    inner.work.notify_all();
}

/// Re-acquire `lease` slots for a retry; `false` if the server shut
/// down while waiting.
fn acquire_slots(inner: &Inner, lease: usize) -> bool {
    let mut st = inner.state.lock();
    loop {
        if st.shutdown {
            return false;
        }
        if st.free_slots >= lease {
            st.free_slots -= lease;
            return true;
        }
        inner.work.wait(&mut st);
    }
}

/// Launch the job once as its own supervised cooperative launch; see the
/// module docs for the isolation contract. Mirrors the stress crate's
/// `watch_wall` watchdog: detached launch thread, diagnose *before*
/// abort, bounded unwind grace.
fn attempt_launch(inner: &Arc<Inner>, id: JobId, spec: &JobSpec, lease: usize) -> Attempt {
    let watch = Arc::new(JobWatch::new());
    let (tx, rx) = channel::bounded::<std::thread::Result<()>>(1);
    let cfg = spec.cfg;
    let body = spec.body.clone();
    let w = Arc::clone(&watch);
    let pool = inner.arena.clone();
    std::thread::Builder::new()
        .name(format!("tshmem-srv-launch-{id}"))
        .spawn(move || {
            let r = catch_unwind(AssertUnwindSafe(|| {
                let backend = CoopBackend {
                    workers: lease,
                    arena_pool: Some(pool),
                };
                Launcher::new(&cfg, backend)
                    .with_watch(WatchPlane::Native(&w))
                    .run(|ctx| body(ctx));
            }));
            let _ = tx.try_send(r.map(|_| ()));
        })
        .expect("spawn server launch thread");

    let mut last_ops = 0u64;
    let mut baseline = watch.counters();
    let mut last_change = Instant::now();
    loop {
        match rx.recv_timeout(POLL) {
            Ok(Ok(())) => return Attempt::Completed,
            // `&*payload`, not `&payload`: coercing the Box itself into
            // `dyn Any` would make every downcast miss.
            Ok(Err(payload)) => return Attempt::Panicked(panic_message(&*payload)),
            Err(RecvTimeoutError::Timeout) => {}
            Err(RecvTimeoutError::Disconnected) => {
                return Attempt::Panicked("launch thread exited without reporting".into());
            }
        }
        let ops = watch.total_ops();
        let window = scaled_stall(inner.cfg.stall, watch.oversubscription());
        if ops != last_ops || baseline.is_empty() {
            last_ops = ops;
            baseline = watch.counters();
            last_change = Instant::now();
        } else if last_change.elapsed() >= window {
            // Diagnose BEFORE aborting: abort unparks the blocked PEs
            // and would destroy the evidence.
            let now = watch.counters();
            let blocked = watch.blocked_states();
            let npes = now.len() / 2;
            let class = classify_stall(now.iter().enumerate().take(npes).map(|(i, n)| {
                let b = baseline.get(i).copied().unwrap_or_default();
                let descheduled = matches!(
                    blocked.get(i),
                    Some(crate::fabric::BlockedOn::Descheduled)
                );
                (
                    n.ops.saturating_sub(b.ops),
                    n.spins.saturating_sub(b.spins),
                    descheduled,
                )
            }));
            let mut report = format!(
                "server watchdog: job {id} made no useful fabric progress for {:.1}s\n\
                 classification: {class}\n{}",
                window.as_secs_f64(),
                watch.diagnose_delta(Some(&baseline))
            );
            if let Some(desc) = crate::fault::describe_active() {
                report.push_str(&format!("active {desc}\n"));
            }
            watch.abort();
            let _ = rx.recv_timeout(ABORT_GRACE);
            return Attempt::Wedged(report);
        }
    }
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "tenant panic (non-string payload)".into()
    }
}
