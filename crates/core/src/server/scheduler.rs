//! Pluggable dispatch-order policies for the server's admission queue.
//!
//! The dispatcher holds the queue in arrival order and asks the
//! scheduler which entry to launch next; after every launch attempt it
//! charges the attempt's wall-clock runtime (weighted by the job's PE
//! width) back to the tenant. Two policies ship: strict tenant
//! round-robin and a CFS-style fair scheduler that always serves the
//! tenant with the least weighted runtime consumed so far.

use std::collections::HashMap;
use std::time::Duration;

use crate::server::job::JobId;

/// Scheduler-visible metadata of one queued job.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct QueuedJob {
    pub id: JobId,
    pub tenant: u32,
    pub npes: usize,
}

/// Dispatch-order policy. Implementations are driven under the server's
/// queue lock, so `pick` and `charge` need no internal synchronization.
pub trait Scheduler: Send {
    fn name(&self) -> &'static str;

    /// Index into `queued` (arrival order, non-empty) of the job to
    /// dispatch next. Called once per dispatch decision; the chosen job
    /// is removed from the queue before the next call (though it may
    /// wait for worker slots first).
    fn pick(&mut self, queued: &[QueuedJob]) -> usize;

    /// Charge one finished launch attempt to its tenant: `runtime` of
    /// wall-clock execution at `npes`-PE width.
    fn charge(&mut self, tenant: u32, npes: usize, runtime: Duration);
}

/// Strict tenant rotation: each dispatch serves the next tenant id
/// (cyclically) that has work queued, FIFO within a tenant. Runtime
/// charges are ignored — a tenant submitting many wide jobs gets the
/// same turn frequency as one submitting few narrow ones.
#[derive(Debug, Default)]
pub struct RoundRobin {
    last: Option<u32>,
}

impl RoundRobin {
    pub fn new() -> Self {
        Self::default()
    }
}

impl Scheduler for RoundRobin {
    fn name(&self) -> &'static str {
        "round_robin"
    }

    fn pick(&mut self, queued: &[QueuedJob]) -> usize {
        let mut tenants: Vec<u32> = queued.iter().map(|q| q.tenant).collect();
        tenants.sort_unstable();
        tenants.dedup();
        let next = self
            .last
            .and_then(|l| tenants.iter().copied().find(|&t| t > l))
            .unwrap_or(tenants[0]);
        self.last = Some(next);
        queued
            .iter()
            .position(|q| q.tenant == next)
            .expect("chosen tenant has a queued job")
    }

    fn charge(&mut self, _tenant: u32, _npes: usize, _runtime: Duration) {}
}

/// CFS-style fair scheduler: each tenant accumulates *vruntime* —
/// wall-clock runtime weighted by PE width, so a 8-PE job costs four
/// times a 2-PE job of the same duration — and every dispatch serves
/// the queued tenant with the minimum vruntime, FIFO within the tenant.
/// A tenant first seen enters at the current minimum (the CFS
/// `min_vruntime` placement), so a newcomer gets immediate service
/// without being able to starve incumbents with a banked deficit.
#[derive(Debug, Default)]
pub struct FairScheduler {
    vruntime: HashMap<u32, u128>,
}

impl FairScheduler {
    pub fn new() -> Self {
        Self::default()
    }

    fn floor(&self) -> u128 {
        self.vruntime.values().copied().min().unwrap_or(0)
    }

    fn vruntime_of(&self, tenant: u32) -> u128 {
        self.vruntime.get(&tenant).copied().unwrap_or(self.floor())
    }
}

impl Scheduler for FairScheduler {
    fn name(&self) -> &'static str {
        "fair"
    }

    fn pick(&mut self, queued: &[QueuedJob]) -> usize {
        // Materialize tenants first seen here at the current floor. An
        // unmaterialized tenant's observed vruntime would *track* the
        // rising minimum forever — it could only ever tie the floor
        // holder and lose the id tie-break, a starvation hole.
        let floor = self.floor();
        for q in queued {
            self.vruntime.entry(q.tenant).or_insert(floor);
        }
        let winner = queued
            .iter()
            .map(|q| q.tenant)
            // Ties (including several floor-entry newcomers) break to
            // the smaller tenant id for determinism.
            .min_by_key(|&t| (self.vruntime_of(t), t))
            .expect("pick called with a non-empty queue");
        queued
            .iter()
            .position(|q| q.tenant == winner)
            .expect("winning tenant has a queued job")
    }

    fn charge(&mut self, tenant: u32, npes: usize, runtime: Duration) {
        let entry = self.vruntime_of(tenant);
        self.vruntime
            .insert(tenant, entry + runtime.as_nanos() * npes.max(1) as u128);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn q(id: JobId, tenant: u32, npes: usize) -> QueuedJob {
        QueuedJob { id, tenant, npes }
    }

    #[test]
    fn round_robin_rotates_tenants_fifo_within() {
        let mut s = RoundRobin::new();
        // Tenant 7 floods the queue; tenant 2 has one job.
        let queue = [q(1, 7, 2), q(2, 7, 2), q(3, 2, 2), q(4, 7, 2)];
        let first = s.pick(&queue);
        assert_eq!(queue[first].tenant, 2, "lowest tenant id first");
        // Next rotation wraps to tenant 7 and picks its FIFO head.
        let queue = [q(1, 7, 2), q(2, 7, 2), q(4, 7, 2)];
        assert_eq!(s.pick(&queue), 0);
        // With tenant 2 back in the queue, the rotation returns to it
        // after 7 even though 7 still has older jobs queued.
        let queue = [q(2, 7, 2), q(5, 2, 2), q(4, 7, 2)];
        assert_eq!(queue[s.pick(&queue)].tenant, 2);
    }

    #[test]
    fn fair_serves_least_charged_tenant() {
        let mut s = FairScheduler::new();
        let queue = [q(1, 1, 2), q(2, 2, 2)];
        // First pick ties at the floor; the id tie-break is deterministic.
        assert_eq!(queue[s.pick(&queue)].tenant, 1);
        s.charge(1, 2, Duration::from_millis(100));
        assert_eq!(queue[s.pick(&queue)].tenant, 2, "least-charged tenant serves next");
        // Charge tenant 2 past tenant 1: the pick flips back.
        s.charge(2, 2, Duration::from_millis(300));
        assert_eq!(queue[s.pick(&queue)].tenant, 1);
    }

    #[test]
    fn fair_weights_runtime_by_pe_width() {
        let mut s = FairScheduler::new();
        let queue = [q(1, 1, 8), q(2, 2, 2)];
        s.pick(&queue); // both tenants enter at the floor
        // Same wall time, but tenant 1 ran 8 PEs wide vs tenant 2's 2.
        s.charge(1, 8, Duration::from_millis(10));
        s.charge(2, 2, Duration::from_millis(10));
        assert_eq!(queue[s.pick(&queue)].tenant, 2);
    }

    #[test]
    fn fair_newcomer_enters_at_the_floor() {
        let mut s = FairScheduler::new();
        let incumbents = [q(1, 1, 2), q(2, 2, 2)];
        s.pick(&incumbents);
        s.charge(1, 2, Duration::from_millis(500)); // v1 = 1000ms-PE
        s.charge(2, 2, Duration::from_millis(300)); // v2 = 600ms-PE
        // Tenant 9 first appears now: it enters at the current floor
        // (tenant 2's 600), not at zero — prompt service, but no banked
        // deficit it could starve incumbents with.
        let queue = [q(1, 1, 2), q(2, 2, 2), q(3, 9, 2)];
        assert_eq!(queue[s.pick(&queue)].tenant, 2, "floor tie breaks to the smaller id");
        s.charge(2, 2, Duration::from_millis(100)); // v2 = 800
        assert_eq!(queue[s.pick(&queue)].tenant, 9, "newcomer sits at the old floor");
        s.charge(9, 2, Duration::from_millis(250)); // v9 = 1100
        assert_eq!(queue[s.pick(&queue)].tenant, 2);
    }
}
