//! Recycling pool for symmetric-heap arena shard sets.
//!
//! A server job's symmetric heap is a [`ShardedArena`]: one
//! `CommonMemory` allocation per coop worker covering that worker's PE
//! partitions. Allocating (and faulting in) hundreds of KB per job
//! dominates small-job launch cost, so the server keeps retired shard
//! sets in a geometry-keyed pool and hands them to the next job with
//! the same shape.
//!
//! [`ShardedArena`]: crate::engine::coop::ShardedArena
//!
//! **Isolation contract:** a recycled shard still holds the previous
//! tenant's heap bytes, so every checkout is scrubbed before reuse —
//! the whole partition is zeroed (restoring the freshly-allocated
//! contract), except that under `debug_assertions` the `shmalloc` heap
//! region is filled with [`POISON`] instead, so a tenant that reads
//! heap memory before initializing it fails loudly in debug runs
//! instead of silently inheriting zeros. The internal region (barrier /
//! collective flags, temp buffer, `[heap_bytes, partition_bytes)`) is
//! always zeroed: the sequence-numbered flag protocols start every
//! launch from zero, and a poisoned flag word would satisfy a wait that
//! no peer ever signaled.
//!
//! Only *cleanly completed* jobs retire their shards here. A panicked
//! or wedged job unwinds out of the launch before the check-in point,
//! so its arena — which leaked PE threads might in principle still
//! reach — is simply dropped and the next job allocates fresh.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use cachesim::homing::Homing;
use substrate::sync::Mutex;
use tmc::common::CommonMemory;

/// Debug-build fill byte for recycled `shmalloc` heap regions.
pub const POISON: u8 = 0xA5;

/// Geometry key of one shard set: shapes must match exactly for a
/// retired set to satisfy a checkout.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
struct Geometry {
    npes: usize,
    workers: usize,
    /// PEs per shard (`ceil(npes / workers)`).
    block: usize,
    partition_bytes: usize,
}

/// Per-shard byte lengths for a geometry (the last shard may cover
/// fewer PEs).
fn shard_lens(g: Geometry) -> impl Iterator<Item = usize> {
    (0..g.workers).map(move |w| {
        let pes = ((w + 1) * g.block).min(g.npes) - w * g.block;
        pes * g.partition_bytes
    })
}

/// Counters of how checkouts were satisfied (see [`ArenaPool::stats`]).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ArenaPoolStats {
    /// Checkouts that allocated a fresh shard set.
    pub fresh: u64,
    /// Checkouts satisfied by scrubbing a retired set.
    pub recycled: u64,
}

/// A geometry-keyed pool of retired symmetric-heap shard sets (see the
/// module docs for the scrub-on-checkout isolation contract).
pub struct ArenaPool {
    pools: Mutex<HashMap<Geometry, Vec<Vec<Arc<CommonMemory>>>>>,
    /// Retired sets kept per geometry; extras are dropped at check-in.
    cap_per_geometry: usize,
    fresh: AtomicU64,
    recycled: AtomicU64,
}

impl Default for ArenaPool {
    fn default() -> Self {
        Self::new()
    }
}

impl ArenaPool {
    pub fn new() -> Self {
        Self::with_capacity(8)
    }

    /// A pool keeping at most `cap_per_geometry` retired sets per shape.
    pub fn with_capacity(cap_per_geometry: usize) -> Self {
        Self {
            pools: Mutex::new(HashMap::new()),
            cap_per_geometry: cap_per_geometry.max(1),
            fresh: AtomicU64::new(0),
            recycled: AtomicU64::new(0),
        }
    }

    /// How checkouts so far were satisfied.
    pub fn stats(&self) -> ArenaPoolStats {
        ArenaPoolStats {
            fresh: self.fresh.load(Ordering::Relaxed),
            recycled: self.recycled.load(Ordering::Relaxed),
        }
    }

    /// A scrubbed shard set for the given launch geometry: recycled
    /// when a matching retired set exists, freshly allocated otherwise.
    /// `heap_bytes` is the `shmalloc` region length at the bottom of
    /// each partition — the boundary between the (debug-poisoned) tenant
    /// heap and the always-zeroed internal region.
    pub(crate) fn checkout(
        &self,
        npes: usize,
        workers: usize,
        block: usize,
        partition_bytes: usize,
        heap_bytes: usize,
    ) -> Vec<Arc<CommonMemory>> {
        let g = Geometry { npes, workers, block, partition_bytes };
        let reused = self.pools.lock().get_mut(&g).and_then(Vec::pop);
        match reused {
            Some(shards) => {
                // Scrub outside the pool lock: a memset over a few
                // hundred KB must not serialize concurrent checkouts.
                for shard in &shards {
                    scrub_shard(shard, partition_bytes, heap_bytes);
                }
                self.recycled.fetch_add(1, Ordering::Relaxed);
                shards
            }
            None => {
                self.fresh.fetch_add(1, Ordering::Relaxed);
                shard_lens(g)
                    .map(|len| CommonMemory::new(len, Homing::HashForHome))
                    .collect()
            }
        }
    }

    /// Retire a cleanly-completed job's shard set. Sets whose shapes do
    /// not match the claimed geometry (or that exceed the per-geometry
    /// cap) are dropped instead of pooled.
    pub(crate) fn check_in(
        &self,
        npes: usize,
        workers: usize,
        block: usize,
        partition_bytes: usize,
        shards: Vec<Arc<CommonMemory>>,
    ) {
        let g = Geometry { npes, workers, block, partition_bytes };
        let shapes_match = shards.len() == workers
            && shard_lens(g).zip(shards.iter()).all(|(len, s)| s.len() == len);
        if !shapes_match {
            return;
        }
        let mut pools = self.pools.lock();
        let sets = pools.entry(g).or_default();
        if sets.len() < self.cap_per_geometry {
            sets.push(shards);
        }
    }
}

/// Scrub one recycled shard: zero every partition's internal region,
/// and zero (release) or poison (debug) its tenant heap region.
fn scrub_shard(shard: &CommonMemory, partition_bytes: usize, heap_bytes: usize) {
    let heap = heap_bytes.min(partition_bytes);
    let mut base = 0;
    while base < shard.len() {
        if cfg!(debug_assertions) {
            shard.fill(base, heap, POISON);
            shard.fill(base + heap, partition_bytes - heap, 0);
        } else {
            shard.fill(base, partition_bytes, 0);
        }
        base += partition_bytes;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const PART: usize = 256;
    const HEAP: usize = 192;

    fn geometry_shards(pool: &ArenaPool) -> Vec<Arc<CommonMemory>> {
        pool.checkout(3, 2, 2, PART, HEAP)
    }

    #[test]
    fn checkout_recycles_matching_geometry_and_scrubs() {
        let pool = ArenaPool::new();
        let shards = geometry_shards(&pool);
        assert_eq!(pool.stats(), ArenaPoolStats { fresh: 1, recycled: 0 });
        assert_eq!(shards.len(), 2);
        assert_eq!(shards[0].len(), 2 * PART); // 2 PEs
        assert_eq!(shards[1].len(), PART); // trailing single PE
        // A tenant writes a secret into its heap AND the internal region.
        shards[0].write_bytes(10, b"secret");
        shards[0].write_bytes(HEAP + 4, b"flags");
        let ptrs: Vec<*const u8> = shards.iter().map(|s| s.raw(0, 1) as *const u8).collect();
        pool.check_in(3, 2, 2, PART, shards);

        let again = geometry_shards(&pool);
        assert_eq!(pool.stats(), ArenaPoolStats { fresh: 1, recycled: 1 });
        // Same allocations back...
        for (s, p) in again.iter().zip(&ptrs) {
            assert!(std::ptr::eq(s.raw(0, 1) as *const u8, *p));
        }
        // ...but scrubbed: heap region zeroed or poisoned, never the
        // prior tenant's bytes; internal region always zeroed.
        let mut buf = [0u8; 6];
        again[0].read_bytes(10, &mut buf);
        let expect = if cfg!(debug_assertions) { [POISON; 6] } else { [0; 6] };
        assert_eq!(buf, expect, "prior tenant's heap bytes leaked through recycling");
        let mut flags = [POISON; 5];
        again[0].read_bytes(HEAP + 4, &mut flags);
        assert_eq!(flags, [0; 5], "internal flag region must be zeroed on recycle");
    }

    #[test]
    fn mismatched_geometry_is_not_recycled() {
        let pool = ArenaPool::new();
        let shards = pool.checkout(2, 1, 2, PART, HEAP);
        // Claiming the wrong shape drops the set instead of pooling it.
        pool.check_in(4, 1, 4, PART, shards);
        let _ = pool.checkout(4, 1, 4, PART, HEAP);
        assert_eq!(pool.stats(), ArenaPoolStats { fresh: 2, recycled: 0 });
    }

    #[test]
    fn pool_capacity_bounds_retired_sets() {
        let pool = ArenaPool::with_capacity(1);
        let a = geometry_shards(&pool);
        let b = geometry_shards(&pool);
        pool.check_in(3, 2, 2, PART, a);
        pool.check_in(3, 2, 2, PART, b); // over cap: dropped
        let _ = geometry_shards(&pool);
        let _ = geometry_shards(&pool);
        assert_eq!(pool.stats(), ArenaPoolStats { fresh: 3, recycled: 1 });
    }
}
