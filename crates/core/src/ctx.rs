//! The per-PE SHMEM context: environment queries, symmetric memory
//! management, local access, and finalization.
//!
//! One [`ShmemCtx`] exists per PE for the lifetime of a launch (the
//! analog of the state `start_pes()` sets up). RMA, synchronization,
//! collective, and atomic operations are implemented in their own modules
//! as further `impl ShmemCtx` blocks.

use std::cell::{Cell, RefCell};
use std::collections::HashMap;

use crate::active_set::ActiveSet;
use crate::fabric::{Fabric, ProtoMsg};
use crate::heap::{Heap, HeapError};
use crate::symm::{AddrClass, Bits, Sym};

/// Barrier algorithm selection (paper Section IV-C1 and IV-E).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum BarrierAlgo {
    /// The paper's design: linear wait/release token over the UDN.
    #[default]
    Ring,
    /// The evaluated alternative: root broadcasts the release signal.
    RootBroadcast,
    /// Adopt the TMC spin barrier (the paper's proposed optimization for
    /// TILE-Gx `barrier_all`).
    TmcSpin,
    /// Dissemination barrier: ⌈log2 n⌉ rounds of shifted pairwise
    /// signals (an extension beyond the paper; the classic
    /// low-latency software barrier).
    Dissemination,
    /// Two-level barrier for large sets: per-cluster binomial gather,
    /// dissemination across cluster leaders, binomial release. Selected
    /// automatically over the flat defaults when the set exceeds 64 PEs.
    Hierarchical,
}

/// Broadcast algorithm selection (Figures 9–10 and Section IV-E).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum BroadcastAlgo {
    /// All non-root PEs get from the root (the design that scales).
    #[default]
    Pull,
    /// Root puts to every PE sequentially.
    Push,
    /// Binomial tree (listed as future work in the paper).
    Binomial,
    /// Two-level tree for large sets: root to cluster leaders, then
    /// leaders down their clusters. Selected automatically over `Pull`
    /// when the set exceeds 64 PEs.
    Hierarchical,
}

/// Reduction algorithm selection (Figure 12 and Section IV-E).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum ReduceAlgo {
    /// Root serially gets and combines every PE's data (the paper's
    /// baseline design).
    #[default]
    Naive,
    /// Recursive doubling (listed as future work in the paper).
    RecursiveDoubling,
    /// Two-level reduction for large sets: per-cluster binomial fold
    /// into the leader, recursive doubling across leaders, binomial
    /// push-down. Selected automatically over `Naive` when the set
    /// exceeds 64 PEs.
    Hierarchical,
}

/// Algorithm configuration for one launch.
#[derive(Clone, Copy, Debug, Default)]
pub struct Algorithms {
    pub barrier: BarrierAlgo,
    pub broadcast: BroadcastAlgo,
    pub reduce: ReduceAlgo,
}

/// Memory-homing hint for [`ShmemCtx::shmalloc_homed`] (the Section VI
/// "memory-homing strategies" extension).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum HomingHint {
    /// Hash lines across all tiles' L2s — the TSHMEM default.
    #[default]
    HashForHome,
    /// Home each PE's copy on its own tile.
    MyTile,
    /// Home every copy on one fixed tile (producer-consumer).
    Tile(usize),
}

/// Partition layout: the user-visible symmetric heap plus the internal
/// region TSHMEM reserves at the top of each partition for collective
/// flags and the temporary buffer used by static-static transfers.
#[derive(Clone, Copy, Debug)]
pub struct Layout {
    pub npes: usize,
    pub partition_bytes: usize,
    /// Bytes available to `shmalloc` (`[0, heap_bytes)`).
    pub heap_bytes: usize,
    /// Broadcast-ready flags, one 8-byte slot per possible root.
    pub bcast_flags: usize,
    /// Gather flags (fcollect/reduce arrivals), one slot per PE.
    pub gather_flags: usize,
    /// Point-to-point signal slots, one per PE.
    pub pt2pt_flags: usize,
    /// Temp buffer for redirected static-static transfers.
    pub temp_off: usize,
    pub temp_bytes: usize,
}

impl Layout {
    /// Compute the layout for a partition.
    ///
    /// # Panics
    /// Panics if the partition cannot hold the internal region.
    pub fn new(partition_bytes: usize, npes: usize, temp_bytes: usize) -> Self {
        let flags = npes * 8;
        let internal = 3 * flags + temp_bytes;
        assert!(
            partition_bytes > internal + 64,
            "partition of {partition_bytes} B cannot hold {internal} B of internal state"
        );
        let heap_bytes = (partition_bytes - internal) & !7;
        Self {
            npes,
            partition_bytes,
            heap_bytes,
            bcast_flags: heap_bytes,
            gather_flags: heap_bytes + flags,
            pt2pt_flags: heap_bytes + 2 * flags,
            temp_off: heap_bytes + 3 * flags,
            temp_bytes,
        }
    }
}

/// Operation counters (cheap observability for tests and examples).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Stats {
    pub puts: u64,
    pub gets: u64,
    pub put_bytes: u64,
    pub get_bytes: u64,
    /// Operations redirected through the interrupt service.
    pub redirected: u64,
    pub barriers: u64,
    pub collectives: u64,
    pub atomics: u64,
    /// Non-blocking puts issued (`shmem_put_nbi` family).
    pub nbi_puts: u64,
    /// Non-blocking gets issued (`shmem_get_nbi` family).
    pub nbi_gets: u64,
    /// Explicit `shmem_fence` calls. Tracked separately from `quiets`
    /// so tests can assert that fence does **not** complete pending
    /// non-blocking operations while quiet does.
    pub fences: u64,
    /// Explicit `shmem_quiet` calls (the internal completion drains run
    /// by barriers and collectives do not count here).
    pub quiets: u64,
    /// Would-be-redirected operations that instead took a co-resident
    /// locality bypass (coop engine, same-worker direct copies). The
    /// locality equivalence suite compares Stats with `redirected` and
    /// `locality_hits` excluded — locality legitimately converts the
    /// one into the other while every API-visible counter stays equal.
    pub locality_hits: u64,
}

/// Sequence-number namespaces for collective completion flags.
pub(crate) const SEQ_BCAST: u8 = 0;
pub(crate) const SEQ_GATHER: u8 = 1;
pub(crate) const SEQ_PT2PT: u8 = 2;
/// `collect`'s exclusive-scan (offset) exchange. Distinct from
/// [`SEQ_COLLECT_TOTAL`]: on a 2-member set both exchanges involve the
/// same unordered pair, and a shared counter would let a stale TOTAL
/// message satisfy the next collect's OFF matcher.
pub(crate) const SEQ_COLLECT_OFF: u8 = 3;
/// `collect`'s total-size broadcast exchange.
pub(crate) const SEQ_COLLECT_TOTAL: u8 = 4;

/// The per-PE SHMEM context.
pub struct ShmemCtx {
    pub(crate) fab: Box<dyn Fabric>,
    pub(crate) layout: Layout,
    pub(crate) algos: Algorithms,
    heap: RefCell<Heap>,
    static_bump: Cell<usize>,
    private_bytes: usize,
    /// Out-of-order protocol messages parked until their matcher asks.
    pub(crate) stash: RefCell<Vec<ProtoMsg>>,
    /// Monotonic sequence numbers per (namespace, unordered PE pair) for
    /// flag-based completion. Pairwise counters are essential: a counter
    /// shared across a whole set would desynchronize between a root and
    /// a PE that sits out some collectives (overlapping active sets).
    pub(crate) seqs: RefCell<HashMap<(u8, usize, usize), u64>>,
    reply_token: Cell<u64>,
    pub(crate) stats: RefCell<Stats>,
    /// Reused bounce buffer for transfers that need a local staging copy
    /// (local static-static copies, strided-get scatter). Grows to the
    /// high-water mark once instead of allocating per call.
    pub(crate) scratch: RefCell<Vec<u8>>,
    /// Outstanding non-blocking operations, completed by
    /// [`ShmemCtx::quiet`] (or the internal drain at barrier entry).
    /// Capacity is retained across drains, so a steady-state nbi train
    /// allocates only on its high-water mark.
    pub(crate) pending: RefCell<Vec<crate::rma::PendingOp>>,
    /// Source bytes captured at issue time for deferred dynamic-target
    /// nbi puts. Entries reference `[off, off+len)` ranges; cleared (but
    /// capacity kept) on every full drain.
    pub(crate) nbi_stage: RefCell<Vec<u8>>,
    /// Bump allocator over the shared temp region for in-flight
    /// redirected nbi chunks. Reset to 0 on every full drain; blocking
    /// temp users drain first, so the two never overlap.
    pub(crate) nbi_temp_used: Cell<usize>,
    finalized: Cell<bool>,
}

impl ShmemCtx {
    /// Build a context over a fabric. Called by the runtime launcher; the
    /// equivalent of what `start_pes()` finishes.
    /// Run `f` over the per-context scratch buffer sized to `len` bytes
    /// (contents unspecified on entry). `f` must not re-enter any context
    /// method that also stages through scratch.
    pub(crate) fn with_scratch<R>(&self, len: usize, f: impl FnOnce(&mut [u8]) -> R) -> R {
        let mut buf = self.scratch.borrow_mut();
        if buf.len() < len {
            buf.resize(len, 0);
        }
        f(&mut buf[..len])
    }

    pub fn new(fab: Box<dyn Fabric>, layout: Layout, algos: Algorithms, private_bytes: usize) -> Self {
        let heap = Heap::new(layout.heap_bytes);
        Self {
            fab,
            layout,
            algos,
            heap: RefCell::new(heap),
            static_bump: Cell::new(0),
            private_bytes,
            stash: RefCell::new(Vec::new()),
            seqs: RefCell::new(HashMap::new()),
            reply_token: Cell::new(0),
            stats: RefCell::new(Stats::default()),
            scratch: RefCell::new(Vec::new()),
            pending: RefCell::new(Vec::new()),
            nbi_stage: RefCell::new(Vec::new()),
            nbi_temp_used: Cell::new(0),
            finalized: Cell::new(false),
        }
    }

    // --- environment (`_my_pe`, `_num_pes`) ---------------------------

    /// This PE's id (`_my_pe()`).
    pub fn my_pe(&self) -> usize {
        self.fab.pe()
    }

    /// Number of PEs (`_num_pes()`).
    pub fn n_pes(&self) -> usize {
        self.fab.npes()
    }

    /// The active set of all PEs.
    pub fn world(&self) -> ActiveSet {
        ActiveSet::all(self.n_pes())
    }

    /// Snapshot of operation counters.
    pub fn stats(&self) -> Stats {
        *self.stats.borrow()
    }

    /// Engine-native time in nanoseconds (wall time on the native
    /// engine, virtual time on the timed engine) — the measurement clock
    /// used by benchmarks.
    pub fn time_ns(&self) -> f64 {
        self.fab.now_ns()
    }

    /// Charge application compute to the engine clock: a no-op natively,
    /// a clock advance on the timed engine. Used by the application case
    /// studies to model Figure 13/14 compute phases.
    pub fn compute(&self, cycles: f64) {
        self.fab.compute(cycles);
    }

    /// The modeled device this job runs on.
    pub fn device(&self) -> tile_arch::device::Device {
        self.fab.device()
    }

    /// Charge `flops` single-precision floating-point operations at the
    /// device's calibrated rate (TILEPro has no FP hardware, hence the
    /// order-of-magnitude Figure 13 gap).
    pub fn compute_flops(&self, flops: f64) {
        let d = self.fab.device();
        self.fab.compute(flops * d.timings.compute.cycles_per_flop);
    }

    /// Charge `intops` integer operations at the device's calibrated
    /// rate.
    pub fn compute_intops(&self, intops: f64) {
        let d = self.fab.device();
        self.fab.compute(intops * d.timings.compute.cycles_per_intop);
    }

    // --- symmetric memory management -----------------------------------

    /// Collective allocation from the symmetric heap (`shmalloc`).
    /// Every PE must call with the same `len` at the same point in the
    /// execution path; the result is symmetric by construction. Performs
    /// the spec's implicit `barrier_all` before returning.
    ///
    /// # Panics
    /// Panics if the symmetric heap is exhausted (`try_shmalloc` is the
    /// fallible variant).
    pub fn shmalloc<T: Bits>(&self, len: usize) -> Sym<T> {
        self.try_shmalloc(len).unwrap_or_else(|e| panic!("shmalloc: {e}"))
    }

    /// Fallible `shmalloc`.
    pub fn try_shmalloc<T: Bits>(&self, len: usize) -> Result<Sym<T>, HeapError> {
        let bytes = len * std::mem::size_of::<T>();
        let off = self.heap.borrow_mut().alloc(bytes)?;
        self.barrier_all();
        Ok(Sym::new(AddrClass::Dynamic, off, len))
    }

    /// Collective allocation with a **memory-homing hint** — the
    /// Section VI "memory-homing strategies" extension. The hint applies
    /// to each PE's own copy of the object:
    ///
    /// * [`HomingHint::HashForHome`] — the TSHMEM default (lines hashed
    ///   across all tiles' L2s);
    /// * [`HomingHint::MyTile`] — each copy homed on its owner (fast
    ///   local re-use, no DDC distribution);
    /// * [`HomingHint::Tile`] — every copy homed on one fixed tile
    ///   (the producer-consumer pattern of paper Section III-A).
    ///
    /// Functionally identical to [`shmalloc`](Self::shmalloc); the timed
    /// engines cost accesses under the chosen policy.
    pub fn shmalloc_homed<T: Bits>(&self, len: usize, hint: HomingHint) -> Sym<T> {
        let sym = self.shmalloc::<T>(len);
        let me = self.my_pe();
        let homing = match hint {
            HomingHint::HashForHome => cachesim::homing::Homing::HashForHome,
            HomingHint::MyTile => cachesim::homing::Homing::Local(me),
            HomingHint::Tile(t) => {
                self.check_pe(t);
                cachesim::homing::Homing::Remote(t)
            }
        };
        self.fab
            .set_region_homing(self.go(me, sym.offset()), sym.byte_len(), homing);
        sym
    }

    /// Aligned collective allocation (`shmemalign`).
    pub fn shmemalign<T: Bits>(&self, align: usize, len: usize) -> Sym<T> {
        let bytes = len * std::mem::size_of::<T>();
        let off = self
            .heap
            .borrow_mut()
            .alloc_aligned(bytes, align)
            .unwrap_or_else(|e| panic!("shmemalign: {e}"));
        self.barrier_all();
        Sym::new(AddrClass::Dynamic, off, len)
    }

    /// Collective free (`shfree`). Performs the spec's implicit
    /// `barrier_all` *before* releasing, so no PE frees memory another PE
    /// is still addressing.
    ///
    /// # Panics
    /// Panics on a handle not produced by `shmalloc`/`shmemalign`, or on
    /// double free.
    pub fn shfree<T: Bits>(&self, sym: Sym<T>) {
        assert_eq!(sym.class(), AddrClass::Dynamic, "shfree of a static object");
        self.barrier_all();
        self.fab
            .clear_region_homing(self.go(self.my_pe(), sym.offset()));
        self.heap
            .borrow_mut()
            .free(sym.offset())
            .unwrap_or_else(|e| panic!("shfree: {e}"));
    }

    /// Collective resize (`shrealloc`): contents up to
    /// `min(old, new)` are preserved.
    pub fn shrealloc<T: Bits>(&self, sym: Sym<T>, new_len: usize) -> Sym<T> {
        assert_eq!(sym.class(), AddrClass::Dynamic, "shrealloc of a static object");
        let new_bytes = new_len * std::mem::size_of::<T>();
        let keep = sym.byte_len().min(new_bytes);
        self.barrier_all();
        let old_off = sym.offset();
        let new_off = self
            .heap
            .borrow_mut()
            .realloc(old_off, new_bytes)
            .unwrap_or_else(|e| panic!("shrealloc: {e}"));
        if new_off != old_off && keep > 0 {
            let me = self.my_pe();
            self.fab
                .arena_copy(self.go(me, new_off), self.go(me, old_off), keep);
        }
        self.barrier_all();
        Sym::new(AddrClass::Dynamic, new_off, new_len)
    }

    /// Allocate a **static** symmetric object — the analog of a
    /// link-time global. Must be called by every PE in the same order
    /// (the analog of "running the same executable"); offsets are then
    /// identical everywhere. No implicit barrier: real statics exist
    /// before `start_pes()`.
    ///
    /// # Panics
    /// Panics if the private segment is exhausted.
    pub fn static_sym<T: Bits>(&self, len: usize) -> Sym<T> {
        let bytes = (len * std::mem::size_of::<T>() + 7) & !7;
        let off = self.static_bump.get();
        assert!(
            off + bytes <= self.private_bytes,
            "private segment exhausted: {off} + {bytes} > {}",
            self.private_bytes
        );
        self.static_bump.set(off + bytes);
        Sym::new(AddrClass::Static, off, len)
    }

    // --- local access ---------------------------------------------------

    /// Write `src` into this PE's copy of `sym` starting at element
    /// `index`.
    pub fn local_write<T: Bits>(&self, sym: &Sym<T>, index: usize, src: &[T]) {
        let bytes = byte_view(src);
        let off = sym.elem_offset(index);
        assert!(index + src.len() <= sym.len(), "local_write out of bounds");
        match sym.class() {
            AddrClass::Dynamic => self.fab.arena_write(self.go(self.my_pe(), off), bytes),
            AddrClass::Static => self.fab.private_write(off, bytes),
        }
    }

    /// Read this PE's copy of `sym` into a new `Vec`.
    pub fn local_read<T: Bits>(&self, sym: &Sym<T>, index: usize, len: usize) -> Vec<T> {
        assert!(index + len <= sym.len(), "local_read out of bounds");
        let mut out = vec![unsafe { std::mem::zeroed() }; len];
        let off = sym.elem_offset(index);
        let bytes = byte_view_mut(&mut out);
        match sym.class() {
            AddrClass::Dynamic => self.fab.arena_read(self.go(self.my_pe(), off), bytes),
            AddrClass::Static => self.fab.private_read(off, bytes),
        }
        out
    }

    /// Fill this PE's copy of `sym` with `value`.
    pub fn local_fill<T: Bits>(&self, sym: &Sym<T>, value: T) {
        let v = vec![value; sym.len()];
        self.local_write(sym, 0, &v);
    }

    /// Run `f` over this PE's copy of `sym` as a mutable slice (zero
    /// copies — for compute kernels over symmetric data).
    ///
    /// # Panics
    /// Panics if `T`'s alignment exceeds the heap's 8-byte allocation
    /// alignment guarantee.
    pub fn with_local_mut<T: Bits, R>(&self, sym: &Sym<T>, f: impl FnOnce(&mut [T]) -> R) -> R {
        assert!(std::mem::align_of::<T>() <= 8, "over-aligned element type");
        let ptr = match sym.class() {
            AddrClass::Dynamic => self
                .fab
                .arena_raw(self.go(self.my_pe(), sym.offset()), sym.byte_len()),
            AddrClass::Static => self.fab.private_raw(sym.offset(), sym.byte_len()),
        };
        assert_eq!(ptr as usize % std::mem::align_of::<T>(), 0, "unaligned symmetric data");
        // SAFETY: bounds checked by the raw accessor; alignment asserted;
        // cross-PE ordering is the application's job (SHMEM semantics).
        let slice = unsafe { std::slice::from_raw_parts_mut(ptr.cast::<T>(), sym.len()) };
        f(slice)
    }

    /// Run `f` over this PE's copy of `sym` as a shared slice.
    pub fn with_local<T: Bits, R>(&self, sym: &Sym<T>, f: impl FnOnce(&[T]) -> R) -> R {
        self.with_local_mut(sym, |s| f(&*s))
    }

    // --- finalization (`shmem_finalize`, the paper's proposal) ----------

    /// Orderly teardown: synchronize all PEs and disengage this PE's
    /// interrupt-service context. Idempotent. The launcher calls this
    /// automatically when the application closure returns; applications
    /// may call it earlier, after their last SHMEM operation.
    pub fn finalize(&self) {
        if self.finalized.replace(true) {
            return;
        }
        // Always the ring barrier here: it remains abortable if a peer
        // died, unlike a hardware spin barrier.
        self.barrier_ring_explicit(self.world());
        self.fab.udn_send(
            self.my_pe(),
            crate::fabric::Q_SERVICE,
            crate::service::TAG_SHUTDOWN,
            &[],
        );
    }

    pub fn is_finalized(&self) -> bool {
        self.finalized.get()
    }

    // --- internals -------------------------------------------------------

    /// Global arena offset of `(pe, partition-relative offset)`.
    #[inline]
    pub(crate) fn go(&self, pe: usize, local: usize) -> usize {
        debug_assert!(pe < self.layout.npes, "PE {pe} out of range");
        debug_assert!(local <= self.layout.partition_bytes);
        pe * self.layout.partition_bytes + local
    }

    /// Mirror the stash's (tag, src) shape into this PE's probe so a
    /// stall watchdog can dump which parked messages a wedged PE holds.
    pub(crate) fn mirror_stash(&self) {
        if let Some(p) = self.fab.probe() {
            let stash = self.stash.borrow();
            let shape = stash
                .iter()
                .take(crate::fabric::STASH_SNAPSHOT_CAP)
                .map(|m| (m.tag, m.src))
                .collect();
            p.set_stash(shape, stash.len());
        }
    }

    /// Next reply token for redirected transfers.
    pub(crate) fn next_token(&self) -> u64 {
        let t = self.reply_token.get() + 1;
        self.reply_token.set(t);
        t
    }

    /// Next sequence number for signals between PEs `a` and `b` in a
    /// flag namespace. Both endpoints must observe the same event
    /// sequence for their pair (guaranteed by SHMEM's collective-call
    /// ordering rules), so incrementing locally on each side stays
    /// consistent.
    pub(crate) fn next_seq(&self, ns: u8, a: usize, b: usize) -> u64 {
        let mut m = self.seqs.borrow_mut();
        let e = m.entry((ns, a.min(b), a.max(b))).or_insert(0);
        *e += 1;
        *e
    }

    /// Validate a remote PE id.
    pub(crate) fn check_pe(&self, pe: usize) {
        assert!(pe < self.n_pes(), "PE {pe} out of range (npes {})", self.n_pes());
    }
}

/// View a slice as bytes.
pub(crate) fn byte_view<T: Bits>(s: &[T]) -> &[u8] {
    // SAFETY: T: Bits is plain data; lifetimes tied to s.
    unsafe { std::slice::from_raw_parts(s.as_ptr().cast::<u8>(), std::mem::size_of_val(s)) }
}

/// View a mutable slice as bytes.
pub(crate) fn byte_view_mut<T: Bits>(s: &mut [T]) -> &mut [u8] {
    // SAFETY: as above; T: Bits accepts any bit pattern.
    unsafe { std::slice::from_raw_parts_mut(s.as_mut_ptr().cast::<u8>(), std::mem::size_of_val(s)) }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn layout_partitions_cleanly() {
        let l = Layout::new(1 << 20, 8, 4096);
        assert_eq!(l.heap_bytes % 8, 0);
        assert!(l.heap_bytes < l.partition_bytes);
        assert_eq!(l.gather_flags - l.bcast_flags, 64);
        assert_eq!(l.pt2pt_flags - l.gather_flags, 64);
        assert_eq!(l.temp_off - l.pt2pt_flags, 64);
        assert_eq!(l.temp_off + l.temp_bytes, l.heap_bytes + 3 * 64 + 4096);
        assert!(l.temp_off + l.temp_bytes <= l.partition_bytes);
    }

    #[test]
    #[should_panic(expected = "cannot hold")]
    fn tiny_partition_rejected() {
        Layout::new(1024, 64, 4096);
    }

    #[test]
    fn byte_views() {
        let v = [1u32, 2];
        assert_eq!(byte_view(&v).len(), 8);
        let mut w = [0u8; 3];
        byte_view_mut(&mut w)[1] = 7;
        assert_eq!(w, [0, 7, 0]);
    }
}
