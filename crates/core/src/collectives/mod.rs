//! Group communication: broadcast, collection, and reduction
//! (paper Section IV-D).

pub mod alltoall;
pub mod broadcast;
pub mod collect;
pub mod hier;
pub mod reduce;
