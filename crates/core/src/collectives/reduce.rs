//! Reduction: all-to-all associative combining (paper Section IV-D3,
//! Figure 12).
//!
//! The paper's baseline is deliberately naive: the root serially gets
//! each PE's array, folds it into the accumulator, and then pull-
//! broadcasts the outcome — aggregate bandwidth stays flat (~150 MB/s on
//! the TILE-Gx36) no matter how many tiles join, because everything
//! serializes on one tile. Recursive doubling (the paper's future work)
//! is the extension algorithm.

use crate::active_set::ActiveSet;
use crate::ctx::{ReduceAlgo, ShmemCtx, SEQ_BCAST, SEQ_PT2PT};
use crate::symm::{AddrClass, Sym};
use crate::types::{Reducible, ReduceOp};

/// Modeled cost of the naive per-element reduce step (load both
/// operands, combine through a per-element call, store) — calibrated so
/// the timed engine's Figure 12 lands at the paper's ~150 MB/s aggregate
/// for 32-bit integer sums.
pub const REDUCE_CYCLES_PER_ELEMENT: f64 = 23.0;

impl ShmemCtx {
    /// `shmem_*_to_all`: reduce `nreduce` elements of `source` across
    /// the active set with `op`, leaving the result in `dest` on every
    /// member.
    pub fn reduce<T: Reducible>(
        &self,
        op: ReduceOp,
        dest: &Sym<T>,
        source: &Sym<T>,
        nreduce: usize,
        set: ActiveSet,
    ) {
        assert!(set.max_pe() < self.n_pes(), "active set exceeds job");
        assert!(nreduce <= source.len() && nreduce <= dest.len(), "reduce buffers too small");
        assert_eq!(dest.class(), AddrClass::Dynamic, "reduce dest must be dynamic");
        assert_eq!(source.class(), AddrClass::Dynamic, "reduce source must be dynamic");
        let rank = set
            .rank_of(self.my_pe())
            .unwrap_or_else(|| panic!("PE {} not in active set", self.my_pe()));
        self.stats.borrow_mut().collectives += 1;
        match self.algos.reduce {
            // Past 64 PEs the serialized baseline collapses; upgrade the
            // default to the two-level tree. Explicit algorithm choices
            // (`RecursiveDoubling`) are honored as configured.
            ReduceAlgo::Naive if set.size > crate::collectives::hier::FLAT_MAX => {
                self.reduce_hier(op, dest, source, nreduce, set, rank)
            }
            ReduceAlgo::Naive => self.reduce_naive(op, dest, source, nreduce, set, rank),
            ReduceAlgo::RecursiveDoubling => {
                self.reduce_recursive_doubling(op, dest, source, nreduce, set, rank)
            }
            ReduceAlgo::Hierarchical => self.reduce_hier(op, dest, source, nreduce, set, rank),
        }
    }

    /// The paper's serialized design (explicit, for Figure 12).
    pub fn reduce_naive<T: Reducible>(
        &self,
        op: ReduceOp,
        dest: &Sym<T>,
        source: &Sym<T>,
        nreduce: usize,
        set: ActiveSet,
        rank: usize,
    ) {
        self.barrier(set);
        let root_pe = set.pe_at(0);
        if rank == 0 {
            // Fold every remote contribution into a local accumulator.
            let mut acc = self.local_read(source, 0, nreduce);
            let mut buf = vec![unsafe { std::mem::zeroed::<T>() }; nreduce];
            for r in 1..set.size {
                self.get(&mut buf, source, 0, set.pe_at(r));
                for (a, b) in acc.iter_mut().zip(&buf) {
                    *a = T::reduce(op, *a, *b);
                }
                self.compute(nreduce as f64 * REDUCE_CYCLES_PER_ELEMENT);
            }
            self.local_write(dest, 0, &acc);
            self.quiet();
            for r in 1..set.size {
                let dest_pe = set.pe_at(r);
                let bseq = self.next_seq(SEQ_BCAST, root_pe, dest_pe);
                self.flag_set(dest_pe, self.layout.bcast_flags, root_pe, bseq);
            }
        } else {
            let bseq = self.next_seq(SEQ_BCAST, root_pe, self.my_pe());
            self.flag_wait_ge(self.layout.bcast_flags, root_pe, bseq);
            self.get_sym(dest, 0, dest, 0, nreduce, root_pe);
        }
        self.barrier(set);
    }

    /// Recursive-doubling reduction (extension; Section IV-E future
    /// work). Handles non-power-of-two sets by folding the excess ranks
    /// into the power-of-two core first.
    pub fn reduce_recursive_doubling<T: Reducible>(
        &self,
        op: ReduceOp,
        dest: &Sym<T>,
        source: &Sym<T>,
        nreduce: usize,
        set: ActiveSet,
        rank: usize,
    ) {
        self.barrier(set);
        let n = set.size;
        let p2 = crate::collectives::hier::largest_pow2_le(n);
        // Start with our own contribution in dest.
        let me = self.my_pe();
        self.put_sym(dest, 0, source, 0, nreduce, me);

        if rank >= p2 {
            // Excess rank: fold our data into the partner, then wait for
            // the final result.
            let partner = set.pe_at(rank - p2);
            self.fold_into(dest, nreduce, partner);
            let seq = self.next_seq(SEQ_PT2PT, partner, self.my_pe());
            self.flag_wait_ge(self.layout.pt2pt_flags, partner, 2 * seq);
        } else {
            if rank + p2 < n {
                // Absorb the excess partner's data first.
                let partner = set.pe_at(rank + p2);
                self.fold_from(op, dest, nreduce, partner);
            }
            // Pairwise exchange over log2(p2) rounds.
            let mut k = 1usize;
            while k < p2 {
                let partner = set.pe_at(rank ^ k);
                self.exchange_combine(op, dest, nreduce, partner);
                k <<= 1;
            }
            if rank + p2 < n {
                // Return the final result to the excess partner.
                let partner = set.pe_at(rank + p2);
                self.put_sym(dest, 0, dest, 0, nreduce, partner);
                self.quiet();
                let seq = self.next_seq(SEQ_PT2PT, partner, self.my_pe());
                self.flag_set(partner, self.layout.pt2pt_flags, me, 2 * seq);
            }
        }
        self.barrier(set);
    }

    /// Per-sender slot inside a partition's temp region. Recursive
    /// doubling overlaps exchanges with *different* partners across
    /// rounds, so each sender writes a disjoint slot of the receiver's
    /// temp — otherwise a fast PE's round-N chunk could clobber its
    /// partner's unconsumed round-(N-1) data from another sender.
    pub(crate) fn temp_slot_sym<T: Reducible>(&self, sender_pe: usize) -> Sym<T> {
        let slot_bytes = (self.layout.temp_bytes / self.layout.npes) & !7;
        let cap = slot_bytes / std::mem::size_of::<T>();
        assert!(
            cap > 0,
            "temp buffer too small for per-sender slots ({} B / {} PEs)",
            self.layout.temp_bytes,
            self.layout.npes
        );
        Sym::new(
            AddrClass::Dynamic,
            self.layout.temp_off + sender_pe * slot_bytes,
            cap,
        )
    }

    /// One-directional fold: push our accumulator to `partner`, chunk by
    /// chunk, with a data/ack handshake per chunk so the temp buffer is
    /// never overwritten before the partner consumed it. Flag values:
    /// `2*seq` = data ready, `2*seq + 1` = consumed.
    pub(crate) fn fold_into<T: Reducible>(&self, dest: &Sym<T>, nreduce: usize, partner: usize) {
        let me = self.my_pe();
        let temp = self.temp_slot_sym::<T>(me);
        let cap = temp.len();
        let mut done = 0;
        while done < nreduce {
            let n = (nreduce - done).min(cap);
            let seq = self.next_seq(SEQ_PT2PT, partner, self.my_pe());
            self.put_sym(&temp, 0, &dest.slice(done, n), 0, n, partner);
            self.quiet();
            self.flag_set(partner, self.layout.pt2pt_flags, me, 2 * seq);
            self.flag_wait_ge(self.layout.pt2pt_flags, partner, 2 * seq + 1);
            done += n;
        }
    }

    /// Receiving side of [`fold_into`].
    pub(crate) fn fold_from<T: Reducible>(
        &self,
        op: ReduceOp,
        dest: &Sym<T>,
        nreduce: usize,
        partner: usize,
    ) {
        let me = self.my_pe();
        let temp = self.temp_slot_sym::<T>(partner);
        let cap = temp.len();
        let mut done = 0;
        while done < nreduce {
            let n = (nreduce - done).min(cap);
            let seq = self.next_seq(SEQ_PT2PT, partner, self.my_pe());
            self.flag_wait_ge(self.layout.pt2pt_flags, partner, 2 * seq);
            self.combine_from_temp(op, dest, done, n, &temp);
            self.flag_set(partner, self.layout.pt2pt_flags, me, 2 * seq + 1);
            done += n;
        }
    }

    /// Full-duplex exchange: both partners push the current accumulator
    /// chunk into each other's temp, combine, and ack. Both sides bump
    /// the pairwise sequence once per chunk, so values agree.
    pub(crate) fn exchange_combine<T: Reducible>(
        &self,
        op: ReduceOp,
        dest: &Sym<T>,
        nreduce: usize,
        partner: usize,
    ) {
        let me = self.my_pe();
        let my_slot = self.temp_slot_sym::<T>(me); // in the partner's temp
        let partner_slot = self.temp_slot_sym::<T>(partner); // in my temp
        let cap = my_slot.len();
        let mut done = 0;
        while done < nreduce {
            let n = (nreduce - done).min(cap);
            let seq = self.next_seq(SEQ_PT2PT, partner, self.my_pe());
            self.put_sym(&my_slot, 0, &dest.slice(done, n), 0, n, partner);
            self.quiet();
            self.flag_set(partner, self.layout.pt2pt_flags, me, 2 * seq);
            self.flag_wait_ge(self.layout.pt2pt_flags, partner, 2 * seq);
            self.combine_from_temp(op, dest, done, n, &partner_slot);
            self.flag_set(partner, self.layout.pt2pt_flags, me, 2 * seq + 1);
            self.flag_wait_ge(self.layout.pt2pt_flags, partner, 2 * seq + 1);
            done += n;
        }
    }

    fn combine_from_temp<T: Reducible>(
        &self,
        op: ReduceOp,
        dest: &Sym<T>,
        done: usize,
        n: usize,
        temp: &Sym<T>,
    ) {
        let chunk = self.local_read(temp, 0, n);
        let mut acc = self.local_read(dest, done, n);
        for (a, b) in acc.iter_mut().zip(&chunk) {
            *a = T::reduce(op, *a, *b);
        }
        self.compute(n as f64 * REDUCE_CYCLES_PER_ELEMENT * 0.5);
        self.local_write(dest, done, &acc);
    }

    // --- convenience wrappers (the OpenSHMEM `*_to_all` names) ---------

    /// `shmem_*_sum_to_all`.
    pub fn sum_to_all<T: Reducible>(&self, dest: &Sym<T>, source: &Sym<T>, n: usize, set: ActiveSet) {
        self.reduce(ReduceOp::Sum, dest, source, n, set);
    }

    /// `shmem_*_prod_to_all`.
    pub fn prod_to_all<T: Reducible>(&self, dest: &Sym<T>, source: &Sym<T>, n: usize, set: ActiveSet) {
        self.reduce(ReduceOp::Prod, dest, source, n, set);
    }

    /// `shmem_*_min_to_all`.
    pub fn min_to_all<T: Reducible>(&self, dest: &Sym<T>, source: &Sym<T>, n: usize, set: ActiveSet) {
        self.reduce(ReduceOp::Min, dest, source, n, set);
    }

    /// `shmem_*_max_to_all`.
    pub fn max_to_all<T: Reducible>(&self, dest: &Sym<T>, source: &Sym<T>, n: usize, set: ActiveSet) {
        self.reduce(ReduceOp::Max, dest, source, n, set);
    }

    /// `shmem_*_and_to_all`.
    pub fn and_to_all<T: Reducible>(&self, dest: &Sym<T>, source: &Sym<T>, n: usize, set: ActiveSet) {
        self.reduce(ReduceOp::And, dest, source, n, set);
    }

    /// `shmem_*_or_to_all`.
    pub fn or_to_all<T: Reducible>(&self, dest: &Sym<T>, source: &Sym<T>, n: usize, set: ActiveSet) {
        self.reduce(ReduceOp::Or, dest, source, n, set);
    }

    /// `shmem_*_xor_to_all`.
    pub fn xor_to_all<T: Reducible>(&self, dest: &Sym<T>, source: &Sym<T>, n: usize, set: ActiveSet) {
        self.reduce(ReduceOp::Xor, dest, source, n, set);
    }
}
