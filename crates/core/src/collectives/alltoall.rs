//! All-to-all exchange (`shmem_alltoall` / `shmem_alltoalls`,
//! OpenSHMEM 1.3).
//!
//! Every member sends a distinct `nelems`-element block to every other
//! member: after the exchange, `dest[i*nelems ..]` on the member with
//! set-rank `j` holds the block `source[j*nelems ..]` contributed by
//! the member with set-rank `i`. Unlike collect, no root concentrates
//! the traffic — each PE pushes its own row directly, staggered from
//! `rank + 1` so the `n·(n-1)` transfers spread across destinations
//! instead of all hammering member 0 first (the same rotation the
//! paper's DDC layout rewards for pull-broadcast).
//!
//! `alltoalls` is the strided variant: element strides `dst`/`sst`
//! (in elements, per the spec) between consecutive elements of each
//! block.

use crate::active_set::ActiveSet;
use crate::ctx::ShmemCtx;
use crate::symm::{Bits, Sym};

impl ShmemCtx {
    /// `shmem_alltoall`: exchange `nelems`-element blocks between all
    /// members of `set`. `source` and `dest` must each hold
    /// `set.size * nelems` elements; `dest` must not overlap `source`.
    pub fn alltoall<T: Bits>(&self, dest: &Sym<T>, source: &Sym<T>, nelems: usize, set: ActiveSet) {
        assert!(set.max_pe() < self.n_pes(), "active set exceeds job");
        assert!(set.size * nelems <= source.len(), "alltoall source too small");
        assert!(set.size * nelems <= dest.len(), "alltoall dest too small");
        let rank = set
            .rank_of(self.my_pe())
            .unwrap_or_else(|| panic!("PE {} not in active set", self.my_pe()));
        self.stats.borrow_mut().collectives += 1;
        self.barrier(set); // peers' source buffers are ready after this
        if nelems > 0 {
            for i in 0..set.size {
                let peer_rank = (rank + i) % set.size;
                self.put_sym(
                    dest,
                    rank * nelems,
                    source,
                    peer_rank * nelems,
                    nelems,
                    set.pe_at(peer_rank),
                );
            }
            self.quiet();
        }
        self.barrier(set); // everyone's dest rows have landed
    }

    /// `shmem_alltoalls`: strided all-to-all. Element `k` of the block
    /// for peer `j` is read from `source[j*sst*nelems + k*sst]` and
    /// lands at `dest[i*dst*nelems + k*dst]` on that peer (where `i` is
    /// the sender's set-rank), matching the OpenSHMEM layout.
    #[allow(clippy::too_many_arguments)] // mirrors the OpenSHMEM C signature
    pub fn alltoalls<T: Bits>(
        &self,
        dest: &Sym<T>,
        source: &Sym<T>,
        dst: usize,
        sst: usize,
        nelems: usize,
        set: ActiveSet,
    ) {
        assert!(dst >= 1 && sst >= 1, "alltoalls strides must be >= 1");
        if nelems > 0 {
            let s_span = (set.size - 1) * sst * nelems + (nelems - 1) * sst + 1;
            let d_span = (set.size - 1) * dst * nelems + (nelems - 1) * dst + 1;
            assert!(s_span <= source.len(), "alltoalls source too small");
            assert!(d_span <= dest.len(), "alltoalls dest too small");
        }
        let rank = set
            .rank_of(self.my_pe())
            .unwrap_or_else(|| panic!("PE {} not in active set", self.my_pe()));
        self.stats.borrow_mut().collectives += 1;
        self.barrier(set);
        if nelems > 0 {
            for i in 0..set.size {
                let peer_rank = (rank + i) % set.size;
                // Gather my strided block for this peer into contiguous
                // staging (local reads), then one strided put delivers it.
                let block: Vec<T> = (0..nelems)
                    .map(|k| self.g(source, peer_rank * sst * nelems + k * sst, self.my_pe()))
                    .collect();
                self.iput(
                    dest,
                    rank * dst * nelems,
                    dst,
                    &block,
                    1,
                    nelems,
                    set.pe_at(peer_rank),
                );
            }
            self.quiet();
        }
        self.barrier(set);
    }
}
