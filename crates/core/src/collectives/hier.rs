//! Hierarchical collectives for large active sets (the >64-PE scaling
//! extension; the paper's TILE-Gx hardware stops at 36 tiles, but the
//! M:N coop engine runs 256–1024 PEs, where every flat algorithm's
//! serial root or O(n·log n) message volume collapses).
//!
//! Shape shared by barrier, reduce, and broadcast: ranks are grouped
//! into clusters of [`CLUSTER`] consecutive ranks; rank `c·CLUSTER` is
//! cluster `c`'s leader. An intra-cluster binomial tree funnels into the
//! leader, the leaders run a flat log-depth exchange (dissemination for
//! the barrier, recursive doubling for reduce, binomial for broadcast),
//! and a binomial tree fans back down. Message volume drops from
//! `n·⌈log₂ n⌉` to roughly `2n + nc·⌈log₂ nc⌉` with `nc = ⌈n/CLUSTER⌉`.
//!
//! Every point-to-point completion flag here lives on the pairwise
//! `SEQ_PT2PT` counters, which are **shared** with recursive-doubling
//! reduce's data/ack handshake. That handshake writes flag values
//! `2*seq` and `2*seq + 1`, so every wait/set in this module uses the
//! doubled convention too — a plain `seq` would be stale-satisfied by
//! any earlier exchange on the same unordered pair (`flag_wait_ge` is
//! `>=`).
//!
//! The cluster/tree arithmetic is kept in pure functions so the
//! non-power-of-two cases (96 ranks → 3 clusters, 768 → 24) are testable
//! without spawning a single thread.

use crate::active_set::ActiveSet;
use crate::ctx::{ShmemCtx, SEQ_PT2PT};
use crate::symm::{Bits, Sym};
use crate::types::{Reducible, ReduceOp};

/// Largest set size served by the flat default algorithms; above this
/// the dispatchers upgrade `Ring`/`Dissemination` barriers, `Pull`
/// broadcasts, and `Naive` reductions to their hierarchical variants.
pub(crate) const FLAT_MAX: usize = 64;

/// Default cluster width. 32 keeps the intra-cluster trees at depth ≤5
/// while 1024 PEs still make only 32 leaders for the flat exchange.
pub(crate) const CLUSTER: usize = 32;

/// Largest power of two `<= n`.
///
/// # Panics
/// Panics if `n == 0`.
pub(crate) fn largest_pow2_le(n: usize) -> usize {
    assert!(n > 0, "no power of two <= 0");
    1 << (usize::BITS - 1 - n.leading_zeros())
}

/// Number of clusters covering `n` ranks at width `cs`.
pub(crate) fn n_clusters(n: usize, cs: usize) -> usize {
    n.div_ceil(cs)
}

/// Size of cluster `c` (the last cluster may be short).
pub(crate) fn cluster_size(c: usize, cs: usize, n: usize) -> usize {
    cs.min(n - c * cs)
}

/// Parent of node `lr` in the binomial *broadcast* tree rooted at 0:
/// strip the highest set bit. Node `lr` receives in round
/// `floor(log2 lr)` and forwards in every later round.
///
/// # Panics
/// Panics if `lr == 0` (the root has no parent).
pub(crate) fn bcast_parent(lr: usize) -> usize {
    lr - largest_pow2_le(lr)
}

/// Parent of node `lr` in the binomial *gather* (reduction) tree rooted
/// at 0: clear the lowest set bit. Node `lr` absorbs children
/// `lr + 2^k` for `k < trailing_zeros(lr)` in ascending rounds, then
/// sends upward once.
///
/// # Panics
/// Panics if `lr == 0` (the root has no parent).
pub(crate) fn gather_parent(lr: usize) -> usize {
    assert!(lr > 0, "the gather root has no parent");
    lr & (lr - 1)
}

/// Rounds of the dissemination barrier over `n` members: `⌈log₂ n⌉`.
pub(crate) fn diss_rounds(n: usize) -> u32 {
    assert!(n > 0);
    usize::BITS - (n - 1).leading_zeros()
}

impl ShmemCtx {
    /// The cluster width a hierarchical collective over `set` should
    /// use: the backend's PE→worker block when the engine publishes a
    /// topology hint and the set's geometry lines up with it (stride 1,
    /// start on a block boundary) — cluster boundaries then coincide
    /// with the coop engine's worker shards, so every intra-cluster
    /// tree edge is a same-worker handoff and every leader sits on its
    /// own worker. Falls back to the span-≤[`CLUSTER`] default
    /// otherwise (native/timed/multichip engines, strided sets,
    /// locality knob off).
    pub(crate) fn cluster_width(&self, set: &ActiveSet) -> usize {
        match self.fab.topology_block() {
            Some(b) if set.log2_stride == 0 && set.start.is_multiple_of(b) => b,
            _ => CLUSTER,
        }
    }

    /// Whether clusters of width `cs` over `set` coincide exactly with
    /// the engine's worker shards — i.e. `cs` *is* the published
    /// topology block and the set's geometry lines up with it, so every
    /// member of a cluster (including a short trailing one) shares its
    /// leader's worker. This is the precondition for the counter-cell
    /// barrier transport; an explicit `cs` that merely equals 32 on a
    /// non-topology engine stays on the message path.
    pub(crate) fn shard_aligned(&self, set: &ActiveSet, cs: usize) -> bool {
        self.fab.topology_block() == Some(cs)
            && set.log2_stride == 0
            && set.start.is_multiple_of(cs)
    }

    /// Hierarchical reduction with the topology-aligned cluster width
    /// (explicit, like [`ShmemCtx::reduce_naive`] and friends; also
    /// what the dispatcher selects for >64-member sets).
    pub fn reduce_hier<T: Reducible>(
        &self,
        op: ReduceOp,
        dest: &Sym<T>,
        source: &Sym<T>,
        nreduce: usize,
        set: ActiveSet,
        rank: usize,
    ) {
        let cs = self.cluster_width(&set);
        self.reduce_hier_with(op, dest, source, nreduce, set, rank, cs);
    }

    /// [`ShmemCtx::reduce_hier`] with an explicit cluster width, so the
    /// equivalence suite can exercise odd cluster geometries on small
    /// sets.
    #[doc(hidden)]
    #[allow(clippy::too_many_arguments)]
    pub fn reduce_hier_with<T: Reducible>(
        &self,
        op: ReduceOp,
        dest: &Sym<T>,
        source: &Sym<T>,
        nreduce: usize,
        set: ActiveSet,
        rank: usize,
        cs: usize,
    ) {
        assert!(cs > 0, "cluster width must be positive");
        self.barrier(set);
        let n = set.size;
        let me = self.my_pe();
        // Seed the accumulator with our own contribution.
        self.put_sym(dest, 0, source, 0, nreduce, me);
        let c = rank / cs;
        let lr = rank % cs;
        let m = cluster_size(c, cs, n);
        let nc = n_clusters(n, cs);

        // Phase 1: binomial fold into the cluster leader. In round k a
        // node whose low k+1 bits read 10…0 pushes its accumulator to
        // the gather parent; nodes with low bits 0…0 absorb.
        let mut span = 1usize;
        while span < m {
            if lr % (2 * span) == span {
                debug_assert_eq!(gather_parent(lr), lr - span);
                self.fold_into(dest, nreduce, set.pe_at(c * cs + lr - span));
                break;
            }
            if lr.is_multiple_of(2 * span) && lr + span < m {
                self.fold_from(op, dest, nreduce, set.pe_at(c * cs + lr + span));
            }
            span <<= 1;
        }

        // Phase 2: recursive doubling across the leaders, with the
        // non-power-of-two excess folded into the power-of-two core
        // first (the same scheme as the flat RD reduce — audited at
        // nc = 3 and 24 by the unit tests below).
        if lr == 0 && nc > 1 {
            let p2 = largest_pow2_le(nc);
            if c >= p2 {
                let partner = set.pe_at((c - p2) * cs);
                self.fold_into(dest, nreduce, partner);
                let seq = self.next_seq(SEQ_PT2PT, partner, me);
                // Doubled convention — see the module docs.
                self.flag_wait_ge(self.layout.pt2pt_flags, partner, 2 * seq);
            } else {
                if c + p2 < nc {
                    self.fold_from(op, dest, nreduce, set.pe_at((c + p2) * cs));
                }
                let mut k = 1usize;
                while k < p2 {
                    self.exchange_combine(op, dest, nreduce, set.pe_at((c ^ k) * cs));
                    k <<= 1;
                }
                if c + p2 < nc {
                    let partner = set.pe_at((c + p2) * cs);
                    self.put_sym(dest, 0, dest, 0, nreduce, partner);
                    self.quiet();
                    let seq = self.next_seq(SEQ_PT2PT, partner, me);
                    self.flag_set(partner, self.layout.pt2pt_flags, me, 2 * seq);
                }
            }
        }

        // Phase 3: binomial push-down of the finished result inside each
        // cluster (broadcast tree — different edges than the gather
        // tree, which is fine: the pairwise counters order each pair
        // independently).
        if lr > 0 {
            let parent_pe = set.pe_at(c * cs + bcast_parent(lr));
            let seq = self.next_seq(SEQ_PT2PT, parent_pe, me);
            self.flag_wait_ge(self.layout.pt2pt_flags, parent_pe, 2 * seq);
        }
        let mut span = 1usize;
        while span < m {
            if lr < span && lr + span < m {
                let child_pe = set.pe_at(c * cs + lr + span);
                self.put_sym(dest, 0, dest, 0, nreduce, child_pe);
                self.quiet();
                let seq = self.next_seq(SEQ_PT2PT, child_pe, me);
                self.flag_set(child_pe, self.layout.pt2pt_flags, me, 2 * seq);
            }
            span <<= 1;
        }
        self.barrier(set);
    }

    /// Hierarchical broadcast with the topology-aligned cluster width.
    pub fn broadcast_hier<T: Bits>(
        &self,
        dest: &Sym<T>,
        source: &Sym<T>,
        nelems: usize,
        root_rank: usize,
        set: ActiveSet,
    ) {
        let cs = self.cluster_width(&set);
        self.broadcast_hier_with(dest, source, nelems, root_rank, set, cs);
    }

    /// [`ShmemCtx::broadcast_hier`] with an explicit cluster width.
    ///
    /// Ranks are rotated so the root is virtual rank 0 — the leader of
    /// cluster 0 and the root of both tree levels. Per the OpenSHMEM
    /// spec the root's `dest` is never written: virtual rank 0 has no
    /// parent in either tree and forwards straight from `source`.
    #[doc(hidden)]
    pub fn broadcast_hier_with<T: Bits>(
        &self,
        dest: &Sym<T>,
        source: &Sym<T>,
        nelems: usize,
        root_rank: usize,
        set: ActiveSet,
        cs: usize,
    ) {
        assert!(cs > 0, "cluster width must be positive");
        let rank = self.collective_entry(source, nelems, root_rank, set);
        let n = set.size;
        let me = self.my_pe();
        let vr = (rank + n - root_rank) % n;
        let c = vr / cs;
        let lvr = vr % cs;
        let m = cluster_size(c, cs, n);
        let nc = n_clusters(n, cs);
        let pe_of_v = |v: usize| set.pe_at((v + root_rank) % n);

        // Phase A: binomial tree over the cluster leaders, rooted at
        // the root's cluster.
        if lvr == 0 {
            if c > 0 {
                let parent_pe = pe_of_v(bcast_parent(c) * cs);
                let seq = self.next_seq(SEQ_PT2PT, parent_pe, me);
                // Doubled convention — see the module docs.
                self.flag_wait_ge(self.layout.pt2pt_flags, parent_pe, 2 * seq);
            }
            let from: Sym<T> = if vr == 0 { *source } else { *dest };
            let mut span = 1usize;
            while span < nc {
                if c < span && c + span < nc {
                    let child_pe = pe_of_v((c + span) * cs);
                    assert!(nelems <= dest.len(), "broadcast dest too small");
                    self.put_sym(dest, 0, &from, 0, nelems, child_pe);
                    self.quiet();
                    let seq = self.next_seq(SEQ_PT2PT, child_pe, me);
                    self.flag_set(child_pe, self.layout.pt2pt_flags, me, 2 * seq);
                }
                span <<= 1;
            }
        } else {
            let parent_pe = pe_of_v(c * cs + bcast_parent(lvr));
            let seq = self.next_seq(SEQ_PT2PT, parent_pe, me);
            self.flag_wait_ge(self.layout.pt2pt_flags, parent_pe, 2 * seq);
        }

        // Phase B: binomial tree down each cluster from its leader.
        let from: Sym<T> = if vr == 0 { *source } else { *dest };
        let mut span = 1usize;
        while span < m {
            if lvr < span && lvr + span < m {
                let child_pe = pe_of_v(c * cs + lvr + span);
                assert!(nelems <= dest.len(), "broadcast dest too small");
                self.put_sym(dest, 0, &from, 0, nelems, child_pe);
                self.quiet();
                let seq = self.next_seq(SEQ_PT2PT, child_pe, me);
                self.flag_set(child_pe, self.layout.pt2pt_flags, me, 2 * seq);
            }
            span <<= 1;
        }
        self.barrier(set);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn largest_pow2_le_matches_naive_scan() {
        for n in 1..=1025usize {
            let mut p = 1usize;
            while p * 2 <= n {
                p *= 2;
            }
            assert_eq!(largest_pow2_le(n), p, "n={n}");
        }
        assert_eq!(largest_pow2_le(768), 512);
        assert_eq!(largest_pow2_le(1024), 1024);
    }

    #[test]
    fn cluster_geometry_covers_every_rank_exactly_once() {
        for (n, cs) in [(96, 32), (768, 32), (1024, 32), (96, 7), (65, 64), (5, 8)] {
            let nc = n_clusters(n, cs);
            let total: usize = (0..nc).map(|c| cluster_size(c, cs, n)).sum();
            assert_eq!(total, n, "n={n} cs={cs}");
            for c in 0..nc {
                let m = cluster_size(c, cs, n);
                assert!(m >= 1 && m <= cs, "n={n} cs={cs} c={c} m={m}");
            }
            assert_eq!(n_clusters(96, 32), 3);
            assert_eq!(n_clusters(768, 32), 24);
        }
    }

    #[test]
    fn diss_rounds_is_ceil_log2() {
        assert_eq!(diss_rounds(1), 0);
        assert_eq!(diss_rounds(2), 1);
        assert_eq!(diss_rounds(3), 2);
        assert_eq!(diss_rounds(24), 5);
        assert_eq!(diss_rounds(32), 5);
        for n in 1..=1024usize {
            let r = diss_rounds(n);
            let mut dist = 1usize;
            let mut rounds = 0;
            while dist < n {
                dist <<= 1;
                rounds += 1;
            }
            assert_eq!(r, rounds, "n={n}");
        }
    }

    /// Replay the broadcast tree exactly as the production loops walk
    /// it and check every node is reached exactly once, from a parent
    /// that [`bcast_parent`] agrees on.
    #[test]
    fn bcast_tree_reaches_every_node_once() {
        let sizes = (1..=70usize).chain([96, 768, 1024]);
        for m in sizes {
            let mut from = vec![usize::MAX; m]; // cold: test harness
            from[0] = 0;
            let mut span = 1usize;
            while span < m {
                for lr in 0..span.min(m) {
                    if lr + span < m {
                        assert_ne!(from[lr], usize::MAX, "m={m}: {lr} sends before reached");
                        assert_eq!(from[lr + span], usize::MAX, "m={m}: {} reached twice", lr + span);
                        from[lr + span] = lr;
                    }
                }
                span <<= 1;
            }
            for (lr, &f) in from.iter().enumerate().skip(1) {
                assert_eq!(f, bcast_parent(lr), "m={m} lr={lr}");
                assert!(bcast_parent(lr) < lr);
            }
        }
    }

    /// Replay the gather tree: every non-root sends exactly once, to
    /// [`gather_parent`], and the receiver-side round condition accepts
    /// exactly those sends.
    #[test]
    fn gather_tree_funnels_every_node_into_the_root() {
        let sizes = (1..=70usize).chain([96, 768, 1024]);
        for m in sizes {
            let mut sent_to = vec![usize::MAX; m]; // cold: test harness
            let mut recv_count = vec![0usize; m]; // cold: test harness
            for lr in 0..m {
                let mut span = 1usize;
                while span < m {
                    if lr % (2 * span) == span {
                        sent_to[lr] = lr - span;
                        break;
                    }
                    if lr % (2 * span) == 0 && lr + span < m {
                        recv_count[lr] += 1;
                    }
                    span <<= 1;
                }
            }
            assert_eq!(sent_to[0], usize::MAX, "m={m}: root must not send");
            for (lr, &s) in sent_to.iter().enumerate().skip(1) {
                assert_eq!(s, gather_parent(lr), "m={m} lr={lr}");
            }
            for (parent, &rc) in recv_count.iter().enumerate() {
                let children = (0..m).filter(|&l| l > 0 && sent_to[l] == parent).count();
                assert_eq!(rc, children, "m={m} parent={parent}");
            }
            assert_eq!(recv_count.iter().sum::<usize>(), m.saturating_sub(1));
        }
    }

    /// Simulate the leader-phase recursive doubling (excess fold, XOR
    /// rounds, push-back) on contributor *sets* and check every leader
    /// ends with all contributions — the non-power-of-two audit at the
    /// leader counts the 96/768/1024-PE jobs actually produce.
    #[test]
    fn leader_recursive_doubling_combines_all_contributions() {
        for nc in (1..=33usize).chain([n_clusters(96, 32), n_clusters(768, 32), 24, 48]) {
            let mut have: Vec<u128> = (0..nc).map(|c| 1u128 << c).collect(); // cold: test harness
            let p2 = largest_pow2_le(nc);
            // Excess leaders fold into the core.
            for c in p2..nc {
                have[c - p2] |= have[c];
            }
            // XOR rounds within the power-of-two core.
            let mut k = 1usize;
            while k < p2 {
                let snapshot = have.clone(); // cold: test harness
                for c in 0..p2 {
                    have[c] |= snapshot[c ^ k];
                }
                k <<= 1;
            }
            // Push-back to the excess.
            for c in p2..nc {
                have[c] = have[c - p2];
            }
            let all = (1u128 << nc) - 1;
            for (c, h) in have.iter().enumerate() {
                assert_eq!(*h, all, "nc={nc} leader {c} missing contributions");
            }
        }
    }
}
