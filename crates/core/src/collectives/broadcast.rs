//! Broadcast: one-to-all (paper Section IV-D1, Figures 9–10).
//!
//! Three algorithms:
//!
//! * **Pull** (the paper's scalable design): every non-root PE gets the
//!   data from the root, spreading the load across the whole DDC.
//! * **Push** (the paper's baseline): the root puts to every PE
//!   sequentially — aggregate bandwidth stays flat as tiles are added.
//! * **Binomial** tree (the paper's future work, our extension).
//!
//! Per the OpenSHMEM spec the root's *dest* buffer is not written.

use crate::active_set::ActiveSet;
use crate::ctx::{BroadcastAlgo, ShmemCtx, SEQ_BCAST, SEQ_PT2PT};
use crate::symm::{Bits, Sym};

impl ShmemCtx {
    /// `shmem_broadcast`: copy `nelems` elements of `source` on the
    /// root (rank `root_rank` *within the active set*) into `dest` on
    /// every other member.
    pub fn broadcast<T: Bits>(
        &self,
        dest: &Sym<T>,
        source: &Sym<T>,
        nelems: usize,
        root_rank: usize,
        set: ActiveSet,
    ) {
        match self.algos.broadcast {
            // Past 64 members even the pull design serializes on the
            // root's partition; upgrade the default to the two-level
            // tree. Explicit choices (`Push`, `Binomial`) are honored.
            BroadcastAlgo::Pull if set.size > crate::collectives::hier::FLAT_MAX => {
                self.broadcast_hier(dest, source, nelems, root_rank, set)
            }
            BroadcastAlgo::Pull => self.broadcast_pull(dest, source, nelems, root_rank, set),
            BroadcastAlgo::Push => self.broadcast_push(dest, source, nelems, root_rank, set),
            BroadcastAlgo::Binomial => self.broadcast_binomial(dest, source, nelems, root_rank, set),
            BroadcastAlgo::Hierarchical => {
                self.broadcast_hier(dest, source, nelems, root_rank, set)
            }
        }
    }

    /// Pull-based broadcast (explicit, for the Figure 10 bench).
    pub fn broadcast_pull<T: Bits>(
        &self,
        dest: &Sym<T>,
        source: &Sym<T>,
        nelems: usize,
        root_rank: usize,
        set: ActiveSet,
    ) {
        let rank = self.collective_entry(source, nelems, root_rank, set);
        let root_pe = set.pe_at(root_rank);
        // Source is ready (entry barrier): everyone pulls in parallel.
        if rank != root_rank {
            assert!(nelems <= dest.len(), "broadcast dest too small");
            self.get_sym(dest, 0, source, 0, nelems, root_pe);
        }
        self.barrier(set);
    }

    /// Push-based broadcast (explicit, for the Figure 9 bench).
    pub fn broadcast_push<T: Bits>(
        &self,
        dest: &Sym<T>,
        source: &Sym<T>,
        nelems: usize,
        root_rank: usize,
        set: ActiveSet,
    ) {
        let rank = self.collective_entry(source, nelems, root_rank, set);
        let root_pe = set.pe_at(root_rank);
        if rank == root_rank {
            // The root does all the work, serially.
            for r in 0..set.size {
                if r == root_rank {
                    continue;
                }
                assert!(nelems <= dest.len(), "broadcast dest too small");
                self.put_sym(dest, 0, source, 0, nelems, set.pe_at(r));
            }
            self.quiet();
            for r in 0..set.size {
                if r != root_rank {
                    let dest_pe = set.pe_at(r);
                    let seq = self.next_seq(SEQ_BCAST, root_pe, dest_pe);
                    self.flag_set(dest_pe, self.layout.bcast_flags, root_pe, seq);
                }
            }
        } else {
            let seq = self.next_seq(SEQ_BCAST, root_pe, self.my_pe());
            self.flag_wait_ge(self.layout.bcast_flags, root_pe, seq);
        }
    }

    /// Binomial-tree broadcast (extension; Section IV-E future work).
    pub fn broadcast_binomial<T: Bits>(
        &self,
        dest: &Sym<T>,
        source: &Sym<T>,
        nelems: usize,
        root_rank: usize,
        set: ActiveSet,
    ) {
        let rank = self.collective_entry(source, nelems, root_rank, set);
        let n = set.size;
        let vr = (rank + n - root_rank) % n; // rank relative to the root
        if vr > 0 {
            // Receive from the parent: the sender that covers us is
            // vr - 2^floor(log2(vr)).
            let k = usize::BITS - 1 - vr.leading_zeros();
            let parent_vr = vr - (1 << k);
            let parent_pe = set.pe_at((parent_vr + root_rank) % n);
            let seq = self.next_seq(SEQ_PT2PT, parent_pe, self.my_pe());
            // Doubled convention, matching recursive-doubling reduce:
            // the pairwise SEQ_PT2PT counter is shared with reduce's
            // data/ack handshake, which writes flag values 2*seq and
            // 2*seq+1. A plain `seq` wait here would be stale-satisfied
            // by any prior reduce on the same pair (flag_wait_ge is >=),
            // letting a child forward its not-yet-written dest buffer.
            self.flag_wait_ge(self.layout.pt2pt_flags, parent_pe, 2 * seq);
        }
        // Forward to children: in round k, virtual ranks < 2^k send to
        // vr + 2^k.
        let from: Sym<T> = if vr == 0 { *source } else { *dest };
        let mut k = 0;
        while (1usize << k) < n {
            let span = 1usize << k;
            if vr < span {
                let child_vr = vr + span;
                if child_vr < n {
                    let child_pe = set.pe_at((child_vr + root_rank) % n);
                    assert!(nelems <= dest.len(), "broadcast dest too small");
                    self.put_sym(dest, 0, &from, 0, nelems, child_pe);
                    self.quiet();
                    let seq = self.next_seq(SEQ_PT2PT, child_pe, self.my_pe());
                    // Doubled convention — see the parent-side wait.
                    self.flag_set(child_pe, self.layout.pt2pt_flags, self.my_pe(), 2 * seq);
                }
            } else if vr < 2 * span {
                // We joined the senders after receiving in round k.
            }
            k += 1;
        }
        self.barrier(set);
    }

    /// Shared entry validation + barrier; returns this PE's rank.
    pub(crate) fn collective_entry<T: Bits>(
        &self,
        source: &Sym<T>,
        nelems: usize,
        root_rank: usize,
        set: ActiveSet,
    ) -> usize {
        assert!(set.max_pe() < self.n_pes(), "active set exceeds job");
        assert!(root_rank < set.size, "root rank {root_rank} outside set");
        assert!(nelems <= source.len(), "broadcast source too small");
        let rank = set
            .rank_of(self.my_pe())
            .unwrap_or_else(|| panic!("PE {} not in active set", self.my_pe()));
        self.stats.borrow_mut().collectives += 1;
        self.barrier(set);
        rank
    }
}
