//! Collection: all-to-all concatenation (paper Section IV-D2, Figure 11).
//!
//! `fcollect` (fast collect) requires the same contribution size from
//! every PE, so each PE implicitly knows where its block lands. General
//! `collect` allows different sizes; the offsets are computed with an
//! exclusive scan passed linearly over the UDN.
//!
//! Both use the paper's naive design: every PE puts its block to the
//! root, and the concatenated result is then pull-broadcast — stage 2's
//! total traffic grows *quadratically* with the number of PEs, which is
//! exactly the effect Figure 11 shows.

use crate::active_set::ActiveSet;
use crate::ctx::{ShmemCtx, SEQ_BCAST, SEQ_COLLECT_OFF, SEQ_COLLECT_TOTAL, SEQ_GATHER};
use crate::fabric::{ProtoMsg, Q_COLLECT};
use crate::symm::{Bits, Sym};

/// Exclusive-scan token for variable-size collect.
pub const TAG_COLLECT_OFF: u16 = 20;
/// Total-size distribution for variable-size collect.
pub const TAG_COLLECT_TOTAL: u16 = 21;

// `collect` messages carry `[set.ident(), pairwise_seq, value]`.
// Filtering by ident alone is not collision-free: `ident()` packs
// (start, stride, size), so back-to-back or concurrent collects on the
// *same* set — or distinct sets on fabrics where stale messages linger in
// a stash — could consume each other's OFF/TOTAL tokens. The per-pair,
// per-namespace sequence number makes every (set, invocation, edge)
// token unique, so a matcher only accepts the message addressed to this
// exact invocation.

impl ShmemCtx {
    /// `shmem_fcollect`: concatenate `nelems` elements from every set
    /// member (in rank order) into `dest` on every member.
    pub fn fcollect<T: Bits>(&self, dest: &Sym<T>, source: &Sym<T>, nelems: usize, set: ActiveSet) {
        assert!(set.max_pe() < self.n_pes(), "active set exceeds job");
        assert!(nelems <= source.len(), "fcollect source too small");
        assert!(set.size * nelems <= dest.len(), "fcollect dest too small");
        let rank = set
            .rank_of(self.my_pe())
            .unwrap_or_else(|| panic!("PE {} not in active set", self.my_pe()));
        self.stats.borrow_mut().collectives += 1;
        self.barrier(set);
        self.gather_and_redistribute(dest, source, rank * nelems, nelems, set.size * nelems, set, rank);
    }

    /// `shmem_collect`: concatenate `my_nelems` (which may differ per
    /// PE) elements from every member into `dest` on every member.
    /// Returns the total element count.
    pub fn collect<T: Bits>(
        &self,
        dest: &Sym<T>,
        source: &Sym<T>,
        my_nelems: usize,
        set: ActiveSet,
    ) -> usize {
        assert!(set.max_pe() < self.n_pes(), "active set exceeds job");
        assert!(my_nelems <= source.len(), "collect source too small");
        let rank = set
            .rank_of(self.my_pe())
            .unwrap_or_else(|| panic!("PE {} not in active set", self.my_pe()));
        self.stats.borrow_mut().collectives += 1;
        self.barrier(set);

        // Exclusive scan of contribution sizes, passed linearly.
        let id = set.ident();
        let me = self.my_pe();
        let my_off = if set.size == 1 {
            0
        } else if rank == 0 {
            let next = set.pe_at(1);
            let seq = self.next_seq(SEQ_COLLECT_OFF, me, next);
            self.send_draining(next, Q_COLLECT, TAG_COLLECT_OFF, &[id, seq, my_nelems as u64]);
            0
        } else {
            let prev = set.pe_at(rank - 1);
            let seq = self.next_seq(SEQ_COLLECT_OFF, me, prev);
            let m = self.recv_matching(Q_COLLECT, |m: &ProtoMsg| {
                m.tag == TAG_COLLECT_OFF
                    && m.payload.first() == Some(&id)
                    && m.payload.get(1) == Some(&seq)
            });
            let off = m.payload[2] as usize;
            if rank + 1 < set.size {
                let next = set.pe_at(rank + 1);
                let nseq = self.next_seq(SEQ_COLLECT_OFF, me, next);
                self.send_draining(
                    next,
                    Q_COLLECT,
                    TAG_COLLECT_OFF,
                    &[id, nseq, (off + my_nelems) as u64],
                );
            }
            off
        };

        // Total: the last rank knows it; distribute through the root.
        let root_pe = set.pe_at(0);
        let last = set.pe_at(set.size - 1);
        let total = if set.size == 1 {
            my_nelems
        } else if rank == set.size - 1 {
            let total = my_off + my_nelems;
            for r in 0..set.size - 1 {
                let member = set.pe_at(r);
                let seq = self.next_seq(SEQ_COLLECT_TOTAL, me, member);
                self.send_draining(
                    member,
                    Q_COLLECT,
                    TAG_COLLECT_TOTAL,
                    &[id, seq, total as u64],
                );
            }
            total
        } else {
            let seq = self.next_seq(SEQ_COLLECT_TOTAL, me, last);
            let m = self.recv_matching(Q_COLLECT, |m: &ProtoMsg| {
                m.tag == TAG_COLLECT_TOTAL
                    && m.payload.first() == Some(&id)
                    && m.payload.get(1) == Some(&seq)
            });
            m.payload[2] as usize
        };
        assert!(total <= dest.len(), "collect dest too small for {total} elements");
        let _ = root_pe;
        self.gather_and_redistribute(dest, source, my_off, my_nelems, total, set, rank);
        total
    }

    /// The shared tail of both collects: put my block into the root's
    /// `dest`, then pull-broadcast the concatenation.
    #[allow(clippy::too_many_arguments)]
    fn gather_and_redistribute<T: Bits>(
        &self,
        dest: &Sym<T>,
        source: &Sym<T>,
        my_elem_off: usize,
        my_nelems: usize,
        total_elems: usize,
        set: ActiveSet,
        rank: usize,
    ) {
        let root_pe = set.pe_at(0);
        let me = self.my_pe();
        // Stage 1: n PEs transfer their blocks to the root.
        if my_nelems > 0 {
            self.put_sym(dest, my_elem_off, source, 0, my_nelems, root_pe);
        }
        self.quiet();
        let seq = self.next_seq(SEQ_GATHER, root_pe, me);
        self.flag_set(root_pe, self.layout.gather_flags, me, seq);

        if rank == 0 {
            for r in 0..set.size {
                let member = set.pe_at(r);
                let mseq = if member == me {
                    seq
                } else {
                    self.next_seq(SEQ_GATHER, root_pe, member)
                };
                self.flag_wait_ge(self.layout.gather_flags, member, mseq);
            }
            // Stage 2: root signals and everyone pulls n*M elements.
            for r in 1..set.size {
                let member = set.pe_at(r);
                let bseq = self.next_seq(SEQ_BCAST, root_pe, member);
                self.flag_set(member, self.layout.bcast_flags, root_pe, bseq);
            }
        } else {
            let bseq = self.next_seq(SEQ_BCAST, root_pe, me);
            self.flag_wait_ge(self.layout.bcast_flags, root_pe, bseq);
            self.get_sym(dest, 0, dest, 0, total_elems, root_pe);
        }
        self.barrier(set);
    }
}
