//! Teams (OpenSHMEM 1.4): first-class handles over active sets.
//!
//! A [`Team`] wraps an [`ActiveSet`] and adds the rank-space view the
//! 1.4 API is built around: `my_pe()`/`n_pes()` answer in *team* ranks,
//! creation is by strided split of a parent team (so teams compose —
//! a split of a split is still one strided set over job PEs), and the
//! collectives are team-scoped methods that translate to the underlying
//! active-set algorithms. Nothing is reimplemented: a team collective
//! and the equivalent triplet collective run the *same* flat or
//! hierarchical algorithm on the same PEs, which the equivalence suite
//! asserts by comparing memory state and `Stats`.
//!
//! Because every team is a strided set, `split_strided` composes
//! strides multiplicatively: taking every `2^k`-th member of a parent
//! with stride `2^j` yields a child with stride `2^(j+k)`. (OpenSHMEM
//! 1.4 has the same power-of-two shape for `shmem_team_split_strided`
//! on strided parents.)

use crate::active_set::ActiveSet;
use crate::ctx::ShmemCtx;
use crate::symm::{Bits, Sym};
use crate::types::{Reducible, ReduceOp};

/// A team handle: an active set plus this PE's rank within it.
///
/// Construct with [`ShmemCtx::team_world`] or by splitting an existing
/// team; all members of the parent must call the split collectively
/// with the same arguments (as in OpenSHMEM), though the split itself
/// is purely local arithmetic here.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Team {
    set: ActiveSet,
    /// This PE's rank within `set`, fixed at creation.
    rank: usize,
}

impl ShmemCtx {
    /// The predefined world team (`SHMEM_TEAM_WORLD`): all PEs.
    pub fn team_world(&self) -> Team {
        Team { set: ActiveSet::all(self.n_pes()), rank: self.my_pe() }
    }

    /// A team over an explicit active set. Returns `None` if this PE is
    /// not a member (OpenSHMEM's `SHMEM_TEAM_INVALID`).
    pub fn team_from_set(&self, set: ActiveSet) -> Option<Team> {
        assert!(set.max_pe() < self.n_pes(), "active set exceeds job");
        set.rank_of(self.my_pe()).map(|rank| Team { set, rank })
    }
}

impl Team {
    /// This PE's rank within the team (`shmem_team_my_pe`).
    pub fn my_pe(&self) -> usize {
        self.rank
    }

    /// Number of team members (`shmem_team_n_pes`).
    pub fn n_pes(&self) -> usize {
        self.set.size
    }

    /// The underlying active set (the `(start, logPE_stride, size)`
    /// triplet this team names).
    pub fn active_set(&self) -> ActiveSet {
        self.set
    }

    /// Translate a team rank to a job PE id
    /// (`shmem_team_translate_pe` to the world team).
    pub fn pe_of_rank(&self, rank: usize) -> usize {
        self.set.pe_at(rank)
    }

    /// Translate this team's rank `rank` into `other`'s rank space, if
    /// that PE is also a member of `other`.
    pub fn translate_rank(&self, rank: usize, other: &Team) -> Option<usize> {
        other.set.rank_of(self.set.pe_at(rank))
    }

    /// `shmem_team_split_strided`: the sub-team of `size` members
    /// starting at team rank `start_rank`, taking every `2^log2_stride`
    /// -th member. Returns `None` on the callers that are not members
    /// of the child (the OpenSHMEM contract: they get
    /// `SHMEM_TEAM_INVALID`).
    ///
    /// # Panics
    /// Panics if the child would reach past the parent.
    pub fn split_strided(&self, start_rank: usize, log2_stride: u32, size: usize) -> Option<Team> {
        assert!(size > 0, "team cannot be empty");
        let last = start_rank + (size - 1) * (1usize << log2_stride);
        assert!(last < self.set.size, "child team exceeds parent (rank {last})");
        // Parent ranks r map to job PEs start + r·2^j; taking every
        // 2^k-th parent rank from start_rank is the job-PE set starting
        // at pe_at(start_rank) with stride 2^(j+k).
        let child = ActiveSet::new(
            self.set.pe_at(start_rank),
            self.set.log2_stride + log2_stride,
            size,
        );
        child.rank_of(self.set.pe_at(self.rank)).map(|rank| Team { set: child, rank })
    }

    /// `shmem_team_split_2d`-flavored even/odd halves are the common
    /// case of [`split_strided`]; this is the `color`-style convenience:
    /// split the team into `parts` round-robin sub-teams and return the
    /// one this PE belongs to.
    ///
    /// # Panics
    /// Panics if `parts` is not a power of two or exceeds the team size.
    pub fn split_round_robin(&self, parts: usize) -> Team {
        assert!(parts.is_power_of_two(), "round-robin split needs power-of-two parts");
        assert!(parts <= self.set.size, "more parts than members");
        let color = self.rank % parts;
        let size = (self.set.size - color).div_ceil(parts);
        self.split_strided(color, parts.trailing_zeros(), size)
            .expect("splitter is always a member of its own color")
    }

    // --- team-scoped collectives (same algorithms, team rank space) ---

    /// Team barrier (`shmem_team_sync`): completes outstanding puts and
    /// nbi ops, like the active-set barrier it forwards to.
    pub fn barrier(&self, ctx: &ShmemCtx) {
        ctx.barrier(self.set)
    }

    /// Team broadcast; `root` is a *team rank*.
    pub fn broadcast<T: Bits>(
        &self,
        ctx: &ShmemCtx,
        dest: &Sym<T>,
        source: &Sym<T>,
        nelems: usize,
        root: usize,
    ) {
        ctx.broadcast(dest, source, nelems, root, self.set)
    }

    /// Team reduction to all members under an explicit operator.
    pub fn reduce<T: Reducible>(
        &self,
        ctx: &ShmemCtx,
        op: ReduceOp,
        dest: &Sym<T>,
        source: &Sym<T>,
        nreduce: usize,
    ) {
        ctx.reduce(op, dest, source, nreduce, self.set)
    }

    /// Team sum-reduction to all members.
    pub fn sum_to_all<T: Reducible>(
        &self,
        ctx: &ShmemCtx,
        dest: &Sym<T>,
        source: &Sym<T>,
        nreduce: usize,
    ) {
        ctx.sum_to_all(dest, source, nreduce, self.set)
    }

    /// Team max-reduction to all members.
    pub fn max_to_all<T: Reducible>(
        &self,
        ctx: &ShmemCtx,
        dest: &Sym<T>,
        source: &Sym<T>,
        nreduce: usize,
    ) {
        ctx.max_to_all(dest, source, nreduce, self.set)
    }

    /// Team fixed-size collect (`shmem_fcollect` over the team).
    pub fn fcollect<T: Bits>(&self, ctx: &ShmemCtx, dest: &Sym<T>, source: &Sym<T>, nelems: usize) {
        ctx.fcollect(dest, source, nelems, self.set)
    }

    /// Team variable-size collect; returns the total element count.
    pub fn collect<T: Bits>(
        &self,
        ctx: &ShmemCtx,
        dest: &Sym<T>,
        source: &Sym<T>,
        my_nelems: usize,
    ) -> usize {
        ctx.collect(dest, source, my_nelems, self.set)
    }

    /// Team all-to-all block exchange (`shmem_alltoall` over the team).
    pub fn alltoall<T: Bits>(&self, ctx: &ShmemCtx, dest: &Sym<T>, source: &Sym<T>, nelems: usize) {
        ctx.alltoall(dest, source, nelems, self.set)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Pure rank arithmetic is testable without a fabric: build teams
    /// around hand-made sets.
    fn team_of(set: ActiveSet, pe: usize) -> Team {
        Team { set, rank: set.rank_of(pe).unwrap() }
    }

    #[test]
    fn split_strided_composes_strides() {
        // Parent: PEs {1, 3, 5, 7, 9, 11, 13, 15} (start 1, stride 2).
        let parent = team_of(ActiveSet::new(1, 1, 8), 5);
        assert_eq!(parent.my_pe(), 2);
        // Children: every 2nd member from rank 1 → PEs {3, 7, 11, 15}.
        // PE 5 is parent rank 2 (even), so it is not a member.
        assert!(parent.split_strided(1, 1, 4).is_none());
        // From the view of PE 7 (parent rank 3) the child rank is 1.
        let member = team_of(ActiveSet::new(1, 1, 8), 7).split_strided(1, 1, 4).unwrap();
        assert_eq!(member.active_set(), ActiveSet::new(3, 2, 4));
        assert!(member.active_set().rank_of(5).is_none());
        assert_eq!(member.my_pe(), 1);
        assert_eq!(member.pe_of_rank(1), 7);
    }

    #[test]
    fn split_membership_matches_openshmem_invalid_contract() {
        let parent = team_of(ActiveSet::all(8), 2);
        // Evens child: {0, 2, 4, 6} — PE 2 is a member at rank 1.
        let evens = parent.split_strided(0, 1, 4).unwrap();
        assert_eq!(evens.my_pe(), 1);
        // Odds child: {1, 3, 5, 7} — PE 2 is not a member.
        assert!(parent.split_strided(1, 1, 4).is_none());
    }

    #[test]
    fn round_robin_split_covers_the_parent() {
        for pe in 0..8 {
            let t = team_of(ActiveSet::all(8), pe).split_round_robin(2);
            assert_eq!(t.n_pes(), 4);
            assert!(t.active_set().contains(pe));
        }
    }

    #[test]
    fn translate_between_overlapping_teams() {
        let world = team_of(ActiveSet::all(8), 6);
        let evens = world.split_strided(0, 1, 4).unwrap(); // {0,2,4,6}
        // World rank 6 is evens rank 3.
        assert_eq!(world.translate_rank(6, &evens), Some(3));
        assert_eq!(world.translate_rank(3, &evens), None);
        assert_eq!(evens.translate_rank(3, &world), Some(6));
    }

    #[test]
    #[should_panic(expected = "exceeds parent")]
    fn oversized_split_panics() {
        team_of(ActiveSet::all(4), 0).split_strided(2, 1, 2);
    }
}
