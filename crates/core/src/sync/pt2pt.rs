//! Point-to-point synchronization: `shmem_wait` / `shmem_wait_until`.
//!
//! A PE blocks until a local symmetric variable satisfies a comparison —
//! the variable is updated remotely by a put or atomic from another PE.
//! Supported on dynamic symmetric variables; waiting on static
//! (private-segment) variables is not supported, mirroring the paper's
//! partial static coverage (Section IV-E).

use crate::ctx::ShmemCtx;
use crate::symm::{AddrClass, Bits, Sym};

/// Comparison operators for `wait_until` (OpenSHMEM `SHMEM_CMP_*`).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Cmp {
    Eq,
    Ne,
    Gt,
    Le,
    Lt,
    Ge,
}

impl Cmp {
    fn holds<T: PartialOrd>(self, a: T, b: T) -> bool {
        match self {
            Cmp::Eq => a == b,
            Cmp::Ne => a != b,
            Cmp::Gt => a > b,
            Cmp::Le => a <= b,
            Cmp::Lt => a < b,
            Cmp::Ge => a >= b,
        }
    }
}

/// Integer types `shmem_wait` can poll (loads must be single-copy
/// atomic, so only word types qualify).
pub trait WaitInt: Bits + PartialOrd {
    /// Atomically load this PE's copy at the given global arena offset.
    fn load(ctx: &ShmemCtx, global_off: usize) -> Self;
}

macro_rules! impl_wait_int {
    ($($t:ty => $via:ident),*) => {
        $(impl WaitInt for $t {
            fn load(ctx: &ShmemCtx, global_off: usize) -> Self {
                ctx.fab.$via(global_off) as $t
            }
        })*
    };
}

impl_wait_int!(u32 => arena_read_u32, i32 => arena_read_u32, u64 => arena_read_u64, i64 => arena_read_u64);

impl ShmemCtx {
    /// `shmem_wait_until`: block until `var[index]` on *this* PE
    /// satisfies `cmp value`.
    ///
    /// # Panics
    /// Panics for static symmetric variables (unsupported, as in the
    /// paper) and for unaligned elements.
    pub fn wait_until<T: WaitInt>(&self, var: &Sym<T>, index: usize, cmp: Cmp, value: T) {
        assert_eq!(
            var.class(),
            AddrClass::Dynamic,
            "shmem_wait on static symmetric variables is not supported (see paper Section IV-E)"
        );
        let off = self.go(self.my_pe(), var.elem_offset(index));
        assert_eq!(off % std::mem::size_of::<T>(), 0, "unaligned wait variable");
        self.blocked_while(crate::fabric::BlockedOn::FlagWait { offset: off }, || {
            let mut attempt = 0u32;
            while !cmp.holds(T::load(self, off), value) {
                self.fab.wait_pause(attempt);
                attempt += 1;
            }
        });
    }

    /// `shmem_wait`: block until `var[index]` is no longer `value`.
    pub fn wait<T: WaitInt>(&self, var: &Sym<T>, index: usize, value: T) {
        self.wait_until(var, index, Cmp::Ne, value);
    }

    // --- internal flag helpers (collective completion signals) ---------

    /// Set flag slot `slot` of `flags_base` on PE `pe` to `val`.
    pub(crate) fn flag_set(&self, pe: usize, flags_base: usize, slot: usize, val: u64) {
        debug_assert!(slot < self.layout.npes);
        self.fab
            .arena_write_u64(self.go(pe, flags_base + slot * 8), val);
    }

    /// Wait until our local flag `slot` of `flags_base` reaches `val`.
    pub(crate) fn flag_wait_ge(&self, flags_base: usize, slot: usize, val: u64) {
        let off = self.go(self.my_pe(), flags_base + slot * 8);
        self.blocked_while(crate::fabric::BlockedOn::FlagWait { offset: off }, || {
            let mut attempt = 0u32;
            while self.fab.arena_read_u64(off) < val {
                self.fab.wait_pause(attempt);
                attempt += 1;
            }
        });
    }

    /// Run `f` with this PE's probe (if any) publishing `state`, resetting
    /// to `Running` afterwards — the watchdog sees *where* a spin wait is
    /// parked.
    pub(crate) fn blocked_while<R>(&self, state: crate::fabric::BlockedOn, f: impl FnOnce() -> R) -> R {
        if let Some(p) = self.fab.probe() {
            p.set_blocked(state);
            let r = f();
            p.set_blocked(crate::fabric::BlockedOn::Running);
            r
        } else {
            f()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cmp_semantics() {
        assert!(Cmp::Eq.holds(3, 3));
        assert!(Cmp::Ne.holds(3, 4));
        assert!(Cmp::Gt.holds(5, 4));
        assert!(Cmp::Le.holds(4, 4));
        assert!(Cmp::Lt.holds(-1, 0));
        assert!(Cmp::Ge.holds(0, 0));
        assert!(!Cmp::Gt.holds(4, 4));
    }
}
