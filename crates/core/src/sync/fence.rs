//! Communication synchronization: `shmem_fence` and `shmem_quiet`
//! (paper Section IV-C2, extended with the OpenSHMEM 1.3 completion
//! model).
//!
//! `shmem_quiet()` blocks until all outstanding puts by this PE — the
//! blocking ones *and* the non-blocking (`_nbi`) ones — are complete
//! and visible. `shmem_fence()` is strictly weaker: it orders puts per
//! destination PE but does **not** complete outstanding non-blocking
//! operations. The paper's TSHMEM aliased fence to quiet (both were
//! `tmc_mem_fence()`), which was harmless when every op was blocking;
//! with `put_nbi` in the surface, that alias would silently destroy the
//! communication/computation overlap nbi exists to provide. The two
//! entry points now diverge, and `Stats { fences, quiets }` counts them
//! separately so tests can assert the difference.
//!
//! Per-destination ordering without a drain holds by construction:
//! staged dynamic-target puts are applied in issue order at drain,
//! redirected static-target requests are sent at issue and serviced by
//! the remote handler in arrival order, and the two kinds target
//! disjoint memory (arena vs private), so same-location writes to one
//! PE always retire in program order.

use crate::ctx::ShmemCtx;

impl ShmemCtx {
    /// `shmem_quiet`: all outstanding puts by this PE — including
    /// non-blocking ones — are complete and visible. This is the
    /// completion point for `put_nbi`/`get_nbi`.
    pub fn quiet(&self) {
        self.drain_pending();
        self.fab.quiet();
        self.stats.borrow_mut().quiets += 1;
    }

    /// `shmem_fence`: ordering of puts per destination PE. Does **not**
    /// complete outstanding non-blocking operations — after a
    /// `put_nbi` + `fence`, the op is still pending until
    /// [`quiet`](Self::quiet).
    pub fn fence(&self) {
        self.fab.quiet();
        self.stats.borrow_mut().fences += 1;
    }
}
