//! Communication synchronization: `shmem_fence` and `shmem_quiet`
//! (paper Section IV-C2).
//!
//! `shmem_quiet()` blocks until all outstanding puts to all PEs are
//! complete; `shmem_fence()` only orders puts to each individual PE.
//! TSHMEM implements quiet with `tmc_mem_fence()` and simply aliases
//! fence to quiet, giving it the stronger semantics — we do the same.

use crate::ctx::ShmemCtx;

impl ShmemCtx {
    /// `shmem_quiet`: all outstanding puts by this PE are complete and
    /// visible.
    pub fn quiet(&self) {
        self.fab.quiet();
    }

    /// `shmem_fence`: ordering of puts per destination PE. Aliased to
    /// [`quiet`](Self::quiet), exactly as in the paper's TSHMEM.
    pub fn fence(&self) {
        self.quiet();
    }
}
