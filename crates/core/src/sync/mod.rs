//! Synchronization: barriers, fence/quiet, point-to-point waits, and
//! distributed locks (paper Section IV-C).

pub mod barrier;
pub mod fence;
pub mod lock;
pub mod pt2pt;

pub use pt2pt::Cmp;
