//! Barrier synchronization (paper Section IV-C1).
//!
//! The paper's design synchronizes over the UDN: the start PE of the
//! active set generates an *active-set identification* (so overlapping
//! barrier calls on different sets can't return out of order or stall),
//! encodes it with a **wait** signal, and sends it linearly around the
//! set; when it comes back, the process repeats with a **release**
//! signal. A broadcast-release variant and the TMC spin barrier are
//! selectable for the ablation study.

use crate::active_set::ActiveSet;
use crate::ctx::{BarrierAlgo, ShmemCtx};
use crate::fabric::{BlockedOn, ProtoMsg, Q_BARRIER};

/// Ring token carrying a *wait* signal.
pub const TAG_BAR_WAIT: u16 = 10;
/// Ring token carrying a *release* signal.
pub const TAG_BAR_RELEASE: u16 = 11;
/// Arrival notification (root-broadcast variant).
pub const TAG_BAR_ARRIVE: u16 = 12;
/// Round signal of the dissemination barrier.
pub const TAG_BAR_DISS: u16 = 13;

impl ShmemCtx {
    /// Barrier across all PEs (`shmem_barrier_all`).
    pub fn barrier_all(&self) {
        self.barrier(self.world());
    }

    /// Barrier across an active set (`shmem_barrier`). Also completes
    /// all outstanding puts (the OpenSHMEM barrier includes a quiet).
    ///
    /// # Panics
    /// Panics if this PE is not a member of `set` or the set exceeds the
    /// job size.
    pub fn barrier(&self, set: ActiveSet) {
        assert!(set.max_pe() < self.n_pes(), "active set exceeds job");
        let rank = set
            .rank_of(self.my_pe())
            .unwrap_or_else(|| panic!("PE {} not in active set {set:?}", self.my_pe()));
        self.stats.borrow_mut().barriers += 1;
        self.fab.quiet();
        if set.size == 1 {
            return;
        }
        match self.algos.barrier {
            BarrierAlgo::Ring => self.barrier_ring(set, rank),
            BarrierAlgo::RootBroadcast => self.barrier_root_broadcast(set, rank),
            BarrierAlgo::TmcSpin => self.fab.tmc_spin_barrier(set.triplet()),
            BarrierAlgo::Dissemination => self.barrier_dissemination(set, rank),
        }
    }

    /// Explicit ring barrier (exposed for the ablation benches regardless
    /// of the configured default).
    pub fn barrier_ring_explicit(&self, set: ActiveSet) {
        let rank = set.rank_of(self.my_pe()).expect("not in set");
        self.fab.quiet();
        if set.size > 1 {
            self.barrier_ring(set, rank);
        }
    }

    /// Explicit root-broadcast barrier (for the ablation benches).
    pub fn barrier_root_broadcast_explicit(&self, set: ActiveSet) {
        let rank = set.rank_of(self.my_pe()).expect("not in set");
        self.fab.quiet();
        if set.size > 1 {
            self.barrier_root_broadcast(set, rank);
        }
    }

    /// Explicit dissemination barrier (for the ablation benches).
    pub fn barrier_dissemination_explicit(&self, set: ActiveSet) {
        let rank = set.rank_of(self.my_pe()).expect("not in set");
        self.fab.quiet();
        if set.size > 1 {
            self.barrier_dissemination(set, rank);
        }
    }

    /// Dissemination barrier: in round k every member signals the member
    /// 2^k ranks ahead and waits for the signal from 2^k ranks behind —
    /// ⌈log2 n⌉ parallel rounds instead of the ring's 2n serial hops.
    fn barrier_dissemination(&self, set: ActiveSet, rank: usize) {
        let id = set.ident();
        let n = set.size;
        let mut dist = 1usize;
        let mut round = 0u64;
        while dist < n {
            let to = set.pe_at((rank + dist) % n);
            self.send_draining(to, Q_BARRIER, TAG_BAR_DISS, &[id, round]);
            self.recv_matching(Q_BARRIER, |m: &ProtoMsg| {
                m.tag == TAG_BAR_DISS && m.payload.first() == Some(&id) && m.payload.get(1) == Some(&round)
            });
            dist <<= 1;
            round += 1;
        }
    }

    fn barrier_ring(&self, set: ActiveSet, rank: usize) {
        let id = set.ident();
        let next = set.pe_at((rank + 1) % set.size);
        let m = |tag: u16| move |m: &ProtoMsg| m.tag == tag && m.payload.first() == Some(&id);
        if rank == 0 {
            // Wait phase: send the token around; its return means every
            // member reached the barrier.
            self.send_draining(next, Q_BARRIER, TAG_BAR_WAIT, &[id]);
            self.recv_matching(Q_BARRIER, m(TAG_BAR_WAIT));
            // Release phase.
            self.send_draining(next, Q_BARRIER, TAG_BAR_RELEASE, &[id]);
            self.recv_matching(Q_BARRIER, m(TAG_BAR_RELEASE));
        } else {
            self.recv_matching(Q_BARRIER, m(TAG_BAR_WAIT));
            self.send_draining(next, Q_BARRIER, TAG_BAR_WAIT, &[id]);
            self.recv_matching(Q_BARRIER, m(TAG_BAR_RELEASE));
            self.send_draining(next, Q_BARRIER, TAG_BAR_RELEASE, &[id]);
        }
    }

    fn barrier_root_broadcast(&self, set: ActiveSet, rank: usize) {
        let id = set.ident();
        let root = set.pe_at(0);
        if rank == 0 {
            for _ in 1..set.size {
                self.recv_matching(Q_BARRIER, |m: &ProtoMsg| {
                    m.tag == TAG_BAR_ARRIVE && m.payload.first() == Some(&id)
                });
            }
            for r in 1..set.size {
                self.send_draining(set.pe_at(r), Q_BARRIER, TAG_BAR_RELEASE, &[id]);
            }
        } else {
            self.send_draining(root, Q_BARRIER, TAG_BAR_ARRIVE, &[id]);
            self.recv_matching(Q_BARRIER, |m: &ProtoMsg| {
                m.tag == TAG_BAR_RELEASE && m.payload.first() == Some(&id)
            });
        }
    }

    /// Send a protocol token without stalling our own demux queue: while
    /// the destination queue is full, drain arrivals on our `queue` into
    /// the stash instead of blocking. A PE blocked in a plain send cannot
    /// consume, so on finite-buffer fabrics a cycle of full-queue senders
    /// deadlocks (e.g. overlapping dissemination-barrier rounds with
    /// 2-packet queues); draining while stalled breaks every such cycle —
    /// the software analog of Tilera's UDN interrupt handler running
    /// while a send spins on wormhole flow control.
    pub(crate) fn send_draining(&self, dest: usize, queue: usize, tag: u16, payload: &[u64]) {
        if crate::fault::blocking_protocol_sends() {
            // Fault injection (watchdog canary): the pre-fix plain
            // blocking send, which reintroduces the deadlock above.
            if let Some(p) = self.fab.probe() {
                p.set_blocked(BlockedOn::SendFull { dest, queue });
            }
            self.fab.udn_send(dest, queue, tag, payload);
            if let Some(p) = self.fab.probe() {
                p.set_blocked(BlockedOn::Running);
            }
            return;
        }
        let mut attempt = 0u32;
        let mut published = false;
        while !self.fab.udn_try_send(dest, queue, tag, payload) {
            if !published {
                // First refusal: publish where we're wedged so a stall
                // watchdog can name the full destination queue.
                if let Some(p) = self.fab.probe() {
                    p.set_blocked(BlockedOn::SendFull { dest, queue });
                }
                published = true;
            }
            if let Some(m) = self.fab.udn_try_recv(queue) {
                self.stash.borrow_mut().push(m);
                self.mirror_stash();
            } else {
                self.fab.wait_pause(attempt);
                attempt = attempt.wrapping_add(1);
            }
        }
        if published {
            if let Some(p) = self.fab.probe() {
                p.set_blocked(BlockedOn::Running);
            }
        }
    }

    /// Receive from `queue`, parking mismatched messages in the stash so
    /// overlapping protocol exchanges cannot steal each other's tokens.
    pub(crate) fn recv_matching(&self, queue: usize, pred: impl Fn(&ProtoMsg) -> bool) -> ProtoMsg {
        {
            let mut stash = self.stash.borrow_mut();
            if let Some(i) = stash.iter().position(&pred) {
                let m = stash.swap_remove(i);
                drop(stash);
                self.mirror_stash();
                return m;
            }
        }
        loop {
            let msg = self.fab.udn_recv(queue);
            if pred(&msg) {
                return msg;
            }
            self.stash.borrow_mut().push(msg);
            self.mirror_stash();
        }
    }
}
