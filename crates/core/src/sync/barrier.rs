//! Barrier synchronization (paper Section IV-C1).
//!
//! The paper's design synchronizes over the UDN: the start PE of the
//! active set generates an *active-set identification* (so overlapping
//! barrier calls on different sets can't return out of order or stall),
//! encodes it with a **wait** signal, and sends it linearly around the
//! set; when it comes back, the process repeats with a **release**
//! signal. A broadcast-release variant and the TMC spin barrier are
//! selectable for the ablation study.

use crate::active_set::ActiveSet;
use crate::collectives::hier;
use crate::ctx::{BarrierAlgo, ShmemCtx};
use crate::fabric::{BlockedOn, ProtoMsg, Q_BARRIER};

/// Ring token carrying a *wait* signal.
pub const TAG_BAR_WAIT: u16 = 10;
/// Ring token carrying a *release* signal.
pub const TAG_BAR_RELEASE: u16 = 11;
/// Arrival notification (root-broadcast variant).
pub const TAG_BAR_ARRIVE: u16 = 12;
/// Round signal of the dissemination barrier.
pub const TAG_BAR_DISS: u16 = 13;
/// Cluster-gather signal of the hierarchical barrier.
pub const TAG_BAR_HGATHER: u16 = 14;
/// Leader-dissemination round signal of the hierarchical barrier.
pub const TAG_BAR_HDISS: u16 = 15;
/// Cluster-release signal of the hierarchical barrier.
pub const TAG_BAR_HRELEASE: u16 = 16;

impl ShmemCtx {
    /// Barrier across all PEs (`shmem_barrier_all`).
    pub fn barrier_all(&self) {
        self.barrier(self.world());
    }

    /// Barrier across an active set (`shmem_barrier`). Also completes
    /// all outstanding puts (the OpenSHMEM barrier includes a quiet).
    ///
    /// # Panics
    /// Panics if this PE is not a member of `set` or the set exceeds the
    /// job size.
    pub fn barrier(&self, set: ActiveSet) {
        assert!(set.max_pe() < self.n_pes(), "active set exceeds job");
        let rank = set
            .rank_of(self.my_pe())
            .unwrap_or_else(|| panic!("PE {} not in active set {set:?}", self.my_pe()));
        self.stats.borrow_mut().barriers += 1;
        // Barrier completes outstanding nbi ops (it subsumes a quiet),
        // but without bumping the `quiets` counter — fence/quiet stats
        // stay attributable to the explicit entry points.
        self.drain_pending();
        self.fab.quiet();
        if set.size == 1 {
            return;
        }
        match self.algos.barrier {
            // Past 64 members the flat defaults pay n·⌈log₂ n⌉ (or 2n
            // serial) hops; upgrade them to the two-level tree. The
            // explicitly non-default choices are honored as configured.
            BarrierAlgo::Ring | BarrierAlgo::Dissemination if set.size > hier::FLAT_MAX => {
                self.barrier_hier(set, rank, hier::CLUSTER)
            }
            BarrierAlgo::Ring => self.barrier_ring(set, rank),
            BarrierAlgo::RootBroadcast => self.barrier_root_broadcast(set, rank),
            BarrierAlgo::TmcSpin => self.fab.tmc_spin_barrier(set.triplet()),
            BarrierAlgo::Dissemination => self.barrier_dissemination(set, rank),
            BarrierAlgo::Hierarchical => self.barrier_hier(set, rank, hier::CLUSTER),
        }
    }

    /// Explicit ring barrier (exposed for the ablation benches regardless
    /// of the configured default).
    pub fn barrier_ring_explicit(&self, set: ActiveSet) {
        let rank = set.rank_of(self.my_pe()).expect("not in set");
        self.drain_pending();
        self.fab.quiet();
        if set.size > 1 {
            self.barrier_ring(set, rank);
        }
    }

    /// Explicit root-broadcast barrier (for the ablation benches).
    pub fn barrier_root_broadcast_explicit(&self, set: ActiveSet) {
        let rank = set.rank_of(self.my_pe()).expect("not in set");
        self.drain_pending();
        self.fab.quiet();
        if set.size > 1 {
            self.barrier_root_broadcast(set, rank);
        }
    }

    /// Explicit dissemination barrier (for the ablation benches).
    pub fn barrier_dissemination_explicit(&self, set: ActiveSet) {
        let rank = set.rank_of(self.my_pe()).expect("not in set");
        self.drain_pending();
        self.fab.quiet();
        if set.size > 1 {
            self.barrier_dissemination(set, rank);
        }
    }

    /// Explicit hierarchical barrier (for the scaling benches).
    pub fn barrier_hier_explicit(&self, set: ActiveSet) {
        self.barrier_hier_with(set, hier::CLUSTER);
    }

    /// [`ShmemCtx::barrier_hier_explicit`] with an explicit cluster
    /// width, so the equivalence suite can exercise odd geometries on
    /// small sets.
    #[doc(hidden)]
    pub fn barrier_hier_with(&self, set: ActiveSet, cs: usize) {
        assert!(cs > 0, "cluster width must be positive");
        let rank = set.rank_of(self.my_pe()).expect("not in set");
        self.drain_pending();
        self.fab.quiet();
        if set.size > 1 {
            self.barrier_hier(set, rank, cs);
        }
    }

    /// Two-level barrier: binomial gather to each cluster leader,
    /// dissemination across the `⌈n/cs⌉` leaders, binomial release back
    /// down. Per edge and instance at most one token is outstanding, and
    /// gather/release tokens from the same sender are interchangeable
    /// across consecutive barriers (a later instance's token is strictly
    /// stronger evidence of arrival), so the `[id]`-only payload is safe
    /// under [`ShmemCtx::recv_matching`]'s stashing — the same argument
    /// as the flat dissemination rounds.
    fn barrier_hier(&self, set: ActiveSet, rank: usize, cs: usize) {
        let id = set.ident();
        let n = set.size;
        let c = rank / cs;
        let lr = rank % cs;
        let m = hier::cluster_size(c, cs, n);
        let nc = hier::n_clusters(n, cs);

        // Gather: binomial reduction tree into the cluster leader.
        let mut span = 1usize;
        while span < m {
            if lr % (2 * span) == span {
                let parent = set.pe_at(c * cs + lr - span);
                self.send_draining(parent, Q_BARRIER, TAG_BAR_HGATHER, &[id]);
                break;
            }
            if lr.is_multiple_of(2 * span) && lr + span < m {
                self.recv_matching(Q_BARRIER, |msg: &ProtoMsg| {
                    msg.tag == TAG_BAR_HGATHER && msg.payload.first() == Some(&id)
                });
            }
            span <<= 1;
        }

        // Leaders: flat dissemination over the clusters.
        if lr == 0 && nc > 1 {
            let mut dist = 1usize;
            let mut round = 0u64;
            while dist < nc {
                let to = set.pe_at(((c + dist) % nc) * cs);
                self.send_draining(to, Q_BARRIER, TAG_BAR_HDISS, &[id, round]);
                self.recv_matching(Q_BARRIER, |msg: &ProtoMsg| {
                    msg.tag == TAG_BAR_HDISS
                        && msg.payload.first() == Some(&id)
                        && msg.payload.get(1) == Some(&round)
                });
                dist <<= 1;
                round += 1;
            }
            debug_assert_eq!(round, u64::from(hier::diss_rounds(nc)));
        }

        // Release: binomial broadcast tree back down the cluster.
        if lr > 0 {
            self.recv_matching(Q_BARRIER, |msg: &ProtoMsg| {
                msg.tag == TAG_BAR_HRELEASE && msg.payload.first() == Some(&id)
            });
        }
        let mut span = 1usize;
        while span < m {
            if lr < span && lr + span < m {
                let child = set.pe_at(c * cs + lr + span);
                self.send_draining(child, Q_BARRIER, TAG_BAR_HRELEASE, &[id]);
            }
            span <<= 1;
        }
    }

    /// Dissemination barrier: in round k every member signals the member
    /// 2^k ranks ahead and waits for the signal from 2^k ranks behind —
    /// ⌈log2 n⌉ parallel rounds instead of the ring's 2n serial hops.
    fn barrier_dissemination(&self, set: ActiveSet, rank: usize) {
        let id = set.ident();
        let n = set.size;
        let mut dist = 1usize;
        let mut round = 0u64;
        while dist < n {
            let to = set.pe_at((rank + dist) % n);
            self.send_draining(to, Q_BARRIER, TAG_BAR_DISS, &[id, round]);
            self.recv_matching(Q_BARRIER, |m: &ProtoMsg| {
                m.tag == TAG_BAR_DISS && m.payload.first() == Some(&id) && m.payload.get(1) == Some(&round)
            });
            dist <<= 1;
            round += 1;
        }
    }

    fn barrier_ring(&self, set: ActiveSet, rank: usize) {
        let id = set.ident();
        let next = set.pe_at((rank + 1) % set.size);
        let m = |tag: u16| move |m: &ProtoMsg| m.tag == tag && m.payload.first() == Some(&id);
        if rank == 0 {
            // Wait phase: send the token around; its return means every
            // member reached the barrier.
            self.send_draining(next, Q_BARRIER, TAG_BAR_WAIT, &[id]);
            self.recv_matching(Q_BARRIER, m(TAG_BAR_WAIT));
            // Release phase.
            self.send_draining(next, Q_BARRIER, TAG_BAR_RELEASE, &[id]);
            self.recv_matching(Q_BARRIER, m(TAG_BAR_RELEASE));
        } else {
            self.recv_matching(Q_BARRIER, m(TAG_BAR_WAIT));
            self.send_draining(next, Q_BARRIER, TAG_BAR_WAIT, &[id]);
            self.recv_matching(Q_BARRIER, m(TAG_BAR_RELEASE));
            self.send_draining(next, Q_BARRIER, TAG_BAR_RELEASE, &[id]);
        }
    }

    fn barrier_root_broadcast(&self, set: ActiveSet, rank: usize) {
        let id = set.ident();
        let root = set.pe_at(0);
        if rank == 0 {
            for _ in 1..set.size {
                self.recv_matching(Q_BARRIER, |m: &ProtoMsg| {
                    m.tag == TAG_BAR_ARRIVE && m.payload.first() == Some(&id)
                });
            }
            for r in 1..set.size {
                self.send_draining(set.pe_at(r), Q_BARRIER, TAG_BAR_RELEASE, &[id]);
            }
        } else {
            self.send_draining(root, Q_BARRIER, TAG_BAR_ARRIVE, &[id]);
            self.recv_matching(Q_BARRIER, |m: &ProtoMsg| {
                m.tag == TAG_BAR_RELEASE && m.payload.first() == Some(&id)
            });
        }
    }

    /// Send a protocol token without stalling our own demux queue: while
    /// the destination queue is full, drain arrivals on our `queue` into
    /// the stash instead of blocking. A PE blocked in a plain send cannot
    /// consume, so on finite-buffer fabrics a cycle of full-queue senders
    /// deadlocks (e.g. overlapping dissemination-barrier rounds with
    /// 2-packet queues); draining while stalled breaks every such cycle —
    /// the software analog of Tilera's UDN interrupt handler running
    /// while a send spins on wormhole flow control.
    pub(crate) fn send_draining(&self, dest: usize, queue: usize, tag: u16, payload: &[u64]) {
        if crate::fault::blocking_protocol_sends() {
            // Fault injection (watchdog canary): the pre-fix plain
            // blocking send, which reintroduces the deadlock above.
            if let Some(p) = self.fab.probe() {
                p.set_blocked(BlockedOn::SendFull { dest, queue });
            }
            self.fab.udn_send(dest, queue, tag, payload);
            if let Some(p) = self.fab.probe() {
                p.set_blocked(BlockedOn::Running);
            }
            return;
        }
        let mut attempt = 0u32;
        let mut published = false;
        while !self.fab.udn_try_send(dest, queue, tag, payload) {
            if !published {
                // First refusal: publish where we're wedged so a stall
                // watchdog can name the full destination queue.
                if let Some(p) = self.fab.probe() {
                    p.set_blocked(BlockedOn::SendFull { dest, queue });
                }
                published = true;
            }
            if let Some(m) = self.fab.udn_try_recv(queue) {
                self.stash.borrow_mut().push(m);
                self.mirror_stash();
            } else {
                self.fab.wait_pause(attempt);
                attempt = attempt.wrapping_add(1);
            }
        }
        if published {
            if let Some(p) = self.fab.probe() {
                p.set_blocked(BlockedOn::Running);
            }
        }
    }

    /// Receive from `queue`, parking mismatched messages in the stash so
    /// overlapping protocol exchanges cannot steal each other's tokens.
    pub(crate) fn recv_matching(&self, queue: usize, pred: impl Fn(&ProtoMsg) -> bool) -> ProtoMsg {
        {
            let mut stash = self.stash.borrow_mut();
            if let Some(i) = stash.iter().position(&pred) {
                let m = stash.swap_remove(i);
                drop(stash);
                self.mirror_stash();
                return m;
            }
        }
        loop {
            let msg = self.fab.udn_recv(queue);
            if pred(&msg) {
                return msg;
            }
            self.stash.borrow_mut().push(msg);
            self.mirror_stash();
        }
    }
}
