//! Barrier synchronization (paper Section IV-C1).
//!
//! The paper's design synchronizes over the UDN: the start PE of the
//! active set generates an *active-set identification* (so overlapping
//! barrier calls on different sets can't return out of order or stall),
//! encodes it with a **wait** signal, and sends it linearly around the
//! set; when it comes back, the process repeats with a **release**
//! signal. A broadcast-release variant and the TMC spin barrier are
//! selectable for the ablation study.

use crate::active_set::ActiveSet;
use crate::collectives::hier;
use crate::ctx::{BarrierAlgo, ShmemCtx};
use crate::fabric::{BlockedOn, ProtoMsg, Q_BARRIER};

/// Ring token carrying a *wait* signal.
pub const TAG_BAR_WAIT: u16 = 10;
/// Ring token carrying a *release* signal.
pub const TAG_BAR_RELEASE: u16 = 11;
/// Arrival notification (root-broadcast variant).
pub const TAG_BAR_ARRIVE: u16 = 12;
/// Round signal of the dissemination barrier.
pub const TAG_BAR_DISS: u16 = 13;
/// Cluster-gather signal of the hierarchical barrier.
pub const TAG_BAR_HGATHER: u16 = 14;
/// Leader-dissemination round signal of the hierarchical barrier.
pub const TAG_BAR_HDISS: u16 = 15;
/// Cluster-release signal of the hierarchical barrier.
pub const TAG_BAR_HRELEASE: u16 = 16;

impl ShmemCtx {
    /// Barrier across all PEs (`shmem_barrier_all`).
    pub fn barrier_all(&self) {
        self.barrier(self.world());
    }

    /// Barrier across an active set (`shmem_barrier`). Also completes
    /// all outstanding puts (the OpenSHMEM barrier includes a quiet).
    ///
    /// # Panics
    /// Panics if this PE is not a member of `set` or the set exceeds the
    /// job size.
    pub fn barrier(&self, set: ActiveSet) {
        assert!(set.max_pe() < self.n_pes(), "active set exceeds job");
        let rank = set
            .rank_of(self.my_pe())
            .unwrap_or_else(|| panic!("PE {} not in active set {set:?}", self.my_pe()));
        self.stats.borrow_mut().barriers += 1;
        // Barrier completes outstanding nbi ops (it subsumes a quiet),
        // but without bumping the `quiets` counter — fence/quiet stats
        // stay attributable to the explicit entry points.
        self.drain_pending();
        self.fab.quiet();
        if set.size == 1 {
            return;
        }
        match self.algos.barrier {
            // Past 64 members the flat defaults pay n·⌈log₂ n⌉ (or 2n
            // serial) hops; upgrade them to the two-level tree. The
            // explicitly non-default choices are honored as configured.
            BarrierAlgo::Ring | BarrierAlgo::Dissemination if set.size > hier::FLAT_MAX => {
                self.barrier_hier(set, rank, self.cluster_width(&set))
            }
            BarrierAlgo::Ring => self.barrier_ring(set, rank),
            BarrierAlgo::RootBroadcast => self.barrier_root_broadcast(set, rank),
            BarrierAlgo::TmcSpin => self.fab.tmc_spin_barrier(set.triplet()),
            BarrierAlgo::Dissemination => self.barrier_dissemination(set, rank),
            BarrierAlgo::Hierarchical => {
                self.barrier_hier(set, rank, self.cluster_width(&set))
            }
        }
    }

    /// Explicit ring barrier (exposed for the ablation benches regardless
    /// of the configured default).
    pub fn barrier_ring_explicit(&self, set: ActiveSet) {
        let rank = set.rank_of(self.my_pe()).expect("not in set");
        self.drain_pending();
        self.fab.quiet();
        if set.size > 1 {
            self.barrier_ring(set, rank);
        }
    }

    /// Explicit root-broadcast barrier (for the ablation benches).
    pub fn barrier_root_broadcast_explicit(&self, set: ActiveSet) {
        let rank = set.rank_of(self.my_pe()).expect("not in set");
        self.drain_pending();
        self.fab.quiet();
        if set.size > 1 {
            self.barrier_root_broadcast(set, rank);
        }
    }

    /// Explicit dissemination barrier (for the ablation benches).
    pub fn barrier_dissemination_explicit(&self, set: ActiveSet) {
        let rank = set.rank_of(self.my_pe()).expect("not in set");
        self.drain_pending();
        self.fab.quiet();
        if set.size > 1 {
            self.barrier_dissemination(set, rank);
        }
    }

    /// Explicit hierarchical barrier (for the scaling benches), at the
    /// topology-aligned cluster width.
    pub fn barrier_hier_explicit(&self, set: ActiveSet) {
        self.barrier_hier_with(set, self.cluster_width(&set));
    }

    /// [`ShmemCtx::barrier_hier_explicit`] with an explicit cluster
    /// width, so the equivalence suite can exercise odd geometries on
    /// small sets.
    #[doc(hidden)]
    pub fn barrier_hier_with(&self, set: ActiveSet, cs: usize) {
        assert!(cs > 0, "cluster width must be positive");
        let rank = set.rank_of(self.my_pe()).expect("not in set");
        self.drain_pending();
        self.fab.quiet();
        if set.size > 1 {
            self.barrier_hier(set, rank, cs);
        }
    }

    /// Two-level barrier: binomial gather to each cluster leader,
    /// dissemination across the `⌈n/cs⌉` leaders, binomial release back
    /// down. Per edge and instance at most one token is outstanding, and
    /// gather/release tokens from the same sender are interchangeable
    /// across consecutive barriers (a later instance's token is strictly
    /// stronger evidence of arrival), so the `[id]`-only payload is safe
    /// under [`ShmemCtx::recv_matching`]'s stashing — the same argument
    /// as the flat dissemination rounds.
    fn barrier_hier(&self, set: ActiveSet, rank: usize, cs: usize) {
        if self.shard_aligned(&set, cs) {
            return self.barrier_hier_cells(set, rank, cs);
        }
        let id = set.ident();
        let n = set.size;
        let c = rank / cs;
        let lr = rank % cs;
        let m = hier::cluster_size(c, cs, n);
        let nc = hier::n_clusters(n, cs);

        // Gather: binomial reduction tree into the cluster leader. With
        // shard-aligned clusters every gather edge is same-worker, so
        // each absorbing recv carries the co-residency hint — the child
        // is admitted by our own gate rotation, no condvar park needed.
        let mut span = 1usize;
        while span < m {
            if lr % (2 * span) == span {
                let parent = set.pe_at(c * cs + lr - span);
                self.send_draining(parent, Q_BARRIER, TAG_BAR_HGATHER, &[id]);
                break;
            }
            if lr.is_multiple_of(2 * span) && lr + span < m {
                let child = set.pe_at(c * cs + lr + span);
                self.recv_matching_local(Q_BARRIER, self.fab.co_resident(child), |msg: &ProtoMsg| {
                    msg.tag == TAG_BAR_HGATHER && msg.payload.first() == Some(&id)
                });
            }
            span <<= 1;
        }

        // Leaders: flat dissemination over the clusters (aligned
        // clusters put every leader on a distinct worker, so these
        // recvs stay on the parked path).
        if lr == 0 && nc > 1 {
            let mut dist = 1usize;
            let mut round = 0u64;
            while dist < nc {
                let to = set.pe_at(((c + dist) % nc) * cs);
                let from = set.pe_at(((c + nc - dist) % nc) * cs);
                self.send_draining(to, Q_BARRIER, TAG_BAR_HDISS, &[id, round]);
                self.recv_matching_local(Q_BARRIER, self.fab.co_resident(from), |msg: &ProtoMsg| {
                    msg.tag == TAG_BAR_HDISS
                        && msg.payload.first() == Some(&id)
                        && msg.payload.get(1) == Some(&round)
                });
                dist <<= 1;
                round += 1;
            }
            debug_assert_eq!(round, u64::from(hier::diss_rounds(nc)));
        }

        // Release: binomial broadcast tree back down the cluster (the
        // parent is same-worker under aligned clusters — hint as above).
        if lr > 0 {
            let parent = set.pe_at(c * cs + hier::bcast_parent(lr));
            self.recv_matching_local(Q_BARRIER, self.fab.co_resident(parent), |msg: &ProtoMsg| {
                msg.tag == TAG_BAR_HRELEASE && msg.payload.first() == Some(&id)
            });
        }
        let mut span = 1usize;
        while span < m {
            if lr < span && lr + span < m {
                let child = set.pe_at(c * cs + lr + span);
                self.send_draining(child, Q_BARRIER, TAG_BAR_HRELEASE, &[id]);
            }
            span <<= 1;
        }
    }

    /// Counter transport of the hierarchical barrier, used when
    /// clusters coincide exactly with the engine's worker shards
    /// ([`ShmemCtx::shard_aligned`]): the intra-cluster gather and
    /// release carry **no messages at all**. Members fetch-add their
    /// leader's arrival cell (the last arriver notifies the parked
    /// leader), the leader consumes `m - 1` arrivals, runs the
    /// unchanged inter-leader dissemination over the channel (leaders
    /// sit on distinct workers), bumps the release epoch, and wakes the
    /// whole cluster with **one** notify sweep. Members wait on the
    /// epoch through
    /// [`sync_cell_wait_change`](crate::fabric::Fabric::sync_cell_wait_change)
    /// — a short gate-yielding poll, then parked with the gate
    /// released, so waiting members drop out of the FIFO rotation
    /// instead of burning a thread wake per rotation per member.
    /// Compared to the message path this removes every intra-cluster
    /// send, packet accept, and per-edge condvar round trip — the point
    /// of shard alignment.
    ///
    /// Correctness of cell reuse across instances: a member reads the
    /// epoch *before* adding its arrival, so a release between those
    /// two points still satisfies its wait; the leader subtracts the
    /// arrivals it consumed *before* releasing, and no member can start
    /// a later barrier (and re-add) until it is released from this one
    /// — so counts from different instances, sets, or geometries never
    /// mix. Ordering is AcqRel through the cells (see
    /// [`crate::fabric::Fabric::sync_cell_add`]), giving the same
    /// all-prior-writes-visible guarantee the message barrier gets from
    /// channel edges. Every arrival and release is a counted op and
    /// parked waiters publish [`BlockedOn::CellWait`], so the stall
    /// watchdog both sees the barrier progressing and can name the cell
    /// a wedged member is stuck on.
    fn barrier_hier_cells(&self, set: ActiveSet, rank: usize, cs: usize) {
        const ARRIVALS: usize = 0;
        const EPOCH: usize = 1;
        let n = set.size;
        let c = rank / cs;
        let lr = rank % cs;
        let m = hier::cluster_size(c, cs, n);
        let nc = hier::n_clusters(n, cs);
        let leader = set.pe_at(c * cs);
        if lr == 0 {
            let mut cur = self.fab.sync_cell_load(leader, ARRIVALS);
            while (cur as usize) < m - 1 {
                cur = self.fab.sync_cell_wait_change(leader, ARRIVALS, cur);
            }
            // Consume exactly this instance's arrivals (wrapping add of
            // the negation), restoring the cell for the next instance
            // before anyone is released into it.
            self.fab.sync_cell_add(leader, ARRIVALS, (m as u64 - 1).wrapping_neg());
            if nc > 1 {
                let id = set.ident();
                let mut dist = 1usize;
                let mut round = 0u64;
                while dist < nc {
                    let to = set.pe_at(((c + dist) % nc) * cs);
                    self.send_draining(to, Q_BARRIER, TAG_BAR_HDISS, &[id, round]);
                    self.recv_matching(Q_BARRIER, |msg: &ProtoMsg| {
                        msg.tag == TAG_BAR_HDISS
                            && msg.payload.first() == Some(&id)
                            && msg.payload.get(1) == Some(&round)
                    });
                    dist <<= 1;
                    round += 1;
                }
            }
            self.fab.sync_cell_add(leader, EPOCH, 1);
            self.fab.sync_cell_notify(leader, EPOCH);
        } else {
            let e0 = self.fab.sync_cell_load(leader, EPOCH);
            // Only the arrival that completes the gather wakes the
            // leader — intermediate arrivals change the count without a
            // notify, which `sync_cell_wait_change` permits.
            if self.fab.sync_cell_add(leader, ARRIVALS, 1) as usize == m - 2 {
                self.fab.sync_cell_notify(leader, ARRIVALS);
            }
            self.fab.sync_cell_wait_change(leader, EPOCH, e0);
        }
    }

    /// Dissemination barrier: in round k every member signals the member
    /// 2^k ranks ahead and waits for the signal from 2^k ranks behind —
    /// ⌈log2 n⌉ parallel rounds instead of the ring's 2n serial hops.
    fn barrier_dissemination(&self, set: ActiveSet, rank: usize) {
        let id = set.ident();
        let n = set.size;
        let mut dist = 1usize;
        let mut round = 0u64;
        while dist < n {
            let to = set.pe_at((rank + dist) % n);
            self.send_draining(to, Q_BARRIER, TAG_BAR_DISS, &[id, round]);
            self.recv_matching(Q_BARRIER, |m: &ProtoMsg| {
                m.tag == TAG_BAR_DISS && m.payload.first() == Some(&id) && m.payload.get(1) == Some(&round)
            });
            dist <<= 1;
            round += 1;
        }
    }

    fn barrier_ring(&self, set: ActiveSet, rank: usize) {
        let id = set.ident();
        let next = set.pe_at((rank + 1) % set.size);
        let m = |tag: u16| move |m: &ProtoMsg| m.tag == tag && m.payload.first() == Some(&id);
        if rank == 0 {
            // Wait phase: send the token around; its return means every
            // member reached the barrier.
            self.send_draining(next, Q_BARRIER, TAG_BAR_WAIT, &[id]);
            self.recv_matching(Q_BARRIER, m(TAG_BAR_WAIT));
            // Release phase.
            self.send_draining(next, Q_BARRIER, TAG_BAR_RELEASE, &[id]);
            self.recv_matching(Q_BARRIER, m(TAG_BAR_RELEASE));
        } else {
            self.recv_matching(Q_BARRIER, m(TAG_BAR_WAIT));
            self.send_draining(next, Q_BARRIER, TAG_BAR_WAIT, &[id]);
            self.recv_matching(Q_BARRIER, m(TAG_BAR_RELEASE));
            self.send_draining(next, Q_BARRIER, TAG_BAR_RELEASE, &[id]);
        }
    }

    fn barrier_root_broadcast(&self, set: ActiveSet, rank: usize) {
        let id = set.ident();
        let root = set.pe_at(0);
        if rank == 0 {
            for _ in 1..set.size {
                self.recv_matching(Q_BARRIER, |m: &ProtoMsg| {
                    m.tag == TAG_BAR_ARRIVE && m.payload.first() == Some(&id)
                });
            }
            for r in 1..set.size {
                self.send_draining(set.pe_at(r), Q_BARRIER, TAG_BAR_RELEASE, &[id]);
            }
        } else {
            self.send_draining(root, Q_BARRIER, TAG_BAR_ARRIVE, &[id]);
            self.recv_matching(Q_BARRIER, |m: &ProtoMsg| {
                m.tag == TAG_BAR_RELEASE && m.payload.first() == Some(&id)
            });
        }
    }

    /// Send a protocol token without stalling our own demux queue: while
    /// the destination queue is full, drain arrivals on our `queue` into
    /// the stash instead of blocking. A PE blocked in a plain send cannot
    /// consume, so on finite-buffer fabrics a cycle of full-queue senders
    /// deadlocks (e.g. overlapping dissemination-barrier rounds with
    /// 2-packet queues); draining while stalled breaks every such cycle —
    /// the software analog of Tilera's UDN interrupt handler running
    /// while a send spins on wormhole flow control.
    pub(crate) fn send_draining(&self, dest: usize, queue: usize, tag: u16, payload: &[u64]) {
        if crate::fault::blocking_protocol_sends() {
            // Fault injection (watchdog canary): the pre-fix plain
            // blocking send, which reintroduces the deadlock above.
            if let Some(p) = self.fab.probe() {
                p.set_blocked(BlockedOn::SendFull { dest, queue });
            }
            self.fab.udn_send(dest, queue, tag, payload);
            if let Some(p) = self.fab.probe() {
                p.set_blocked(BlockedOn::Running);
            }
            return;
        }
        let mut attempt = 0u32;
        let mut published = false;
        while !self.fab.udn_try_send(dest, queue, tag, payload) {
            if !published {
                // First refusal: publish where we're wedged so a stall
                // watchdog can name the full destination queue.
                if let Some(p) = self.fab.probe() {
                    p.set_blocked(BlockedOn::SendFull { dest, queue });
                }
                published = true;
            }
            if let Some(m) = self.fab.udn_try_recv(queue) {
                self.stash.borrow_mut().push(m);
                self.mirror_stash();
            } else {
                self.fab.wait_pause(attempt);
                attempt = attempt.wrapping_add(1);
            }
        }
        if published {
            if let Some(p) = self.fab.probe() {
                p.set_blocked(BlockedOn::Running);
            }
        }
    }

    /// Receive from `queue`, parking mismatched messages in the stash so
    /// overlapping protocol exchanges cannot steal each other's tokens.
    pub(crate) fn recv_matching(&self, queue: usize, pred: impl Fn(&ProtoMsg) -> bool) -> ProtoMsg {
        self.recv_matching_local(queue, false, pred)
    }

    /// [`ShmemCtx::recv_matching`] with a co-residency hint: when
    /// `local` is true the expected sender shares this PE's worker, so
    /// the engine waits with [`crate::fabric::Fabric::udn_recv_local`]
    /// (poll + gate yield) instead of the parked receive. Purely a wait-strategy
    /// hint — a wrong `local` is slower, never wrong.
    pub(crate) fn recv_matching_local(
        &self,
        queue: usize,
        local: bool,
        pred: impl Fn(&ProtoMsg) -> bool,
    ) -> ProtoMsg {
        {
            let mut stash = self.stash.borrow_mut();
            if let Some(i) = stash.iter().position(&pred) {
                let m = stash.swap_remove(i);
                drop(stash);
                self.mirror_stash();
                return m;
            }
        }
        loop {
            let msg = if local {
                self.fab.udn_recv_local(queue)
            } else {
                self.fab.udn_recv(queue)
            };
            if pred(&msg) {
                return msg;
            }
            self.stash.borrow_mut().push(msg);
            self.mirror_stash();
        }
    }
}
