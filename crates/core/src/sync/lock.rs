//! Distributed locks: `shmem_set_lock` / `shmem_clear_lock` /
//! `shmem_test_lock`.
//!
//! The lock object is a symmetric `i64`; by convention (as in common
//! OpenSHMEM implementations) PE 0's copy is the arbiter. Acquisition is
//! test-and-set with exponential backoff over the symmetric atomic
//! compare-and-swap.

use crate::ctx::ShmemCtx;
use crate::fabric::RmwWidth;
use crate::symm::{AddrClass, Sym};

impl ShmemCtx {
    fn lock_off(&self, lock: &Sym<i64>) -> usize {
        assert_eq!(
            lock.class(),
            AddrClass::Dynamic,
            "lock objects must be dynamic symmetric variables"
        );
        assert!(!lock.is_empty(), "lock object must have at least one element");
        let off = self.go(0, lock.offset());
        assert_eq!(off % 8, 0, "lock must be 8-byte aligned");
        off
    }

    /// `shmem_set_lock`: acquire, blocking with exponential backoff.
    pub fn set_lock(&self, lock: &Sym<i64>) {
        let off = self.lock_off(lock);
        let me = self.my_pe() as u64 + 1;
        self.blocked_while(crate::fabric::BlockedOn::LockWait { offset: off }, || {
            let mut attempt = 0u32;
            loop {
                if self.fab.arena_cswap(off, 0, me, RmwWidth::W64) == 0 {
                    return;
                }
                self.fab.wait_pause(attempt);
                attempt += 1;
            }
        });
    }

    /// `shmem_test_lock`: one acquisition attempt; `true` if acquired.
    pub fn test_lock(&self, lock: &Sym<i64>) -> bool {
        let off = self.lock_off(lock);
        let me = self.my_pe() as u64 + 1;
        self.fab.arena_cswap(off, 0, me, RmwWidth::W64) == 0
    }

    /// `shmem_clear_lock`: release.
    ///
    /// # Panics
    /// Panics if this PE does not hold the lock.
    pub fn clear_lock(&self, lock: &Sym<i64>) {
        let off = self.lock_off(lock);
        let me = self.my_pe() as u64 + 1;
        self.fab.quiet(); // critical-section stores drain first
        let old = self.fab.arena_cswap(off, me, 0, RmwWidth::W64);
        assert_eq!(
            old, me,
            "PE {} released a lock it does not hold (owner word {old})",
            self.my_pe()
        );
    }
}
