//! Execution engines.
//!
//! * [`native`] — one real thread per PE, real shared memory, wall-clock
//!   time. The engine a downstream application runs on.
//! * [`timed`] — the same protocol code under the virtual-time
//!   cooperative scheduler with calibrated Tilera costs. The engine the
//!   paper-figure harness runs on.

pub mod multichip;
pub mod native;
pub mod timed;
