//! Execution engines.
//!
//! * [`native`] — one real thread per PE, real shared memory, wall-clock
//!   time. The engine a downstream application runs on.
//! * [`timed`] — the same protocol code under the virtual-time
//!   cooperative scheduler with calibrated Tilera costs. The engine the
//!   paper-figure harness runs on.
//! * [`multichip`] — the timed engine spanning several simulated chips
//!   connected by mPIPE links (the paper's Section VI future work).
//! * [`coop`] — the native data plane multiplexed M:N (N PEs over M
//!   worker threads, wall-clock time), for 256–1024-PE scaling runs an
//!   order of magnitude past the host's core count.
//!
//! All four are instantiations of one contract: [`backend`] defines
//! [`backend::EngineBackend`], consumed by the generic
//! [`Launcher`](crate::runtime::Launcher), so liveness watchdogs, the
//! fault plane, per-PE probes, and trace collection apply uniformly.

pub mod backend;
pub mod coop;
pub mod multichip;
pub mod native;
pub mod timed;
