//! Execution engines.
//!
//! * [`native`] — one real thread per PE, real shared memory, wall-clock
//!   time. The engine a downstream application runs on.
//! * [`timed`] — the same protocol code under the virtual-time
//!   cooperative scheduler with calibrated Tilera costs. The engine the
//!   paper-figure harness runs on.
//! * [`multichip`] — the timed engine spanning several simulated chips
//!   connected by mPIPE links (the paper's Section VI future work).
//!
//! All three are instantiations of one contract: [`backend`] defines
//! [`backend::EngineBackend`], consumed by the generic
//! [`Launcher`](crate::runtime::Launcher), so liveness watchdogs, the
//! fault plane, per-PE probes, and trace collection apply uniformly.

pub mod backend;
pub mod multichip;
pub mod native;
pub mod timed;
