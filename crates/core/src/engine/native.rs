//! The native engine: real threads, real shared memory, wall time.

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Instant;

use substrate::sync::Mutex;
use tmc::barrier::SpinBarrier;
use tmc::common::CommonMemory;
use udn::fabric::UdnEndpoint;

use crate::fabric::{BlockedOn, Fabric, PeProbe, ProtoMsg, RmwOp, RmwWidth, Q_SERVICE};
use crate::service::TAG_ABORT;
use crate::trace::{TraceEvent, TraceKind, TraceSink};

/// Cheap wall-clock for trace timestamps: the invariant TSC scaled to
/// nanoseconds (one `rdtsc` is ~2x cheaper than `clock_gettime` here,
/// and trace records are the native data plane's hottest timestamp
/// consumer). The TSC rate is calibrated once per process against the
/// monotonic clock; non-x86 builds fall back to `Instant`.
pub struct FastClock {
    base: Instant,
    #[cfg(target_arch = "x86_64")]
    base_tsc: u64,
    #[cfg(target_arch = "x86_64")]
    ns_per_tick: f64,
}

#[cfg(target_arch = "x86_64")]
fn tsc_ns_per_tick() -> f64 {
    use std::sync::OnceLock;
    static RATE: OnceLock<f64> = OnceLock::new();
    *RATE.get_or_init(|| {
        // Calibrate over ~200 us of busy-waiting; the invariant TSC is
        // stable enough that this once-per-process sample holds.
        let t0 = Instant::now();
        let c0 = unsafe { core::arch::x86_64::_rdtsc() };
        while t0.elapsed() < std::time::Duration::from_micros(200) {
            std::hint::spin_loop();
        }
        let dt = t0.elapsed().as_nanos() as f64;
        let dc = (unsafe { core::arch::x86_64::_rdtsc() } - c0) as f64;
        if dc > 0.0 {
            dt / dc
        } else {
            0.0 // non-monotonic TSC: treat every tick as zero ns and
                // let `max(ns)` degrade to coarse Instant readings
        }
    })
}

impl FastClock {
    pub fn new() -> Self {
        Self {
            base: Instant::now(),
            #[cfg(target_arch = "x86_64")]
            base_tsc: unsafe { core::arch::x86_64::_rdtsc() },
            #[cfg(target_arch = "x86_64")]
            ns_per_tick: tsc_ns_per_tick(),
        }
    }

    /// Nanoseconds since the clock was created.
    #[inline]
    pub fn now_ns(&self) -> u64 {
        #[cfg(target_arch = "x86_64")]
        {
            if self.ns_per_tick > 0.0 {
                let dc = unsafe { core::arch::x86_64::_rdtsc() }.wrapping_sub(self.base_tsc);
                return (dc as f64 * self.ns_per_tick) as u64;
            }
        }
        self.base.elapsed().as_nanos() as u64
    }
}

impl Default for FastClock {
    fn default() -> Self {
        Self::new()
    }
}

/// Shared, immutable state of one native launch.
pub struct NativeShared {
    pub arena: Arc<CommonMemory>,
    pub privates: Vec<Arc<CommonMemory>>,
    pub npes: usize,
    pub partition_bytes: usize,
    pub device: tile_arch::device::Device,
    pub start: FastClock,
    /// Lazily-created TMC spin barriers, one per distinct active set.
    pub spin_barriers: Mutex<HashMap<(usize, u32, usize), Arc<SpinBarrier>>>,
    /// Set when any PE panics, so PEs blocked in protocol waits abort
    /// instead of hanging the job (SHMEM jobs are all-or-nothing).
    pub aborted: AtomicBool,
    /// Per-PE progress/blocked-state probes (watchdog introspection).
    pub probes: Vec<Arc<PeProbe>>,
    /// Per-PE probes for the interrupt-service threads, so a stall
    /// inside a redirected-RMA handler is attributed to the handler
    /// rather than showing up only as its clients' reply waits.
    pub service_probes: Vec<Arc<PeProbe>>,
    /// Wall-clock operation trace, when enabled.
    pub trace: Option<Arc<TraceSink>>,
    /// Send-side fabric handle for abort wakeups (can reach every tile).
    pub waker: udn::fabric::UdnSender,
}

impl NativeShared {
    /// Flag the job aborted and wake every context parked in a blocking
    /// protocol receive: one zero-payload [`TAG_ABORT`] packet per tile
    /// per queue. `try_send` keeps the aborter itself from stalling on
    /// a backed-up bounded queue — such a queue's receiver is not
    /// parked on empty, and the receive path's coarse fallback timeout
    /// covers the remaining race.
    pub fn abort(&self) {
        self.aborted.store(true, Ordering::Release);
        for tile in 0..self.npes {
            for q in 0..udn::packet::NUM_QUEUES {
                let _ = self.waker.try_send(tile, q, TAG_ABORT, &[]);
            }
        }
    }
}

impl crate::watch::WallShared for NativeShared {
    fn npes(&self) -> usize {
        self.npes
    }

    fn probes(&self) -> &[Arc<PeProbe>] {
        &self.probes
    }

    fn service_probes(&self) -> &[Arc<PeProbe>] {
        &self.service_probes
    }

    fn trace_sink(&self) -> Option<&Arc<TraceSink>> {
        self.trace.as_ref()
    }

    fn abort_job(&self) {
        self.abort();
    }
}

/// Per-PE native fabric. Cloning shares the same endpoint queues — the
/// interrupt-service thread runs on a clone and consumes only
/// [`Q_SERVICE`].
pub struct NativeFabric {
    pub(crate) shared: Arc<NativeShared>,
    pub(crate) pe: usize,
    pub(crate) udn: UdnEndpoint,
    /// Present only on the PE's main-thread fabric: the service clone
    /// must not overwrite the main thread's blocked state.
    probe: Option<Arc<PeProbe>>,
    /// Trace-sink lane this context owns exclusively: `pe` for the main
    /// thread, `npes + pe` for the interrupt-service thread.
    lane: usize,
}

impl NativeFabric {
    pub fn new(shared: Arc<NativeShared>, pe: usize, udn: UdnEndpoint) -> Self {
        Self {
            shared,
            pe,
            udn,
            probe: None,
            lane: pe,
        }
    }

    /// A fabric for the PE's **main thread**, carrying the PE's probe so
    /// blocking waits publish their state to the watchdog.
    pub fn new_probed(shared: Arc<NativeShared>, pe: usize, udn: UdnEndpoint) -> Self {
        let probe = Some(shared.probes[pe].clone());
        Self {
            shared,
            pe,
            udn,
            probe,
            lane: pe,
        }
    }

    /// A fabric for the PE's **interrupt-service thread**, carrying the
    /// PE's *service* probe (distinct from the main-thread probe, which
    /// the service context must not overwrite).
    pub fn new_service(shared: Arc<NativeShared>, pe: usize, udn: UdnEndpoint) -> Self {
        let probe = Some(shared.service_probes[pe].clone());
        let lane = shared.npes + pe;
        Self {
            shared,
            pe,
            udn,
            probe,
            lane,
        }
    }

    /// A clone for the PE's interrupt-service thread, carrying the
    /// service probe.
    pub fn service_clone(&self) -> NativeFabric {
        NativeFabric {
            shared: self.shared.clone(),
            pe: self.pe,
            udn: self.udn.clone(),
            probe: Some(self.shared.service_probes[self.pe].clone()),
            lane: self.shared.npes + self.pe,
        }
    }

    fn private(&self) -> &CommonMemory {
        &self.shared.privates[self.pe]
    }

    /// Count one completed (state-changing) fabric operation toward the
    /// stall watchdog, tick the fault plane's op clock, and serve any
    /// `SlowPe` or `PanicPe` fault targeting this PE.
    #[inline]
    fn progress(&self) {
        if let Some(p) = &self.probe {
            p.bump();
        }
        crate::fault::note_op();
        if crate::fault::panic_pe_now(self.pe) {
            panic!("PE {}: injected PanicPe fault (crashing-tenant model)", self.pe);
        }
        if let Some(us) = crate::fault::slow_pe_delay_us(self.pe) {
            self.sleep_checking_abort(us);
        }
    }

    /// Count one spin retry (a poll/CAS that changed no state).
    #[inline]
    fn spin_retry(&self) {
        if let Some(p) = &self.probe {
            p.spin();
        }
    }

    /// Sleep `micros` µs in abort-checking chunks so an injected stall
    /// cannot outlive a job teardown: if a peer panics mid-stall, this
    /// context aborts within one chunk instead of holding the job open.
    fn sleep_checking_abort(&self, micros: u64) {
        let mut left = std::time::Duration::from_micros(micros);
        while !left.is_zero() {
            let step = left.min(std::time::Duration::from_millis(50));
            std::thread::sleep(step);
            left -= step;
            if self.shared.aborted.load(Ordering::Acquire) {
                panic!("PE {}: aborting — another PE panicked", self.pe);
            }
        }
    }

    fn set_blocked(&self, state: BlockedOn) {
        if let Some(p) = &self.probe {
            p.set_blocked(state);
        }
    }

    /// Record an instantaneous wall-clock trace event.
    fn trace(&self, kind: TraceKind, peer: usize, bytes: u64) {
        if let Some(sink) = &self.shared.trace {
            let now = desim::time::SimTime::from_ns(self.shared.start.now_ns());
            sink.record_lane(
                self.lane,
                TraceEvent {
                    pe: self.pe,
                    kind,
                    start: now,
                    end: now,
                    peer,
                    bytes,
                },
            );
        }
    }

    /// Turn a received packet into a protocol message, intercepting the
    /// job-abort wakeup so [`TAG_ABORT`] never reaches protocol code.
    fn accept(&self, p: udn::packet::Packet) -> ProtoMsg {
        if p.header.tag == TAG_ABORT {
            panic!("PE {}: aborting — another PE panicked", self.pe);
        }
        self.progress();
        ProtoMsg {
            src: p.header.src as usize,
            tag: p.header.tag,
            payload: p.payload,
        }
    }
}

impl Fabric for NativeFabric {
    fn pe(&self) -> usize {
        self.pe
    }

    fn npes(&self) -> usize {
        self.shared.npes
    }

    fn partition_bytes(&self) -> usize {
        self.shared.partition_bytes
    }

    fn device(&self) -> tile_arch::device::Device {
        self.shared.device
    }

    fn udn_send(&self, dest: usize, queue: usize, tag: u16, payload: &[u64]) {
        if let Some(us) = crate::fault::protocol_send_delay_us() {
            self.sleep_checking_abort(us);
        }
        // Q_SERVICE is consumed by the destination's service thread; the
        // routing is by queue, so a plain send reaches it.
        self.udn.send(dest, queue, tag, payload);
        self.trace(TraceKind::UdnSend, dest, 8 * payload.len() as u64);
        self.progress();
    }

    fn udn_try_send(&self, dest: usize, queue: usize, tag: u16, payload: &[u64]) -> bool {
        // A `ClampQueueDepth` fault squeezes the *effective* queue depth
        // below the fabric's real bound, forcing the draining-send
        // backpressure path mid-run.
        if let Some(depth) = crate::fault::clamp_queue_depth() {
            if self.udn.dest_queue_len(dest, queue) >= depth {
                return false;
            }
        }
        let sent = self.udn.try_send(dest, queue, tag, payload);
        if sent {
            if let Some(us) = crate::fault::protocol_send_delay_us() {
                self.sleep_checking_abort(us);
            }
            self.trace(TraceKind::UdnSend, dest, 8 * payload.len() as u64);
            self.progress();
        } else {
            self.spin_retry();
        }
        sent
    }

    fn udn_recv(&self, queue: usize) -> ProtoMsg {
        // Opportunistic poll before parking: in a protocol round-trip
        // the reply is usually queued already or arrives within a
        // scheduler quantum, and a yield is cheaper than a condvar park
        // plus futex wake — especially when PEs outnumber cores.
        for _ in 0..4 {
            if let Some(p) = self.udn.try_recv(queue) {
                return self.accept(p);
            }
            std::thread::yield_now();
        }
        self.set_blocked(BlockedOn::Recv { queue });
        loop {
            // Park on the queue's condvar; a peer's send (or the abort
            // broadcast's TAG_ABORT packet) wakes us immediately. The
            // coarse timeout is only an abort-race fallback — a full
            // bounded queue can swallow the abort packet — never the
            // normal wake path.
            if let Some(p) = self.udn.recv_timeout(queue, std::time::Duration::from_millis(250)) {
                self.set_blocked(BlockedOn::Running);
                return self.accept(p);
            }
            if self.shared.aborted.load(Ordering::Acquire) {
                panic!("PE {}: aborting — another PE panicked", self.pe);
            }
        }
    }

    fn udn_try_recv(&self, queue: usize) -> Option<ProtoMsg> {
        self.udn.try_recv(queue).map(|p| self.accept(p))
    }

    fn arena_copy(&self, dst: usize, src: usize, len: usize) {
        self.shared.arena.copy_within(dst, src, len);
        self.trace(TraceKind::Copy, usize::MAX, len as u64);
        self.progress();
    }

    fn arena_write(&self, dst: usize, src: &[u8]) {
        self.shared.arena.write_bytes(dst, src);
        self.trace(TraceKind::Copy, usize::MAX, src.len() as u64);
        self.progress();
    }

    fn arena_read(&self, src: usize, dst: &mut [u8]) {
        self.shared.arena.read_bytes(src, dst);
        self.trace(TraceKind::Copy, usize::MAX, dst.len() as u64);
        self.progress();
    }

    fn arena_read_u64(&self, off: usize) -> u64 {
        self.shared.arena.atomic_u64(off).load(Ordering::Acquire)
    }

    fn arena_read_u32(&self, off: usize) -> u32 {
        self.shared.arena.atomic_u32(off).load(Ordering::Acquire)
    }

    fn arena_write_u64(&self, off: usize, v: u64) {
        self.shared.arena.atomic_u64(off).store(v, Ordering::Release);
        // A flag store is a state change (useful work); atomic *loads*
        // stay uncounted so polling can never masquerade as progress.
        self.progress();
    }

    fn arena_rmw(&self, off: usize, op: RmwOp, operand: u64, width: RmwWidth) -> u64 {
        self.trace(TraceKind::Atomic, usize::MAX, width.bytes() as u64);
        self.progress();
        let arena = &self.shared.arena;
        match width {
            RmwWidth::W64 => {
                let a = arena.atomic_u64(off);
                match op {
                    RmwOp::Add => a.fetch_add(operand, Ordering::AcqRel),
                    RmwOp::Swap => a.swap(operand, Ordering::AcqRel),
                    RmwOp::And => a.fetch_and(operand, Ordering::AcqRel),
                    RmwOp::Or => a.fetch_or(operand, Ordering::AcqRel),
                    RmwOp::Xor => a.fetch_xor(operand, Ordering::AcqRel),
                }
            }
            RmwWidth::W32 => {
                let a = arena.atomic_u32(off);
                let v = operand as u32;
                let old = match op {
                    RmwOp::Add => a.fetch_add(v, Ordering::AcqRel),
                    RmwOp::Swap => a.swap(v, Ordering::AcqRel),
                    RmwOp::And => a.fetch_and(v, Ordering::AcqRel),
                    RmwOp::Or => a.fetch_or(v, Ordering::AcqRel),
                    RmwOp::Xor => a.fetch_xor(v, Ordering::AcqRel),
                };
                old as u64
            }
        }
    }

    fn arena_cswap(&self, off: usize, cond: u64, new: u64, width: RmwWidth) -> u64 {
        // Only a *successful* exchange is useful work (and worth a trace
        // event); a failed retry is a spin, or a livelocked CAS loop
        // would look live to the watchdog while flooding the trace sink.
        let arena = &self.shared.arena;
        let (old, swapped) = match width {
            RmwWidth::W64 => {
                match arena.atomic_u64(off).compare_exchange(
                    cond,
                    new,
                    Ordering::AcqRel,
                    Ordering::Acquire,
                ) {
                    Ok(old) => (old, true),
                    Err(old) => (old, false),
                }
            }
            RmwWidth::W32 => {
                match arena.atomic_u32(off).compare_exchange(
                    cond as u32,
                    new as u32,
                    Ordering::AcqRel,
                    Ordering::Acquire,
                ) {
                    Ok(old) => (old as u64, true),
                    Err(old) => (old as u64, false),
                }
            }
        };
        if swapped {
            self.trace(TraceKind::Atomic, usize::MAX, width.bytes() as u64);
            self.progress();
        } else {
            self.spin_retry();
        }
        old
    }

    fn private_write(&self, off: usize, src: &[u8]) {
        self.private().write_bytes(off, src);
        self.progress();
    }

    fn private_read(&self, off: usize, dst: &mut [u8]) {
        self.private().read_bytes(off, dst);
        self.progress();
    }

    fn private_to_arena(&self, arena_dst: usize, priv_src: usize, len: usize) {
        CommonMemory::copy_between(&self.shared.arena, arena_dst, self.private(), priv_src, len);
        self.trace(TraceKind::Copy, usize::MAX, len as u64);
        self.progress();
    }

    fn arena_to_private(&self, priv_dst: usize, arena_src: usize, len: usize) {
        CommonMemory::copy_between(self.private(), priv_dst, &self.shared.arena, arena_src, len);
        self.trace(TraceKind::Copy, usize::MAX, len as u64);
        self.progress();
    }

    fn arena_raw(&self, off: usize, len: usize) -> *mut u8 {
        self.shared.arena.raw(off, len)
    }

    fn private_raw(&self, off: usize, len: usize) -> *mut u8 {
        self.private().raw(off, len)
    }

    fn tmc_spin_barrier(&self, set: (usize, u32, usize)) {
        let b = {
            let mut map = self.shared.spin_barriers.lock();
            map.entry(set)
                .or_insert_with(|| Arc::new(SpinBarrier::new(set.2)))
                .clone()
        };
        b.wait();
        self.progress();
    }

    fn probe(&self) -> Option<&PeProbe> {
        self.probe.as_deref()
    }

    fn quiet(&self) {
        tmc::fence::mem_fence();
    }

    fn wait_pause(&self, attempt: u32) {
        self.spin_retry();
        // Check the abort flag occasionally so polling waits can't hang
        // a job whose peer died.
        if attempt > 0 && attempt.is_multiple_of(65536) && self.shared.aborted.load(Ordering::Acquire) {
            panic!("PE {}: aborting — another PE panicked", self.pe);
        }
        if attempt > 1024 {
            std::thread::yield_now();
        } else {
            std::hint::spin_loop();
        }
    }

    fn compute(&self, _cycles: f64) {
        // Native computation takes its own real time.
    }

    fn now_ns(&self) -> f64 {
        self.shared.start.now_ns() as f64
    }

    fn inject_delay_us(&self, micros: u64) {
        self.sleep_checking_abort(micros);
    }
}

/// Marker re-export so service code can name the queue it owns.
pub const SERVICE_QUEUE: usize = Q_SERVICE;
