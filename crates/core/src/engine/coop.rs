//! The cooperative M:N engine: N PEs (up to 1024) multiplexed over M
//! worker threads, wall-clock time.
//!
//! The native engine pins one OS thread per PE, which caps realistic
//! runs at roughly the host's core count. This backend keeps the native
//! data plane — real shared memory, real UDN channels, real wall time —
//! but admits at most one *running* context per worker through a FIFO
//! admission gate, so a 1024-PE job is M runnable threads plus N−M
//! parked ones instead of N busy-spinning threads thrashing the
//! scheduler.
//!
//! Scheduling contract (DESIGN.md §6):
//!
//! * Every context (PE main + interrupt-service) is still a real OS
//!   thread; worker `w = pe / ceil(npes / workers)` owns an admission
//!   [`Gate`], and a context may touch the fabric only while holding
//!   its worker's gate.
//! * A context **releases** its gate around every genuine wait — a
//!   parked receive, a blocking send into a full queue, an injected
//!   fault delay — so siblings of the same worker run meanwhile.
//! * A context **yields** its gate (release + requeue at the FIFO tail)
//!   from `wait_pause` whenever siblings are queued, so spin waits
//!   (flag polls, lock backoff, the TMC spin barrier) cannot starve the
//!   very context that would satisfy them.
//! * While queued for admission a context publishes
//!   [`BlockedOn::Descheduled`]: runnable, just not scheduled. The
//!   wall-clock watchdog must not treat that as a livelock symptom —
//!   see [`crate::watch`] and `JobWatch::oversubscription`.
//!
//! The symmetric heap is sharded **per worker** ([`ShardedArena`]): one
//! arena allocation per worker covering its PEs' partitions, located by
//! pure offset arithmetic — no locks, no allocation on any access. The
//! trace sink likewise runs one lock-free lane per worker; the gate's
//! one-running-context-per-worker invariant is exactly the
//! single-writer guarantee each lane needs.

use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::Thread;

use cachesim::homing::Homing;
use substrate::sync::Mutex;
use tmc::common::CommonMemory;
use udn::fabric::UdnEndpoint;

use crate::ctx::ShmemCtx;
use crate::engine::backend::{EngineBackend, EngineOutcome, WatchPlane};
use crate::engine::native::FastClock;
use crate::fabric::{BlockedOn, Fabric, PeProbe, ProtoMsg, RmwOp, RmwWidth};
use crate::service::{service_loop, TAG_ABORT};
use crate::trace::{TraceEvent, TraceKind, TraceSink};
use crate::watch::WallShared;

/// FIFO admission gate: at most one holder at a time, waiters queued in
/// arrival order and admitted by direct handoff (the releaser picks the
/// next holder and unparks it; `held` never clears while waiters queue,
/// so barging is impossible and admission is starvation-free).
struct Gate {
    inner: Mutex<GateInner>,
    /// Queued-waiter count, readable without the lock: `wait_pause`
    /// polls it on every spin to decide whether to yield the gate.
    waiters: AtomicUsize,
}

struct GateInner {
    held: bool,
    queue: VecDeque<(usize, Thread)>,
}

impl Gate {
    fn new() -> Self {
        Self {
            inner: Mutex::new(GateInner {
                held: false,
                queue: VecDeque::new(),
            }),
            waiters: AtomicUsize::new(0),
        }
    }
}

/// The symmetric-heap arena, sharded per worker: worker `w`'s shard is
/// one contiguous allocation holding the partitions of PEs
/// `[w*block, min(npes, (w+1)*block))`. Global offsets locate their
/// shard by pure arithmetic — every single access stays inside one PE's
/// partition (the `ShmemCtx::go` contract), so only the explicit
/// arena-to-arena copy ever has to consider two shards.
pub struct ShardedArena {
    shards: Vec<Arc<CommonMemory>>,
    partition_bytes: usize,
    /// PEs per shard (the last shard may cover fewer).
    block: usize,
}

impl ShardedArena {
    fn new(npes: usize, workers: usize, block: usize, partition_bytes: usize) -> Self {
        let shards = (0..workers)
            .map(|w| {
                let pes = ((w + 1) * block).min(npes) - w * block;
                CommonMemory::new(pes * partition_bytes, Homing::HashForHome)
            })
            .collect();
        Self {
            shards,
            partition_bytes,
            block,
        }
    }

    /// Wrap a shard set checked out of an [`ArenaPool`] — the pool
    /// guarantees shapes match the launch geometry and that every shard
    /// was scrubbed of the previous tenant's bytes.
    ///
    /// [`ArenaPool`]: crate::server::ArenaPool
    fn from_shards(shards: Vec<Arc<CommonMemory>>, block: usize, partition_bytes: usize) -> Self {
        Self {
            shards,
            partition_bytes,
            block,
        }
    }

    /// `(shard index, shard-local offset)` of a global arena offset.
    #[inline]
    fn locate(&self, off: usize) -> (usize, usize) {
        let w = off / (self.block * self.partition_bytes);
        (w, off - w * self.block * self.partition_bytes)
    }

    #[inline]
    fn shard(&self, off: usize) -> (&CommonMemory, usize) {
        let (w, local) = self.locate(off);
        (&self.shards[w], local)
    }

    fn copy(&self, dst: usize, src: usize, len: usize) {
        if len == 0 {
            return;
        }
        let (dw, dlocal) = self.locate(dst);
        let (sw, slocal) = self.locate(src);
        if dw == sw {
            self.shards[dw].copy_within(dlocal, slocal, len);
        } else {
            CommonMemory::copy_between(&self.shards[dw], dlocal, &self.shards[sw], slocal, len);
        }
    }
}

/// One cache line of locality-barrier state, indexed by (leader) PE:
/// word 0 counts member arrivals, word 1 is the release epoch. Backs
/// the counter transport of the shard-aligned hierarchical barrier
/// (`Fabric::sync_cell_add` / `sync_cell_wait_change`); padded to a
/// line so neighboring leaders' cells never false-share. `waiters`
/// holds contexts parked in `sync_cell_wait_change` with their gate
/// released — `sync_cell_notify` unparks them all in one sweep, so a
/// 511-member cluster release costs one broadcast, not 511 messages.
#[repr(align(64))]
pub struct SyncCell {
    pub words: [AtomicU64; 2],
    /// Parked waiters per word — separate lists so the last-arrival
    /// notify aimed at the leader (word 0) does not spuriously wake a
    /// cluster of members parked on the epoch (word 1).
    waiters: [Mutex<Vec<std::thread::Thread>>; 2],
}

impl Default for SyncCell {
    fn default() -> Self {
        Self {
            words: Default::default(),
            waiters: [Mutex::new(Vec::new()), Mutex::new(Vec::new())],
        }
    }
}

/// Shared, immutable state of one cooperative launch.
pub struct CoopShared {
    pub arena: ShardedArena,
    pub privates: Vec<Arc<CommonMemory>>,
    pub npes: usize,
    pub workers: usize,
    /// PEs per worker (`ceil(npes / workers)`).
    pub block: usize,
    /// Locality-barrier cells, one per PE (only leader PEs' cells are
    /// ever touched, but indexing by global PE keeps lookup trivial).
    pub sync_cells: Vec<SyncCell>,
    pub partition_bytes: usize,
    pub device: tile_arch::device::Device,
    pub start: FastClock,
    pub spin_barriers: Mutex<HashMap<(usize, u32, usize), Arc<CoopSpinBarrier>>>,
    pub aborted: AtomicBool,
    pub probes: Vec<Arc<PeProbe>>,
    pub service_probes: Vec<Arc<PeProbe>>,
    /// One lock-free lane per worker; the gate keeps each lane
    /// single-writer.
    pub trace: Option<Arc<TraceSink>>,
    pub waker: udn::fabric::UdnSender,
    gates: Vec<Gate>,
    /// Per-context direct-handoff flags, indexed by context id
    /// (`pe` for main contexts, `npes + pe` for service contexts).
    granted: Vec<AtomicBool>,
    /// Whether each context currently holds its gate — consulted by the
    /// panic-cleanup path, which must release only if the panic fired
    /// inside a gate-held region.
    holding: Vec<AtomicBool>,
}

impl CoopShared {
    /// The worker that owns context `ctx`. A PE's service context runs
    /// on the same worker as its main context.
    #[inline]
    fn worker_of(&self, ctx: usize) -> usize {
        (ctx % self.npes) / self.block
    }

    /// `true` while context `ctx` holds its worker's gate.
    pub fn is_holding(&self, ctx: usize) -> bool {
        self.holding[ctx].load(Ordering::Relaxed)
    }

    /// Whether PEs `a` and `b` are multiplexed on the same worker —
    /// they share an admission gate (so at most one of their contexts
    /// runs at a time) and one arena shard. Pure geometry: the block
    /// sharding assigns PE `p` to worker `p / block`.
    #[inline]
    pub fn co_resident(&self, a: usize, b: usize) -> bool {
        a / self.block == b / self.block
    }

    /// Acquire the worker gate for `ctx`, parking until admitted. While
    /// queued, `probe` (if any) publishes [`BlockedOn::Descheduled`];
    /// the prior blocked state is restored on admission.
    pub fn gate_acquire(&self, ctx: usize, probe: Option<&PeProbe>) {
        let g = &self.gates[self.worker_of(ctx)];
        {
            let mut inner = g.inner.lock();
            if !inner.held {
                inner.held = true;
                self.holding[ctx].store(true, Ordering::Relaxed);
                return;
            }
            inner.queue.push_back((ctx, std::thread::current()));
            g.waiters.fetch_add(1, Ordering::Relaxed);
        }
        let prior = probe.map(|p| {
            let b = p.blocked();
            p.set_blocked(BlockedOn::Descheduled);
            b
        });
        while !self.granted[ctx].swap(false, Ordering::Acquire) {
            std::thread::park();
        }
        self.holding[ctx].store(true, Ordering::Relaxed);
        if let (Some(p), Some(b)) = (probe, prior) {
            p.set_blocked(b);
        }
    }

    /// Release the worker gate held by `ctx`, handing it directly to the
    /// longest-queued waiter (if any). The Release store pairs with the
    /// waiter's Acquire swap, so everything the holder wrote — arena
    /// stores, trace-lane appends — is visible to the next holder.
    pub fn gate_release(&self, ctx: usize) {
        self.holding[ctx].store(false, Ordering::Relaxed);
        let g = &self.gates[self.worker_of(ctx)];
        let next = {
            let mut inner = g.inner.lock();
            match inner.queue.pop_front() {
                Some(n) => {
                    g.waiters.fetch_sub(1, Ordering::Relaxed);
                    Some(n)
                }
                None => {
                    inner.held = false;
                    None
                }
            }
        };
        if let Some((c, t)) = next {
            self.granted[c].store(true, Ordering::Release);
            t.unpark();
        }
    }

    /// Queued siblings on `ctx`'s worker gate.
    #[inline]
    fn gate_waiters(&self, ctx: usize) -> usize {
        self.gates[self.worker_of(ctx)].waiters.load(Ordering::Relaxed)
    }

    /// Flag the job aborted and wake every context parked in a blocking
    /// protocol receive (same contract as the native engine). Contexts
    /// queued for gate admission need no wakeup: they are runnable and
    /// hit an abort check as soon as they are admitted.
    pub fn abort(&self) {
        self.aborted.store(true, Ordering::Release);
        for tile in 0..self.npes {
            for q in 0..udn::packet::NUM_QUEUES {
                let _ = self.waker.try_send(tile, q, TAG_ABORT, &[]);
            }
        }
    }
}

impl WallShared for CoopShared {
    fn npes(&self) -> usize {
        self.npes
    }

    fn probes(&self) -> &[Arc<PeProbe>] {
        &self.probes
    }

    fn service_probes(&self) -> &[Arc<PeProbe>] {
        &self.service_probes
    }

    fn trace_sink(&self) -> Option<&Arc<TraceSink>> {
        self.trace.as_ref()
    }

    fn abort_job(&self) {
        self.abort();
    }

    fn oversubscription(&self) -> usize {
        (2 * self.npes).div_ceil(self.workers.max(1))
    }
}

/// A sense-reversing counter barrier whose waiters poll through
/// [`Fabric::wait_pause`] — unlike [`tmc::barrier::SpinBarrier`], a
/// parked-out member yields its worker gate between polls, so the TMC
/// spin barrier stays selectable under M:N oversubscription.
pub struct CoopSpinBarrier {
    size: usize,
    count: AtomicUsize,
    sense: AtomicUsize,
}

impl CoopSpinBarrier {
    fn new(size: usize) -> Self {
        Self {
            size,
            count: AtomicUsize::new(0),
            sense: AtomicUsize::new(0),
        }
    }

    fn wait(&self, fab: &CoopFabric) {
        let s = self.sense.load(Ordering::Acquire);
        if self.count.fetch_add(1, Ordering::AcqRel) + 1 == self.size {
            self.count.store(0, Ordering::Relaxed);
            self.sense.store(s.wrapping_add(1), Ordering::Release);
        } else {
            let mut attempt = 0u32;
            while self.sense.load(Ordering::Acquire) == s {
                fab.wait_pause(attempt);
                attempt = attempt.wrapping_add(1);
            }
        }
    }
}

/// Per-context cooperative fabric: the native data plane with gate
/// hooks around every genuine wait.
pub struct CoopFabric {
    pub(crate) shared: Arc<CoopShared>,
    pub(crate) pe: usize,
    /// Context id: `pe` for the main context, `npes + pe` for the
    /// interrupt-service context.
    ctx: usize,
    pub(crate) udn: UdnEndpoint,
    probe: Option<Arc<PeProbe>>,
    /// Trace lane = owning worker id (single-writer under the gate).
    lane: usize,
}

impl CoopFabric {
    /// A fabric for the PE's **main context**.
    pub fn new_probed(shared: Arc<CoopShared>, pe: usize, udn: UdnEndpoint) -> Self {
        let probe = Some(shared.probes[pe].clone());
        let lane = pe / shared.block;
        Self {
            shared,
            pe,
            ctx: pe,
            udn,
            probe,
            lane,
        }
    }

    /// A fabric for the PE's **interrupt-service context**.
    pub fn new_service(shared: Arc<CoopShared>, pe: usize, udn: UdnEndpoint) -> Self {
        let probe = Some(shared.service_probes[pe].clone());
        let lane = pe / shared.block;
        Self {
            ctx: shared.npes + pe,
            shared,
            pe,
            udn,
            probe,
            lane,
        }
    }

    /// This context's id (for gate bookkeeping in the launch scaffold).
    pub fn ctx_id(&self) -> usize {
        self.ctx
    }

    /// First admission at context start.
    pub fn gate_enter(&self) {
        self.shared.gate_acquire(self.ctx, self.probe.as_deref());
    }

    fn gate_release(&self) {
        self.shared.gate_release(self.ctx);
    }

    fn gate_reacquire(&self) {
        self.shared.gate_acquire(self.ctx, self.probe.as_deref());
    }

    /// Release + requeue at the FIFO tail: every queued sibling runs
    /// once before we hold the gate again.
    fn gate_yield(&self) {
        self.gate_release();
        self.gate_reacquire();
    }

    fn private(&self) -> &CommonMemory {
        &self.shared.privates[self.pe]
    }

    #[inline]
    fn progress(&self) {
        if let Some(p) = &self.probe {
            p.bump();
        }
        crate::fault::note_op();
        // The injected crash fires while holding the gate; the launch
        // scaffold's is_holding cleanup releases it, so worker siblings
        // keep running after the panicking tenant is torn down.
        if crate::fault::panic_pe_now(self.pe) {
            panic!("PE {}: injected PanicPe fault (crashing-tenant model)", self.pe);
        }
        if let Some(us) = crate::fault::slow_pe_delay_us(self.pe) {
            self.sleep_checking_abort(us);
        }
    }

    #[inline]
    fn spin_retry(&self) {
        if let Some(p) = &self.probe {
            p.spin();
        }
    }

    fn abort_check(&self) {
        if self.shared.aborted.load(Ordering::Acquire) {
            panic!("PE {}: aborting — another PE panicked", self.pe);
        }
    }

    /// Sleep `micros` µs with the gate **released** (siblings run
    /// meanwhile), checking the abort flag every chunk. A panic here
    /// fires while not holding, which the cleanup path must tolerate —
    /// see `CoopShared::is_holding`.
    fn sleep_checking_abort(&self, micros: u64) {
        self.gate_release();
        let mut left = std::time::Duration::from_micros(micros);
        while !left.is_zero() {
            let step = left.min(std::time::Duration::from_millis(50));
            std::thread::sleep(step);
            left -= step;
            self.abort_check();
        }
        self.gate_reacquire();
    }

    fn set_blocked(&self, state: BlockedOn) {
        if let Some(p) = &self.probe {
            p.set_blocked(state);
        }
    }

    fn trace(&self, kind: TraceKind, peer: usize, bytes: u64) {
        if let Some(sink) = &self.shared.trace {
            let now = desim::time::SimTime::from_ns(self.shared.start.now_ns());
            sink.record_lane(
                self.lane,
                TraceEvent {
                    pe: self.pe,
                    kind,
                    start: now,
                    end: now,
                    peer,
                    bytes,
                },
            );
        }
    }

    fn accept(&self, p: udn::packet::Packet) -> ProtoMsg {
        if p.header.tag == TAG_ABORT {
            panic!("PE {}: aborting — another PE panicked", self.pe);
        }
        self.progress();
        ProtoMsg {
            src: p.header.src as usize,
            tag: p.header.tag,
            payload: p.payload,
        }
    }
}

impl Fabric for CoopFabric {
    fn pe(&self) -> usize {
        self.pe
    }

    fn npes(&self) -> usize {
        self.shared.npes
    }

    fn partition_bytes(&self) -> usize {
        self.shared.partition_bytes
    }

    fn device(&self) -> tile_arch::device::Device {
        self.shared.device
    }

    fn udn_send(&self, dest: usize, queue: usize, tag: u16, payload: &[u64]) {
        if let Some(us) = crate::fault::protocol_send_delay_us() {
            self.sleep_checking_abort(us);
        }
        if !self.udn.try_send(dest, queue, tag, payload) {
            // Full bounded queue: park in the blocking send with the
            // gate released — the consumer that must drain `dest` may
            // be a sibling of this very worker.
            self.set_blocked(BlockedOn::SendFull { dest, queue });
            self.gate_release();
            self.udn.send(dest, queue, tag, payload);
            self.gate_reacquire();
            self.set_blocked(BlockedOn::Running);
        }
        self.trace(TraceKind::UdnSend, dest, 8 * payload.len() as u64);
        self.progress();
    }

    fn udn_try_send(&self, dest: usize, queue: usize, tag: u16, payload: &[u64]) -> bool {
        if let Some(depth) = crate::fault::clamp_queue_depth() {
            if self.udn.dest_queue_len(dest, queue) >= depth {
                return false;
            }
        }
        let sent = self.udn.try_send(dest, queue, tag, payload);
        if sent {
            if let Some(us) = crate::fault::protocol_send_delay_us() {
                self.sleep_checking_abort(us);
            }
            self.trace(TraceKind::UdnSend, dest, 8 * payload.len() as u64);
            self.progress();
        } else {
            self.spin_retry();
        }
        sent
    }

    fn udn_recv(&self, queue: usize) -> ProtoMsg {
        // Opportunistic poll while still holding the gate.
        for _ in 0..4 {
            if let Some(p) = self.udn.try_recv(queue) {
                return self.accept(p);
            }
            std::hint::spin_loop();
        }
        // Park with the gate released so worker siblings run; the
        // sender that will satisfy this receive may be queued on our
        // own gate.
        self.set_blocked(BlockedOn::Recv { queue });
        self.gate_release();
        let packet = loop {
            if let Some(p) = self.udn.recv_timeout(queue, std::time::Duration::from_millis(250)) {
                break p;
            }
            self.abort_check();
        };
        self.gate_reacquire();
        self.set_blocked(BlockedOn::Running);
        self.accept(packet)
    }

    fn udn_try_recv(&self, queue: usize) -> Option<ProtoMsg> {
        self.udn.try_recv(queue).map(|p| self.accept(p))
    }

    fn arena_copy(&self, dst: usize, src: usize, len: usize) {
        self.shared.arena.copy(dst, src, len);
        self.trace(TraceKind::Copy, usize::MAX, len as u64);
        self.progress();
    }

    fn arena_write(&self, dst: usize, src: &[u8]) {
        let (shard, local) = self.shared.arena.shard(dst);
        shard.write_bytes(local, src);
        self.trace(TraceKind::Copy, usize::MAX, src.len() as u64);
        self.progress();
    }

    fn arena_read(&self, src: usize, dst: &mut [u8]) {
        let (shard, local) = self.shared.arena.shard(src);
        shard.read_bytes(local, dst);
        self.trace(TraceKind::Copy, usize::MAX, dst.len() as u64);
        self.progress();
    }

    fn arena_read_u64(&self, off: usize) -> u64 {
        let (shard, local) = self.shared.arena.shard(off);
        shard.atomic_u64(local).load(Ordering::Acquire)
    }

    fn arena_read_u32(&self, off: usize) -> u32 {
        let (shard, local) = self.shared.arena.shard(off);
        shard.atomic_u32(local).load(Ordering::Acquire)
    }

    fn arena_write_u64(&self, off: usize, v: u64) {
        let (shard, local) = self.shared.arena.shard(off);
        shard.atomic_u64(local).store(v, Ordering::Release);
        self.progress();
    }

    fn arena_rmw(&self, off: usize, op: RmwOp, operand: u64, width: RmwWidth) -> u64 {
        self.trace(TraceKind::Atomic, usize::MAX, width.bytes() as u64);
        self.progress();
        let (shard, local) = self.shared.arena.shard(off);
        match width {
            RmwWidth::W64 => {
                let a = shard.atomic_u64(local);
                match op {
                    RmwOp::Add => a.fetch_add(operand, Ordering::AcqRel),
                    RmwOp::Swap => a.swap(operand, Ordering::AcqRel),
                    RmwOp::And => a.fetch_and(operand, Ordering::AcqRel),
                    RmwOp::Or => a.fetch_or(operand, Ordering::AcqRel),
                    RmwOp::Xor => a.fetch_xor(operand, Ordering::AcqRel),
                }
            }
            RmwWidth::W32 => {
                let a = shard.atomic_u32(local);
                let v = operand as u32;
                let old = match op {
                    RmwOp::Add => a.fetch_add(v, Ordering::AcqRel),
                    RmwOp::Swap => a.swap(v, Ordering::AcqRel),
                    RmwOp::And => a.fetch_and(v, Ordering::AcqRel),
                    RmwOp::Or => a.fetch_or(v, Ordering::AcqRel),
                    RmwOp::Xor => a.fetch_xor(v, Ordering::AcqRel),
                };
                old as u64
            }
        }
    }

    fn arena_cswap(&self, off: usize, cond: u64, new: u64, width: RmwWidth) -> u64 {
        let (shard, local) = self.shared.arena.shard(off);
        let (old, swapped) = match width {
            RmwWidth::W64 => match shard.atomic_u64(local).compare_exchange(
                cond,
                new,
                Ordering::AcqRel,
                Ordering::Acquire,
            ) {
                Ok(old) => (old, true),
                Err(old) => (old, false),
            },
            RmwWidth::W32 => match shard.atomic_u32(local).compare_exchange(
                cond as u32,
                new as u32,
                Ordering::AcqRel,
                Ordering::Acquire,
            ) {
                Ok(old) => (old as u64, true),
                Err(old) => (old as u64, false),
            },
        };
        if swapped {
            self.trace(TraceKind::Atomic, usize::MAX, width.bytes() as u64);
            self.progress();
        } else {
            self.spin_retry();
            // A failed cswap is a spin wait in disguise: callers retry in
            // a loop (lock claims, rank-ordered rings) that never blocks,
            // so without this it holds the admission gate forever and
            // starves the very sibling whose turn must come first — the
            // same contract `wait_pause` honors for flag polls.
            if self.shared.gate_waiters(self.ctx) > 0 {
                self.gate_yield();
            }
        }
        old
    }

    fn private_write(&self, off: usize, src: &[u8]) {
        self.private().write_bytes(off, src);
        self.progress();
    }

    fn private_read(&self, off: usize, dst: &mut [u8]) {
        self.private().read_bytes(off, dst);
        self.progress();
    }

    fn private_to_arena(&self, arena_dst: usize, priv_src: usize, len: usize) {
        let (shard, local) = self.shared.arena.shard(arena_dst);
        CommonMemory::copy_between(shard, local, self.private(), priv_src, len);
        self.trace(TraceKind::Copy, usize::MAX, len as u64);
        self.progress();
    }

    fn arena_to_private(&self, priv_dst: usize, arena_src: usize, len: usize) {
        let (shard, local) = self.shared.arena.shard(arena_src);
        CommonMemory::copy_between(self.private(), priv_dst, shard, local, len);
        self.trace(TraceKind::Copy, usize::MAX, len as u64);
        self.progress();
    }

    fn arena_raw(&self, off: usize, len: usize) -> *mut u8 {
        let (shard, local) = self.shared.arena.shard(off);
        shard.raw(local, len)
    }

    fn private_raw(&self, off: usize, len: usize) -> *mut u8 {
        self.private().raw(off, len)
    }

    fn co_resident(&self, pe: usize) -> bool {
        crate::fault::coop_locality() && self.shared.co_resident(self.pe, pe)
    }

    fn topology_block(&self) -> Option<usize> {
        crate::fault::coop_locality().then_some(self.shared.block)
    }

    fn udn_recv_local(&self, queue: usize) -> ProtoMsg {
        // The expected sender shares this worker: stay runnable and
        // yield the gate between polls instead of parking in the
        // channel condvar — FIFO admission runs the sibling (which
        // sends and satisfies this receive) within one gate rotation,
        // skipping a condvar park + unpark round trip per message.
        // Bounded and cheap: a wrong hint (sender fault-delayed, knob
        // flipped between launches) falls back to the parked receive
        // after a few gate rotations, so the hint costs at most bounded
        // spinning, never liveness. Under deep oversubscription every
        // runnable-but-waiting context lengthens the gate rotation the
        // real sender must ride, so the bound is deliberately small —
        // whole-cluster synchronization uses the counter cells instead
        // (`sync_cell_add`), not this hint.
        self.set_blocked(BlockedOn::Recv { queue });
        for attempt in 0..32u32 {
            if let Some(p) = self.udn.try_recv(queue) {
                self.set_blocked(BlockedOn::Running);
                return self.accept(p);
            }
            self.wait_pause(attempt);
        }
        self.set_blocked(BlockedOn::Running);
        self.udn_recv(queue)
    }

    fn sync_cell_add(&self, pe: usize, word: usize, delta: u64) -> u64 {
        // AcqRel: the add publishes this PE's pre-barrier writes
        // (Release) and, on the leader's consuming sub, carries every
        // member's release sequence forward (Acquire) — the cells form
        // the barrier's happens-before spine without the gate edge.
        let v = self.shared.sync_cells[pe].words[word].fetch_add(delta, Ordering::AcqRel);
        self.progress();
        v
    }

    fn sync_cell_load(&self, pe: usize, word: usize) -> u64 {
        self.shared.sync_cells[pe].words[word].load(Ordering::Acquire)
    }

    fn sync_cell_wait_change(&self, pe: usize, word: usize, old: u64) -> u64 {
        let cell = &self.shared.sync_cells[pe];
        // One yield-free check, then park. Gate-yielding "just in case"
        // polls are a net loss here: a waiter that yields re-enters the
        // FIFO and must be scheduled again merely to park, doubling its
        // share of the rotation, while the change it hopes to catch
        // (all siblings arriving plus the inter-leader exchange) is
        // almost never one rotation away.
        let cur = cell.words[word].load(Ordering::Acquire);
        if cur != old {
            return cur;
        }
        // Park with the gate released, exactly like the channel receive
        // slow path: a parked waiter costs its worker nothing — it
        // drops out of the gate rotation entirely until notified. The
        // timeout bounds abort-detection latency, mirroring udn_recv.
        self.set_blocked(BlockedOn::CellWait { pe });
        self.gate_release();
        let new = loop {
            {
                let mut w = cell.waiters[word].lock();
                let cur = cell.words[word].load(Ordering::Acquire);
                if cur != old {
                    break cur;
                }
                // Re-arming after a timeout: drop our stale handle so
                // the list holds each waiter once.
                let id = std::thread::current().id();
                w.retain(|t| t.id() != id);
                w.push(std::thread::current());
            }
            std::thread::park_timeout(std::time::Duration::from_millis(250));
            self.abort_check();
        };
        self.gate_reacquire();
        self.set_blocked(BlockedOn::Running);
        new
    }

    fn sync_cell_notify(&self, pe: usize, word: usize) {
        let mut w = self.shared.sync_cells[pe].waiters[word].lock();
        for t in w.drain(..) {
            t.unpark();
        }
    }

    fn peer_private_write(&self, pe: usize, off: usize, src: &[u8]) {
        debug_assert!(self.shared.co_resident(self.pe, pe));
        debug_assert!(self.shared.is_holding(self.ctx));
        self.shared.privates[pe].write_bytes(off, src);
        self.trace(TraceKind::Copy, pe, src.len() as u64);
        self.progress();
    }

    fn peer_private_read(&self, pe: usize, off: usize, dst: &mut [u8]) {
        debug_assert!(self.shared.co_resident(self.pe, pe));
        debug_assert!(self.shared.is_holding(self.ctx));
        self.shared.privates[pe].read_bytes(off, dst);
        self.trace(TraceKind::Copy, pe, dst.len() as u64);
        self.progress();
    }

    fn peer_private_to_arena(&self, pe: usize, arena_dst: usize, priv_src: usize, len: usize) {
        debug_assert!(self.shared.co_resident(self.pe, pe));
        debug_assert!(self.shared.is_holding(self.ctx));
        let (shard, local) = self.shared.arena.shard(arena_dst);
        CommonMemory::copy_between(shard, local, &self.shared.privates[pe], priv_src, len);
        self.trace(TraceKind::Copy, pe, len as u64);
        self.progress();
    }

    fn peer_arena_to_private(&self, pe: usize, priv_dst: usize, arena_src: usize, len: usize) {
        debug_assert!(self.shared.co_resident(self.pe, pe));
        debug_assert!(self.shared.is_holding(self.ctx));
        let (shard, local) = self.shared.arena.shard(arena_src);
        CommonMemory::copy_between(&self.shared.privates[pe], priv_dst, shard, local, len);
        self.trace(TraceKind::Copy, pe, len as u64);
        self.progress();
    }

    fn tmc_spin_barrier(&self, set: (usize, u32, usize)) {
        let b = {
            let mut map = self.shared.spin_barriers.lock();
            map.entry(set)
                .or_insert_with(|| Arc::new(CoopSpinBarrier::new(set.2)))
                .clone()
        };
        b.wait(self);
        self.progress();
    }

    fn probe(&self) -> Option<&PeProbe> {
        self.probe.as_deref()
    }

    fn quiet(&self) {
        tmc::fence::mem_fence();
    }

    fn wait_pause(&self, attempt: u32) {
        self.spin_retry();
        if attempt > 0 && attempt.is_multiple_of(64) {
            self.abort_check();
        }
        // The context that will satisfy this wait may be queued on our
        // own worker: whenever siblings wait for the gate, yield it —
        // FIFO admission runs every one of them once before we spin
        // again.
        if attempt >= 4 && self.shared.gate_waiters(self.ctx) > 0 {
            self.gate_yield();
        } else if attempt > 64 {
            std::thread::yield_now();
        } else {
            std::hint::spin_loop();
        }
    }

    fn compute(&self, _cycles: f64) {
        // Real computation takes its own real time.
    }

    fn now_ns(&self) -> f64 {
        self.shared.start.now_ns() as f64
    }

    fn inject_delay_us(&self, micros: u64) {
        self.sleep_checking_abort(micros);
    }
}

/// The cooperative M:N backend. `workers == 0` (the default) sizes the
/// worker pool from the host's parallelism, floored at 2 so a
/// single-core CI box still interleaves contexts rather than serializing
/// a whole job behind one gate.
#[derive(Default)]
pub struct CoopBackend {
    /// Worker-thread count (M); `0` = auto.
    pub workers: usize,
    /// When set, the symmetric-heap shard set is checked out of this
    /// recycling pool (scrubbed of the previous tenant's bytes) and
    /// retired back to it on clean completion; a panicked or wedged
    /// launch unwinds past the check-in, so its arena is dropped. The
    /// server layer threads its pool through here; `None` (the default)
    /// allocates fresh per launch.
    pub arena_pool: Option<Arc<crate::server::ArenaPool>>,
}

impl CoopBackend {
    /// The worker count a job with `npes` PEs actually runs on.
    pub fn resolved_workers(&self, npes: usize) -> usize {
        let m = if self.workers == 0 {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(2)
                .max(2)
        } else {
            self.workers
        };
        m.clamp(1, npes)
    }
}

impl EngineBackend for CoopBackend {
    fn name(&self) -> &'static str {
        "coop"
    }

    fn execute<R, F>(&self, cfg: &crate::runtime::RuntimeConfig, watch: &WatchPlane<'_>, f: F) -> EngineOutcome<R>
    where
        R: Send,
        F: Fn(&ShmemCtx) -> R + Send + Sync,
    {
        use udn::fabric::UdnFabric;

        let native_watch = match watch {
            WatchPlane::None => None,
            WatchPlane::Native(w) => Some(*w),
            WatchPlane::Coop(_) => panic!(
                "a TimedWatch is the virtual-time scheduler's observer and cannot watch \
                 the coop engine; attach a JobWatch instead"
            ),
        };
        let layout = cfg.layout();
        let block = cfg.npes.div_ceil(self.resolved_workers(cfg.npes));
        // Trim trailing empty shards when ceil rounding overshoots.
        let workers = cfg.npes.div_ceil(block);
        let endpoints = match cfg.udn_queue_packets {
            Some(p) => UdnFabric::new_bounded(cfg.npes, p),
            None => UdnFabric::new(cfg.npes),
        };
        let sink = (cfg.trace || native_watch.is_some())
            .then(|| Arc::new(TraceSink::with_lanes(workers)));
        let waker = endpoints[0].sender();
        let arena = match &self.arena_pool {
            Some(pool) => ShardedArena::from_shards(
                pool.checkout(cfg.npes, workers, block, cfg.partition_bytes, layout.heap_bytes),
                block,
                cfg.partition_bytes,
            ),
            None => ShardedArena::new(cfg.npes, workers, block, cfg.partition_bytes),
        };
        let shared = Arc::new(CoopShared {
            arena,
            privates: (0..cfg.npes)
                .map(|pe| CommonMemory::new(cfg.private_bytes, Homing::Local(pe)))
                .collect(),
            npes: cfg.npes,
            workers,
            block,
            sync_cells: (0..cfg.npes).map(|_| SyncCell::default()).collect(),
            partition_bytes: cfg.partition_bytes,
            device: cfg.device,
            start: FastClock::new(),
            spin_barriers: Mutex::new(HashMap::new()),
            aborted: AtomicBool::new(false),
            probes: (0..cfg.npes).map(|_| Arc::new(PeProbe::new())).collect(),
            service_probes: (0..cfg.npes).map(|_| Arc::new(PeProbe::new())).collect(),
            trace: sink.clone(),
            waker,
            gates: (0..workers).map(|_| Gate::new()).collect(),
            granted: (0..2 * cfg.npes).map(|_| AtomicBool::new(false)).collect(),
            holding: (0..2 * cfg.npes).map(|_| AtomicBool::new(false)).collect(),
        });
        if let Some(w) = native_watch {
            w.attach(shared.clone(), endpoints.clone());
        }

        // Interrupt-service contexts: real threads sharing their PE's
        // worker gate; they sit gate-released in the Q_SERVICE receive
        // and hold the gate only while serving a request.
        let service_threads: Vec<_> = (0..cfg.npes)
            .map(|pe| {
                let fab = CoopFabric::new_service(shared.clone(), pe, endpoints[pe].clone());
                let shared = shared.clone();
                std::thread::Builder::new()
                    .name(format!("coop-svc-{pe}"))
                    .spawn(move || {
                        let ctx_id = fab.ctx_id();
                        fab.gate_enter();
                        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                            service_loop(&fab)
                        }));
                        // A panic can fire while not holding (parked
                        // receive, fault-delay sleep): release only a
                        // held gate, or the handoff chain double-frees.
                        if shared.is_holding(ctx_id) {
                            shared.gate_release(ctx_id);
                        }
                        if let Err(p) = r {
                            std::panic::resume_unwind(p);
                        }
                    })
                    .expect("spawn coop service thread")
            })
            .collect();

        let values = tmc::task::run_on_tiles(cfg.npes, |pe| {
            let fab = CoopFabric::new_probed(shared.clone(), pe, endpoints[pe].clone());
            fab.gate_enter();
            let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                let ctx = ShmemCtx::new(Box::new(fab), layout, cfg.algos, cfg.private_bytes);
                match std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| f(&ctx))) {
                    Ok(r) => {
                        ctx.finalize();
                        r
                    }
                    Err(p) => {
                        shared.abort();
                        std::panic::resume_unwind(p);
                    }
                }
            }));
            if shared.is_holding(pe) {
                shared.gate_release(pe);
            }
            result.unwrap_or_else(|p| std::panic::resume_unwind(p))
        });

        for t in service_threads {
            t.join().expect("coop service thread panicked");
        }
        // Reached only on clean completion (a tenant panic unwinds out
        // of run_on_tiles above): retire the shard set for recycling.
        if let Some(pool) = &self.arena_pool {
            pool.check_in(cfg.npes, workers, block, cfg.partition_bytes, shared.arena.shards.clone());
        }
        EngineOutcome {
            values,
            clocks: Vec::new(),
            makespan: desim::time::SimTime::ZERO,
            trace: cfg.trace.then(|| sink.expect("sink exists when tracing").take()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sharded_arena_locates_and_copies_across_shards() {
        // 5 PEs, 2 per shard, 64-byte partitions -> shards of 2,2,1 PEs.
        let a = ShardedArena::new(5, 3, 2, 64);
        assert_eq!(a.shards.len(), 3);
        assert_eq!(a.shards[0].len(), 128);
        assert_eq!(a.shards[2].len(), 64);
        // PE 3's partition starts at global 192 = shard 1, local 64.
        let (w, local) = a.locate(192);
        assert_eq!((w, local), (1, 64));
        // Write in PE 0's partition, copy into PE 4's (cross-shard).
        a.shards[0].write_bytes(8, &[1, 2, 3, 4]);
        a.copy(4 * 64 + 16, 8, 4);
        let mut out = [0u8; 4];
        let (shard, local) = a.shard(4 * 64 + 16);
        shard.read_bytes(local, &mut out);
        assert_eq!(out, [1, 2, 3, 4]);
        // Same-shard copy.
        a.copy(64 + 8, 8, 4);
        let (shard, local) = a.shard(64 + 8);
        shard.read_bytes(local, &mut out);
        assert_eq!(out, [1, 2, 3, 4]);
    }

    #[test]
    fn resolved_workers_bounds() {
        assert_eq!(CoopBackend { workers: 4, ..Default::default() }.resolved_workers(256), 4);
        assert_eq!(CoopBackend { workers: 9, ..Default::default() }.resolved_workers(4), 4);
        let auto = CoopBackend::default().resolved_workers(1024);
        assert!((2..=1024).contains(&auto), "auto workers = {auto}");
        assert_eq!(CoopBackend::default().resolved_workers(1), 1);
    }

    /// The launch geometry as `execute` computes it: ceil block, then
    /// trailing-empty-shard trim.
    fn geometry(npes: usize, requested_workers: usize) -> (usize, usize) {
        let block = npes.div_ceil(requested_workers);
        (block, npes.div_ceil(block))
    }

    #[test]
    fn co_resident_geometry_uneven_block() {
        // 10 PEs over 4 workers: block = 3, shards of 3,3,3,1.
        let (block, workers) = geometry(10, 4);
        assert_eq!((block, workers), (3, 4));
        let shared = gate_fixture(10, block);
        assert!(shared.co_resident(0, 2));
        assert!(!shared.co_resident(2, 3));
        assert!(shared.co_resident(3, 5));
        // PE 9 sits alone in the trailing short shard.
        assert!(shared.co_resident(9, 9));
        assert!(!shared.co_resident(8, 9));
        assert_eq!(workers, shared.workers);
    }

    #[test]
    fn co_resident_geometry_one_worker_everything_local() {
        let (block, workers) = geometry(7, 1);
        assert_eq!((block, workers), (7, 1));
        let shared = gate_fixture(7, block);
        for a in 0..7 {
            for b in 0..7 {
                assert!(shared.co_resident(a, b), "({a},{b}) must share the lone worker");
            }
        }
    }

    #[test]
    fn co_resident_geometry_worker_per_pe_nothing_local() {
        let (block, workers) = geometry(6, 6);
        assert_eq!((block, workers), (1, 6));
        let shared = gate_fixture(6, block);
        for a in 0..6 {
            for b in 0..6 {
                assert_eq!(shared.co_resident(a, b), a == b, "({a},{b})");
            }
        }
    }

    #[test]
    fn gate_admits_fifo_and_hands_off_directly() {
        use std::sync::atomic::AtomicUsize;
        let shared = gate_fixture(4, 2); // 4 contexts, 2 per worker
        let order = Arc::new(Mutex::new(Vec::new()));
        let running = Arc::new(AtomicUsize::new(0));
        std::thread::scope(|s| {
            for ctx in [0usize, 1] {
                let shared = shared.clone();
                let order = order.clone();
                let running = running.clone();
                s.spawn(move || {
                    for _ in 0..100 {
                        shared.gate_acquire(ctx, None);
                        let now = running.fetch_add(1, Ordering::AcqRel);
                        assert_eq!(now, 0, "two holders on one worker gate");
                        order.lock().push(ctx);
                        running.fetch_sub(1, Ordering::AcqRel);
                        shared.gate_release(ctx);
                    }
                });
            }
        });
        assert_eq!(order.lock().len(), 200);
    }

    fn gate_fixture(npes: usize, block: usize) -> Arc<CoopShared> {
        let workers = npes.div_ceil(block);
        let endpoints = udn::fabric::UdnFabric::new(npes);
        Arc::new(CoopShared {
            arena: ShardedArena::new(npes, workers, block, 4096),
            privates: Vec::new(),
            npes,
            workers,
            block,
            sync_cells: (0..npes).map(|_| SyncCell::default()).collect(),
            partition_bytes: 4096,
            device: tile_arch::device::Device::tile_gx8036(),
            start: FastClock::new(),
            spin_barriers: Mutex::new(HashMap::new()),
            aborted: AtomicBool::new(false),
            probes: (0..npes).map(|_| Arc::new(PeProbe::new())).collect(),
            service_probes: (0..npes).map(|_| Arc::new(PeProbe::new())).collect(),
            trace: None,
            waker: endpoints[0].sender(),
            gates: (0..workers).map(|_| Gate::new()).collect(),
            granted: (0..2 * npes).map(|_| AtomicBool::new(false)).collect(),
            holding: (0..2 * npes).map(|_| AtomicBool::new(false)).collect(),
        })
    }
}
