//! The timed engine: the same protocol code and the same real data
//! movement as the native engine, executed under the virtual-time
//! cooperative scheduler with calibrated Tilera costs.
//!
//! Every PE (and every PE's interrupt-service context) is a logical
//! process of `desim::coop`; clocks advance by the costs the modeled
//! device would pay — UDN setup-and-teardown plus per-hop wormhole
//! cycles for messages, cache-classified copy cycles for data movement,
//! and busy-until home-port/DRAM contention for concurrent transfers.
//! Determinism is inherited from the scheduler: a timed run is
//! bit-reproducible.
//!
//! The tracked UDN queue model (credit-parked backpressure), per-LP
//! probes, trace plumbing, and the virtual-time livelock guard live in
//! [`super::backend`]'s [`CoopCore`]/[`CoopLp`], shared with the
//! multichip engine — this module supplies only the single-chip wire
//! and memory cost model.

use std::sync::Arc;

use cachesim::homing::Homing;
use cachesim::memsys::{MemRef, MemorySystem};
use desim::coop::CoopHandle;
use desim::time::SimTime;
use substrate::sync::Mutex;
use tile_arch::area::TestArea;
use tmc::common::CommonMemory;
use udn::packet::PayloadVec;
use udn::timing::UdnModel;

use super::backend::{CoopCore, CoopLp};
use crate::fabric::{BlockedOn, Fabric, PeProbe, ProtoMsg, RmwOp, RmwWidth};

pub use super::backend::{CH_CREDIT, CH_SPIN, TIMED_CHANNELS};

/// Simulated-address-space bases (disjoint regions for classification).
pub(crate) const SIM_ARENA_BASE: u64 = 1 << 32;
pub(crate) const SIM_PRIV_BASE: u64 = 1 << 40;
pub(crate) const SIM_SCRATCH_BASE: u64 = 1 << 41;
pub(crate) const SIM_REGION_SPAN: u64 = 1 << 28;
/// Local scratch (stack/heap buffers) wraps so repeated transfers from
/// "the same local buffer" stay cache-warm, as they would on hardware.
pub(crate) const SCRATCH_WRAP: u64 = 8 * 1024 * 1024;

/// Cycle charges for operations not covered by the copy model.
pub(crate) const FLAG_RW_CYCLES: f64 = 30.0;
pub(crate) const RMW_CYCLES: f64 = 60.0;
pub(crate) const QUIET_CYCLES: f64 = 10.0;
/// Per-call software overhead of a data-plane operation (argument
/// checks, address classification, `memcpy` setup) — what makes small
/// puts latency-bound in Figure 6 rather than running at the L1d
/// plateau.
pub(crate) const OP_OVERHEAD_CYCLES: f64 = 60.0;

/// Launch-wide state shared by every timed fabric.
pub struct TimedShared {
    pub arena: Arc<CommonMemory>,
    pub privates: Vec<Arc<CommonMemory>>,
    pub mem: Mutex<MemorySystem>,
    pub model: UdnModel,
    pub npes: usize,
    pub partition_bytes: usize,
    /// Homing overrides for arena regions: (start, end, policy).
    /// Regions not listed default to hash-for-home (what TSHMEM uses
    /// for common memory).
    pub homing_overrides: Mutex<Vec<(usize, usize, Homing)>>,
    /// The observability core shared with the watchdog: probes, trace
    /// sink, and the modeled UDN queue state (see [`CoopCore`]).
    pub core: Arc<CoopCore>,
}

impl TimedShared {
    pub fn new(
        area: TestArea,
        npes: usize,
        partition_bytes: usize,
        private_bytes: usize,
    ) -> Arc<Self> {
        Self::new_traced(area, npes, partition_bytes, private_bytes, None)
    }

    pub fn new_traced(
        area: TestArea,
        npes: usize,
        partition_bytes: usize,
        private_bytes: usize,
        trace: Option<Arc<crate::trace::TraceSink>>,
    ) -> Arc<Self> {
        Self::new_full(area, npes, partition_bytes, private_bytes, trace, None)
    }

    /// Full constructor: `queue_cap` bounds the modeled UDN demux
    /// queues (packets per queue), giving the timed engine the same
    /// finite-buffer backpressure semantics as a bounded native fabric.
    pub fn new_full(
        area: TestArea,
        npes: usize,
        partition_bytes: usize,
        private_bytes: usize,
        trace: Option<Arc<crate::trace::TraceSink>>,
        queue_cap: Option<usize>,
    ) -> Arc<Self> {
        assert!(
            npes <= area.tiles(),
            "{npes} PEs exceed the {}-tile test area",
            area.tiles()
        );
        let arena = CommonMemory::new(npes * partition_bytes, Homing::HashForHome);
        let privates = (0..npes)
            .map(|pe| CommonMemory::new(private_bytes, Homing::Local(pe)))
            .collect();
        Arc::new(Self {
            arena,
            privates,
            mem: Mutex::new(MemorySystem::new(area.device, npes)),
            model: UdnModel::new(area),
            npes,
            partition_bytes,
            homing_overrides: Mutex::new(Vec::new()),
            core: CoopCore::new(npes, 1, trace, queue_cap),
        })
    }

    /// Snapshot of the modeled demux-queue occupancy of LP `lp`.
    pub fn queue_occupancy(&self, lp: usize) -> [usize; udn::NUM_QUEUES] {
        self.core.queue_occupancy(lp)
    }
}

/// Per-LP timed fabric. The PE's main context and its service context
/// share `pe` but hold different coop handles (and distinct probes).
pub struct TimedFabric {
    shared: Arc<TimedShared>,
    lp: CoopLp,
}

impl TimedFabric {
    /// Fabric for LP `lp_id` of a `2 * npes`-LP cooperative run: LPs
    /// `0..npes` are PEs, `npes..2*npes` their service contexts.
    pub fn for_lp(shared: Arc<TimedShared>, lp_id: usize, coop: CoopHandle<ProtoMsg>) -> Self {
        let clock = shared.model.area.device.clock;
        let lp = CoopLp::new(shared.core.clone(), lp_id, coop, clock);
        Self { shared, lp }
    }

    fn pe_id(&self) -> usize {
        self.lp.pe
    }

    fn sim_arena(&self, off: usize) -> MemRef {
        let homing = self
            .shared
            .homing_overrides
            .lock()
            .iter()
            .find(|(s, e, _)| (*s..*e).contains(&off))
            .map(|(_, _, h)| *h)
            .unwrap_or(Homing::HashForHome);
        MemRef::new(SIM_ARENA_BASE + off as u64, homing)
    }

    fn sim_priv(&self, off: usize) -> MemRef {
        MemRef::new(
            SIM_PRIV_BASE + self.pe_id() as u64 * SIM_REGION_SPAN + off as u64,
            Homing::Local(self.pe_id()),
        )
    }

    fn sim_scratch(&self, key: usize, len: usize) -> MemRef {
        let off = (key as u64) % (SCRATCH_WRAP.saturating_sub(len as u64).max(1));
        MemRef::new(
            SIM_SCRATCH_BASE + self.pe_id() as u64 * SIM_REGION_SPAN + off,
            Homing::Local(self.pe_id()),
        )
    }

    /// Charge a costed copy and advance this LP's clock to completion.
    fn charge_copy(&self, dst: MemRef, src: MemRef, len: usize) {
        if len == 0 {
            return;
        }
        let t0 = self.lp.coop.now();
        self.lp.advance_cycles(OP_OVERHEAD_CYCLES);
        let now = self.lp.coop.now();
        let done = self.lp.coop.with_global(|| {
            self.shared.mem.lock().copy(self.pe_id(), dst, src, len as u64, now)
        });
        self.lp.coop.advance_to(done);
        self.lp.trace(crate::trace::TraceKind::Copy, t0, usize::MAX, len as u64);
    }
}

impl Fabric for TimedFabric {
    fn pe(&self) -> usize {
        self.pe_id()
    }

    fn npes(&self) -> usize {
        self.shared.npes
    }

    fn partition_bytes(&self) -> usize {
        self.shared.partition_bytes
    }

    fn device(&self) -> tile_arch::device::Device {
        self.shared.model.area.device
    }

    fn udn_send(&self, dest: usize, queue: usize, tag: u16, payload: &[u64]) {
        assert!(dest < self.shared.npes, "unknown destination PE {dest}");
        let bytes = ((payload.len() + 1) * self.shared.model.area.device.word_bytes) as u64;
        let wire = self.shared.model.one_way_ps(self.pe_id(), dest, payload.len() + 1);
        self.lp.send_tracked(
            dest,
            queue,
            tag,
            payload,
            true,
            self.shared.model.sw_overhead_ps(),
            (crate::trace::TraceKind::UdnSend, bytes),
            || Some(SimTime::from_ps(wire)),
        );
    }

    fn udn_try_send(&self, dest: usize, queue: usize, tag: u16, payload: &[u64]) -> bool {
        assert!(dest < self.shared.npes, "unknown destination PE {dest}");
        let bytes = ((payload.len() + 1) * self.shared.model.area.device.word_bytes) as u64;
        let wire = self.shared.model.one_way_ps(self.pe_id(), dest, payload.len() + 1);
        self.lp.send_tracked(
            dest,
            queue,
            tag,
            payload,
            false,
            self.shared.model.sw_overhead_ps(),
            (crate::trace::TraceKind::UdnSend, bytes),
            || Some(SimTime::from_ps(wire)),
        )
    }

    fn udn_recv(&self, queue: usize) -> ProtoMsg {
        self.lp.recv_tracked(queue)
    }

    fn udn_try_recv(&self, queue: usize) -> Option<ProtoMsg> {
        self.lp.try_recv_tracked(queue)
    }

    fn arena_copy(&self, dst: usize, src: usize, len: usize) {
        self.shared.arena.copy_within(dst, src, len);
        self.charge_copy(self.sim_arena(dst), self.sim_arena(src), len);
        self.lp.progress();
    }

    fn arena_write(&self, dst: usize, src: &[u8]) {
        self.shared.arena.write_bytes(dst, src);
        self.charge_copy(self.sim_arena(dst), self.sim_scratch(dst, src.len()), src.len());
        self.lp.progress();
    }

    fn arena_read(&self, src: usize, dst: &mut [u8]) {
        self.shared.arena.read_bytes(src, dst);
        self.charge_copy(self.sim_scratch(src, dst.len()), self.sim_arena(src), dst.len());
        self.lp.progress();
    }

    fn arena_read_u64(&self, off: usize) -> u64 {
        self.lp.advance_cycles(FLAG_RW_CYCLES);
        self.shared
            .arena
            .atomic_u64(off)
            .load(std::sync::atomic::Ordering::Acquire)
    }

    fn arena_read_u32(&self, off: usize) -> u32 {
        self.lp.advance_cycles(FLAG_RW_CYCLES);
        self.shared
            .arena
            .atomic_u32(off)
            .load(std::sync::atomic::Ordering::Acquire)
    }

    fn arena_write_u64(&self, off: usize, v: u64) {
        self.lp.advance_cycles(FLAG_RW_CYCLES);
        self.shared
            .arena
            .atomic_u64(off)
            .store(v, std::sync::atomic::Ordering::Release);
        // A flag store is useful work; atomic loads stay uncounted.
        self.lp.progress();
    }

    fn arena_rmw(&self, off: usize, op: RmwOp, operand: u64, width: RmwWidth) -> u64 {
        self.lp.advance_cycles(RMW_CYCLES);
        self.lp.progress();
        // Only one LP runs at a time, so sequenced RMW through the
        // shared arena is atomic by construction; the atomics keep the
        // native types shared.
        self.lp.coop.with_global(|| {
            use std::sync::atomic::Ordering::AcqRel;
            match width {
                RmwWidth::W64 => {
                    let a = self.shared.arena.atomic_u64(off);
                    match op {
                        RmwOp::Add => a.fetch_add(operand, AcqRel),
                        RmwOp::Swap => a.swap(operand, AcqRel),
                        RmwOp::And => a.fetch_and(operand, AcqRel),
                        RmwOp::Or => a.fetch_or(operand, AcqRel),
                        RmwOp::Xor => a.fetch_xor(operand, AcqRel),
                    }
                }
                RmwWidth::W32 => {
                    let a = self.shared.arena.atomic_u32(off);
                    let v = operand as u32;
                    (match op {
                        RmwOp::Add => a.fetch_add(v, AcqRel),
                        RmwOp::Swap => a.swap(v, AcqRel),
                        RmwOp::And => a.fetch_and(v, AcqRel),
                        RmwOp::Or => a.fetch_or(v, AcqRel),
                        RmwOp::Xor => a.fetch_xor(v, AcqRel),
                    }) as u64
                }
            }
        })
    }

    fn arena_cswap(&self, off: usize, cond: u64, new: u64, width: RmwWidth) -> u64 {
        self.lp.advance_cycles(RMW_CYCLES);
        let old = self.lp.coop.with_global(|| {
            use std::sync::atomic::Ordering::{AcqRel, Acquire};
            match width {
                RmwWidth::W64 => {
                    match self
                        .shared
                        .arena
                        .atomic_u64(off)
                        .compare_exchange(cond, new, AcqRel, Acquire)
                    {
                        Ok(o) | Err(o) => o,
                    }
                }
                RmwWidth::W32 => {
                    match self.shared.arena.atomic_u32(off).compare_exchange(
                        cond as u32,
                        new as u32,
                        AcqRel,
                        Acquire,
                    ) {
                        Ok(o) | Err(o) => o as u64,
                    }
                }
            }
        });
        // Same useful-vs-spin split as the native engine.
        if old == cond {
            self.lp.progress();
        } else {
            self.lp.probe.spin();
        }
        old
    }

    fn private_write(&self, off: usize, src: &[u8]) {
        self.shared.privates[self.pe_id()].write_bytes(off, src);
        self.charge_copy(self.sim_priv(off), self.sim_scratch(off, src.len()), src.len());
        self.lp.progress();
    }

    fn private_read(&self, off: usize, dst: &mut [u8]) {
        self.shared.privates[self.pe_id()].read_bytes(off, dst);
        self.charge_copy(self.sim_scratch(off, dst.len()), self.sim_priv(off), dst.len());
        self.lp.progress();
    }

    fn private_to_arena(&self, arena_dst: usize, priv_src: usize, len: usize) {
        CommonMemory::copy_between(
            &self.shared.arena,
            arena_dst,
            &self.shared.privates[self.pe_id()],
            priv_src,
            len,
        );
        self.charge_copy(self.sim_arena(arena_dst), self.sim_priv(priv_src), len);
        self.lp.progress();
    }

    fn arena_to_private(&self, priv_dst: usize, arena_src: usize, len: usize) {
        CommonMemory::copy_between(
            &self.shared.privates[self.pe_id()],
            priv_dst,
            &self.shared.arena,
            arena_src,
            len,
        );
        self.charge_copy(self.sim_priv(priv_dst), self.sim_arena(arena_src), len);
        self.lp.progress();
    }

    fn arena_raw(&self, off: usize, len: usize) -> *mut u8 {
        self.shared.arena.raw(off, len)
    }

    fn private_raw(&self, off: usize, len: usize) -> *mut u8 {
        self.shared.privates[self.pe_id()].raw(off, len)
    }

    fn tmc_spin_barrier(&self, set: (usize, u32, usize)) {
        // Model: everyone announces arrival to the set's start PE with
        // zero wire cost; the release is timed so all participants leave
        // at max(arrivals) + the calibrated Figure 5 spin latency.
        // Tokens ride the dedicated CH_SPIN coop channel so they can
        // never interleave with protocol traffic on Q_BARRIER.
        const TAG_SPIN: u16 = 0x5B;
        let (start, log2_stride, size) = set;
        let stride = 1usize << log2_stride;
        let device = self.shared.model.area.device;
        let spin = SimTime::from_ps(device.timings.barrier.spin_ps(size));
        let me = self.pe_id();
        if size == 1 {
            self.lp.coop.advance(spin);
            self.lp.progress();
            return;
        }
        if me == start {
            self.lp.probe.set_blocked(BlockedOn::Recv { queue: crate::fabric::Q_BARRIER });
            for _ in 1..size {
                let m = self.lp.coop.recv(CH_SPIN);
                debug_assert_eq!(m.tag, TAG_SPIN);
            }
            self.lp.probe.set_blocked(BlockedOn::Running);
            let release = self.lp.coop.now() + spin;
            for r in 1..size {
                let dest = start + r * stride;
                let latency = release.saturating_sub(self.lp.coop.now());
                self.lp.coop.send(
                    dest,
                    CH_SPIN,
                    ProtoMsg { src: me, tag: TAG_SPIN, payload: PayloadVec::new() },
                    latency,
                );
            }
            self.lp.coop.advance_to(release);
        } else {
            self.lp.coop.send(
                start,
                CH_SPIN,
                ProtoMsg { src: me, tag: TAG_SPIN, payload: PayloadVec::new() },
                SimTime::ZERO,
            );
            self.lp.probe.set_blocked(BlockedOn::Recv { queue: crate::fabric::Q_BARRIER });
            let m = self.lp.coop.recv(CH_SPIN);
            debug_assert_eq!(m.tag, TAG_SPIN);
            self.lp.probe.set_blocked(BlockedOn::Running);
        }
        self.lp.progress();
    }

    fn set_region_homing(&self, global_off: usize, len: usize, homing: Homing) {
        let mut o = self.shared.homing_overrides.lock();
        o.retain(|(s, _, _)| *s != global_off);
        o.push((global_off, global_off + len, homing));
    }

    fn clear_region_homing(&self, global_off: usize) {
        self.shared
            .homing_overrides
            .lock()
            .retain(|(s, _, _)| *s != global_off);
    }

    fn quiet(&self) {
        tmc::fence::mem_fence();
        self.lp.advance_cycles(QUIET_CYCLES);
    }

    fn wait_pause(&self, attempt: u32) {
        self.lp.wait_pause(attempt);
    }

    fn compute(&self, cycles: f64) {
        let t0 = self.lp.coop.now();
        self.lp.advance_cycles(cycles);
        self.lp.trace(crate::trace::TraceKind::Compute, t0, usize::MAX, 0);
    }

    fn now_ns(&self) -> f64 {
        self.lp.coop.now().ns_f64()
    }

    fn inject_delay_us(&self, micros: u64) {
        self.lp.coop.advance(SimTime::from_ns(micros * 1000));
    }

    fn probe(&self) -> Option<&PeProbe> {
        Some(&self.lp.probe)
    }
}
