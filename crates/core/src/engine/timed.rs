//! The timed engine: the same protocol code and the same real data
//! movement as the native engine, executed under the virtual-time
//! cooperative scheduler with calibrated Tilera costs.
//!
//! Every PE (and every PE's interrupt-service context) is a logical
//! process of `desim::coop`; clocks advance by the costs the modeled
//! device would pay — UDN setup-and-teardown plus per-hop wormhole
//! cycles for messages, cache-classified copy cycles for data movement,
//! and busy-until home-port/DRAM contention for concurrent transfers.
//! Determinism is inherited from the scheduler: a timed run is
//! bit-reproducible.

use std::sync::Arc;

use cachesim::homing::Homing;
use cachesim::memsys::{MemRef, MemorySystem};
use desim::coop::CoopHandle;
use desim::time::SimTime;
use substrate::sync::Mutex;
use tile_arch::area::TestArea;
use tmc::common::CommonMemory;
use udn::timing::UdnModel;

use crate::fabric::{Fabric, ProtoMsg, RmwOp, RmwWidth, Q_SERVICE};

/// Simulated-address-space bases (disjoint regions for classification).
const SIM_ARENA_BASE: u64 = 1 << 32;
const SIM_PRIV_BASE: u64 = 1 << 40;
const SIM_SCRATCH_BASE: u64 = 1 << 41;
const SIM_REGION_SPAN: u64 = 1 << 28;
/// Local scratch (stack/heap buffers) wraps so repeated transfers from
/// "the same local buffer" stay cache-warm, as they would on hardware.
const SCRATCH_WRAP: u64 = 8 * 1024 * 1024;

/// Cycle charges for operations not covered by the copy model.
const FLAG_RW_CYCLES: f64 = 30.0;
const RMW_CYCLES: f64 = 60.0;
const QUIET_CYCLES: f64 = 10.0;
const POLL_CYCLES: f64 = 50.0;
/// Per-call software overhead of a data-plane operation (argument
/// checks, address classification, `memcpy` setup) — what makes small
/// puts latency-bound in Figure 6 rather than running at the L1d
/// plateau.
const OP_OVERHEAD_CYCLES: f64 = 60.0;

/// Launch-wide state shared by every timed fabric.
pub struct TimedShared {
    pub arena: Arc<CommonMemory>,
    pub privates: Vec<Arc<CommonMemory>>,
    pub mem: Mutex<MemorySystem>,
    pub model: UdnModel,
    pub npes: usize,
    pub partition_bytes: usize,
    /// Homing overrides for arena regions: (start, end, policy).
    /// Regions not listed default to hash-for-home (what TSHMEM uses
    /// for common memory).
    pub homing_overrides: Mutex<Vec<(usize, usize, Homing)>>,
    /// Optional operation trace (see `crate::trace`).
    pub trace: Option<Arc<crate::trace::TraceSink>>,
}

impl TimedShared {
    pub fn new(
        area: TestArea,
        npes: usize,
        partition_bytes: usize,
        private_bytes: usize,
    ) -> Arc<Self> {
        Self::new_traced(area, npes, partition_bytes, private_bytes, None)
    }

    pub fn new_traced(
        area: TestArea,
        npes: usize,
        partition_bytes: usize,
        private_bytes: usize,
        trace: Option<Arc<crate::trace::TraceSink>>,
    ) -> Arc<Self> {
        assert!(
            npes <= area.tiles(),
            "{npes} PEs exceed the {}-tile test area",
            area.tiles()
        );
        let arena = CommonMemory::new(npes * partition_bytes, Homing::HashForHome);
        let privates = (0..npes)
            .map(|pe| CommonMemory::new(private_bytes, Homing::Local(pe)))
            .collect();
        Arc::new(Self {
            arena,
            privates,
            mem: Mutex::new(MemorySystem::new(area.device, npes)),
            model: UdnModel::new(area),
            npes,
            partition_bytes,
            homing_overrides: Mutex::new(Vec::new()),
            trace,
        })
    }
}

/// Per-LP timed fabric. The PE's main context and its service context
/// share `pe` but hold different coop handles.
pub struct TimedFabric {
    shared: Arc<TimedShared>,
    pe: usize,
    coop: CoopHandle<ProtoMsg>,
}

impl TimedFabric {
    /// Fabric for LP `lp_id` of a `2 * npes`-LP cooperative run: LPs
    /// `0..npes` are PEs, `npes..2*npes` their service contexts.
    pub fn for_lp(shared: Arc<TimedShared>, lp_id: usize, coop: CoopHandle<ProtoMsg>) -> Self {
        let pe = lp_id % shared.npes;
        Self { shared, pe, coop }
    }

    fn clock(&self) -> tile_arch::clock::Clock {
        self.shared.model.area.device.clock
    }

    fn advance_cycles(&self, cycles: f64) {
        self.coop
            .advance(SimTime::from_ps(self.clock().cycles_f64_to_ps(cycles)));
    }

    fn sim_arena(&self, off: usize) -> MemRef {
        let homing = self
            .shared
            .homing_overrides
            .lock()
            .iter()
            .find(|(s, e, _)| (*s..*e).contains(&off))
            .map(|(_, _, h)| *h)
            .unwrap_or(Homing::HashForHome);
        MemRef::new(SIM_ARENA_BASE + off as u64, homing)
    }

    fn sim_priv(&self, off: usize) -> MemRef {
        MemRef::new(
            SIM_PRIV_BASE + self.pe as u64 * SIM_REGION_SPAN + off as u64,
            Homing::Local(self.pe),
        )
    }

    fn sim_scratch(&self, key: usize, len: usize) -> MemRef {
        let off = (key as u64) % (SCRATCH_WRAP.saturating_sub(len as u64).max(1));
        MemRef::new(
            SIM_SCRATCH_BASE + self.pe as u64 * SIM_REGION_SPAN + off,
            Homing::Local(self.pe),
        )
    }

    /// Charge a costed copy and advance this LP's clock to completion.
    fn charge_copy(&self, dst: MemRef, src: MemRef, len: usize) {
        if len == 0 {
            return;
        }
        let t0 = self.coop.now();
        self.advance_cycles(OP_OVERHEAD_CYCLES);
        let now = self.coop.now();
        let done = self
            .coop
            .with_global(|| self.shared.mem.lock().copy(self.pe, dst, src, len as u64, now));
        self.coop.advance_to(done);
        self.trace(crate::trace::TraceKind::Copy, t0, usize::MAX, len as u64);
    }

    /// Append a trace event (no-op unless tracing is enabled).
    fn trace(&self, kind: crate::trace::TraceKind, start: SimTime, peer: usize, bytes: u64) {
        if let Some(sink) = &self.shared.trace {
            sink.record(crate::trace::TraceEvent {
                pe: self.pe,
                kind,
                start,
                end: self.coop.now(),
                peer,
                bytes,
            });
        }
    }
}

impl Fabric for TimedFabric {
    fn pe(&self) -> usize {
        self.pe
    }

    fn npes(&self) -> usize {
        self.shared.npes
    }

    fn partition_bytes(&self) -> usize {
        self.shared.partition_bytes
    }

    fn device(&self) -> tile_arch::device::Device {
        self.shared.model.area.device
    }

    fn udn_send(&self, dest: usize, queue: usize, tag: u16, payload: &[u64]) {
        assert!(dest < self.shared.npes, "unknown destination PE {dest}");
        let t0 = self.coop.now();
        // Software injection overhead, then wormhole wire latency.
        self.coop
            .advance(SimTime::from_ps(self.shared.model.sw_overhead_ps()));
        let wire = self.shared.model.one_way_ps(self.pe, dest, payload.len() + 1);
        let dest_lp = if queue == Q_SERVICE {
            self.shared.npes + dest
        } else {
            dest
        };
        self.coop.send(
            dest_lp,
            queue,
            ProtoMsg {
                src: self.pe,
                tag,
                payload: payload.to_vec(),
            },
            SimTime::from_ps(wire),
        );
        self.trace(
            crate::trace::TraceKind::UdnSend,
            t0,
            dest,
            ((payload.len() + 1) * self.shared.model.area.device.word_bytes) as u64,
        );
    }

    fn udn_recv(&self, queue: usize) -> ProtoMsg {
        let t0 = self.coop.now();
        let msg = self.coop.recv(queue);
        self.trace(crate::trace::TraceKind::Wait, t0, usize::MAX, 0);
        msg
    }

    fn udn_try_recv(&self, queue: usize) -> Option<ProtoMsg> {
        self.coop.try_recv(queue)
    }

    fn arena_copy(&self, dst: usize, src: usize, len: usize) {
        self.shared.arena.copy_within(dst, src, len);
        self.charge_copy(self.sim_arena(dst), self.sim_arena(src), len);
    }

    fn arena_write(&self, dst: usize, src: &[u8]) {
        self.shared.arena.write_bytes(dst, src);
        self.charge_copy(self.sim_arena(dst), self.sim_scratch(dst, src.len()), src.len());
    }

    fn arena_read(&self, src: usize, dst: &mut [u8]) {
        self.shared.arena.read_bytes(src, dst);
        self.charge_copy(self.sim_scratch(src, dst.len()), self.sim_arena(src), dst.len());
    }

    fn arena_read_u64(&self, off: usize) -> u64 {
        self.advance_cycles(FLAG_RW_CYCLES);
        self.shared
            .arena
            .atomic_u64(off)
            .load(std::sync::atomic::Ordering::Acquire)
    }

    fn arena_read_u32(&self, off: usize) -> u32 {
        self.advance_cycles(FLAG_RW_CYCLES);
        self.shared
            .arena
            .atomic_u32(off)
            .load(std::sync::atomic::Ordering::Acquire)
    }

    fn arena_write_u64(&self, off: usize, v: u64) {
        self.advance_cycles(FLAG_RW_CYCLES);
        self.shared
            .arena
            .atomic_u64(off)
            .store(v, std::sync::atomic::Ordering::Release);
    }

    fn arena_rmw(&self, off: usize, op: RmwOp, operand: u64, width: RmwWidth) -> u64 {
        self.advance_cycles(RMW_CYCLES);
        // Only one LP runs at a time, so sequenced RMW through the
        // shared arena is atomic by construction; the atomics keep the
        // native types shared.
        self.coop.with_global(|| {
            use std::sync::atomic::Ordering::AcqRel;
            match width {
                RmwWidth::W64 => {
                    let a = self.shared.arena.atomic_u64(off);
                    match op {
                        RmwOp::Add => a.fetch_add(operand, AcqRel),
                        RmwOp::Swap => a.swap(operand, AcqRel),
                        RmwOp::And => a.fetch_and(operand, AcqRel),
                        RmwOp::Or => a.fetch_or(operand, AcqRel),
                        RmwOp::Xor => a.fetch_xor(operand, AcqRel),
                    }
                }
                RmwWidth::W32 => {
                    let a = self.shared.arena.atomic_u32(off);
                    let v = operand as u32;
                    (match op {
                        RmwOp::Add => a.fetch_add(v, AcqRel),
                        RmwOp::Swap => a.swap(v, AcqRel),
                        RmwOp::And => a.fetch_and(v, AcqRel),
                        RmwOp::Or => a.fetch_or(v, AcqRel),
                        RmwOp::Xor => a.fetch_xor(v, AcqRel),
                    }) as u64
                }
            }
        })
    }

    fn arena_cswap(&self, off: usize, cond: u64, new: u64, width: RmwWidth) -> u64 {
        self.advance_cycles(RMW_CYCLES);
        self.coop.with_global(|| {
            use std::sync::atomic::Ordering::{AcqRel, Acquire};
            match width {
                RmwWidth::W64 => {
                    match self
                        .shared
                        .arena
                        .atomic_u64(off)
                        .compare_exchange(cond, new, AcqRel, Acquire)
                    {
                        Ok(o) | Err(o) => o,
                    }
                }
                RmwWidth::W32 => {
                    match self.shared.arena.atomic_u32(off).compare_exchange(
                        cond as u32,
                        new as u32,
                        AcqRel,
                        Acquire,
                    ) {
                        Ok(o) | Err(o) => o as u64,
                    }
                }
            }
        })
    }

    fn private_write(&self, off: usize, src: &[u8]) {
        self.shared.privates[self.pe].write_bytes(off, src);
        self.charge_copy(self.sim_priv(off), self.sim_scratch(off, src.len()), src.len());
    }

    fn private_read(&self, off: usize, dst: &mut [u8]) {
        self.shared.privates[self.pe].read_bytes(off, dst);
        self.charge_copy(self.sim_scratch(off, dst.len()), self.sim_priv(off), dst.len());
    }

    fn private_to_arena(&self, arena_dst: usize, priv_src: usize, len: usize) {
        CommonMemory::copy_between(
            &self.shared.arena,
            arena_dst,
            &self.shared.privates[self.pe],
            priv_src,
            len,
        );
        self.charge_copy(self.sim_arena(arena_dst), self.sim_priv(priv_src), len);
    }

    fn arena_to_private(&self, priv_dst: usize, arena_src: usize, len: usize) {
        CommonMemory::copy_between(
            &self.shared.privates[self.pe],
            priv_dst,
            &self.shared.arena,
            arena_src,
            len,
        );
        self.charge_copy(self.sim_priv(priv_dst), self.sim_arena(arena_src), len);
    }

    fn arena_raw(&self, off: usize, len: usize) -> *mut u8 {
        self.shared.arena.raw(off, len)
    }

    fn private_raw(&self, off: usize, len: usize) -> *mut u8 {
        self.shared.privates[self.pe].raw(off, len)
    }

    fn tmc_spin_barrier(&self, set: (usize, u32, usize)) {
        // Model: everyone announces arrival to the set's start PE with
        // zero wire cost; the release is timed so all participants leave
        // at max(arrivals) + the calibrated Figure 5 spin latency.
        const TAG_SPIN: u16 = 0x5B;
        let (start, log2_stride, size) = set;
        let stride = 1usize << log2_stride;
        let device = self.shared.model.area.device;
        let spin = SimTime::from_ps(device.timings.barrier.spin_ps(size));
        if size == 1 {
            self.coop.advance(spin);
            return;
        }
        if self.pe == start {
            for _ in 1..size {
                let m = self.coop.recv(crate::fabric::Q_BARRIER);
                debug_assert_eq!(m.tag, TAG_SPIN);
            }
            let release = self.coop.now() + spin;
            for r in 1..size {
                let dest = start + r * stride;
                let latency = release.saturating_sub(self.coop.now());
                self.coop.send(
                    dest,
                    crate::fabric::Q_BARRIER,
                    ProtoMsg {
                        src: self.pe,
                        tag: TAG_SPIN,
                        payload: vec![],
                    },
                    latency,
                );
            }
            self.coop.advance_to(release);
        } else {
            self.coop.send(
                start,
                crate::fabric::Q_BARRIER,
                ProtoMsg {
                    src: self.pe,
                    tag: TAG_SPIN,
                    payload: vec![],
                },
                SimTime::ZERO,
            );
            let m = self.coop.recv(crate::fabric::Q_BARRIER);
            debug_assert_eq!(m.tag, TAG_SPIN);
        }
    }

    fn set_region_homing(&self, global_off: usize, len: usize, homing: Homing) {
        let mut o = self.shared.homing_overrides.lock();
        o.retain(|(s, _, _)| *s != global_off);
        o.push((global_off, global_off + len, homing));
    }

    fn clear_region_homing(&self, global_off: usize) {
        self.shared
            .homing_overrides
            .lock()
            .retain(|(s, _, _)| *s != global_off);
    }

    fn quiet(&self) {
        tmc::fence::mem_fence();
        self.advance_cycles(QUIET_CYCLES);
    }

    fn wait_pause(&self, attempt: u32) {
        // Exponential backoff: 50 cycles doubling to a 12.8k-cycle cap
        // (~13 us at 1 GHz). Detection latency is overestimated by at
        // most one interval, negligible against the operations these
        // waits pace.
        let step = POLL_CYCLES * f64::from(1u32 << attempt.min(8));
        self.advance_cycles(step);
    }

    fn compute(&self, cycles: f64) {
        let t0 = self.coop.now();
        self.advance_cycles(cycles);
        self.trace(crate::trace::TraceKind::Compute, t0, usize::MAX, 0);
    }

    fn now_ns(&self) -> f64 {
        self.coop.now().ns_f64()
    }
}
