//! The timed engine: the same protocol code and the same real data
//! movement as the native engine, executed under the virtual-time
//! cooperative scheduler with calibrated Tilera costs.
//!
//! Every PE (and every PE's interrupt-service context) is a logical
//! process of `desim::coop`; clocks advance by the costs the modeled
//! device would pay — UDN setup-and-teardown plus per-hop wormhole
//! cycles for messages, cache-classified copy cycles for data movement,
//! and busy-until home-port/DRAM contention for concurrent transfers.
//! Determinism is inherited from the scheduler: a timed run is
//! bit-reproducible.

use std::sync::Arc;

use cachesim::homing::Homing;
use cachesim::memsys::{MemRef, MemorySystem};
use desim::coop::CoopHandle;
use desim::time::SimTime;
use substrate::sync::Mutex;
use tile_arch::area::TestArea;
use tmc::common::CommonMemory;
use udn::timing::UdnModel;

use crate::fabric::{BlockedOn, Fabric, PeProbe, ProtoMsg, RmwOp, RmwWidth, Q_SERVICE};

/// Extra coop channel carrying queue-space credits: a sender blocked on
/// a full modeled UDN queue parks in `recv(CH_CREDIT)` and is granted a
/// zero-latency credit when the destination drains a packet. Parking on
/// a real coop channel makes a cycle of full-queue senders a *genuine*
/// desim deadlock — exactly what the timed watchdog detects.
pub const CH_CREDIT: usize = udn::NUM_QUEUES;
/// Extra coop channel for `tmc_spin_barrier` traffic, so spin-barrier
/// tokens can never interleave with protocol messages on `Q_BARRIER`
/// when a program mixes barrier algorithms.
pub const CH_SPIN: usize = udn::NUM_QUEUES + 1;
/// Channels per LP a timed cooperative run must be launched with.
pub const TIMED_CHANNELS: usize = udn::NUM_QUEUES + 2;

/// Failed-poll budget per single wait (`wait_pause` attempts): a wait
/// that polls this many times without its condition changing has spun
/// for tens of virtual seconds — a livelock that would otherwise burn
/// real CPU forever, since virtual time advances keep every poller
/// runnable. Panic instead so the test runner can never hang.
const SPIN_BUDGET: u32 = 2_000_000;

/// Per-destination modeled UDN queue occupancy and the senders parked
/// waiting for space.
struct QueueState {
    /// `occ[dest_lp][queue]`: packets sent but not yet received.
    occ: Vec<[usize; udn::NUM_QUEUES]>,
    /// `(dest_lp, queue, sender_lp)` for every parked sender.
    waiters: Vec<(usize, usize, usize)>,
}

const TAG_CREDIT: u16 = 0x5C;

/// Simulated-address-space bases (disjoint regions for classification).
const SIM_ARENA_BASE: u64 = 1 << 32;
const SIM_PRIV_BASE: u64 = 1 << 40;
const SIM_SCRATCH_BASE: u64 = 1 << 41;
const SIM_REGION_SPAN: u64 = 1 << 28;
/// Local scratch (stack/heap buffers) wraps so repeated transfers from
/// "the same local buffer" stay cache-warm, as they would on hardware.
const SCRATCH_WRAP: u64 = 8 * 1024 * 1024;

/// Cycle charges for operations not covered by the copy model.
const FLAG_RW_CYCLES: f64 = 30.0;
const RMW_CYCLES: f64 = 60.0;
const QUIET_CYCLES: f64 = 10.0;
const POLL_CYCLES: f64 = 50.0;
/// Per-call software overhead of a data-plane operation (argument
/// checks, address classification, `memcpy` setup) — what makes small
/// puts latency-bound in Figure 6 rather than running at the L1d
/// plateau.
const OP_OVERHEAD_CYCLES: f64 = 60.0;

/// Launch-wide state shared by every timed fabric.
pub struct TimedShared {
    pub arena: Arc<CommonMemory>,
    pub privates: Vec<Arc<CommonMemory>>,
    pub mem: Mutex<MemorySystem>,
    pub model: UdnModel,
    pub npes: usize,
    pub partition_bytes: usize,
    /// Homing overrides for arena regions: (start, end, policy).
    /// Regions not listed default to hash-for-home (what TSHMEM uses
    /// for common memory).
    pub homing_overrides: Mutex<Vec<(usize, usize, Homing)>>,
    /// Optional operation trace (see `crate::trace`).
    pub trace: Option<Arc<crate::trace::TraceSink>>,
    /// Per-LP probes (`0..npes` the PEs, `npes..2*npes` their service
    /// contexts) — the same introspection the native engine gives the
    /// watchdog, read by `TimedWatch` at deadlock-detection time.
    pub probes: Vec<Arc<PeProbe>>,
    /// Modeled UDN queue depth (packets); `None` = unbounded.
    pub queue_cap: Option<usize>,
    qstate: Mutex<QueueState>,
}

impl TimedShared {
    pub fn new(
        area: TestArea,
        npes: usize,
        partition_bytes: usize,
        private_bytes: usize,
    ) -> Arc<Self> {
        Self::new_traced(area, npes, partition_bytes, private_bytes, None)
    }

    pub fn new_traced(
        area: TestArea,
        npes: usize,
        partition_bytes: usize,
        private_bytes: usize,
        trace: Option<Arc<crate::trace::TraceSink>>,
    ) -> Arc<Self> {
        Self::new_full(area, npes, partition_bytes, private_bytes, trace, None)
    }

    /// Full constructor: `queue_cap` bounds the modeled UDN demux
    /// queues (packets per queue), giving the timed engine the same
    /// finite-buffer backpressure semantics as a bounded native fabric.
    pub fn new_full(
        area: TestArea,
        npes: usize,
        partition_bytes: usize,
        private_bytes: usize,
        trace: Option<Arc<crate::trace::TraceSink>>,
        queue_cap: Option<usize>,
    ) -> Arc<Self> {
        assert!(
            npes <= area.tiles(),
            "{npes} PEs exceed the {}-tile test area",
            area.tiles()
        );
        assert!(queue_cap != Some(0), "queue_cap must be at least 1 packet");
        let arena = CommonMemory::new(npes * partition_bytes, Homing::HashForHome);
        let privates = (0..npes)
            .map(|pe| CommonMemory::new(private_bytes, Homing::Local(pe)))
            .collect();
        Arc::new(Self {
            arena,
            privates,
            mem: Mutex::new(MemorySystem::new(area.device, npes)),
            model: UdnModel::new(area),
            npes,
            partition_bytes,
            homing_overrides: Mutex::new(Vec::new()),
            trace,
            probes: (0..2 * npes).map(|_| Arc::new(PeProbe::new())).collect(),
            queue_cap,
            qstate: Mutex::new(QueueState {
                occ: vec![[0; udn::NUM_QUEUES]; 2 * npes],
                waiters: Vec::new(),
            }),
        })
    }

    /// Snapshot of the modeled demux-queue occupancy of LP `lp`.
    pub fn queue_occupancy(&self, lp: usize) -> [usize; udn::NUM_QUEUES] {
        self.qstate.lock().occ[lp]
    }
}

/// Per-LP timed fabric. The PE's main context and its service context
/// share `pe` but hold different coop handles (and distinct probes).
pub struct TimedFabric {
    shared: Arc<TimedShared>,
    pe: usize,
    lp: usize,
    probe: Arc<PeProbe>,
    coop: CoopHandle<ProtoMsg>,
}

impl TimedFabric {
    /// Fabric for LP `lp_id` of a `2 * npes`-LP cooperative run: LPs
    /// `0..npes` are PEs, `npes..2*npes` their service contexts.
    pub fn for_lp(shared: Arc<TimedShared>, lp_id: usize, coop: CoopHandle<ProtoMsg>) -> Self {
        let pe = lp_id % shared.npes;
        let probe = shared.probes[lp_id].clone();
        Self {
            shared,
            pe,
            lp: lp_id,
            probe,
            coop,
        }
    }

    fn clock(&self) -> tile_arch::clock::Clock {
        self.shared.model.area.device.clock
    }

    /// Count one completed (state-changing) op, tick the fault plane's
    /// op clock, and serve any `SlowPe` fault by advancing virtual time.
    fn progress(&self) {
        self.probe.bump();
        crate::fault::note_op();
        if let Some(us) = crate::fault::slow_pe_delay_us(self.pe) {
            self.coop.advance(SimTime::from_ns(us * 1000));
        }
    }

    /// Effective modeled queue depth: the configured cap, tightened by
    /// any active `ClampQueueDepth` fault.
    fn effective_cap(&self) -> Option<usize> {
        let clamp = crate::fault::clamp_queue_depth();
        match (self.shared.queue_cap, clamp) {
            (Some(b), Some(c)) => Some(b.min(c)),
            (Some(b), None) => Some(b),
            (None, c) => c,
        }
    }

    /// Reserve one slot in `dest_lp`'s modeled demux queue `queue`.
    /// Occupancy is tracked unconditionally (it feeds the stall
    /// diagnosis); the depth bound only gates when a cap is in effect.
    /// Returns `false` if non-blocking and the queue is full. A
    /// blocking reservation parks this LP on [`CH_CREDIT`] until the
    /// destination drains a packet — so a cycle of full-queue blocking
    /// senders is a real desim deadlock.
    fn reserve_slot(&self, dest_lp: usize, queue: usize, dest_pe: usize, blocking: bool) -> bool {
        loop {
            let cap = self.effective_cap();
            {
                let mut q = self.shared.qstate.lock();
                if cap.is_none_or(|c| q.occ[dest_lp][queue] < c) {
                    q.occ[dest_lp][queue] += 1;
                    return true;
                }
                if !blocking {
                    return false;
                }
                q.waiters.push((dest_lp, queue, self.lp));
            }
            self.probe.set_blocked(BlockedOn::SendFull { dest: dest_pe, queue });
            self.probe.spin();
            let credit = self.coop.recv(CH_CREDIT);
            debug_assert_eq!(credit.tag, TAG_CREDIT);
            self.probe.set_blocked(BlockedOn::Running);
            // Re-check: another sender may have taken the freed slot.
        }
    }

    /// Release the slot a just-received packet held in this LP's
    /// modeled queue and grant one credit to a parked sender, if any.
    fn release_slot(&self, queue: usize) {
        let woken = {
            let mut q = self.shared.qstate.lock();
            let occ = &mut q.occ[self.lp][queue];
            *occ = occ.saturating_sub(1);
            q.waiters
                .iter()
                .position(|&(d, qu, _)| d == self.lp && qu == queue)
                .map(|i| q.waiters.remove(i).2)
        };
        if let Some(sender_lp) = woken {
            self.coop.send(
                sender_lp,
                CH_CREDIT,
                ProtoMsg {
                    src: self.pe,
                    tag: TAG_CREDIT,
                    payload: vec![],
                },
                SimTime::ZERO,
            );
        }
    }

    /// The wire-and-overhead half of a UDN send, after slot reservation.
    fn send_inner(&self, dest_lp: usize, dest: usize, queue: usize, tag: u16, payload: &[u64]) {
        let t0 = self.coop.now();
        if let Some(us) = crate::fault::protocol_send_delay_us() {
            self.coop.advance(SimTime::from_ns(us * 1000));
        }
        // Software injection overhead, then wormhole wire latency.
        self.coop
            .advance(SimTime::from_ps(self.shared.model.sw_overhead_ps()));
        let wire = self.shared.model.one_way_ps(self.pe, dest, payload.len() + 1);
        self.coop.send(
            dest_lp,
            queue,
            ProtoMsg {
                src: self.pe,
                tag,
                payload: payload.to_vec(),
            },
            SimTime::from_ps(wire),
        );
        self.trace(
            crate::trace::TraceKind::UdnSend,
            t0,
            dest,
            ((payload.len() + 1) * self.shared.model.area.device.word_bytes) as u64,
        );
        self.progress();
    }

    fn advance_cycles(&self, cycles: f64) {
        self.coop
            .advance(SimTime::from_ps(self.clock().cycles_f64_to_ps(cycles)));
    }

    fn sim_arena(&self, off: usize) -> MemRef {
        let homing = self
            .shared
            .homing_overrides
            .lock()
            .iter()
            .find(|(s, e, _)| (*s..*e).contains(&off))
            .map(|(_, _, h)| *h)
            .unwrap_or(Homing::HashForHome);
        MemRef::new(SIM_ARENA_BASE + off as u64, homing)
    }

    fn sim_priv(&self, off: usize) -> MemRef {
        MemRef::new(
            SIM_PRIV_BASE + self.pe as u64 * SIM_REGION_SPAN + off as u64,
            Homing::Local(self.pe),
        )
    }

    fn sim_scratch(&self, key: usize, len: usize) -> MemRef {
        let off = (key as u64) % (SCRATCH_WRAP.saturating_sub(len as u64).max(1));
        MemRef::new(
            SIM_SCRATCH_BASE + self.pe as u64 * SIM_REGION_SPAN + off,
            Homing::Local(self.pe),
        )
    }

    /// Charge a costed copy and advance this LP's clock to completion.
    fn charge_copy(&self, dst: MemRef, src: MemRef, len: usize) {
        if len == 0 {
            return;
        }
        let t0 = self.coop.now();
        self.advance_cycles(OP_OVERHEAD_CYCLES);
        let now = self.coop.now();
        let done = self
            .coop
            .with_global(|| self.shared.mem.lock().copy(self.pe, dst, src, len as u64, now));
        self.coop.advance_to(done);
        self.trace(crate::trace::TraceKind::Copy, t0, usize::MAX, len as u64);
    }

    /// Append a trace event (no-op unless tracing is enabled).
    fn trace(&self, kind: crate::trace::TraceKind, start: SimTime, peer: usize, bytes: u64) {
        if let Some(sink) = &self.shared.trace {
            sink.record(crate::trace::TraceEvent {
                pe: self.pe,
                kind,
                start,
                end: self.coop.now(),
                peer,
                bytes,
            });
        }
    }
}

impl Fabric for TimedFabric {
    fn pe(&self) -> usize {
        self.pe
    }

    fn npes(&self) -> usize {
        self.shared.npes
    }

    fn partition_bytes(&self) -> usize {
        self.shared.partition_bytes
    }

    fn device(&self) -> tile_arch::device::Device {
        self.shared.model.area.device
    }

    fn udn_send(&self, dest: usize, queue: usize, tag: u16, payload: &[u64]) {
        assert!(dest < self.shared.npes, "unknown destination PE {dest}");
        let dest_lp = if queue == Q_SERVICE {
            self.shared.npes + dest
        } else {
            dest
        };
        self.reserve_slot(dest_lp, queue, dest, true);
        self.send_inner(dest_lp, dest, queue, tag, payload);
    }

    fn udn_try_send(&self, dest: usize, queue: usize, tag: u16, payload: &[u64]) -> bool {
        assert!(dest < self.shared.npes, "unknown destination PE {dest}");
        let dest_lp = if queue == Q_SERVICE {
            self.shared.npes + dest
        } else {
            dest
        };
        if !self.reserve_slot(dest_lp, queue, dest, false) {
            self.probe.spin();
            return false;
        }
        self.send_inner(dest_lp, dest, queue, tag, payload);
        true
    }

    fn udn_recv(&self, queue: usize) -> ProtoMsg {
        let t0 = self.coop.now();
        self.probe.set_blocked(BlockedOn::Recv { queue });
        let msg = self.coop.recv(queue);
        self.probe.set_blocked(BlockedOn::Running);
        self.release_slot(queue);
        self.trace(crate::trace::TraceKind::Wait, t0, usize::MAX, 0);
        self.progress();
        msg
    }

    fn udn_try_recv(&self, queue: usize) -> Option<ProtoMsg> {
        let got = self.coop.try_recv(queue);
        if got.is_some() {
            self.release_slot(queue);
            self.progress();
        }
        got
    }

    fn arena_copy(&self, dst: usize, src: usize, len: usize) {
        self.shared.arena.copy_within(dst, src, len);
        self.charge_copy(self.sim_arena(dst), self.sim_arena(src), len);
        self.progress();
    }

    fn arena_write(&self, dst: usize, src: &[u8]) {
        self.shared.arena.write_bytes(dst, src);
        self.charge_copy(self.sim_arena(dst), self.sim_scratch(dst, src.len()), src.len());
        self.progress();
    }

    fn arena_read(&self, src: usize, dst: &mut [u8]) {
        self.shared.arena.read_bytes(src, dst);
        self.charge_copy(self.sim_scratch(src, dst.len()), self.sim_arena(src), dst.len());
        self.progress();
    }

    fn arena_read_u64(&self, off: usize) -> u64 {
        self.advance_cycles(FLAG_RW_CYCLES);
        self.shared
            .arena
            .atomic_u64(off)
            .load(std::sync::atomic::Ordering::Acquire)
    }

    fn arena_read_u32(&self, off: usize) -> u32 {
        self.advance_cycles(FLAG_RW_CYCLES);
        self.shared
            .arena
            .atomic_u32(off)
            .load(std::sync::atomic::Ordering::Acquire)
    }

    fn arena_write_u64(&self, off: usize, v: u64) {
        self.advance_cycles(FLAG_RW_CYCLES);
        self.shared
            .arena
            .atomic_u64(off)
            .store(v, std::sync::atomic::Ordering::Release);
        // A flag store is useful work; atomic loads stay uncounted.
        self.progress();
    }

    fn arena_rmw(&self, off: usize, op: RmwOp, operand: u64, width: RmwWidth) -> u64 {
        self.advance_cycles(RMW_CYCLES);
        self.progress();
        // Only one LP runs at a time, so sequenced RMW through the
        // shared arena is atomic by construction; the atomics keep the
        // native types shared.
        self.coop.with_global(|| {
            use std::sync::atomic::Ordering::AcqRel;
            match width {
                RmwWidth::W64 => {
                    let a = self.shared.arena.atomic_u64(off);
                    match op {
                        RmwOp::Add => a.fetch_add(operand, AcqRel),
                        RmwOp::Swap => a.swap(operand, AcqRel),
                        RmwOp::And => a.fetch_and(operand, AcqRel),
                        RmwOp::Or => a.fetch_or(operand, AcqRel),
                        RmwOp::Xor => a.fetch_xor(operand, AcqRel),
                    }
                }
                RmwWidth::W32 => {
                    let a = self.shared.arena.atomic_u32(off);
                    let v = operand as u32;
                    (match op {
                        RmwOp::Add => a.fetch_add(v, AcqRel),
                        RmwOp::Swap => a.swap(v, AcqRel),
                        RmwOp::And => a.fetch_and(v, AcqRel),
                        RmwOp::Or => a.fetch_or(v, AcqRel),
                        RmwOp::Xor => a.fetch_xor(v, AcqRel),
                    }) as u64
                }
            }
        })
    }

    fn arena_cswap(&self, off: usize, cond: u64, new: u64, width: RmwWidth) -> u64 {
        self.advance_cycles(RMW_CYCLES);
        let old = self.coop.with_global(|| {
            use std::sync::atomic::Ordering::{AcqRel, Acquire};
            match width {
                RmwWidth::W64 => {
                    match self
                        .shared
                        .arena
                        .atomic_u64(off)
                        .compare_exchange(cond, new, AcqRel, Acquire)
                    {
                        Ok(o) | Err(o) => o,
                    }
                }
                RmwWidth::W32 => {
                    match self.shared.arena.atomic_u32(off).compare_exchange(
                        cond as u32,
                        new as u32,
                        AcqRel,
                        Acquire,
                    ) {
                        Ok(o) | Err(o) => o as u64,
                    }
                }
            }
        });
        // Same useful-vs-spin split as the native engine.
        if old == cond {
            self.progress();
        } else {
            self.probe.spin();
        }
        old
    }

    fn private_write(&self, off: usize, src: &[u8]) {
        self.shared.privates[self.pe].write_bytes(off, src);
        self.charge_copy(self.sim_priv(off), self.sim_scratch(off, src.len()), src.len());
        self.progress();
    }

    fn private_read(&self, off: usize, dst: &mut [u8]) {
        self.shared.privates[self.pe].read_bytes(off, dst);
        self.charge_copy(self.sim_scratch(off, dst.len()), self.sim_priv(off), dst.len());
        self.progress();
    }

    fn private_to_arena(&self, arena_dst: usize, priv_src: usize, len: usize) {
        CommonMemory::copy_between(
            &self.shared.arena,
            arena_dst,
            &self.shared.privates[self.pe],
            priv_src,
            len,
        );
        self.charge_copy(self.sim_arena(arena_dst), self.sim_priv(priv_src), len);
        self.progress();
    }

    fn arena_to_private(&self, priv_dst: usize, arena_src: usize, len: usize) {
        CommonMemory::copy_between(
            &self.shared.privates[self.pe],
            priv_dst,
            &self.shared.arena,
            arena_src,
            len,
        );
        self.charge_copy(self.sim_priv(priv_dst), self.sim_arena(arena_src), len);
        self.progress();
    }

    fn arena_raw(&self, off: usize, len: usize) -> *mut u8 {
        self.shared.arena.raw(off, len)
    }

    fn private_raw(&self, off: usize, len: usize) -> *mut u8 {
        self.shared.privates[self.pe].raw(off, len)
    }

    fn tmc_spin_barrier(&self, set: (usize, u32, usize)) {
        // Model: everyone announces arrival to the set's start PE with
        // zero wire cost; the release is timed so all participants leave
        // at max(arrivals) + the calibrated Figure 5 spin latency.
        // Tokens ride the dedicated CH_SPIN coop channel so they can
        // never interleave with protocol traffic on Q_BARRIER.
        const TAG_SPIN: u16 = 0x5B;
        let (start, log2_stride, size) = set;
        let stride = 1usize << log2_stride;
        let device = self.shared.model.area.device;
        let spin = SimTime::from_ps(device.timings.barrier.spin_ps(size));
        if size == 1 {
            self.coop.advance(spin);
            self.progress();
            return;
        }
        if self.pe == start {
            self.probe.set_blocked(BlockedOn::Recv { queue: crate::fabric::Q_BARRIER });
            for _ in 1..size {
                let m = self.coop.recv(CH_SPIN);
                debug_assert_eq!(m.tag, TAG_SPIN);
            }
            self.probe.set_blocked(BlockedOn::Running);
            let release = self.coop.now() + spin;
            for r in 1..size {
                let dest = start + r * stride;
                let latency = release.saturating_sub(self.coop.now());
                self.coop.send(
                    dest,
                    CH_SPIN,
                    ProtoMsg {
                        src: self.pe,
                        tag: TAG_SPIN,
                        payload: vec![],
                    },
                    latency,
                );
            }
            self.coop.advance_to(release);
        } else {
            self.coop.send(
                start,
                CH_SPIN,
                ProtoMsg {
                    src: self.pe,
                    tag: TAG_SPIN,
                    payload: vec![],
                },
                SimTime::ZERO,
            );
            self.probe.set_blocked(BlockedOn::Recv { queue: crate::fabric::Q_BARRIER });
            let m = self.coop.recv(CH_SPIN);
            debug_assert_eq!(m.tag, TAG_SPIN);
            self.probe.set_blocked(BlockedOn::Running);
        }
        self.progress();
    }

    fn set_region_homing(&self, global_off: usize, len: usize, homing: Homing) {
        let mut o = self.shared.homing_overrides.lock();
        o.retain(|(s, _, _)| *s != global_off);
        o.push((global_off, global_off + len, homing));
    }

    fn clear_region_homing(&self, global_off: usize) {
        self.shared
            .homing_overrides
            .lock()
            .retain(|(s, _, _)| *s != global_off);
    }

    fn quiet(&self) {
        tmc::fence::mem_fence();
        self.advance_cycles(QUIET_CYCLES);
    }

    fn wait_pause(&self, attempt: u32) {
        self.probe.spin();
        // Under virtual time every poller stays runnable (each poll
        // advances its clock), so a livelock would spin real CPU
        // forever without the desim deadlock detector ever firing.
        // Bound each wait instead: panicking beats hanging the runner.
        if attempt >= SPIN_BUDGET {
            panic!(
                "PE {} (LP {}): virtual-time livelock guard — {attempt} failed polls in one \
                 wait while {}; useful ops {} spins {}",
                self.pe,
                self.lp,
                self.probe.blocked(),
                self.probe.ops(),
                self.probe.spins(),
            );
        }
        // Exponential backoff: 50 cycles doubling to a 12.8k-cycle cap
        // (~13 us at 1 GHz). Detection latency is overestimated by at
        // most one interval, negligible against the operations these
        // waits pace.
        let step = POLL_CYCLES * f64::from(1u32 << attempt.min(8));
        self.advance_cycles(step);
    }

    fn compute(&self, cycles: f64) {
        let t0 = self.coop.now();
        self.advance_cycles(cycles);
        self.trace(crate::trace::TraceKind::Compute, t0, usize::MAX, 0);
    }

    fn now_ns(&self) -> f64 {
        self.coop.now().ns_f64()
    }

    fn inject_delay_us(&self, micros: u64) {
        self.coop.advance(SimTime::from_ns(micros * 1000));
    }

    fn probe(&self) -> Option<&PeProbe> {
        Some(&self.probe)
    }
}
