//! Multi-device SHMEM: the paper's Section VI future work.
//!
//! "Finally, we plan to leverage novel architectural features of the
//! TILE-Gx such as the mPIPE packet engine as we explore designs for
//! expanding the shared-memory abstraction in TSHMEM across multiple
//! many-core devices."
//!
//! This engine runs one SHMEM job across `chips` simulated devices. PEs
//! are block-distributed over chips; each chip has its own cache/DDC
//! memory system, and chip pairs are connected by full-duplex mPIPE
//! links ([`mpipe`]). The same TSHMEM protocol code runs unmodified:
//!
//! * intra-chip operations cost exactly what the single-chip timed
//!   engine charges;
//! * cross-chip UDN messages tunnel over mPIPE (microseconds instead of
//!   the ~21 ns on-chip wire);
//! * cross-chip puts/gets stage through a NIC buffer: a local copy on
//!   the owning chip, link serialization at 10 Gbps, and a copy on the
//!   far chip.
//!
//! Functionally, data still moves in process (the chips are simulated);
//! what changes is the *cost model*, which is the subject of the
//! multi-device ablation (`microbench::ablation`).
//!
//! Like the timed engine, every PE and service context is a coop LP
//! built on [`super::backend`]'s [`CoopCore`]/[`CoopLp`] — so probes,
//! the credit-tracked UDN queue model, trace collection, the fault
//! plane, and the drained-queue watchdog all apply here too. Every
//! cross-chip transfer additionally passes the mPIPE frame-integrity
//! layer ([`mpipe::FrameFault`]): injected corruption/replay panics
//! with a diagnosis naming the link, and injected drops wedge the
//! receiver for the watchdog to attribute.

use std::collections::HashMap;
use std::sync::Arc;

use cachesim::homing::Homing;
use cachesim::memsys::{MemRef, MemorySystem};
use desim::coop::CoopHandle;
use desim::time::SimTime;
use mpipe::{MpipeLink, MpipeTimings};
use substrate::sync::Mutex;
use tile_arch::area::TestArea;
use tmc::common::CommonMemory;
use udn::timing::UdnModel;

use super::backend::{CoopCore, CoopLp};
use super::timed::{
    FLAG_RW_CYCLES, OP_OVERHEAD_CYCLES, QUIET_CYCLES, RMW_CYCLES, SCRATCH_WRAP, SIM_ARENA_BASE,
    SIM_PRIV_BASE, SIM_REGION_SPAN, SIM_SCRATCH_BASE,
};
use crate::fabric::{Fabric, PeProbe, ProtoMsg, RmwOp, RmwWidth};
use crate::trace::{TraceEvent, TraceKind, TraceSink};

/// Launch-wide state of a multi-chip timed job.
pub struct MultiChipShared {
    pub arena: Arc<CommonMemory>,
    pub privates: Vec<Arc<CommonMemory>>,
    /// One memory system per chip.
    pub mems: Vec<Mutex<MemorySystem>>,
    /// Links between chip pairs, keyed by (min, max).
    pub links: Mutex<HashMap<(usize, usize), MpipeLink>>,
    pub model: UdnModel,
    pub link_timings: MpipeTimings,
    pub npes: usize,
    pub pes_per_chip: usize,
    pub chips: usize,
    pub partition_bytes: usize,
    /// The observability core shared with the watchdog (see
    /// [`CoopCore`]); `core.chips > 1` drives the per-chip labels in
    /// stall reports.
    pub core: Arc<CoopCore>,
}

impl MultiChipShared {
    pub fn new(
        area: TestArea,
        chips: usize,
        pes_per_chip: usize,
        partition_bytes: usize,
        private_bytes: usize,
        link_timings: MpipeTimings,
    ) -> Arc<Self> {
        Self::new_full(
            area,
            chips,
            pes_per_chip,
            partition_bytes,
            private_bytes,
            link_timings,
            None,
            None,
        )
    }

    /// Full constructor: `trace` enables operation tracing (cross-chip
    /// transfers appear as [`TraceKind::Link`] events) and `queue_cap`
    /// bounds the modeled UDN demux queues, exactly as on the timed
    /// engine.
    #[allow(clippy::too_many_arguments)]
    pub fn new_full(
        area: TestArea,
        chips: usize,
        pes_per_chip: usize,
        partition_bytes: usize,
        private_bytes: usize,
        link_timings: MpipeTimings,
        trace: Option<Arc<TraceSink>>,
        queue_cap: Option<usize>,
    ) -> Arc<Self> {
        assert!(chips >= 1);
        assert!(
            pes_per_chip <= area.tiles(),
            "{pes_per_chip} PEs per chip exceed the {}-tile area",
            area.tiles()
        );
        let npes = chips * pes_per_chip;
        let mut links = HashMap::new();
        for a in 0..chips {
            for b in a + 1..chips {
                links.insert((a, b), MpipeLink::between(link_timings, a, b));
            }
        }
        Arc::new(Self {
            arena: CommonMemory::new(npes * partition_bytes, Homing::HashForHome),
            privates: (0..npes)
                .map(|pe| CommonMemory::new(private_bytes, Homing::Local(pe % pes_per_chip)))
                .collect(),
            mems: (0..chips)
                .map(|_| Mutex::new(MemorySystem::new(area.device, pes_per_chip)))
                .collect(),
            links: Mutex::new(links),
            model: UdnModel::new(area),
            link_timings,
            npes,
            pes_per_chip,
            chips,
            partition_bytes,
            core: CoopCore::new(npes, chips, trace, queue_cap),
        })
    }

    fn chip_of_pe(&self, pe: usize) -> usize {
        pe / self.pes_per_chip
    }

    fn chip_of_offset(&self, off: usize) -> usize {
        self.chip_of_pe((off / self.partition_bytes).min(self.npes - 1))
    }

    /// Occupy the link between two chips through the frame-integrity
    /// layer. `None` means the frame was dropped in flight by `fault`.
    fn link_transfer_checked(
        &self,
        from: usize,
        to: usize,
        now: SimTime,
        bytes: usize,
        fault: Option<mpipe::FrameFault>,
    ) -> Option<SimTime> {
        debug_assert_ne!(from, to);
        let key = (from.min(to), from.max(to));
        let dir = usize::from(from > to);
        self.links
            .lock()
            .get_mut(&key)
            .expect("link exists for chip pair")
            .transfer_checked(dir, now, bytes, fault)
    }
}

/// Per-LP fabric of a multi-chip timed job.
pub struct MultiChipFabric {
    shared: Arc<MultiChipShared>,
    lp: CoopLp,
}

impl MultiChipFabric {
    /// Fabric for LP `lp_id` of a `2 * npes`-LP cooperative run: LPs
    /// `0..npes` are PEs, `npes..2*npes` their service contexts.
    pub fn for_lp(shared: Arc<MultiChipShared>, lp_id: usize, coop: CoopHandle<ProtoMsg>) -> Self {
        let clock = shared.model.area.device.clock;
        let lp = CoopLp::new(shared.core.clone(), lp_id, coop, clock);
        Self { shared, lp }
    }

    fn pe_id(&self) -> usize {
        self.lp.pe
    }

    fn my_chip(&self) -> usize {
        self.shared.chip_of_pe(self.pe_id())
    }

    /// Tile index of a PE within its chip.
    fn tile_of(&self, pe: usize) -> usize {
        pe % self.shared.pes_per_chip
    }

    fn sim_arena(&self, off: usize) -> MemRef {
        MemRef::new(SIM_ARENA_BASE + off as u64, Homing::HashForHome)
    }

    fn sim_priv(&self, off: usize) -> MemRef {
        MemRef::new(
            SIM_PRIV_BASE + self.pe_id() as u64 * SIM_REGION_SPAN + off as u64,
            Homing::Local(self.tile_of(self.pe_id())),
        )
    }

    fn sim_scratch(&self, key: usize, len: usize) -> MemRef {
        let off = (key as u64) % (SCRATCH_WRAP.saturating_sub(len as u64).max(1));
        MemRef::new(
            SIM_SCRATCH_BASE + self.pe_id() as u64 * SIM_REGION_SPAN + off,
            Homing::Local(self.tile_of(self.pe_id())),
        )
    }

    /// One cross-chip link occupancy: draws the next fault-plane frame
    /// fault, runs the transfer through the integrity layer, and traces
    /// it as a [`TraceKind::Link`] event (far chip in `peer`). Returns
    /// `None` when the frame was dropped in flight — the caller decides
    /// what "nothing arrived" means for its operation.
    fn link_checked(&self, from: usize, to: usize, now: SimTime, bytes: usize) -> Option<SimTime> {
        let fault = crate::fault::link_fault();
        let arrival = self
            .lp
            .coop
            .with_global(|| self.shared.link_transfer_checked(from, to, now, bytes, fault));
        if let Some(sink) = &self.shared.core.trace {
            sink.record_lane(
                self.lp.lp,
                TraceEvent {
                    pe: self.pe_id(),
                    kind: TraceKind::Link,
                    start: now,
                    end: arrival.unwrap_or(now),
                    peer: to,
                    bytes: bytes as u64,
                },
            );
        }
        arrival
    }

    /// Charge a copy on one chip's memory system, issued by this PE (or
    /// its proxy tile on a remote chip).
    fn chip_copy(&self, chip: usize, tile: usize, dst: MemRef, src: MemRef, len: usize, at: SimTime) -> SimTime {
        if len == 0 {
            return at;
        }
        self.lp
            .coop
            .with_global(|| self.shared.mems[chip].lock().copy(tile, dst, src, len as u64, at))
    }

    /// Cost a data movement between two (possibly cross-chip) simulated
    /// regions; advances this LP's clock to completion.
    fn charge_move(&self, dst_chip: usize, dst: MemRef, src_chip: usize, src: MemRef, len: usize) {
        if len == 0 {
            return;
        }
        let t0 = self.lp.coop.now();
        self.lp.advance_cycles(OP_OVERHEAD_CYCLES);
        let now = self.lp.coop.now();
        let me = self.tile_of(self.pe_id());
        let done = if dst_chip == src_chip {
            // Both ends on one chip: a plain on-chip copy (charged to
            // that chip; a remote chip's proxy tile does the work when
            // it isn't ours).
            let tile = if dst_chip == self.my_chip() { me } else { 0 };
            self.chip_copy(dst_chip, tile, dst, src, len, now)
        } else {
            // mPIPE egress/ingress DMA directly from/to memory at wire
            // speed (that is mPIPE's selling point), so the link is the
            // bottleneck: a descriptor-setup charge, the serialization
            // occupancy, and DMA delivery that installs the lines into
            // the far chip's DDC for free. An injected frame drop still
            // spends the wire time; the loss surfaces at the next
            // frame's sequence check (or as a receiver wedge).
            let setup = SimTime::from_ps(2 * self.shared.link_timings.frame_overhead_ps);
            let arrive = self
                .link_checked(src_chip, dst_chip, now + setup, len)
                .unwrap_or(now + setup);
            self.lp.coop.with_global(|| {
                self.shared.mems[dst_chip].lock().install_region(dst.addr, len as u64)
            });
            arrive
        };
        self.lp.coop.advance_to(done);
        self.lp.trace(TraceKind::Copy, t0, usize::MAX, len as u64);
    }

    /// Atomic on a (possibly remote-chip) word: local cost, or an mPIPE
    /// round trip for cross-chip targets.
    fn charge_atomic(&self, off: usize) {
        let chip = self.shared.chip_of_offset(off);
        if chip == self.my_chip() {
            self.lp.advance_cycles(RMW_CYCLES);
        } else {
            let now = self.lp.coop.now();
            let there = self.link_checked(self.my_chip(), chip, now, 16).unwrap_or(now);
            let back = self.link_checked(chip, self.my_chip(), there, 16).unwrap_or(there);
            self.lp.coop.advance_to(back);
        }
    }
}

impl Fabric for MultiChipFabric {
    fn pe(&self) -> usize {
        self.pe_id()
    }

    fn npes(&self) -> usize {
        self.shared.npes
    }

    fn partition_bytes(&self) -> usize {
        self.shared.partition_bytes
    }

    fn device(&self) -> tile_arch::device::Device {
        self.shared.model.area.device
    }

    fn udn_send(&self, dest: usize, queue: usize, tag: u16, payload: &[u64]) {
        assert!(dest < self.shared.npes, "unknown destination PE {dest}");
        self.send_impl(dest, queue, tag, payload, true);
    }

    fn udn_try_send(&self, dest: usize, queue: usize, tag: u16, payload: &[u64]) -> bool {
        assert!(dest < self.shared.npes, "unknown destination PE {dest}");
        self.send_impl(dest, queue, tag, payload, false)
    }

    fn udn_recv(&self, queue: usize) -> ProtoMsg {
        self.lp.recv_tracked(queue)
    }

    fn udn_try_recv(&self, queue: usize) -> Option<ProtoMsg> {
        self.lp.try_recv_tracked(queue)
    }

    fn arena_copy(&self, dst: usize, src: usize, len: usize) {
        self.shared.arena.copy_within(dst, src, len);
        self.charge_move(
            self.shared.chip_of_offset(dst),
            self.sim_arena(dst),
            self.shared.chip_of_offset(src),
            self.sim_arena(src),
            len,
        );
        self.lp.progress();
    }

    fn arena_write(&self, dst: usize, src: &[u8]) {
        self.shared.arena.write_bytes(dst, src);
        self.charge_move(
            self.shared.chip_of_offset(dst),
            self.sim_arena(dst),
            self.my_chip(),
            self.sim_scratch(dst, src.len()),
            src.len(),
        );
        self.lp.progress();
    }

    fn arena_read(&self, src: usize, dst: &mut [u8]) {
        self.shared.arena.read_bytes(src, dst);
        self.charge_move(
            self.my_chip(),
            self.sim_scratch(src, dst.len()),
            self.shared.chip_of_offset(src),
            self.sim_arena(src),
            dst.len(),
        );
        self.lp.progress();
    }

    fn arena_read_u64(&self, off: usize) -> u64 {
        self.lp.advance_cycles(FLAG_RW_CYCLES);
        self.shared
            .arena
            .atomic_u64(off)
            .load(std::sync::atomic::Ordering::Acquire)
    }

    fn arena_read_u32(&self, off: usize) -> u32 {
        self.lp.advance_cycles(FLAG_RW_CYCLES);
        self.shared
            .arena
            .atomic_u32(off)
            .load(std::sync::atomic::Ordering::Acquire)
    }

    fn arena_write_u64(&self, off: usize, v: u64) {
        let chip = self.shared.chip_of_offset(off);
        if chip == self.my_chip() {
            self.lp.advance_cycles(FLAG_RW_CYCLES);
        } else {
            // A remote-chip flag write is a small mPIPE message. A
            // dropped frame costs nothing extra here; the loss surfaces
            // at the link's next sequence check.
            let now = self.lp.coop.now();
            let arrival = self.link_checked(self.my_chip(), chip, now, 16).unwrap_or(now);
            self.lp.coop.advance_to(arrival);
        }
        self.shared
            .arena
            .atomic_u64(off)
            .store(v, std::sync::atomic::Ordering::Release);
        self.lp.progress();
    }

    fn arena_rmw(&self, off: usize, op: RmwOp, operand: u64, width: RmwWidth) -> u64 {
        self.charge_atomic(off);
        self.lp.progress();
        self.lp.coop.with_global(|| {
            use std::sync::atomic::Ordering::AcqRel;
            match width {
                RmwWidth::W64 => {
                    let a = self.shared.arena.atomic_u64(off);
                    match op {
                        RmwOp::Add => a.fetch_add(operand, AcqRel),
                        RmwOp::Swap => a.swap(operand, AcqRel),
                        RmwOp::And => a.fetch_and(operand, AcqRel),
                        RmwOp::Or => a.fetch_or(operand, AcqRel),
                        RmwOp::Xor => a.fetch_xor(operand, AcqRel),
                    }
                }
                RmwWidth::W32 => {
                    let a = self.shared.arena.atomic_u32(off);
                    let v = operand as u32;
                    (match op {
                        RmwOp::Add => a.fetch_add(v, AcqRel),
                        RmwOp::Swap => a.swap(v, AcqRel),
                        RmwOp::And => a.fetch_and(v, AcqRel),
                        RmwOp::Or => a.fetch_or(v, AcqRel),
                        RmwOp::Xor => a.fetch_xor(v, AcqRel),
                    }) as u64
                }
            }
        })
    }

    fn arena_cswap(&self, off: usize, cond: u64, new: u64, width: RmwWidth) -> u64 {
        self.charge_atomic(off);
        let old = self.lp.coop.with_global(|| {
            use std::sync::atomic::Ordering::{AcqRel, Acquire};
            match width {
                RmwWidth::W64 => match self
                    .shared
                    .arena
                    .atomic_u64(off)
                    .compare_exchange(cond, new, AcqRel, Acquire)
                {
                    Ok(o) | Err(o) => o,
                },
                RmwWidth::W32 => match self.shared.arena.atomic_u32(off).compare_exchange(
                    cond as u32,
                    new as u32,
                    AcqRel,
                    Acquire,
                ) {
                    Ok(o) | Err(o) => o as u64,
                },
            }
        });
        // Same useful-vs-spin split as the other engines.
        if old == cond {
            self.lp.progress();
        } else {
            self.lp.probe.spin();
        }
        old
    }

    fn private_write(&self, off: usize, src: &[u8]) {
        self.shared.privates[self.pe_id()].write_bytes(off, src);
        let c = self.my_chip();
        self.charge_move(c, self.sim_priv(off), c, self.sim_scratch(off, src.len()), src.len());
        self.lp.progress();
    }

    fn private_read(&self, off: usize, dst: &mut [u8]) {
        self.shared.privates[self.pe_id()].read_bytes(off, dst);
        let c = self.my_chip();
        self.charge_move(c, self.sim_scratch(off, dst.len()), c, self.sim_priv(off), dst.len());
        self.lp.progress();
    }

    fn private_to_arena(&self, arena_dst: usize, priv_src: usize, len: usize) {
        CommonMemory::copy_between(
            &self.shared.arena,
            arena_dst,
            &self.shared.privates[self.pe_id()],
            priv_src,
            len,
        );
        self.charge_move(
            self.shared.chip_of_offset(arena_dst),
            self.sim_arena(arena_dst),
            self.my_chip(),
            self.sim_priv(priv_src),
            len,
        );
        self.lp.progress();
    }

    fn arena_to_private(&self, priv_dst: usize, arena_src: usize, len: usize) {
        CommonMemory::copy_between(
            &self.shared.privates[self.pe_id()],
            priv_dst,
            &self.shared.arena,
            arena_src,
            len,
        );
        self.charge_move(
            self.my_chip(),
            self.sim_priv(priv_dst),
            self.shared.chip_of_offset(arena_src),
            self.sim_arena(arena_src),
            len,
        );
        self.lp.progress();
    }

    fn arena_raw(&self, off: usize, len: usize) -> *mut u8 {
        self.shared.arena.raw(off, len)
    }

    fn private_raw(&self, off: usize, len: usize) -> *mut u8 {
        self.shared.privates[self.pe_id()].raw(off, len)
    }

    fn tmc_spin_barrier(&self, _set: (usize, u32, usize)) {
        panic!(
            "the TMC spin barrier is a single-chip hardware primitive; \
             multi-chip jobs must use the ring barrier (BarrierAlgo::Ring)"
        );
    }

    fn quiet(&self) {
        tmc::fence::mem_fence();
        self.lp.advance_cycles(QUIET_CYCLES);
    }

    fn wait_pause(&self, attempt: u32) {
        self.lp.wait_pause(attempt);
    }

    fn compute(&self, cycles: f64) {
        let t0 = self.lp.coop.now();
        self.lp.advance_cycles(cycles);
        self.lp.trace(TraceKind::Compute, t0, usize::MAX, 0);
    }

    fn now_ns(&self) -> f64 {
        self.lp.coop.now().ns_f64()
    }

    fn inject_delay_us(&self, micros: u64) {
        self.lp.coop.advance(SimTime::from_ns(micros * 1000));
    }

    fn probe(&self) -> Option<&PeProbe> {
        Some(&self.lp.probe)
    }
}

impl MultiChipFabric {
    /// Shared body of `udn_send`/`udn_try_send`: the tracked send with
    /// this engine's wire model — on-chip wormhole latency within a
    /// chip, an mPIPE frame (through the integrity layer) across chips.
    fn send_impl(&self, dest: usize, queue: usize, tag: u16, payload: &[u64], blocking: bool) -> bool {
        let bytes = ((payload.len() + 1) * self.shared.model.area.device.word_bytes) as u64;
        let (my_chip, dest_chip) = (self.my_chip(), self.shared.chip_of_pe(dest));
        self.lp.send_tracked(
            dest,
            queue,
            tag,
            payload,
            blocking,
            self.shared.model.sw_overhead_ps(),
            (TraceKind::UdnSend, bytes),
            || {
                if my_chip == dest_chip {
                    Some(SimTime::from_ps(self.shared.model.one_way_ps(
                        self.tile_of(self.pe_id()),
                        self.tile_of(dest),
                        payload.len() + 1,
                    )))
                } else {
                    // Tunneled over mPIPE: occupy the link for the
                    // (small) control frame and deliver at its arrival.
                    // A dropped frame delivers nothing — the receiver's
                    // wedge is the watchdog's to diagnose.
                    let now = self.lp.coop.now();
                    self.link_checked(my_chip, dest_chip, now, (payload.len() + 1) * 8)
                        .map(|arrival| arrival.saturating_sub(now))
                }
            },
        )
    }
}
