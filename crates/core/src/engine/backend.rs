//! The engine contract: every engine is one [`EngineBackend`] behind
//! one generic [`Launcher`](crate::runtime::Launcher).
//!
//! Before this module, `runtime.rs` held five hand-rolled `launch*`
//! variants that each re-implemented the PE/service scaffolding (layout
//! validation, fabric construction, `ShmemCtx` setup, service-context
//! wiring, result collection) and drifted apart on observability — the
//! multichip engine could hang silently and returned `trace: None`.
//! Now the scaffolding lives here once, and the cross-cutting planes —
//! [`JobWatch`]/[`TimedWatch`] probes, the seeded
//! [`FaultPlan`](crate::fault::FaultPlan), per-PE introspection, and
//! trace collection — compose uniformly over any backend.
//!
//! ## The contract
//!
//! A backend supplies three things:
//!
//! 1. **a spawn model** — how `total_pes` contexts plus their
//!    interrupt-service contexts come to run ([`NativeBackend`] spawns
//!    real threads; the coop backends run every context as a desim LP);
//! 2. **a fabric factory** — the per-context [`Fabric`] wiring the
//!    protocol code to the engine's cost/transport model;
//! 3. **a watch binding** — how the backend attaches the launcher's
//!    [`WatchPlane`] so liveness detection and fault diagnosis work.
//!
//! Adding a fourth backend (sharded, remote, …) means implementing
//! [`EngineBackend::execute`] — the launcher, watchdogs, fault plane,
//! and trace plumbing come for free. The two virtual-time backends
//! share even more: the credit-tracked UDN queue model, per-LP probes,
//! and trace plumbing live in [`CoopCore`]/[`CoopLp`], so the timed and
//! multichip fabrics differ only in their wire-cost computation.

use std::sync::Arc;

use desim::coop::CoopHandle;
use desim::time::SimTime;
use substrate::sync::Mutex;

use crate::ctx::ShmemCtx;
use crate::fabric::{BlockedOn, Fabric, PeProbe, ProtoMsg, Q_SERVICE};
use udn::packet::PayloadVec;
use crate::runtime::RuntimeConfig;
use crate::service::service_loop;
use crate::trace::{TraceEvent, TraceKind, TraceSink};
use crate::watch::{JobWatch, TimedWatch};

/// Extra coop channel carrying queue-space credits: a sender blocked on
/// a full modeled UDN queue parks in `recv(CH_CREDIT)` and is granted a
/// zero-latency credit when the destination drains a packet. Parking on
/// a real coop channel makes a cycle of full-queue senders a *genuine*
/// desim deadlock — exactly what the coop watchdog detects.
pub const CH_CREDIT: usize = udn::NUM_QUEUES;
/// Extra coop channel for `tmc_spin_barrier` traffic, so spin-barrier
/// tokens can never interleave with protocol messages on `Q_BARRIER`
/// when a program mixes barrier algorithms.
pub const CH_SPIN: usize = udn::NUM_QUEUES + 1;
/// Channels per LP a cooperative (timed/multichip) run is launched with.
pub const TIMED_CHANNELS: usize = udn::NUM_QUEUES + 2;

/// Failed-poll budget per single wait (`wait_pause` attempts): a wait
/// that polls this many times without its condition changing has spun
/// for tens of virtual seconds — a livelock that would otherwise burn
/// real CPU forever, since virtual time advances keep every poller
/// runnable. Panic instead so the test runner can never hang.
const SPIN_BUDGET: u32 = 2_000_000;

const TAG_CREDIT: u16 = 0x5C;

/// Poll-backoff base charge (see [`CoopLp::wait_pause`]).
const POLL_CYCLES: f64 = 50.0;

/// Per-destination modeled UDN queue occupancy and the senders parked
/// waiting for space.
struct QueueState {
    /// `occ[dest_lp][queue]`: packets sent but not yet received.
    occ: Vec<[usize; udn::NUM_QUEUES]>,
    /// `(dest_lp, queue, sender_lp)` for every parked sender.
    waiters: Vec<(usize, usize, usize)>,
}

/// Launch-wide observability state shared by every LP of a cooperative
/// (timed or multichip) run: per-LP probes, the trace sink, and the
/// modeled UDN queue occupancy with its credit waiters. The coop
/// watchdog ([`TimedWatch`]) attaches to this — which is why every coop
/// backend gets liveness diagnosis without engine-specific code.
pub struct CoopCore {
    /// Total PEs in the job (across all chips for multichip).
    pub npes: usize,
    /// Chips the job spans (1 for the single-chip timed engine).
    pub chips: usize,
    /// PEs per chip (`npes` when `chips == 1`).
    pub pes_per_chip: usize,
    /// Per-LP probes (`0..npes` the PEs, `npes..2*npes` their service
    /// contexts) — the same introspection the native engine gives the
    /// watchdog, read by [`TimedWatch`] at deadlock-detection time.
    pub probes: Vec<Arc<PeProbe>>,
    /// Optional operation trace (see `crate::trace`).
    pub trace: Option<Arc<TraceSink>>,
    /// Modeled UDN queue depth (packets); `None` = unbounded.
    pub queue_cap: Option<usize>,
    qstate: Mutex<QueueState>,
}

impl CoopCore {
    pub fn new(
        npes: usize,
        chips: usize,
        trace: Option<Arc<TraceSink>>,
        queue_cap: Option<usize>,
    ) -> Arc<Self> {
        assert!(queue_cap != Some(0), "queue_cap must be at least 1 packet");
        assert!(chips >= 1 && npes.is_multiple_of(chips));
        Arc::new(Self {
            npes,
            chips,
            pes_per_chip: npes / chips,
            probes: (0..2 * npes).map(|_| Arc::new(PeProbe::new())).collect(),
            trace,
            queue_cap,
            qstate: Mutex::new(QueueState {
                occ: vec![[0; udn::NUM_QUEUES]; 2 * npes],
                waiters: Vec::new(),
            }),
        })
    }

    /// Snapshot of the modeled demux-queue occupancy of LP `lp`.
    pub fn queue_occupancy(&self, lp: usize) -> [usize; udn::NUM_QUEUES] {
        self.qstate.lock().occ[lp]
    }

    /// The chip hosting `pe`, when the job spans more than one chip.
    pub fn chip_of(&self, pe: usize) -> Option<usize> {
        (self.chips > 1).then(|| pe / self.pes_per_chip)
    }
}

/// One LP's slice of the shared coop machinery: its identity, probe,
/// coop handle, and the tracked send/recv bodies both virtual-time
/// fabrics delegate to. Engines differ only in the *wire* cost they
/// pass to [`send_tracked`](Self::send_tracked).
pub struct CoopLp {
    pub core: Arc<CoopCore>,
    /// The PE this LP belongs to (service LPs share their PE's id).
    pub pe: usize,
    /// This LP's id (`pe` for main contexts, `npes + pe` for service).
    pub lp: usize,
    pub probe: Arc<PeProbe>,
    pub coop: CoopHandle<ProtoMsg>,
    clock: tile_arch::clock::Clock,
}

impl CoopLp {
    /// The LP-`lp_id` slice of a `2 * npes`-LP cooperative run: LPs
    /// `0..npes` are PEs, `npes..2*npes` their service contexts.
    pub fn new(
        core: Arc<CoopCore>,
        lp_id: usize,
        coop: CoopHandle<ProtoMsg>,
        clock: tile_arch::clock::Clock,
    ) -> Self {
        let pe = lp_id % core.npes;
        let probe = core.probes[lp_id].clone();
        Self { core, pe, lp: lp_id, probe, coop, clock }
    }

    /// Count one completed (state-changing) op, tick the fault plane's
    /// op clock, and serve any `SlowPe` fault by advancing virtual time.
    pub fn progress(&self) {
        self.probe.bump();
        crate::fault::note_op();
        if let Some(us) = crate::fault::slow_pe_delay_us(self.pe) {
            self.coop.advance(SimTime::from_ns(us * 1000));
        }
    }

    /// Effective modeled queue depth: the configured cap, tightened by
    /// any active `ClampQueueDepth` fault.
    fn effective_cap(&self) -> Option<usize> {
        let clamp = crate::fault::clamp_queue_depth();
        match (self.core.queue_cap, clamp) {
            (Some(b), Some(c)) => Some(b.min(c)),
            (Some(b), None) => Some(b),
            (None, c) => c,
        }
    }

    /// The LP a `(dest, queue)` pair routes to: `Q_SERVICE` targets the
    /// destination PE's interrupt-service context.
    pub fn dest_lp(&self, dest: usize, queue: usize) -> usize {
        if queue == Q_SERVICE { self.core.npes + dest } else { dest }
    }

    /// Reserve one slot in `dest_lp`'s modeled demux queue `queue`.
    /// Occupancy is tracked unconditionally (it feeds the stall
    /// diagnosis); the depth bound only gates when a cap is in effect.
    /// Returns `false` if non-blocking and the queue is full. A
    /// blocking reservation parks this LP on [`CH_CREDIT`] until the
    /// destination drains a packet — so a cycle of full-queue blocking
    /// senders is a real desim deadlock.
    fn reserve_slot(&self, dest_lp: usize, queue: usize, dest_pe: usize, blocking: bool) -> bool {
        loop {
            let cap = self.effective_cap();
            {
                let mut q = self.core.qstate.lock();
                if cap.is_none_or(|c| q.occ[dest_lp][queue] < c) {
                    q.occ[dest_lp][queue] += 1;
                    return true;
                }
                if !blocking {
                    return false;
                }
                q.waiters.push((dest_lp, queue, self.lp));
            }
            self.probe.set_blocked(BlockedOn::SendFull { dest: dest_pe, queue });
            self.probe.spin();
            let credit = self.coop.recv(CH_CREDIT);
            debug_assert_eq!(credit.tag, TAG_CREDIT);
            self.probe.set_blocked(BlockedOn::Running);
            // Re-check: another sender may have taken the freed slot.
        }
    }

    /// Release the slot a just-received packet held in this LP's
    /// modeled queue and grant one credit to a parked sender, if any.
    fn release_slot(&self, queue: usize) {
        self.release_slot_of(self.lp, queue);
    }

    fn release_slot_of(&self, lp: usize, queue: usize) {
        let woken = {
            let mut q = self.core.qstate.lock();
            let occ = &mut q.occ[lp][queue];
            *occ = occ.saturating_sub(1);
            q.waiters
                .iter()
                .position(|&(d, qu, _)| d == lp && qu == queue)
                .map(|i| q.waiters.remove(i).2)
        };
        if let Some(sender_lp) = woken {
            self.coop.send(
                sender_lp,
                CH_CREDIT,
                ProtoMsg { src: self.pe, tag: TAG_CREDIT, payload: PayloadVec::new() },
                SimTime::ZERO,
            );
        }
    }

    /// The full tracked UDN send: slot reservation (with credit-parked
    /// backpressure), fault-plane delay, software injection overhead,
    /// then the engine-specific `wire` latency — evaluated *after* the
    /// overhead advances, so link occupancy models see the right clock.
    /// Returns `false` if `blocking` is off and the destination queue
    /// is full.
    #[allow(clippy::too_many_arguments)]
    pub fn send_tracked(
        &self,
        dest: usize,
        queue: usize,
        tag: u16,
        payload: &[u64],
        blocking: bool,
        sw_overhead_ps: u64,
        trace_as: (TraceKind, u64),
        wire: impl FnOnce() -> Option<SimTime>,
    ) -> bool {
        let dest_lp = self.dest_lp(dest, queue);
        if !self.reserve_slot(dest_lp, queue, dest, blocking) {
            self.probe.spin();
            return false;
        }
        let t0 = self.coop.now();
        if let Some(us) = crate::fault::protocol_send_delay_us() {
            self.coop.advance(SimTime::from_ns(us * 1000));
        }
        self.coop.advance(SimTime::from_ps(sw_overhead_ps));
        match wire() {
            Some(latency) => {
                self.coop.send(
                    dest_lp,
                    queue,
                    ProtoMsg { src: self.pe, tag, payload: payload.into() },
                    latency,
                );
            }
            // The frame was lost in flight (an injected link fault):
            // nothing arrives, so give the reserved slot back — the
            // wedge this causes is the *receiver's* missing message,
            // which the watchdog attributes, not a phantom full queue.
            None => self.release_slot_of(dest_lp, queue),
        }
        let (kind, bytes) = trace_as;
        self.trace(kind, t0, dest, bytes);
        self.progress();
        true
    }

    /// Blocking tracked receive: publishes the blocked state, releases
    /// the modeled queue slot, and traces the wait.
    pub fn recv_tracked(&self, queue: usize) -> ProtoMsg {
        let t0 = self.coop.now();
        self.probe.set_blocked(BlockedOn::Recv { queue });
        let msg = self.coop.recv(queue);
        self.probe.set_blocked(BlockedOn::Running);
        self.release_slot(queue);
        self.trace(TraceKind::Wait, t0, usize::MAX, 0);
        self.progress();
        msg
    }

    /// Non-blocking tracked receive.
    pub fn try_recv_tracked(&self, queue: usize) -> Option<ProtoMsg> {
        let got = self.coop.try_recv(queue);
        if got.is_some() {
            self.release_slot(queue);
            self.progress();
        }
        got
    }

    /// Advance this LP's clock by a cycle count at the modeled clock.
    pub fn advance_cycles(&self, cycles: f64) {
        self.coop.advance(SimTime::from_ps(self.clock.cycles_f64_to_ps(cycles)));
    }

    /// One poll-backoff step of a waiting loop, with the virtual-time
    /// livelock guard: under virtual time every poller stays runnable
    /// (each poll advances its clock), so a livelock would spin real
    /// CPU forever without the desim deadlock detector ever firing.
    /// Bound each wait instead: panicking beats hanging the runner.
    pub fn wait_pause(&self, attempt: u32) {
        self.probe.spin();
        if attempt >= SPIN_BUDGET {
            panic!(
                "PE {} (LP {}): virtual-time livelock guard — {attempt} failed polls in one \
                 wait while {}; useful ops {} spins {}",
                self.pe,
                self.lp,
                self.probe.blocked(),
                self.probe.ops(),
                self.probe.spins(),
            );
        }
        // Exponential backoff: 50 cycles doubling to a 12.8k-cycle cap
        // (~13 us at 1 GHz). Detection latency is overestimated by at
        // most one interval, negligible against the operations these
        // waits pace.
        let step = POLL_CYCLES * f64::from(1u32 << attempt.min(8));
        self.advance_cycles(step);
    }

    /// Append a trace event (no-op unless tracing is enabled).
    pub fn trace(&self, kind: TraceKind, start: SimTime, peer: usize, bytes: u64) {
        if let Some(sink) = &self.core.trace {
            // Lane = LP index: each LP is one execution context, so it
            // is the lane's only writer.
            sink.record_lane(
                self.lp,
                TraceEvent {
                    pe: self.pe,
                    kind,
                    start,
                    end: self.coop.now(),
                    peer,
                    bytes,
                },
            );
        }
    }
}

/// What a launch returns, uniformly across backends.
#[derive(Debug)]
pub struct EngineOutcome<R> {
    /// Per-PE return values, indexed by PE.
    pub values: Vec<R>,
    /// Each PE's final virtual clock (empty on the native engine, whose
    /// clock is the wall).
    pub clocks: Vec<SimTime>,
    /// The simulated makespan (max final clock; `ZERO` natively).
    pub makespan: SimTime,
    /// Operation trace, when enabled with `RuntimeConfig::with_trace`.
    pub trace: Option<Vec<TraceEvent>>,
}

/// The liveness plane a launch composes in, matching the backend's
/// clock domain: wall-clock engines take a [`JobWatch`] (an external
/// watchdog thread polls and aborts), virtual-time engines take a
/// [`TimedWatch`] (the scheduler's own drained-queue detector fires the
/// instant no LP can ever run again).
pub enum WatchPlane<'a> {
    /// No liveness plane attached.
    None,
    /// Native wall-clock watchdog.
    Native(&'a JobWatch),
    /// Coop (timed/multichip) drained-queue watchdog.
    Coop(Arc<TimedWatch>),
}

/// One execution engine, as consumed by the generic
/// [`Launcher`](crate::runtime::Launcher). See the module docs for the
/// contract.
pub trait EngineBackend {
    /// Engine name, for diagnostics.
    fn name(&self) -> &'static str;

    /// Total PEs the job runs (`cfg.npes` unless the backend multiplies
    /// it — multichip runs `cfg.npes` *per chip*).
    fn total_pes(&self, cfg: &RuntimeConfig) -> usize {
        cfg.npes
    }

    /// Backend-specific config validation, run before any resource is
    /// allocated. The launcher has already run `cfg`'s own checks.
    fn validate(&self, cfg: &RuntimeConfig) {
        let _ = cfg;
    }

    /// Run `f` on every PE and collect the outcome. The backend must
    /// honor `watch` (attach it before any PE starts) and `cfg.trace`.
    fn execute<R, F>(&self, cfg: &RuntimeConfig, watch: &WatchPlane<'_>, f: F) -> EngineOutcome<R>
    where
        R: Send,
        F: Fn(&ShmemCtx) -> R + Send + Sync;
}

/// The shared PE/service-LP scaffolding of every cooperative backend:
/// runs `2 * npes` LPs (PEs then service contexts), builds each LP's
/// fabric through `make_fabric`, gives PE LPs a [`ShmemCtx`] (finalized
/// on return) and service LPs the service loop, and folds the results
/// into an [`EngineOutcome`].
#[allow(clippy::too_many_arguments)]
fn run_coop_lps<R, F, G>(
    npes: usize,
    layout: crate::ctx::Layout,
    algos: crate::ctx::Algorithms,
    private_bytes: usize,
    mode: desim::coop::SchedMode,
    observer: Option<Arc<dyn desim::coop::CoopObserver>>,
    make_fabric: G,
    f: F,
    sink: Option<Arc<TraceSink>>,
) -> EngineOutcome<R>
where
    R: Send,
    F: Fn(&ShmemCtx) -> R + Send + Sync,
    G: Fn(usize, CoopHandle<ProtoMsg>) -> Box<dyn Fabric> + Send + Sync,
{
    let out = desim::coop::run_mode(2 * npes, TIMED_CHANNELS, mode, observer, move |h| {
        let lp = h.id();
        let fab = make_fabric(lp, h);
        if lp < npes {
            let ctx = ShmemCtx::new(fab, layout, algos, private_bytes);
            let r = f(&ctx);
            ctx.finalize();
            Some(r)
        } else {
            service_loop(fab.as_ref());
            None
        }
    });

    let mut values = Vec::with_capacity(npes);
    let mut clocks = Vec::with_capacity(npes);
    for (i, v) in out.values.into_iter().enumerate() {
        if i < npes {
            values.push(v.expect("PE LP must return a value"));
            clocks.push(out.clocks[i]);
        }
    }
    let makespan = clocks.iter().copied().fold(SimTime::ZERO, SimTime::max);
    EngineOutcome { values, clocks, makespan, trace: sink.map(|s| s.take()) }
}

/// Attach a coop watch (if any) and hand its observer to the scheduler.
fn coop_observer(
    engine: &'static str,
    watch: &WatchPlane<'_>,
    core: &Arc<CoopCore>,
) -> Option<Arc<dyn desim::coop::CoopObserver>> {
    match watch {
        WatchPlane::None => None,
        WatchPlane::Coop(w) => {
            w.attach(core.clone());
            Some(w.clone() as Arc<dyn desim::coop::CoopObserver>)
        }
        WatchPlane::Native(_) => panic!(
            "a JobWatch polls wall time and cannot observe the {engine} engine; \
             attach a TimedWatch instead"
        ),
    }
}

/// The native engine: one real thread per PE, real shared memory,
/// wall-clock time.
pub struct NativeBackend;

impl EngineBackend for NativeBackend {
    fn name(&self) -> &'static str {
        "native"
    }

    fn execute<R, F>(&self, cfg: &RuntimeConfig, watch: &WatchPlane<'_>, f: F) -> EngineOutcome<R>
    where
        R: Send,
        F: Fn(&ShmemCtx) -> R + Send + Sync,
    {
        use crate::engine::native::{NativeFabric, NativeShared};
        use cachesim::homing::Homing;
        use tmc::common::CommonMemory;
        use udn::fabric::UdnFabric;

        let native_watch = match watch {
            WatchPlane::None => None,
            WatchPlane::Native(w) => Some(*w),
            WatchPlane::Coop(_) => panic!(
                "a TimedWatch is the virtual-time scheduler's observer and cannot watch \
                 the native engine; attach a JobWatch instead"
            ),
        };
        let layout = cfg.layout();
        let endpoints = match cfg.udn_queue_packets {
            Some(p) => UdnFabric::new_bounded(cfg.npes, p),
            None => UdnFabric::new(cfg.npes),
        };
        // The watch needs a sink for "last event per PE" stall dumps
        // even when the caller did not ask for a trace.
        // One lock-free lane per PE main thread plus one per interrupt-
        // service thread; writers never contend.
        let sink = (cfg.trace || native_watch.is_some())
            .then(|| Arc::new(crate::trace::TraceSink::with_lanes(2 * cfg.npes)));
        let waker = endpoints[0].sender();
        let shared = Arc::new(NativeShared {
            arena: CommonMemory::new(cfg.npes * cfg.partition_bytes, Homing::HashForHome),
            privates: (0..cfg.npes)
                .map(|pe| CommonMemory::new(cfg.private_bytes, Homing::Local(pe)))
                .collect(),
            npes: cfg.npes,
            partition_bytes: cfg.partition_bytes,
            device: cfg.device,
            start: crate::engine::native::FastClock::new(),
            spin_barriers: Mutex::new(std::collections::HashMap::new()),
            aborted: std::sync::atomic::AtomicBool::new(false),
            waker,
            probes: (0..cfg.npes).map(|_| Arc::new(PeProbe::new())).collect(),
            service_probes: (0..cfg.npes).map(|_| Arc::new(PeProbe::new())).collect(),
            trace: sink.clone(),
        });
        if let Some(w) = native_watch {
            w.attach(shared.clone(), endpoints.clone());
        }

        // Interrupt-service contexts: one thread per PE, consuming only
        // Q_SERVICE of that PE's endpoint. Each carries the PE's
        // *service* probe so a stall inside a handler is attributed to
        // the handler.
        let service_threads: Vec<_> = (0..cfg.npes)
            .map(|pe| {
                let fab = NativeFabric::new_service(shared.clone(), pe, endpoints[pe].clone());
                std::thread::Builder::new()
                    .name(format!("shmem-svc-{pe}"))
                    .spawn(move || service_loop(&fab))
                    .expect("spawn service thread")
            })
            .collect();

        let values = tmc::task::run_on_tiles(cfg.npes, |pe| {
            let fab = NativeFabric::new_probed(shared.clone(), pe, endpoints[pe].clone());
            let ctx = ShmemCtx::new(Box::new(fab), layout, cfg.algos, cfg.private_bytes);
            // If any PE panics, flag the job so peers blocked in
            // protocol waits abort instead of hanging (SHMEM jobs are
            // all-or-nothing), then re-raise the original panic.
            match std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| f(&ctx))) {
                Ok(r) => {
                    ctx.finalize();
                    r
                }
                Err(p) => {
                    // Flag the job and wake everything parked in a
                    // blocking receive — peers and service threads
                    // alike (SHMEM jobs are all-or-nothing).
                    shared.abort();
                    std::panic::resume_unwind(p);
                }
            }
        });

        for t in service_threads {
            t.join().expect("service thread panicked");
        }
        EngineOutcome {
            values,
            clocks: Vec::new(),
            makespan: SimTime::ZERO,
            // Only a caller-requested trace is returned; the
            // watch-only sink stays with the watch.
            trace: cfg.trace.then(|| sink.expect("sink exists when tracing").take()),
        }
    }
}

/// The timed engine: the same protocol code under the virtual-time
/// cooperative scheduler with calibrated single-chip Tilera costs.
pub struct TimedBackend;

impl EngineBackend for TimedBackend {
    fn name(&self) -> &'static str {
        "timed"
    }

    fn execute<R, F>(&self, cfg: &RuntimeConfig, watch: &WatchPlane<'_>, f: F) -> EngineOutcome<R>
    where
        R: Send,
        F: Fn(&ShmemCtx) -> R + Send + Sync,
    {
        use crate::engine::timed::{TimedFabric, TimedShared};
        let sink = cfg.trace.then(|| Arc::new(TraceSink::with_lanes(cfg.npes)));
        let shared = TimedShared::new_full(
            cfg.area(),
            cfg.npes,
            cfg.partition_bytes,
            cfg.private_bytes,
            sink.clone(),
            cfg.udn_queue_packets,
        );
        let observer = coop_observer(self.name(), watch, &shared.core);
        run_coop_lps(
            cfg.npes,
            cfg.layout(),
            cfg.algos,
            cfg.private_bytes,
            cfg.timed_mode.sched_mode(),
            observer,
            |lp, h| Box::new(TimedFabric::for_lp(shared.clone(), lp, h)),
            f,
            sink,
        )
    }
}

/// The multichip engine: `chips` simulated devices with `cfg.npes` PEs
/// **each**, connected by mPIPE links (the paper's Section VI
/// multi-device future work), under the same virtual-time scheduler.
pub struct MultiChipBackend {
    pub chips: usize,
}

impl EngineBackend for MultiChipBackend {
    fn name(&self) -> &'static str {
        "multichip"
    }

    fn total_pes(&self, cfg: &RuntimeConfig) -> usize {
        cfg.npes * self.chips
    }

    fn validate(&self, cfg: &RuntimeConfig) {
        assert!(self.chips >= 1, "need at least one chip");
        assert!(
            cfg.algos.barrier != crate::ctx::BarrierAlgo::TmcSpin || self.chips == 1,
            "the TMC spin barrier cannot span chips"
        );
    }

    fn execute<R, F>(&self, cfg: &RuntimeConfig, watch: &WatchPlane<'_>, f: F) -> EngineOutcome<R>
    where
        R: Send,
        F: Fn(&ShmemCtx) -> R + Send + Sync,
    {
        use crate::engine::multichip::{MultiChipFabric, MultiChipShared};
        let npes = self.total_pes(cfg);
        let layout = crate::ctx::Layout::new(cfg.partition_bytes, npes, cfg.temp_bytes);
        let sink = cfg.trace.then(|| Arc::new(TraceSink::with_lanes(npes)));
        let shared = MultiChipShared::new_full(
            cfg.area(),
            self.chips,
            cfg.npes,
            cfg.partition_bytes,
            cfg.private_bytes,
            mpipe::MpipeTimings::xaui_10g(),
            sink.clone(),
            cfg.udn_queue_packets,
        );
        let observer = coop_observer(self.name(), watch, &shared.core);
        run_coop_lps(
            npes,
            layout,
            cfg.algos,
            cfg.private_bytes,
            cfg.timed_mode.sched_mode(),
            observer,
            |lp, h| Box::new(MultiChipFabric::for_lp(shared.clone(), lp, h)),
            f,
            sink,
        )
    }
}
