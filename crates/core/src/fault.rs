//! Runtime fault injection for watchdog validation.
//!
//! PR 1 fixed a real dissemination-barrier deadlock: a PE blocked in a
//! plain full-queue send cannot drain its own demux queue, so a cycle of
//! blocked senders hangs on finite-buffer fabrics. The stress harness's
//! watchdog exists to catch exactly that bug class, and its detection
//! power is proven by *reintroducing* the bug on demand: with
//! [`set_blocking_protocol_sends`] enabled, `send_draining` degrades to
//! the pre-fix plain blocking send.
//!
//! The switch is a process-wide atomic (protocol code has no test-only
//! configuration channel, and a cargo feature would leak through
//! workspace feature unification into every build). Tests that flip it
//! must live in their own test binary so the process-global state cannot
//! poison unrelated concurrently-running tests.

use std::sync::atomic::{AtomicBool, Ordering};

static BLOCKING_PROTOCOL_SENDS: AtomicBool = AtomicBool::new(false);

/// Degrade every `send_draining` to a plain blocking send (the PR-1
/// barrier bug) while `on` is true. **Fault injection for watchdog
/// tests only** — never enable in normal operation.
pub fn set_blocking_protocol_sends(on: bool) {
    BLOCKING_PROTOCOL_SENDS.store(on, Ordering::Release);
}

/// Whether protocol sends are currently degraded.
pub fn blocking_protocol_sends() -> bool {
    BLOCKING_PROTOCOL_SENDS.load(Ordering::Acquire)
}
