//! The fault-injection plane: seeded, replayable liveness faults.
//!
//! PR 1 fixed a real dissemination-barrier deadlock: a PE blocked in a
//! plain full-queue send cannot drain its own demux queue, so a cycle of
//! blocked senders hangs on finite-buffer fabrics. The stress harness's
//! watchdog exists to catch exactly that bug class, and its detection
//! power is proven by *reintroducing* faults on demand. PR 2 added the
//! single [`set_blocking_protocol_sends`] hook; this module grows it
//! into a plane of five fault kinds, drawn from a seed by substrate's
//! `KeyedRng` so any fault schedule is replayable byte-identically
//! (`cargo run -p stress -- --fault-plan SEED`).
//!
//! Every fault is a *liveness* fault, never a correctness fault: an
//! injected delay, clamp, or stall may slow a run or wedge it outright,
//! but it never corrupts data. A faulted run therefore either still
//! converges to the stress oracle (the fault was tolerated) or is
//! caught by a watchdog whose diagnosis names the faulted component —
//! it must never hang the test runner.
//!
//! All state is process-wide (protocol code has no test-only
//! configuration channel, and a cargo feature would leak through
//! workspace feature unification into every build). Tests that install
//! a plan or flip the legacy switch must live in their own test binary
//! so the process-global state cannot poison unrelated
//! concurrently-running tests.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

use substrate::rng::KeyedRng;
use substrate::sync::Mutex;

static BLOCKING_PROTOCOL_SENDS: AtomicBool = AtomicBool::new(false);

/// Degrade every `send_draining` to a plain blocking send (the PR-1
/// barrier bug) while `on` is true. **Fault injection for watchdog
/// tests only** — never enable in normal operation.
pub fn set_blocking_protocol_sends(on: bool) {
    BLOCKING_PROTOCOL_SENDS.store(on, Ordering::Release);
}

/// Whether protocol sends are currently degraded, either by the legacy
/// switch or by an installed [`FaultPlan`] containing
/// [`Fault::BlockingProtocolSends`].
pub fn blocking_protocol_sends() -> bool {
    BLOCKING_PROTOCOL_SENDS.load(Ordering::Acquire) || PLAN_BLOCKING.load(Ordering::Acquire)
}

static RMA_FAST_PATHS_OFF: AtomicBool = AtomicBool::new(false);

/// Disable the RMA batched fast paths (unit-stride `iput`/`iget` runs,
/// contiguous-source borrows) so every strided transfer takes the
/// general per-element path. **Equivalence testing only**: the fast and
/// general paths must produce identical memory state and identical
/// `Stats`, and the suite proves it by running the same seeded program
/// both ways.
pub fn set_rma_fast_paths(on: bool) {
    RMA_FAST_PATHS_OFF.store(!on, Ordering::Release);
}

/// Whether the RMA fast paths are enabled (the default).
#[inline]
pub fn rma_fast_paths() -> bool {
    !RMA_FAST_PATHS_OFF.load(Ordering::Relaxed)
}

static COOP_LOCALITY_OFF: AtomicBool = AtomicBool::new(false);

/// Disable the coop engine's locality awareness (same-worker RMA fast
/// paths, co-resident recv hints, shard-aligned cluster construction)
/// so every transfer takes the engine-agnostic channel/protocol path.
/// **Equivalence testing only**: the locality-aware and locality-blind
/// paths must produce identical memory state and identical API-level
/// `Stats`, and the locality suite proves it by running the same seeded
/// program both ways.
pub fn set_coop_locality(on: bool) {
    COOP_LOCALITY_OFF.store(!on, Ordering::Release);
}

/// Whether coop locality awareness is enabled (the default).
#[inline]
pub fn coop_locality() -> bool {
    !COOP_LOCALITY_OFF.load(Ordering::Relaxed)
}

static NBI_EAGER: AtomicBool = AtomicBool::new(false);

/// Complete every non-blocking RMA op immediately at issue instead of
/// deferring to `quiet`. **Equivalence testing only**: eager and lazy
/// completion must produce identical heap/static state and identical
/// `Stats`, and the nbi suite proves it by running the same seeded
/// program both ways. Same code path either way — eager mode simply
/// drains the pending set after each issue.
pub fn set_nbi_eager(on: bool) {
    NBI_EAGER.store(on, Ordering::Release);
}

/// Whether nbi ops complete eagerly at issue (default: lazy).
#[inline]
pub fn nbi_eager() -> bool {
    NBI_EAGER.load(Ordering::Relaxed)
}

/// One injectable liveness fault.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Fault {
    /// Degrade `send_draining` to a plain blocking send (the PR-1
    /// deadlock). Canary-grade: deliberately *not* drawn by
    /// [`FaultPlan::from_seed`], whose plans must stay in the
    /// tolerated class.
    BlockingProtocolSends,
    /// Stall every `every`-th protocol send for `micros` µs before it
    /// enters the fabric (reordering/latency pressure on the token
    /// protocols).
    DelayProtocolSends { every: u64, micros: u64 },
    /// Once the global op counter passes `after_ops`, clamp the
    /// *effective* UDN queue depth to `depth` packets — a mid-run
    /// buffer squeeze that forces the draining-send backpressure path.
    ClampQueueDepth { after_ops: u64, depth: usize },
    /// Stall PE `pe`'s service handler for `micros` µs on each of its
    /// next `requests` redirected-RMA requests.
    StallServiceHandler { pe: usize, requests: u64, micros: u64 },
    /// Slow PE `pe` down: stall `micros` µs after every `every`-th of
    /// its completed fabric ops (an overloaded-tile model).
    SlowPe { pe: usize, every: u64, micros: u64 },
    /// Corrupt the `nth` cross-chip mPIPE frame in flight. Caught-class
    /// (like [`Fault::BlockingProtocolSends`], never drawn from a
    /// seed): the receiving mPIPE's CRC check panics naming the link.
    CorruptLinkPacket { nth: u64 },
    /// Drop the `nth` cross-chip mPIPE frame. Caught-class: the next
    /// frame's sequence check reports the gap naming the link, or — if
    /// the link goes quiet — the receiver's wedged wait is reported by
    /// the multichip drained-queue watchdog.
    DropLinkPacket { nth: u64 },
    /// Deliver the `nth` cross-chip mPIPE frame twice. Caught-class:
    /// the replay trips the sequence check, naming the link.
    DuplicateLinkPacket { nth: u64 },
    /// Stall every `every`-th non-blocking-op completion for `micros` µs
    /// as it drains (at `quiet`, barrier entry, or a same-destination
    /// flush). Tolerated-class: completions slow down but retire in
    /// issue order, so a correct program still converges to the oracle.
    DelayNbiCompletion { every: u64, micros: u64 },
    /// Panic PE `pe` mid-program, once the global op counter passes
    /// `after_ops` (a crashing-tenant model). Caught-class (never drawn
    /// from a seed): a single-job run aborts with the panic; under the
    /// server layer the panic is caught at the PE boundary and reported
    /// as a `Faulted` job outcome while the pool keeps serving. One-shot:
    /// the fault fires on exactly one op, so a retried or subsequent job
    /// runs clean.
    PanicPe { pe: usize, after_ops: u64 },
}

impl std::fmt::Display for Fault {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Fault::BlockingProtocolSends => write!(f, "BlockingProtocolSends"),
            Fault::DelayProtocolSends { every, micros } => {
                write!(f, "DelayProtocolSends(every {every}th send +{micros}us)")
            }
            Fault::ClampQueueDepth { after_ops, depth } => {
                write!(f, "ClampQueueDepth(depth {depth} after {after_ops} ops)")
            }
            Fault::StallServiceHandler { pe, requests, micros } => {
                write!(f, "StallServiceHandler(PE {pe}, first {requests} requests +{micros}us)")
            }
            Fault::SlowPe { pe, every, micros } => {
                write!(f, "SlowPe(PE {pe}, every {every}th op +{micros}us)")
            }
            Fault::CorruptLinkPacket { nth } => {
                write!(f, "CorruptLinkPacket(frame {nth})")
            }
            Fault::DropLinkPacket { nth } => write!(f, "DropLinkPacket(frame {nth})"),
            Fault::DuplicateLinkPacket { nth } => {
                write!(f, "DuplicateLinkPacket(frame {nth})")
            }
            Fault::DelayNbiCompletion { every, micros } => {
                write!(f, "DelayNbiCompletion(every {every}th completion +{micros}us)")
            }
            Fault::PanicPe { pe, after_ops } => {
                write!(f, "PanicPe(PE {pe} after {after_ops} ops)")
            }
        }
    }
}

/// A seeded, replayable schedule of liveness faults.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FaultPlan {
    /// The generating seed (0 for hand-built plans).
    pub seed: u64,
    pub faults: Vec<Fault>,
}

impl FaultPlan {
    /// Draw a plan from a seed. Magnitudes are kept inside the
    /// *tolerated* envelope — delays of at most a few hundred µs,
    /// clamps no tighter than one packet, handler stalls bounded in
    /// count and duration — so a seeded plan exercises backpressure and
    /// slow paths without wedging a correct protocol. The same seed and
    /// PE count always yield the same plan.
    pub fn from_seed(seed: u64, npes: usize) -> Self {
        let mut rng = KeyedRng::new(seed, 0xFAB7);
        let nfaults = 1 + rng.below(3);
        let mut faults = Vec::new();
        for _ in 0..nfaults {
            faults.push(match rng.below(4) {
                0 => Fault::DelayProtocolSends {
                    every: 1 + rng.below(4),
                    micros: 20 + rng.below(200),
                },
                1 => Fault::ClampQueueDepth {
                    after_ops: rng.below(2000),
                    depth: (1 + rng.below(2)) as usize,
                },
                2 => Fault::StallServiceHandler {
                    pe: rng.below(npes as u64) as usize,
                    requests: 1 + rng.below(8),
                    micros: 100 + rng.below(1200),
                },
                _ => Fault::SlowPe {
                    pe: rng.below(npes as u64) as usize,
                    every: 1 + rng.below(8),
                    micros: 10 + rng.below(150),
                },
            });
        }
        FaultPlan { seed, faults }
    }

    /// One-line human description, for watchdog reports and logs.
    pub fn describe(&self) -> String {
        let list: Vec<String> = self.faults.iter().map(|f| f.to_string()).collect();
        format!("fault plan seed {:#x}: [{}]", self.seed, list.join(", "))
    }
}

struct ActivePlan {
    plan: FaultPlan,
    /// Remaining stall budget per fault (parallel to `plan.faults`;
    /// only `StallServiceHandler` entries consume theirs).
    budgets: Vec<AtomicU64>,
}

/// Fast-path gate: hooks bail immediately unless a plan is installed.
static PLAN_ACTIVE: AtomicBool = AtomicBool::new(false);
/// Cached "plan contains BlockingProtocolSends" bit.
static PLAN_BLOCKING: AtomicBool = AtomicBool::new(false);
/// Global state-changing-op counter while a plan is active (drives
/// `ClampQueueDepth::after_ops` and `SlowPe::every`).
static PLAN_OPS: AtomicU64 = AtomicU64::new(0);
/// Global protocol-send counter while a plan is active.
static PLAN_SENDS: AtomicU64 = AtomicU64::new(0);
/// Global cross-chip mPIPE frame counter while a plan is active (drives
/// the `nth`-frame link faults).
static PLAN_LINK_FRAMES: AtomicU64 = AtomicU64::new(0);
/// Global nbi-completion counter while a plan is active (drives
/// `DelayNbiCompletion::every`).
static PLAN_NBI_COMPLETIONS: AtomicU64 = AtomicU64::new(0);
static PLAN: Mutex<Option<ActivePlan>> = Mutex::new(None);

/// Install a fault plan process-wide, replacing any previous plan and
/// resetting the fault counters. See the module docs for the
/// own-test-binary rule.
pub fn install(plan: FaultPlan) {
    let blocking = plan.faults.contains(&Fault::BlockingProtocolSends);
    let budgets = plan
        .faults
        .iter()
        .map(|f| match f {
            Fault::StallServiceHandler { requests, .. } => AtomicU64::new(*requests),
            // One-shot: a crashing tenant crashes once, so a retried or
            // subsequent job under the same plan runs clean.
            Fault::PanicPe { .. } => AtomicU64::new(1),
            _ => AtomicU64::new(0),
        })
        .collect();
    *PLAN.lock() = Some(ActivePlan { plan, budgets });
    PLAN_OPS.store(0, Ordering::Relaxed);
    PLAN_SENDS.store(0, Ordering::Relaxed);
    PLAN_LINK_FRAMES.store(0, Ordering::Relaxed);
    PLAN_NBI_COMPLETIONS.store(0, Ordering::Relaxed);
    PLAN_BLOCKING.store(blocking, Ordering::Release);
    PLAN_ACTIVE.store(true, Ordering::Release);
}

/// Remove the installed plan (tests must clear before exiting so later
/// runs in the same process start clean).
pub fn clear() {
    PLAN_ACTIVE.store(false, Ordering::Release);
    PLAN_BLOCKING.store(false, Ordering::Release);
    *PLAN.lock() = None;
}

/// Description of the active plan, for watchdog reports.
pub fn describe_active() -> Option<String> {
    if !PLAN_ACTIVE.load(Ordering::Acquire) {
        return None;
    }
    PLAN.lock().as_ref().map(|a| a.plan.describe())
}

/// Engines call this on every completed state-changing op so mid-run
/// triggers (`ClampQueueDepth::after_ops`, `SlowPe::every`) have a
/// clock to key off. No-op unless a plan is active.
#[inline]
pub(crate) fn note_op() {
    if PLAN_ACTIVE.load(Ordering::Relaxed) {
        PLAN_OPS.fetch_add(1, Ordering::Relaxed);
    }
}

/// Delay (µs) to inject before the current protocol send, if any.
pub(crate) fn protocol_send_delay_us() -> Option<u64> {
    if !PLAN_ACTIVE.load(Ordering::Acquire) {
        return None;
    }
    let n = PLAN_SENDS.fetch_add(1, Ordering::Relaxed) + 1;
    let guard = PLAN.lock();
    let active = guard.as_ref()?;
    for f in &active.plan.faults {
        if let Fault::DelayProtocolSends { every, micros } = f {
            if n.is_multiple_of(*every) {
                return Some(*micros);
            }
        }
    }
    None
}

/// Effective queue-depth clamp, once its op threshold has passed.
pub(crate) fn clamp_queue_depth() -> Option<usize> {
    if !PLAN_ACTIVE.load(Ordering::Acquire) {
        return None;
    }
    let ops = PLAN_OPS.load(Ordering::Relaxed);
    let guard = PLAN.lock();
    let active = guard.as_ref()?;
    let mut clamp: Option<usize> = None;
    for f in &active.plan.faults {
        if let Fault::ClampQueueDepth { after_ops, depth } = f {
            if ops >= *after_ops {
                clamp = Some(clamp.map_or(*depth, |c| c.min(*depth)));
            }
        }
    }
    clamp
}

/// Stall (µs) the service handler on PE `pe` should inject for the
/// request it just received, consuming one unit of that fault's budget.
pub(crate) fn service_stall_us(pe: usize) -> Option<u64> {
    if !PLAN_ACTIVE.load(Ordering::Acquire) {
        return None;
    }
    let guard = PLAN.lock();
    let active = guard.as_ref()?;
    for (i, f) in active.plan.faults.iter().enumerate() {
        if let Fault::StallServiceHandler { pe: fpe, micros, .. } = f {
            if *fpe == pe {
                let budget = &active.budgets[i];
                let mut left = budget.load(Ordering::Relaxed);
                while left > 0 {
                    match budget.compare_exchange(
                        left,
                        left - 1,
                        Ordering::Relaxed,
                        Ordering::Relaxed,
                    ) {
                        Ok(_) => return Some(*micros),
                        Err(cur) => left = cur,
                    }
                }
            }
        }
    }
    None
}

/// Fault to apply to the cross-chip mPIPE frame being sent right now,
/// if the active plan targets this frame. Counts frames while a plan is
/// active; the multichip engine calls this once per cross-chip
/// transfer.
pub(crate) fn link_fault() -> Option<mpipe::FrameFault> {
    if !PLAN_ACTIVE.load(Ordering::Acquire) {
        return None;
    }
    let n = PLAN_LINK_FRAMES.fetch_add(1, Ordering::Relaxed) + 1;
    let guard = PLAN.lock();
    let active = guard.as_ref()?;
    for f in &active.plan.faults {
        match f {
            Fault::CorruptLinkPacket { nth } if *nth == n => {
                return Some(mpipe::FrameFault::Corrupt)
            }
            Fault::DropLinkPacket { nth } if *nth == n => return Some(mpipe::FrameFault::Drop),
            Fault::DuplicateLinkPacket { nth } if *nth == n => {
                return Some(mpipe::FrameFault::Duplicate)
            }
            _ => {}
        }
    }
    None
}

/// Delay (µs) to inject before the non-blocking-op completion being
/// drained right now, if the active plan stalls this one.
pub(crate) fn nbi_completion_delay_us() -> Option<u64> {
    if !PLAN_ACTIVE.load(Ordering::Acquire) {
        return None;
    }
    let n = PLAN_NBI_COMPLETIONS.fetch_add(1, Ordering::Relaxed) + 1;
    let guard = PLAN.lock();
    let active = guard.as_ref()?;
    for f in &active.plan.faults {
        if let Fault::DelayNbiCompletion { every, micros } = f {
            if n.is_multiple_of(*every) {
                return Some(*micros);
            }
        }
    }
    None
}

/// Whether PE `pe` must panic right now: an installed `PanicPe` fault
/// targets it, the global op counter has passed its threshold, and its
/// one-shot budget is unspent (consumed here, so exactly one op fires).
pub(crate) fn panic_pe_now(pe: usize) -> bool {
    if !PLAN_ACTIVE.load(Ordering::Acquire) {
        return false;
    }
    let ops = PLAN_OPS.load(Ordering::Relaxed);
    let guard = PLAN.lock();
    let Some(active) = guard.as_ref() else {
        return false;
    };
    for (i, f) in active.plan.faults.iter().enumerate() {
        if let Fault::PanicPe { pe: fpe, after_ops } = f {
            if *fpe == pe && ops >= *after_ops {
                let budget = &active.budgets[i];
                let mut left = budget.load(Ordering::Relaxed);
                while left > 0 {
                    match budget.compare_exchange(
                        left,
                        left - 1,
                        Ordering::Relaxed,
                        Ordering::Relaxed,
                    ) {
                        Ok(_) => return true,
                        Err(cur) => left = cur,
                    }
                }
            }
        }
    }
    false
}

/// Delay (µs) to inject into PE `pe`'s op stream right now, if it is a
/// `SlowPe` target on an `every`-th op.
pub(crate) fn slow_pe_delay_us(pe: usize) -> Option<u64> {
    if !PLAN_ACTIVE.load(Ordering::Acquire) {
        return None;
    }
    let ops = PLAN_OPS.load(Ordering::Relaxed);
    let guard = PLAN.lock();
    let active = guard.as_ref()?;
    for f in &active.plan.faults {
        if let Fault::SlowPe { pe: fpe, every, micros } = f {
            if *fpe == pe && ops.is_multiple_of(*every) {
                return Some(*micros);
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeded_plans_replay_byte_identically() {
        let a = FaultPlan::from_seed(0xDEAD_BEEF, 8);
        let b = FaultPlan::from_seed(0xDEAD_BEEF, 8);
        assert_eq!(a, b);
        assert!(!a.faults.is_empty());
        // Seeded plans stay in the tolerated class.
        assert!(!a.faults.contains(&Fault::BlockingProtocolSends));
        let c = FaultPlan::from_seed(0xDEAD_BEF0, 8);
        assert_ne!(a, c, "distinct seeds should draw distinct plans");
    }

    #[test]
    fn seeded_plan_magnitudes_stay_in_the_tolerated_envelope() {
        for seed in 0..64u64 {
            for f in FaultPlan::from_seed(seed, 4).faults {
                match f {
                    Fault::BlockingProtocolSends => panic!("canary-only fault drawn from seed"),
                    Fault::DelayProtocolSends { every, micros } => {
                        assert!(every >= 1 && micros < 1000);
                    }
                    Fault::ClampQueueDepth { depth, .. } => assert!(depth >= 1),
                    Fault::StallServiceHandler { pe, requests, micros } => {
                        assert!(pe < 4 && requests <= 16 && micros < 10_000);
                    }
                    Fault::SlowPe { pe, every, micros } => {
                        assert!(pe < 4 && every >= 1 && micros < 1000);
                    }
                    Fault::CorruptLinkPacket { .. }
                    | Fault::DropLinkPacket { .. }
                    | Fault::DuplicateLinkPacket { .. } => {
                        panic!("canary-only link fault drawn from seed")
                    }
                    // Hand-built (canary-matrix) only today, but safe to
                    // draw if from_seed ever grows it — just bound it.
                    Fault::DelayNbiCompletion { every, micros } => {
                        assert!(every >= 1 && micros < 1000);
                    }
                    Fault::PanicPe { .. } => {
                        panic!("canary-only crash fault drawn from seed")
                    }
                }
            }
        }
    }

    #[test]
    fn describe_names_every_fault() {
        let plan = FaultPlan {
            seed: 0x42,
            faults: vec![
                Fault::StallServiceHandler { pe: 3, requests: 2, micros: 500 },
                Fault::SlowPe { pe: 1, every: 4, micros: 50 },
                Fault::CorruptLinkPacket { nth: 7 },
                Fault::DropLinkPacket { nth: 2 },
                Fault::DuplicateLinkPacket { nth: 9 },
                Fault::DelayNbiCompletion { every: 3, micros: 120 },
                Fault::PanicPe { pe: 2, after_ops: 40 },
            ],
        };
        let d = plan.describe();
        assert!(d.contains("0x42"));
        assert!(d.contains("StallServiceHandler(PE 3"));
        assert!(d.contains("SlowPe(PE 1"));
        assert!(d.contains("CorruptLinkPacket(frame 7)"));
        assert!(d.contains("DropLinkPacket(frame 2)"));
        assert!(d.contains("DuplicateLinkPacket(frame 9)"));
        assert!(d.contains("DelayNbiCompletion(every 3th completion +120us)"));
        assert!(d.contains("PanicPe(PE 2 after 40 ops)"));
    }
}
