//! The interrupt-service handler — the analog of Tilera UDN interrupts.
//!
//! Static symmetric variables live in each PE's private segment, which
//! other PEs cannot touch directly. When a put/get needs the far side's
//! private memory, the near side interrupts the far tile over the UDN and
//! the far tile services the operation itself (paper Section IV-B2). Our
//! analog is one service context per PE — a thread on the native engine,
//! a logical process on the timed engine — that listens on
//! [`Q_SERVICE`] and performs the copy against
//! its own private segment.
//!
//! The handler also implements the orderly teardown that motivates the
//! paper's proposed `shmem_finalize()` (Section IV-E): without a shutdown
//! message the service context would outlive the application and, on real
//! hardware, leave the UDN engaged.

use crate::fabric::{BlockedOn, Fabric, Q_REPLY, Q_SERVICE};

/// Service-request tags on `Q_SERVICE`.
pub const TAG_SPUT: u16 = 1;
/// Remote get service: "copy from YOUR private segment into the arena".
pub const TAG_SGET: u16 = 2;
/// Completion replies on `Q_REPLY`.
pub const TAG_SDONE: u16 = 3;
/// Strided put service: scatter a contiguous arena staging run into
/// YOUR private segment with a byte stride — one interrupt per staged
/// chunk instead of one per element.
pub const TAG_SPUTS: u16 = 4;
/// Strided get service: gather from YOUR private segment (byte stride)
/// into a contiguous arena staging run.
pub const TAG_SGETS: u16 = 5;
/// Orderly teardown (see `shmem_finalize`).
pub const TAG_SHUTDOWN: u16 = 0xFFFE;
/// Job-abort wakeup: broadcast to every tile's queues when a PE panics
/// or a watchdog kills the job, so contexts parked in a blocking
/// protocol receive wake immediately instead of timing out. Never
/// reaches protocol code — the native receive path panics on it.
pub const TAG_ABORT: u16 = 0xFFFD;

/// Human name of a service-protocol tag, for watchdog diagnoses
/// (`BlockedOn::Handler` display).
pub fn tag_name(tag: u16) -> &'static str {
    match tag {
        TAG_SPUT => "sput",
        TAG_SGET => "sget",
        TAG_SDONE => "sdone",
        TAG_SPUTS => "sputs",
        TAG_SGETS => "sgets",
        TAG_SHUTDOWN => "shutdown",
        TAG_ABORT => "abort",
        _ => "?",
    }
}

/// Run the service loop until shutdown. `fab` must be the serviced PE's
/// fabric (a clone of it on the native engine; the dedicated service LP's
/// fabric on the timed engine).
///
/// While a request executes, the service probe (when present) publishes
/// [`BlockedOn::Handler`] naming the request's tag and source — so a
/// stall *inside* the handler (e.g. an injected `StallServiceHandler`
/// fault, or a real bug in the copy path) is attributed to this
/// handler, not to the clients parked in their reply waits.
pub fn service_loop(fab: &dyn Fabric) {
    loop {
        let msg = fab.udn_recv(Q_SERVICE);
        if msg.tag != TAG_SHUTDOWN {
            if let Some(p) = fab.probe() {
                p.set_blocked(BlockedOn::Handler { tag: msg.tag, src: msg.src });
            }
            if let Some(us) = crate::fault::service_stall_us(fab.pe()) {
                fab.inject_delay_us(us);
            }
        }
        match msg.tag {
            TAG_SPUT => {
                // payload: [priv_dst, arena_src(global), len, token]
                let [priv_dst, arena_src, len, token] = decode4(&msg.payload);
                fab.arena_to_private(priv_dst, arena_src, len);
                fab.quiet();
                fab.udn_send(msg.src, Q_REPLY, TAG_SDONE, &[token as u64]);
            }
            TAG_SGET => {
                // payload: [priv_src, arena_dst(global), len, token]
                let [priv_src, arena_dst, len, token] = decode4(&msg.payload);
                fab.private_to_arena(arena_dst, priv_src, len);
                fab.quiet();
                fab.udn_send(msg.src, Q_REPLY, TAG_SDONE, &[token as u64]);
            }
            TAG_SPUTS => {
                // payload: [priv_base, stride_bytes, esize, count, arena_src(global), token]
                let [priv_base, stride, esize, count, arena_src, token] = decode6(&msg.payload);
                if stride == esize {
                    fab.arena_to_private(priv_base, arena_src, count * esize);
                } else {
                    for i in 0..count {
                        fab.arena_to_private(priv_base + i * stride, arena_src + i * esize, esize);
                    }
                }
                fab.quiet();
                fab.udn_send(msg.src, Q_REPLY, TAG_SDONE, &[token as u64]);
            }
            TAG_SGETS => {
                // payload: [priv_base, stride_bytes, esize, count, arena_dst(global), token]
                let [priv_base, stride, esize, count, arena_dst, token] = decode6(&msg.payload);
                if stride == esize {
                    fab.private_to_arena(arena_dst, priv_base, count * esize);
                } else {
                    for i in 0..count {
                        fab.private_to_arena(arena_dst + i * esize, priv_base + i * stride, esize);
                    }
                }
                fab.quiet();
                fab.udn_send(msg.src, Q_REPLY, TAG_SDONE, &[token as u64]);
            }
            TAG_SHUTDOWN => return,
            other => panic!("service context of PE {} got unknown tag {other}", fab.pe()),
        }
        if let Some(p) = fab.probe() {
            p.set_blocked(BlockedOn::Running);
        }
    }
}

fn decode4(payload: &[u64]) -> [usize; 4] {
    assert_eq!(payload.len(), 4, "malformed service request");
    [
        payload[0] as usize,
        payload[1] as usize,
        payload[2] as usize,
        payload[3] as usize,
    ]
}

fn decode6(payload: &[u64]) -> [usize; 6] {
    assert_eq!(payload.len(), 6, "malformed strided service request");
    std::array::from_fn(|i| payload[i] as usize)
}

/// Encode a service request payload.
pub fn encode_request(a: usize, b: usize, len: usize, token: u64) -> [u64; 4] {
    [a as u64, b as u64, len as u64, token]
}

/// Encode a strided service request payload.
pub fn encode_strided_request(
    priv_base: usize,
    stride_bytes: usize,
    esize: usize,
    count: usize,
    arena_global: usize,
    token: u64,
) -> [u64; 6] {
    [
        priv_base as u64,
        stride_bytes as u64,
        esize as u64,
        count as u64,
        arena_global as u64,
        token,
    ]
}
