//! Element types for reductions, including the OpenSHMEM complex types.

use tmc::common::Bits;

/// Reduction operators (OpenSHMEM `*_to_all` families).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ReduceOp {
    And,
    Or,
    Xor,
    Min,
    Max,
    Sum,
    Prod,
}

impl ReduceOp {
    pub fn name(self) -> &'static str {
        match self {
            ReduceOp::And => "and",
            ReduceOp::Or => "or",
            ReduceOp::Xor => "xor",
            ReduceOp::Min => "min",
            ReduceOp::Max => "max",
            ReduceOp::Sum => "sum",
            ReduceOp::Prod => "prod",
        }
    }
}

/// Single-precision complex (OpenSHMEM `complexf`).
#[derive(Clone, Copy, PartialEq, Debug, Default)]
#[repr(C)]
pub struct Complex32 {
    pub re: f32,
    pub im: f32,
}

/// Double-precision complex (OpenSHMEM `complexd`).
#[derive(Clone, Copy, PartialEq, Debug, Default)]
#[repr(C)]
pub struct Complex64 {
    pub re: f64,
    pub im: f64,
}

// SAFETY: plain pairs of floats, valid for any bit pattern.
unsafe impl Bits for Complex32 {}
unsafe impl Bits for Complex64 {}

macro_rules! complex_ops {
    ($t:ty, $f:ty) => {
        // The inherent add/sub/mul stay for call-site clarity in generic
        // reduction code; they forward to the operator impls.
        #[allow(clippy::should_implement_trait)]
        impl $t {
            pub fn new(re: $f, im: $f) -> Self {
                Self { re, im }
            }

            /// Sum (also available as the `+` operator).
            pub fn add(self, o: Self) -> Self {
                self + o
            }

            /// Difference (also available as the `-` operator).
            pub fn sub(self, o: Self) -> Self {
                self - o
            }

            /// Complex product (also available as the `*` operator).
            pub fn mul(self, o: Self) -> Self {
                self * o
            }

            pub fn norm_sq(self) -> $f {
                self.re * self.re + self.im * self.im
            }
        }

        impl std::ops::Add for $t {
            type Output = Self;
            fn add(self, o: Self) -> Self {
                Self::new(self.re + o.re, self.im + o.im)
            }
        }

        impl std::ops::Sub for $t {
            type Output = Self;
            fn sub(self, o: Self) -> Self {
                Self::new(self.re - o.re, self.im - o.im)
            }
        }

        impl std::ops::Mul for $t {
            type Output = Self;
            fn mul(self, o: Self) -> Self {
                Self::new(
                    self.re * o.re - self.im * o.im,
                    self.re * o.im + self.im * o.re,
                )
            }
        }
    };
}

complex_ops!(Complex32, f32);
complex_ops!(Complex64, f64);

/// Types usable in reductions. `reduce` applies one operator; the two
/// `SUPPORTS_*` flags encode the OpenSHMEM type/operator matrix (bitwise
/// ops are integer-only; ordering ops exclude complex).
pub trait Reducible: Bits + PartialEq + std::fmt::Debug {
    const SUPPORTS_BITWISE: bool;
    const SUPPORTS_ORDER: bool;

    /// Apply `op`.
    ///
    /// # Panics
    /// Panics on an unsupported type/operator combination (matching the
    /// OpenSHMEM function matrix — e.g. there is no
    /// `shmem_float_and_to_all`).
    fn reduce(op: ReduceOp, a: Self, b: Self) -> Self;
}

macro_rules! reducible_int {
    ($($t:ty),*) => {$(
        impl Reducible for $t {
            const SUPPORTS_BITWISE: bool = true;
            const SUPPORTS_ORDER: bool = true;
            fn reduce(op: ReduceOp, a: Self, b: Self) -> Self {
                match op {
                    ReduceOp::And => a & b,
                    ReduceOp::Or => a | b,
                    ReduceOp::Xor => a ^ b,
                    ReduceOp::Min => a.min(b),
                    ReduceOp::Max => a.max(b),
                    ReduceOp::Sum => a.wrapping_add(b),
                    ReduceOp::Prod => a.wrapping_mul(b),
                }
            }
        }
    )*};
}

reducible_int!(i16, i32, i64, u16, u32, u64);

macro_rules! reducible_float {
    ($($t:ty),*) => {$(
        impl Reducible for $t {
            const SUPPORTS_BITWISE: bool = false;
            const SUPPORTS_ORDER: bool = true;
            fn reduce(op: ReduceOp, a: Self, b: Self) -> Self {
                match op {
                    ReduceOp::Min => a.min(b),
                    ReduceOp::Max => a.max(b),
                    ReduceOp::Sum => a + b,
                    ReduceOp::Prod => a * b,
                    _ => panic!("bitwise reduction on floating-point type"),
                }
            }
        }
    )*};
}

reducible_float!(f32, f64);

macro_rules! reducible_complex {
    ($($t:ty),*) => {$(
        impl Reducible for $t {
            const SUPPORTS_BITWISE: bool = false;
            const SUPPORTS_ORDER: bool = false;
            fn reduce(op: ReduceOp, a: Self, b: Self) -> Self {
                match op {
                    ReduceOp::Sum => a.add(b),
                    ReduceOp::Prod => a.mul(b),
                    _ => panic!("only sum/prod reductions exist for complex types"),
                }
            }
        }
    )*};
}

reducible_complex!(Complex32, Complex64);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn integer_reductions() {
        assert_eq!(i32::reduce(ReduceOp::And, 0b1100, 0b1010), 0b1000);
        assert_eq!(i32::reduce(ReduceOp::Or, 0b1100, 0b1010), 0b1110);
        assert_eq!(i32::reduce(ReduceOp::Xor, 0b1100, 0b1010), 0b0110);
        assert_eq!(i32::reduce(ReduceOp::Min, -3, 2), -3);
        assert_eq!(i32::reduce(ReduceOp::Max, -3, 2), 2);
        assert_eq!(i32::reduce(ReduceOp::Sum, 3, 4), 7);
        assert_eq!(i32::reduce(ReduceOp::Prod, 3, 4), 12);
        // Wrapping semantics (C unsigned-style overflow).
        assert_eq!(i32::reduce(ReduceOp::Sum, i32::MAX, 1), i32::MIN);
    }

    #[test]
    fn float_reductions() {
        assert_eq!(f64::reduce(ReduceOp::Sum, 1.5, 2.5), 4.0);
        assert_eq!(f64::reduce(ReduceOp::Prod, 1.5, 2.0), 3.0);
        assert_eq!(f32::reduce(ReduceOp::Min, -1.0, 1.0), -1.0);
    }

    #[test]
    #[should_panic(expected = "bitwise")]
    fn float_bitwise_panics() {
        f32::reduce(ReduceOp::Xor, 1.0, 2.0);
    }

    #[test]
    fn complex_arithmetic() {
        let a = Complex32::new(1.0, 2.0);
        let b = Complex32::new(3.0, -1.0);
        assert_eq!(a.add(b), Complex32::new(4.0, 1.0));
        // (1+2i)(3-i) = 3 - i + 6i - 2i^2 = 5 + 5i
        assert_eq!(a.mul(b), Complex32::new(5.0, 5.0));
        assert_eq!(a.norm_sq(), 5.0);
        assert_eq!(Complex64::new(1.0, 1.0).sub(Complex64::new(0.5, 2.0)), Complex64::new(0.5, -1.0));
    }

    #[test]
    fn complex_reductions() {
        let s = Complex64::reduce(ReduceOp::Sum, Complex64::new(1.0, 1.0), Complex64::new(2.0, 3.0));
        assert_eq!(s, Complex64::new(3.0, 4.0));
    }

    #[test]
    #[should_panic(expected = "complex")]
    fn complex_min_panics() {
        Complex32::reduce(ReduceOp::Min, Complex32::default(), Complex32::default());
    }

    #[test]
    fn op_names() {
        assert_eq!(ReduceOp::Sum.name(), "sum");
        assert_eq!(ReduceOp::Xor.name(), "xor");
    }
}
