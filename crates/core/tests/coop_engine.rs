//! Functional tests of the cooperative M:N engine: the native protocol
//! stack under worker-gate multiplexing, including PE counts past the
//! host's core count.

use tshmem::prelude::*;
use tshmem::runtime::{launch, launch_coop, launch_coop_watched};
use tshmem::JobWatch;

fn deposit_and_sum(ctx: &ShmemCtx) -> i64 {
    let me = ctx.my_pe();
    let n = ctx.n_pes();
    let table = ctx.shmalloc::<i64>(n);
    ctx.p(&table, me, me as i64 + 1, 0);
    ctx.barrier_all();
    let local: i64 = if me == 0 {
        (0..n).map(|i| ctx.g(&table, i, 0)).sum()
    } else {
        0
    };
    let src = ctx.shmalloc::<i64>(1);
    let dst = ctx.shmalloc::<i64>(1);
    ctx.local_write(&src, 0, &[local]);
    ctx.sum_to_all(&dst, &src, 1, ctx.world());
    ctx.local_read(&dst, 0, 1)[0]
}

#[test]
fn coop_matches_native_on_the_quickstart_job() {
    let cfg = RuntimeConfig::new(8).with_partition_bytes(1 << 20);
    let native = launch(&cfg, deposit_and_sum);
    for workers in [1, 2, 3, 8] {
        let coop = launch_coop(&cfg, workers, deposit_and_sum);
        assert_eq!(coop, native, "workers={workers}");
    }
}

#[test]
fn coop_oversubscribed_past_the_core_count() {
    // 96 PEs (> the 64-tile cap of real devices) on 4 workers: the
    // for_scale config must pick the scaled device, and the answer must
    // match the closed form.
    let cfg = RuntimeConfig::for_scale(96).with_partition_bytes(64 * 1024);
    let out = launch_coop(&cfg, 4, deposit_and_sum);
    let want = (96 * 97 / 2) as i64;
    assert_eq!(out, vec![want; 96]);
}

#[test]
fn coop_bounded_udn_and_trace() {
    let cfg = RuntimeConfig::new(6)
        .with_partition_bytes(1 << 20)
        .with_bounded_udn(2);
    let native = launch(&cfg, deposit_and_sum);
    let coop = launch_coop(&cfg, 2, deposit_and_sum);
    assert_eq!(coop, native);
}

#[test]
fn coop_watch_reports_oversubscription() {
    let cfg = RuntimeConfig::new(8).with_partition_bytes(1 << 20);
    let watch = JobWatch::new();
    assert_eq!(watch.oversubscription(), 1, "unattached watch defaults to 1");
    let out = launch_coop_watched(&cfg, 2, &watch, deposit_and_sum);
    assert_eq!(out, vec![36; 8]);
    assert!(watch.attached());
    // 2 * 8 contexts over 2 workers.
    assert_eq!(watch.oversubscription(), 8);
    assert!(watch.total_ops() > 0);
}

#[test]
fn coop_panic_aborts_the_whole_job() {
    let cfg = RuntimeConfig::new(6).with_partition_bytes(1 << 20);
    let r = std::panic::catch_unwind(|| {
        launch_coop(&cfg, 2, |ctx| {
            if ctx.my_pe() == 3 {
                panic!("PE 3 exploded");
            }
            // Everyone else parks in a barrier that can never complete;
            // the abort broadcast must wake them.
            ctx.barrier_all();
        })
    });
    assert!(r.is_err(), "panic must propagate out of the launch");
}

#[test]
fn coop_tmc_spin_barrier_survives_oversubscription() {
    // The TMC spin barrier busy-polls; under M:N the waiters must yield
    // their worker gates or they starve the very PEs they wait for.
    let algos = Algorithms { barrier: BarrierAlgo::TmcSpin, ..Default::default() };
    let cfg = RuntimeConfig::new(12)
        .with_partition_bytes(1 << 20)
        .with_algos(algos);
    let out = launch_coop(&cfg, 2, |ctx| {
        let me = ctx.my_pe();
        let n = ctx.n_pes();
        let table = ctx.shmalloc::<u64>(n);
        ctx.p(&table, me, (me as u64) * 3 + 1, (me + 1) % n);
        ctx.barrier_all();
        ctx.g(&table, (me + n - 1) % n, me)
    });
    for (pe, v) in out.iter().enumerate() {
        let writer = (pe + 12 - 1) % 12;
        assert_eq!(*v, (writer as u64) * 3 + 1, "PE {pe}");
    }
}
