//! The timed engine's operation trace: complete, ordered, and
//! deterministic.

use tshmem::prelude::*;
use tshmem::trace::{summarize, to_tsv, TraceKind};

fn cfg(npes: usize) -> RuntimeConfig {
    RuntimeConfig::new(npes)
        .with_partition_bytes(1 << 20)
        .with_private_bytes(1 << 14)
        .with_trace()
}

fn workload(ctx: &ShmemCtx) {
    let v = ctx.shmalloc::<u64>(256);
    ctx.put(&v, 0, &vec![1u64; 256], (ctx.my_pe() + 1) % ctx.n_pes());
    ctx.barrier_all();
    ctx.compute(5000.0);
    let d = ctx.shmalloc::<u64>(256);
    ctx.sum_to_all(&d, &v, 256, ctx.world());
}

#[test]
fn trace_captures_all_operation_kinds() {
    let out = tshmem::launch_timed(&cfg(3), workload);
    let trace = out.trace.expect("trace enabled");
    assert!(!trace.is_empty());
    for kind in [
        TraceKind::Copy,
        TraceKind::UdnSend,
        TraceKind::Compute,
        TraceKind::Wait,
    ] {
        assert!(
            trace.iter().any(|e| e.kind == kind),
            "missing {kind:?} events"
        );
    }
    // Well-formed: end >= start, PEs valid, sorted by start.
    for e in &trace {
        assert!(e.end >= e.start);
        assert!(e.pe < 3);
    }
    for w in trace.windows(2) {
        assert!(w[0].start <= w[1].start, "events must be time-ordered");
    }
    // Every PE shows up.
    for pe in 0..3 {
        assert!(trace.iter().any(|e| e.pe == pe), "PE {pe} silent");
    }
}

#[test]
fn trace_is_deterministic() {
    let run = || {
        let out = tshmem::launch_timed(&cfg(3), workload);
        out.trace
            .unwrap()
            .iter()
            .map(|e| (e.pe, e.kind.name(), e.start.ps(), e.end.ps(), e.bytes))
            .collect::<Vec<_>>()
    };
    assert_eq!(run(), run());
}

#[test]
fn trace_summary_and_tsv() {
    let out = tshmem::launch_timed(&cfg(2), workload);
    let trace = out.trace.unwrap();
    let tsv = to_tsv(&trace);
    assert!(tsv.lines().count() == trace.len() + 1);
    assert!(tsv.starts_with("start_ns"));
    let summary = summarize(&trace, 2);
    // Compute charge of 5000 cycles = 5 us per PE must appear.
    for (pe, s) in summary.iter().enumerate() {
        assert!(s["compute"] >= 5000.0, "pe {pe}: {s:?}");
    }
}

#[test]
fn disabled_trace_costs_nothing_and_returns_none() {
    let plain = RuntimeConfig::new(2).with_partition_bytes(1 << 20);
    let out = tshmem::launch_timed(&plain, workload);
    assert!(out.trace.is_none());
    // And the virtual clocks are identical with tracing on (observing
    // must not perturb the simulation).
    let traced = tshmem::launch_timed(&cfg(2), workload);
    assert_eq!(
        out.clocks.iter().map(|c| c.ps()).collect::<Vec<_>>(),
        traced.clocks.iter().map(|c| c.ps()).collect::<Vec<_>>()
    );
}
