//! Misuse must fail loudly: bounds, membership, and unsupported-feature
//! panics (the library's guard rails).

use tshmem::prelude::*;
use tshmem::runtime::launch;

fn cfg(npes: usize) -> RuntimeConfig {
    RuntimeConfig::new(npes)
        .with_partition_bytes(1 << 20)
        .with_private_bytes(1 << 14)
        .with_temp_bytes(1 << 12)
}

#[test]
#[should_panic(expected = "out of bounds")]
fn put_past_end_panics() {
    launch(&cfg(1), |ctx| {
        let v = ctx.shmalloc::<u32>(4);
        ctx.put(&v, 2, &[1, 2, 3], 0);
    });
}

#[test]
#[should_panic(expected = "out of range")]
fn put_to_unknown_pe_panics() {
    launch(&cfg(2), |ctx| {
        let v = ctx.shmalloc::<u32>(4);
        ctx.p(&v, 0, 1, 7);
    });
}

#[test]
#[should_panic(expected = "not in active set")]
fn barrier_from_non_member_panics() {
    launch(&cfg(2), |ctx| {
        // Every PE names the singleton set of the *other* PE, so all
        // PEs fail membership (keeping the panic symmetric — a lone
        // surviving PE would otherwise block in finalize).
        let other = 1 - ctx.my_pe();
        ctx.barrier(ActiveSet::new(other, 0, 1));
    });
}

#[test]
#[should_panic(expected = "exceeds job")]
fn oversized_active_set_panics() {
    launch(&cfg(2), |ctx| {
        ctx.barrier(ActiveSet::new(0, 0, 5));
    });
}

#[test]
#[should_panic(expected = "shmem_wait on static symmetric variables is not supported")]
fn wait_on_static_panics_like_the_paper_says() {
    launch(&cfg(1), |ctx| {
        let s = ctx.static_sym::<i64>(1);
        ctx.wait(&s, 0, 0i64);
    });
}

#[test]
#[should_panic(expected = "atomics on static symmetric variables")]
fn atomic_on_static_panics() {
    launch(&cfg(1), |ctx| {
        let s = ctx.static_sym::<i64>(1);
        ctx.fadd(&s, 0, 1i64, 0);
    });
}

#[test]
#[should_panic(expected = "shfree")]
fn double_free_panics() {
    launch(&cfg(1), |ctx| {
        let v = ctx.shmalloc::<u8>(16);
        ctx.shfree(v);
        ctx.shfree(v);
    });
}

#[test]
#[should_panic(expected = "shfree of a static object")]
fn freeing_a_static_panics() {
    launch(&cfg(1), |ctx| {
        let s = ctx.static_sym::<u8>(16);
        ctx.shfree(s);
    });
}

#[test]
#[should_panic(expected = "symmetric heap exhausted")]
fn heap_exhaustion_panics_with_context() {
    launch(&cfg(1), |ctx| {
        let _ = ctx.shmalloc::<u8>(64 << 20);
    });
}

#[test]
fn try_shmalloc_reports_oom_without_panicking() {
    launch(&cfg(1), |ctx| {
        assert!(ctx.try_shmalloc::<u8>(64 << 20).is_err());
        // Heap still usable afterwards.
        let v = ctx.try_shmalloc::<u8>(64).unwrap();
        ctx.shfree(v);
    });
}

#[test]
#[should_panic(expected = "private segment exhausted")]
fn static_segment_exhaustion_panics() {
    launch(&cfg(1), |ctx| {
        let _ = ctx.static_sym::<u8>(1 << 20);
    });
}

#[test]
#[should_panic(expected = "released a lock it does not hold")]
fn clearing_unowned_lock_panics() {
    launch(&cfg(1), |ctx| {
        let lock = ctx.shmalloc::<i64>(1);
        ctx.local_write(&lock, 0, &[0i64]);
        ctx.clear_lock(&lock); // never acquired
    });
}

#[test]
fn finalize_is_idempotent_and_ops_after_it_still_local() {
    launch(&cfg(2), |ctx| {
        let v = ctx.shmalloc::<u64>(4);
        ctx.finalize();
        ctx.finalize(); // second call is a no-op
        assert!(ctx.is_finalized());
        // Purely local access still fine after finalize.
        ctx.local_write(&v, 0, &[1, 2, 3, 4]);
        assert_eq!(ctx.local_read(&v, 0, 4), vec![1, 2, 3, 4]);
    });
}

#[test]
fn zero_length_transfers_are_noops() {
    launch(&cfg(2), |ctx| {
        let v = ctx.shmalloc::<u32>(4);
        let empty: [u32; 0] = [];
        ctx.put(&v, 0, &empty, 1);
        let mut out: [u32; 0] = [];
        ctx.get(&mut out, &v, 4, 1); // offset == len is allowed for 0 elems
        ctx.put_sym(&v, 0, &v, 0, 0, 1);
        ctx.barrier_all();
    });
}
