//! The entire protocol suite under hardware-faithful bounded UDN
//! queues: with only two packets of buffering per demux queue, every
//! barrier, collective, and redirected transfer must still complete
//! (deadlock-freedom on finite buffering — what the real 127-word
//! hardware queues demand).

use tshmem::prelude::*;
use tshmem::types::ReduceOp;

fn cfg(npes: usize) -> RuntimeConfig {
    RuntimeConfig::new(npes)
        .with_partition_bytes(1 << 20)
        .with_private_bytes(1 << 15)
        .with_temp_bytes(1 << 12)
        .with_bounded_udn(2)
}

#[test]
fn full_protocol_suite_under_two_packet_queues() {
    tshmem::launch(&cfg(6), |ctx| {
        let me = ctx.my_pe();
        let n = ctx.n_pes();

        // Barriers (heaviest UDN users), many rounds.
        for _ in 0..50 {
            ctx.barrier_all();
        }

        // Collectives.
        let src = ctx.shmalloc::<u32>(64);
        let dst = ctx.shmalloc::<u32>(64 * n);
        ctx.local_write(&src, 0, &vec![me as u32; 64]);
        ctx.fcollect(&dst, &src, 64, ctx.world());
        ctx.reduce(ReduceOp::Sum, &dst, &src, 64, ctx.world());
        assert_eq!(ctx.local_read(&dst, 0, 1)[0], (0..n as u32).sum());
        ctx.broadcast(&dst, &src, 64, n - 1, ctx.world());

        // The collect exscan chain.
        let total = ctx.collect(&dst, &src, me + 1, ctx.world());
        assert_eq!(total, n * (n + 1) / 2);

        // Redirected static transfers (service queue under bound).
        let statv = ctx.static_sym::<u64>(128);
        ctx.local_write(&statv, 0, &vec![me as u64; 128]);
        ctx.barrier_all();
        let mut got = vec![0u64; 128];
        ctx.get(&mut got, &statv, 0, (me + 1) % n);
        assert_eq!(got, vec![((me + 1) % n) as u64; 128]);
        ctx.barrier_all();
        me
    });
}

#[test]
fn dissemination_barrier_under_bounded_queues() {
    let c = cfg(8).with_algos(Algorithms {
        barrier: BarrierAlgo::Dissemination,
        ..Default::default()
    });
    tshmem::launch(&c, |ctx| {
        for _ in 0..100 {
            ctx.barrier_all();
        }
    });
}

#[test]
fn root_broadcast_barrier_under_bounded_queues() {
    // n-1 arrivals converge on the root's 2-packet queue: pure
    // backpressure, must not deadlock.
    let c = cfg(8).with_algos(Algorithms {
        barrier: BarrierAlgo::RootBroadcast,
        ..Default::default()
    });
    tshmem::launch(&c, |ctx| {
        for _ in 0..50 {
            ctx.barrier_all();
        }
    });
}
