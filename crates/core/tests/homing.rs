//! Homing-hinted allocation (Section VI "memory-homing strategies"):
//! functionally transparent, and the timed engine must show the
//! contention physics of paper Section III-A.

use tshmem::prelude::*;
use tshmem::runtime::{launch, launch_timed};

fn cfg(npes: usize) -> RuntimeConfig {
    RuntimeConfig::new(npes)
        .with_partition_bytes(4 << 20)
        .with_private_bytes(1 << 14)
        .with_temp_bytes(1 << 12)
}

#[test]
fn homed_allocations_are_functionally_identical() {
    launch(&cfg(4), |ctx| {
        for hint in [HomingHint::HashForHome, HomingHint::MyTile, HomingHint::Tile(0)] {
            let v = ctx.shmalloc_homed::<u64>(64, hint);
            let me = ctx.my_pe();
            ctx.put(&v, 0, &vec![me as u64 + 7; 64], (me + 1) % ctx.n_pes());
            ctx.barrier_all();
            let prev = (me + ctx.n_pes() - 1) % ctx.n_pes();
            assert_eq!(ctx.local_read(&v, 0, 64), vec![prev as u64 + 7; 64], "{hint:?}");
            ctx.barrier_all();
            ctx.shfree(v);
        }
    });
}

#[test]
fn timed_single_tile_homing_bottlenecks_under_many_readers() {
    // All PEs pull from PE 0's copy: with hash-for-home the load spreads
    // over every home port; homed on tile 0, everything serializes on
    // one port (paper Section III-A's rationale for hash-for-home).
    fn sweep(hint: HomingHint) -> f64 {
        let out = launch_timed(&cfg(16), move |ctx| {
            let n = 64 * 1024 / 8; // 64 kB per pull
            let src = ctx.shmalloc_homed::<u64>(n, hint);
            let dst = ctx.shmalloc::<u64>(n);
            ctx.barrier_all();
            // Warm: install the source on chip.
            if ctx.my_pe() == 0 {
                ctx.put_sym(&src, 0, &dst, 0, n, 0);
            }
            ctx.barrier_all();
            let t0 = ctx.time_ns();
            if ctx.my_pe() != 0 {
                ctx.get_sym(&dst, 0, &src, 0, n, 0);
            }
            ctx.quiet();
            ctx.barrier_all();
            ctx.time_ns() - t0
        });
        // Aggregate MB/s across the 15 readers.
        let worst = out.values.iter().cloned().fold(0.0f64, f64::max);
        15.0 * 64.0 * 1024.0 / worst * 1000.0
    }
    let hash = sweep(HomingHint::HashForHome);
    let fixed = sweep(HomingHint::Tile(0));
    assert!(
        hash > 2.0 * fixed,
        "hash-for-home {hash} MB/s must beat single-tile homing {fixed} MB/s under contention"
    );
}

#[test]
fn freeing_homed_region_clears_override() {
    // After shfree, a new allocation reusing the offsets must behave as
    // hash-for-home again (no stale override).
    let out = launch_timed(&cfg(8), |ctx| {
        let n = 32 * 1024 / 8;
        let a = ctx.shmalloc_homed::<u64>(n, HomingHint::Tile(0));
        ctx.shfree(a);
        // Reuses the same heap offsets.
        let b = ctx.shmalloc::<u64>(n);
        let dst = ctx.shmalloc::<u64>(n);
        ctx.barrier_all();
        if ctx.my_pe() == 0 {
            ctx.put_sym(&b, 0, &dst, 0, n, 0);
        }
        ctx.barrier_all();
        let t0 = ctx.time_ns();
        if ctx.my_pe() != 0 {
            ctx.get_sym(&dst, 0, &b, 0, n, 0);
        }
        ctx.barrier_all();
        ctx.time_ns() - t0
    });
    // With the override cleared, 7 concurrent readers spread over all
    // home ports; the pull must be far faster than the serialized rate
    // (7 x 32 kB at tile 0's ~1.28 GB/s port would take ~175 us).
    let worst = out.values.iter().cloned().fold(0.0f64, f64::max);
    assert!(
        worst < 120_000.0,
        "cleared homing should not serialize: {worst} ns"
    );
}
